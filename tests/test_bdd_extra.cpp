// BDD composition and support extraction.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

TEST(BddCompose, ReplacesVariableFunctionally) {
  Bdd mgr(4);
  // f = x0 XOR x1; compose x1 := x2 AND x3.
  const auto f = mgr.bXor(mgr.var(0), mgr.var(1));
  const auto g = mgr.bAnd(mgr.var(2), mgr.var(3));
  const auto composed = mgr.compose(f, 1, g);
  EXPECT_EQ(composed, mgr.bXor(mgr.var(0), g));
}

TEST(BddCompose, IdentityAndConstants) {
  Bdd mgr(3);
  const auto f = mgr.bOr(mgr.var(0), mgr.bAnd(mgr.var(1), mgr.var(2)));
  EXPECT_EQ(mgr.compose(f, 1, mgr.var(1)), f);
  // Composing with constants equals cofactoring.
  EXPECT_EQ(mgr.compose(f, 1, Bdd::kTrue), mgr.cofactor(f, 1, true));
  EXPECT_EQ(mgr.compose(f, 1, Bdd::kFalse), mgr.cofactor(f, 1, false));
  // Absent variable: no effect.
  const auto g = mgr.var(0);
  EXPECT_EQ(mgr.compose(g, 2, mgr.var(1)), g);
}

TEST(BddCompose, RandomizedAgainstBruteForce) {
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    Bdd mgr(5);
    std::vector<std::uint64_t> fb{rng.next() & 0xFFFFFFFFull};
    std::vector<std::uint64_t> gb{rng.next() & 0xFFFFFFFFull};
    const auto f = mgr.fromTruthTable(fb, {0, 1, 2, 3, 4});
    const auto g = mgr.fromTruthTable(gb, {0, 1, 2, 3, 4});
    const std::uint32_t v = static_cast<std::uint32_t>(rng.below(5));
    const auto composed = mgr.compose(f, v, g);
    for (std::uint32_t m = 0; m < 32; ++m) {
      std::vector<std::uint8_t> a(5);
      for (std::uint32_t j = 0; j < 5; ++j) a[j] = (m >> j) & 1;
      std::vector<std::uint8_t> b = a;
      b[v] = mgr.eval(g, a) ? 1 : 0;
      EXPECT_EQ(mgr.eval(composed, a), mgr.eval(f, b))
          << "trial " << trial << " assignment " << m;
    }
  }
}

TEST(BddSupport, ReportsExactDependencies) {
  Bdd mgr(6);
  const auto f =
      mgr.bOr(mgr.bAnd(mgr.var(0), mgr.var(3)), mgr.nvar(5));
  EXPECT_EQ(mgr.support(f), (std::vector<std::uint32_t>{0, 3, 5}));
  EXPECT_TRUE(mgr.support(Bdd::kTrue).empty());
  EXPECT_TRUE(mgr.support(Bdd::kFalse).empty());
  // XOR(x1, x1) vanishes from the support entirely.
  const auto g = mgr.bXor(mgr.var(1), mgr.var(1));
  EXPECT_TRUE(mgr.support(g).empty());
}

TEST(BddSupport, QuantificationShrinksSupport) {
  Bdd mgr(4);
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> bits{rng.next() & 0xFFFF};
    const auto f = mgr.fromTruthTable(bits, {0, 1, 2, 3});
    const auto g = mgr.exists(f, {1, 2});
    for (std::uint32_t v : mgr.support(g)) {
      EXPECT_NE(v, 1u);
      EXPECT_NE(v, 2u);
    }
  }
}

}  // namespace
}  // namespace syseco
