// ECO-as-a-service: the --serve daemon's durable job queue, admission
// control, worker-pool watchdog and session protocol, plus the property
// the whole subsystem exists for - a daemon killed with SIGKILL at any
// instant recovers its queue from the WAL, resumes mid-run jobs from
// their own engine journals, and drains to verdict records bit-identical
// to undisturbed one-shot runs.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/codec.hpp"
#include "serve/job_queue.hpp"
#include "serve/serve.hpp"
#include "serve/watchdog.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco::serve {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_serve_" + name;
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string dataPath(const char* name) {
  return std::string(SYSECO_SOURCE_DIR) + "/data/" + name;
}

// --- Session protocol codecs ----------------------------------------------

TEST(ServeCodec, SubmitRoundtripsEveryField) {
  SubmitRequest r;
  r.tenant = "team-a";
  r.format = "netlist";
  r.implText = "impl \"with\" quotes\nand lines";
  r.specText = "spec text";
  r.seed = 0xfeedfacecafeULL;
  r.jobs = 4;
  r.isolate = true;
  r.detach = true;
  r.faultInject = "isolate.worker=hang";
  Result<SubmitRequest> back = decodeSubmit(encodeSubmit(r));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().tenant, "team-a");
  EXPECT_EQ(back.value().format, "netlist");
  EXPECT_EQ(back.value().implText, r.implText);
  EXPECT_EQ(back.value().specText, r.specText);
  EXPECT_EQ(back.value().seed, 0xfeedfacecafeULL);
  EXPECT_EQ(back.value().jobs, 4);
  EXPECT_TRUE(back.value().isolate);
  EXPECT_TRUE(back.value().detach);
  EXPECT_EQ(back.value().faultInject, "isolate.worker=hang");
}

TEST(ServeCodec, SubmitRejectsHostileBytes) {
  EXPECT_FALSE(decodeSubmit("").isOk());
  EXPECT_FALSE(decodeSubmit("not json").isOk());
  EXPECT_FALSE(decodeSubmit("[1,2,3]").isOk());
  SubmitRequest ok;
  ok.implText = "i";
  ok.specText = "s";
  ASSERT_TRUE(decodeSubmit(encodeSubmit(ok)).isOk());
  // Each semantic constraint individually: empty netlists, an unknown
  // format, an out-of-range jobs count, an empty tenant.
  SubmitRequest bad = ok;
  bad.implText.clear();
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
  bad = ok;
  bad.specText.clear();
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
  bad = ok;
  bad.format = "vhdl";
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
  bad = ok;
  bad.jobs = 0;
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
  bad = ok;
  bad.jobs = 100000;
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
  bad = ok;
  bad.tenant.clear();
  EXPECT_FALSE(decodeSubmit(encodeSubmit(bad)).isOk());
}

TEST(ServeCodec, RepliesRoundtripAndRejectGarbage) {
  Accepted a;
  a.job = "j000042";
  Result<Accepted> a2 = decodeAccepted(encodeAccepted(a));
  ASSERT_TRUE(a2.isOk());
  EXPECT_EQ(a2.value().job, "j000042");
  EXPECT_FALSE(decodeAccepted("junk").isOk());

  Rejected r;
  r.reason = "queue-full";
  r.detail = "16 job(s) resident, limit 16";
  Result<Rejected> r2 = decodeRejected(encodeRejected(r));
  ASSERT_TRUE(r2.isOk());
  EXPECT_EQ(r2.value().reason, "queue-full");
  EXPECT_EQ(r2.value().detail, r.detail);
  EXPECT_FALSE(decodeRejected("{}").isOk());

  JobRef ref;
  ref.job = "j000001";
  Result<JobRef> ref2 = decodeJobRef(encodeJobRef(ref));
  ASSERT_TRUE(ref2.isOk());
  EXPECT_EQ(ref2.value().job, "j000001");
  EXPECT_FALSE(decodeJobRef("").isOk());

  JobState st;
  st.job = "j000007";
  st.state = "done";
  st.attempt = 3;
  st.exitCode = 0;
  st.cause = "";
  st.detail = "";
  st.reportText = "{\"outputs\":[]}\n";
  st.outText = ".model top\n.end\n";
  Result<JobState> st2 = decodeJobState(encodeJobState(st));
  ASSERT_TRUE(st2.isOk()) << st2.status().toString();
  EXPECT_EQ(st2.value().job, "j000007");
  EXPECT_EQ(st2.value().state, "done");
  EXPECT_EQ(st2.value().attempt, 3);
  EXPECT_EQ(st2.value().reportText, st.reportText);
  EXPECT_EQ(st2.value().outText, st.outText);
  EXPECT_FALSE(decodeJobState("\xff\xfe").isOk());
}

// --- Durable job queue ----------------------------------------------------

SubmitRequest queueRequest(const std::string& tenant,
                           const std::string& payload) {
  SubmitRequest r;
  r.tenant = tenant;
  r.implText = payload;
  r.specText = payload;
  r.seed = 9;
  return r;
}

TEST(ServeQueue, SubmitPersistsPayloadAndFeedsTheLedgers) {
  const std::string dir = freshDir("submit");
  Result<JobQueue> opened = JobQueue::open(dir);
  ASSERT_TRUE(opened.isOk()) << opened.status().toString();
  JobQueue q = opened.take();
  Result<Job*> job = q.submit(queueRequest("alice", "payload"));
  ASSERT_TRUE(job.isOk()) << job.status().toString();
  EXPECT_EQ(job.value()->id, "j000001");
  EXPECT_EQ(job.value()->state, QueueState::kQueued);
  // The payload is durably on disk before the WAL attests to the job.
  EXPECT_EQ(slurp(q.implPath(*job.value())), "payload");
  EXPECT_EQ(slurp(q.specPath(*job.value())), "payload");
  EXPECT_EQ(q.residentCount(), 1u);
  EXPECT_EQ(q.tenantResident("alice"), 1u);
  EXPECT_EQ(q.tenantResident("bob"), 0u);
  EXPECT_EQ(q.residentBytes(), 14u);
  EXPECT_EQ(q.nextQueued(), job.value());
}

TEST(ServeQueue, MidRunJobsRecoverAsQueuedWithResume) {
  const std::string dir = freshDir("recover");
  {
    Result<JobQueue> opened = JobQueue::open(dir);
    ASSERT_TRUE(opened.isOk());
    JobQueue q = opened.take();
    Result<Job*> j1 = q.submit(queueRequest("alice", "one"));
    Result<Job*> j2 = q.submit(queueRequest("bob", "two"));
    ASSERT_TRUE(j1.isOk() && j2.isOk());
    ASSERT_TRUE(q.markRunning(*j1.value(), 1).isOk());
    // No clean shutdown: this scope *is* the SIGKILL.
  }
  Result<JobQueue> reopened = JobQueue::open(dir);
  ASSERT_TRUE(reopened.isOk()) << reopened.status().toString();
  JobQueue q = reopened.take();
  Job* j1 = q.find("j000001");
  Job* j2 = q.find("j000002");
  ASSERT_NE(j1, nullptr);
  ASSERT_NE(j2, nullptr);
  // The mid-run job came back queued-with-resume at its old attempt count;
  // the untouched job is plainly queued.
  EXPECT_EQ(j1->state, QueueState::kQueued);
  EXPECT_TRUE(j1->resume);
  EXPECT_EQ(j1->attempt, 1);
  EXPECT_EQ(j1->tenant, "alice");
  EXPECT_EQ(j2->state, QueueState::kQueued);
  EXPECT_FALSE(j2->resume);
  bool noted = false;
  for (const std::string& n : q.recoveryNotes())
    if (n.find("j000001") != std::string::npos &&
        n.find("resume") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted);
  // Id assignment is crash-stable: the next submit does not reuse an id.
  Result<Job*> j3 = q.submit(queueRequest("carol", "three"));
  ASSERT_TRUE(j3.isOk());
  EXPECT_EQ(j3.value()->id, "j000003");
}

TEST(ServeQueue, TerminalStatesSurviveAndCompactionBoundsTheWal) {
  const std::string dir = freshDir("compact");
  {
    Result<JobQueue> opened = JobQueue::open(dir);
    ASSERT_TRUE(opened.isOk());
    JobQueue q = opened.take();
    Result<Job*> job = q.submit(queueRequest("alice", "x"));
    ASSERT_TRUE(job.isOk());
    ASSERT_TRUE(q.markRunning(*job.value(), 1).isOk());
    ASSERT_TRUE(q.markRequeued(*job.value(), "crash", "worker died").isOk());
    ASSERT_TRUE(q.markRunning(*job.value(), 2).isOk());
    ASSERT_TRUE(q.markDone(*job.value(), 0).isOk());
    for (int i = 0; i < 50; ++i)
      ASSERT_TRUE(q.note("tick " + std::to_string(i)).isOk());
  }
  Result<JobQueue> reopened = JobQueue::open(dir);
  ASSERT_TRUE(reopened.isOk());
  JobQueue q = reopened.take();
  Job* job = q.find("j000001");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, QueueState::kDone);
  EXPECT_EQ(job->exitCode, 0);
  EXPECT_EQ(q.residentCount(), 0u);
  // Compaction rewrote the WAL from the folded state: its length tracks
  // queue occupancy (2 records for the one job), not the 50+ notes and
  // transitions of the daemon's lifetime.
  const std::string wal = slurp(dir + "/queue/journal.jsonl");
  const std::size_t lines =
      static_cast<std::size_t>(std::count(wal.begin(), wal.end(), '\n'));
  EXPECT_LE(lines, 6u) << wal;
}

TEST(ServeQueue, AdmissionShedsAtEachLedgerAndFreesOnCompletion) {
  const std::string dir = freshDir("admit");
  Result<JobQueue> opened = JobQueue::open(dir);
  ASSERT_TRUE(opened.isOk());
  JobQueue q = opened.take();
  AdmissionLimits limits;
  limits.maxResidentJobs = 2;
  limits.maxPerTenant = 1;
  limits.maxResidentBytes = 100;

  EXPECT_TRUE(q.admit("alice", 10, limits).admitted);
  Result<Job*> j1 = q.submit(queueRequest("alice", "12345"));
  ASSERT_TRUE(j1.isOk());

  Admission quota = q.admit("alice", 10, limits);
  EXPECT_FALSE(quota.admitted);
  EXPECT_EQ(quota.reason, "tenant-quota");

  Admission bytes = q.admit("bob", 200, limits);
  EXPECT_FALSE(bytes.admitted);
  EXPECT_EQ(bytes.reason, "memory-watermark");

  Result<Job*> j2 = q.submit(queueRequest("bob", "1"));
  ASSERT_TRUE(j2.isOk());
  Admission full = q.admit("carol", 1, limits);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.reason, "queue-full");
  EXPECT_NE(full.detail.find("limit 2"), std::string::npos);

  // Terminal jobs leave the ledgers; the same submit is admitted again.
  ASSERT_TRUE(q.markRunning(*j1.value(), 1).isOk());
  ASSERT_TRUE(q.markDone(*j1.value(), 0).isOk());
  EXPECT_TRUE(q.admit("carol", 1, limits).admitted);
  EXPECT_TRUE(q.admit("alice", 10, limits).admitted);
}

// --- Worker-pool watchdog -------------------------------------------------

std::vector<std::string> shellArgv(const std::string& script) {
  return {"/bin/sh", "-c", script};
}

std::vector<WorkerExit> reapAll(PoolWatchdog& wd, std::size_t expect) {
  std::vector<WorkerExit> exits;
  for (int waited = 0; waited < 20000 && exits.size() < expect;
       waited += 20) {
    for (WorkerExit& e : wd.reap()) exits.push_back(std::move(e));
    if (exits.size() < expect) subprocess::pollReadable({}, 20);
  }
  return exits;
}

const WorkerExit* exitFor(const std::vector<WorkerExit>& exits,
                          const std::string& job) {
  for (const WorkerExit& e : exits)
    if (e.job == job) return &e;
  return nullptr;
}

TEST(ServeWatchdog, BackoffDoublesFromTheBaseAndCaps) {
  PoolWatchdog wd(PoolWatchdog::Options{1, 3, 100.0});
  EXPECT_DOUBLE_EQ(wd.backoffSeconds(1), 0.0);
  EXPECT_DOUBLE_EQ(wd.backoffSeconds(2), 0.1);
  EXPECT_DOUBLE_EQ(wd.backoffSeconds(3), 0.2);
  EXPECT_DOUBLE_EQ(wd.backoffSeconds(4), 0.4);
  EXPECT_DOUBLE_EQ(wd.backoffSeconds(50), 5.0);
}

TEST(ServeWatchdog, ClassifiesVerdictExitsTerminalAndDeathsRetryable) {
  const std::string dir = freshDir("classify");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  PoolWatchdog wd(PoolWatchdog::Options{4, 3, 100.0});
  ASSERT_TRUE(wd.spawn("clean", 1, shellArgv("exit 0"), dir + "/a.log", {})
                  .isOk());
  ASSERT_TRUE(wd.spawn("degraded", 1, shellArgv("exit 4"), dir + "/b.log", {})
                  .isOk());
  ASSERT_TRUE(wd.spawn("died", 2, shellArgv("exit 77"), dir + "/c.log", {})
                  .isOk());
  ASSERT_TRUE(wd.spawn("shot", 1, shellArgv("kill -KILL $$"),
                       dir + "/d.log", {})
                  .isOk());
  EXPECT_FALSE(wd.hasIdleSlot());
  EXPECT_TRUE(wd.isRunning("clean"));

  const std::vector<WorkerExit> exits = reapAll(wd, 4);
  ASSERT_EQ(exits.size(), 4u);
  const WorkerExit* clean = exitFor(exits, "clean");
  const WorkerExit* degraded = exitFor(exits, "degraded");
  const WorkerExit* died = exitFor(exits, "died");
  const WorkerExit* shot = exitFor(exits, "shot");
  ASSERT_NE(clean, nullptr);
  ASSERT_NE(degraded, nullptr);
  ASSERT_NE(died, nullptr);
  ASSERT_NE(shot, nullptr);
  // Engine verdict exits are terminal; deaths are retryable crashes.
  EXPECT_EQ(clean->cause, "ok");
  EXPECT_FALSE(clean->retryable);
  EXPECT_EQ(clean->exitCode, 0);
  EXPECT_EQ(degraded->cause, "ok");
  EXPECT_FALSE(degraded->retryable);
  EXPECT_EQ(degraded->exitCode, 4);
  EXPECT_EQ(died->cause, "crash");
  EXPECT_TRUE(died->retryable);
  EXPECT_EQ(died->attempt, 2);
  EXPECT_TRUE(shot->signaled);
  EXPECT_EQ(shot->signal, SIGKILL);
  EXPECT_EQ(shot->cause, "crash");
  EXPECT_TRUE(shot->retryable);
  // Every slot came back.
  EXPECT_EQ(wd.busy(), 0u);
  EXPECT_FALSE(wd.isRunning("clean"));
}

TEST(ServeWatchdog, ExportsExtraEnvAndCapturesTheWorkerLog) {
  const std::string dir = freshDir("env");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  PoolWatchdog wd(PoolWatchdog::Options{1, 3, 100.0});
  ASSERT_TRUE(wd.spawn("envjob", 1,
                       shellArgv("echo marker-$SYSECO_SERVE_TEST_ENV"),
                       dir + "/w.log", {"SYSECO_SERVE_TEST_ENV=hello"})
                  .isOk());
  ASSERT_EQ(reapAll(wd, 1).size(), 1u);
  EXPECT_NE(slurp(dir + "/w.log").find("marker-hello"), std::string::npos);
}

TEST(ServeWatchdog, TerminateKillsAStubbornProcessGroup) {
  const std::string dir = freshDir("term");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  PoolWatchdog wd(PoolWatchdog::Options{1, 3, 100.0});
  // The stand-in shrugs off SIGTERM, so only the escalation to SIGKILL
  // (after the grace) can end it.
  ASSERT_TRUE(wd.spawn("stubborn", 1,
                       shellArgv("trap '' TERM; sleep 600"),
                       dir + "/w.log", {})
                  .isOk());
  ASSERT_TRUE(wd.isRunning("stubborn"));
  wd.terminate("stubborn", 0.2);
  EXPECT_FALSE(wd.isRunning("stubborn"));
  EXPECT_EQ(wd.busy(), 0u);
  EXPECT_TRUE(wd.reap().empty());
}

// --- Accept-loop resource exhaustion taxonomy -----------------------------

TEST(ServeSocket, TransientAcceptErrorsAreExactlyResourceExhaustion) {
  EXPECT_TRUE(net::isTransientAcceptError(EMFILE));
  EXPECT_TRUE(net::isTransientAcceptError(ENFILE));
  EXPECT_TRUE(net::isTransientAcceptError(ENOBUFS));
  EXPECT_TRUE(net::isTransientAcceptError(ENOMEM));
  EXPECT_TRUE(net::isTransientAcceptError(ECONNABORTED));
  EXPECT_FALSE(net::isTransientAcceptError(0));
  EXPECT_FALSE(net::isTransientAcceptError(EBADF));
  EXPECT_FALSE(net::isTransientAcceptError(EINVAL));
}

// --- End-to-end daemon sessions -------------------------------------------

#ifdef SYSECO_CLI_BIN

/// A real daemon event loop on a loopback ephemeral port, in-thread, with
/// the real CLI binary exec'd per job.
struct DaemonHarness {
  std::atomic<bool> stop{false};
  std::atomic<int> port{-1};
  std::thread th;

  void start(ServeOptions opt) {
    opt.port = 0;
    opt.selfExe = SYSECO_CLI_BIN;
    opt.stop = &stop;
    opt.boundHook = [this](std::uint16_t bound) {
      port.store(static_cast<int>(bound));
    };
    th = std::thread([opt] {
      const Status st = runServeDaemon(opt);
      if (!st.isOk()) ADD_FAILURE() << "daemon failed: " << st.toString();
    });
    while (port.load() < 0) subprocess::pollReadable({}, 10);
  }

  ServeClient client() {
    Result<ServeClient> c = ServeClient::connect(
        "127.0.0.1", static_cast<std::uint16_t>(port.load()), 5000);
    EXPECT_TRUE(c.isOk()) << c.status().toString();
    return c.take();
  }

  ~DaemonHarness() {
    stop.store(true);
    if (th.joinable()) th.join();
  }
};

SubmitRequest aluRequest(std::uint64_t seed) {
  SubmitRequest r;
  r.implText = slurp(dataPath("alu_impl.blif"));
  r.specText = slurp(dataPath("alu_spec.blif"));
  r.seed = seed;
  return r;
}

/// A job guaranteed to stay resident: its isolate worker ignores SIGTERM
/// and spins, so only cancellation (SIGKILL escalation) or the isolate
/// supervisor's own deadline ends it.
SubmitRequest hangingRequest(std::uint64_t seed, bool detach) {
  SubmitRequest r = aluRequest(seed);
  r.isolate = true;
  r.faultInject = "isolate.worker=hang";
  r.detach = detach;
  return r;
}

TEST(ServeDaemon, SubmitRunsToDoneWithInlineArtifacts) {
  DaemonHarness daemon;
  ServeOptions opt;
  opt.stateDir = freshDir("e2e_done");
  daemon.start(opt);
  ServeClient client = daemon.client();

  Result<SubmitOutcome> sub = client.submit(aluRequest(7));
  ASSERT_TRUE(sub.isOk()) << sub.status().toString();
  ASSERT_TRUE(sub.value().accepted) << sub.value().rejected.reason;
  const std::string job = sub.value().job;
  EXPECT_EQ(job, "j000001");

  Result<JobState> done = client.wait(job, 50);
  ASSERT_TRUE(done.isOk()) << done.status().toString();
  EXPECT_EQ(done.value().state, "done");
  EXPECT_EQ(done.value().exitCode, 0);
  EXPECT_EQ(done.value().attempt, 1);
  // Finished jobs travel whole: report and rectified netlist inline, so a
  // remote client needs no shared filesystem with the daemon.
  EXPECT_NE(done.value().reportText.find("\"outputs\""), std::string::npos);
  EXPECT_NE(done.value().outText.find(".model"), std::string::npos);

  Result<JobState> ghost = client.status("j999999");
  ASSERT_TRUE(ghost.isOk());
  EXPECT_EQ(ghost.value().state, "unknown");
}

TEST(ServeDaemon, CrashingJobIsQuarantinedAtTheAttemptCeiling) {
  DaemonHarness daemon;
  ServeOptions opt;
  opt.stateDir = freshDir("e2e_quarantine");
  opt.maxAttempts = 2;
  opt.backoffBaseMs = 20.0;
  daemon.start(opt);
  ServeClient client = daemon.client();

  // The worker self-crashes at every checkpoint commit; two attempts
  // cannot finish the alu case, so the watchdog must quarantine instead
  // of looping forever.
  SubmitRequest req = aluRequest(7);
  req.faultInject = "journal.checkpoint=crash@0";
  Result<SubmitOutcome> sub = client.submit(req);
  ASSERT_TRUE(sub.isOk());
  ASSERT_TRUE(sub.value().accepted);

  Result<JobState> st = client.wait(sub.value().job, 50);
  ASSERT_TRUE(st.isOk());
  EXPECT_EQ(st.value().state, "failed");
  EXPECT_EQ(st.value().cause, "crash");
  EXPECT_NE(st.value().detail.find("quarantined"), std::string::npos);
  EXPECT_EQ(st.value().attempt, 2);
}

TEST(ServeDaemon, AdmissionShedsLoadWithStructuredReasons) {
  DaemonHarness daemon;
  ServeOptions opt;
  opt.stateDir = freshDir("e2e_admission");
  opt.limits.maxResidentJobs = 1;
  daemon.start(opt);
  ServeClient client = daemon.client();

  // Unparseable payloads are rejected at the door, before any queue state
  // exists for them.
  SubmitRequest garbage = aluRequest(1);
  garbage.implText = "this is not a blif netlist";
  Result<SubmitOutcome> bad = client.submit(garbage);
  ASSERT_TRUE(bad.isOk()) << bad.status().toString();
  ASSERT_FALSE(bad.value().accepted);
  EXPECT_EQ(bad.value().rejected.reason, "bad-request");

  Result<SubmitOutcome> first = client.submit(hangingRequest(1, true));
  ASSERT_TRUE(first.isOk());
  ASSERT_TRUE(first.value().accepted);

  // The queue is at its watermark: load is shed with a structured reason,
  // not a dropped connection.
  Result<SubmitOutcome> shed = client.submit(aluRequest(2));
  ASSERT_TRUE(shed.isOk()) << shed.status().toString();
  ASSERT_FALSE(shed.value().accepted);
  EXPECT_EQ(shed.value().rejected.reason, "queue-full");
  EXPECT_NE(shed.value().rejected.detail.find("limit 1"), std::string::npos);

  // Cancelling the resident job frees the ledger; the same submit is
  // admitted again and runs to completion.
  Result<JobState> cancelled = client.cancel(first.value().job);
  ASSERT_TRUE(cancelled.isOk());
  EXPECT_EQ(cancelled.value().state, "cancelled");
  EXPECT_EQ(cancelled.value().cause, "client-cancel");

  Result<SubmitOutcome> retry = client.submit(aluRequest(2));
  ASSERT_TRUE(retry.isOk());
  ASSERT_TRUE(retry.value().accepted);
  Result<JobState> done = client.wait(retry.value().job, 50);
  ASSERT_TRUE(done.isOk());
  EXPECT_EQ(done.value().state, "done");
}

TEST(ServeDaemon, ClientDisconnectCancelsBoundJobsButNotDetachedOnes) {
  DaemonHarness daemon;
  ServeOptions opt;
  opt.stateDir = freshDir("e2e_disconnect");
  opt.poolSize = 1;
  daemon.start(opt);

  std::string bound, detached;
  {
    ServeClient submitter = daemon.client();
    Result<SubmitOutcome> a = submitter.submit(hangingRequest(1, false));
    Result<SubmitOutcome> b = submitter.submit(hangingRequest(2, true));
    ASSERT_TRUE(a.isOk() && b.isOk());
    ASSERT_TRUE(a.value().accepted && b.value().accepted);
    bound = a.value().job;
    detached = b.value().job;
    // The submitting connection dies here, with the bound job mid-run and
    // the detached job queued behind it.
  }

  ServeClient observer = daemon.client();
  JobState boundState;
  for (int waited = 0; waited < 20000; waited += 50) {
    Result<JobState> st = observer.status(bound);
    ASSERT_TRUE(st.isOk()) << st.status().toString();
    boundState = st.value();
    if (boundState.state == "cancelled") break;
    subprocess::pollReadable({}, 50);
  }
  EXPECT_EQ(boundState.state, "cancelled");
  EXPECT_EQ(boundState.cause, "client-disconnect");

  // The detached job survived its submitter and is still resident (the
  // freed slot now runs it, or it is still queued); it answers to any
  // later connection, which cancels it for teardown.
  Result<JobState> det = observer.status(detached);
  ASSERT_TRUE(det.isOk());
  EXPECT_TRUE(det.value().state == "queued" || det.value().state == "running")
      << det.value().state;
  Result<JobState> cleaned = observer.cancel(detached);
  ASSERT_TRUE(cleaned.isOk());
  EXPECT_EQ(cleaned.value().state, "cancelled");
}

// --- SIGKILL the daemon: recovery and bit-identical drain -----------------

class ServeCliTest : public ::testing::Test {
 protected:
  static int runCli(const std::string& args, const std::string& logPath) {
    const std::string cmd = std::string(SYSECO_CLI_BIN) + " " + args + " > '" +
                            logPath + "' 2>&1";
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
  }

  /// Starts a --serve daemon process; returns its pid and fills `port`
  /// from --port-file once it is listening.
  static pid_t spawnDaemon(const std::string& dir, const std::string& tag,
                           const std::string& extraFlags, int* port) {
    const std::string portFile = dir + "/" + tag + ".port";
    const std::string pidFile = dir + "/" + tag + ".pid";
    ::unlink(portFile.c_str());
    const std::string cmd =
        "sh -c '" + std::string(SYSECO_CLI_BIN) + " --serve 0 --serve-state " +
        dir + "/state --port-file " + portFile + " " + extraFlags + " > " +
        dir + "/" + tag + ".log 2>&1 & echo $!' > " + pidFile;
    if (std::system(cmd.c_str()) != 0) return -1;
    for (int waited = 0; waited < 10000; waited += 50) {
      const std::string text = slurp(portFile);
      if (!text.empty() && text.back() == '\n') {
        *port = std::atoi(text.c_str());
        return static_cast<pid_t>(std::atol(slurp(pidFile).c_str()));
      }
      subprocess::pollReadable({}, 50);
    }
    return -1;
  }

  /// The last journaled verdicts record, raw bytes (the bit-identity
  /// comparison surface the kill-and-resume suite established).
  static std::string lastVerdicts(const std::string& journalDir) {
    const std::string data = slurp(journalDir + "/journal.jsonl");
    const std::size_t at = data.rfind("{\"type\":\"verdicts\"");
    if (at == std::string::npos) return "";
    const std::size_t end = data.find('\n', at);
    return data.substr(at, end == std::string::npos ? data.size() - at
                                                    : end - at);
  }
};

TEST_F(ServeCliTest, SigkilledDaemonRecoversItsQueueAndDrainsBitIdentical) {
  const std::string dir = freshDir("e2e_kill9");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string pair = "--impl " + dataPath("alu_impl.blif") +
                           " --spec " + dataPath("alu_spec.blif");

  // Undisturbed one-shot references for both seeds.
  for (int seed : {1, 2}) {
    const std::string tag = std::to_string(seed);
    ASSERT_EQ(runCli(pair + " --seed " + tag + " --journal " + dir + "/ref" +
                         tag + " --out " + dir + "/ref" + tag + ".blif",
                     dir + "/ref" + tag + ".log"),
              0);
  }

  // Daemon life 1: two self-crashing jobs (one committed checkpoint per
  // attempt), then SIGKILL the daemon while they are mid-heal.
  int port = 0;
  const pid_t first =
      spawnDaemon(dir, "d1", "--serve-pool 1 --serve-attempts 40", &port);
  ASSERT_GT(first, 0) << slurp(dir + "/d1.log");
  for (int seed : {1, 2}) {
    const std::string tag = std::to_string(seed);
    ASSERT_EQ(runCli("--connect 127.0.0.1:" + std::to_string(port) + " " +
                         pair + " --seed " + tag +
                         " --detach --submit-fault "
                         "journal.checkpoint=crash@0",
                     dir + "/submit" + tag + ".log"),
              0)
        << slurp(dir + "/submit" + tag + ".log");
  }
  subprocess::pollReadable({}, 900);
  ASSERT_EQ(::kill(first, SIGKILL), 0);
  for (int waited = 0; waited < 5000; waited += 50) {
    if (::kill(first, 0) != 0) break;
    subprocess::pollReadable({}, 50);
  }
  // The WAL must already hold the jobs' dispatch history; nothing was
  // drained yet when the daemon died.
  const std::string wal = slurp(dir + "/state/queue/journal.jsonl");
  EXPECT_NE(wal.find("\"event\":\"running\""), std::string::npos);
  EXPECT_EQ(wal.find("\"event\":\"done\""), std::string::npos);

  // Daemon life 2: recovery re-queues both jobs with resume; the drain
  // must converge and every verdict record and rectified netlist must be
  // bit-identical to the undisturbed references.
  const pid_t second =
      spawnDaemon(dir, "d2", "--serve-pool 1 --serve-attempts 40", &port);
  ASSERT_GT(second, 0) << slurp(dir + "/d2.log");
  for (int seed : {1, 2}) {
    const std::string tag = std::to_string(seed);
    const std::string job = "j00000" + tag;
    EXPECT_EQ(runCli("--connect 127.0.0.1:" + std::to_string(port) +
                         " --wait " + job,
                     dir + "/wait" + tag + ".log"),
              0)
        << slurp(dir + "/wait" + tag + ".log");
    const std::string ref = lastVerdicts(dir + "/ref" + tag);
    const std::string healed = lastVerdicts(dir + "/state/jobs/" + job +
                                            "/journal");
    ASSERT_FALSE(ref.empty());
    EXPECT_EQ(healed, ref) << "job " << job;
    EXPECT_EQ(slurp(dir + "/state/jobs/" + job + "/out.blif"),
              slurp(dir + "/ref" + tag + ".blif"))
        << "job " << job;
  }
  ::kill(second, SIGTERM);
  for (int waited = 0; waited < 5000; waited += 50) {
    if (::kill(second, 0) != 0) break;
    subprocess::pollReadable({}, 50);
  }
  ::kill(second, SIGKILL);
}

#endif  // SYSECO_CLI_BIN

}  // namespace
}  // namespace syseco::serve
