// Property tests for the #SAT candidate ranker: on complete sampled
// signatures the model-counting score must reproduce the word-level
// popcount key *exactly* (this equality is what lets RankMode::kSharpSat
// default on without perturbing any verdict), and the measured fractions
// must match the popcount ratios.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "eco/sharpsat.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

/// The legacy word-level agreement key from candidateNets, verbatim.
std::ptrdiff_t wordKey(const Signature& pinSig, const Signature& candSig,
                       const std::vector<std::uint64_t>& errMask,
                       const std::vector<std::uint64_t>& correctMask,
                       const std::vector<std::uint64_t>& obsFullMask) {
  std::ptrdiff_t key = 0;
  for (std::size_t wd = 0; wd < errMask.size(); ++wd) {
    const std::uint64_t obsF = obsFullMask.empty() ? ~0ULL : obsFullMask[wd];
    const std::uint64_t diff = pinSig[wd] ^ candSig[wd];
    key += std::popcount(diff & errMask[wd]);
    key -= 2 * std::popcount(diff & correctMask[wd] & obsF);
  }
  return key;
}

std::size_t popMasked(const Signature& pinSig, const Signature& candSig,
                      const std::vector<std::uint64_t>& mask) {
  std::size_t n = 0;
  for (std::size_t wd = 0; wd < mask.size(); ++wd)
    n += static_cast<std::size_t>(
        std::popcount((pinSig[wd] ^ candSig[wd]) & mask[wd]));
  return n;
}

std::vector<std::uint64_t> randomWords(Rng& rng, std::size_t words) {
  std::vector<std::uint64_t> v(words);
  for (auto& w : v) w = rng.next();
  return v;
}

TEST(SharpSat, KeyEqualsWordLevelKeyOnRandomSignatures) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    // Word counts straddle the power-of-two boundary on purpose: 3 and 5
    // exercise the zero-padded truth-table tail.
    for (std::size_t words : {1u, 3u, 4u, 5u, 16u}) {
      const Signature pinSig = randomWords(rng, words);
      const auto errMask = randomWords(rng, words);
      auto correctMask = randomWords(rng, words);
      // Disjoint domains, as in the engine (error vs. correct samples).
      for (std::size_t wd = 0; wd < words; ++wd) correctMask[wd] &= ~errMask[wd];
      const auto obsFull = randomWords(rng, words);

      SharpSatRanker ranker(pinSig, errMask, correctMask, obsFull);
      for (int c = 0; c < 12; ++c) {
        const Signature cand = randomWords(rng, words);
        const CoverageScore s = ranker.score(cand);
        EXPECT_EQ(s.rankKey,
                  wordKey(pinSig, cand, errMask, correctMask, obsFull));
      }
    }
  }
}

TEST(SharpSat, FractionsMatchPopcountRatios) {
  Rng rng(7);
  const std::size_t words = 8;
  const Signature pinSig = randomWords(rng, words);
  const auto errMask = randomWords(rng, words);
  auto correctMask = randomWords(rng, words);
  for (std::size_t wd = 0; wd < words; ++wd) correctMask[wd] &= ~errMask[wd];

  std::vector<std::uint64_t> obsCorrect(words);
  // Empty obsFullMask means observable everywhere.
  for (std::size_t wd = 0; wd < words; ++wd) obsCorrect[wd] = correctMask[wd];

  SharpSatRanker ranker(pinSig, errMask, correctMask, {});
  std::size_t errCount = 0, obsCount = 0;
  for (std::size_t wd = 0; wd < words; ++wd) {
    errCount += static_cast<std::size_t>(std::popcount(errMask[wd]));
    obsCount += static_cast<std::size_t>(std::popcount(obsCorrect[wd]));
  }
  for (int c = 0; c < 8; ++c) {
    const Signature cand = randomWords(rng, words);
    const CoverageScore s = ranker.score(cand);
    const double cov = static_cast<double>(popMasked(pinSig, cand, errMask)) /
                       static_cast<double>(std::max<std::size_t>(errCount, 1));
    const double risk =
        static_cast<double>(popMasked(pinSig, cand, obsCorrect)) /
        static_cast<double>(std::max<std::size_t>(obsCount, 1));
    EXPECT_DOUBLE_EQ(s.errorCoverage, cov);
    EXPECT_DOUBLE_EQ(s.breakRisk, risk);
  }
}

TEST(SharpSat, ManyQueriesSurviveArenaRecycling) {
  // Enough queries to cross the internal manager-reset threshold; scores
  // must stay exact across the rebuild.
  Rng rng(11);
  const std::size_t words = 16;
  const Signature pinSig = randomWords(rng, words);
  const auto errMask = randomWords(rng, words);
  auto correctMask = randomWords(rng, words);
  for (std::size_t wd = 0; wd < words; ++wd) correctMask[wd] &= ~errMask[wd];

  SharpSatRanker ranker(pinSig, errMask, correctMask, {});
  for (int c = 0; c < 600; ++c) {
    const Signature cand = randomWords(rng, words);
    EXPECT_EQ(ranker.score(cand).rankKey,
              wordKey(pinSig, cand, errMask, correctMask, {}));
  }
}

TEST(SharpSat, IdenticalSignatureScoresZero) {
  Rng rng(3);
  const std::size_t words = 4;
  const Signature pinSig = randomWords(rng, words);
  const auto errMask = randomWords(rng, words);
  auto correctMask = randomWords(rng, words);
  for (std::size_t wd = 0; wd < words; ++wd) correctMask[wd] &= ~errMask[wd];

  SharpSatRanker ranker(pinSig, errMask, correctMask, {});
  const CoverageScore s = ranker.score(pinSig);
  EXPECT_EQ(s.rankKey, 0);
  EXPECT_EQ(s.errorCoverage, 0.0);
  EXPECT_EQ(s.breakRisk, 0.0);
}

}  // namespace
}  // namespace syseco
