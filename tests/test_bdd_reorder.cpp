// Property tests for dynamic variable reordering (sifting): a reorder must
// preserve every outstanding Ref's function - satCount, ISOP covers,
// pickCube and full-assignment evaluation all agree with a pre-reorder
// clone of the same functions in an untouched manager - and the budget
// contract (BddLimitExceeded, governor ledger semantics) must survive a
// reorder triggered mid-workload.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

/// Builds the same random function pool in `mgr` via layered random ops.
/// Deterministic in (rng seed, numVars, rounds).
std::vector<Bdd::Ref> buildRandomPool(Bdd& mgr, Rng& rng, std::uint32_t rounds) {
  std::vector<Bdd::Ref> pool;
  for (std::uint32_t v = 0; v < mgr.numVars(); ++v) pool.push_back(mgr.var(v));
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const Bdd::Ref a = pool[rng.next() % pool.size()];
    const Bdd::Ref b = pool[rng.next() % pool.size()];
    const Bdd::Ref c = pool[rng.next() % pool.size()];
    switch (rng.next() % 5) {
      case 0: pool.push_back(mgr.bAnd(a, b)); break;
      case 1: pool.push_back(mgr.bOr(a, b)); break;
      case 2: pool.push_back(mgr.bXor(a, b)); break;
      case 3: pool.push_back(mgr.bNot(a)); break;
      default: pool.push_back(mgr.ite(a, b, c)); break;
    }
  }
  return pool;
}

/// Exhaustive function fingerprint (truth table) of f.
std::vector<bool> truthOf(const Bdd& mgr, Bdd::Ref f) {
  const std::uint32_t n = mgr.numVars();
  std::vector<bool> tt;
  tt.reserve(std::size_t{1} << n);
  std::vector<std::uint8_t> a(n, 0);
  for (std::uint64_t k = 0; k < (1ULL << n); ++k) {
    for (std::uint32_t j = 0; j < n; ++j) a[j] = (k >> j) & 1;
    tt.push_back(mgr.eval(f, a));
  }
  return tt;
}

TEST(BddReorder, SiftPreservesFunctionsAcrossRandomManagers) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rngA(seed), rngB(seed);
    const std::uint32_t numVars = 6 + seed % 5;
    Bdd mgr(numVars);
    Bdd clone(numVars);  // untouched reference manager
    auto pool = buildRandomPool(mgr, rngA, 40);
    auto ref = buildRandomPool(clone, rngB, 40);
    ASSERT_EQ(pool.size(), ref.size());

    // Pre-reorder fingerprints from the clone.
    std::vector<double> counts;
    std::vector<std::size_t> isopSizes;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      counts.push_back(clone.satCount(ref[i]));
      isopSizes.push_back(clone.isop(ref[i]).size());
    }

    const std::size_t live = mgr.reorderNow(pool);
    EXPECT_GT(mgr.stats().reorders, 0u);
    EXPECT_LE(live, mgr.nodeCount());

    for (std::size_t i = 0; i < pool.size(); ++i) {
      // Function identity: exhaustive truth tables agree.
      EXPECT_EQ(truthOf(mgr, pool[i]), truthOf(clone, ref[i]))
          << "seed " << seed << " fn " << i;
      // satCount is order-independent.
      EXPECT_DOUBLE_EQ(mgr.satCount(pool[i]), counts[i]);
      // An ISOP cover taken after the reorder is still a valid cover of
      // the same function (isop() self-checks cover bounds internally)
      // and cube-for-cube evaluates inside the onset.
      const auto cubes = mgr.isop(pool[i]);
      if (counts[i] == 0.0) EXPECT_TRUE(cubes.empty());
      for (const auto& cube : cubes) {
        // Every completion of the cube satisfies the function: check the
        // all-zeros and all-ones completions of the don't-cares.
        for (int fill = 0; fill <= 1; ++fill) {
          std::vector<std::uint8_t> a(numVars, 0);
          for (std::uint32_t v = 0; v < numVars; ++v)
            a[v] = cube.lits[v] >= 0 ? static_cast<std::uint8_t>(cube.lits[v])
                                     : static_cast<std::uint8_t>(fill);
          EXPECT_TRUE(mgr.eval(pool[i], a));
        }
      }
      // pickCube yields a satisfying cube iff the function is satisfiable.
      BddCube cube;
      const bool sat = mgr.pickCube(pool[i], cube);
      EXPECT_EQ(sat, counts[i] > 0.0);
      if (sat) {
        for (int fill = 0; fill <= 1; ++fill) {
          std::vector<std::uint8_t> a(numVars, 0);
          for (std::uint32_t v = 0; v < numVars; ++v)
            a[v] = cube.lits[v] >= 0 ? static_cast<std::uint8_t>(cube.lits[v])
                                     : static_cast<std::uint8_t>(fill);
          EXPECT_TRUE(mgr.eval(pool[i], a));
        }
      }
    }

    // The level/var permutations stay mutually inverse.
    for (std::uint32_t v = 0; v < numVars; ++v)
      EXPECT_EQ(mgr.varAt(mgr.levelOf(v)), v);
  }
}

TEST(BddReorder, ReorderShrinksAnInterleavedComparator) {
  // f = AND_i (a_i == b_i) with interleaving-hostile order a0..a3 b0..b3:
  // the identity order needs exponentially many nodes, the interleaved
  // order is linear - sifting must find (most of) that reduction.
  const std::uint32_t k = 5;
  Bdd mgr(2 * k);
  Bdd::Ref f = Bdd::kTrue;
  for (std::uint32_t i = 0; i < k; ++i)
    f = mgr.bAnd(f, mgr.bXnor(mgr.var(i), mgr.var(k + i)));
  const std::size_t before = mgr.nodeCount();
  const std::size_t live = mgr.reorderNow({f});
  EXPECT_LT(live, before / 2);
  // Function must survive verbatim.
  std::vector<std::uint8_t> a(2 * k, 0);
  EXPECT_TRUE(mgr.eval(f, a));
  a[0] = 1;
  EXPECT_FALSE(mgr.eval(f, a));
  a[k] = 1;
  EXPECT_TRUE(mgr.eval(f, a));
}

TEST(BddReorder, AutoReorderTriggersViaRootProvider) {
  BddConfig cfg;
  cfg.reorder = BddReorder::kSift;
  cfg.reorderThreshold = 64;
  Bdd mgr(12, cfg);
  std::vector<Bdd::Ref> roots;
  mgr.setRootProvider([&](std::vector<Bdd::Ref>& out) {
    out.insert(out.end(), roots.begin(), roots.end());
  });
  Bdd::Ref f = Bdd::kTrue;
  roots.push_back(f);
  for (std::uint32_t i = 0; i < 6; ++i) {
    f = mgr.bAnd(f, mgr.bXnor(mgr.var(i), mgr.var(6 + i)));
    roots.back() = f;
  }
  EXPECT_GT(mgr.stats().reorders, 0u);
  std::vector<std::uint8_t> a(12, 1);
  EXPECT_TRUE(mgr.eval(f, a));
}

TEST(BddReorder, LimitStillFiresUnderTightBudgetMidReorder) {
  // A manager with a node limit small enough to trip during sifting must
  // leave the table consistent: the reorder aborts, outstanding functions
  // stay intact, and the *next* oversized operation still throws.
  BddConfig cfg;
  cfg.nodeLimit = 900;
  Bdd mgr(14, cfg);
  Rng rng(7);
  std::vector<Bdd::Ref> pool;
  try {
    pool = buildRandomPool(mgr, rng, 60);
  } catch (const BddLimitExceeded&) {
    // Pool construction itself may trip; whatever was built is enough.
    for (std::uint32_t v = 0; v < mgr.numVars(); ++v)
      pool.push_back(mgr.var(v));
  }
  std::vector<std::vector<bool>> before;
  for (Bdd::Ref r : pool) before.push_back(truthOf(mgr, r));
  // Reorder near the limit: sift allocations may trip BddLimitExceeded
  // internally; reorderNow absorbs it and stays consistent.
  mgr.reorderNow(pool);
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_EQ(truthOf(mgr, pool[i]), before[i]);
  // The limit semantics survive: an operation that needs many fresh nodes
  // still reports exhaustion rather than corrupting the table.
  try {
    Bdd::Ref g = Bdd::kFalse;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      std::vector<std::uint64_t> bits{0x9e3779b97f4a7c15ULL * (i + 1)};
      g = mgr.bXor(g, mgr.fromTruthTable(bits, {0, 1, 2, 3, 4, 5}));
    }
  } catch (const BddLimitExceeded&) {
    SUCCEED();
    return;
  }
  FAIL() << "node limit never fired";
}

TEST(BddReorder, GovernorDeadlineUnwindsNotSwallowed) {
  // StatusError{kDeadlineExceeded} must pass through reordering untouched
  // (only BddLimitExceeded is absorbed as shrink-and-retry).
  ResourceGuard guard(ResourceGuard::Limits{.deadlineSeconds = 1e-9});
  BddConfig cfg;
  cfg.reorder = BddReorder::kSift;
  cfg.reorderThreshold = 16;
  Bdd mgr(10, cfg);
  std::vector<Bdd::Ref> roots;
  mgr.setRootProvider([&](std::vector<Bdd::Ref>& out) { out = roots; });
  mgr.setResourceGuard(&guard);
  EXPECT_THROW(
      {
        Bdd::Ref f = Bdd::kTrue;
        for (std::uint32_t i = 0; i < 5; ++i) {
          f = mgr.bAnd(f, mgr.bXnor(mgr.var(i), mgr.var(5 + i)));
          roots.assign(1, f);
        }
      },
      StatusError);
}

TEST(BddReorder, OffModeMatchesLegacyNodeForNode) {
  // reorder=off with any cache sizing must allocate the identical node
  // sequence (Ref values included): the unique table deduplicates, so the
  // cache policy cannot change which nodes exist.
  BddConfig tiny;
  tiny.cacheBits = 4;
  tiny.maxCacheBits = 5;
  Bdd a(9);
  Bdd b(9, tiny);
  Rng ra(42), rb(42);
  const auto pa = buildRandomPool(a, ra, 80);
  const auto pb = buildRandomPool(b, rb, 80);
  ASSERT_EQ(pa.size(), pb.size());
  EXPECT_EQ(a.nodeCount(), b.nodeCount());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  EXPECT_GT(b.stats().cacheMisses, 0u);
}

TEST(BddReorder, CompositeOpsSurviveAggressiveAutoReorder) {
  // bXor/bXnor chain two ite steps and mintermOf chains a whole literal
  // product; their intermediates are reachable from no caller-held root.
  // With a reorder armed at every operation boundary, any intermediate
  // that leaks across a boundary gets detached and corrupts the result -
  // the composite ops must therefore run each chain under one scope.
  BddConfig cfg;
  cfg.reorder = BddReorder::kSift;
  cfg.reorderThreshold = 1;
  cfg.reorderGrowth = 1.0;  // re-arm immediately after every reorder
  Bdd mgr(10, cfg);
  Bdd ref(10);  // untouched identity-order reference
  std::vector<Bdd::Ref> roots;
  mgr.setRootProvider([&](std::vector<Bdd::Ref>& out) {
    out.insert(out.end(), roots.begin(), roots.end());
  });
  Rng rngA(5), rngB(5);
  auto pool = buildRandomPool(mgr, rngA, 30);
  auto pref = buildRandomPool(ref, rngB, 30);
  roots = pool;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const std::size_t x = i % pool.size();
    const std::size_t y = (i * 7 + 3) % pool.size();
    Bdd::Ref r;
    Bdd::Ref rr;
    switch (i % 3) {
      case 0:
        r = mgr.bXor(pool[x], pool[y]);
        rr = ref.bXor(pref[x], pref[y]);
        break;
      case 1:
        r = mgr.bXnor(pool[x], pool[y]);
        rr = ref.bXnor(pref[x], pref[y]);
        break;
      default: {
        const std::vector<std::uint32_t> vars{0, 3, 5, 7};
        r = mgr.mintermOf(i % 16, vars);
        rr = ref.mintermOf(i % 16, vars);
        break;
      }
    }
    pool.push_back(r);
    pref.push_back(rr);
    roots = pool;
    EXPECT_EQ(truthOf(mgr, r), truthOf(ref, rr)) << "op " << i;
  }
  EXPECT_GT(mgr.stats().reorders, 0u);
}

}  // namespace
}  // namespace syseco
