// Unit and property tests for the CDCL SAT solver, including randomized
// cross-checking against brute-force enumeration.

#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

Lit pos(Var v) { return Lit::make(v, false); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(Sat, TrivialSatAndModel) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  ASSERT_TRUE(s.addClause(pos(a)));
  ASSERT_TRUE(s.addClause(neg(b)));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_FALSE(s.modelValue(b));
}

TEST(Sat, UnitConflictIsUnsat) {
  Solver s;
  const Var a = s.newVar();
  ASSERT_TRUE(s.addClause(pos(a)));
  EXPECT_FALSE(s.addClause(neg(a)));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes.
  Solver s;
  Var x[3][2];
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < 3; ++p) s.addClause(pos(x[p][0]), pos(x[p][1]));
  for (int h = 0; h < 2; ++h)
    for (int p1 = 0; p1 < 3; ++p1)
      for (int p2 = p1 + 1; p2 < 3; ++p2)
        s.addClause(neg(x[p1][h]), neg(x[p2][h]));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Sat, PigeonHole5Into4IsUnsat) {
  Solver s;
  std::vector<std::vector<Var>> x(5, std::vector<Var>(4));
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < 5; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < 4; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < 4; ++h)
    for (int p1 = 0; p1 < 5; ++p1)
      for (int p2 = p1 + 1; p2 < 5; ++p2)
        s.addClause(neg(x[p1][h]), neg(x[p2][h]));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Sat, AssumptionsSelectModels) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(pos(a), pos(b));  // a or b
  EXPECT_EQ(s.solve({neg(a)}), Solver::Result::Sat);
  EXPECT_TRUE(s.modelValue(b));
  EXPECT_EQ(s.solve({neg(b)}), Solver::Result::Sat);
  EXPECT_TRUE(s.modelValue(a));
  EXPECT_EQ(s.solve({neg(a), neg(b)}), Solver::Result::Unsat);
  // Solver stays usable incrementally after Unsat-under-assumptions.
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard instance (PHP 8/7) with a tiny budget must give up cleanly.
  Solver s;
  std::vector<std::vector<Var>> x(8, std::vector<Var>(7));
  for (auto& row : x)
    for (auto& v : row) v = s.newVar();
  for (int p = 0; p < 8; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < 7; ++h) c.push_back(pos(x[p][h]));
    s.addClause(c);
  }
  for (int h = 0; h < 7; ++h)
    for (int p1 = 0; p1 < 8; ++p1)
      for (int p2 = p1 + 1; p2 < 8; ++p2)
        s.addClause(neg(x[p1][h]), neg(x[p2][h]));
  EXPECT_EQ(s.solve({}, 5), Solver::Result::Unknown);
}

TEST(Sat, DuplicateAndTautologicalClausesAreHandled) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(a), pos(b)}));
  ASSERT_TRUE(s.addClause({pos(a), neg(a)}));  // tautology: dropped
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

/// Brute-force evaluation of a CNF.
bool bruteForceSat(const std::vector<std::vector<Lit>>& cnf, int numVars,
                   std::uint64_t* modelOut = nullptr) {
  for (std::uint64_t m = 0; m < (1ULL << numVars); ++m) {
    bool all = true;
    for (const auto& clause : cnf) {
      bool any = false;
      for (const Lit& l : clause) {
        const bool val = (m >> l.var()) & 1;
        if (val != l.sign()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) {
      if (modelOut) *modelOut = m;
      return true;
    }
  }
  return false;
}

class SatRandomCnf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatRandomCnf, AgreesWithBruteForce) {
  // Random 3-SAT near the phase transition, cross-checked exhaustively.
  Rng rng(GetParam());
  const int numVars = 10;
  const int numClauses = 42;
  std::vector<std::vector<Lit>> cnf;
  Solver s;
  for (int v = 0; v < numVars; ++v) s.newVar();
  bool ok = true;
  for (int c = 0; c < numClauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      const Var v = static_cast<Var>(rng.below(numVars));
      clause.push_back(Lit::make(v, rng.flip()));
    }
    cnf.push_back(clause);
    ok = s.addClause(clause) && ok;
  }
  const bool expected = bruteForceSat(cnf, numVars);
  const Solver::Result got = ok ? s.solve() : Solver::Result::Unsat;
  EXPECT_EQ(got == Solver::Result::Sat, expected);
  if (got == Solver::Result::Sat) {
    // The model must satisfy every clause.
    for (const auto& clause : cnf) {
      bool any = false;
      for (const Lit& l : clause)
        any |= (s.modelValue(l.var()) != l.sign());
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCnf,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Sat, LargeRandomSatisfiableChain) {
  // Implication chain: x0 -> x1 -> ... -> x999; assuming x0 forces all.
  Solver s;
  std::vector<Var> x(1000);
  for (auto& v : x) v = s.newVar();
  for (std::size_t i = 0; i + 1 < x.size(); ++i)
    s.addClause(neg(x[i]), pos(x[i + 1]));
  EXPECT_EQ(s.solve({pos(x[0])}), Solver::Result::Sat);
  for (const Var v : x) EXPECT_TRUE(s.modelValue(v));
  // Now forbid the last one: chain is contradictory under x0.
  s.addClause(neg(x.back()));
  EXPECT_EQ(s.solve({pos(x[0])}), Solver::Result::Unsat);
  EXPECT_EQ(s.solve({neg(x[0])}), Solver::Result::Sat);
}

}  // namespace
}  // namespace syseco
