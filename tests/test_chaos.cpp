// Deterministic chaos layer: the fallible storage shim, seeded fault
// schedules (util/fault_plan), journal poisoning + truncate-back, the
// torn-tail tolerance of scanJournal, and SIGKILL-during-compaction
// recovery for the serve WALs (old or new WAL, never a mix).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/batch_ledger.hpp"
#include "serve/codec.hpp"
#include "serve/job_queue.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/fault_plan.hpp"
#include "util/journal.hpp"

namespace syseco {
namespace {

std::string testDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_chaos_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << content;
}

/// Mirrors the journal's frame encoding so tests can hand-craft tails.
std::string frame(std::string_view payload) {
  char head[32];
  std::snprintf(head, sizeof head, "J1 %08x %08x ",
                static_cast<std::uint32_t>(payload.size()), crc32(payload));
  return std::string(head) + std::string(payload) + "\n";
}

std::string marker(std::size_t records, std::size_t bytes) {
  return "syseco-journal-commit-v1 " + std::to_string(records) + " " +
         std::to_string(bytes) + "\n";
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override {
    fault::Injector::instance().reset();
    ::unsetenv("SYSECO_FAULT_PLAN");
  }
};

// --- Fallible shim semantics ----------------------------------------------

class ShimTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    dir_ = testDir("shim");
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0);
    path_ = dir_ + "/target";
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd_, 0);
  }
  void TearDown() override {
    if (fd_ >= 0) ::close(fd_);
    ChaosTest::TearDown();
  }
  std::string dir_, path_;
  int fd_ = -1;
};

TEST_F(ShimTest, UnarmedSitePassesThrough) {
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello", 5, "shim.write"), 5);
  EXPECT_EQ(fault::fallibleFsync(fd_, "shim.fsync"), 0);
  EXPECT_EQ(slurp(path_), "hello");
}

TEST_F(ShimTest, EnospcFailsWithoutWriting) {
  fault::Injector::instance().arm("shim.write", fault::Kind::kEnospc);
  errno = 0;
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello", 5, "shim.write"), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(slurp(path_), "");
}

TEST_F(ShimTest, EioFailsWithoutWriting) {
  fault::Injector::instance().arm("shim.write", fault::Kind::kEio);
  errno = 0;
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello", 5, "shim.write"), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(slurp(path_), "");
}

TEST_F(ShimTest, ShortWritePersistsThePrefixItReports) {
  fault::Injector::instance().arm("shim.write", fault::Kind::kShortWrite,
                                  /*skip=*/0, /*arg=*/3);
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello world", 11, "shim.write"), 3);
  EXPECT_EQ(slurp(path_), "hel");
}

TEST_F(ShimTest, ShortWriteWithoutArgStillWritesSomething) {
  // arg=0 means "auto" (half the buffer) - and a 1-byte buffer must still
  // make progress, or a correct retry loop would spin forever.
  fault::Injector::instance().arm("shim.write", fault::Kind::kShortWrite);
  EXPECT_EQ(fault::fallibleWrite(fd_, "x", 1, "shim.write"), 1);
  EXPECT_EQ(slurp(path_), "x");
}

TEST_F(ShimTest, TornFramePersistsArgBytesThenFails) {
  fault::Injector::instance().arm("shim.write", fault::Kind::kTornFrame,
                                  /*skip=*/0, /*arg=*/4);
  errno = 0;
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello world", 11, "shim.write"), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(slurp(path_), "hell");  // the torn prefix really landed
}

TEST_F(ShimTest, FsyncFailReturnsEioWithoutCrashing) {
  fault::Injector::instance().arm("shim.fsync", fault::Kind::kFsyncFail);
  errno = 0;
  EXPECT_EQ(fault::fallibleFsync(fd_, "shim.fsync"), -1);
  EXPECT_EQ(errno, EIO);
}

TEST_F(ShimTest, NonStorageKindPassesThroughTheShim) {
  // A budget trigger on a storage site must not corrupt the write path.
  fault::Injector::instance().arm("shim.write", fault::Kind::kBudgetExhausted);
  EXPECT_EQ(fault::fallibleWrite(fd_, "hello", 5, "shim.write"), 5);
  EXPECT_EQ(slurp(path_), "hello");
}

// --- Scheduled (hit-exact) triggers ---------------------------------------

TEST_F(ChaosTest, ScheduleFiresExactlyAtTheNamedHit) {
  fault::Injector& inj = fault::Injector::instance();
  inj.schedule("chaos.site", fault::Kind::kEio, /*atHit=*/2);
  EXPECT_FALSE(fault::fire("chaos.site").has_value());  // hit 0
  EXPECT_FALSE(fault::fire("chaos.site").has_value());  // hit 1
  const auto fired = fault::fire("chaos.site");         // hit 2
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, fault::Kind::kEio);
  // One-shot: never again, and the injector goes back to empty.
  EXPECT_FALSE(fault::fire("chaos.site").has_value());
  EXPECT_TRUE(inj.empty());
}

TEST_F(ChaosTest, SiteHitCountersAreSharedAcrossTriggers) {
  // Two entries on one site must see one ordinal sequence, not one each.
  fault::Injector& inj = fault::Injector::instance();
  inj.schedule("chaos.site", fault::Kind::kEio, 0);
  inj.schedule("chaos.site", fault::Kind::kEnospc, 1);
  EXPECT_EQ(fault::fire("chaos.site"), fault::Kind::kEio);
  EXPECT_EQ(fault::fire("chaos.site"), fault::Kind::kEnospc);
  EXPECT_FALSE(fault::fire("chaos.site").has_value());
}

TEST_F(ChaosTest, FireDetailCarriesTheArgument) {
  fault::Injector::instance().schedule("chaos.site", fault::Kind::kTornFrame,
                                       0, /*arg=*/17);
  const auto fired = fault::fireDetail("chaos.site");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->kind, fault::Kind::kTornFrame);
  EXPECT_EQ(fired->arg, 17u);
}

TEST_F(ChaosTest, KindNamesRoundTrip) {
  for (fault::Kind k :
       {fault::Kind::kEnospc, fault::Kind::kEio, fault::Kind::kShortWrite,
        fault::Kind::kFsyncFail, fault::Kind::kTornFrame,
        fault::Kind::kCrash, fault::Kind::kBudgetExhausted}) {
    const auto back = fault::kindFromName(fault::kindName(k));
    ASSERT_TRUE(back.has_value()) << fault::kindName(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(fault::kindFromName("no-such-kind").has_value());
  EXPECT_TRUE(fault::isStorageKind(fault::Kind::kTornFrame));
  EXPECT_FALSE(fault::isStorageKind(fault::Kind::kCrash));
}

// --- Fault plans -----------------------------------------------------------

TEST_F(ChaosTest, PlanParsesAndSerializesRoundTrip) {
  const std::string text =
      "# seed 42\n"
      "at 3 journal.write torn-frame 17\n"
      "at 0 queue.wal.fsync fsync-fail\n"
      "from 2 syseco.sampling budget\n";
  Result<fault::FaultPlan> plan = fault::parseFaultPlan(text);
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  ASSERT_EQ(plan.value().entries.size(), 3u);
  EXPECT_EQ(plan.value().entries[0].atHit, 3u);
  EXPECT_TRUE(plan.value().entries[0].oneShot);
  EXPECT_EQ(plan.value().entries[0].site, "journal.write");
  EXPECT_EQ(plan.value().entries[0].kind, fault::Kind::kTornFrame);
  EXPECT_EQ(plan.value().entries[0].arg, 17u);
  EXPECT_FALSE(plan.value().entries[2].oneShot);

  const std::string out = fault::serializeFaultPlan(plan.value());
  Result<fault::FaultPlan> again = fault::parseFaultPlan(out);
  ASSERT_TRUE(again.isOk());
  EXPECT_EQ(fault::serializeFaultPlan(again.value()), out);
}

TEST_F(ChaosTest, PlanParserNamesTheOffendingLine) {
  Result<fault::FaultPlan> bad =
      fault::parseFaultPlan("at 0 journal.write eio\nat x site eio\n");
  ASSERT_FALSE(bad.isOk());
  EXPECT_NE(bad.status().toString().find("line 2"), std::string::npos)
      << bad.status().toString();

  EXPECT_FALSE(fault::parseFaultPlan("at 0 site no-such-kind\n").isOk());
  EXPECT_FALSE(fault::parseFaultPlan("maybe 0 site eio\n").isOk());
}

TEST_F(ChaosTest, GeneratedPlansAreSeedDeterministic) {
  const fault::FaultPlan a = fault::generateChaosPlan(42, 8);
  const fault::FaultPlan b = fault::generateChaosPlan(42, 8);
  const fault::FaultPlan c = fault::generateChaosPlan(43, 8);
  EXPECT_EQ(fault::serializeFaultPlan(a), fault::serializeFaultPlan(b));
  EXPECT_NE(fault::serializeFaultPlan(a), fault::serializeFaultPlan(c));
  EXPECT_EQ(a.entries.size(), 8u);
  for (const fault::PlanEntry& e : a.entries) {
    EXPECT_TRUE(e.oneShot);
    bool known = false;
    for (const fault::FaultSite& s : fault::storageFaultSites())
      if (s.name == e.site) known = true;
    EXPECT_TRUE(known) << "unknown site " << e.site;
  }
}

TEST_F(ChaosTest, AppliedPlanArmsTheInjector) {
  fault::FaultPlan plan;
  plan.entries.push_back({1, true, "chaos.site", fault::Kind::kEio, 0});
  ASSERT_TRUE(fault::applyFaultPlan(plan, "").isOk());
  EXPECT_FALSE(fault::fire("chaos.site").has_value());
  EXPECT_EQ(fault::fire("chaos.site"), fault::Kind::kEio);
}

TEST_F(ChaosTest, FiredLogStopsReplayAcrossLives) {
  const std::string dir = testDir("firedlog");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string planPath = dir + "/plan";
  fault::FaultPlan plan;
  plan.entries.push_back({0, true, "chaos.site", fault::Kind::kEio, 0});
  spill(planPath, fault::serializeFaultPlan(plan));

  // First life: the entry fires and records itself in <plan>.fired.
  ASSERT_TRUE(fault::applyFaultPlan(plan, planPath).isOk());
  EXPECT_EQ(fault::fire("chaos.site"), fault::Kind::kEio);
  EXPECT_NE(slurp(planPath + ".fired").find("chaos.site"), std::string::npos);

  // Second life (fresh injector, same plan): the consumed entry is skipped,
  // so a restarted daemon does not loop on the same fault forever.
  fault::Injector::instance().reset();
  ASSERT_TRUE(fault::applyFaultPlan(plan, planPath).isOk());
  EXPECT_FALSE(fault::fire("chaos.site").has_value());
}

TEST_F(ChaosTest, EnvPlanLoadsAndRejectsGarbage) {
  ASSERT_TRUE(fault::loadFaultPlanFromEnv().isOk());  // unset: no-op

  const std::string dir = testDir("envplan");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string planPath = dir + "/plan";
  spill(planPath, "at 0 chaos.site eio\n");
  ::setenv("SYSECO_FAULT_PLAN", planPath.c_str(), 1);
  ASSERT_TRUE(fault::loadFaultPlanFromEnv().isOk());
  EXPECT_EQ(fault::fire("chaos.site"), fault::Kind::kEio);

  // A requested-but-broken plan must be an error, not a silent reference
  // run wearing a chaos run's name.
  ::setenv("SYSECO_FAULT_PLAN", (dir + "/missing").c_str(), 1);
  EXPECT_FALSE(fault::loadFaultPlanFromEnv().isOk());
  spill(planPath, "at x garbage\n");
  ::setenv("SYSECO_FAULT_PLAN", planPath.c_str(), 1);
  EXPECT_FALSE(fault::loadFaultPlanFromEnv().isOk());
}

// --- Atomic-file staging under faults --------------------------------------

TEST_F(ChaosTest, AtomicWriteAbortsCleanlyOnEnospc) {
  const std::string dir = testDir("atomic");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string path = dir + "/report.json";
  ASSERT_TRUE(writeFileAtomic(path, "original\n").isOk());

  fault::Injector::instance().arm("atomic.write", fault::Kind::kEnospc);
  EXPECT_FALSE(writeFileAtomic(path, "replacement\n").isOk());
  fault::Injector::instance().reset();

  // Old content intact, no staging file left behind.
  EXPECT_EQ(slurp(path), "original\n");
  EXPECT_EQ(removeStaleStaging(dir), 0u);
}

TEST_F(ChaosTest, AtomicWriteAbortsCleanlyOnFsyncFail) {
  const std::string dir = testDir("atomicsync");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string path = dir + "/report.json";
  ASSERT_TRUE(writeFileAtomic(path, "original\n").isOk());

  fault::Injector::instance().arm("atomic.fsync", fault::Kind::kFsyncFail);
  EXPECT_FALSE(writeFileAtomic(path, "replacement\n").isOk());
  fault::Injector::instance().reset();
  EXPECT_EQ(slurp(path), "original\n");
  EXPECT_EQ(removeStaleStaging(dir), 0u);
}

TEST_F(ChaosTest, RemoveStaleStagingSweepsOnlyStagingFiles) {
  const std::string dir = testDir("staging");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  spill(dir + "/report.json.tmp.1234", "torn");
  spill(dir + "/other.tmp.99", "torn");
  spill(dir + "/keep.txt", "keep");
  EXPECT_EQ(removeStaleStaging(dir), 2u);
  EXPECT_EQ(slurp(dir + "/keep.txt"), "keep");
  EXPECT_EQ(removeStaleStaging(dir), 0u);
  EXPECT_EQ(removeStaleStaging(dir + "/no-such-dir"), 0u);
}

// --- Journal poisoning (fail closed) ---------------------------------------

TEST_F(ChaosTest, WriteFaultPoisonsTheJournalAndTruncatesBack) {
  const std::string dir = testDir("poisonwrite");
  Result<JournalWriter> w = JournalWriter::create(dir);
  ASSERT_TRUE(w.isOk());
  JournalWriter journal = w.take();
  ASSERT_TRUE(journal.append("{\"type\":\"a\"}").isOk());

  // The torn frame persists a prefix; poisoning must physically remove it.
  fault::Injector::instance().schedule("journal.write",
                                       fault::Kind::kTornFrame, /*atHit=*/0,
                                       /*arg=*/7);
  const Status failed = journal.append("{\"type\":\"b\"}");
  ASSERT_FALSE(failed.isOk());
  EXPECT_TRUE(journal.poisoned());
  EXPECT_FALSE(journal.isOpen());
  EXPECT_NE(failed.toString().find("journal"), std::string::npos);

  // Every later append reports the original cause - the handle never
  // pretends durability came back.
  const Status again = journal.append("{\"type\":\"c\"}");
  ASSERT_FALSE(again.isOk());
  EXPECT_NE(again.toString().find("poisoned"), std::string::npos);

  // Recovery sees exactly the committed prefix: one record, no torn tail.
  fault::Injector::instance().reset();
  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 1u);
  EXPECT_EQ(scan.value().frames[0].payload, "{\"type\":\"a\"}");
  EXPECT_TRUE(scan.value().diagnostics.empty());

  // And a resumed writer heals: appends work again on a fresh handle.
  Result<JournalWriter> healed = JournalWriter::resume(dir, scan.value());
  ASSERT_TRUE(healed.isOk());
  ASSERT_TRUE(healed.value().append("{\"type\":\"d\"}").isOk());
  Result<JournalScan> after = scanJournal(dir);
  ASSERT_TRUE(after.isOk());
  EXPECT_EQ(after.value().frames.size(), 2u);
}

TEST_F(ChaosTest, FsyncFaultPoisonsTheJournal) {
  // fsyncgate: a failed fsync may have synced nothing, so the handle is
  // done - retrying fsync on it would report success without durability.
  const std::string dir = testDir("poisonfsync");
  Result<JournalWriter> w = JournalWriter::create(dir);
  ASSERT_TRUE(w.isOk());
  JournalWriter journal = w.take();
  ASSERT_TRUE(journal.append("{\"type\":\"a\"}").isOk());

  fault::Injector::instance().schedule("journal.fsync",
                                       fault::Kind::kFsyncFail, 0);
  ASSERT_FALSE(journal.append("{\"type\":\"b\"}").isOk());
  EXPECT_TRUE(journal.poisoned());

  fault::Injector::instance().reset();
  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  EXPECT_EQ(scan.value().frames.size(), 1u);
}

TEST_F(ChaosTest, MarkerFaultPoisonsButKeepsTheDurableRecord) {
  // The frame was written and fsync'd before the marker replacement
  // failed: the record is durable and recovery must keep it (frames are
  // authoritative, the marker is informational).
  const std::string dir = testDir("poisonmarker");
  Result<JournalWriter> w = JournalWriter::create(dir);
  ASSERT_TRUE(w.isOk());
  JournalWriter journal = w.take();
  ASSERT_TRUE(journal.append("{\"type\":\"a\"}").isOk());

  fault::Injector::instance().schedule("journal.marker.write",
                                       fault::Kind::kEnospc, 0);
  ASSERT_FALSE(journal.append("{\"type\":\"b\"}").isOk());
  EXPECT_TRUE(journal.poisoned());

  fault::Injector::instance().reset();
  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 2u);
  EXPECT_EQ(scan.value().frames[1].payload, "{\"type\":\"b\"}");
}

// --- scanJournal torn-tail tolerance ---------------------------------------

TEST_F(ChaosTest, TrailingZeroLengthFrameIsTruncatedWithAWarning) {
  const std::string dir = testDir("zerolen");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string good = frame("{\"type\":\"a\"}");
  spill(journalDataPath(dir), good + frame(""));
  spill(journalMarkerPath(dir), marker(1, good.size()));

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 1u);
  EXPECT_EQ(scan.value().retainBytes, good.size());
  ASSERT_FALSE(scan.value().diagnostics.empty());
  EXPECT_NE(scan.value().diagnostics[0].find("zero-length"),
            std::string::npos);
}

TEST_F(ChaosTest, DuplicateFinalFrameBeyondCommitIsTruncated) {
  // A torn append retried after partial success can leave the same frame
  // twice, with the COMMIT marker attesting only the first copy.
  const std::string dir = testDir("dupframe");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string a = frame("{\"type\":\"a\"}");
  const std::string b = frame("{\"type\":\"b\"}");
  spill(journalDataPath(dir), a + b + b);
  spill(journalMarkerPath(dir), marker(2, a.size() + b.size()));

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 2u);
  EXPECT_EQ(scan.value().retainBytes, a.size() + b.size());
  ASSERT_FALSE(scan.value().diagnostics.empty());
  EXPECT_NE(scan.value().diagnostics[0].find("duplicate"), std::string::npos);
}

TEST_F(ChaosTest, DuplicateFinalFrameTheMarkerAttestsIsKept) {
  // Same bytes, but the marker says all three records committed: then the
  // duplication was deliberate (identical payloads are legal) - keep it.
  const std::string dir = testDir("dupkept");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string a = frame("{\"type\":\"a\"}");
  const std::string b = frame("{\"type\":\"b\"}");
  spill(journalDataPath(dir), a + b + b);
  spill(journalMarkerPath(dir), marker(3, a.size() + 2 * b.size()));

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  EXPECT_EQ(scan.value().frames.size(), 3u);
}

TEST_F(ChaosTest, ZeroFilledTailIsTruncatedWithOneDiagnostic) {
  // A power cut after metadata-only allocation leaves a run of NUL bytes.
  const std::string dir = testDir("zerotail");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string good = frame("{\"type\":\"a\"}");
  spill(journalDataPath(dir), good + std::string(256, '\0'));

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 1u);
  EXPECT_EQ(scan.value().retainBytes, good.size());
  ASSERT_EQ(scan.value().diagnostics.size(), 1u);
  EXPECT_NE(scan.value().diagnostics[0].find("zero-filled"),
            std::string::npos);
}

TEST_F(ChaosTest, ResumeAfterTornTailPhysicallyRemovesIt) {
  const std::string dir = testDir("resumetorn");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string good = frame("{\"type\":\"a\"}");
  spill(journalDataPath(dir), good + "J1 000000");  // torn mid-header
  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  Result<JournalWriter> w = JournalWriter::resume(dir, scan.value());
  ASSERT_TRUE(w.isOk());
  ASSERT_TRUE(w.value().append("{\"type\":\"b\"}").isOk());
  EXPECT_EQ(slurp(journalDataPath(dir)), good + frame("{\"type\":\"b\"}"));
}

// --- SIGKILL during WAL compaction (old or new WAL, never a mix) -----------

serve::SubmitRequest tinySubmit() {
  serve::SubmitRequest r;
  r.tenant = "chaos";
  r.format = "blif";
  r.implText = ".model i\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
  r.specText = r.implText;
  return r;
}

/// Runs `open` in a fork with a crash scheduled at `site` hit 0; expects
/// the child to die with the injected-crash exit code.
template <typename OpenFn>
void expectCrashDuringOpen(const std::string& site, OpenFn open) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fault::Injector::instance().reset();
    fault::Injector::instance().schedule(site, fault::Kind::kCrash, 0);
    open();
    std::_Exit(0);  // the crash did not fire: reported as a test failure
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), fault::kCrashExitCode)
      << "no crash fired at " << site;
}

TEST_F(ChaosTest, QueueCompactionCrashLeavesOldWalRecoverable) {
  const std::string dir = testDir("queuecrash");
  {
    Result<serve::JobQueue> q = serve::JobQueue::open(dir);
    ASSERT_TRUE(q.isOk());
    Result<serve::Job*> job = q.value().submit(tinySubmit());
    ASSERT_TRUE(job.isOk());
    ASSERT_TRUE(q.value().markRunning(*job.value(), 1).isOk());
  }
  // Crash while staging the compacted WAL: the rename never happened, so
  // recovery folds the complete old WAL.
  for (const char* site : {"queue.wal.compact.write", "queue.wal.compact.fsync"})
    expectCrashDuringOpen(site, [&] { (void)serve::JobQueue::open(dir); });

  Result<serve::JobQueue> q = serve::JobQueue::open(dir);
  ASSERT_TRUE(q.isOk());
  ASSERT_EQ(q.value().all().size(), 1u);
  // The mid-run job came back queued-with-resume, exactly as before.
  EXPECT_EQ(q.value().all()[0]->state, serve::QueueState::kQueued);
  EXPECT_TRUE(q.value().all()[0]->resume);
  EXPECT_FALSE(q.value().walPoisoned());
}

TEST_F(ChaosTest, QueueCompactionCrashAfterRenameLeavesNewWalRecoverable) {
  const std::string dir = testDir("queuecrash2");
  {
    Result<serve::JobQueue> q = serve::JobQueue::open(dir);
    ASSERT_TRUE(q.isOk());
    ASSERT_TRUE(q.value().submit(tinySubmit()).isOk());
  }
  // Crash after the compacted WAL renamed into place but before its COMMIT
  // marker updated: recovery reads the new WAL under a stale marker
  // (frames are authoritative).
  expectCrashDuringOpen("queue.wal.marker.write",
                        [&] { (void)serve::JobQueue::open(dir); });

  Result<serve::JobQueue> q = serve::JobQueue::open(dir);
  ASSERT_TRUE(q.isOk());
  ASSERT_EQ(q.value().all().size(), 1u);
  EXPECT_EQ(q.value().all()[0]->state, serve::QueueState::kQueued);
}

TEST_F(ChaosTest, LedgerCompactionCrashLeavesOldWalRecoverable) {
  const std::string dir = testDir("ledgercrash");
  {
    Result<serve::BatchLedger> l = serve::BatchLedger::open(dir);
    ASSERT_TRUE(l.isOk());
    Result<serve::BatchCase*> c =
        l.value().registerCase("alpha", "i.blif", "s.blif", 7, 2);
    ASSERT_TRUE(c.isOk());
    ASSERT_TRUE(l.value().markDispatched(*c.value(), 1, "local", 1).isOk());
  }
  for (const char* site :
       {"ledger.wal.compact.write", "ledger.wal.compact.fsync",
        "ledger.wal.marker.write"})
    expectCrashDuringOpen(site, [&] { (void)serve::BatchLedger::open(dir); });

  Result<serve::BatchLedger> l = serve::BatchLedger::open(dir);
  ASSERT_TRUE(l.isOk());
  ASSERT_EQ(l.value().all().size(), 1u);
  EXPECT_EQ(l.value().all()[0]->name, "alpha");
  EXPECT_EQ(l.value().all()[0]->state, serve::CaseState::kQueued);
  EXPECT_TRUE(l.value().all()[0]->resume);
  EXPECT_EQ(l.value().all()[0]->seed, 7u);
}

TEST_F(ChaosTest, PoisonedQueueWalRefusesFurtherTransitions) {
  const std::string dir = testDir("queuepoison");
  Result<serve::JobQueue> q = serve::JobQueue::open(dir);
  ASSERT_TRUE(q.isOk());
  Result<serve::Job*> job = q.value().submit(tinySubmit());
  ASSERT_TRUE(job.isOk());

  fault::Injector::instance().schedule("queue.wal.fsync",
                                       fault::Kind::kFsyncFail, 0);
  ASSERT_FALSE(q.value().markRunning(*job.value(), 1).isOk());
  EXPECT_TRUE(q.value().walPoisoned());
  EXPECT_FALSE(q.value().walPoisonCause().empty());
  // The in-memory state did not mutate without a durable record.
  EXPECT_EQ(job.value()->state, serve::QueueState::kQueued);

  // Restart heals: a fresh open folds the committed prefix.
  fault::Injector::instance().reset();
  Result<serve::JobQueue> healed = serve::JobQueue::open(dir);
  ASSERT_TRUE(healed.isOk());
  ASSERT_EQ(healed.value().all().size(), 1u);
  EXPECT_FALSE(healed.value().walPoisoned());
}

}  // namespace
}  // namespace syseco
