// Parallel rectification: the work-stealing pool, the shared structural
// analyses, and the engine's determinism guarantee - `jobs = N` must be
// bit-identical to `jobs = 1` in reports, patches and journal records
// (wall-clock timing excepted). These tests carry the `sanitize` label so
// a ThreadSanitizer build (`-DSYSECO_SANITIZE=thread`) exercises exactly
// the concurrent paths.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/journal_io.hpp"
#include "netlist/analysis.hpp"
#include "util/thread_pool.hpp"

namespace syseco {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i)
    futures.push_back(
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, ZeroThreadsRunsInlineAtSubmit) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), 0u);
  bool ran = false;
  std::future<void> f = pool.submit([&ran] { ran = true; });
  // Inline mode: the task has already run when submit() returns.
  EXPECT_TRUE(ran);
  f.get();
}

TEST(ThreadPool, ExceptionsPropagateThroughTheFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<bool> ok{false};
  pool.submit([&ok] { ok = true; }).get();
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor joins; every queued task must have executed
  EXPECT_EQ(ran.load(), 64);
}

// --- NetlistAnalysis ------------------------------------------------------

/// Brute-force transitive PI support of one net.
std::set<std::uint32_t> bruteSupport(const Netlist& nl, NetId net) {
  std::set<std::uint32_t> pis;
  std::vector<NetId> stack{net};
  std::set<NetId> seen;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    const auto& rec = nl.net(n);
    if (rec.srcKind == Netlist::SourceKind::Input) {
      pis.insert(rec.srcIdx);
    } else if (rec.srcKind == Netlist::SourceKind::Gate) {
      for (NetId f : nl.gate(rec.srcIdx).fanins) stack.push_back(f);
    }
  }
  return pis;
}

TEST(NetlistAnalysis, MatchesPerQueryRecomputation) {
  Rng rng(77);
  const SpecCircuit sc = buildSpec(SpecParams{3, 6, 3, 2, 5, 4, 3, 3}, rng);
  const Netlist& nl = sc.netlist;
  const NetlistAnalysis an(nl);

  EXPECT_EQ(an.gatesAtBuild(), nl.numGatesTotal());
  EXPECT_EQ(an.netsAtBuild(), nl.numNetsTotal());
  EXPECT_EQ(an.topoOrder(), nl.topoOrder());
  EXPECT_EQ(an.netLevels(), nl.netLevels());

  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
    const std::vector<GateId> cone = nl.coneGates({nl.outputNet(o)});
    EXPECT_EQ(an.outputConeGates(o), cone) << "output " << o;
    EXPECT_EQ(an.outputConeSize(o), cone.size());
    // Cone membership bitset agrees with the cone list.
    const std::set<GateId> inCone(cone.begin(), cone.end());
    for (GateId g = 0; g < nl.numGatesTotal(); ++g)
      EXPECT_EQ(an.inOutputCone(o, g), inCone.count(g) > 0)
          << "output " << o << " gate " << g;
    // Output support equals the brute-force transitive PI set.
    const std::set<std::uint32_t> want = bruteSupport(nl, nl.outputNet(o));
    const std::vector<std::uint32_t>& got = an.outputSupport(o);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()), want)
        << "output " << o;
  }

  // Per-net support masks agree with brute force on a sample of nets.
  for (NetId n = 0; n < nl.numNetsTotal(); n += 7) {
    const auto mask = an.supports().supportMask(n);
    std::set<std::uint32_t> got;
    for (std::size_t w = 0; w < mask.size(); ++w)
      for (std::uint32_t b = 0; b < 64; ++b)
        if ((mask[w] >> b) & 1)
          got.insert(static_cast<std::uint32_t>(w * 64 + b));
    EXPECT_EQ(got, bruteSupport(nl, n)) << "net " << n;
  }
}

// --- Determinism under parallelism ----------------------------------------

EcoCase parallelCase(std::uint64_t seed) {
  CaseRecipe r;
  r.name = "par" + std::to_string(seed);
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 3;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = seed;
  return makeCase(r);
}

/// Wall-clock fields are the only permitted difference between runs.
std::string stripSeconds(std::string record) {
  static const std::regex kSeconds("\"seconds\":[0-9.eE+-]+");
  return std::regex_replace(record, kSeconds, "\"seconds\":T");
}

struct CapturedRun {
  EcoResult result;
  SysecoDiagnostics diag;
  std::string rectifiedDump;
  std::vector<std::string> journal;  ///< serialized records, seconds masked
};

CapturedRun runWithJobs(const EcoCase& c, std::size_t jobs) {
  CapturedRun run;
  SysecoOptions opt;
  opt.jobs = jobs;
  opt.planHook = [&](const std::vector<std::uint32_t>& order,
                     std::size_t failingBefore) {
    run.journal.push_back(serializeRunStart(
        makeRunStartRecord(c.impl, c.spec, opt, order, failingBefore)));
  };
  opt.checkpointHook = [&](const RunCheckpoint& cp) {
    run.journal.push_back(
        stripSeconds(serializeOutputRecord(makeOutputRecord(cp))));
    return true;
  };
  run.result = runSyseco(c.impl, c.spec, opt, &run.diag);
  run.rectifiedDump = run.result.rectified.dumpRawString();
  return run;
}

void expectIdenticalRuns(const CapturedRun& a, const CapturedRun& b) {
  ASSERT_TRUE(a.result.success);
  ASSERT_TRUE(b.result.success);
  // Patch: bit-identical netlists and stats.
  EXPECT_EQ(a.rectifiedDump, b.rectifiedDump);
  EXPECT_EQ(a.result.stats.gates, b.result.stats.gates);
  EXPECT_EQ(a.result.stats.nets, b.result.stats.nets);
  EXPECT_EQ(a.result.stats.inputs, b.result.stats.inputs);
  EXPECT_EQ(a.result.stats.outputs, b.result.stats.outputs);
  EXPECT_EQ(a.result.failingOutputsBefore, b.result.failingOutputsBefore);
  // Reports: everything except wall-clock timing.
  ASSERT_EQ(a.diag.outputs.size(), b.diag.outputs.size());
  for (std::size_t i = 0; i < a.diag.outputs.size(); ++i) {
    const OutputReport& x = a.diag.outputs[i];
    const OutputReport& y = b.diag.outputs[i];
    EXPECT_EQ(x.output, y.output) << "report " << i;
    EXPECT_EQ(x.name, y.name) << "report " << i;
    EXPECT_EQ(x.status, y.status) << "report " << i;
    EXPECT_EQ(x.limit, y.limit) << "report " << i;
    EXPECT_EQ(x.conflictsUsed, y.conflictsUsed) << "report " << i;
    EXPECT_EQ(x.bddNodesUsed, y.bddNodesUsed) << "report " << i;
    EXPECT_EQ(x.degradeSteps, y.degradeSteps) << "report " << i;
  }
  // Run totals and search counters.
  EXPECT_EQ(a.diag.conflictsUsed, b.diag.conflictsUsed);
  EXPECT_EQ(a.diag.bddNodesUsed, b.diag.bddNodesUsed);
  EXPECT_EQ(a.diag.outputsRectified, b.diag.outputsRectified);
  EXPECT_EQ(a.diag.outputsViaRewire, b.diag.outputsViaRewire);
  EXPECT_EQ(a.diag.outputsViaFallback, b.diag.outputsViaFallback);
  EXPECT_EQ(a.diag.candidatesValidated, b.diag.candidatesValidated);
  EXPECT_EQ(a.diag.candidatesRefuted, b.diag.candidatesRefuted);
  EXPECT_EQ(a.diag.sweepMerges, b.diag.sweepMerges);
  // Journal: byte-identical records once timing is masked.
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i)
    EXPECT_EQ(a.journal[i], b.journal[i]) << "journal record " << i;
}

class ParallelSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSeeds, JobsFourIsBitIdenticalToJobsOne) {
  const EcoCase c = parallelCase(GetParam());
  const CapturedRun one = runWithJobs(c, 1);
  const CapturedRun four = runWithJobs(c, 4);
  expectIdenticalRuns(one, four);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSeeds,
                         ::testing::Values(11, 47, 321));

TEST(Parallel, JobsTwoIsBitIdenticalToJobsOne) {
  const EcoCase c = parallelCase(5150);
  expectIdenticalRuns(runWithJobs(c, 1), runWithJobs(c, 2));
}

TEST(Parallel, RepeatedParallelRunsAreStable) {
  // Scheduling nondeterminism must never leak: two jobs=4 runs of the same
  // case are bit-identical to each other as well.
  const EcoCase c = parallelCase(808);
  expectIdenticalRuns(runWithJobs(c, 4), runWithJobs(c, 4));
}

}  // namespace
}  // namespace syseco
