// Match-aware cloning tests: functional matching survives restructuring,
// structural matching does not (the §2 distinction the evaluation relies
// on), and cloned logic is always functionally correct.

#include <gtest/gtest.h>

#include "eco/matching.hpp"
#include "eco/patch.hpp"
#include "gen/eco_case.hpp"
#include "gen/spec_builder.hpp"
#include "opt/passes.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

/// Impl and spec computing the same functions; impl heavily restructured.
struct MatchFixture {
  Netlist impl;
  Netlist spec;

  explicit MatchFixture(std::uint64_t seed, bool restructureImpl) {
    Rng rng(seed);
    SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
    spec = lightSynth(sc.netlist);
    impl = restructureImpl ? heavyOptimize(sc.netlist, rng, 2)
                           : lightSynth(sc.netlist);
  }
};

TEST(Matching, FunctionalMatchingFindsRestructuredEquivalents) {
  MatchFixture fx(31, /*restructureImpl=*/true);
  Netlist working = fx.impl;
  PatchTracker tracker(working);
  MatcherOptions opts;  // Functional by default
  Rng rng(5);
  MatchedSpecCloner cloner(tracker, fx.spec, opts, rng);
  // Cloning every spec output must tap existing logic heavily: since the
  // functions are identical, each output should match directly (zero or
  // near-zero new gates).
  const std::size_t before = working.numGatesTotal();
  for (std::uint32_t o = 0; o < fx.spec.numOutputs(); ++o)
    cloner.clone(fx.spec.outputNet(o));
  const std::size_t added = working.numGatesTotal() - before;
  EXPECT_GT(cloner.matchesUsed(), 0u);
  EXPECT_LE(added, fx.spec.countLiveGates() / 4);
}

TEST(Matching, StructuralMatchingBreaksUnderRestructuring) {
  MatchFixture fx(31, /*restructureImpl=*/true);
  Netlist working = fx.impl;
  PatchTracker tracker(working);
  MatcherOptions opts;
  opts.mode = MatchMode::Structural;
  Rng rng(5);
  MatchedSpecCloner cloner(tracker, fx.spec, opts, rng);
  const std::size_t before = working.numGatesTotal();
  for (std::uint32_t o = 0; o < fx.spec.numOutputs(); ++o)
    cloner.clone(fx.spec.outputNet(o));
  const std::size_t addedStructural = working.numGatesTotal() - before;

  // Functional matching on the same fixture adds far less.
  Netlist working2 = fx.impl;
  PatchTracker tracker2(working2);
  MatcherOptions fopts;
  Rng rng2(5);
  MatchedSpecCloner fcloner(tracker2, fx.spec, fopts, rng2);
  const std::size_t before2 = working2.numGatesTotal();
  for (std::uint32_t o = 0; o < fx.spec.numOutputs(); ++o)
    fcloner.clone(fx.spec.outputNet(o));
  const std::size_t addedFunctional = working2.numGatesTotal() - before2;

  EXPECT_GT(addedStructural, addedFunctional);
}

TEST(Matching, StructuralMatchingWorksOnIdenticalStructure) {
  // When impl is the identical lightweight synthesis, structural matching
  // finds everything.
  MatchFixture fx(37, /*restructureImpl=*/false);
  Netlist working = fx.impl;
  PatchTracker tracker(working);
  MatcherOptions opts;
  opts.mode = MatchMode::Structural;
  Rng rng(5);
  MatchedSpecCloner cloner(tracker, fx.spec, opts, rng);
  const std::size_t before = working.numGatesTotal();
  for (std::uint32_t o = 0; o < fx.spec.numOutputs(); ++o)
    cloner.clone(fx.spec.outputNet(o));
  EXPECT_EQ(working.numGatesTotal(), before);  // everything matched
}

class MatchedCloneCorrect : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchedCloneCorrect, ClonedOutputsEquivalentToSpec) {
  // Whatever the matcher does, the cloned net must realize the spec
  // function: rewire each output to its clone and verify equivalence.
  MatchFixture fx(GetParam(), /*restructureImpl=*/true);
  // Make the spec functionally different (mutate) so clones matter.
  Netlist revised = fx.spec;
  Rng mrng(GetParam() * 13 + 1);
  applyMutations(revised, mrng, 1, 0.3);
  const Netlist spec = lightSynth(revised);

  Netlist working = fx.impl;
  PatchTracker tracker(working);
  MatcherOptions opts;
  Rng rng(5);
  MatchedSpecCloner cloner(tracker, spec, opts, rng);
  for (std::uint32_t o = 0; o < working.numOutputs(); ++o) {
    const std::uint32_t op = spec.findOutput(working.outputName(o));
    if (op == kNullId) continue;
    tracker.rewire(Sink{kNullId, o}, cloner.clone(spec.outputNet(op)));
  }
  EXPECT_TRUE(working.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(working, spec));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchedCloneCorrect,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

TEST(Matching, ComplementMatchInsertsSingleInverter) {
  // Impl computes x = a XOR b; spec wants XNOR: a complement match should
  // produce exactly one NOT gate.
  Netlist impl;
  {
    const NetId a = impl.addInput("a");
    const NetId b = impl.addInput("b");
    impl.addOutput("o", impl.addGate(GateType::Xor, {a, b}));
  }
  Netlist spec;
  {
    const NetId a = spec.addInput("a");
    const NetId b = spec.addInput("b");
    spec.addOutput("o", spec.addGate(GateType::Xnor, {a, b}));
  }
  Netlist working = impl;
  PatchTracker tracker(working);
  MatcherOptions opts;
  Rng rng(5);
  MatchedSpecCloner cloner(tracker, spec, opts, rng);
  const std::size_t before = working.numGatesTotal();
  const NetId clone = cloner.clone(spec.outputNet(0));
  EXPECT_EQ(working.numGatesTotal(), before + 1);  // just the inverter
  tracker.rewire(Sink{kNullId, 0}, clone);
  EXPECT_TRUE(verifyAllOutputs(working, spec));
}

}  // namespace
}  // namespace syseco
