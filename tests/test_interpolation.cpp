// Interpolating solver and interpolation-based patch engine tests.
//
// The interpolant contract (Craig, via McMillan's labeled resolutions):
//   A implies I,  I AND B unsatisfiable,  support(I) subset shared vars.
// Verified exhaustively on randomized small A/B partitions, then the
// engine is exercised end to end.

#include <gtest/gtest.h>

#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "itp/interp_fix.hpp"
#include "itp/itp_solver.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

TEST(ItpSolver, TrivialUnsatSharedUnits) {
  // A: z0.  B: !z0.  Interpolant must be exactly z0.
  ItpSolver s(1);
  ASSERT_TRUE(s.addClause({Lit::make(0)}, ItpSolver::Side::A));
  ASSERT_TRUE(s.addClause({Lit::make(0, true)}, ItpSolver::Side::B));
  ASSERT_EQ(s.solve(), ItpSolver::Result::Unsat);
  EXPECT_EQ(s.interpolant(), s.bdd().var(0));
}

TEST(ItpSolver, SatWhenConsistent) {
  ItpSolver s(1);
  const Var a = s.newVar();
  s.addClause({Lit::make(0), Lit::make(a)}, ItpSolver::Side::A);
  s.addClause({Lit::make(0, true), Lit::make(a)}, ItpSolver::Side::B);
  EXPECT_EQ(s.solve(), ItpSolver::Result::Sat);
  // Model satisfies both clauses.
  const bool z = s.modelValue(0), av = s.modelValue(a);
  EXPECT_TRUE(z || av);
  EXPECT_TRUE(!z || av);
}

TEST(ItpSolver, ChainThroughSharedVariable) {
  // A: a, a -> z.  B: z -> b, !b.  I must be implied by A, refuted by B:
  // the only candidate over {z} is z itself.
  ItpSolver s(1);
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause({Lit::make(a)}, ItpSolver::Side::A);
  s.addClause({Lit::make(a, true), Lit::make(0)}, ItpSolver::Side::A);
  s.addClause({Lit::make(0, true), Lit::make(b)}, ItpSolver::Side::B);
  s.addClause({Lit::make(b, true)}, ItpSolver::Side::B);
  ASSERT_EQ(s.solve(), ItpSolver::Result::Unsat);
  EXPECT_EQ(s.interpolant(), s.bdd().var(0));
}

/// Brute-force checks of the interpolant contract over <= 16 variables.
class ItpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ItpRandom, ContractHoldsOnRandomUnsatPartitions) {
  Rng rng(GetParam());
  int unsatSeen = 0;
  for (int trial = 0; trial < 60 && unsatSeen < 12; ++trial) {
    const std::uint32_t numShared = 3;
    const int numALocal = 3, numBLocal = 3;
    // Variables: 0..2 shared, 3..5 A-local, 6..8 B-local.
    std::vector<std::vector<Lit>> clausesA, clausesB;
    auto randomClause = [&](bool sideA) {
      std::vector<Lit> c;
      const int len = 2 + static_cast<int>(rng.below(2));
      for (int k = 0; k < len; ++k) {
        Var v;
        if (rng.chance(1, 2)) {
          v = static_cast<Var>(rng.below(numShared));
        } else if (sideA) {
          v = static_cast<Var>(numShared + rng.below(numALocal));
        } else {
          v = static_cast<Var>(numShared + numALocal + rng.below(numBLocal));
        }
        c.push_back(Lit::make(v, rng.flip()));
      }
      return c;
    };
    for (int k = 0; k < 9; ++k) clausesA.push_back(randomClause(true));
    for (int k = 0; k < 9; ++k) clausesB.push_back(randomClause(false));

    ItpSolver s(numShared);
    for (int k = 0; k < numALocal + numBLocal; ++k) s.newVar();
    for (auto& c : clausesA) s.addClause(c, ItpSolver::Side::A);
    for (auto& c : clausesB) s.addClause(c, ItpSolver::Side::B);
    if (s.solve() != ItpSolver::Result::Unsat) continue;
    ++unsatSeen;

    Bdd& mgr = s.bdd();
    const Bdd::Ref I = s.interpolant();
    // support(I) within shared variables: by construction of the manager.
    // Brute force over all 9 variables.
    auto clauseSat = [&](const std::vector<Lit>& c, std::uint32_t m) {
      for (const Lit& l : c) {
        const bool v = (m >> l.var()) & 1;
        if (v != l.sign()) return true;
      }
      return false;
    };
    for (std::uint32_t m = 0; m < (1u << 9); ++m) {
      bool aSat = true, bSat = true;
      for (const auto& c : clausesA) aSat &= clauseSat(c, m);
      for (const auto& c : clausesB) bSat &= clauseSat(c, m);
      std::vector<std::uint8_t> zAssign(numShared);
      for (std::uint32_t v = 0; v < numShared; ++v)
        zAssign[v] = (m >> v) & 1;
      const bool iVal = mgr.eval(I, zAssign);
      EXPECT_FALSE(aSat && !iVal) << "A does not imply I at " << m;
      EXPECT_FALSE(bSat && iVal) << "I AND B satisfiable at " << m;
    }
  }
  EXPECT_GT(unsatSeen, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItpRandom,
                         ::testing::Values(2, 3, 5, 7, 11, 13));

TEST(InterpFix, SynthesizesPatchThroughInterpolation) {
  // impl: o = (a AND b) OR c. spec: o = (a XOR b) OR c.
  Netlist impl;
  {
    const NetId a = impl.addInput("a");
    const NetId b = impl.addInput("b");
    const NetId c = impl.addInput("c");
    const NetId t = impl.addGate(GateType::And, {a, b});
    impl.addOutput("o", impl.addGate(GateType::Or, {t, c}));
  }
  Netlist spec;
  {
    const NetId a = spec.addInput("a");
    const NetId b = spec.addInput("b");
    const NetId c = spec.addInput("c");
    const NetId t = spec.addGate(GateType::Xor, {a, b});
    spec.addOutput("o", spec.addGate(GateType::Or, {t, c}));
  }
  InterpFixDiagnostics diag;
  const EcoResult r = runInterpFix(impl, spec, InterpFixOptions{}, &diag);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(diag.outputsViaInterpolant + diag.outputsViaFallback, 1u);
}

class InterpFixSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpFixSeeds, RectifiesGeneratedCases) {
  CaseRecipe r;
  r.name = "itp";
  r.spec = SpecParams{2, 5, 3, 2, 4, 3, 2, 2};
  r.mutations = 2;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = GetParam();
  const EcoCase c = makeCase(r);
  InterpFixDiagnostics diag;
  const EcoResult res =
      runInterpFix(c.impl, c.spec, InterpFixOptions{}, &diag);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.rectified.isWellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpFixSeeds,
                         ::testing::Values(101, 202, 303));

TEST(InterpFix, SysecoStillWinsOnGates) {
  CaseRecipe r;
  r.name = "itp-vs";
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 2;
  r.targetRevisedFraction = 0.25;
  r.optRounds = 2;
  r.seed = 777;
  const EcoCase c = makeCase(r);
  const EcoResult itp = runInterpFix(c.impl, c.spec);
  const EcoResult sys = runSyseco(c.impl, c.spec);
  ASSERT_TRUE(itp.success && sys.success);
  EXPECT_LE(sys.stats.gates, itp.stats.gates + 2);
}

}  // namespace
}  // namespace syseco
