// Unit tests for the resource-governor primitives: Status/Result,
// ResourceGuard budgets + hierarchy, and the fault-injection hook.

#include <gtest/gtest.h>

#include <thread>

#include "util/budget.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

namespace syseco {
namespace {

class StatusTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override { fault::Injector::instance().reset(); }
};

TEST_F(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_FALSE(s.isResourceExhausted());
  EXPECT_EQ(s.toString(), "ok");
}

TEST_F(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status b = Status::budgetExhausted("sat ledger dry");
  EXPECT_EQ(b.code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(b.isResourceExhausted());
  EXPECT_EQ(b.toString(), "budget-exhausted: sat ledger dry");

  const Status d = Status::deadlineExceeded("too slow");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(d.isResourceExhausted());

  const Status i = Status::invalidInput("bad file");
  EXPECT_EQ(i.code(), StatusCode::kInvalidInput);
  EXPECT_FALSE(i.isResourceExhausted());

  const Status n = Status::internal("oops");
  EXPECT_EQ(n.code(), StatusCode::kInternal);
}

TEST_F(StatusTest, StatusErrorRoundTrips) {
  try {
    throw StatusError(Status::deadlineExceeded("boom"));
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_STREQ(e.what(), "deadline-exceeded: boom");
  }
}

TEST_F(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.isOk());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.take(), 42);

  Result<int> bad(Status::invalidInput("nope"));
  EXPECT_FALSE(bad.isOk());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(bad.valueOr(7), 7);
}

// --- ResourceGuard ----------------------------------------------------------

TEST_F(StatusTest, UnlimitedGuardNeverTrips) {
  ResourceGuard g;
  EXPECT_FALSE(g.limited());
  g.chargeConflicts(1'000'000);
  g.chargeBddNodes(1'000'000);
  EXPECT_TRUE(g.checkpoint().isOk());
  EXPECT_FALSE(g.exhausted());
  EXPECT_EQ(g.remainingConflicts(), -1);
  EXPECT_EQ(g.remainingBddNodes(), -1);
  EXPECT_GT(g.remainingSeconds(), 1e17);
}

TEST_F(StatusTest, ConflictBudgetTripsAndLatches) {
  ResourceGuard g(ResourceGuard::Limits{0.0, 100, 0});
  EXPECT_TRUE(g.limited());
  g.chargeConflicts(99);
  EXPECT_TRUE(g.checkpoint().isOk());
  EXPECT_EQ(g.remainingConflicts(), 1);
  g.chargeConflicts(1);
  const Status s = g.checkpoint("test.site");
  EXPECT_EQ(s.code(), StatusCode::kBudgetExhausted);
  // Latched: it keeps reporting the same code.
  EXPECT_EQ(g.checkpoint().code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(g.trippedCode(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(g.exhausted());
}

TEST_F(StatusTest, BddNodeBudgetTrips) {
  ResourceGuard g(ResourceGuard::Limits{0.0, 0, 50});
  g.chargeBddNodes(50);
  EXPECT_EQ(g.checkpoint().code(), StatusCode::kBudgetExhausted);
}

TEST_F(StatusTest, DeadlineTrips) {
  ResourceGuard g(ResourceGuard::Limits{1e-9, 0, 0});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(g.checkpoint().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(g.remainingSeconds(), 0.0);
}

TEST_F(StatusTest, ChildChargesPropagateToParent) {
  ResourceGuard parent(ResourceGuard::Limits{0.0, 100, 0});
  ResourceGuard child = parent.slice(2);
  // The child gets roughly half the remaining budget.
  EXPECT_GT(child.remainingConflicts(), 0);
  EXPECT_LE(child.remainingConflicts(), 51);
  child.chargeConflicts(30);
  EXPECT_EQ(parent.conflictsUsed(), 30);
  EXPECT_EQ(child.conflictsUsed(), 30);
  EXPECT_TRUE(parent.checkpoint().isOk());
}

TEST_F(StatusTest, ChildTripsBeforeParent) {
  ResourceGuard parent(ResourceGuard::Limits{0.0, 100, 0});
  ResourceGuard child = parent.slice(4);  // entitled to ~26
  child.chargeConflicts(30);
  EXPECT_EQ(child.checkpoint().code(), StatusCode::kBudgetExhausted);
  EXPECT_TRUE(parent.checkpoint().isOk());  // parent still has headroom
}

TEST_F(StatusTest, ParentExhaustionTripsChild) {
  ResourceGuard parent(ResourceGuard::Limits{0.0, 100, 0});
  parent.chargeConflicts(100);
  ResourceGuard child = parent.slice(1);
  EXPECT_EQ(child.checkpoint().code(), StatusCode::kBudgetExhausted);
}

TEST_F(StatusTest, SliceSecondsCapsChildDeadline) {
  ResourceGuard parent;  // no deadline of its own
  ResourceGuard child = parent.sliceSeconds(1, 1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(child.checkpoint().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(parent.checkpoint().isOk());
}

// --- Fault injection --------------------------------------------------------

TEST_F(StatusTest, InjectorFiresArmedSite) {
  auto& inj = fault::Injector::instance();
  inj.arm("unit.site", fault::Kind::kBddBlowup);
  const auto k = fault::fire("unit.site");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, fault::Kind::kBddBlowup);
  EXPECT_FALSE(fault::fire("other.site").has_value());
  // Persistent: keeps firing once armed.
  EXPECT_TRUE(fault::fire("unit.site").has_value());
}

TEST_F(StatusTest, InjectorHonorsSkipCount) {
  auto& inj = fault::Injector::instance();
  inj.arm("unit.skip", fault::Kind::kBudgetExhausted, /*skip=*/2);
  EXPECT_FALSE(fault::fire("unit.skip").has_value());
  EXPECT_FALSE(fault::fire("unit.skip").has_value());
  EXPECT_TRUE(fault::fire("unit.skip").has_value());
  EXPECT_TRUE(fault::fire("unit.skip").has_value());
}

TEST_F(StatusTest, InjectorParsesEnvironmentSyntax) {
  auto& inj = fault::Injector::instance();
  EXPECT_TRUE(inj.configure("a.site=budget,b.site=bdd@1"));
  ASSERT_TRUE(fault::fire("a.site").has_value());
  EXPECT_EQ(*fault::fire("a.site"), fault::Kind::kBudgetExhausted);
  EXPECT_FALSE(fault::fire("b.site").has_value());  // skipping first hit
  ASSERT_TRUE(fault::fire("b.site").has_value());
  EXPECT_EQ(*fault::fire("b.site"), fault::Kind::kBddBlowup);

  inj.reset();
  EXPECT_FALSE(inj.configure("broken-clause"));
  EXPECT_FALSE(inj.configure("a.site=unknown-kind"));
  EXPECT_TRUE(inj.empty());
}

TEST_F(StatusTest, GuardCheckpointMapsInjectedFaults) {
  auto& inj = fault::Injector::instance();
  inj.arm("guard.site", fault::Kind::kDeadlineExceeded);
  ResourceGuard g;  // unlimited, but the fault still trips it
  EXPECT_EQ(g.checkpoint("guard.site").code(),
            StatusCode::kDeadlineExceeded);
  // Latched even after the injector is cleared.
  inj.reset();
  EXPECT_EQ(g.checkpoint("guard.site").code(),
            StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace syseco
