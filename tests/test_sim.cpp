// Simulator tests: bit-parallel evaluation vs. single-pattern reference,
// pattern loading semantics, determinism.

#include <gtest/gtest.h>

#include "gen/spec_builder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

class SimRandomCircuit : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimRandomCircuit, WordSimMatchesScalarReference) {
  Rng rng(GetParam());
  SpecParams p{2, 4, 2, 2, 4, 3, 2, 2};
  SpecCircuit sc = buildSpec(p, rng);
  const Netlist& nl = sc.netlist;

  Simulator sim(nl, 2);  // 128 patterns
  Rng simRng(GetParam() * 3 + 1);
  sim.randomizeInputs(simRng);
  sim.run();

  // Check 10 random pattern indices against evalOnce.
  Rng pick(7);
  for (int k = 0; k < 10; ++k) {
    const std::size_t idx = static_cast<std::size_t>(pick.below(128));
    InputPattern pattern(nl.numInputs());
    for (std::size_t i = 0; i < nl.numInputs(); ++i)
      pattern[i] =
          sim.bit(nl.inputNet(static_cast<std::uint32_t>(i)), idx) ? 1 : 0;
    const auto outs = evalOnce(nl, pattern);
    for (std::uint32_t o = 0; o < nl.numOutputs(); ++o)
      EXPECT_EQ(sim.bit(nl.outputNet(o), idx), outs[o] != 0)
          << "output " << o << " pattern " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimRandomCircuit,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 99));

class SimWideGates : public ::testing::TestWithParam<std::uint64_t> {};

// Gates with more than 16 fanins take the heap-buffer (`bigFanins`) path
// in Simulator::run; exercise it against the scalar references on every
// simulated pattern, not a sample.
TEST_P(SimWideGates, BigFaninPathMatchesScalarReference) {
  Rng rng(GetParam());
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 24; ++i)
    ins.push_back(nl.addInput("i" + std::to_string(i)));
  auto pick = [&](std::size_t k) {
    std::vector<NetId> f;
    for (std::size_t j = 0; j < k; ++j)
      f.push_back(ins[static_cast<std::size_t>(rng.below(ins.size()))]);
    return f;
  };
  const NetId wideAnd = nl.addGate(GateType::And, pick(24));
  const NetId wideOr = nl.addGate(GateType::Or, pick(20));
  const NetId wideXor = nl.addGate(GateType::Xor, pick(17));
  const NetId wideNand = nl.addGate(GateType::Nand, pick(19));
  // A narrow gate combining wide ones: mixed paths in one pass.
  const NetId mix = nl.addGate(GateType::Xor, {wideAnd, wideOr});
  nl.addOutput("and", wideAnd);
  nl.addOutput("or", wideOr);
  nl.addOutput("xor", wideXor);
  nl.addOutput("nand", wideNand);
  nl.addOutput("mix", mix);

  Simulator sim(nl, 2);  // 128 patterns
  Rng simRng(GetParam() * 7 + 3);
  sim.randomizeInputs(simRng);
  sim.run();

  for (std::size_t idx = 0; idx < sim.numPatterns(); ++idx) {
    InputPattern pattern(nl.numInputs());
    for (std::size_t i = 0; i < nl.numInputs(); ++i)
      pattern[i] =
          sim.bit(nl.inputNet(static_cast<std::uint32_t>(i)), idx) ? 1 : 0;
    const auto outs = evalOnce(nl, pattern);
    for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
      EXPECT_EQ(sim.bit(nl.outputNet(o), idx), outs[o] != 0)
          << "output " << o << " pattern " << idx;
      EXPECT_EQ(evalNetOnce(nl, nl.outputNet(o), pattern), outs[o] != 0)
          << "output " << o << " pattern " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimWideGates, ::testing::Values(13, 37, 71));

TEST(Simulator, LoadPatternsZeroFillsTail) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  nl.addOutput("o", a);
  Simulator sim(nl, 1);
  sim.loadPatterns({{1}, {0}, {1}});  // 3 patterns into 64 slots
  sim.run();
  EXPECT_TRUE(sim.bit(a, 0));
  EXPECT_FALSE(sim.bit(a, 1));
  EXPECT_TRUE(sim.bit(a, 2));
  // Unused tail slots are the all-zero assignment, never a replicated
  // pattern (replication used to bias whole-word statistics toward the
  // last sample).
  for (std::size_t k = 3; k < 64; ++k) EXPECT_FALSE(sim.bit(a, k));
}

TEST(Simulator, DeterministicUnderSameSeed) {
  Rng rng(5);
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 1, 3, 2, 1, 1}, rng);
  Simulator s1(sc.netlist, 4), s2(sc.netlist, 4);
  Rng r1(42), r2(42);
  s1.randomizeInputs(r1);
  s2.randomizeInputs(r2);
  s1.run();
  s2.run();
  for (std::uint32_t o = 0; o < sc.netlist.numOutputs(); ++o)
    EXPECT_EQ(s1.outputValue(o), s2.outputValue(o));
}

TEST(Simulator, EvalNetOnceMatchesFullEval) {
  Rng rng(9);
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 2, 3, 2, 2, 1}, rng);
  const Netlist& nl = sc.netlist;
  InputPattern p(nl.numInputs());
  for (auto& bit : p) bit = rng.flip() ? 1 : 0;
  const auto outs = evalOnce(nl, p);
  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o)
    EXPECT_EQ(evalNetOnce(nl, nl.outputNet(o), p), outs[o] != 0);
}

}  // namespace
}  // namespace syseco
