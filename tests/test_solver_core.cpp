// Failed-assumption cores (analyzeFinal) and SAT sweeping.

#include <gtest/gtest.h>

#include "cnf/encode.hpp"
#include "gen/eco_case.hpp"
#include "opt/passes.hpp"
#include "sat/solver.hpp"

namespace syseco {
namespace {

Lit pos(Var v) { return Lit::make(v, false); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(SolverCore, FailedAssumptionsContainTheCulprits) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  const Var c = s.newVar();
  const Var unused = s.newVar();
  s.addClause(neg(a), neg(b));  // a & b impossible
  ASSERT_EQ(s.solve({pos(a), pos(b), pos(c), pos(unused)}),
            Solver::Result::Unsat);
  const auto& core = s.failedAssumptions();
  ASSERT_FALSE(core.empty());
  // Core must only mention a and b (c and `unused` are irrelevant).
  for (const Lit& l : core) {
    EXPECT_TRUE(l.var() == a || l.var() == b)
        << "irrelevant var in core: " << l.var();
  }
}

TEST(SolverCore, CoreEmptyOnUnconditionalUnsat) {
  Solver s;
  const Var a = s.newVar();
  const Var b = s.newVar();
  s.addClause(pos(a));
  s.addClause(neg(a));
  EXPECT_EQ(s.solve({pos(b)}), Solver::Result::Unsat);
  EXPECT_TRUE(s.failedAssumptions().empty());
}

TEST(SolverCore, CoreIsActuallyUnsat) {
  // Re-solving with only the core assumptions must stay Unsat.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.newVar());
  // Chain x0 -> x1 -> ... -> x5, and a clause blocking x5 with x6.
  for (int i = 0; i < 5; ++i) s.addClause(neg(x[i]), pos(x[i + 1]));
  s.addClause(neg(x[5]), neg(x[6]));
  std::vector<Lit> assumptions{pos(x[0]), pos(x[6]), pos(x[7])};
  ASSERT_EQ(s.solve(assumptions), Solver::Result::Unsat);
  const auto core = s.failedAssumptions();
  ASSERT_FALSE(core.empty());
  std::vector<Lit> coreOnly;
  for (const Lit& l : core) coreOnly.push_back(l);
  EXPECT_EQ(s.solve(coreOnly), Solver::Result::Unsat);
  // x7 must not be needed.
  for (const Lit& l : core) EXPECT_NE(l.var(), x[7]);
}

TEST(SatSweeping, SweptAndPlainAgree) {
  // The swept solve must give identical verdicts to the plain one, on both
  // equivalent and differing output pairs of a realistic case.
  CaseRecipe r;
  r.name = "sweep";
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 1;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = 321;
  const EcoCase c = makeCase(r);
  PairEncoding plain(c.impl, c.spec);
  PairEncoding swept(c.impl, c.spec);
  Rng rng(9);
  for (std::uint32_t o = 0; o < c.impl.numOutputs(); ++o) {
    const std::uint32_t op = c.spec.findOutput(c.impl.outputName(o));
    if (op == kNullId) continue;
    EXPECT_EQ(plain.solveDiff(o, op), swept.solveDiffSwept(o, op, -1, rng))
        << "output " << o;
  }
}

TEST(SatSweeping, ProvenEquivalencesSpeedUpIdenticalFunctions) {
  // A restructured twin: every output is equivalent; sweeping must prove
  // them all Unsat (this also exercises complement-equivalence pinning).
  Rng grng(77);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 5, 4, 2, 3}, grng);
  const Netlist spec = lightSynth(sc.netlist);
  const Netlist impl = heavyOptimize(sc.netlist, grng, 2);
  PairEncoding pe(impl, spec);
  Rng rng(5);
  for (std::uint32_t o = 0; o < impl.numOutputs(); ++o) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    ASSERT_NE(op, kNullId);
    EXPECT_EQ(pe.solveDiffSwept(o, op, -1, rng), Solver::Result::Unsat);
  }
}

}  // namespace
}  // namespace syseco
