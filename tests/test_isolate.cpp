// Fault-contained subprocess isolation: the crc32 IPC framing, the
// untrusted WorkerPatch decoder, the fork/rlimit/reap primitives, the
// supervisor's failure taxonomy + retry/quarantine policy, and the headline
// guarantee - a clean `--isolate` run is bit-identical to the in-process
// `--jobs N` run, and an injected worker fault degrades exactly one output
// to the cone-clone fallback instead of taking the run down.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eco/isolate.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/blif_io.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/subprocess.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

// --- IPC framing ----------------------------------------------------------

TEST(IpcFrame, RoundtripsPayloads) {
  for (const std::string payload :
       {std::string(), std::string("x"), std::string("{\"k\":1}"),
        std::string(100000, 'z')}) {
    const std::string bytes = ipc::encodeFrame(ipc::kTypeWorkerResult, payload);
    Result<ipc::Frame> frame = ipc::decodeFrame(bytes);
    ASSERT_TRUE(frame.isOk()) << frame.status().toString();
    EXPECT_EQ(frame.value().type, ipc::kTypeWorkerResult);
    EXPECT_EQ(frame.value().payload, payload);
  }
}

TEST(IpcFrame, RejectsEveryTruncation) {
  const std::string bytes = ipc::encodeFrame(ipc::kTypeTaskRequest, "payload");
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(ipc::decodeFrame(std::string_view(bytes).substr(0, n)).isOk())
        << "truncated to " << n << " bytes";
  }
}

TEST(IpcFrame, RejectsEverySingleBitFlip) {
  const std::string ref = ipc::encodeFrame(ipc::kTypeWorkerResult, "{\"a\":1}");
  for (std::size_t byte = 0; byte < ref.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = ref;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      Result<ipc::Frame> frame = ipc::decodeFrame(mutated);
      // Any surviving decode must at least carry an uncorrupted payload
      // (a flip confined to the type field can still checksum-validate).
      if (frame.isOk()) EXPECT_EQ(frame.value().payload, "{\"a\":1}");
    }
  }
}

TEST(IpcFrame, RejectsTrailingBytesAndOversizedLength) {
  std::string bytes = ipc::encodeFrame(ipc::kTypeWorkerResult, "p");
  EXPECT_FALSE(ipc::decodeFrame(bytes + "x").isOk());

  // Patch the length field (bytes 8..11) to a value past the cap: the
  // decoder must reject it without attempting the allocation.
  std::string huge = ipc::encodeFrame(ipc::kTypeWorkerResult, "p");
  huge[8] = '\xff';
  huge[9] = '\xff';
  huge[10] = '\xff';
  huge[11] = '\x7f';
  EXPECT_FALSE(ipc::decodeFrame(huge).isOk());
}

// --- Task-request payload -------------------------------------------------

TEST(IsolateCodec, TaskRequestRoundtrips) {
  IsolateTaskRequest req;
  req.output = 17;
  req.attempt = 3;
  Result<IsolateTaskRequest> back = decodeTaskRequest(encodeTaskRequest(req));
  ASSERT_TRUE(back.isOk());
  EXPECT_EQ(back.value().output, 17u);
  EXPECT_EQ(back.value().attempt, 3);
}

TEST(IsolateCodec, TaskRequestRejectsGarbage) {
  EXPECT_FALSE(decodeTaskRequest("").isOk());
  EXPECT_FALSE(decodeTaskRequest("not json").isOk());
  EXPECT_FALSE(decodeTaskRequest("{\"output\":-1,\"attempt\":1}").isOk());
  EXPECT_FALSE(decodeTaskRequest("{\"attempt\":1}").isOk());
}

// --- WorkerPatch payload --------------------------------------------------

/// Two-output base: o = a AND b, p = a OR b.
Netlist patchBase() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("o", nl.addGate(GateType::And, {a, b}));
  nl.addOutput("p", nl.addGate(GateType::Or, {a, b}));
  return nl;
}

WorkerPatch producedPatch(const Netlist& base) {
  WorkerPatch p;
  p.produced = true;
  p.baseGates = base.numGatesTotal();
  p.baseNets = base.numNetsTotal();
  const NetId n0 = static_cast<NetId>(p.baseNets);
  p.gates.push_back(WorkerPatch::NewGate{GateType::Xor, {0, 1}, n0});
  p.gates.push_back(WorkerPatch::NewGate{GateType::Not, {n0}, n0 + 1});
  PatchTracker::RewireRecord rw;
  rw.sink = Sink{kNullId, 0};  // output 0 rewired to the new logic
  rw.oldNet = base.outputNet(0);
  rw.newNet = n0 + 1;
  p.rewires.push_back(rw);
  p.frag.outputsRectified = 1;
  p.frag.candidatesValidated = 5;
  p.frag.secondsValidation = 0.125;
  OutputReport rep;
  rep.output = 0;
  rep.name = base.outputName(0);
  rep.status = OutputRectStatus::kExact;
  rep.conflictsUsed = 42;
  rep.seconds = 0.25;
  p.frag.outputs.push_back(rep);
  return p;
}

TEST(IsolateCodec, WorkerPatchRoundtrips) {
  const Netlist base = patchBase();
  const WorkerPatch p = producedPatch(base);
  Result<WorkerPatch> back = decodeWorkerPatch(encodeWorkerPatch(p), base);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  const WorkerPatch& q = back.value();
  EXPECT_TRUE(q.produced);
  EXPECT_EQ(q.baseGates, p.baseGates);
  EXPECT_EQ(q.baseNets, p.baseNets);
  ASSERT_EQ(q.gates.size(), 2u);
  EXPECT_EQ(q.gates[0].type, GateType::Xor);
  EXPECT_EQ(q.gates[0].fanins, p.gates[0].fanins);
  EXPECT_EQ(q.gates[1].out, p.gates[1].out);
  ASSERT_EQ(q.rewires.size(), 1u);
  EXPECT_EQ(q.rewires[0].oldNet, p.rewires[0].oldNet);
  EXPECT_EQ(q.rewires[0].newNet, p.rewires[0].newNet);
  EXPECT_EQ(q.frag.outputsRectified, 1u);
  EXPECT_EQ(q.frag.candidatesValidated, 5u);
  EXPECT_DOUBLE_EQ(q.frag.secondsValidation, 0.125);
  ASSERT_EQ(q.frag.outputs.size(), 1u);
  EXPECT_EQ(q.frag.outputs[0].name, base.outputName(0));
  EXPECT_EQ(q.frag.outputs[0].conflictsUsed, 42);
  EXPECT_DOUBLE_EQ(q.frag.outputs[0].seconds, 0.25);
}

TEST(IsolateCodec, UnproducedPatchRoundtrips) {
  const Netlist base = patchBase();
  WorkerPatch p;
  p.produced = false;
  p.baseGates = base.numGatesTotal();
  p.baseNets = base.numNetsTotal();
  Result<WorkerPatch> back = decodeWorkerPatch(encodeWorkerPatch(p), base);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_FALSE(back.value().produced);
  EXPECT_TRUE(back.value().gates.empty());
  EXPECT_TRUE(back.value().frag.outputs.empty());
}

TEST(IsolateCodec, WorkerPatchRejectsSemanticCorruption) {
  const Netlist base = patchBase();
  const auto rejects = [&](WorkerPatch p, const char* what) {
    EXPECT_FALSE(decodeWorkerPatch(encodeWorkerPatch(p), base).isOk()) << what;
  };

  {  // Snapshot disagreement: the worker patched a different base.
    WorkerPatch p = producedPatch(base);
    p.baseNets += 1;
    rejects(p, "base net count mismatch");
  }
  {  // Appended gate ids must be dense and in order.
    WorkerPatch p = producedPatch(base);
    p.gates[0].out += 1;
    rejects(p, "gate output id out of order");
  }
  {  // A gate must not read a net younger than itself.
    WorkerPatch p = producedPatch(base);
    p.gates[0].fanins[0] = p.gates[1].out;
    rejects(p, "fanin from the future");
  }
  {  // Arity must match the gate type.
    WorkerPatch p = producedPatch(base);
    p.gates[1].fanins.push_back(0);  // Not with two fanins
    rejects(p, "arity mismatch");
  }
  {  // Rewire nets must exist.
    WorkerPatch p = producedPatch(base);
    p.rewires[0].newNet = 10000;
    rejects(p, "rewire to nonexistent net");
  }
  {  // Output sinks must name a real output.
    WorkerPatch p = producedPatch(base);
    p.rewires[0].sink = Sink{kNullId, 99};
    rejects(p, "rewire of nonexistent output");
  }
  {  // Gate sinks must name a real pin.
    WorkerPatch p = producedPatch(base);
    p.rewires[0].sink = Sink{0, 7};
    rejects(p, "rewire of nonexistent gate pin");
  }
  {  // The report must describe a real output of the base.
    WorkerPatch p = producedPatch(base);
    p.frag.outputs[0].name = "bogus";
    rejects(p, "report name mismatch");
  }
  EXPECT_FALSE(decodeWorkerPatch("", base).isOk());
  EXPECT_FALSE(decodeWorkerPatch("not json", base).isOk());
  EXPECT_FALSE(decodeWorkerPatch("{\"produced\":true}", base).isOk());
}

// --- Subprocess primitives ------------------------------------------------

TEST(Subprocess, RelaysBodyExitCodeAndResponseBytes) {
  subprocess::Limits limits;
  Result<subprocess::Child> forked =
      subprocess::forkWorker(limits, [](int requestFd, int responseFd) {
        Result<std::string> req = subprocess::readAll(requestFd);
        if (!req.isOk() || req.value() != "ping")
          return subprocess::kChildExitBadRequest;
        if (!subprocess::writeAll(responseFd, "pong").isOk()) return 1;
        return 7;
      });
  ASSERT_TRUE(forked.isOk()) << forked.status().toString();
  subprocess::Child child = forked.take();
  ASSERT_TRUE(subprocess::writeAll(child.requestFd, "ping").isOk());
  subprocess::closeRequestFd(child);

  std::string buf;
  while (true) {
    const auto wo = subprocess::tryReap(child.pid);
    (void)subprocess::drainAvailable(child.responseFd, &buf);
    if (wo) {
      EXPECT_EQ(wo->kind, subprocess::WaitKind::kExited);
      EXPECT_EQ(wo->exitCode, 7);
      break;
    }
    subprocess::pollReadable({child.responseFd}, 50);
  }
  while (true) {
    Result<bool> more = subprocess::drainAvailable(child.responseFd, &buf);
    if (!more.isOk() || !more.value()) break;
    subprocess::pollReadable({child.responseFd}, 10);
  }
  EXPECT_EQ(buf, "pong");
  subprocess::closeChildFds(child);
}

TEST(Subprocess, BadAllocInTheBodyMapsToTheOomExitCode) {
  subprocess::Limits limits;
  Result<subprocess::Child> forked = subprocess::forkWorker(
      limits, [](int, int) -> int { throw std::bad_alloc{}; });
  ASSERT_TRUE(forked.isOk());
  subprocess::Child child = forked.take();
  subprocess::closeRequestFd(child);
  while (true) {
    if (const auto wo = subprocess::tryReap(child.pid)) {
      EXPECT_EQ(wo->kind, subprocess::WaitKind::kExited);
      EXPECT_EQ(wo->exitCode, subprocess::kChildExitOom);
      break;
    }
    subprocess::pollReadable({}, 20);
  }
  subprocess::closeChildFds(child);
}

TEST(Subprocess, TerminateEscalatesToSigkillWhenSigtermIsIgnored) {
  subprocess::Limits limits;
  Result<subprocess::Child> forked =
      subprocess::forkWorker(limits, [](int, int) -> int {
        std::signal(SIGTERM, SIG_IGN);
        for (;;) subprocess::pollReadable({}, 1000);
      });
  ASSERT_TRUE(forked.isOk());
  subprocess::Child child = forked.take();
  // Give the child a moment to install its SIGTERM shrug.
  subprocess::pollReadable({}, 100);
  const subprocess::WaitOutcome wo = subprocess::terminateChild(child.pid, 0.3);
  EXPECT_EQ(wo.kind, subprocess::WaitKind::kTimedOut);
  EXPECT_TRUE(wo.killEscalated);
  subprocess::closeChildFds(child);
}

TEST(Subprocess, TerminateReapsACooperativeChildWithoutEscalating) {
  subprocess::Limits limits;
  Result<subprocess::Child> forked = subprocess::forkWorker(
      limits, [](int requestFd, int) -> int {
        // Block on the request pipe; SIGTERM's default disposition kills us.
        (void)subprocess::readAll(requestFd);
        for (;;) subprocess::pollReadable({}, 1000);
      });
  ASSERT_TRUE(forked.isOk());
  subprocess::Child child = forked.take();
  const subprocess::WaitOutcome wo = subprocess::terminateChild(child.pid, 5.0);
  EXPECT_EQ(wo.kind, subprocess::WaitKind::kTimedOut);
  EXPECT_FALSE(wo.killEscalated);
  subprocess::closeChildFds(child);
}

// --- Engine-level bit-identity and containment ----------------------------

EcoCase isolateCase(std::uint64_t seed) {
  CaseRecipe r;
  r.name = "iso" + std::to_string(seed);
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 3;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = seed;
  return makeCase(r);
}

struct CapturedRun {
  EcoResult result;
  SysecoDiagnostics diag;
  std::string rectifiedDump;
};

CapturedRun runCase(const EcoCase& c, std::size_t jobs, bool isolate) {
  CapturedRun run;
  SysecoOptions opt;
  opt.jobs = jobs;
  opt.isolate = isolate;
  opt.isolateBackoffMs = 1.0;
  run.result = runSyseco(c.impl, c.spec, opt, &run.diag);
  run.rectifiedDump = run.result.rectified.dumpRawString();
  return run;
}

void expectIdenticalRuns(const CapturedRun& a, const CapturedRun& b) {
  ASSERT_TRUE(a.result.success);
  ASSERT_TRUE(b.result.success);
  EXPECT_EQ(a.rectifiedDump, b.rectifiedDump);
  EXPECT_EQ(a.result.stats.gates, b.result.stats.gates);
  EXPECT_EQ(a.result.stats.nets, b.result.stats.nets);
  ASSERT_EQ(a.diag.outputs.size(), b.diag.outputs.size());
  for (std::size_t i = 0; i < a.diag.outputs.size(); ++i) {
    const OutputReport& x = a.diag.outputs[i];
    const OutputReport& y = b.diag.outputs[i];
    EXPECT_EQ(x.output, y.output) << "report " << i;
    EXPECT_EQ(x.name, y.name) << "report " << i;
    EXPECT_EQ(x.status, y.status) << "report " << i;
    EXPECT_EQ(x.limit, y.limit) << "report " << i;
    EXPECT_EQ(x.conflictsUsed, y.conflictsUsed) << "report " << i;
    EXPECT_EQ(x.bddNodesUsed, y.bddNodesUsed) << "report " << i;
    EXPECT_EQ(x.degradeSteps, y.degradeSteps) << "report " << i;
    EXPECT_EQ(x.workerFailedAttempts, y.workerFailedAttempts) << "rep " << i;
    EXPECT_EQ(x.workerExitCause, y.workerExitCause) << "report " << i;
  }
  EXPECT_EQ(a.diag.conflictsUsed, b.diag.conflictsUsed);
  EXPECT_EQ(a.diag.bddNodesUsed, b.diag.bddNodesUsed);
  EXPECT_EQ(a.diag.outputsRectified, b.diag.outputsRectified);
  EXPECT_EQ(a.diag.outputsViaRewire, b.diag.outputsViaRewire);
  EXPECT_EQ(a.diag.outputsViaFallback, b.diag.outputsViaFallback);
  EXPECT_EQ(a.diag.candidatesValidated, b.diag.candidatesValidated);
  EXPECT_EQ(a.diag.sweepMerges, b.diag.sweepMerges);
}

class IsolateSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsolateSeeds, IsolatedRunIsBitIdenticalToInProcess) {
  const EcoCase c = isolateCase(GetParam());
  expectIdenticalRuns(runCase(c, 2, /*isolate=*/false),
                      runCase(c, 2, /*isolate=*/true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolateSeeds, ::testing::Values(11, 321));

TEST(Isolate, InvalidKnobsAreRejectedNotUndefined) {
  const EcoCase c = isolateCase(11);
  SysecoOptions opt;
  opt.isolate = true;
  opt.isolateMaxAttempts = 0;
  EXPECT_FALSE(runSysecoChecked(c.impl, c.spec, opt).isOk());
  opt.isolateMaxAttempts = 3;
  opt.isolateBackoffMs = -1.0;
  EXPECT_FALSE(runSysecoChecked(c.impl, c.spec, opt).isOk());
}

// --- End-to-end through the CLI binary ------------------------------------

#ifdef SYSECO_CLI_BIN

class IsolateCliTest : public ::testing::Test {
 protected:
  static std::string dataPath(const char* name) {
    return std::string(SYSECO_SOURCE_DIR) + "/data/" + name;
  }

  static std::string testDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "syseco_isolate_" + name;
    const std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
    return dir;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  }

  static int runCli(const std::string& env, const std::string& args,
                    const std::string& logPath) {
    const std::string cmd = env + (env.empty() ? "" : " ") + SYSECO_CLI_BIN +
                            " " + args + " > '" + logPath + "' 2>&1";
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
  }

  /// Strips wall-clock timing so runs compare byte-for-byte on everything
  /// that must be deterministic.
  static std::string normalizeReport(std::string text) {
    std::ostringstream out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"phase_cpu_seconds\"") != std::string::npos) continue;
      std::size_t pos = 0;
      while ((pos = line.find("seconds\": ", pos)) != std::string::npos) {
        pos += 10;
        std::size_t end = pos;
        while (end < line.size() && line[end] != ',' && line[end] != '}')
          ++end;
        line.replace(pos, end - pos, "T");
      }
      out << line << '\n';
    }
    return out.str();
  }
};

TEST_F(IsolateCliTest, UninjectedIsolateMatchesInProcessByteForByte) {
  const std::string dir = testDir("clean");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string base = "--impl " + dataPath("alu_impl.blif") +
                           " --spec " + dataPath("alu_spec.blif") +
                           " --jobs 4";
  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json --out " + dir +
                           "/ref.blif",
                   dir + "/ref.log"),
            0);
  ASSERT_EQ(runCli("", base + " --isolate --report " + dir +
                           "/iso.json --out " + dir + "/iso.blif",
                   dir + "/iso.log"),
            0)
      << slurp(dir + "/iso.log");
  EXPECT_EQ(slurp(dir + "/ref.blif"), slurp(dir + "/iso.blif"));
  EXPECT_EQ(normalizeReport(slurp(dir + "/ref.json")),
            normalizeReport(slurp(dir + "/iso.json")));
}

struct FaultCase {
  const char* kind;
  const char* wantCause;
  const char* wantLimit;
};

class IsolateFaultMatrix : public IsolateCliTest,
                           public ::testing::WithParamInterface<FaultCase> {};

TEST_P(IsolateFaultMatrix, InjectedFaultQuarantinesExactlyOneOutput) {
  const FaultCase fc = GetParam();
  const std::string dir = testDir(std::string("fault_") + fc.kind);
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string base = "--impl " + dataPath("alu_impl.blif") +
                           " --spec " + dataPath("alu_spec.blif") +
                           " --jobs 4 --isolate --isolate-wall-ms 2000"
                           " --isolate-backoff-ms 1 --isolate-max-attempts 2";

  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json",
                   dir + "/ref.log"),
            0);

  // Inject on the last planned output so every other output has committed
  // by the time the fault fires - those must stay bit-identical.
  const std::string ref = slurp(dir + "/ref.json");
  const std::size_t lastEntry = ref.rfind("{\"output\": ");
  ASSERT_NE(lastEntry, std::string::npos);
  const std::size_t idBegin = lastEntry + 11;
  const std::uint32_t victim = static_cast<std::uint32_t>(
      std::strtoul(ref.c_str() + idBegin, nullptr, 10));

  const std::string env = "SYSECO_FAULT_INJECT='isolate.worker.o" +
                          std::to_string(victim) + "=" + fc.kind + "'";
  ASSERT_EQ(runCli(env, base + " --report " + dir + "/fault.json",
                   dir + "/fault.log"),
            4)
      << slurp(dir + "/fault.log");

  const std::string report = slurp(dir + "/fault.json");
  const std::string victimKey = "{\"output\": " + std::to_string(victim) + ",";
  // The oracle section also carries per-output entries; the run report
  // array is the *last* "outputs" key in the document.
  const std::size_t outputsArr = report.rfind("\"outputs\": [");
  ASSERT_NE(outputsArr, std::string::npos);
  const std::size_t at = report.find(victimKey, outputsArr);
  ASSERT_NE(at, std::string::npos) << report;
  const std::size_t end = report.find('}', at);
  const std::string entry = report.substr(at, end - at + 1);
  EXPECT_NE(entry.find("\"status\": \"fallback\""), std::string::npos)
      << entry;
  EXPECT_NE(entry.find(std::string("\"exit_cause\": \"") + fc.wantCause),
            std::string::npos)
      << entry;
  EXPECT_NE(entry.find(std::string("\"limit\": \"") + fc.wantLimit),
            std::string::npos)
      << entry;
  EXPECT_NE(entry.find("\"attempts\": 2"), std::string::npos) << entry;

  // Every other output must be bit-identical to the uninjected run.
  std::istringstream refIn(normalizeReport(ref));
  std::istringstream gotIn(normalizeReport(report));
  std::string refLine, gotLine;
  while (std::getline(refIn, refLine) && std::getline(gotIn, gotLine)) {
    if (refLine.find(victimKey) != std::string::npos) continue;
    if (refLine.find("\"degraded\"") != std::string::npos) continue;
    if (refLine.find("\"exit_code\"") != std::string::npos) continue;
    if (refLine.find("\"run_limit\"") != std::string::npos) continue;
    if (refLine.find("\"patch\"") != std::string::npos) continue;
    if (refLine.find("\"budget\"") != std::string::npos) continue;
    // The quarantined output falls back to a cone clone whose shape the
    // ISOP minimizer may compress, so the global sweep stats differ.
    if (refLine.find("\"sweep\"") != std::string::npos) continue;
    EXPECT_EQ(gotLine, refLine);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, IsolateFaultMatrix,
    ::testing::Values(FaultCase{"crash", "crash", "internal"},
                      FaultCase{"oom", "oom", "budget-exhausted"},
                      FaultCase{"hang", "wall-timeout", "deadline-exceeded"},
                      FaultCase{"garbage-ipc", "garbage-ipc", "internal"}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      std::string name = info.param.kind;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

#endif  // SYSECO_CLI_BIN

}  // namespace
}  // namespace syseco
