// Crash-safe run journal: framing, checksums, atomic writes, exact netlist
// snapshots, and the patch serialization round-trip (journal snapshot ->
// restore -> SAT-equivalence against the in-memory patch, for exact,
// degraded and cone-clone fallback patches alike).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

std::string testDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_journal_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

Netlist aluImpl() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
}
Netlist aluSpec() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
}

// --- CRC-32 and atomic replacement ----------------------------------------

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical IEEE 802.3 check value: crc32("123456789").
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(AtomicFile, WritesAndReplacesWithoutTornContent) {
  const std::string dir = testDir("atomic");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string path = dir + "/report.json";

  ASSERT_TRUE(writeFileAtomic(path, "first\n").isOk());
  EXPECT_EQ(slurp(path), "first\n");
  ASSERT_TRUE(writeFileAtomic(path, "second, longer content\n").isOk());
  EXPECT_EQ(slurp(path), "second, longer content\n");

  // No temporary siblings left behind.
  std::string cmd = "ls '" + dir + "'/*.tmp.* 2>/dev/null | wc -l > /tmp/syseco_tmpcount";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_EQ(slurp("/tmp/syseco_tmpcount"), "0\n");
}

TEST(AtomicFile, FailsCleanlyOnUnwritableDirectory) {
  const Status s = writeFileAtomic("/nonexistent-dir-xyz/file", "x");
  EXPECT_FALSE(s.isOk());
}

// --- Framing layer --------------------------------------------------------

TEST(JournalFraming, AppendScanRoundTripsInOrder) {
  const std::string dir = testDir("roundtrip");
  Result<JournalWriter> w = JournalWriter::create(dir);
  ASSERT_TRUE(w.isOk());
  const std::vector<std::string> payloads = {
      "{\"a\":1}", "{\"b\":\"with \\\"quotes\\\"\"}", "{}", "{\"c\":[1,2,3]}"};
  for (const std::string& p : payloads)
    ASSERT_TRUE(w.value().append(p).isOk());

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  EXPECT_TRUE(scan.value().markerValid);
  EXPECT_EQ(scan.value().committedRecords, payloads.size());
  ASSERT_EQ(scan.value().frames.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan.value().frames[i].payload, payloads[i]);
    EXPECT_EQ(scan.value().frames[i].line, i + 1);
  }
  EXPECT_TRUE(scan.value().diagnostics.empty());
}

TEST(JournalFraming, MissingDirectoryScansEmpty) {
  Result<JournalScan> scan = scanJournal(testDir("never-created"));
  ASSERT_TRUE(scan.isOk());
  EXPECT_TRUE(scan.value().frames.empty());
}

TEST(JournalFraming, TornFinalRecordIsDroppedWithDiagnostic) {
  const std::string dir = testDir("torn");
  {
    Result<JournalWriter> w = JournalWriter::create(dir);
    ASSERT_TRUE(w.isOk());
    ASSERT_TRUE(w.value().append("{\"keep\":1}").isOk());
    ASSERT_TRUE(w.value().append("{\"keep\":2}").isOk());
    ASSERT_TRUE(w.value().append("{\"torn\":3}").isOk());
  }
  // Tear the final record mid-payload, as a crash mid-write would.
  const std::string path = journalDataPath(dir);
  std::string data = slurp(path);
  ASSERT_GT(data.size(), 6u);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << data.substr(0, data.size() - 6);

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 2u);
  EXPECT_EQ(scan.value().frames[1].payload, "{\"keep\":2}");
  ASSERT_FALSE(scan.value().diagnostics.empty());
  bool tornNoted = false;
  for (const std::string& d : scan.value().diagnostics)
    tornNoted |= d.find("torn final record") != std::string::npos;
  EXPECT_TRUE(tornNoted);
  // The marker now attests more records than survived - called out.
  bool lossNoted = false;
  for (const std::string& d : scan.value().diagnostics)
    lossNoted |= d.find("lost committed records") != std::string::npos;
  EXPECT_TRUE(lossNoted);

  // A resumed writer physically removes the torn tail before appending.
  Result<JournalWriter> w = JournalWriter::resume(dir, scan.value());
  ASSERT_TRUE(w.isOk());
  ASSERT_TRUE(w.value().append("{\"fresh\":4}").isOk());
  Result<JournalScan> rescan = scanJournal(dir);
  ASSERT_TRUE(rescan.isOk());
  ASSERT_EQ(rescan.value().frames.size(), 3u);
  EXPECT_EQ(rescan.value().frames.back().payload, "{\"fresh\":4}");
  EXPECT_TRUE(rescan.value().diagnostics.empty());
}

TEST(JournalFraming, BitFlippedRecordIsDroppedOthersSurvive) {
  const std::string dir = testDir("bitflip");
  {
    Result<JournalWriter> w = JournalWriter::create(dir);
    ASSERT_TRUE(w.isOk());
    ASSERT_TRUE(w.value().append("{\"first\":1}").isOk());
    ASSERT_TRUE(w.value().append("{\"second\":2}").isOk());
    ASSERT_TRUE(w.value().append("{\"third\":3}").isOk());
  }
  const std::string path = journalDataPath(dir);
  std::string data = slurp(path);
  const std::size_t hit = data.find("second");
  ASSERT_NE(hit, std::string::npos);
  data[hit] ^= 0x40;  // flip one payload bit in the middle record
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;

  Result<JournalScan> scan = scanJournal(dir);
  ASSERT_TRUE(scan.isOk());
  ASSERT_EQ(scan.value().frames.size(), 2u);
  EXPECT_EQ(scan.value().frames[0].payload, "{\"first\":1}");
  EXPECT_EQ(scan.value().frames[1].payload, "{\"third\":3}");
  bool checksumNoted = false;
  for (const std::string& d : scan.value().diagnostics)
    checksumNoted |= d.find("checksum mismatch") != std::string::npos;
  EXPECT_TRUE(checksumNoted);
}

// --- Exact netlist snapshots ----------------------------------------------

TEST(RawNetlist, RoundTripIsBitExactIncludingDeadGates) {
  Netlist impl = aluImpl();
  // Manufacture dead gates the way the engine does: rewire, then sweep.
  impl.rewireOutput(0, impl.outputNet(1));
  const std::size_t killed = impl.sweepDeadLogic();
  EXPECT_GT(killed, 0u);

  const std::string dump = impl.dumpRawString();
  Result<Netlist> back = Netlist::restoreRawString(dump);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  // Bit-exact: the re-dump is byte-identical, ids and dead flags included.
  EXPECT_EQ(back.value().dumpRawString(), dump);
  EXPECT_EQ(back.value().numGatesTotal(), impl.numGatesTotal());
  EXPECT_EQ(back.value().numNetsTotal(), impl.numNetsTotal());
  EXPECT_TRUE(back.value().isWellFormed());
}

TEST(RawNetlist, RoundTripsGeneratedCases) {
  CaseRecipe r;
  r.name = "journal-roundtrip";
  r.spec = SpecParams{2, 4, 2, 2, 3, 2, 2, 2};
  r.mutations = 2;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = 11;
  const EcoCase c = makeCase(r);
  for (const Netlist* nl : {&c.impl, &c.spec}) {
    const std::string dump = nl->dumpRawString();
    Result<Netlist> back = Netlist::restoreRawString(dump);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back.value().dumpRawString(), dump);
  }
}

TEST(RawNetlist, CorruptSnapshotsAreRejectedNotCrashed) {
  const std::string good = aluImpl().dumpRawString();
  const std::vector<std::string> bad = {
      "",
      "not-a-snapshot\n",
      "syseco-raw-netlist-v1\n",                      // truncated
      "syseco-raw-netlist-v1\ncounts 1 1 1 1\nend\n", // missing sections
      good.substr(0, good.size() / 2),                // torn in half
      good + "trailing garbage\n",
  };
  for (const std::string& text : bad) {
    Result<Netlist> r = Netlist::restoreRawString(text);
    EXPECT_FALSE(r.isOk()) << "accepted: " << text.substr(0, 40);
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
  }
  // Out-of-range ids must be caught by validation, not trusted.
  std::string tampered = good;
  const std::size_t pos = tampered.find("\ngate ");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 6, "\ngate and 999999 ");
  EXPECT_FALSE(Netlist::restoreRawString(tampered).isOk());
}

// --- JSON record layer ----------------------------------------------------

TEST(JournalJson, ParsesScalarsArraysAndNestedObjects) {
  Result<JsonValue> v = parseJson(
      "{\"i\":-42,\"f\":1.5,\"s\":\"a\\u0041\\n\",\"b\":true,"
      "\"arr\":[1,[2,3]],\"o\":{\"k\":null}}");
  ASSERT_TRUE(v.isOk()) << v.status().toString();
  const JsonValue* i = v.value().find("i");
  ASSERT_NE(i, nullptr);
  EXPECT_TRUE(i->isInteger);
  EXPECT_EQ(i->integer, -42);
  const JsonValue* s = v.value().find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "aA\n");
  const JsonValue* arr = v.value().find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 2u);
  EXPECT_EQ(arr->items[1].items.size(), 2u);
}

TEST(JournalJson, RejectsMalformedDocuments) {
  for (const char* text :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\":1}x", "\"\\q\"", "{'a':1}",
        "nul", "01", "[1 2]", "\"raw\ncontrol\""}) {
    EXPECT_FALSE(parseJson(text).isOk()) << text;
  }
  // Adversarial nesting hits the depth cap, not the stack guard page.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(parseJson(deep).isOk());
}

TEST(JournalJson, RunStartSerializationRoundTrips) {
  const std::string dir = testDir("runstart");
  JournalRunStart rs;
  rs.engine = "syseco";
  rs.implCrc = 0xdeadbeef;
  rs.specCrc = 0x12345678;
  rs.optionsFingerprint = "syseco-options-v1;x=1";
  rs.seed = 0xfeedfacecafebeefULL;
  rs.failingOutputsBefore = 3;
  rs.order = {2, 0, 5};
  {
    Result<JournalWriter> w = JournalWriter::create(dir);
    ASSERT_TRUE(w.isOk());
    ASSERT_TRUE(w.value().append(serializeRunStart(rs)).isOk());
  }
  Result<JournalContents> c = readJournal(dir);
  ASSERT_TRUE(c.isOk());
  ASSERT_TRUE(c.value().hasRunStart);
  EXPECT_EQ(c.value().runStart.engine, rs.engine);
  EXPECT_EQ(c.value().runStart.implCrc, rs.implCrc);
  EXPECT_EQ(c.value().runStart.specCrc, rs.specCrc);
  EXPECT_EQ(c.value().runStart.optionsFingerprint, rs.optionsFingerprint);
  EXPECT_EQ(c.value().runStart.seed, rs.seed);
  EXPECT_EQ(c.value().runStart.failingOutputsBefore, 3u);
  EXPECT_EQ(c.value().runStart.order, rs.order);
}

// --- Patch serialization round-trip (exact / degraded / fallback) ---------

class PatchRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override { fault::Injector::instance().reset(); }

  /// Runs the engine with a journaling checkpoint hook, re-reads every
  /// record from disk, restores each snapshot and proves - with fresh SAT
  /// miters - that the restored patch rectifies every claimed output, and
  /// that the snapshot is bit-identical to the in-memory working netlist.
  void runAndRoundTrip(const Netlist& impl, const Netlist& spec,
                       bool expectDegradedOrFallback) {
    const std::string dir =
        testDir(::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
    Result<JournalWriter> w = JournalWriter::create(dir);
    ASSERT_TRUE(w.isOk());

    std::vector<std::string> inMemoryDumps;
    SysecoOptions opt;
    opt.planHook = [&](const std::vector<std::uint32_t>& order,
                       std::size_t failingBefore) {
      ASSERT_TRUE(w.value()
                      .append(serializeRunStart(makeRunStartRecord(
                          impl, spec, opt, order, failingBefore)))
                      .isOk());
    };
    opt.checkpointHook = [&](const RunCheckpoint& cp) {
      inMemoryDumps.push_back(cp.working.dumpRawString());
      EXPECT_TRUE(
          w.value().append(serializeOutputRecord(makeOutputRecord(cp))).isOk());
      return true;
    };
    SysecoDiagnostics diag;
    const EcoResult res = runSyseco(impl, spec, opt, &diag);
    ASSERT_TRUE(res.success);
    ASSERT_FALSE(diag.outputs.empty());
    if (expectDegradedOrFallback) {
      // The armed fault must actually push outputs off the exact path, or
      // this test would only re-cover the exact case.
      bool nonExact = false;
      for (const OutputReport& r : diag.outputs)
        nonExact |= r.status != OutputRectStatus::kExact || r.degradeSteps > 0;
      EXPECT_TRUE(nonExact);
    }

    Result<JournalContents> contents = readJournal(dir);
    ASSERT_TRUE(contents.isOk());
    ASSERT_EQ(contents.value().outputs.size(), inMemoryDumps.size());
    for (std::size_t i = 0; i < contents.value().outputs.size(); ++i) {
      const JournalOutputRecord& rec = contents.value().outputs[i];
      // Bit-exact against the in-memory patch at the same checkpoint.
      EXPECT_EQ(rec.netlistDump, inMemoryDumps[i]);
      Result<Netlist> restored = Netlist::restoreRawString(rec.netlistDump);
      ASSERT_TRUE(restored.isOk()) << restored.status().toString();
      const Netlist& rn = restored.value();
      EXPECT_EQ(rn.dumpRawString(), inMemoryDumps[i]);

      // Independent SAT proof per claimed output - the journal's own
      // verdict ("exact"/"degraded"/"fallback") is never what certifies.
      PairEncoding pe(rn, spec);
      Rng rng(0x5eedu);
      for (const JournalOutputReport& jr : rec.reports) {
        const std::uint32_t op = spec.findOutput(jr.name);
        ASSERT_NE(op, kNullId) << jr.name;
        EXPECT_EQ(pe.solveDiffSwept(jr.output, op, -1, rng),
                  Solver::Result::Unsat)
            << "journaled patch for output " << jr.name
            << " is not actually a rectification";
      }
    }
  }
};

TEST_F(PatchRoundTrip, ExactPatchesSurviveTheJournal) {
  runAndRoundTrip(aluImpl(), aluSpec(), /*expectDegradedOrFallback=*/false);
}

TEST_F(PatchRoundTrip, DegradedPatchesSurviveTheJournal) {
  fault::Injector::instance().arm("syseco.pointsets", fault::Kind::kBddBlowup);
  runAndRoundTrip(aluImpl(), aluSpec(), /*expectDegradedOrFallback=*/true);
}

TEST_F(PatchRoundTrip, ConeCloneFallbackPatchesSurviveTheJournal) {
  fault::Injector::instance().arm("syseco.sampling",
                                  fault::Kind::kBudgetExhausted);
  runAndRoundTrip(aluImpl(), aluSpec(), /*expectDegradedOrFallback=*/true);
}

}  // namespace
}  // namespace syseco
