// Whole-case batch fan-out: the case-dispatch wire codecs (task envelopes
// and whole-case result envelopes with their embedded report/verdicts/
// netlist texts), the batch manifest parser, the WAL-backed batch ledger's
// fold-on-open crash recovery, the deterministic case-redispatch backoff
// (pinned to the per-output transports' retryBackoffSeconds contract), and
// runBatch end to end over real in-thread agents - remote and degraded-
// local sweeps of the same manifest must drain to bit-identical artifacts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eco/fleet.hpp"
#include "eco/isolate.hpp"
#include "eco/syseco.hpp"
#include "io/journal_io.hpp"
#include "serve/batch.hpp"
#include "serve/batch_ledger.hpp"
#include "util/subprocess.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

using serve::BatchCase;
using serve::BatchLedger;
using serve::CaseState;
using serve::ManifestCase;

// --- Case names (they name artifact directories on the supervisor) --------

TEST(BatchCaseName, AcceptsPortablePathComponentsOnly) {
  EXPECT_TRUE(validFleetCaseName("alu-seed1"));
  EXPECT_TRUE(validFleetCaseName("a"));
  EXPECT_TRUE(validFleetCaseName("CASE_2.retry"));
  EXPECT_TRUE(validFleetCaseName(std::string(64, 'x')));
  EXPECT_FALSE(validFleetCaseName(""));
  EXPECT_FALSE(validFleetCaseName(std::string(65, 'x')));
  EXPECT_FALSE(validFleetCaseName(".hidden"));
  EXPECT_FALSE(validFleetCaseName(".."));
  EXPECT_FALSE(validFleetCaseName("has space"));
  EXPECT_FALSE(validFleetCaseName("path/escape"));
  EXPECT_FALSE(validFleetCaseName("back\\slash"));
  EXPECT_FALSE(validFleetCaseName(std::string_view("nul\0byte", 8)));
  EXPECT_FALSE(validFleetCaseName("newline\n"));
}

// --- Case-dispatch wire codecs --------------------------------------------

TEST(BatchCodec, CaseTaskRoundtrips) {
  FleetCaseTask task;
  task.name = "alu-seed3";
  task.caseCrc = 0xdeadbeef;
  task.epoch = 0xfeedfacecafeULL;
  task.leaseSeconds = 2.5;
  task.jobs = 4;
  task.attempt = 3;
  Result<FleetCaseTask> back = decodeFleetCaseTask(encodeFleetCaseTask(task));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().name, "alu-seed3");
  EXPECT_EQ(back.value().caseCrc, 0xdeadbeefu);
  EXPECT_EQ(back.value().epoch, 0xfeedfacecafeULL);
  EXPECT_DOUBLE_EQ(back.value().leaseSeconds, 2.5);
  EXPECT_EQ(back.value().jobs, 4u);
  EXPECT_EQ(back.value().attempt, 3);
}

TEST(BatchCodec, CaseTaskFailsClosedOnHostileInput) {
  EXPECT_FALSE(decodeFleetCaseTask("").isOk());
  EXPECT_FALSE(decodeFleetCaseTask("not json").isOk());
  EXPECT_FALSE(decodeFleetCaseTask("[]").isOk());
  EXPECT_FALSE(decodeFleetCaseTask("{\"name\":\"x\"}").isOk());
  FleetCaseTask task;
  task.name = "ok";
  // A hostile case name must be rejected by the decoder even inside an
  // otherwise valid envelope (it would name a directory on the supervisor).
  std::string evil = encodeFleetCaseTask(task);
  const std::size_t at = evil.find("\"ok\"");
  ASSERT_NE(at, std::string::npos);
  evil.replace(at, 4, "\"../escape\"");
  EXPECT_FALSE(decodeFleetCaseTask(evil).isOk());
  // Zero/oversized jobs and non-positive leases are out of contract.
  task.jobs = 0;
  EXPECT_FALSE(decodeFleetCaseTask(encodeFleetCaseTask(task)).isOk());
  task.jobs = 257;
  EXPECT_FALSE(decodeFleetCaseTask(encodeFleetCaseTask(task)).isOk());
  task.jobs = 1;
  task.leaseSeconds = 0.0;
  EXPECT_FALSE(decodeFleetCaseTask(encodeFleetCaseTask(task)).isOk());
  task.leaseSeconds = 1.0;
  task.attempt = 0;
  EXPECT_FALSE(decodeFleetCaseTask(encodeFleetCaseTask(task)).isOk());
}

FleetCaseResult sampleResult() {
  FleetCaseResult r;
  r.epoch = 41;
  r.exitCode = 4;
  r.report = "{\"success\": true}";
  r.verdicts = "{\"type\":\"verdicts\",\"disagreements\":0}";
  r.netlist = "raw netlist snapshot";
  r.cacheHits = 1;
  r.cacheMisses = 2;
  r.cacheEvictions = 3;
  return r;
}

TEST(BatchCodec, CaseResultRoundtrips) {
  const FleetCaseResult r = sampleResult();
  Result<FleetCaseResult> back =
      decodeFleetCaseResult(encodeFleetCaseResult(r));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().epoch, 41u);
  EXPECT_EQ(back.value().exitCode, 4);
  EXPECT_EQ(back.value().report, r.report);
  EXPECT_EQ(back.value().verdicts, r.verdicts);
  EXPECT_EQ(back.value().netlist, r.netlist);
  EXPECT_EQ(back.value().cacheHits, 1u);
  EXPECT_EQ(back.value().cacheMisses, 2u);
  EXPECT_EQ(back.value().cacheEvictions, 3u);
  // The oracle-disabled shape (no verdicts record) is legal.
  FleetCaseResult noOracle = r;
  noOracle.verdicts.clear();
  EXPECT_TRUE(
      decodeFleetCaseResult(encodeFleetCaseResult(noOracle)).isOk());
}

TEST(BatchCodec, CaseResultFailsClosedOnHostileInput) {
  EXPECT_FALSE(decodeFleetCaseResult("").isOk());
  EXPECT_FALSE(decodeFleetCaseResult("not json").isOk());
  EXPECT_FALSE(decodeFleetCaseResult("{}").isOk());
  // The report is re-served to clients verbatim: non-JSON is rejected at
  // the wire, not discovered by a client later.
  FleetCaseResult r = sampleResult();
  r.report = "not a json object";
  EXPECT_FALSE(decodeFleetCaseResult(encodeFleetCaseResult(r)).isOk());
  r = sampleResult();
  r.report = "[1,2,3]";
  EXPECT_FALSE(decodeFleetCaseResult(encodeFleetCaseResult(r)).isOk());
  // The verdicts record is compared byte-for-byte with local journal lines:
  // embedded newlines and mistagged records are out of contract.
  r = sampleResult();
  r.verdicts = "{\"type\":\"verdicts\"}\n{\"type\":\"verdicts\"}";
  EXPECT_FALSE(decodeFleetCaseResult(encodeFleetCaseResult(r)).isOk());
  r = sampleResult();
  r.verdicts = "{\"type\":\"output\"}";
  EXPECT_FALSE(decodeFleetCaseResult(encodeFleetCaseResult(r)).isOk());
  r = sampleResult();
  r.verdicts = "plain text";
  EXPECT_FALSE(decodeFleetCaseResult(encodeFleetCaseResult(r)).isOk());
  // Exit codes outside the wait-status byte are forgeries.
  std::string evil = encodeFleetCaseResult(sampleResult());
  const std::size_t at = evil.find("\"exit_code\":4");
  ASSERT_NE(at, std::string::npos);
  evil.replace(at, 13, "\"exit_code\":300");
  EXPECT_FALSE(decodeFleetCaseResult(evil).isOk());
  evil = encodeFleetCaseResult(sampleResult());
  evil.replace(evil.find("\"exit_code\":4"), 13, "\"exit_code\":-1");
  EXPECT_FALSE(decodeFleetCaseResult(evil).isOk());
}

// --- Batch-event WAL records ----------------------------------------------

TEST(BatchCodec, LedgerEventRoundtrips) {
  JournalBatchEvent e;
  e.event = "dispatched";
  e.name = "alu-seed2";
  e.impl = "/tmp/i.blif";
  e.spec = "/tmp/s.blif";
  e.seed = 0xfffffffffffffffeULL;  // past double precision: string-encoded
  e.jobs = 4;
  e.worker = "127.0.0.1:9000";
  e.epoch = 7;
  e.attempt = 2;
  e.exitCode = 4;
  e.cause = "lease-expired";
  e.detail = "no heartbeat";
  e.cacheHits = 10;
  e.cacheMisses = 20;
  e.cacheEvictions = 30;
  Result<JournalBatchEvent> back = parseBatchEvent(serializeBatchEvent(e));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().event, "dispatched");
  EXPECT_EQ(back.value().name, "alu-seed2");
  EXPECT_EQ(back.value().seed, 0xfffffffffffffffeULL);
  EXPECT_EQ(back.value().jobs, 4);
  EXPECT_EQ(back.value().worker, "127.0.0.1:9000");
  EXPECT_EQ(back.value().epoch, 7u);
  EXPECT_EQ(back.value().attempt, 2);
  EXPECT_EQ(back.value().cause, "lease-expired");
  EXPECT_EQ(back.value().cacheEvictions, 30u);
}

TEST(BatchCodec, LedgerEventFailsClosedOnHostileInput) {
  EXPECT_FALSE(parseBatchEvent("").isOk());
  EXPECT_FALSE(parseBatchEvent("junk").isOk());
  EXPECT_FALSE(parseBatchEvent("{\"type\":\"serve\"}").isOk());
  EXPECT_FALSE(parseBatchEvent("{\"type\":\"batch\"}").isOk());
}

// --- Deterministic case-redispatch pacing (the shared jitter contract) ----

TEST(BatchBackoff, IsExactlyTheWorkerRetryContract) {
  // The case scheduler reuses retryBackoffSeconds keyed by manifest ordinal
  // - no new RNG path. Pin bitwise equality so a divergence (a new jitter
  // source, a different cap) fails loudly.
  for (double baseMs : {1.0, 100.0, 250.0}) {
    for (std::uint64_t seed : {1ull, 7ull, 0x12345678ull}) {
      SysecoOptions opt;
      opt.isolateBackoffMs = baseMs;
      opt.seed = seed;
      for (std::uint32_t ordinal : {0u, 3u, 999u}) {
        for (int attempt = 1; attempt <= 12; ++attempt) {
          EXPECT_DOUBLE_EQ(
              serve::caseRedispatchBackoffSeconds(baseMs, seed, ordinal,
                                                  attempt),
              retryBackoffSeconds(opt, ordinal, attempt))
              << baseMs << "/" << seed << "/" << ordinal << "/" << attempt;
        }
      }
    }
  }
}

TEST(BatchBackoff, SameInputsSameScheduleAcrossDriverLives) {
  // A SIGKILLed-and-restarted driver recomputes the schedule from the
  // ledger's (seed, ordinal, attempt) alone; two calls must agree exactly.
  const double a = serve::caseRedispatchBackoffSeconds(100.0, 42, 5, 3);
  const double b = serve::caseRedispatchBackoffSeconds(100.0, 42, 5, 3);
  EXPECT_EQ(a, b);
  // And the jitter really keys on seed and ordinal.
  EXPECT_NE(serve::caseRedispatchBackoffSeconds(100.0, 42, 5, 3),
            serve::caseRedispatchBackoffSeconds(100.0, 43, 5, 3));
  EXPECT_NE(serve::caseRedispatchBackoffSeconds(100.0, 42, 5, 3),
            serve::caseRedispatchBackoffSeconds(100.0, 42, 6, 3));
}

// --- Manifest parsing ------------------------------------------------------

TEST(BatchManifest, ParsesCasesWithDefaults) {
  Result<std::vector<ManifestCase>> cases = serve::parseBatchManifest(
      "{\"cases\": ["
      "{\"name\": \"a\", \"impl\": \"i1.blif\", \"spec\": \"s1.blif\"},"
      "{\"name\": \"b\", \"impl\": \"i2.blif\", \"spec\": \"s2.blif\","
      " \"seed\": 9, \"jobs\": 2}]}");
  ASSERT_TRUE(cases.isOk()) << cases.status().toString();
  ASSERT_EQ(cases.value().size(), 2u);
  EXPECT_EQ(cases.value()[0].name, "a");
  EXPECT_FALSE(cases.value()[0].hasSeed);
  EXPECT_FALSE(cases.value()[0].hasJobs);
  EXPECT_EQ(cases.value()[1].name, "b");
  EXPECT_TRUE(cases.value()[1].hasSeed);
  EXPECT_EQ(cases.value()[1].seed, 9u);
  EXPECT_TRUE(cases.value()[1].hasJobs);
  EXPECT_EQ(cases.value()[1].jobs, 2);
}

TEST(BatchManifest, FailsClosedOnHostileInput) {
  const char* corpus[] = {
      "",
      "not json",
      "[]",
      "{}",
      "{\"cases\": []}",
      "{\"cases\": [{}]}",
      "{\"cases\": [{\"name\": \"a\"}]}",
      "{\"cases\": [{\"name\": \"a\", \"impl\": \"i\"}]}",
      // hostile name: path escape
      "{\"cases\": [{\"name\": \"../x\", \"impl\": \"i\", \"spec\": \"s\"}]}",
      // duplicate names would collide on one artifact directory
      "{\"cases\": ["
      "{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\"},"
      "{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\"}]}",
      // negative seed / zero jobs / absurd jobs
      "{\"cases\": [{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\","
      " \"seed\": -1}]}",
      "{\"cases\": [{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\","
      " \"jobs\": 0}]}",
      "{\"cases\": [{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\","
      " \"jobs\": 100000}]}",
  };
  for (const char* text : corpus)
    EXPECT_FALSE(serve::parseBatchManifest(text).isOk()) << text;
}

// --- The WAL-backed batch ledger ------------------------------------------

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_batch_" + name;
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

TEST(BatchLedgerWal, TransitionsAreDurableAndFoldBack) {
  const std::string dir = freshDir("fold");
  {
    Result<BatchLedger> ledger = BatchLedger::open(dir);
    ASSERT_TRUE(ledger.isOk()) << ledger.status().toString();
    EXPECT_FALSE(ledger.value().hadCases());
    Result<BatchCase*> a =
        ledger.value().registerCase("a", "i.blif", "s.blif", 1, 1);
    Result<BatchCase*> b =
        ledger.value().registerCase("b", "i.blif", "s.blif", 2, 2);
    ASSERT_TRUE(a.isOk() && b.isOk());
    ASSERT_TRUE(ledger.value().markDispatched(*a.value(), 1, "w:1", 5).isOk());
    ASSERT_TRUE(ledger.value().markDone(*a.value(), 0, 3, 4, 5).isOk());
    // b stays queued. Drop the ledger without any shutdown ceremony.
  }
  Result<BatchLedger> back = BatchLedger::open(dir);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_TRUE(back.value().hadCases());
  BatchCase* a = back.value().find("a");
  BatchCase* b = back.value().find("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->state, CaseState::kDone);
  EXPECT_EQ(a->exitCode, 0);
  EXPECT_EQ(a->worker, "w:1");
  EXPECT_EQ(a->cacheHits, 3u);
  EXPECT_EQ(a->cacheEvictions, 5u);
  EXPECT_EQ(b->state, CaseState::kQueued);
  EXPECT_EQ(b->seed, 2u);
  EXPECT_EQ(b->jobs, 2);
}

TEST(BatchLedgerWal, MidDispatchKillRecoversAsQueuedWithResume) {
  const std::string dir = freshDir("recover");
  {
    Result<BatchLedger> ledger = BatchLedger::open(dir);
    ASSERT_TRUE(ledger.isOk());
    Result<BatchCase*> c =
        ledger.value().registerCase("c", "i.blif", "s.blif", 3, 1);
    ASSERT_TRUE(c.isOk());
    ASSERT_TRUE(
        ledger.value().markDispatched(*c.value(), 2, "127.0.0.1:1", 9).isOk());
    // SIGKILL here: the WAL's last word about c is "dispatched".
  }
  Result<BatchLedger> back = BatchLedger::open(dir);
  ASSERT_TRUE(back.isOk());
  BatchCase* c = back.value().find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state, CaseState::kQueued) << "orphaned case must re-queue";
  EXPECT_TRUE(c->resume) << "recovery must resume the engine journal";
  EXPECT_EQ(c->attempt, 2) << "attempt accounting survives the kill";
  bool noted = false;
  for (const std::string& n : back.value().recoveryNotes())
    noted |= n.find("c") != std::string::npos;
  EXPECT_TRUE(noted) << "recovery must be observable";
}

TEST(BatchLedgerWal, ReRegistrationIsIdempotentButGuardsTheManifest) {
  const std::string dir = freshDir("idem");
  Result<BatchLedger> ledger = BatchLedger::open(dir);
  ASSERT_TRUE(ledger.isOk());
  Result<BatchCase*> first =
      ledger.value().registerCase("a", "i.blif", "s.blif", 1, 1);
  ASSERT_TRUE(first.isOk());
  Result<BatchCase*> again =
      ledger.value().registerCase("a", "i.blif", "s.blif", 1, 1);
  ASSERT_TRUE(again.isOk());
  EXPECT_EQ(first.value(), again.value()) << "same case, same record";
  // The same name with different inputs is a different sweep: refuse it
  // rather than silently mixing manifests on one state directory.
  EXPECT_FALSE(
      ledger.value().registerCase("a", "OTHER.blif", "s.blif", 1, 1).isOk());
  EXPECT_FALSE(
      ledger.value().registerCase("a", "i.blif", "s.blif", 2, 1).isOk());
}

TEST(BatchLedgerWal, GarbageWalRecordsAreQuarantinedNotFatal) {
  const std::string dir = freshDir("garbage");
  {
    Result<BatchLedger> ledger = BatchLedger::open(dir);
    ASSERT_TRUE(ledger.isOk());
    ASSERT_TRUE(
        ledger.value().registerCase("a", "i.blif", "s.blif", 1, 1).isOk());
  }
  // Append raw garbage past the valid records.
  std::ofstream(dir + "/ledger/journal.jsonl", std::ios::app)
      << "J1 zzzz not-a-frame\n";
  Result<BatchLedger> back = BatchLedger::open(dir);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_NE(back.value().find("a"), nullptr);
}

// --- End to end: remote and local sweeps are bit-identical -----------------

#ifdef SYSECO_CLI_BIN

/// A real --serve-worker agent on a loopback ephemeral port, in-thread.
struct Agent {
  std::atomic<bool> stop{false};
  std::atomic<int> port{-1};
  std::thread th;

  void start() {
    th = std::thread([this] {
      FleetAgentOptions o;
      o.port = 0;
      o.stop = &stop;
      o.boundHook = [this](std::uint16_t bound) {
        port.store(static_cast<int>(bound));
      };
      const Status st = runWorkerAgent(o);
      if (!st.isOk()) ADD_FAILURE() << "agent failed: " << st.toString();
    });
    while (port.load() < 0) subprocess::pollReadable({}, 10);
  }

  std::string spec() const {
    return "127.0.0.1:" + std::to_string(port.load());
  }

  ~Agent() {
    stop.store(true);
    if (th.joinable()) th.join();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string writeManifest(const std::string& dir) {
  const std::string impl = std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif";
  const std::string spec = std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif";
  const std::string path = dir + "/manifest.json";
  std::ofstream(path) << "{\"cases\": [\n"
                      << "  {\"name\": \"alu-s1\", \"impl\": \"" << impl
                      << "\", \"spec\": \"" << spec << "\", \"seed\": 1},\n"
                      << "  {\"name\": \"alu-s2\", \"impl\": \"" << impl
                      << "\", \"spec\": \"" << spec << "\", \"seed\": 2}\n"
                      << "]}\n";
  return path;
}

serve::BatchOptions baseOptions(const std::string& manifest,
                                const std::string& stateDir) {
  serve::BatchOptions opt;
  opt.manifestPath = manifest;
  opt.stateDir = stateDir;
  opt.selfExe = SYSECO_CLI_BIN;
  opt.poolSize = 2;
  opt.leaseSeconds = 10.0;
  opt.connectTimeoutMs = 500;
  return opt;
}

TEST(BatchEndToEnd, RemoteSweepMatchesTheLocalPoolBitForBit) {
  const std::string dir = freshDir("e2e");
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  const std::string manifest = writeManifest(dir);

  // Remote: two real agents over loopback.
  Agent a1, a2;
  a1.start();
  a2.start();
  serve::BatchOptions remote = baseOptions(manifest, dir + "/remote");
  remote.workers = {a1.spec(), a2.spec()};
  Result<serve::BatchOutcome> r1 = serve::runBatch(remote);
  ASSERT_TRUE(r1.isOk()) << r1.status().toString();
  EXPECT_EQ(r1.value().done, 2u);
  EXPECT_EQ(r1.value().failed, 0u);
  EXPECT_FALSE(r1.value().degradedToLocal);

  // Local: the fallback pool forks the real CLI per case.
  serve::BatchOptions local = baseOptions(manifest, dir + "/local");
  Result<serve::BatchOutcome> r2 = serve::runBatch(local);
  ASSERT_TRUE(r2.isOk()) << r2.status().toString();
  EXPECT_EQ(r2.value().done, 2u);
  EXPECT_EQ(r2.value().failed, 0u);

  for (const char* name : {"alu-s1", "alu-s2"}) {
    const std::string rc = dir + "/remote/cases/" + name;
    const std::string lc = dir + "/local/cases/" + name;
    const std::string rOut = slurp(rc + "/out.blif");
    ASSERT_FALSE(rOut.empty()) << name;
    EXPECT_EQ(rOut, slurp(lc + "/out.blif")) << name << " netlist diverged";
    const std::string rVerdicts = slurp(rc + "/verdicts.txt");
    ASSERT_FALSE(rVerdicts.empty()) << name;
    EXPECT_EQ(rVerdicts, slurp(lc + "/verdicts.txt"))
        << name << " verdicts diverged";
  }
  // Satellite observability: the batch report surfaces agent cache counters.
  const std::string report = slurp(dir + "/remote/batch_report.json");
  EXPECT_NE(report.find("\"cache_totals\""), std::string::npos);
  EXPECT_NE(report.find("\"misses\""), std::string::npos);
}

TEST(BatchEndToEnd, DeadFleetDegradesToTheLocalPool) {
  const std::string dir = freshDir("degrade");
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  const std::string manifest = writeManifest(dir);
  serve::BatchOptions opt = baseOptions(manifest, dir + "/state");
  opt.workers = {"127.0.0.1:1", "127.0.0.1:2"};  // nothing listens there
  opt.connectTimeoutMs = 200;
  Result<serve::BatchOutcome> out = serve::runBatch(opt);
  ASSERT_TRUE(out.isOk()) << out.status().toString();
  EXPECT_EQ(out.value().done, 2u);
  EXPECT_EQ(out.value().failed, 0u);
  EXPECT_TRUE(out.value().degradedToLocal);
  EXPECT_FALSE(slurp(dir + "/state/cases/alu-s1/out.blif").empty());
}

TEST(BatchEndToEnd, FreshStateDirRefusesAResumedLedger) {
  const std::string dir = freshDir("refuse");
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  const std::string manifest = writeManifest(dir);
  serve::BatchOptions opt = baseOptions(manifest, dir + "/state");
  Result<serve::BatchOutcome> first = serve::runBatch(opt);
  ASSERT_TRUE(first.isOk()) << first.status().toString();
  // Same state dir, expectResume unset: refuse instead of mixing sweeps.
  Result<serve::BatchOutcome> second = serve::runBatch(opt);
  ASSERT_FALSE(second.isOk());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidInput);
  // With expectResume the finished sweep re-opens and drains trivially.
  opt.expectResume = true;
  Result<serve::BatchOutcome> third = serve::runBatch(opt);
  ASSERT_TRUE(third.isOk()) << third.status().toString();
  EXPECT_EQ(third.value().done, 2u);
}

#endif  // SYSECO_CLI_BIN

}  // namespace
}  // namespace syseco
