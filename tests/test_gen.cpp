// Test-case generator tests: spec builder invariants, mutation semantics,
// suite shape, determinism.

#include <gtest/gtest.h>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "gen/eco_case.hpp"
#include "gen/spec_builder.hpp"

namespace syseco {
namespace {

TEST(SpecBuilder, ProducesWellFormedCircuit) {
  Rng rng(1);
  SpecCircuit sc = buildSpec(SpecParams{3, 6, 3, 3, 5, 4, 3, 3}, rng);
  std::string why;
  EXPECT_TRUE(sc.netlist.isWellFormed(&why)) << why;
  EXPECT_EQ(sc.netlist.numInputs(), 3u * 6u + 3u);
  EXPECT_EQ(sc.netlist.numOutputs(), 3u * 6u + 3u);
  EXPECT_GT(sc.netlist.countLiveGates(), 50u);
}

TEST(SpecBuilder, DeterministicPerSeed) {
  Rng r1(9), r2(9);
  const SpecParams p{2, 4, 2, 2, 4, 3, 2, 2};
  SpecCircuit a = buildSpec(p, r1);
  SpecCircuit b = buildSpec(p, r2);
  EXPECT_EQ(a.netlist.countLiveGates(), b.netlist.countLiveGates());
  EXPECT_TRUE(verifyAllOutputs(a.netlist, b.netlist));
}

class MutationSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationSeeds, MutationsChangeFunctionButStayWellFormed) {
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  Netlist revised = sc.netlist;
  const auto reports = applyMutations(revised, rng, 2, 0.3);
  EXPECT_FALSE(reports.empty());
  std::string why;
  EXPECT_TRUE(revised.isWellFormed(&why)) << why;
  // Some output must genuinely differ.
  Rng checkRng(1);
  EXPECT_FALSE(findFailingOutputs(sc.netlist, revised, checkRng).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationSeeds,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(EcoCaseGen, CaseHasConsistentInterfaceAndRealErrors) {
  CaseRecipe r;
  r.name = "t";
  r.spec = SpecParams{2, 5, 3, 2, 4, 3, 2, 2};
  r.mutations = 2;
  r.targetRevisedFraction = 0.25;
  r.optRounds = 2;
  r.seed = 77;
  const EcoCase c = makeCase(r);
  EXPECT_EQ(c.impl.numInputs(), c.spec.numInputs());
  EXPECT_EQ(c.impl.numOutputs(), c.spec.numOutputs());
  for (std::uint32_t i = 0; i < c.impl.numInputs(); ++i)
    EXPECT_NE(c.spec.findInput(c.impl.inputName(i)), kNullId);
  EXPECT_GT(c.designerEstimateGates, 0u);
  EXPECT_EQ(c.revisions.size(),
            static_cast<std::size_t>(r.mutations));
  Rng rng(1);
  EXPECT_FALSE(findFailingOutputs(c.impl, c.spec, rng).empty());
}

TEST(EcoCaseGen, DeterministicPerRecipe) {
  CaseRecipe r;
  r.name = "t";
  r.spec = SpecParams{2, 4, 2, 2, 3, 2, 2, 2};
  r.seed = 123;
  const EcoCase a = makeCase(r);
  const EcoCase b = makeCase(r);
  EXPECT_EQ(a.impl.countLiveGates(), b.impl.countLiveGates());
  EXPECT_EQ(a.spec.countLiveGates(), b.spec.countLiveGates());
  EXPECT_EQ(a.designerEstimateGates, b.designerEstimateGates);
}

TEST(EcoCaseGen, SuiteHasElevenCasesAndTimingFour) {
  const auto suite = suiteRecipes();
  ASSERT_EQ(suite.size(), 11u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_FALSE(suite[i].name.empty());
    EXPECT_GT(suite[i].mutations, 0);
  }
  EXPECT_EQ(timingRecipes().size(), 4u);
}

TEST(EcoCaseGen, RevisedFractionSpansWideRange) {
  // The suite must include both near-zero and very large revised
  // fractions, mirroring Table 1's 0.3% - 67.5% spread.
  const auto suite = suiteRecipes();
  double lo = 1.0, hi = 0.0;
  for (const auto& r : suite) {
    lo = std::min(lo, r.targetRevisedFraction);
    hi = std::max(hi, r.targetRevisedFraction);
  }
  EXPECT_LT(lo, 0.02);
  EXPECT_GT(hi, 0.5);
}

TEST(EcoCaseGen, MutationKindNamesAreStable) {
  EXPECT_STREQ(mutationKindName(MutationKind::GateChange), "gate-change");
  EXPECT_STREQ(mutationKindName(MutationKind::AddedCondition),
               "added-condition");
  EXPECT_STREQ(mutationKindName(MutationKind::ConstantStuck),
               "constant-stuck");
}

}  // namespace
}  // namespace syseco
