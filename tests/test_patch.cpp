// PatchTracker tests: rewiring records, rollback, clone caching, and the
// Table-2 attribute definitions (inputs / outputs / gates / nets).

#include <gtest/gtest.h>

#include "eco/patch.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

/// impl: o = a AND b, plus an unrelated output p = a OR b.
Netlist makeImpl() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("o", nl.addGate(GateType::And, {a, b}));
  nl.addOutput("p", nl.addGate(GateType::Or, {a, b}));
  return nl;
}

Netlist makeSpecXor() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("o", nl.addGate(GateType::Xor, {a, b}));
  nl.addOutput("p", nl.addGate(GateType::Or, {a, b}));
  return nl;
}

TEST(PatchTracker, RollbackRestoresDrivers) {
  Netlist impl = makeImpl();
  PatchTracker tracker(impl);
  const NetId a = impl.inputNet(0);
  const std::size_t mark = tracker.mark();
  tracker.rewire(Sink{kNullId, 0}, a);
  EXPECT_EQ(impl.outputNet(0), a);
  tracker.rollback(mark);
  EXPECT_NE(impl.outputNet(0), a);
  EXPECT_TRUE(impl.isWellFormed());
  // Rolled-back rewires leave no patch trace.
  EXPECT_EQ(tracker.finalize().outputs, 0u);
}

TEST(PatchTracker, CloneCacheSharesLogic) {
  Netlist impl = makeImpl();
  const Netlist spec = makeSpecXor();
  PatchTracker tracker(impl);
  const NetId c1 = tracker.cloneSpecCone(spec, spec.outputNet(0));
  const NetId c2 = tracker.cloneSpecCone(spec, spec.outputNet(0));
  EXPECT_EQ(c1, c2);
}

TEST(PatchTracker, StatsCountDefinitions) {
  // Rewire output o to a clone of XOR(a,b): 1 patch gate, 1 patch net,
  // 2 patch inputs (a, b), 1 patch output (the rewired PO pin).
  Netlist impl = makeImpl();
  const Netlist spec = makeSpecXor();
  PatchTracker tracker(impl);
  const NetId clone = tracker.cloneSpecCone(spec, spec.outputNet(0));
  tracker.rewire(Sink{kNullId, 0}, clone);
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.gates, 1u);
  EXPECT_EQ(stats.nets, 1u);
  EXPECT_EQ(stats.inputs, 2u);
  EXPECT_EQ(stats.outputs, 1u);
  EXPECT_TRUE(verifyAllOutputs(impl, spec));
}

TEST(PatchTracker, ConstantsCountAsNetsNotGates) {
  // Tie output o to constant 0: paper-style "0 gates, 1 net" patch
  // (Table 2 row 5's shape).
  Netlist impl = makeImpl();
  PatchTracker tracker(impl);
  const NetId zero = impl.addGate(GateType::Const0, {});
  tracker.rewire(Sink{kNullId, 0}, zero);
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.gates, 0u);
  EXPECT_EQ(stats.nets, 1u);
  EXPECT_EQ(stats.inputs, 0u);
  EXPECT_EQ(stats.outputs, 1u);
}

TEST(PatchTracker, PureRewireToExistingNetCountsAsInputAndNet) {
  Netlist impl = makeImpl();
  PatchTracker tracker(impl);
  tracker.rewire(Sink{kNullId, 0}, impl.outputNet(1));  // o := p's net
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.gates, 0u);
  EXPECT_EQ(stats.nets, 1u);
  EXPECT_EQ(stats.inputs, 1u);
  EXPECT_EQ(stats.outputs, 1u);
}

TEST(PatchTracker, RewiringBackCancelsTheRecord) {
  Netlist impl = makeImpl();
  PatchTracker tracker(impl);
  const NetId original = impl.outputNet(0);
  tracker.rewire(Sink{kNullId, 0}, impl.inputNet(0));
  tracker.rewire(Sink{kNullId, 0}, original);
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.outputs, 0u);
  EXPECT_EQ(stats.nets, 0u);
}

TEST(PatchTracker, InternalPinRewiresOfAddedGatesAreNotPatchOutputs) {
  Netlist impl = makeImpl();
  const Netlist spec = makeSpecXor();
  PatchTracker tracker(impl);
  const NetId clone = tracker.cloneSpecCone(spec, spec.outputNet(0));
  tracker.rewire(Sink{kNullId, 0}, clone);
  // Simulate a sweeping merge: rewire the added XOR gate's pin 0 to b.
  const GateId cloneGate = impl.driverOf(clone);
  tracker.rewire(Sink{cloneGate, 0}, impl.inputNet(1));
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.outputs, 1u);  // only the PO pin counts
}

TEST(PatchTracker, DeadCloneFragmentsAreSweptFromStats) {
  Netlist impl = makeImpl();
  const Netlist spec = makeSpecXor();
  PatchTracker tracker(impl);
  // Clone but never connect: finalize must sweep it away.
  tracker.cloneSpecCone(spec, spec.outputNet(0));
  const PatchStats stats = tracker.finalize();
  EXPECT_EQ(stats.gates, 0u);
  EXPECT_EQ(stats.nets, 0u);
  EXPECT_EQ(stats.inputs, 0u);
}

TEST(VerifyAllOutputs, DetectsResidualDifference) {
  const Netlist impl = makeImpl();
  const Netlist spec = makeSpecXor();
  EXPECT_FALSE(verifyAllOutputs(impl, spec));
  EXPECT_TRUE(verifyAllOutputs(impl, impl));
}

}  // namespace
}  // namespace syseco
