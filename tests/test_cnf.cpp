// Tseitin encoding and equivalence-checking tests: every gate type's CNF
// against its truth table, miters, error enumeration, failing-output
// detection.

#include <gtest/gtest.h>

#include "cnf/encode.hpp"
#include "gen/spec_builder.hpp"
#include "opt/passes.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

/// Exhaustively checks that the CNF encoding of a single-gate circuit
/// admits exactly the gate's truth table.
void checkGateEncoding(GateType type, std::size_t arity) {
  Netlist nl;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < arity; ++i)
    ins.push_back(nl.addInput("i" + std::to_string(i)));
  nl.addOutput("o", nl.addGate(type, ins));

  Solver solver;
  std::unordered_map<std::string, Var> inputVars;
  NetlistEncoder enc(solver, nl, inputVars);
  const Var out = enc.outputVar(0);

  for (std::uint64_t m = 0; m < (1ULL << arity); ++m) {
    InputPattern p(arity);
    std::vector<Lit> assumptions;
    for (std::size_t i = 0; i < arity; ++i) {
      p[i] = (m >> i) & 1;
      assumptions.push_back(
          Lit::make(inputVars.at("i" + std::to_string(i)), p[i] == 0));
    }
    const bool expected = evalOnce(nl, p)[0] != 0;
    // Output forced to the expected value: satisfiable.
    auto sat = assumptions;
    sat.push_back(Lit::make(out, !expected));
    EXPECT_EQ(solver.solve(sat), Solver::Result::Sat)
        << gateTypeName(type) << " input " << m;
    // Output forced to the opposite: unsatisfiable.
    auto unsat = assumptions;
    unsat.push_back(Lit::make(out, expected));
    EXPECT_EQ(solver.solve(unsat), Solver::Result::Unsat)
        << gateTypeName(type) << " input " << m;
  }
}

TEST(Tseitin, AllGateTypesMatchTruthTables) {
  checkGateEncoding(GateType::Buf, 1);
  checkGateEncoding(GateType::Not, 1);
  checkGateEncoding(GateType::And, 2);
  checkGateEncoding(GateType::And, 3);
  checkGateEncoding(GateType::Or, 2);
  checkGateEncoding(GateType::Or, 4);
  checkGateEncoding(GateType::Nand, 2);
  checkGateEncoding(GateType::Nor, 3);
  checkGateEncoding(GateType::Xor, 2);
  checkGateEncoding(GateType::Xor, 3);
  checkGateEncoding(GateType::Xnor, 2);
  checkGateEncoding(GateType::Mux, 3);
}

TEST(Tseitin, ConstantGates) {
  Netlist nl;
  (void)nl.addInput("x");  // at least one input for pattern plumbing
  nl.addOutput("one", nl.addGate(GateType::Const1, {}));
  nl.addOutput("zero", nl.addGate(GateType::Const0, {}));
  Solver solver;
  std::unordered_map<std::string, Var> inputVars;
  NetlistEncoder enc(solver, nl, inputVars);
  EXPECT_EQ(solver.solve({Lit::make(enc.outputVar(0), true)}),
            Solver::Result::Unsat);
  EXPECT_EQ(solver.solve({Lit::make(enc.outputVar(1), false)}),
            Solver::Result::Unsat);
}

TEST(Equivalence, DetectsEquivalentAndDifferentOutputs) {
  // f = a AND b vs g = NOT(NOT a OR NOT b): equivalent (De Morgan).
  Netlist c;
  {
    const NetId a = c.addInput("a");
    const NetId b = c.addInput("b");
    c.addOutput("o", c.addGate(GateType::And, {a, b}));
  }
  Netlist cp;
  {
    const NetId a = cp.addInput("a");
    const NetId b = cp.addInput("b");
    const NetId na = cp.addGate(GateType::Not, {a});
    const NetId nb = cp.addGate(GateType::Not, {b});
    cp.addOutput("o", cp.addGate(GateType::Nor, {na, nb}));
  }
  EXPECT_EQ(checkOutputEquiv(c, 0, cp, 0), Solver::Result::Unsat);

  // Change the spec to OR: a counterexample must exist and differ.
  Netlist cq;
  {
    const NetId a = cq.addInput("a");
    const NetId b = cq.addInput("b");
    cq.addOutput("o", cq.addGate(GateType::Or, {a, b}));
  }
  InputPattern cex;
  EXPECT_EQ(checkOutputEquiv(c, 0, cq, 0, &cex), Solver::Result::Sat);
  ASSERT_EQ(cex.size(), 2u);
  EXPECT_NE(evalOnce(c, cex)[0], evalOnce(cq, cex)[0]);
}

TEST(Equivalence, NetsEquivWithinOneNetlist) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId x = nl.addGate(GateType::Xor, {a, b});
  const NetId y = nl.addGate(GateType::Xnor, {a, b});
  nl.addOutput("o", nl.addGate(GateType::Or, {x, y}));
  EXPECT_EQ(checkNetsEquiv(nl, x, y), Solver::Result::Sat);  // differ
  EXPECT_EQ(checkNetsEquiv(nl, x, y, /*complement=*/true),
            Solver::Result::Unsat);  // complement-equivalent
}

TEST(Equivalence, EnumerateErrorsFindsAllAndOnlyErrors) {
  // Impl: o = a AND b. Spec: o = a. Errors: a=1,b=0 (restricted to the
  // support {a, b}).
  Netlist c;
  {
    const NetId a = c.addInput("a");
    const NetId b = c.addInput("b");
    c.addOutput("o", c.addGate(GateType::And, {a, b}));
  }
  Netlist cp;
  {
    const NetId a = cp.addInput("a");
    (void)cp.addInput("b");
    cp.addOutput("o", cp.addGate(GateType::Buf, {a}));
  }
  PairEncoding pe(c, cp);
  Rng rng(1);
  const auto errors = pe.enumerateErrors(0, 0, 16, -1, &rng);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0][0], 1);  // a = 1
  EXPECT_EQ(errors[0][1], 0);  // b = 0
}

TEST(Equivalence, FindFailingOutputsExact) {
  // Three outputs; only the middle one is revised.
  Netlist c;
  {
    const NetId a = c.addInput("a");
    const NetId b = c.addInput("b");
    c.addOutput("keep1", c.addGate(GateType::And, {a, b}));
    c.addOutput("fix", c.addGate(GateType::Or, {a, b}));
    c.addOutput("keep2", c.addGate(GateType::Xor, {a, b}));
  }
  Netlist cp;
  {
    const NetId a = cp.addInput("a");
    const NetId b = cp.addInput("b");
    const NetId na = cp.addGate(GateType::Not, {a});
    const NetId nb = cp.addGate(GateType::Not, {b});
    cp.addOutput("keep1", cp.addGate(GateType::Nor, {na, nb}));
    cp.addOutput("fix", cp.addGate(GateType::Xor, {a, b}));  // revised!
    cp.addOutput("keep2", cp.addGate(GateType::Xor, {a, b}));
  }
  Rng rng(2);
  const auto failing = findFailingOutputs(c, cp, rng);
  EXPECT_EQ(failing, (std::vector<std::uint32_t>{1}));
}

TEST(Equivalence, FindFailingOutputsCatchesSimInvisibleErrors) {
  // The only difference is the all-ones minterm of 16 inputs: random
  // simulation (1024 patterns) almost surely misses it, so the exact SAT
  // confirmation phase must catch it.
  Netlist c;
  Netlist cp;
  {
    std::vector<NetId> ins;
    for (int i = 0; i < 16; ++i)
      ins.push_back(c.addInput("x" + std::to_string(i)));
    c.addOutput("o", c.addGate(GateType::And, ins));
    c.addOutput("same", c.addGate(GateType::Xor, {ins[0], ins[1]}));
  }
  {
    std::vector<NetId> ins;
    for (int i = 0; i < 16; ++i)
      ins.push_back(cp.addInput("x" + std::to_string(i)));
    cp.addOutput("o", cp.addGate(GateType::Const0, {}));  // revised
    cp.addOutput("same", cp.addGate(GateType::Xor, {ins[0], ins[1]}));
  }
  Rng rng(123);
  const auto failing = findFailingOutputs(c, cp, rng);
  EXPECT_EQ(failing, (std::vector<std::uint32_t>{0}));
}

class CnfVsSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CnfVsSim, RandomCircuitCnfAgreesWithSimulation) {
  // Property: for random circuits, forcing the encoded inputs to a random
  // pattern forces the encoded output to the simulated value.
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 2, 4, 3, 2, 2}, rng);
  const Netlist& nl = sc.netlist;
  Solver solver;
  std::unordered_map<std::string, Var> inputVars;
  NetlistEncoder enc(solver, nl, inputVars);
  std::vector<Var> outVars;
  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o)
    outVars.push_back(enc.outputVar(o));

  for (int trial = 0; trial < 8; ++trial) {
    InputPattern p(nl.numInputs());
    std::vector<Lit> assumptions;
    for (std::size_t i = 0; i < nl.numInputs(); ++i) {
      p[i] = rng.flip() ? 1 : 0;
      const auto it =
          inputVars.find(nl.inputName(static_cast<std::uint32_t>(i)));
      if (it != inputVars.end())
        assumptions.push_back(Lit::make(it->second, p[i] == 0));
    }
    const auto expected = evalOnce(nl, p);
    ASSERT_EQ(solver.solve(assumptions), Solver::Result::Sat);
    for (std::uint32_t o = 0; o < nl.numOutputs(); ++o)
      EXPECT_EQ(solver.modelValue(outVars[o]), expected[o] != 0)
          << "output " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfVsSim, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace syseco
