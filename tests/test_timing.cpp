// Unit-delay timing model tests.

#include <gtest/gtest.h>

#include "timing/timing.hpp"

namespace syseco {
namespace {

Netlist chain(int depth) {
  Netlist nl;
  NetId cur = nl.addInput("a");
  for (int i = 0; i < depth; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.addOutput("o", cur);
  return nl;
}

TEST(Timing, DepthOfChain) {
  EXPECT_EQ(circuitDepth(chain(0)), 0u);
  EXPECT_EQ(circuitDepth(chain(7)), 7u);
}

TEST(Timing, DepthTakesWorstOutput) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  NetId cur = a;
  for (int i = 0; i < 5; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.addOutput("deep", cur);
  nl.addOutput("shallow", nl.addGate(GateType::Not, {a}));
  EXPECT_EQ(circuitDepth(nl), 5u);
}

TEST(Timing, SlackIsRequiredMinusArrival) {
  const Netlist nl = chain(4);
  EXPECT_DOUBLE_EQ(worstSlackPs(nl, 100.0), 100.0 - 40.0);
  EXPECT_DOUBLE_EQ(worstSlackPs(nl, 30.0), -10.0);
}

TEST(Timing, DefaultRequiredLeavesMargin) {
  const Netlist nl = chain(6);
  const double required = defaultRequiredPs(nl);
  EXPECT_GT(worstSlackPs(nl, required), 0.0);
  EXPECT_LE(worstSlackPs(nl, required), kPsPerLevel + 1e-9);
}

TEST(Timing, PerOutputRequiredClosesEveryPath) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  NetId cur = a;
  for (int i = 0; i < 5; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.addOutput("deep", cur);
  nl.addOutput("shallow", nl.addGate(GateType::Not, {a}));
  const auto required = outputRequiredPs(nl);
  ASSERT_EQ(required.size(), 2u);
  // Each output individually closed with one level of margin.
  EXPECT_DOUBLE_EQ(required[0], 60.0);
  EXPECT_DOUBLE_EQ(required[1], 20.0);
  EXPECT_DOUBLE_EQ(worstSlackPs(nl, required), 10.0);
}

TEST(Timing, ArityAwareLevels) {
  // An 8-input AND stands for a 3-deep tree of 2-input cells.
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(nl.addInput("i" + std::to_string(i)));
  nl.addOutput("o", nl.addGate(GateType::And, ins));
  EXPECT_EQ(circuitDepth(nl), 3u);
}

TEST(Timing, EcoPenaltyChargesOnlyPatchGates) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("o", nl.addGate(GateType::And, {a, b}));
  const auto required = outputRequiredPs(nl);
  const std::size_t firstEco = nl.numGatesTotal();
  // Unpatched: the margin survives even under the penalty accounting.
  EXPECT_DOUBLE_EQ(worstSlackPsWithEcoPenalty(nl, required, firstEco), 10.0);
  // Splice one ECO gate in front of the output: costs 1 + 2 extra levels.
  const NetId fix = nl.addGate(GateType::Not, {nl.outputNet(0)});
  nl.rewireOutput(0, fix);
  EXPECT_DOUBLE_EQ(worstSlackPsWithEcoPenalty(nl, required, firstEco),
                   10.0 - 3 * kPsPerLevel);
}

TEST(Timing, DeepeningLogicDegradesSlack) {
  Netlist nl = chain(4);
  const double required = defaultRequiredPs(nl);
  const double before = worstSlackPs(nl, required);
  // Insert two extra inverters in front of the output.
  const NetId o = nl.outputNet(0);
  const NetId d1 = nl.addGate(GateType::Not, {o});
  const NetId d2 = nl.addGate(GateType::Not, {d1});
  nl.rewireOutput(0, d2);
  EXPECT_LT(worstSlackPs(nl, required), before);
}

}  // namespace
}  // namespace syseco
