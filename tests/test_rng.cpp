// RNG determinism and distribution sanity.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace syseco {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> hist{};
  for (int i = 0; i < 80000; ++i) ++hist[rng.below(8)];
  for (int count : hist) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(3);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1.next() == c2.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  bool sawNonZero = false;
  for (int i = 0; i < 8; ++i) sawNonZero |= (rng.next() != 0);
  EXPECT_TRUE(sawNonZero);
}

TEST(FormatHms, TableTwoStyle) {
  EXPECT_EQ(formatHms(0.0), "00:00:00.00");
  EXPECT_EQ(formatHms(39.0), "00:00:39.00");
  EXPECT_EQ(formatHms(3600 + 20 * 60 + 9), "01:20:09");
  EXPECT_EQ(formatHms(12 * 60 + 6), "00:12:06");
}

}  // namespace
}  // namespace syseco
