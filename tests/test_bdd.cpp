// Unit and property tests for the BDD package: ITE identities,
// quantification, counting, truth-table import, ISOP covers.

#include <gtest/gtest.h>

#include <cstdint>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

/// Evaluates a BDD against a brute-force assignment loop over n variables,
/// comparing with `truth` (bit k = value under assignment k, little-endian:
/// bit j of k assigns variable j).
void expectMatchesTruth(Bdd& mgr, Bdd::Ref f, std::uint32_t n,
                        std::uint64_t truth) {
  for (std::uint64_t k = 0; k < (1ULL << n); ++k) {
    std::vector<std::uint8_t> a(mgr.numVars(), 0);
    for (std::uint32_t j = 0; j < n; ++j) a[j] = (k >> j) & 1;
    EXPECT_EQ(mgr.eval(f, a), ((truth >> k) & 1) != 0)
        << "assignment " << k;
  }
}

TEST(Bdd, ConstantsAndVariables) {
  Bdd mgr(3);
  EXPECT_EQ(mgr.constant(false), Bdd::kFalse);
  EXPECT_EQ(mgr.constant(true), Bdd::kTrue);
  const auto x0 = mgr.var(0);
  expectMatchesTruth(mgr, x0, 3, 0b10101010);
  const auto nx1 = mgr.nvar(1);
  expectMatchesTruth(mgr, nx1, 3, 0b00110011);
}

TEST(Bdd, BasicOperators) {
  Bdd mgr(2);
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  expectMatchesTruth(mgr, mgr.bAnd(a, b), 2, 0b1000);
  expectMatchesTruth(mgr, mgr.bOr(a, b), 2, 0b1110);
  expectMatchesTruth(mgr, mgr.bXor(a, b), 2, 0b0110);
  expectMatchesTruth(mgr, mgr.bXnor(a, b), 2, 0b1001);
  expectMatchesTruth(mgr, mgr.bImp(a, b), 2, 0b1101);
  expectMatchesTruth(mgr, mgr.bNot(a), 2, 0b0101);
}

TEST(Bdd, IteIdentities) {
  Bdd mgr(3);
  const auto f = mgr.var(0);
  const auto g = mgr.var(1);
  const auto h = mgr.var(2);
  EXPECT_EQ(mgr.ite(Bdd::kTrue, g, h), g);
  EXPECT_EQ(mgr.ite(Bdd::kFalse, g, h), h);
  EXPECT_EQ(mgr.ite(f, Bdd::kTrue, Bdd::kFalse), f);
  EXPECT_EQ(mgr.ite(f, g, g), g);
  // Canonicity: same function, same node.
  EXPECT_EQ(mgr.bAnd(f, g), mgr.bAnd(g, f));
  EXPECT_EQ(mgr.bNot(mgr.bNot(h)), h);
}

TEST(Bdd, RandomizedEquivalenceWithTruthTables) {
  // Property: a random expression built both as BDD and as a truth table
  // agrees on every assignment.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 4;
    Bdd mgr(n);
    std::vector<Bdd::Ref> refs;
    std::vector<std::uint64_t> tts;
    for (std::uint32_t v = 0; v < n; ++v) {
      refs.push_back(mgr.var(v));
      std::uint64_t tt = 0;
      for (std::uint64_t k = 0; k < 16; ++k)
        if ((k >> v) & 1) tt |= (1ULL << k);
      tts.push_back(tt);
    }
    for (int step = 0; step < 12; ++step) {
      const std::size_t i = static_cast<std::size_t>(rng.below(refs.size()));
      const std::size_t j = static_cast<std::size_t>(rng.below(refs.size()));
      switch (rng.below(4)) {
        case 0:
          refs.push_back(mgr.bAnd(refs[i], refs[j]));
          tts.push_back(tts[i] & tts[j]);
          break;
        case 1:
          refs.push_back(mgr.bOr(refs[i], refs[j]));
          tts.push_back(tts[i] | tts[j]);
          break;
        case 2:
          refs.push_back(mgr.bXor(refs[i], refs[j]));
          tts.push_back(tts[i] ^ tts[j]);
          break;
        default:
          refs.push_back(mgr.bNot(refs[i]));
          tts.push_back(~tts[i] & 0xFFFF);
      }
    }
    expectMatchesTruth(mgr, refs.back(), n, tts.back());
  }
}

TEST(Bdd, QuantificationMatchesCofactorDefinition) {
  Bdd mgr(3);
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    // Random function of 3 vars from a random truth table.
    std::vector<std::uint64_t> bits{rng.next() & 0xFF};
    const auto f = mgr.fromTruthTable(bits, {0, 1, 2});
    for (std::uint32_t v = 0; v < 3; ++v) {
      const auto lo = mgr.cofactor(f, v, false);
      const auto hi = mgr.cofactor(f, v, true);
      EXPECT_EQ(mgr.exists(f, {v}), mgr.bOr(lo, hi));
      EXPECT_EQ(mgr.forall(f, {v}), mgr.bAnd(lo, hi));
    }
  }
}

TEST(Bdd, SatCountIsExact) {
  Bdd mgr(6);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> bits{rng.next()};
    const auto f = mgr.fromTruthTable(bits, {0, 1, 2, 3, 4, 5});
    std::size_t expected = 0;
    for (std::uint64_t k = 0; k < 64; ++k)
      if ((bits[0] >> k) & 1) ++expected;
    EXPECT_DOUBLE_EQ(mgr.satCount(f), static_cast<double>(expected));
  }
}

TEST(Bdd, PickCubeReturnsSatisfyingAssignment) {
  Bdd mgr(4);
  const auto f = mgr.bAnd(mgr.var(0), mgr.bXor(mgr.var(2), mgr.var(3)));
  BddCube cube;
  ASSERT_TRUE(mgr.pickCube(f, cube));
  std::vector<std::uint8_t> a(4, 0);
  for (std::uint32_t v = 0; v < 4; ++v)
    if (cube.lits[v] >= 0) a[v] = static_cast<std::uint8_t>(cube.lits[v]);
  EXPECT_TRUE(mgr.eval(f, a));
  BddCube none;
  EXPECT_FALSE(mgr.pickCube(Bdd::kFalse, none));
}

TEST(Bdd, FromTruthTableLittleEndianConvention) {
  Bdd mgr(2);
  // f(x0,x1) = x0 AND !x1 -> true only for index 0b01 = 1.
  std::vector<std::uint64_t> bits{0b0010};
  const auto f = mgr.fromTruthTable(bits, {0, 1});
  EXPECT_EQ(f, mgr.bAnd(mgr.var(0), mgr.nvar(1)));
}

TEST(Bdd, MintermOfUsesBigEndianPaperConvention) {
  // Paper: v^3 with v = (v1,v2,v3) is !v1 v2 v3.
  Bdd mgr(3);
  const auto m3 = mgr.mintermOf(3, {0, 1, 2});
  EXPECT_EQ(m3, mgr.andMany({mgr.nvar(0), mgr.var(1), mgr.var(2)}));
}

TEST(Bdd, IsopCoverEqualsFunction) {
  Bdd mgr(5);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> bits{rng.next() & 0xFFFFFFFFULL};
    const auto f = mgr.fromTruthTable(bits, {0, 1, 2, 3, 4});
    const auto cubes = mgr.isop(f);
    // Rebuild the union of cubes and compare.
    Bdd::Ref cover = Bdd::kFalse;
    for (const BddCube& c : cubes) {
      Bdd::Ref cube = Bdd::kTrue;
      for (std::uint32_t v = 0; v < 5; ++v) {
        if (c.lits[v] == 1) cube = mgr.bAnd(cube, mgr.var(v));
        if (c.lits[v] == 0) cube = mgr.bAnd(cube, mgr.nvar(v));
      }
      cover = mgr.bOr(cover, cube);
    }
    EXPECT_EQ(cover, f);
  }
}

TEST(Bdd, IsopBetweenBoundsLiesBetween) {
  Bdd mgr(4);
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t lowBits = rng.next() & 0xFFFF;
    const std::uint64_t careBits = rng.next() & 0xFFFF;
    std::vector<std::uint64_t> lo{lowBits & careBits};
    std::vector<std::uint64_t> hi{lowBits | ~careBits};
    const auto L = mgr.fromTruthTable(lo, {0, 1, 2, 3});
    const auto U = mgr.fromTruthTable(
        std::vector<std::uint64_t>{hi[0] & 0xFFFF}, {0, 1, 2, 3});
    const auto cubes = mgr.isop(L, U);
    Bdd::Ref cover = Bdd::kFalse;
    for (const BddCube& c : cubes) {
      Bdd::Ref cube = Bdd::kTrue;
      for (std::uint32_t v = 0; v < 4; ++v) {
        if (c.lits[v] == 1) cube = mgr.bAnd(cube, mgr.var(v));
        if (c.lits[v] == 0) cube = mgr.bAnd(cube, mgr.nvar(v));
      }
      cover = mgr.bOr(cover, cube);
    }
    EXPECT_EQ(mgr.bImp(L, cover), Bdd::kTrue);
    EXPECT_EQ(mgr.bImp(cover, U), Bdd::kTrue);
  }
}

TEST(Bdd, NodeLimitThrows) {
  Bdd mgr(20, /*nodeLimit=*/64);
  EXPECT_THROW(
      {
        Bdd::Ref acc = Bdd::kFalse;
        Rng rng(3);
        for (int i = 0; i < 40; ++i) {
          Bdd::Ref cube = Bdd::kTrue;
          for (std::uint32_t v = 0; v < 20; ++v)
            cube = mgr.bAnd(cube, rng.flip() ? mgr.var(v) : mgr.nvar(v));
          acc = mgr.bOr(acc, cube);
        }
      },
      BddLimitExceeded);
}

TEST(Bdd, ExistsForallDuality) {
  Bdd mgr(5);
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> bits{rng.next() & 0xFFFFFFFFULL};
    const auto f = mgr.fromTruthTable(bits, {0, 1, 2, 3, 4});
    const std::vector<std::uint32_t> vars{1, 3};
    EXPECT_EQ(mgr.forall(f, vars),
              mgr.bNot(mgr.exists(mgr.bNot(f), vars)));
  }
}

}  // namespace
}  // namespace syseco
