// Engine robustness across the option space: every configuration must stay
// sound (SAT-verified result); options only trade quality and time.

#include <gtest/gtest.h>

#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"

namespace syseco {
namespace {

EcoCase optionCase(std::uint64_t seed) {
  CaseRecipe r;
  r.name = "opt" + std::to_string(seed);
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 2;
  r.targetRevisedFraction = 0.25;
  r.optRounds = 2;
  r.seed = seed;
  return makeCase(r);
}

TEST(EngineOptions, SinglePointModeIsSound) {
  const EcoCase c = optionCase(11);
  SysecoOptions o;
  o.maxPoints = 1;
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, TinySamplingDomainIsSound) {
  const EcoCase c = optionCase(12);
  SysecoOptions o;
  o.numSamples = 4;
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, StarvedValidationBudgetFallsBackSoundly) {
  // A validation budget of 1 conflict makes nearly every SAT validation
  // return Unknown; the engine must treat that as rejection and still
  // deliver a correct (fallback-built, fully verified) patch.
  const EcoCase c = optionCase(13);
  SysecoOptions o;
  o.validationBudget = 1;
  const EcoResult r = runSyseco(c.impl, c.spec, o);
  EXPECT_TRUE(r.success);
}

TEST(EngineOptions, FewCandidatesFewPinsIsSound) {
  const EcoCase c = optionCase(14);
  SysecoOptions o;
  o.maxRewireNets = 2;
  o.maxCandidatePins = 4;
  o.maxPointSets = 2;
  o.maxChoices = 2;
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, NoRefinementIsSound) {
  const EcoCase c = optionCase(15);
  SysecoOptions o;
  o.maxRefineIters = 1;
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, TinyBddNodeLimitTriggersShrinkPathSoundly) {
  const EcoCase c = optionCase(16);
  SysecoOptions o;
  o.bddNodeLimit = 512;  // forces BddLimitExceeded -> pin-set shrink
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, EverythingOffIsStillSound) {
  const EcoCase c = optionCase(17);
  SysecoOptions o;
  o.useUtilityHeuristic = false;
  o.includeTrivialCandidate = false;
  o.enableSweeping = false;
  o.synthesizeFunctions = false;
  o.useErrorDomainSampling = false;
  EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success);
}

TEST(EngineOptions, DifferentSeedsAllVerify) {
  const EcoCase c = optionCase(18);
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    SysecoOptions o;
    o.seed = seed;
    EXPECT_TRUE(runSyseco(c.impl, c.spec, o).success) << "seed " << seed;
  }
}

}  // namespace
}  // namespace syseco
