// Degradation tests: with faults or real resource limits forcing budget
// exhaustion in every engine phase, a run must still terminate with a
// SAT-verified patch and an honest per-output status report. These are the
// paths production rarely exercises - the whole point of the governor.

#include <gtest/gtest.h>

#include <string>

#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/blif_io.hpp"
#include "util/fault.hpp"
#include "util/status.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override { fault::Injector::instance().reset(); }

  static Netlist aluImpl() {
    return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
  }
  static Netlist aluSpec() {
    return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
  }

  /// Every processed output must carry a report, and a verified result.
  static void expectSoundRun(const EcoResult& res,
                             const SysecoDiagnostics& diag,
                             const Netlist& spec) {
    EXPECT_TRUE(res.success);
    EXPECT_TRUE(res.rectified.isWellFormed());
    EXPECT_TRUE(verifyAllOutputs(res.rectified, spec));
    EXPECT_GE(diag.outputs.size(), res.failingOutputsBefore);
  }
};

TEST_F(DegradationTest, UnlimitedRunOnAluIsExactAndClean) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_FALSE(diag.resourceDegraded());
  EXPECT_EQ(diag.runLimit, StatusCode::kOk);
  for (const OutputReport& r : diag.outputs) {
    EXPECT_EQ(r.limit, StatusCode::kOk);
    EXPECT_EQ(r.status, OutputRectStatus::kExact) << "output " << r.name;
  }
}

TEST_F(DegradationTest, SamplingBudgetFaultFallsBackVerified) {
  fault::Injector::instance().arm("syseco.sampling",
                                  fault::Kind::kBudgetExhausted);
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
  std::size_t fallbacks = 0;
  for (const OutputReport& r : diag.outputs) {
    if (r.status == OutputRectStatus::kFallback) {
      ++fallbacks;
      EXPECT_EQ(r.limit, StatusCode::kBudgetExhausted);
    }
  }
  EXPECT_GE(fallbacks, 1u);
}

TEST_F(DegradationTest, PointSetBddBlowupFaultDegradesVerified) {
  fault::Injector::instance().arm("syseco.pointsets",
                                  fault::Kind::kBddBlowup);
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  // A persistent blowup exhausts every shrink retry; the staged
  // degradation must be visible in the reports and end in fallbacks.
  std::size_t degradeSteps = 0, fallbacks = 0;
  for (const OutputReport& r : diag.outputs) {
    degradeSteps += static_cast<std::size_t>(r.degradeSteps);
    fallbacks += r.status == OutputRectStatus::kFallback;
  }
  EXPECT_GE(degradeSteps, 1u);
  EXPECT_GE(fallbacks, 1u);
}

TEST_F(DegradationTest, PointSetAllocFailureFaultDegradesVerified) {
  fault::Injector::instance().arm("syseco.pointsets",
                                  fault::Kind::kAllocFailure);
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  std::size_t degradeSteps = 0;
  for (const OutputReport& r : diag.outputs)
    degradeSteps += static_cast<std::size_t>(r.degradeSteps);
  EXPECT_GE(degradeSteps, 1u);
}

TEST_F(DegradationTest, ValidationBudgetFaultFallsBackVerified) {
  fault::Injector::instance().arm("syseco.validation",
                                  fault::Kind::kBudgetExhausted);
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
  std::size_t fallbacks = 0;
  for (const OutputReport& r : diag.outputs)
    fallbacks += r.status == OutputRectStatus::kFallback;
  EXPECT_GE(fallbacks, 1u);
}

TEST_F(DegradationTest, RefineBudgetFaultFallsBackVerified) {
  fault::Injector::instance().arm("syseco.refine",
                                  fault::Kind::kBudgetExhausted);
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, SysecoOptions{}, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
}

TEST_F(DegradationTest, TinyDeadlineStillProducesVerifiedPatch) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoOptions opt;
  opt.deadlineSeconds = 1e-4;  // far below the ~40ms exact run
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, opt, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
  EXPECT_EQ(diag.runLimit, StatusCode::kDeadlineExceeded);
  std::size_t fallbacks = 0;
  for (const OutputReport& r : diag.outputs)
    fallbacks += r.status == OutputRectStatus::kFallback;
  EXPECT_GE(fallbacks, 1u);
}

TEST_F(DegradationTest, TinyConflictBudgetStillProducesVerifiedPatch) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoOptions opt;
  opt.totalConflictBudget = 20;
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, opt, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
  EXPECT_LE(diag.conflictsUsed, 20 + 256) << "budget should bind tightly";
}

TEST_F(DegradationTest, TinyBddNodeBudgetStillProducesVerifiedPatch) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoOptions opt;
  opt.totalBddNodeBudget = 100;
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(impl, spec, opt, &diag);
  expectSoundRun(res, diag, spec);
  EXPECT_TRUE(diag.resourceDegraded());
}

TEST_F(DegradationTest, GovernedRandomCasesStaySound) {
  // Sweep of random cases under a mix of budgets: the completeness
  // guarantee must hold whatever the generator produces.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    CaseRecipe r;
    r.name = "degrade";
    r.spec = SpecParams{2, 5, 3, 2, 4, 3, 2, 2};
    r.mutations = 2;
    r.seed = seed;
    const EcoCase c = makeCase(r);
    SysecoOptions opt;
    opt.totalConflictBudget = 50;
    opt.deadlineSeconds = 0.01;
    SysecoDiagnostics diag;
    const EcoResult res = runSyseco(c.impl, c.spec, opt, &diag);
    EXPECT_TRUE(res.success) << "seed " << seed;
    EXPECT_TRUE(verifyAllOutputs(res.rectified, c.spec)) << "seed " << seed;
  }
}

// --- Option validation ------------------------------------------------------

TEST_F(DegradationTest, DefaultOptionsValidate) {
  EXPECT_TRUE(validateSysecoOptions(SysecoOptions{}).isOk());
}

TEST_F(DegradationTest, NonsensicalOptionsAreRejected) {
  const auto rejects = [](SysecoOptions o) {
    const Status s = validateSysecoOptions(o);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.code(), StatusCode::kInvalidInput);
  };
  SysecoOptions o;
  o.numSamples = 0;
  rejects(o);
  o = {};
  o.maxPoints = 0;
  rejects(o);
  o = {};
  o.maxPoints = -3;
  rejects(o);
  o = {};
  o.maxCandidatePins = 0;
  rejects(o);
  o = {};
  o.maxRewireNets = 0;
  rejects(o);
  o = {};
  o.maxPointSets = 0;
  rejects(o);
  o = {};
  o.maxChoices = 0;
  rejects(o);
  o = {};
  o.maxRefineIters = -1;
  rejects(o);
  o = {};
  o.validationBudget = 0;
  rejects(o);
  o = {};
  o.samplingBudget = -5;
  rejects(o);
  o = {};
  o.bddNodeLimit = 0;
  rejects(o);
  o = {};
  o.deadlineSeconds = -1.0;
  rejects(o);
  o = {};
  o.totalConflictBudget = -1;
  rejects(o);
  o = {};
  o.totalBddNodeBudget = -1;
  rejects(o);
}

TEST_F(DegradationTest, CheckedEntryPointReturnsInvalidInput) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoOptions opt;
  opt.numSamples = 0;
  SysecoDiagnostics diag;
  const Result<EcoResult> r = runSysecoChecked(impl, spec, opt, &diag);
  EXPECT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
}

TEST_F(DegradationTest, ThrowingEntryPointThrowsStatusError) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  SysecoOptions opt;
  opt.maxPoints = 0;
  try {
    runSyseco(impl, spec, opt);
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidInput);
  }
}

}  // namespace
}  // namespace syseco
