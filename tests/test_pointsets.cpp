// Paper-construct tests for §4.2: the parameterized pin-selection mux of
// Figure 2 and the feasible-point-set characteristic function H(t) of
// Example 1, built explicitly with the BDD package in the *exact* domain
// (no sampling) so the expected result is known in closed form.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace syseco {
namespace {

// Variable layout for the Example-1 instance with n = 2 word bits:
//   x: a0 a1 b0 b1 p q   (inputs; v(0) currently p, v(1) currently q)
//   y: y1 y2             (rectification-point free inputs)
//   t: t1 (2 bits), t2 (2 bits) - selection among pins q0..q3,
//      where q0/q1 are the v(0) pins of bits 0/1 and q2/q3 the v(1) pins.
struct Example1 {
  Bdd mgr{12};
  // Indices.
  std::uint32_t a0 = 0, a1 = 1, b0 = 2, b1 = 3, p = 4, q = 5;
  std::uint32_t y1 = 6, y2 = 7;
  std::vector<std::uint32_t> t1{8, 9};
  std::vector<std::uint32_t> t2{10, 11};

  Bdd::Ref var(std::uint32_t v) { return mgr.var(v); }

  /// t_i^j minterms (paper's big-endian v^j code).
  Bdd::Ref t1j(std::uint32_t j) { return mgr.mintermOf(j, t1); }
  Bdd::Ref t2j(std::uint32_t j) { return mgr.mintermOf(j, t2); }

  /// Figure 2's construct for pin j with value `base`:
  /// sel = t1^j | t2^j, data1 = (t1^j -> y1) & (t2^j -> y2).
  Bdd::Ref pinMux(std::uint32_t j, Bdd::Ref base) {
    const Bdd::Ref sel = mgr.bOr(t1j(j), t2j(j));
    const Bdd::Ref data1 = mgr.bAnd(mgr.bImp(t1j(j), var(y1)),
                                    mgr.bImp(t2j(j), var(y2)));
    return mgr.ite(sel, data1, base);
  }

  /// Parameterized composition function of output w_k (k = 0 or 1):
  /// h = (a_k & pin(q_k)) | (b_k & pin(q_{2+k})), pins currently p / q.
  Bdd::Ref h(std::uint32_t k) {
    const Bdd::Ref ak = var(k == 0 ? a0 : a1);
    const Bdd::Ref bk = var(k == 0 ? b0 : b1);
    return mgr.bOr(mgr.bAnd(ak, pinMux(k, var(p))),
                   mgr.bAnd(bk, pinMux(2 + k, var(q))));
  }

  /// Revised specification: w_k' = (a_k & c) | (b_k & !c), c = p & q.
  Bdd::Ref fPrime(std::uint32_t k) {
    const Bdd::Ref c = mgr.bAnd(var(p), var(q));
    const Bdd::Ref ak = var(k == 0 ? a0 : a1);
    const Bdd::Ref bk = var(k == 0 ? b0 : b1);
    return mgr.bOr(mgr.bAnd(ak, c), mgr.bAnd(bk, mgr.bNot(c)));
  }

  /// H(t) = forall x exists y (h == f') - Eq. (2), exact domain.
  Bdd::Ref H(std::uint32_t k) {
    const Bdd::Ref equal = mgr.bXnor(h(k), fPrime(k));
    const Bdd::Ref inner = mgr.exists(equal, {y1, y2});
    return mgr.forall(inner, {a0, a1, b0, b1, p, q});
  }
};

TEST(PointSets, MintermEncodingMatchesFigure2) {
  // Figure 2: t_i^2 = !t_i0 & t_i1 encodes choosing pin q2.
  Example1 ex;
  EXPECT_EQ(ex.t1j(2),
            ex.mgr.bAnd(ex.mgr.var(8), ex.mgr.nvar(9)));
}

TEST(PointSets, UnselectedPinKeepsOriginalNet) {
  // With t1 = t2 = 3 (pin q3), pin q0's mux must pass its base value.
  Example1 ex;
  const Bdd::Ref muxed = ex.pinMux(0, ex.var(ex.p));
  // Cofactor the selectors to the q3 code: 11 for both groups.
  Bdd::Ref r = muxed;
  for (std::uint32_t v : {8u, 9u, 10u, 11u}) r = ex.mgr.cofactor(r, v, true);
  EXPECT_EQ(r, ex.var(ex.p));
}

TEST(PointSets, SelectedPinBecomesFreeInput) {
  // With t1 = 0, pin q0's mux value under that selection is y1 (for any t2
  // not selecting q0).
  Example1 ex;
  Bdd::Ref r = ex.pinMux(0, ex.var(ex.p));
  // t1 = 00 selects q0; t2 = 11 selects q3.
  r = ex.mgr.cofactor(r, 8, false);
  r = ex.mgr.cofactor(r, 9, false);
  r = ex.mgr.cofactor(r, 10, true);
  r = ex.mgr.cofactor(r, 11, true);
  EXPECT_EQ(r, ex.var(ex.y1));
}

TEST(PointSets, Example1CharacteristicFunction) {
  // Paper Example 1 (n = 2, m = 2): for output w_k,
  //   H_k(t1, t2) = t1^k t2^{2+k}  |  t1^{2+k} t2^k.
  for (std::uint32_t k = 0; k <= 1; ++k) {
    Example1 ex;
    const Bdd::Ref expected =
        ex.mgr.bOr(ex.mgr.bAnd(ex.t1j(k), ex.t2j(2 + k)),
                   ex.mgr.bAnd(ex.t1j(2 + k), ex.t2j(k)));
    EXPECT_EQ(ex.H(k), expected) << "output w_" << k;
  }
}

TEST(PointSets, MergedSelectionCannotRectify) {
  // Selecting the same pin with both points merges them (one free input),
  // which is insufficient here: H must exclude t1 == t2.
  Example1 ex;
  const Bdd::Ref H = ex.H(0);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_EQ(ex.mgr.bAnd(H, ex.mgr.bAnd(ex.t1j(j), ex.t2j(j))), Bdd::kFalse);
  }
}

TEST(PointSets, WrongBitPinsCannotRectify) {
  // Pins of word bit 1 cannot rectify output w_0.
  Example1 ex;
  const Bdd::Ref H = ex.H(0);
  EXPECT_EQ(ex.mgr.bAnd(H, ex.mgr.bAnd(ex.t1j(1), ex.t2j(3))), Bdd::kFalse);
}

TEST(PointSets, SatCountAgreesWithClosedForm) {
  // H_0 has exactly two satisfying t assignments.
  Example1 ex;
  // Abstract away the 8 non-t variables first.
  Bdd::Ref H = ex.H(0);
  EXPECT_DOUBLE_EQ(ex.mgr.satCount(H) / 256.0, 2.0);  // 2^8 non-t vars
}

}  // namespace
}  // namespace syseco
