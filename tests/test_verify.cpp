// Certification oracle, invariant auditor and repro bundles: the tri-modal
// re-proof of every committed patch (SAT on a fresh miter, BDD within a
// node budget, mass + directed simulation), the structural audits at
// engine phase boundaries, and the atomic evidence bundles written when a
// route refutes a patch the engine believed in.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/build_info.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"
#include "verify/audit.hpp"
#include "verify/oracle.hpp"
#include "verify/repro.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

std::string testDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_verify_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

bool fileExists(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

Netlist aluImpl() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
}
Netlist aluSpec() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
}

/// impl: sum = XOR(a, b), carry = AND(a, b).
Netlist halfAdder() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("sum", nl.addGate(GateType::Xor, {a, b}));
  nl.addOutput("carry", nl.addGate(GateType::And, {a, b}));
  return nl;
}

/// Functionally the same half adder, built from AND/OR/NOT with the inputs
/// declared in the opposite order - exercises label (not index) matching
/// and guarantees the oracle's routes see different structure than impl.
Netlist halfAdderRestructured() {
  Netlist nl;
  const NetId b = nl.addInput("b");
  const NetId a = nl.addInput("a");
  const NetId na = nl.addGate(GateType::Not, {a});
  const NetId nb = nl.addGate(GateType::Not, {b});
  const NetId sum = nl.addGate(
      GateType::Or, {nl.addGate(GateType::And, {a, nb}),
                     nl.addGate(GateType::And, {na, b})});
  nl.addOutput("sum", sum);
  nl.addOutput("carry", nl.addGate(GateType::And, {a, b}));
  return nl;
}

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Injector::instance().reset(); }
  void TearDown() override { fault::Injector::instance().reset(); }
};

// --- NetlistAuditor -------------------------------------------------------

TEST_F(VerifyTest, AuditLevelNamesRoundTrip) {
  for (AuditLevel level : {AuditLevel::kOff, AuditLevel::kBoundaries,
                           AuditLevel::kParanoid}) {
    const auto back = auditLevelFromName(auditLevelName(level));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, level);
  }
  EXPECT_FALSE(auditLevelFromName("").has_value());
  EXPECT_FALSE(auditLevelFromName("maximal").has_value());
}

TEST_F(VerifyTest, CleanNetlistsPassEveryLevel) {
  for (const Netlist& nl : {halfAdder(), aluImpl(), aluSpec()}) {
    for (AuditLevel level : {AuditLevel::kBoundaries, AuditLevel::kParanoid}) {
      const AuditReport report = auditNetlist(nl, level, "test");
      EXPECT_TRUE(report.ok) << auditFailure(report).toString();
      EXPECT_TRUE(report.findings.empty());
      EXPECT_EQ(report.phase, "test");
    }
  }
  // kOff is a free pass: no checks, no findings, still ok.
  const AuditReport off = auditNetlist(halfAdder(), AuditLevel::kOff, "off");
  EXPECT_TRUE(off.ok);
  EXPECT_TRUE(off.findings.empty());
}

// The two corruption classes below are exactly the ones isWellFormed (and
// therefore restoreRaw) does NOT reject - the auditor exists to catch what
// the model's own checks let through.

TEST_F(VerifyTest, ArityViolationIsDiagnosed) {
  // A NOT gate with two fanins, with every sink cross-reference consistent.
  const std::string raw =
      "syseco-raw-netlist-v1\n"
      "counts 1 3 2 1\n"
      "input 0 a\n"
      "input 1 b\n"
      "gate 3 2 0 2 0 1\n"
      "net 1 0 a 1 0 0\n"
      "net 1 1 b 1 0 1\n"
      "net 2 0 o 1 4294967295 0\n"
      "output 2 o\n"
      "end\n";
  Result<Netlist> restored = Netlist::restoreRawString(raw);
  ASSERT_TRUE(restored.isOk()) << restored.status().toString();
  ASSERT_TRUE(restored.value().isWellFormed());  // the model cannot see it

  const AuditReport report =
      auditNetlist(restored.value(), AuditLevel::kBoundaries, "post-parse");
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].check, "gate-arity");
  const Status s = auditFailure(report);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.toString().find("post-parse"), std::string::npos);
  EXPECT_NE(s.toString().find("gate-arity"), std::string::npos);
}

TEST_F(VerifyTest, DanglingConsumedNetIsDiagnosed) {
  // Net 1 is undriven (srcKind None) yet feeds the AND's second pin.
  const std::string raw =
      "syseco-raw-netlist-v1\n"
      "counts 1 3 1 1\n"
      "input 0 a\n"
      "gate 4 2 0 2 0 1\n"
      "net 1 0 a 1 0 0\n"
      "net 0 4294967295 % 1 0 1\n"
      "net 2 0 o 1 4294967295 0\n"
      "output 2 o\n"
      "end\n";
  Result<Netlist> restored = Netlist::restoreRawString(raw);
  ASSERT_TRUE(restored.isOk()) << restored.status().toString();
  ASSERT_TRUE(restored.value().isWellFormed());

  const AuditReport report =
      auditNetlist(restored.value(), AuditLevel::kBoundaries, "post-restore");
  EXPECT_FALSE(report.ok);
  bool sawDangling = false;
  for (const AuditFinding& f : report.findings)
    sawDangling |= f.check == "dangling-net";
  EXPECT_TRUE(sawDangling) << auditFailure(report).toString();
}

TEST_F(VerifyTest, AuditCollectsEveryFindingNotJustTheFirst) {
  // Both corruptions at once: a 2-fanin NOT *and* a dangling consumed net.
  const std::string raw =
      "syseco-raw-netlist-v1\n"
      "counts 1 3 1 1\n"
      "input 0 a\n"
      "gate 3 2 0 2 0 1\n"
      "net 1 0 a 1 0 0\n"
      "net 0 4294967295 % 1 0 1\n"
      "net 2 0 o 1 4294967295 0\n"
      "output 2 o\n"
      "end\n";
  Result<Netlist> restored = Netlist::restoreRawString(raw);
  ASSERT_TRUE(restored.isOk()) << restored.status().toString();
  const AuditReport report =
      auditNetlist(restored.value(), AuditLevel::kBoundaries, "multi");
  EXPECT_GE(report.findings.size(), 2u);
}

// --- CertificationOracle route behavior -----------------------------------

TEST_F(VerifyTest, EquivalentPairCertifiesThroughAllRoutes) {
  const Netlist impl = halfAdder();
  const Netlist spec = halfAdderRestructured();
  OracleOptions opt;
  CertificationOracle oracle(impl, spec, opt);
  for (std::uint32_t o = 0; o < impl.numOutputs(); ++o) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    ASSERT_NE(op, kNullId);
    const OutputCertificate cert = oracle.certify(o, op);
    EXPECT_TRUE(cert.certified) << impl.outputName(o);
    EXPECT_FALSE(cert.routesConflict);
    EXPECT_EQ(cert.sat.verdict, RouteVerdict::kEquivalent);
    EXPECT_EQ(cert.bdd.verdict, RouteVerdict::kEquivalent);
    EXPECT_EQ(cert.sim.verdict, RouteVerdict::kPassedBounded);
    EXPECT_TRUE(cert.cex.empty());
  }
}

TEST_F(VerifyTest, MiscompiledOutputIsRefutedWithReproducedCex) {
  Netlist impl = halfAdder();
  const Netlist spec = halfAdderRestructured();
  // The classic silent miscompile: the sum output driven through a NOT.
  impl.rewireOutput(0, impl.addGate(GateType::Not, {impl.outputNet(0)}));
  CertificationOracle oracle(impl, spec, OracleOptions{});
  const OutputCertificate cert =
      oracle.certify(0, spec.findOutput("sum"));
  EXPECT_FALSE(cert.certified);
  EXPECT_EQ(cert.sat.verdict, RouteVerdict::kNotEquivalent);
  EXPECT_EQ(cert.bdd.verdict, RouteVerdict::kNotEquivalent);
  EXPECT_EQ(cert.sim.verdict, RouteVerdict::kNotEquivalent);
  // The minimized counterexample must actually exhibit the mismatch.
  EXPECT_TRUE(cert.cexReproduced);
  ASSERT_EQ(cert.cex.size(), impl.numInputs());
  EXPECT_NE(evalOnce(impl, cert.cex)[0],
            evalOnce(spec, oracle.mapToSpec(cert.cex))[1]);
  // The untouched carry output still certifies - refutation is per-output.
  EXPECT_TRUE(oracle.certify(1, spec.findOutput("carry")).certified);
}

TEST_F(VerifyTest, MapToSpecFollowsLabelsNotIndices) {
  const Netlist impl = halfAdder();            // inputs a, b
  const Netlist spec = halfAdderRestructured();  // inputs b, a
  CertificationOracle oracle(impl, spec, OracleOptions{});
  const InputPattern mapped = oracle.mapToSpec({1, 0});  // a=1, b=0
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_EQ(mapped[0], 0) << "spec input 0 is b";
  EXPECT_EQ(mapped[1], 1) << "spec input 1 is a";
}

TEST_F(VerifyTest, MinimizeCexDropsIrrelevantDeviations) {
  // o = AND(a, b) vs o = OR(a, b): any single-1 assignment mismatches.
  // Input c is completely irrelevant to both cones.
  Netlist impl;
  {
    const NetId a = impl.addInput("a");
    const NetId b = impl.addInput("b");
    impl.addInput("c");
    impl.addOutput("o", impl.addGate(GateType::And, {a, b}));
  }
  Netlist spec;
  {
    const NetId a = spec.addInput("a");
    const NetId b = spec.addInput("b");
    spec.addInput("c");
    spec.addOutput("o", spec.addGate(GateType::Or, {a, b}));
  }
  CertificationOracle oracle(impl, spec, OracleOptions{});
  bool reproduced = false;
  const InputPattern shrunk =
      minimizeCex(impl, 0, spec, 0, oracle, {1, 0, 1}, &reproduced);
  EXPECT_TRUE(reproduced);
  ASSERT_EQ(shrunk.size(), 3u);
  EXPECT_EQ(shrunk[2], 0) << "irrelevant deviation must be dropped";
  EXPECT_EQ(shrunk[0] + shrunk[1], 1) << "1-minimal: exactly one bit left";
  // A pattern that does not mismatch at all comes back unchanged, flagged.
  const InputPattern same =
      minimizeCex(impl, 0, spec, 0, oracle, {1, 1, 1}, &reproduced);
  EXPECT_FALSE(reproduced);
  EXPECT_EQ(same, (InputPattern{1, 1, 1}));
}

// --- Budget exhaustion: skipped(budget), never a false verdict ------------

TEST_F(VerifyTest, BddBudgetExhaustionReportsSkippedNeverAVerdict) {
  const Netlist impl = aluImpl();
  const Netlist spec = aluSpec();
  OracleOptions opt;
  opt.bddNodeBudget = 1;  // trips during the very first cone build
  CertificationOracle oracle(impl, spec, opt);
  for (std::uint32_t o = 0; o < impl.numOutputs(); ++o) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    if (op == kNullId) continue;
    const OutputCertificate cert = oracle.certify(o, op);
    EXPECT_EQ(cert.bdd.verdict, RouteVerdict::kSkippedBudget)
        << impl.outputName(o) << ": " << cert.bdd.detail;
    EXPECT_NE(cert.bdd.verdict, RouteVerdict::kEquivalent);
    EXPECT_NE(cert.bdd.verdict, RouteVerdict::kNotEquivalent);
  }
}

TEST_F(VerifyTest, FaultInjectedBddTripMidCheckStaysSkipped) {
  fault::Injector::instance().arm("oracle.bdd", fault::Kind::kBddBlowup);
  const Netlist impl = halfAdder();
  const Netlist spec = halfAdderRestructured();
  CertificationOracle oracle(impl, spec, OracleOptions{});
  const OutputCertificate cert = oracle.certify(0, spec.findOutput("sum"));
  EXPECT_EQ(cert.bdd.verdict, RouteVerdict::kSkippedBudget);
  // The pair is genuinely equivalent: SAT + simulation still certify it.
  EXPECT_EQ(cert.sat.verdict, RouteVerdict::kEquivalent);
  EXPECT_TRUE(cert.certified);
}

TEST_F(VerifyTest, EngineCertifiesDespiteOracleBddBudgetTrip) {
  SysecoOptions opt;
  opt.oracle.bddNodeBudget = 1;
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(aluImpl(), aluSpec(), opt, &diag);
  EXPECT_TRUE(res.success);
  ASSERT_FALSE(diag.certificates.empty());
  for (const OutputCertificate& c : diag.certificates) {
    EXPECT_EQ(c.bdd.verdict, RouteVerdict::kSkippedBudget) << c.name;
    EXPECT_TRUE(c.certified) << c.name;
  }
  EXPECT_TRUE(diag.oracleDisagreements.empty());
}

// --- Repro bundles and manifests ------------------------------------------

TEST_F(VerifyTest, ReproBundleWritesManifestThatMatchesTheFiles) {
  const std::string dir = testDir("bundle");
  const std::vector<ReproFile> files{
      {"cex.txt", "a 1\nb 0\n"},
      {"blob.bin", std::string("\x00\x01\xff segment", 12)},
  };
  Result<std::string> bundle = writeReproBundle(dir, "case", files);
  ASSERT_TRUE(bundle.isOk()) << bundle.status().toString();
  const std::string out = bundle.value();
  EXPECT_EQ(out, dir + "/case");
  for (const ReproFile& f : files) {
    EXPECT_EQ(slurp(out + "/" + f.name), f.content);
    Result<std::uint32_t> crc = crc32OfFile(out + "/" + f.name);
    ASSERT_TRUE(crc.isOk());
    EXPECT_EQ(crc.value(), crc32(f.content));
  }
  // The manifest lists every file with its crc32 and size.
  const std::string manifest = slurp(out + "/MANIFEST");
  for (const ReproFile& f : files) {
    char expect[80];
    std::snprintf(expect, sizeof expect, "%08x %zu %s", crc32(f.content),
                  f.content.size(), f.name.c_str());
    EXPECT_NE(manifest.find(expect), std::string::npos)
        << "missing manifest line: " << expect << "\ngot:\n" << manifest;
  }
  // No staging directory survives publication.
  EXPECT_FALSE(fileExists(dir + "/.tmp.case"));
}

TEST_F(VerifyTest, ReproBundleCollisionsGetNumberedSuffixes) {
  const std::string dir = testDir("bundle_collide");
  const std::vector<ReproFile> files{{"f.txt", "x"}};
  Result<std::string> first = writeReproBundle(dir, "dup", files);
  Result<std::string> second = writeReproBundle(dir, "dup", files);
  ASSERT_TRUE(first.isOk());
  ASSERT_TRUE(second.isOk());
  EXPECT_EQ(first.value(), dir + "/dup");
  EXPECT_EQ(second.value(), dir + "/dup-2");
}

TEST_F(VerifyTest, ReproBundleRejectsHostileFileNames) {
  const std::string dir = testDir("bundle_names");
  for (const char* bad : {"", "../escape", "a/b", "MANIFEST", ".hidden"}) {
    const Result<std::string> r =
        writeReproBundle(dir, "case", {{bad, "x"}});
    EXPECT_FALSE(r.isOk()) << "accepted bad name '" << bad << "'";
  }
  EXPECT_FALSE(writeReproBundle(dir, "", {{"f", "x"}}).isOk());
  EXPECT_FALSE(writeReproBundle("", "case", {{"f", "x"}}).isOk());
}

TEST_F(VerifyTest, Crc32OfFileHandlesMissingFilesStructurally) {
  const Result<std::uint32_t> r = crc32OfFile("/nonexistent-xyz/f");
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
}

// --- Build info -----------------------------------------------------------

TEST_F(VerifyTest, BuildInfoIsPopulatedAndEmbeddable) {
  const BuildInfo& b = buildInfo();
  EXPECT_FALSE(b.gitHash.empty());
  EXPECT_FALSE(b.compiler.empty());
  const std::string line = buildInfoLine();
  EXPECT_NE(line.find(b.gitHash), std::string::npos);
  const std::string json = buildInfoJson("");
  EXPECT_NE(json.find("\"git_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
}

// --- End to end: wrong-patch containment and verdict records --------------

TEST_F(VerifyTest, WrongPatchFaultIsCaughtQuarantinedAndBundled) {
  const std::string repro = testDir("wrongpatch");
  fault::Injector::instance().arm("oracle.wrong-patch",
                                  fault::Kind::kWrongPatch);
  SysecoOptions opt;
  opt.reproDir = repro;
  opt.audit = AuditLevel::kParanoid;
  SysecoDiagnostics diag;
  const Netlist impl = aluImpl(), spec = aluSpec();
  const EcoResult res = runSyseco(impl, spec, opt, &diag);

  // The corrupted output was refuted, quarantined to the cone-clone
  // fallback, re-certified, and the run still ends fully certified.
  EXPECT_TRUE(res.success);
  ASSERT_EQ(diag.oracleDisagreements.size(), 1u);
  const OracleDisagreement& d = diag.oracleDisagreements[0];
  EXPECT_TRUE(verifyAllOutputs(res.rectified, spec));
  for (const OutputCertificate& c : diag.certificates)
    EXPECT_TRUE(c.certified) << c.name;

  // The quarantine is an honest degradation: kFallback with an internal
  // limit, which drives the CLI's exit-4 "degraded" path.
  bool sawQuarantine = false;
  for (const OutputReport& r : diag.outputs) {
    if (r.output != d.output) continue;
    sawQuarantine = true;
    EXPECT_EQ(r.status, OutputRectStatus::kFallback);
    EXPECT_EQ(r.limit, StatusCode::kInternal);
  }
  EXPECT_TRUE(sawQuarantine);
  EXPECT_TRUE(diag.resourceDegraded());

  // The repro bundle landed atomically with its full evidence set.
  ASSERT_FALSE(d.bundleDir.empty());
  for (const char* f : {"impl_patched.raw", "spec.raw", "patch.txt",
                        "cex.txt", "meta.json", "MANIFEST"})
    EXPECT_TRUE(fileExists(d.bundleDir + "/" + f)) << f;
  const std::string meta = slurp(d.bundleDir + "/meta.json");
  EXPECT_NE(meta.find("\"verdicts\""), std::string::npos);
  EXPECT_NE(meta.find("\"build\""), std::string::npos);
  // The bundled netlists restore to the exact corrupted pair.
  Result<Netlist> bundledImpl =
      Netlist::restoreRawString(slurp(d.bundleDir + "/impl_patched.raw"));
  ASSERT_TRUE(bundledImpl.isOk());
  EXPECT_EQ(bundledImpl.value().numOutputs(), impl.numOutputs());
}

TEST_F(VerifyTest, CleanRunWithoutReproDirStillQuarantinesWrongPatch) {
  fault::Injector::instance().arm("oracle.wrong-patch",
                                  fault::Kind::kWrongPatch);
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(aluImpl(), aluSpec(), SysecoOptions{}, &diag);
  EXPECT_TRUE(res.success);
  ASSERT_EQ(diag.oracleDisagreements.size(), 1u);
  EXPECT_TRUE(diag.oracleDisagreements[0].bundleDir.empty());
  EXPECT_TRUE(verifyAllOutputs(res.rectified, aluSpec()));
}

TEST_F(VerifyTest, LegacyNoOraclePathStillVerifies) {
  SysecoOptions opt;
  opt.oracle.enabled = false;
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(aluImpl(), aluSpec(), opt, &diag);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(diag.certificates.empty());
}

TEST_F(VerifyTest, EngineBoundaryAuditsAreRecordedClean) {
  SysecoOptions opt;
  opt.audit = AuditLevel::kParanoid;
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(aluImpl(), aluSpec(), opt, &diag);
  EXPECT_TRUE(res.success);
  ASSERT_FALSE(diag.audits.empty());
  bool sawCommit = false;
  for (const AuditReport& a : diag.audits) {
    EXPECT_TRUE(a.ok) << auditFailure(a).toString();
    sawCommit |= a.phase == "post-patch-commit";
  }
  EXPECT_TRUE(sawCommit);
  EXPECT_GE(diag.secondsAudit, 0.0);
}

TEST_F(VerifyTest, VerdictsRecordSerializesAndRoundTripsThroughTheJournal) {
  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(aluImpl(), aluSpec(), SysecoOptions{}, &diag);
  ASSERT_TRUE(res.success);
  const JournalVerdicts v = makeVerdictsRecord(diag);
  ASSERT_EQ(v.entries.size(), diag.certificates.size());
  EXPECT_EQ(v.disagreements, 0u);
  for (std::size_t i = 0; i < v.entries.size(); ++i) {
    EXPECT_EQ(v.entries[i].output, diag.certificates[i].output);
    EXPECT_EQ(v.entries[i].sat,
              routeVerdictName(diag.certificates[i].sat.verdict));
    EXPECT_TRUE(v.entries[i].certified);
  }

  const std::string dir = testDir("verdicts");
  {
    Result<JournalWriter> w = JournalWriter::create(dir);
    ASSERT_TRUE(w.isOk());
    ASSERT_TRUE(w.value().append(serializeVerdicts(v)).isOk());
  }
  Result<JournalContents> read = readJournal(dir);
  ASSERT_TRUE(read.isOk());
  ASSERT_TRUE(read.value().hasVerdicts);
  const JournalVerdicts& back = read.value().verdicts;
  ASSERT_EQ(back.entries.size(), v.entries.size());
  for (std::size_t i = 0; i < v.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].output, v.entries[i].output);
    EXPECT_EQ(back.entries[i].name, v.entries[i].name);
    EXPECT_EQ(back.entries[i].sat, v.entries[i].sat);
    EXPECT_EQ(back.entries[i].bdd, v.entries[i].bdd);
    EXPECT_EQ(back.entries[i].sim, v.entries[i].sim);
    EXPECT_EQ(back.entries[i].certified, v.entries[i].certified);
  }
}

TEST_F(VerifyTest, VerdictRecordsAreIdenticalAcrossJobsCounts) {
  // The acceptance bar: the serialized verdicts payload must be
  // bit-identical however the run was executed.
  std::string serialized[2];
  for (int round = 0; round < 2; ++round) {
    SysecoOptions opt;
    opt.jobs = round == 0 ? 1 : 4;
    SysecoDiagnostics diag;
    const EcoResult res =
        runSyseco(aluImpl(), aluSpec(), opt, &diag);
    ASSERT_TRUE(res.success);
    serialized[round] = serializeVerdicts(makeVerdictsRecord(diag));
  }
  EXPECT_EQ(serialized[0], serialized[1]);
}

}  // namespace
}  // namespace syseco
