// End-to-end over the shipped sample data: BLIF in, engines, Verilog out.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "eco/syseco.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_io.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

TEST(DataFiles, AluEcoPairRectifies) {
  const Netlist impl =
      loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
  const Netlist spec =
      loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
  EXPECT_EQ(impl.numInputs(), 9u);
  EXPECT_EQ(impl.numOutputs(), 4u);

  SysecoDiagnostics diag;
  const EcoResult r = runSyseco(impl, spec, SysecoOptions{}, &diag);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.failingOutputsBefore, 4u);  // the OR mode of all 4 bits

  // The rectified design round-trips through both writers.
  std::ostringstream blif, vlog;
  writeBlif(blif, r.rectified, "patched");
  writeVerilog(vlog, r.rectified, "patched");
  EXPECT_NE(blif.str().find(".model patched"), std::string::npos);
  EXPECT_NE(vlog.str().find("module patched"), std::string::npos);
  std::istringstream back(blif.str());
  const Netlist reread = readBlif(back);
  EXPECT_TRUE(verifyAllOutputs(reread, spec));
}

}  // namespace
}  // namespace syseco
