// Symbolic-sampling domain tests (paper §5.1): the signature -> BDD bridge,
// error masks, sample translation, and the central soundness property that
// sampling yields a superset of exact answers.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "eco/sampling.hpp"
#include "gen/spec_builder.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

TEST(SampleSet, PaddingAndZVarCounts) {
  SampleSet s;
  s.add({1});
  EXPECT_EQ(s.numZVars(), 1u);
  EXPECT_EQ(s.paddedCount(), 2u);
  s.add({0});
  s.add({1});
  EXPECT_EQ(s.numZVars(), 2u);
  EXPECT_EQ(s.paddedCount(), 4u);
  for (int k = 0; k < 70; ++k) s.add({0});
  EXPECT_EQ(s.count(), 73u);
  EXPECT_EQ(s.numZVars(), 7u);
  EXPECT_EQ(s.paddedCount(), 128u);
  EXPECT_EQ(s.simWords(), 2u);
}

TEST(Sampling, SampledBddMatchesSignature) {
  // The sampling-domain function of a net over z must evaluate, on the
  // binary code of each sample index, to the net's simulated value.
  Rng rng(6);
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 2, 4, 3, 2, 2}, rng);
  const Netlist& nl = sc.netlist;

  SampleSet samples;
  for (int k = 0; k < 13; ++k) {
    InputPattern p(nl.numInputs());
    for (auto& bit : p) bit = rng.flip() ? 1 : 0;
    samples.add(std::move(p));
  }
  Rng fill(1);
  Simulator sim = simulateOnSamples(nl, nl, samples, fill);

  const std::uint32_t nz = samples.numZVars();
  Bdd mgr(nz);
  std::vector<std::uint32_t> zVars(nz);
  for (std::uint32_t i = 0; i < nz; ++i) zVars[i] = i;

  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
    const Bdd::Ref f = mgr.fromTruthTable(sim.outputValue(o), zVars);
    for (std::size_t k = 0; k < samples.count(); ++k) {
      std::vector<std::uint8_t> assignment(nz, 0);
      for (std::uint32_t j = 0; j < nz; ++j)
        assignment[j] = (k >> j) & 1;  // little-endian index encoding
      EXPECT_EQ(mgr.eval(f, assignment), sim.bit(nl.outputNet(o), k))
          << "output " << o << " sample " << k;
    }
  }
}

TEST(Sampling, ErrorMaskIgnoresPadding) {
  SampleSet samples;
  for (int k = 0; k < 5; ++k) samples.add({1});
  // Signatures that differ everywhere: only the 5 genuine samples count.
  const Signature a(samples.simWords(), ~0ULL);
  const Signature b(samples.simWords(), 0);
  const auto mask = errorMask(a, b, samples);
  EXPECT_EQ(countBits(mask), 5u);
}

TEST(Sampling, TranslationMatchesByLabelNotIndex) {
  // Two netlists with the same labels in different orders must receive the
  // same per-label values.
  Netlist a;
  const NetId ax = a.addInput("x");
  const NetId ay = a.addInput("y");
  a.addOutput("o", a.addGate(GateType::And, {ax, ay}));
  Netlist b;
  const NetId by = b.addInput("y");  // swapped order
  const NetId bx = b.addInput("x");
  b.addOutput("o", b.addGate(GateType::And, {bx, by}));

  SampleSet samples;
  samples.add({1, 0});  // x=1, y=0 in a's ordering
  samples.add({0, 1});
  Rng fill(9);
  Simulator simA = simulateOnSamples(a, a, samples, fill);
  Simulator simB = simulateOnSamples(b, a, samples, fill);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(simA.bit(ax, k), simB.bit(bx, k));
    EXPECT_EQ(simA.bit(ay, k), simB.bit(by, k));
    EXPECT_EQ(simA.bit(a.outputNet(0), k), simB.bit(b.outputNet(0), k));
  }
}

TEST(Sampling, DomainAnswersAreSupersetOfExact) {
  // Soundness direction of §5.1: any y-substitution that works for ALL
  // inputs also works on every sampled subset. Build f(x) = x0 XOR x1 and
  // a "pin" y replacing x1: exact feasibility of r(x) = NOT x1 for
  // changing f to XNOR must imply sampled feasibility.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    // Random 3-input functions f (impl with pin) and f' (target).
    const std::uint64_t implTT = rng.next() & 0xFFFF;   // over (x0,x1,x2,y)
    const std::uint64_t specTT = rng.next() & 0xFF;     // over (x0,x1,x2)
    const std::uint64_t rTT = rng.next() & 0xFF;        // candidate r(x)

    auto implAt = [&](unsigned x, bool y) {
      return ((implTT >> (x | (y ? 8u : 0u))) & 1) != 0;
    };
    auto specAt = [&](unsigned x) { return ((specTT >> x) & 1) != 0; };
    auto rAt = [&](unsigned x) { return ((rTT >> x) & 1) != 0; };

    // Exact feasibility of r.
    bool exact = true;
    for (unsigned x = 0; x < 8; ++x)
      exact &= implAt(x, rAt(x)) == specAt(x);

    // Sampled feasibility over a random subset of assignments.
    bool sampled = true;
    for (unsigned x = 0; x < 8; ++x) {
      if (!rng.flip()) continue;  // not sampled
      sampled &= implAt(x, rAt(x)) == specAt(x);
    }
    if (exact) {
      EXPECT_TRUE(sampled);  // superset property
    }
  }
}

}  // namespace
}  // namespace syseco
