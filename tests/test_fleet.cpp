// Fault-tolerant distributed worker fleet: the framed TCP transport's
// stream classification, the fleet codecs (task lease/epoch envelopes and
// the content-addressed case upload), the transport-independent retry
// backoff, and the supervisor's network failure taxonomy - scripted rogue
// peers inject each fault deterministically and every run must still end
// bit-identical to the local in-process run, with the fault classified,
// the retry accounted, and dead fleets degrading instead of aborting.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eco/fleet.hpp"
#include "eco/isolate.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/journal_io.hpp"
#include "util/io_retry.hpp"
#include "util/ipc.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

// --- Stream classification (net::takeFrame) -------------------------------

TEST(FleetTransport, TakeFrameExtractsFramesAndPreservesTheRest) {
  std::string buf = ipc::encodeFrame(ipc::kTypeFleetTask, "first") +
                    ipc::encodeFrame(ipc::kTypeFleetResult, "second");
  net::RecvOutcome one = net::takeFrame(&buf, /*eof=*/false);
  ASSERT_EQ(one.status, net::RecvStatus::kFrame);
  EXPECT_EQ(one.frame.type, ipc::kTypeFleetTask);
  EXPECT_EQ(one.frame.payload, "first");
  net::RecvOutcome two = net::takeFrame(&buf, /*eof=*/false);
  ASSERT_EQ(two.status, net::RecvStatus::kFrame);
  EXPECT_EQ(two.frame.payload, "second");
  EXPECT_EQ(net::takeFrame(&buf, /*eof=*/false).status,
            net::RecvStatus::kTimeout);
}

TEST(FleetTransport, CleanEofOnAFrameBoundaryIsClosed) {
  std::string buf;
  EXPECT_EQ(net::takeFrame(&buf, /*eof=*/true).status,
            net::RecvStatus::kClosed);
}

TEST(FleetTransport, EofMidFrameIsTruncatedNotGarbage) {
  const std::string full =
      ipc::encodeFrame(ipc::kTypeFleetResult, std::string(256, 'x'));
  std::string buf = full.substr(0, full.size() / 2);
  // The stream is intact while the peer might still send the rest...
  EXPECT_EQ(net::takeFrame(&buf, /*eof=*/false).status,
            net::RecvStatus::kTimeout);
  // ...and becomes a truncation the moment EOF proves it never will.
  EXPECT_EQ(net::takeFrame(&buf, /*eof=*/true).status,
            net::RecvStatus::kTruncated);
}

TEST(FleetTransport, NonFrameBytesAreGarbage) {
  std::string buf = "HTTP/1.1 200 OK\r\n\r\nthis was never a frame";
  EXPECT_EQ(net::takeFrame(&buf, /*eof=*/false).status,
            net::RecvStatus::kGarbage);
}

TEST(FleetTransport, DrainErrorIsATransportError) {
  std::string buf;
  net::RecvOutcome out = net::takeFrame(&buf, /*eof=*/false, ECONNRESET);
  EXPECT_EQ(out.status, net::RecvStatus::kError);
  EXPECT_NE(out.detail.find("errno"), std::string::npos);
}

TEST(FleetTransport, ParseHostPortAcceptsEndpointsAndRejectsJunk) {
  Result<std::pair<std::string, std::uint16_t>> hp =
      net::parseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(hp.isOk());
  EXPECT_EQ(hp.value().first, "127.0.0.1");
  EXPECT_EQ(hp.value().second, 8080);
  EXPECT_FALSE(net::parseHostPort("").isOk());
  EXPECT_FALSE(net::parseHostPort("nohost").isOk());
  EXPECT_FALSE(net::parseHostPort(":9000").isOk());
  EXPECT_FALSE(net::parseHostPort("host:").isOk());
  EXPECT_FALSE(net::parseHostPort("host:0").isOk());
  EXPECT_FALSE(net::parseHostPort("host:70000").isOk());
  EXPECT_FALSE(net::parseHostPort("host:port").isOk());
}

// --- Fleet payload codecs -------------------------------------------------

TEST(FleetCodec, TaskRequestRoundtrips) {
  FleetTaskRequest req;
  req.output = 9;
  req.attempt = 2;
  req.epoch = 0xfeedfacecafeULL;
  req.leaseSeconds = 2.5;
  req.caseCrc = 0xdeadbeef;
  Result<FleetTaskRequest> back =
      decodeFleetTaskRequest(encodeFleetTaskRequest(req));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().output, 9u);
  EXPECT_EQ(back.value().attempt, 2);
  EXPECT_EQ(back.value().epoch, 0xfeedfacecafeULL);
  EXPECT_DOUBLE_EQ(back.value().leaseSeconds, 2.5);
  EXPECT_EQ(back.value().caseCrc, 0xdeadbeefu);
}

TEST(FleetCodec, TaskRequestRejectsGarbage) {
  EXPECT_FALSE(decodeFleetTaskRequest("").isOk());
  EXPECT_FALSE(decodeFleetTaskRequest("not json").isOk());
  EXPECT_FALSE(decodeFleetTaskRequest("{\"output\":1}").isOk());
}

TEST(FleetCodec, NeedCaseAndHeartbeatRoundtrip) {
  Result<std::uint32_t> crc = decodeFleetNeedCase(encodeFleetNeedCase(77));
  ASSERT_TRUE(crc.isOk());
  EXPECT_EQ(crc.value(), 77u);
  Result<std::uint64_t> ep =
      decodeFleetHeartbeat(encodeFleetHeartbeat(0x1234567890abcdefULL));
  ASSERT_TRUE(ep.isOk());
  EXPECT_EQ(ep.value(), 0x1234567890abcdefULL);
  EXPECT_FALSE(decodeFleetNeedCase("junk").isOk());
  EXPECT_FALSE(decodeFleetHeartbeat("junk").isOk());
}

/// Two-output base: o = a AND b, p = a OR b.
Netlist resultBase() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  nl.addOutput("o", nl.addGate(GateType::And, {a, b}));
  nl.addOutput("p", nl.addGate(GateType::Or, {a, b}));
  return nl;
}

TEST(FleetCodec, ResultEnvelopeCarriesTheEpochAndDecodesAsAPatch) {
  const Netlist base = resultBase();
  WorkerPatch p;
  p.produced = true;
  p.baseGates = base.numGatesTotal();
  p.baseNets = base.numNetsTotal();
  p.gates.push_back(
      WorkerPatch::NewGate{GateType::Xor, {0, 1}, static_cast<NetId>(p.baseNets)});
  PatchTracker::RewireRecord rw;
  rw.sink = Sink{kNullId, 0};
  rw.oldNet = base.outputNet(0);
  rw.newNet = static_cast<NetId>(p.baseNets);
  p.rewires.push_back(rw);
  OutputReport rep;
  rep.output = 0;
  rep.name = base.outputName(0);
  rep.status = OutputRectStatus::kExact;
  p.frag.outputs.push_back(rep);

  const std::string payload = encodeFleetResult(41, p);
  Result<std::uint64_t> ep = peekFleetEpoch(payload);
  ASSERT_TRUE(ep.isOk());
  EXPECT_EQ(ep.value(), 41u);
  // The same payload is a plain WorkerPatch document to the patch decoder.
  Result<WorkerPatch> back = decodeWorkerPatch(payload, base);
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_TRUE(back.value().produced);
  ASSERT_EQ(back.value().gates.size(), 1u);
  EXPECT_EQ(back.value().gates[0].type, GateType::Xor);
  EXPECT_FALSE(peekFleetEpoch("garbage").isOk());
  EXPECT_FALSE(peekFleetEpoch("{\"produced\":true}").isOk());
}

TEST(FleetCodec, FailureRoundtripsAndRejectsUnknownCauses) {
  FleetFailure f;
  f.epoch = 3;
  f.cause = workerExitCauseName(WorkerExitCause::kOom);
  f.detail = "allocation failed";
  Result<FleetFailure> back = decodeFleetFailure(encodeFleetFailure(f));
  ASSERT_TRUE(back.isOk());
  EXPECT_EQ(back.value().epoch, 3u);
  EXPECT_EQ(back.value().cause, "oom");
  EXPECT_EQ(back.value().detail, "allocation failed");
  EXPECT_FALSE(decodeFleetFailure("junk").isOk());
  EXPECT_FALSE(
      decodeFleetFailure(
          "{\"epoch\":\"1\",\"cause\":\"martians\",\"detail\":\"\"}")
          .isOk());
}

TEST(FleetCodec, CaseRoundtripsNetlistsOptionsAndProtectList) {
  const Netlist base = resultBase();
  Netlist spec;
  const NetId a = spec.addInput("a");
  const NetId b = spec.addInput("b");
  spec.addOutput("o", spec.addGate(GateType::Nand, {a, b}));
  spec.addOutput("p", spec.addGate(GateType::Or, {a, b}));
  SysecoOptions opt;
  opt.seed = 1234;
  const std::vector<std::uint32_t> protect = {1, 0};

  Result<FleetCase> back =
      decodeFleetCase(encodeFleetCase(base, spec, opt, protect));
  ASSERT_TRUE(back.isOk()) << back.status().toString();
  EXPECT_EQ(back.value().base.dumpRawString(), base.dumpRawString());
  EXPECT_EQ(back.value().spec.dumpRawString(), spec.dumpRawString());
  EXPECT_EQ(back.value().options.seed, 1234u);
  EXPECT_EQ(back.value().protect, protect);
}

TEST(FleetCodec, CaseRejectsCorruption) {
  const Netlist base = resultBase();
  EXPECT_FALSE(decodeFleetCase("").isOk());
  EXPECT_FALSE(decodeFleetCase("not json").isOk());
  // A protect entry past the base output count is semantic garbage.
  SysecoOptions opt;
  EXPECT_FALSE(
      decodeFleetCase(encodeFleetCase(base, base, opt, {99})).isOk());
}

// --- The agent's resident-case LRU ----------------------------------------

FleetCase cacheCase() {
  FleetCase c;
  c.base = resultBase();
  c.spec = resultBase();
  return c;
}

TEST(FleetCaseCache, EvictsLeastRecentlyUsedAndATouchRefreshes) {
  CaseCacheLru cache(2);
  EXPECT_EQ(cache.slots(), 2u);
  EXPECT_EQ(cache.find(1), nullptr);

  ASSERT_NE(cache.insert(1, cacheCase()), nullptr);
  ASSERT_NE(cache.insert(2, cacheCase()), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.keysMruFirst(), (std::vector<std::uint32_t>{2, 1}));

  // A hit moves its entry to the front, so the *other* key is now the
  // eviction victim.
  CaseCacheLru::Entry* hit = cache.find(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->crc, 1u);
  EXPECT_NE(hit->baseAnalysis, nullptr);
  EXPECT_NE(hit->specAnalysis, nullptr);
  EXPECT_EQ(cache.keysMruFirst(), (std::vector<std::uint32_t>{1, 2}));

  ASSERT_NE(cache.insert(3, cacheCase()), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.keysMruFirst(), (std::vector<std::uint32_t>{3, 1}));
  EXPECT_EQ(cache.find(2), nullptr) << "LRU key must have been evicted";

  // Re-uploading a resident key refreshes in place instead of evicting an
  // innocent bystander.
  ASSERT_NE(cache.insert(1, cacheCase()), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.keysMruFirst(), (std::vector<std::uint32_t>{1, 3}));
}

TEST(FleetCaseCache, ZeroSlotsClampsToOne) {
  CaseCacheLru cache(0);
  EXPECT_EQ(cache.slots(), 1u);
  ASSERT_NE(cache.insert(7, cacheCase()), nullptr);
  ASSERT_NE(cache.insert(8, cacheCase()), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.keysMruFirst(), (std::vector<std::uint32_t>{8}));
}

// --- Transport-independent retry backoff ----------------------------------

double backoffBaseSeconds(const SysecoOptions& opt, int failedAttempts) {
  const int shift = std::min(failedAttempts - 1, 10);
  return std::min(opt.isolateBackoffMs * static_cast<double>(1u << shift),
                  5000.0) /
         1000.0;
}

TEST(FleetBackoff, JitterFractionIsAttemptInvariant) {
  SysecoOptions opt;
  opt.seed = 7;
  opt.isolateBackoffMs = 100.0;
  for (std::uint32_t o : {0u, 5u, 99u}) {
    const double frac0 =
        retryBackoffSeconds(opt, o, 1) / backoffBaseSeconds(opt, 1);
    for (int attempt = 2; attempt <= 12; ++attempt) {
      EXPECT_NEAR(
          retryBackoffSeconds(opt, o, attempt) /
              backoffBaseSeconds(opt, attempt),
          frac0, 1e-9)
          << "output " << o << " attempt " << attempt;
    }
  }
}

TEST(FleetBackoff, ScheduleIgnoresTheTransportConfiguration) {
  SysecoOptions pipes;
  pipes.seed = 42;
  pipes.isolate = true;
  SysecoOptions fleet = pipes;
  fleet.isolate = false;
  fleet.workers = {"10.0.0.1:9000", "10.0.0.2:9000"};
  fleet.fleetLeaseSeconds = 0.25;
  fleet.fleetMinWorkers = 2;
  fleet.fleetConnectTimeoutMs = 123;
  for (std::uint32_t o = 0; o < 32; ++o)
    for (int attempt = 1; attempt <= 6; ++attempt)
      EXPECT_DOUBLE_EQ(retryBackoffSeconds(pipes, o, attempt),
                       retryBackoffSeconds(fleet, o, attempt));
}

TEST(FleetBackoff, JitterVariesWithSeedAndOutputAndStaysBounded) {
  SysecoOptions a;
  a.seed = 1;
  SysecoOptions b;
  b.seed = 2;
  bool seedMatters = false;
  bool outputMatters = false;
  for (std::uint32_t o = 0; o < 64; ++o) {
    const double va = retryBackoffSeconds(a, o, 1);
    EXPECT_GE(va, backoffBaseSeconds(a, 1));
    EXPECT_LE(va, 1.5 * backoffBaseSeconds(a, 1));
    if (va != retryBackoffSeconds(b, o, 1)) seedMatters = true;
    if (va != retryBackoffSeconds(a, o + 64, 1)) outputMatters = true;
  }
  EXPECT_TRUE(seedMatters);
  EXPECT_TRUE(outputMatters);
  // The exponential base caps at 5 s however many attempts failed.
  EXPECT_LE(retryBackoffSeconds(a, 0, 1000), 7.5);
}

// --- Engine-level fleet runs against scripted peers -----------------------

EcoCase fleetEcoCase(std::uint64_t seed) {
  CaseRecipe r;
  r.name = "fleet" + std::to_string(seed);
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 3;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = seed;
  return makeCase(r);
}

struct CapturedRun {
  EcoResult result;
  SysecoDiagnostics diag;
  std::string dump;
};

struct FleetOutcome {
  CapturedRun run;
  std::vector<FleetEvent> events;
};

CapturedRun runLocalCase(const EcoCase& c) {
  CapturedRun run;
  SysecoOptions opt;
  opt.jobs = 1;
  run.result = runSyseco(c.impl, c.spec, opt, &run.diag);
  run.dump = run.result.rectified.dumpRawString();
  return run;
}

FleetOutcome runFleetCase(const EcoCase& c, std::vector<std::string> workers,
                          double leaseSeconds, double backoffMs) {
  FleetOutcome out;
  SysecoOptions opt;
  opt.workers = std::move(workers);
  opt.fleetLeaseSeconds = leaseSeconds;
  opt.isolateBackoffMs = backoffMs;
  opt.fleetConnectTimeoutMs = 500;
  // The hook runs on the supervisor thread; no synchronization needed.
  opt.fleetEventHook = [&](const FleetEvent& e) { out.events.push_back(e); };
  out.run.result = runSyseco(c.impl, c.spec, opt, &out.run.diag);
  out.run.dump = out.run.result.rectified.dumpRawString();
  return out;
}

/// Full bit-identity minus the worker-retry accounting (which by design
/// records what the faults cost).
void expectSameRectification(const CapturedRun& a, const CapturedRun& b) {
  ASSERT_TRUE(a.result.success);
  ASSERT_TRUE(b.result.success);
  EXPECT_EQ(a.dump, b.dump);
  EXPECT_EQ(a.result.stats.gates, b.result.stats.gates);
  EXPECT_EQ(a.result.stats.nets, b.result.stats.nets);
  ASSERT_EQ(a.diag.outputs.size(), b.diag.outputs.size());
  for (std::size_t i = 0; i < a.diag.outputs.size(); ++i) {
    const OutputReport& x = a.diag.outputs[i];
    const OutputReport& y = b.diag.outputs[i];
    EXPECT_EQ(x.output, y.output) << "report " << i;
    EXPECT_EQ(x.name, y.name) << "report " << i;
    EXPECT_EQ(x.status, y.status) << "report " << i;
    EXPECT_EQ(x.limit, y.limit) << "report " << i;
    EXPECT_EQ(x.conflictsUsed, y.conflictsUsed) << "report " << i;
    EXPECT_EQ(x.bddNodesUsed, y.bddNodesUsed) << "report " << i;
    EXPECT_EQ(x.degradeSteps, y.degradeSteps) << "report " << i;
  }
  EXPECT_EQ(a.diag.conflictsUsed, b.diag.conflictsUsed);
  EXPECT_EQ(a.diag.bddNodesUsed, b.diag.bddNodesUsed);
  EXPECT_EQ(a.diag.outputsRectified, b.diag.outputsRectified);
  EXPECT_EQ(a.diag.outputsViaFallback, b.diag.outputsViaFallback);
}

bool hasEvent(const std::vector<FleetEvent>& events, const std::string& kind) {
  for (const FleetEvent& e : events)
    if (e.kind == kind) return true;
  return false;
}

/// Asserts exactly one output paid exactly one failed attempt with `cause`
/// (the scripted rogue peer's single sabotage), everything else clean.
void expectOneFailedAttempt(const SysecoDiagnostics& diag,
                            WorkerExitCause cause) {
  int hits = 0;
  for (const OutputReport& r : diag.outputs) {
    if (r.workerFailedAttempts == 0) {
      EXPECT_EQ(r.workerExitCause, WorkerExitCause::kNone) << r.output;
      continue;
    }
    ++hits;
    EXPECT_EQ(r.workerFailedAttempts, 1) << "output " << r.output;
    EXPECT_EQ(r.workerExitCause, cause) << "output " << r.output;
  }
  EXPECT_EQ(hits, 1);
}

/// A real --serve-worker agent on a loopback ephemeral port, in-thread.
struct Agent {
  std::atomic<bool> stop{false};
  std::atomic<int> port{-1};
  std::thread th;

  void start() {
    th = std::thread([this] {
      FleetAgentOptions o;
      o.port = 0;
      o.stop = &stop;
      o.boundHook = [this](std::uint16_t bound) {
        port.store(static_cast<int>(bound));
      };
      const Status st = runWorkerAgent(o);
      if (!st.isOk())
        ADD_FAILURE() << "agent failed: " << st.toString();
    });
    while (port.load() < 0) subprocess::pollReadable({}, 10);
  }

  std::string spec() const {
    return "127.0.0.1:" + std::to_string(port.load());
  }

  ~Agent() {
    stop.store(true);
    if (th.joinable()) th.join();
  }
};

/// A scripted rogue peer: accepts the supervisor once, hands the connection
/// to the test's script, and dies. The script decides how to sabotage.
struct RoguePeer {
  std::atomic<bool> stop{false};
  std::uint16_t port = 0;
  int listenFd = -1;
  std::thread th;

  void start(std::function<void(RoguePeer&, int&, std::string&)> script) {
    Result<int> lf = net::listenOn(0, &port);
    ASSERT_TRUE(lf.isOk()) << lf.status().toString();
    listenFd = lf.take();
    th = std::thread([this, script = std::move(script)] {
      int fd = -1;
      while (!stop.load() && fd < 0) {
        Result<int> c = net::acceptClient(listenFd, 100);
        if (!c.isOk()) return;
        if (c.value() >= 0) fd = c.value();
      }
      if (fd < 0) return;
      std::string rx;
      script(*this, fd, rx);
      if (fd >= 0) net::closeSocket(fd);
    });
  }

  std::string spec() const { return "127.0.0.1:" + std::to_string(port); }

  void closeListener() { net::closeSocket(listenFd); }

  std::optional<ipc::Frame> readFrame(int fd, std::string& rx) {
    while (!stop.load()) {
      net::RecvOutcome out = net::recvFrame(fd, &rx, 100);
      if (out.status == net::RecvStatus::kFrame) return out.frame;
      if (out.status != net::RecvStatus::kTimeout) return std::nullopt;
    }
    return std::nullopt;
  }

  void sleepMs(int ms) {
    for (int waited = 0; waited < ms && !stop.load(); waited += 20)
      subprocess::pollReadable({}, 20);
  }

  ~RoguePeer() {
    stop.store(true);
    if (th.joinable()) th.join();
    if (listenFd >= 0) net::closeSocket(listenFd);
  }
};

TEST(FleetEngine, CleanFleetRunIsBitIdenticalToTheLocalRun) {
  const EcoCase c = fleetEcoCase(11);
  Agent a1, a2;
  a1.start();
  a2.start();
  const FleetOutcome fleet =
      runFleetCase(c, {a1.spec(), a2.spec()}, 10.0, 1.0);
  const CapturedRun local = runLocalCase(c);
  expectSameRectification(local, fleet.run);
  for (const OutputReport& r : fleet.run.diag.outputs) {
    EXPECT_EQ(r.workerFailedAttempts, 0) << r.output;
    EXPECT_EQ(r.workerExitCause, WorkerExitCause::kNone) << r.output;
  }
  // Nothing but case uploads on a healthy fleet.
  for (const FleetEvent& e : fleet.events) EXPECT_EQ(e.kind, "case-upload");
}

TEST(FleetEngine, ConnectionResetConsumesOneAttemptAndTheRunRecovers) {
  const EcoCase c = fleetEcoCase(11);
  RoguePeer rogue;
  rogue.start([](RoguePeer& self, int& fd, std::string& rx) {
    // Take the task, then vanish between request and result.
    (void)self.readFrame(fd, rx);
    net::closeSocket(fd);
    self.closeListener();
  });
  Agent good;
  good.start();
  const FleetOutcome fleet =
      runFleetCase(c, {rogue.spec(), good.spec()}, 10.0, 1.0);
  expectSameRectification(runLocalCase(c), fleet.run);
  expectOneFailedAttempt(fleet.run.diag, WorkerExitCause::kConnReset);
  EXPECT_TRUE(hasEvent(fleet.events, "conn-reset"));
  EXPECT_TRUE(hasEvent(fleet.events, "worker-dead"));
}

TEST(FleetEngine, TruncatedResultFrameClassifiesAsFrameTruncated) {
  const EcoCase c = fleetEcoCase(11);
  RoguePeer rogue;
  rogue.start([](RoguePeer& self, int& fd, std::string& rx) {
    (void)self.readFrame(fd, rx);
    // A valid frame header promising bytes that never arrive.
    const std::string full =
        ipc::encodeFrame(ipc::kTypeFleetResult, std::string(512, 'y'));
    (void)ioretry::writeAllRaw(
        fd, std::string_view(full).substr(0, full.size() / 2), true);
    net::closeSocket(fd);
    self.closeListener();
  });
  Agent good;
  good.start();
  const FleetOutcome fleet =
      runFleetCase(c, {rogue.spec(), good.spec()}, 10.0, 1.0);
  expectSameRectification(runLocalCase(c), fleet.run);
  expectOneFailedAttempt(fleet.run.diag, WorkerExitCause::kFrameTruncated);
  EXPECT_TRUE(hasEvent(fleet.events, "frame-truncated"));
}

TEST(FleetEngine, SilentWorkerLosesItsLeaseAndTheTaskMovesOn) {
  const EcoCase c = fleetEcoCase(11);
  RoguePeer rogue;
  rogue.start([](RoguePeer& self, int& fd, std::string& rx) {
    // Accept the task, then neither heartbeat nor answer nor hang up.
    (void)self.readFrame(fd, rx);
    self.sleepMs(60000);
  });
  Agent good;
  good.start();
  const FleetOutcome fleet =
      runFleetCase(c, {rogue.spec(), good.spec()}, /*lease=*/0.4, 1.0);
  expectSameRectification(runLocalCase(c), fleet.run);
  expectOneFailedAttempt(fleet.run.diag, WorkerExitCause::kLeaseExpired);
  EXPECT_TRUE(hasEvent(fleet.events, "lease-expired"));
  EXPECT_FALSE(hasEvent(fleet.events, "stale-epoch"));
}

TEST(FleetEngine, LateDuplicateResultIsDiscardedByEpoch) {
  const EcoCase c = fleetEcoCase(11);
  RoguePeer rogue;
  rogue.start([](RoguePeer& self, int& fd, std::string& rx) {
    std::optional<ipc::Frame> task = self.readFrame(fd, rx);
    if (!task || task->type != ipc::kTypeFleetTask) return;
    Result<FleetTaskRequest> req = decodeFleetTaskRequest(task->payload);
    if (!req.isOk()) return;
    // Outlive the lease in silence, then deliver the reclaimed
    // assignment's result anyway: a well-formed envelope whose epoch the
    // supervisor must recognize as superseded and discard.
    self.sleepMs(1200);
    WorkerPatch dummy;
    (void)net::sendFrame(fd, ipc::kTypeFleetResult,
                         encodeFleetResult(req.value().epoch, dummy));
    net::closeSocket(fd);
    self.closeListener();
  });
  Agent good;
  good.start();
  // A long backoff holds the reclaimed task pending, so the run is
  // guaranteed to still be in flight when the duplicate lands.
  const FleetOutcome fleet = runFleetCase(c, {rogue.spec(), good.spec()},
                                          /*lease=*/0.4, /*backoffMs=*/2500.0);
  expectSameRectification(runLocalCase(c), fleet.run);
  expectOneFailedAttempt(fleet.run.diag, WorkerExitCause::kLeaseExpired);
  EXPECT_TRUE(hasEvent(fleet.events, "lease-expired"));
  EXPECT_TRUE(hasEvent(fleet.events, "stale-epoch"));
}

TEST(FleetEngine, FleetLossDegradesToInProcessExecution) {
  const EcoCase c = fleetEcoCase(11);
  // Two endpoints that refuse every connect: bind-and-release ephemeral
  // ports so nothing is listening there.
  std::uint16_t p1 = 0, p2 = 0;
  {
    Result<int> l1 = net::listenOn(0, &p1);
    Result<int> l2 = net::listenOn(0, &p2);
    ASSERT_TRUE(l1.isOk() && l2.isOk());
    int f1 = l1.take(), f2 = l2.take();
    net::closeSocket(f1);
    net::closeSocket(f2);
  }
  const FleetOutcome fleet = runFleetCase(
      c,
      {"127.0.0.1:" + std::to_string(p1), "127.0.0.1:" + std::to_string(p2)},
      10.0, 1.0);
  expectSameRectification(runLocalCase(c), fleet.run);
  // Connect refusals are the peers' failures, not the tasks': the degraded
  // run must not charge any output a retry attempt.
  for (const OutputReport& r : fleet.run.diag.outputs)
    EXPECT_EQ(r.workerFailedAttempts, 0) << r.output;
  EXPECT_TRUE(hasEvent(fleet.events, "conn-refused"));
  EXPECT_TRUE(hasEvent(fleet.events, "worker-dead"));
  EXPECT_TRUE(hasEvent(fleet.events, "fleet-degraded"));
}

TEST(FleetOptions, InvalidFleetKnobsAreRejectedNotUndefined) {
  const EcoCase c = fleetEcoCase(11);
  const auto rejects = [&](const SysecoOptions& opt, const char* what) {
    EXPECT_FALSE(runSysecoChecked(c.impl, c.spec, opt).isOk()) << what;
  };
  SysecoOptions opt;
  opt.workers = {"127.0.0.1:9000"};
  opt.isolate = true;
  rejects(opt, "workers and isolate together");
  opt.isolate = false;
  opt.workers = {"nonsense"};
  rejects(opt, "unparseable endpoint");
  opt.workers = {"127.0.0.1:9000"};
  opt.fleetLeaseSeconds = 0.0;
  rejects(opt, "zero lease");
  opt.fleetLeaseSeconds = 10.0;
  opt.fleetConnectTimeoutMs = 0;
  rejects(opt, "zero connect timeout");
  opt.fleetConnectTimeoutMs = 2000;
  opt.fleetMinWorkers = 0;
  rejects(opt, "zero min workers");
}

// --- End-to-end through the CLI binary ------------------------------------

#ifdef SYSECO_CLI_BIN

class FleetCliTest : public ::testing::Test {
 protected:
  static std::string dataPath(const char* name) {
    return std::string(SYSECO_SOURCE_DIR) + "/data/" + name;
  }

  static std::string testDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "syseco_fleet_" + name;
    const std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
    return dir;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
  }

  static int runCli(const std::string& env, const std::string& args,
                    const std::string& logPath) {
    const std::string cmd = env + (env.empty() ? "" : " ") + SYSECO_CLI_BIN +
                            " " + args + " > '" + logPath + "' 2>&1";
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
  }

  /// Starts a --serve-worker agent process; returns its pid and fills
  /// `port` from the agent's --port-file once it is listening.
  static pid_t spawnAgent(const std::string& dir, const std::string& tag,
                          const std::string& env, int* port) {
    const std::string portFile = dir + "/" + tag + ".port";
    const std::string pidFile = dir + "/" + tag + ".pid";
    const std::string cmd = "sh -c '" + env + (env.empty() ? "" : " ") +
                            SYSECO_CLI_BIN + " --serve-worker 0 --port-file " +
                            portFile + " > " + dir + "/" + tag +
                            ".log 2>&1 & echo $!' > " + pidFile;
    if (std::system(cmd.c_str()) != 0) return -1;
    for (int waited = 0; waited < 10000; waited += 50) {
      const std::string text = slurp(portFile);
      if (!text.empty() && text.back() == '\n') {
        *port = std::atoi(text.c_str());
        return static_cast<pid_t>(std::atol(slurp(pidFile).c_str()));
      }
      subprocess::pollReadable({}, 50);
    }
    return -1;
  }

  /// The last journaled verdicts record, raw bytes.
  static std::string lastVerdicts(const std::string& journalDir) {
    const std::string data = slurp(journalDir + "/journal.jsonl");
    const std::size_t at = data.rfind("{\"type\":\"verdicts\"");
    if (at == std::string::npos) return "";
    const std::size_t tail = data.find("\"disagreements\":", at);
    if (tail == std::string::npos) return "";
    const std::size_t end = data.find('}', tail);
    if (end == std::string::npos) return "";
    return data.substr(at, end - at + 1);
  }
};

TEST_F(FleetCliTest, VerdictRecordsMatchJobsRunEvenWithAFaultyAgent) {
  const std::string dir = testDir("verdicts");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // Agent 1 truncates every result frame it ever sends; agent 2 is honest.
  int p1 = 0, p2 = 0;
  const pid_t a1 = spawnAgent(
      dir, "a1", "SYSECO_FAULT_INJECT=fleet.agent=net-truncate", &p1);
  const pid_t a2 = spawnAgent(dir, "a2", "", &p2);
  ASSERT_GT(a1, 0);
  ASSERT_GT(a2, 0);

  const std::string pair = "--impl " + dataPath("alu_impl.blif") + " --spec " +
                           dataPath("alu_spec.blif");
  const int fleetRc =
      runCli("", pair + " --workers 127.0.0.1:" + std::to_string(p1) +
                     ",127.0.0.1:" + std::to_string(p2) + " --journal " + dir +
                     "/jf --out " + dir + "/fleet.blif",
             dir + "/fleet.log");
  const int localRc = runCli("", pair + " --jobs 2 --journal " + dir +
                                     "/jl --out " + dir + "/local.blif",
                             dir + "/local.log");
  ::kill(a1, SIGKILL);
  ::kill(a2, SIGKILL);
  ASSERT_EQ(fleetRc, 0) << slurp(dir + "/fleet.log");
  ASSERT_EQ(localRc, 0) << slurp(dir + "/local.log");

  EXPECT_EQ(slurp(dir + "/fleet.blif"), slurp(dir + "/local.blif"));
  const std::string vf = lastVerdicts(dir + "/jf");
  ASSERT_FALSE(vf.empty());
  EXPECT_EQ(vf, lastVerdicts(dir + "/jl"));

  // The truncation was journaled as a structured fleet record and the
  // reader recovers it.
  Result<JournalContents> journal = readJournal(dir + "/jf");
  ASSERT_TRUE(journal.isOk()) << journal.status().toString();
  bool sawTruncated = false;
  for (const JournalFleetEvent& e : journal.value().fleetEvents)
    if (e.kind == "frame-truncated") sawTruncated = true;
  EXPECT_TRUE(sawTruncated);
  // The local run has no fleet and must journal no fleet records.
  Result<JournalContents> localJournal = readJournal(dir + "/jl");
  ASSERT_TRUE(localJournal.isOk());
  EXPECT_TRUE(localJournal.value().fleetEvents.empty());
}

#endif  // SYSECO_CLI_BIN

}  // namespace
}  // namespace syseco
