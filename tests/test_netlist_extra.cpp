// Additional netlist data-model coverage: multi-root cones, aliasing
// safety, sink bookkeeping under churn, level semantics for n-ary gates.

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

TEST(NetlistExtra, ConeGatesMultiRootSharesWork) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId shared = nl.addGate(GateType::And, {a, b});
  const NetId x = nl.addGate(GateType::Not, {shared});
  const NetId y = nl.addGate(GateType::Xor, {shared, a});
  nl.addOutput("x", x);
  nl.addOutput("y", y);
  const auto cone = nl.coneGates({x, y});
  EXPECT_EQ(cone.size(), 3u);  // shared gate listed once
  // Topological: the shared AND precedes both consumers.
  EXPECT_EQ(cone[0], nl.driverOf(shared));
}

TEST(NetlistExtra, AddGateSurvivesAliasedFaninStorage) {
  // Regression for the reallocation aliasing bug: passing a reference to a
  // gate's own fanin vector into addGate must be safe even when the gate
  // table reallocates.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  NetId cur = nl.addGate(GateType::And, {a, b});
  for (int i = 0; i < 200; ++i) {
    const GateId g = nl.driverOf(cur);
    // Duplicate the driver using a direct reference to its fanins.
    cur = nl.addGate(nl.gate(g).type, nl.gate(g).fanins);
  }
  nl.addOutput("o", cur);
  std::string why;
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
  EXPECT_EQ(evalOnce(nl, {1, 1})[0], 1);
  EXPECT_EQ(evalOnce(nl, {1, 0})[0], 0);
}

TEST(NetlistExtra, SinkBookkeepingUnderChurn) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId g = nl.addGate(GateType::Or, {a, b});
  nl.addOutput("o", g);
  // Bounce a pin between drivers repeatedly.
  const GateId gate = nl.driverOf(g);
  for (int i = 0; i < 50; ++i) {
    nl.rewireGatePin(gate, 0, i % 2 ? a : b);
    ASSERT_TRUE(nl.isWellFormed());
  }
  // Counts must be exact: b drives pin0 (i=49 odd -> a? check final) plus
  // its original pin1.
  std::size_t sinksA = nl.net(a).sinks.size();
  std::size_t sinksB = nl.net(b).sinks.size();
  EXPECT_EQ(sinksA + sinksB, 2u);
}

TEST(NetlistExtra, NaryLevelCosts) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i)
    ins.push_back(nl.addInput("i" + std::to_string(i)));
  const NetId and5 = nl.addGate(GateType::And, ins);   // ceil(log2 5) = 3
  const NetId mux = nl.addGate(
      GateType::Mux, {ins[0], and5, ins[1]});           // mux costs 1
  nl.addOutput("o", mux);
  const auto levels = nl.netLevels();
  EXPECT_EQ(levels[and5], 3u);
  EXPECT_EQ(levels[mux], 4u);
}

TEST(NetlistExtra, SupportCachesNothingStale) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId c = nl.addInput("c");
  const NetId g = nl.addGate(GateType::And, {a, b});
  nl.addOutput("o", g);
  EXPECT_EQ(nl.support(g), (std::vector<std::uint32_t>{0, 1}));
  nl.rewireGatePin(nl.driverOf(g), 1, c);
  EXPECT_EQ(nl.support(g), (std::vector<std::uint32_t>{0, 2}));
}

TEST(NetlistExtra, CloneConeHandlesDiamond) {
  // Reconvergent (diamond) structure must clone each node exactly once.
  Netlist src;
  const NetId a = src.addInput("a");
  const NetId n1 = src.addGate(GateType::Not, {a});
  const NetId l = src.addGate(GateType::And, {a, n1});
  const NetId r = src.addGate(GateType::Or, {a, n1});
  src.addOutput("o", src.addGate(GateType::Xor, {l, r}));

  Netlist dst;
  const NetId da = dst.addInput("a");
  std::unordered_map<std::string, NetId> inputs{{"a", da}};
  std::unordered_map<NetId, NetId> cache;
  dst.addOutput("o", dst.cloneCone(src, src.outputNet(0), inputs, cache));
  EXPECT_EQ(dst.countLiveGates(), src.countLiveGates());
  for (int v = 0; v <= 1; ++v) {
    EXPECT_EQ(evalOnce(dst, {static_cast<std::uint8_t>(v)}),
              evalOnce(src, {static_cast<std::uint8_t>(v)}));
  }
}

}  // namespace
}  // namespace syseco
