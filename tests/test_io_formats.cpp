// BLIF and Verilog interchange tests.

#include <gtest/gtest.h>

#include <sstream>

#include "eco/patch.hpp"
#include "gen/spec_builder.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_io.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

class BlifRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRoundTrip, PreservesFunction) {
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  std::ostringstream os;
  writeBlif(os, sc.netlist, "rt");
  std::istringstream is(os.str());
  const Netlist back = readBlif(is);
  EXPECT_EQ(back.numInputs(), sc.netlist.numInputs());
  EXPECT_EQ(back.numOutputs(), sc.netlist.numOutputs());
  EXPECT_TRUE(verifyAllOutputs(back, sc.netlist));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTrip,
                         ::testing::Values(1, 7, 13, 21, 33));

TEST(Blif, ParsesHandWrittenCover) {
  const char* text = R"(
# a 2:1 mux written as covers
.model muxy
.inputs s a b
.outputs y ny
.names s a b y
0 1- 1
11 -1 1
.names y ny
0 1
.end
)";
  // Note: BLIF masks have no spaces; rewrite rows properly.
  (void)text;
  const char* good = ".model muxy\n.inputs s a b\n.outputs y ny\n"
                     ".names s a b y\n01- 1\n1-1 1\n"
                     ".names y ny\n0 1\n.end\n";
  std::istringstream is(good);
  const Netlist nl = readBlif(is);
  for (int s = 0; s <= 1; ++s)
    for (int a = 0; a <= 1; ++a)
      for (int b = 0; b <= 1; ++b) {
        const auto out = evalOnce(nl, {static_cast<std::uint8_t>(s),
                                       static_cast<std::uint8_t>(a),
                                       static_cast<std::uint8_t>(b)});
        const int expect = s ? b : a;
        EXPECT_EQ(out[0], expect);
        EXPECT_EQ(out[1], 1 - expect);
      }
}

TEST(Blif, ParsesOffsetCover) {
  // f written via the off-set: rows with value 0 build the complement.
  const char* text = ".model offs\n.inputs a b\n.outputs f\n"
                     ".names a b f\n00 0\n.end\n";
  std::istringstream is(text);
  const Netlist nl = readBlif(is);
  // f = NOT(!a & !b) = a | b.
  EXPECT_EQ(evalOnce(nl, {0, 0})[0], 0);
  EXPECT_EQ(evalOnce(nl, {0, 1})[0], 1);
  EXPECT_EQ(evalOnce(nl, {1, 0})[0], 1);
  EXPECT_EQ(evalOnce(nl, {1, 1})[0], 1);
}

TEST(Blif, ParsesConstantsAndContinuations) {
  const char* text = ".model k\n.inputs a\n.outputs one zero buf\n"
                     ".names one\n1\n.names zero\n\n.names a \\\nbuf\n1 1\n"
                     ".end\n";
  std::istringstream is(text);
  const Netlist nl = readBlif(is);
  EXPECT_EQ(evalOnce(nl, {0})[0], 1);
  EXPECT_EQ(evalOnce(nl, {0})[1], 0);
  EXPECT_EQ(evalOnce(nl, {1})[2], 1);
}

TEST(Blif, HandlesOutOfOrderCovers) {
  // BLIF allows covers in any order; y depends on t defined later.
  const char* text = ".model ooo\n.inputs a b\n.outputs y\n"
                     ".names t y\n0 1\n.names a b t\n11 1\n.end\n";
  std::istringstream is(text);
  const Netlist nl = readBlif(is);
  EXPECT_EQ(evalOnce(nl, {1, 1})[0], 0);  // y = !(a&b)
  EXPECT_EQ(evalOnce(nl, {1, 0})[0], 1);
}

TEST(Blif, RejectsUnsupportedConstructs) {
  {
    std::istringstream is(".model l\n.inputs a\n.outputs q\n"
                          ".latch a q re clk 0\n.end\n");
    EXPECT_THROW(readBlif(is), std::runtime_error);
  }
  {
    std::istringstream is(".model c\n.inputs a\n.outputs y\n"
                          ".names a b y\n11 1\n.names y a b\n1- 1\n.end\n");
    // b depends on y depends on b: combinational cycle.
    EXPECT_THROW(readBlif(is), std::runtime_error);
  }
  {
    std::istringstream is(".inputs a\n.outputs y\n.end\n");
    EXPECT_THROW(readBlif(is), std::runtime_error);  // missing .model
  }
}

TEST(Verilog, EmitsCompilableStructure) {
  Rng rng(3);
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 1, 3, 2, 1, 1}, rng);
  std::ostringstream os;
  writeVerilog(os, sc.netlist, "dut");
  const std::string v = os.str();
  EXPECT_NE(v.find("module dut"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Every live gate materializes exactly one assign for its net.
  std::size_t assigns = 0;
  for (std::size_t pos = 0; (pos = v.find("assign", pos)) != std::string::npos;
       ++pos)
    ++assigns;
  EXPECT_EQ(assigns,
            sc.netlist.countLiveGates() + sc.netlist.numOutputs());
}

TEST(Verilog, EscapesAwkwardNames) {
  Netlist nl;
  const NetId a = nl.addInput("a[3]");
  nl.addOutput("out.q", nl.addGate(GateType::Not, {a}));
  std::ostringstream os;
  writeVerilog(os, nl);
  EXPECT_NE(os.str().find("\\a[3] "), std::string::npos);
  EXPECT_NE(os.str().find("\\out.q "), std::string::npos);
}

}  // namespace
}  // namespace syseco
