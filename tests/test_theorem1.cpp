// Theorem 1 (paper §4.4) and Example 2 tests.
//
// Theorem 1: r rectifies the implementation at an output iff the
// composition function h(x,y) satisfies L => h and h => U, with
// L = f' & R, U = f' | !R, R = AND_i (y_i == r_i(x)).
//
// We verify the theorem itself by randomized cross-checking against the
// direct definition (substitute r into h and compare with f'), and the
// concrete Example 2 instance.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

TEST(Theorem1, AgreesWithDirectSubstitutionRandomized) {
  Rng rng(21);
  // Variables: x0..x2 (inputs), y0..y1 (rectification points).
  const std::uint32_t numX = 3, numY = 2;
  for (int trial = 0; trial < 200; ++trial) {
    Bdd mgr(numX + numY);
    std::vector<std::uint32_t> xVars{0, 1, 2};
    std::vector<std::uint32_t> yVars{3, 4};

    // Random h(x, y) over all 5 variables, random f'(x), random r_i(x).
    const auto randomOver = [&](const std::vector<std::uint32_t>& vars) {
      std::vector<std::uint64_t> bits{rng.next()};
      return mgr.fromTruthTable(
          std::vector<std::uint64_t>{bits[0] &
                                     ((1ULL << (1u << vars.size())) - 1)},
          vars);
    };
    const Bdd::Ref h = randomOver({0, 1, 2, 3, 4});
    const Bdd::Ref fPrime = randomOver(xVars);
    const Bdd::Ref r0 = randomOver(xVars);
    const Bdd::Ref r1 = randomOver(xVars);

    // Direct check: h(x, r(x)) == f'(x) for all x. Compose by
    // constraining y and quantifying: exists y (R & h) == h(x, r(x)).
    const Bdd::Ref R = mgr.bAnd(mgr.bXnor(mgr.var(3), r0),
                                mgr.bXnor(mgr.var(4), r1));
    const Bdd::Ref composed = mgr.exists(mgr.bAnd(R, h), yVars);
    const bool direct = composed == fPrime;

    // Theorem 1 check.
    const Bdd::Ref L = mgr.bAnd(fPrime, R);
    const Bdd::Ref U = mgr.bOr(fPrime, mgr.bNot(R));
    const bool viaTheorem =
        mgr.bAnd(mgr.bImp(L, h), mgr.bImp(h, U)) == Bdd::kTrue;

    EXPECT_EQ(direct, viaTheorem) << "trial " << trial;
  }
}

// Example 2 instance (n = 2 word bits, output w_0).
// Variables: a0 b0 p q | y1 y2 | c1 (2 bits) c2 (2 bits).
struct Example2 {
  Bdd mgr{10};
  std::uint32_t a0 = 0, b0 = 1, p = 2, q = 3;
  std::uint32_t y1 = 4, y2 = 5;
  std::vector<std::uint32_t> c1{6, 7};
  std::vector<std::uint32_t> c2{8, 9};

  Bdd::Ref var(std::uint32_t v) { return mgr.var(v); }
  Bdd::Ref c1j(std::uint32_t j) { return mgr.mintermOf(j, c1); }
  Bdd::Ref c2j(std::uint32_t j) { return mgr.mintermOf(j, c2); }

  /// h(x, y) with both pins free: (a0 & y1) | (b0 & y2).
  Bdd::Ref h() {
    return mgr.bOr(mgr.bAnd(var(a0), var(y1)), mgr.bAnd(var(b0), var(y2)));
  }
  Bdd::Ref c() { return mgr.bAnd(var(p), var(q)); }
  Bdd::Ref fPrime() {
    return mgr.bOr(mgr.bAnd(var(a0), c()),
                   mgr.bAnd(var(b0), mgr.bNot(c())));
  }

  /// R(x, y, c): S1 = (v(0)=p, c, !c) for y1; S2 = (v(1)=q, c, !c) for y2.
  Bdd::Ref R() {
    auto constrain = [&](std::uint32_t y, auto cj, Bdd::Ref r0, Bdd::Ref r1,
                         Bdd::Ref r2) {
      Bdd::Ref acc = mgr.bImp(cj(0), mgr.bXnor(var(y), r0));
      acc = mgr.bAnd(acc, mgr.bImp(cj(1), mgr.bXnor(var(y), r1)));
      acc = mgr.bAnd(acc, mgr.bImp(cj(2), mgr.bXnor(var(y), r2)));
      return acc;
    };
    const Bdd::Ref rc = c();
    const Bdd::Ref rnc = mgr.bNot(c());
    return mgr.bAnd(
        constrain(y1, [&](std::uint32_t j) { return c1j(j); }, var(p), rc,
                  rnc),
        constrain(y2, [&](std::uint32_t j) { return c2j(j); }, var(q), rc,
                  rnc));
  }

  /// Xi(c) = forall x,y ((L -> h) & (h -> U)).
  Bdd::Ref Xi() {
    const Bdd::Ref L = mgr.bAnd(fPrime(), R());
    const Bdd::Ref U = mgr.bOr(fPrime(), mgr.bNot(R()));
    const Bdd::Ref F = mgr.bAnd(mgr.bImp(L, h()), mgr.bImp(h(), U));
    return mgr.forall(F, {a0, b0, p, q, y1, y2});
  }
};

TEST(Theorem1, Example2ValidRewiringIsAccepted) {
  // The rewiring R = q_k/c, q_{n+k}/!c (c1 = 1, c2 = 2) rectifies w_0.
  Example2 ex;
  const Bdd::Ref xi = ex.Xi();
  EXPECT_NE(ex.mgr.bAnd(xi, ex.mgr.bAnd(ex.c1j(1), ex.c2j(2))), Bdd::kFalse);
}

TEST(Theorem1, Example2InvalidRewiringsAreRejected) {
  Example2 ex;
  const Bdd::Ref xi = ex.Xi();
  // Keeping either original net cannot rectify.
  EXPECT_EQ(ex.mgr.bAnd(xi, ex.mgr.bAnd(ex.c1j(0), ex.c2j(2))), Bdd::kFalse);
  EXPECT_EQ(ex.mgr.bAnd(xi, ex.mgr.bAnd(ex.c1j(1), ex.c2j(0))), Bdd::kFalse);
  // Swapping the polarities is wrong.
  EXPECT_EQ(ex.mgr.bAnd(xi, ex.mgr.bAnd(ex.c1j(2), ex.c2j(1))), Bdd::kFalse);
}

TEST(Theorem1, Example2SolutionIsExactlyTheConjunction) {
  // The paper's Example 2 prints Xi_k = c1^1 OR c2^2; the semantics of
  // Theorem 1 require BOTH selections (an OR would claim that picking c for
  // q_k alone rectifies regardless of q_{n+k}, which fails for
  // a_k=0, b_k=1). We reproduce the conjunction and flag the OR as an
  // apparent typo in the paper (see EXPERIMENTS.md).
  Example2 ex;
  const Bdd::Ref valid = [&] {
    // Restrict to well-formed selections (c_i in {0,1,2}).
    Bdd::Ref v1 = ex.mgr.bOr(ex.c1j(0), ex.mgr.bOr(ex.c1j(1), ex.c1j(2)));
    Bdd::Ref v2 = ex.mgr.bOr(ex.c2j(0), ex.mgr.bOr(ex.c2j(1), ex.c2j(2)));
    return ex.mgr.bAnd(v1, v2);
  }();
  const Bdd::Ref xi = ex.mgr.bAnd(ex.Xi(), valid);
  EXPECT_EQ(xi, ex.mgr.bAnd(ex.c1j(1), ex.c2j(2)));
}

}  // namespace
}  // namespace syseco
