// Synthesis pass tests. The single invariant that must never break:
// every pass preserves every output function. Checked by SAT equivalence
// over randomized circuits and seeds (property-style sweeps).

#include <gtest/gtest.h>

#include "eco/patch.hpp"
#include "gen/spec_builder.hpp"
#include "opt/passes.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

SpecCircuit smallCircuit(std::uint64_t seed) {
  Rng rng(seed);
  return buildSpec(SpecParams{3, 5, 3, 2, 5, 4, 3, 3}, rng);
}

class PassPreservesFunction : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PassPreservesFunction, Strash) {
  SpecCircuit sc = smallCircuit(GetParam());
  const Netlist out = strash(sc.netlist);
  EXPECT_TRUE(out.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(out, sc.netlist));
  // Strash never grows the circuit.
  EXPECT_LE(out.countLiveGates(), sc.netlist.countLiveGates());
}

TEST_P(PassPreservesFunction, Restructure) {
  SpecCircuit sc = smallCircuit(GetParam());
  Rng rng(GetParam() * 17 + 3);
  const Netlist out = restructure(sc.netlist, rng);
  EXPECT_TRUE(out.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(out, sc.netlist));
}

TEST_P(PassPreservesFunction, CollapseResynth) {
  SpecCircuit sc = smallCircuit(GetParam());
  Rng rng(GetParam() * 29 + 5);
  const Netlist pre = strash(sc.netlist);
  const Netlist out = collapseResynth(pre, rng);
  EXPECT_TRUE(out.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(out, sc.netlist));
}

TEST_P(PassPreservesFunction, HeavyOptimizeMultiRound) {
  SpecCircuit sc = smallCircuit(GetParam());
  Rng rng(GetParam() * 31 + 7);
  const Netlist out = heavyOptimize(sc.netlist, rng, 3);
  EXPECT_TRUE(out.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(out, sc.netlist));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassPreservesFunction,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Strash, FoldsConstants) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId one = nl.addGate(GateType::Const1, {});
  const NetId zero = nl.addGate(GateType::Const0, {});
  nl.addOutput("andOne", nl.addGate(GateType::And, {a, one}));    // = a
  nl.addOutput("andZero", nl.addGate(GateType::And, {a, zero}));  // = 0
  nl.addOutput("orOne", nl.addGate(GateType::Or, {a, one}));      // = 1
  nl.addOutput("orZero", nl.addGate(GateType::Or, {a, zero}));    // = a
  nl.addOutput("xorOne", nl.addGate(GateType::Xor, {a, one}));    // = !a
  const Netlist out = strash(nl);
  EXPECT_TRUE(verifyAllOutputs(out, nl));
  // a AND 1 = a: no gate needed. a XOR 1 = NOT a: one gate.
  EXPECT_LE(out.countLiveGates(), 3u);  // const0, const1, not
}

TEST(Strash, MergesIdenticalGates) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId g1 = nl.addGate(GateType::And, {a, b});
  const NetId g2 = nl.addGate(GateType::And, {b, a});  // commutatively equal
  nl.addOutput("o", nl.addGate(GateType::Xor, {g1, g2}));
  const Netlist out = strash(nl);
  EXPECT_TRUE(verifyAllOutputs(out, nl));
  // XOR(x, x) = 0: everything folds to a constant.
  EXPECT_LE(out.countLiveGates(), 1u);
}

TEST(Strash, CancelsComplementPairs) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId na = nl.addGate(GateType::Not, {a});
  nl.addOutput("and0", nl.addGate(GateType::And, {a, na}));  // = 0
  nl.addOutput("or1", nl.addGate(GateType::Or, {a, na}));    // = 1
  const Netlist out = strash(nl);
  EXPECT_TRUE(verifyAllOutputs(out, nl));
  EXPECT_LE(out.countLiveGates(), 2u);  // just the two constants
}

TEST(Strash, IsIdempotent) {
  SpecCircuit sc = smallCircuit(77);
  const Netlist once = strash(sc.netlist);
  const Netlist twice = strash(once);
  EXPECT_EQ(once.countLiveGates(), twice.countLiveGates());
}

TEST(CollapseResynth, EliminatesInteriorSignals) {
  // A chain of single-fanout gates should collapse into one region,
  // destroying the interior nets' functions.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId c = nl.addInput("c");
  const NetId d = nl.addInput("d");
  const NetId t1 = nl.addGate(GateType::And, {a, b});
  const NetId t2 = nl.addGate(GateType::Or, {t1, c});
  const NetId t3 = nl.addGate(GateType::Xor, {t2, d});
  nl.addOutput("o", t3);
  Rng rng(3);
  const Netlist out = collapseResynth(nl, rng, /*chance=*/100);
  EXPECT_TRUE(verifyAllOutputs(out, nl));
  // The rebuilt circuit is mux-structured: no AND/OR/XOR chain remains in
  // the same shape (weak check: it is still correct and well-formed).
  EXPECT_TRUE(out.isWellFormed());
}

class BalanceSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BalanceSeeds, PreservesFunction) {
  SpecCircuit sc = smallCircuit(GetParam());
  const Netlist out = balance(sc.netlist);
  EXPECT_TRUE(out.isWellFormed());
  EXPECT_TRUE(verifyAllOutputs(out, sc.netlist));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BalanceSeeds,
                         ::testing::Values(2, 4, 6, 8));

TEST(Balance, FlattensChainsToLogDepth) {
  // A left-leaning AND chain over 16 leaves must become ~log-deep.
  Netlist nl;
  std::vector<NetId> leaves;
  for (int i = 0; i < 16; ++i)
    leaves.push_back(nl.addInput("x" + std::to_string(i)));
  NetId acc = leaves[0];
  for (int i = 1; i < 16; ++i)
    acc = nl.addGate(GateType::And, {acc, leaves[i]});
  nl.addOutput("o", acc);

  const auto depthOf = [](const Netlist& n) {
    const auto levels = n.netLevels();
    return levels[n.outputNet(0)];
  };
  EXPECT_EQ(depthOf(nl), 15u);
  const Netlist flat = balance(nl);
  EXPECT_TRUE(verifyAllOutputs(flat, nl));
  EXPECT_LE(depthOf(flat), 5u);
}

TEST(Balance, RespectsArrivalTimes) {
  // One late-arriving operand: it must end up near the root, keeping the
  // total depth at lateDepth + 1 instead of lateDepth + log(n).
  Netlist nl;
  NetId late = nl.addInput("late");
  for (int i = 0; i < 6; ++i) late = nl.addGate(GateType::Not, {late});
  std::vector<NetId> ops{late};
  for (int i = 0; i < 7; ++i)
    ops.push_back(nl.addInput("x" + std::to_string(i)));
  NetId acc = ops[0];
  for (std::size_t i = 1; i < ops.size(); ++i)
    acc = nl.addGate(GateType::Or, {acc, ops[i]});
  nl.addOutput("o", acc);
  const Netlist flat = balance(nl);
  EXPECT_TRUE(verifyAllOutputs(flat, nl));
  const auto levels = flat.netLevels();
  EXPECT_LE(levels[flat.outputNet(0)], 9u);  // 6 (late) + 3 (tree)
}

TEST(Restructure, DeterministicPerSeed) {
  SpecCircuit sc = smallCircuit(55);
  Rng r1(123), r2(123);
  const Netlist a = restructure(sc.netlist, r1);
  const Netlist b = restructure(sc.netlist, r2);
  EXPECT_EQ(a.countLiveGates(), b.countLiveGates());
  EXPECT_EQ(a.countLiveNets(), b.countLiveNets());
}

TEST(HeavyOptimize, CreatesStructuralDissimilarity) {
  // The pass must destroy most fine-grained internal equivalences: count
  // how many spec nets still have a structurally identical counterpart.
  SpecCircuit sc = smallCircuit(88);
  Rng rng(88);
  const Netlist impl = heavyOptimize(sc.netlist, rng, 3);
  const Netlist spec = lightSynth(sc.netlist);
  // Compare multisets of (gateType, level) as a crude structure probe:
  // heavy optimization should change the gate-type profile noticeably.
  auto typeProfile = [](const Netlist& nl) {
    std::array<std::size_t, 11> counts{};
    for (GateId g : nl.topoOrder())
      ++counts[static_cast<std::size_t>(nl.gate(g).type)];
    return counts;
  };
  const auto a = typeProfile(impl);
  const auto b = typeProfile(spec);
  std::size_t same = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += std::min(a[i], b[i]);
    total += std::max(a[i], b[i]);
  }
  EXPECT_LT(static_cast<double>(same) / static_cast<double>(total), 0.8);
}

}  // namespace
}  // namespace syseco
