// Netlist text format: round-trip fidelity and error reporting.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "gen/spec_builder.hpp"
#include "io/netlist_io.hpp"

namespace syseco {
namespace {

TEST(NetlistIo, RoundTripPreservesFunctionAndInterface) {
  Rng rng(4);
  SpecCircuit sc = buildSpec(SpecParams{2, 4, 2, 2, 4, 3, 2, 2}, rng);
  std::ostringstream os;
  writeNetlist(os, sc.netlist, "roundtrip");
  std::istringstream is(os.str());
  const Netlist back = readNetlist(is);
  EXPECT_EQ(back.numInputs(), sc.netlist.numInputs());
  EXPECT_EQ(back.numOutputs(), sc.netlist.numOutputs());
  for (std::uint32_t i = 0; i < back.numInputs(); ++i)
    EXPECT_EQ(back.inputName(i), sc.netlist.inputName(i));
  EXPECT_TRUE(verifyAllOutputs(back, sc.netlist));
}

TEST(NetlistIo, ParsesHandWrittenModel) {
  const char* text = R"(
.model adder1
.inputs a b cin
.outputs s cout
# full adder
.gate xor t0 a b
.gate xor s_net t0 cin
.gate and c1 a b
.gate and c2 t0 cin
.gate or cout_net c1 c2
.assign s s_net
.assign cout cout_net
.end
)";
  std::istringstream is(text);
  const Netlist nl = readNetlist(is);
  EXPECT_EQ(nl.numInputs(), 3u);
  EXPECT_EQ(nl.numOutputs(), 2u);
  // Full-adder truth check.
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b)
      for (int c = 0; c <= 1; ++c) {
        const auto out = evalOnce(nl, {static_cast<std::uint8_t>(a),
                                       static_cast<std::uint8_t>(b),
                                       static_cast<std::uint8_t>(c)});
        EXPECT_EQ(out[0], (a + b + c) & 1);
        EXPECT_EQ(out[1], (a + b + c) >= 2);
      }
}

TEST(NetlistIo, RejectsUnknownNet) {
  std::istringstream is(".inputs a\n.outputs o\n.gate not x bogus\n.end\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

TEST(NetlistIo, RejectsBadArity) {
  std::istringstream is(".inputs a b\n.outputs o\n.gate not x a b\n.end\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

TEST(NetlistIo, RejectsDuplicateName) {
  std::istringstream is(".inputs a a\n.outputs o\n.end\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

TEST(NetlistIo, RejectsMissingEnd) {
  std::istringstream is(".inputs a\n.outputs o\n.assign o a\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

TEST(NetlistIo, RejectsUnassignedOutput) {
  std::istringstream is(".inputs a\n.outputs o p\n.assign o a\n.end\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

TEST(NetlistIo, RejectsUnknownDirective) {
  std::istringstream is(".wires a\n.end\n");
  EXPECT_THROW(readNetlist(is), std::runtime_error);
}

}  // namespace
}  // namespace syseco
