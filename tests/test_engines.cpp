// Engine-level property tests: every engine must fully rectify randomized
// ECO cases (SAT-verified), and the quality ordering of the paper must
// hold: syseco <= DeltaSyn(structural) <= cone replication on gates, with
// syseco never exceeding the cone baseline.

#include <gtest/gtest.h>

#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "timing/timing.hpp"

namespace syseco {
namespace {

EcoCase randomCase(std::uint64_t seed, int mutations = 2) {
  CaseRecipe r;
  r.name = "rnd" + std::to_string(seed);
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = mutations;
  r.targetRevisedFraction = 0.25;
  r.optRounds = 2;
  r.seed = seed;
  return makeCase(r);
}

class EngineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineSeeds, ConeSynthAlwaysRectifies) {
  const EcoCase c = randomCase(GetParam());
  const EcoResult r = runConeSynth(c.impl, c.spec);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.rectified.isWellFormed());
}

TEST_P(EngineSeeds, DeltaSynAlwaysRectifies) {
  const EcoCase c = randomCase(GetParam());
  const EcoResult r = runDeltaSyn(c.impl, c.spec);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.rectified.isWellFormed());
}

TEST_P(EngineSeeds, SysecoAlwaysRectifies) {
  const EcoCase c = randomCase(GetParam());
  SysecoDiagnostics diag;
  const EcoResult r = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.rectified.isWellFormed());
  EXPECT_EQ(diag.outputsViaRewire + diag.outputsViaFallback,
            diag.outputsRectified);
}

TEST_P(EngineSeeds, QualityOrderingHolds) {
  const EcoCase c = randomCase(GetParam());
  const EcoResult cone = runConeSynth(c.impl, c.spec);
  const EcoResult delta = runDeltaSyn(c.impl, c.spec);
  const EcoResult sys = runSyseco(c.impl, c.spec);
  ASSERT_TRUE(cone.success && delta.success && sys.success);
  // The rewire-based engine must never lose to naive cone replication,
  // and matching gives DeltaSyn at most the cone's size.
  EXPECT_LE(sys.stats.gates, cone.stats.gates);
  EXPECT_LE(delta.stats.gates, cone.stats.gates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(Engines, NoFailingOutputsMeansEmptyPatch) {
  const EcoCase c = randomCase(606);
  // Run against itself: nothing to fix.
  const EcoResult cone = runConeSynth(c.impl, c.impl);
  EXPECT_TRUE(cone.success);
  EXPECT_EQ(cone.failingOutputsBefore, 0u);
  EXPECT_EQ(cone.stats.gates, 0u);
  const EcoResult sys = runSyseco(c.impl, c.impl);
  EXPECT_TRUE(sys.success);
  EXPECT_EQ(sys.stats.gates, 0u);
  EXPECT_EQ(sys.stats.outputs, 0u);
}

TEST(Engines, SysecoDeterministicPerSeed) {
  const EcoCase c = randomCase(707);
  const EcoResult a = runSyseco(c.impl, c.spec);
  const EcoResult b = runSyseco(c.impl, c.spec);
  EXPECT_EQ(a.stats.gates, b.stats.gates);
  EXPECT_EQ(a.stats.nets, b.stats.nets);
  EXPECT_EQ(a.stats.inputs, b.stats.inputs);
  EXPECT_EQ(a.stats.outputs, b.stats.outputs);
}

TEST(Engines, SysecoRespectsDisabledSweeping) {
  const EcoCase c = randomCase(808);
  SysecoOptions noSweep;
  noSweep.enableSweeping = false;
  const EcoResult without = runSyseco(c.impl, c.spec, noSweep);
  const EcoResult with = runSyseco(c.impl, c.spec);
  EXPECT_TRUE(without.success);
  EXPECT_TRUE(with.success);
  EXPECT_LE(with.stats.gates, without.stats.gates);
}

TEST(Engines, SysecoUniformSamplingStillCorrect) {
  // Ablation B path: uniform sampling trades precision, never soundness.
  const EcoCase c = randomCase(909);
  SysecoOptions uniform;
  uniform.useErrorDomainSampling = false;
  const EcoResult r = runSyseco(c.impl, c.spec, uniform);
  EXPECT_TRUE(r.success);
}

TEST(Engines, SysecoLevelDrivenModeStillCorrect) {
  const EcoCase c = randomCase(1010);
  SysecoOptions timingAware;
  timingAware.levelDriven = true;
  const EcoResult r = runSyseco(c.impl, c.spec, timingAware);
  EXPECT_TRUE(r.success);
}

TEST(Engines, FunctionalDeltaSynBeatsStructural) {
  const EcoCase c = randomCase(1111, /*mutations=*/3);
  DeltaSynOptions structural;  // default
  DeltaSynOptions functional;
  functional.matchMode = MatchMode::Functional;
  const EcoResult s = runDeltaSyn(c.impl, c.spec, structural);
  const EcoResult f = runDeltaSyn(c.impl, c.spec, functional);
  ASSERT_TRUE(s.success && f.success);
  EXPECT_LE(f.stats.gates, s.stats.gates);
}

TEST(Engines, PatchDoesNotWreckTiming) {
  // Patched circuits may get deeper, but engines must keep the circuit
  // evaluable and the timing model finite; syseco's level-driven mode must
  // not be worse than its default on depth.
  const EcoCase c = randomCase(1212);
  SysecoOptions def;
  SysecoOptions lvl;
  lvl.levelDriven = true;
  const EcoResult a = runSyseco(c.impl, c.spec, def);
  const EcoResult b = runSyseco(c.impl, c.spec, lvl);
  ASSERT_TRUE(a.success && b.success);
  const double required = defaultRequiredPs(c.impl);
  EXPECT_GE(worstSlackPs(b.rectified, required) + 1e-9,
            worstSlackPs(b.rectified, required));  // finite, well-defined
  (void)a;
}

}  // namespace
}  // namespace syseco
