// Unit tests for the netlist data model: construction, rewiring, topology,
// supports, cloning, well-formedness auditing.

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

Netlist makeHalfAdder() {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId sum = nl.addGate(GateType::Xor, {a, b});
  const NetId carry = nl.addGate(GateType::And, {a, b});
  nl.addOutput("sum", sum);
  nl.addOutput("carry", carry);
  return nl;
}

TEST(Netlist, BuildsWellFormedHalfAdder) {
  Netlist nl = makeHalfAdder();
  std::string why;
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
  EXPECT_EQ(nl.numInputs(), 2u);
  EXPECT_EQ(nl.numOutputs(), 2u);
  EXPECT_EQ(nl.countLiveGates(), 2u);
}

TEST(Netlist, EvalMatchesTruthTable) {
  Netlist nl = makeHalfAdder();
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const auto out = evalOnce(nl, {static_cast<std::uint8_t>(a),
                                     static_cast<std::uint8_t>(b)});
      EXPECT_EQ(out[0], a ^ b);
      EXPECT_EQ(out[1], a & b);
    }
  }
}

TEST(Netlist, GateArityIsEnforcedInEval) {
  // n-ary gates evaluate over all fanins.
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId c = nl.addInput("c");
  nl.addOutput("o", nl.addGate(GateType::And, {a, b, c}));
  EXPECT_EQ(evalOnce(nl, {1, 1, 1})[0], 1);
  EXPECT_EQ(evalOnce(nl, {1, 0, 1})[0], 0);
}

TEST(Netlist, RewireGatePinMovesSinkBookkeeping) {
  Netlist nl = makeHalfAdder();
  const NetId a = nl.inputNet(0);
  const NetId b = nl.inputNet(1);
  // The XOR gate drives output "sum"; find it.
  const GateId xorGate = nl.driverOf(nl.outputNet(0));
  ASSERT_NE(xorGate, kNullId);
  const std::size_t sinksOfABefore = nl.net(a).sinks.size();
  nl.rewireGatePin(xorGate, 1, a);  // sum becomes XOR(a, a) = 0
  EXPECT_TRUE(nl.isWellFormed());
  EXPECT_EQ(nl.net(a).sinks.size(), sinksOfABefore + 1);
  EXPECT_EQ(evalOnce(nl, {1, 1})[0], 0);
  EXPECT_EQ(evalOnce(nl, {1, 0})[0], 0);
  // b lost one sink.
  EXPECT_EQ(nl.net(b).sinks.size(), 1u);
}

TEST(Netlist, RewireOutputRedrives) {
  Netlist nl = makeHalfAdder();
  nl.rewireOutput(0, nl.outputNet(1));  // sum := carry
  EXPECT_TRUE(nl.isWellFormed());
  EXPECT_EQ(evalOnce(nl, {1, 1})[0], 1);
  EXPECT_EQ(evalOnce(nl, {1, 0})[0], 0);
}

TEST(Netlist, RewireToSameNetIsNoOp) {
  Netlist nl = makeHalfAdder();
  const GateId xorGate = nl.driverOf(nl.outputNet(0));
  const NetId b = nl.inputNet(1);
  const std::size_t before = nl.net(b).sinks.size();
  nl.rewireGatePin(xorGate, 1, b);
  EXPECT_EQ(nl.net(b).sinks.size(), before);
  EXPECT_TRUE(nl.isWellFormed());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  NetId cur = a;
  for (int i = 0; i < 20; ++i) cur = nl.addGate(GateType::Not, {cur});
  nl.addOutput("o", cur);
  const auto order = nl.topoOrder();
  ASSERT_EQ(order.size(), 20u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    // Each gate's fanin is the previous gate's output.
    EXPECT_EQ(nl.gate(order[i]).fanins[0], nl.gate(order[i - 1]).out);
  }
}

TEST(Netlist, SupportComputesTransitiveInputs) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId b = nl.addInput("b");
  const NetId c = nl.addInput("c");
  (void)c;
  const NetId g = nl.addGate(GateType::And, {a, b});
  nl.addOutput("o", g);
  const auto sup = nl.support(g);
  EXPECT_EQ(sup, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Netlist, SweepDeadLogicRemovesUnreachable) {
  Netlist nl = makeHalfAdder();
  const NetId a = nl.inputNet(0);
  nl.addGate(GateType::Not, {a});  // dangling
  EXPECT_EQ(nl.countLiveGates(), 3u);
  EXPECT_EQ(nl.sweepDeadLogic(), 1u);
  EXPECT_EQ(nl.countLiveGates(), 2u);
  EXPECT_TRUE(nl.isWellFormed());
}

TEST(Netlist, CloneConeCopiesFunction) {
  Netlist src = makeHalfAdder();
  Netlist dst;
  const NetId a = dst.addInput("a");
  const NetId b = dst.addInput("b");
  (void)a;
  (void)b;
  std::unordered_map<std::string, NetId> inputs{{"a", a}, {"b", b}};
  std::unordered_map<NetId, NetId> cache;
  const NetId sum = dst.cloneCone(src, src.outputNet(0), inputs, cache);
  const NetId carry = dst.cloneCone(src, src.outputNet(1), inputs, cache);
  dst.addOutput("sum", sum);
  dst.addOutput("carry", carry);
  EXPECT_TRUE(dst.isWellFormed());
  for (int x = 0; x <= 1; ++x) {
    for (int y = 0; y <= 1; ++y) {
      const InputPattern p{static_cast<std::uint8_t>(x),
                           static_cast<std::uint8_t>(y)};
      EXPECT_EQ(evalOnce(dst, p), evalOnce(src, p));
    }
  }
  // Shared cache reuses logic: 2 gates, not more.
  EXPECT_EQ(dst.countLiveGates(), 2u);
}

TEST(Netlist, LevelsAreUnitDelay) {
  Netlist nl;
  const NetId a = nl.addInput("a");
  const NetId n1 = nl.addGate(GateType::Not, {a});
  const NetId n2 = nl.addGate(GateType::Not, {n1});
  const NetId n3 = nl.addGate(GateType::And, {a, n2});
  nl.addOutput("o", n3);
  const auto levels = nl.netLevels();
  EXPECT_EQ(levels[a], 0u);
  EXPECT_EQ(levels[n1], 1u);
  EXPECT_EQ(levels[n2], 2u);
  EXPECT_EQ(levels[n3], 3u);
}

TEST(Netlist, FindersReturnNullForUnknownNames) {
  Netlist nl = makeHalfAdder();
  EXPECT_EQ(nl.findInput("nope"), kNullId);
  EXPECT_EQ(nl.findOutput("nope"), kNullId);
  EXPECT_EQ(nl.findInput("a"), 0u);
  EXPECT_EQ(nl.findOutput("carry"), 1u);
}

TEST(Netlist, MuxSemantics) {
  Netlist nl;
  const NetId s = nl.addInput("s");
  const NetId d0 = nl.addInput("d0");
  const NetId d1 = nl.addInput("d1");
  nl.addOutput("o", nl.addGate(GateType::Mux, {s, d0, d1}));
  EXPECT_EQ(evalOnce(nl, {0, 1, 0})[0], 1);  // sel=0 -> d0
  EXPECT_EQ(evalOnce(nl, {1, 1, 0})[0], 0);  // sel=1 -> d1
}

}  // namespace
}  // namespace syseco
