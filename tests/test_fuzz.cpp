// Structural fuzz tests: random sequences of mutating operations must
// never corrupt the data model's invariants, the optimization + engine
// pipeline must stay sound across diverse random cases, and the checked
// parsers must turn arbitrary garbage into a Status - never a crash.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "gen/spec_builder.hpp"
#include "io/blif_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "sim/simulator.hpp"
#include "util/fault.hpp"

namespace syseco {
namespace {

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, RandomRewiresKeepWellFormedness) {
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  Netlist nl = sc.netlist;

  int applied = 0;
  for (int step = 0; step < 200; ++step) {
    // Pick a random live gate pin and a random candidate driver.
    const auto topo = nl.topoOrder();
    if (topo.empty()) break;
    const GateId g = topo[rng.below(topo.size())];
    const auto& gate = nl.gate(g);
    if (gate.fanins.empty()) continue;
    const std::uint32_t port =
        static_cast<std::uint32_t>(rng.below(gate.fanins.size()));
    const NetId cand = static_cast<NetId>(rng.below(nl.numNetsTotal()));
    const auto& candNet = nl.net(cand);
    const bool driven =
        candNet.srcKind == Netlist::SourceKind::Input ||
        (candNet.srcKind == Netlist::SourceKind::Gate &&
         !nl.gate(candNet.srcIdx).dead);
    if (!driven) continue;
    // Cycle avoidance: candidate must not be reachable from g.
    bool reachable = false;
    {
      std::vector<NetId> stack{nl.gate(g).out};
      std::vector<char> seen(nl.numNetsTotal(), 0);
      while (!stack.empty() && !reachable) {
        const NetId n = stack.back();
        stack.pop_back();
        if (n == cand) {
          reachable = true;
          break;
        }
        if (seen[n]) continue;
        seen[n] = 1;
        for (const Sink& s : nl.net(n).sinks) {
          if (!s.isOutput()) stack.push_back(nl.gate(s.gate).out);
        }
      }
    }
    if (reachable) continue;
    nl.rewireGatePin(g, port, cand);
    ++applied;
    if (step % 20 == 0) {
      std::string why;
      ASSERT_TRUE(nl.isWellFormed(&why)) << why << " after step " << step;
    }
  }
  EXPECT_GT(applied, 10);
  std::string why;
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
  // Sweeping after arbitrary rewires must also preserve invariants.
  nl.sweepDeadLogic();
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(3, 14, 159, 2653, 58979));

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EndToEndSoundnessOnRandomRecipes) {
  // Random recipe dimensions, random mutation counts: whatever the
  // generator produces, the engine must return a SAT-verified result.
  Rng meta(GetParam());
  CaseRecipe r;
  r.name = "fuzz";
  r.spec = SpecParams{
      static_cast<std::uint32_t>(2 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(6)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(5)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(1 + meta.below(4))};
  r.mutations = static_cast<int>(1 + meta.below(4));
  r.targetRevisedFraction = 0.05 + meta.real() * 0.6;
  r.optRounds = static_cast<int>(1 + meta.below(3));
  r.seed = meta.next();
  const EcoCase c = makeCase(r);

  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  EXPECT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_TRUE(res.rectified.isWellFormed());
  // Patch accounting sanity: outputs never exceed total rewired sinks,
  // and a non-empty failing set implies a non-empty patch surface.
  if (res.failingOutputsBefore > 0) {
    EXPECT_GT(res.stats.outputs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Parser robustness ------------------------------------------------------

/// Runs one text through all three checked readers. The contract under
/// test: whatever the bytes, the parse returns (ok or a Status) instead of
/// crashing or aborting, and an accepted netlist is well-formed.
void parseEverywhere(const std::string& text) {
  {
    std::istringstream is(text);
    const Result<Netlist> r = readBlifChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
  {
    std::istringstream is(text);
    const Result<Netlist> r = readNetlistChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
  {
    std::istringstream is(text);
    const Result<Netlist> r = readVerilogChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
}

TEST(ParserFuzz, GarbageCorpusNeverCrashes) {
  const char* corpus[] = {
      "",
      "\n\n\n",
      "garbage",
      "garbage .blif\x01\x02\xff",
      ".model\n.end",
      ".model m\n.inputs a a\n.end",
      ".model m\n.outputs y y\n.names y\n1\n.end",
      ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",
      ".model m\n.names a b\n.names b a\n.end",  // cycle
      ".model m\n.inputs a\n.outputs y\n.latch a y\n.end",
      ".names x\n- -\n",
      ".model m\n.inputs a\n.outputs y\n.gate nosuch y a\n.end",
      ".model m\n.inputs a\n.outputs y\n.gate not y a\n"
      ".assign y n999\n.end",
      ".model m\n.inputs a\n.outputs y\n.gate not y a a a\n.end",
      ".model m\n.outputs y\n.assign y y\n.end",
      "module ; endmodule",
      "module m (a, a); endmodule",
      "module m (y); output y; endmodule",
      "module m (y); output y; assign y = nope; endmodule",
      "module m (a, y); input a; output y; assign y = ~; endmodule",
      "module m (a, y); input a; output y;\n"
      "  assign y = a ? a; endmodule",
      "module m (a, y); input a; output y;\n"
      "  assign y = a; assign y = a; endmodule",
      "module m (a, y); input a; output y; assign y = a & | a; endmodule",
      "module m (a, y); input a; output y; assign y = 1'b2; endmodule",
      "// only a comment",
      "\\  \n",
  };
  for (const char* text : corpus) parseEverywhere(text);
}

TEST(ParserFuzz, TruncatedValidFilesNeverCrash) {
  // Serialize a real design in all three formats, then feed every prefix
  // to every reader: truncation must yield a Status, not a crash.
  Rng rng(7);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  std::string texts[3];
  {
    std::ostringstream os;
    writeBlif(os, sc.netlist);
    texts[0] = os.str();
  }
  {
    std::ostringstream os;
    writeNetlist(os, sc.netlist);
    texts[1] = os.str();
  }
  {
    std::ostringstream os;
    writeVerilog(os, sc.netlist);
    texts[2] = os.str();
  }
  for (const std::string& text : texts) {
    for (std::size_t cut = 0; cut < text.size(); cut += 7)
      parseEverywhere(text.substr(0, cut));
    parseEverywhere(text);
  }
}

TEST(ParserFuzz, MutatedValidFilesNeverCrash) {
  Rng rng(99);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  std::ostringstream os;
  writeBlif(os, sc.netlist);
  const std::string base = os.str();
  for (int round = 0; round < 64; ++round) {
    std::string mutated = base;
    // A handful of random byte edits per round.
    for (int e = 0; e < 4; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    parseEverywhere(mutated);
  }
}

TEST(ParserFuzz, RoundTripsSurviveAllFormats) {
  // The readers must accept (and preserve the semantics of) everything the
  // writers emit - checked via a full write/read/write fixpoint per format.
  Rng rng(5);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  const Netlist& nl = sc.netlist;
  {
    std::ostringstream os;
    writeBlif(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readBlifChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
  {
    std::ostringstream os;
    writeNetlist(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readNetlistChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
  {
    std::ostringstream os;
    writeVerilog(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readVerilogChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
}

TEST(ParserFuzz, InjectedAllocFailureBecomesInternalStatus) {
  fault::Injector::instance().reset();
  fault::Injector::instance().arm("io.blif", fault::Kind::kAllocFailure);
  std::istringstream is(".model m\n.inputs a\n.outputs y\n"
                        ".names a y\n1 1\n.end\n");
  const Result<Netlist> r = readBlifChecked(is);
  fault::Injector::instance().reset();
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace syseco
