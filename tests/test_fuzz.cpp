// Structural fuzz tests: random sequences of mutating operations must
// never corrupt the data model's invariants, the optimization + engine
// pipeline must stay sound across diverse random cases, and the checked
// parsers must turn arbitrary garbage into a Status - never a crash.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cnf/encode.hpp"
#include "eco/isolate.hpp"
#include "eco/patch.hpp"
#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "gen/spec_builder.hpp"
#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "serve/batch.hpp"
#include "sim/simulator.hpp"
#include "util/fault.hpp"
#include "util/ipc.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, RandomRewiresKeepWellFormedness) {
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  Netlist nl = sc.netlist;

  int applied = 0;
  for (int step = 0; step < 200; ++step) {
    // Pick a random live gate pin and a random candidate driver.
    const auto topo = nl.topoOrder();
    if (topo.empty()) break;
    const GateId g = topo[rng.below(topo.size())];
    const auto& gate = nl.gate(g);
    if (gate.fanins.empty()) continue;
    const std::uint32_t port =
        static_cast<std::uint32_t>(rng.below(gate.fanins.size()));
    const NetId cand = static_cast<NetId>(rng.below(nl.numNetsTotal()));
    const auto& candNet = nl.net(cand);
    const bool driven =
        candNet.srcKind == Netlist::SourceKind::Input ||
        (candNet.srcKind == Netlist::SourceKind::Gate &&
         !nl.gate(candNet.srcIdx).dead);
    if (!driven) continue;
    // Cycle avoidance: candidate must not be reachable from g.
    bool reachable = false;
    {
      std::vector<NetId> stack{nl.gate(g).out};
      std::vector<char> seen(nl.numNetsTotal(), 0);
      while (!stack.empty() && !reachable) {
        const NetId n = stack.back();
        stack.pop_back();
        if (n == cand) {
          reachable = true;
          break;
        }
        if (seen[n]) continue;
        seen[n] = 1;
        for (const Sink& s : nl.net(n).sinks) {
          if (!s.isOutput()) stack.push_back(nl.gate(s.gate).out);
        }
      }
    }
    if (reachable) continue;
    nl.rewireGatePin(g, port, cand);
    ++applied;
    if (step % 20 == 0) {
      std::string why;
      ASSERT_TRUE(nl.isWellFormed(&why)) << why << " after step " << step;
    }
  }
  EXPECT_GT(applied, 10);
  std::string why;
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
  // Sweeping after arbitrary rewires must also preserve invariants.
  nl.sweepDeadLogic();
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(3, 14, 159, 2653, 58979));

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EndToEndSoundnessOnRandomRecipes) {
  // Random recipe dimensions, random mutation counts: whatever the
  // generator produces, the engine must return a SAT-verified result.
  Rng meta(GetParam());
  CaseRecipe r;
  r.name = "fuzz";
  r.spec = SpecParams{
      static_cast<std::uint32_t>(2 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(6)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(5)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(1 + meta.below(4))};
  r.mutations = static_cast<int>(1 + meta.below(4));
  r.targetRevisedFraction = 0.05 + meta.real() * 0.6;
  r.optRounds = static_cast<int>(1 + meta.below(3));
  r.seed = meta.next();
  const EcoCase c = makeCase(r);

  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  EXPECT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_TRUE(res.rectified.isWellFormed());
  // Patch accounting sanity: outputs never exceed total rewired sinks,
  // and a non-empty failing set implies a non-empty patch surface.
  if (res.failingOutputsBefore > 0) {
    EXPECT_GT(res.stats.outputs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Parser robustness ------------------------------------------------------

/// Runs one text through all three checked readers. The contract under
/// test: whatever the bytes, the parse returns (ok or a Status) instead of
/// crashing or aborting, and an accepted netlist is well-formed.
void parseEverywhere(const std::string& text) {
  {
    std::istringstream is(text);
    const Result<Netlist> r = readBlifChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
  {
    std::istringstream is(text);
    const Result<Netlist> r = readNetlistChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
  {
    std::istringstream is(text);
    const Result<Netlist> r = readVerilogChecked(is);
    if (r.isOk()) {
      EXPECT_TRUE(r.value().isWellFormed());
    }
  }
}

TEST(ParserFuzz, GarbageCorpusNeverCrashes) {
  const char* corpus[] = {
      "",
      "\n\n\n",
      "garbage",
      "garbage .blif\x01\x02\xff",
      ".model\n.end",
      ".model m\n.inputs a a\n.end",
      ".model m\n.outputs y y\n.names y\n1\n.end",
      ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end",
      ".model m\n.names a b\n.names b a\n.end",  // cycle
      ".model m\n.inputs a\n.outputs y\n.latch a y\n.end",
      ".names x\n- -\n",
      ".model m\n.inputs a\n.outputs y\n.gate nosuch y a\n.end",
      ".model m\n.inputs a\n.outputs y\n.gate not y a\n"
      ".assign y n999\n.end",
      ".model m\n.inputs a\n.outputs y\n.gate not y a a a\n.end",
      ".model m\n.outputs y\n.assign y y\n.end",
      "module ; endmodule",
      "module m (a, a); endmodule",
      "module m (y); output y; endmodule",
      "module m (y); output y; assign y = nope; endmodule",
      "module m (a, y); input a; output y; assign y = ~; endmodule",
      "module m (a, y); input a; output y;\n"
      "  assign y = a ? a; endmodule",
      "module m (a, y); input a; output y;\n"
      "  assign y = a; assign y = a; endmodule",
      "module m (a, y); input a; output y; assign y = a & | a; endmodule",
      "module m (a, y); input a; output y; assign y = 1'b2; endmodule",
      "// only a comment",
      "\\  \n",
  };
  for (const char* text : corpus) parseEverywhere(text);
}

TEST(ParserFuzz, TruncatedValidFilesNeverCrash) {
  // Serialize a real design in all three formats, then feed every prefix
  // to every reader: truncation must yield a Status, not a crash.
  Rng rng(7);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  std::string texts[3];
  {
    std::ostringstream os;
    writeBlif(os, sc.netlist);
    texts[0] = os.str();
  }
  {
    std::ostringstream os;
    writeNetlist(os, sc.netlist);
    texts[1] = os.str();
  }
  {
    std::ostringstream os;
    writeVerilog(os, sc.netlist);
    texts[2] = os.str();
  }
  for (const std::string& text : texts) {
    for (std::size_t cut = 0; cut < text.size(); cut += 7)
      parseEverywhere(text.substr(0, cut));
    parseEverywhere(text);
  }
}

TEST(ParserFuzz, MutatedValidFilesNeverCrash) {
  Rng rng(99);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  std::ostringstream os;
  writeBlif(os, sc.netlist);
  const std::string base = os.str();
  for (int round = 0; round < 64; ++round) {
    std::string mutated = base;
    // A handful of random byte edits per round.
    for (int e = 0; e < 4; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    parseEverywhere(mutated);
  }
}

// --- IPC frame decoder robustness -------------------------------------------

/// The contract under test: whatever bytes a (possibly crashed, killed or
/// hostile) worker left in the pipe, decoding yields a Frame or a Status -
/// never UB, an abort, or an attacker-sized allocation. An accepted frame's
/// payload must additionally survive the semantic decoders the supervisor
/// runs next, again without UB.
void decodeIpcEverywhere(const std::string& bytes, const Netlist& base) {
  const Result<ipc::Frame> frame = ipc::decodeFrame(bytes);
  if (!frame.isOk()) return;
  (void)decodeTaskRequest(frame.value().payload);
  (void)decodeWorkerPatch(frame.value().payload, base);
}

TEST(IpcFuzz, TruncatedFramesNeverCrash) {
  Rng rng(31);
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  const Netlist& base = sc.netlist;
  WorkerPatch patch;
  patch.produced = false;
  patch.baseGates = base.numGatesTotal();
  patch.baseNets = base.numNetsTotal();
  const std::string frames[] = {
      ipc::encodeFrame(ipc::kTypeTaskRequest,
                       encodeTaskRequest(IsolateTaskRequest{2, 1})),
      ipc::encodeFrame(ipc::kTypeWorkerResult, encodeWorkerPatch(patch)),
  };
  for (const std::string& ref : frames) {
    for (std::size_t cut = 0; cut <= ref.size(); ++cut)
      decodeIpcEverywhere(ref.substr(0, cut), base);
  }
}

TEST(IpcFuzz, BitFlippedFramesNeverCrashOrSneakPastTheChecksum) {
  Rng rng(32);
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  const Netlist& base = sc.netlist;
  WorkerPatch patch;
  patch.produced = false;
  patch.baseGates = base.numGatesTotal();
  patch.baseNets = base.numNetsTotal();
  const std::string ref =
      ipc::encodeFrame(ipc::kTypeWorkerResult, encodeWorkerPatch(patch));
  for (std::size_t byte = 0; byte < ref.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = ref;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      decodeIpcEverywhere(mutated, base);
      // A flip anywhere in the payload must be caught by the crc; flips
      // confined to the header can only be accepted if they leave the
      // payload untouched.
      const Result<ipc::Frame> frame = ipc::decodeFrame(mutated);
      if (frame.isOk() && byte >= ipc::kHeaderBytes) {
        ADD_FAILURE() << "payload flip at byte " << byte << " bit " << bit
                      << " passed the checksum";
      }
    }
  }
}

TEST(IpcFuzz, OversizedAndRandomGarbageNeverCrash) {
  Rng rng(33);
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  const Netlist& base = sc.netlist;

  // Length fields sweeping past the sanity cap: reject before allocating.
  for (std::uint32_t len : {ipc::kMaxPayloadBytes + 1, 0x7fffffffu,
                            0xffffffffu}) {
    std::string bytes = ipc::encodeFrame(ipc::kTypeWorkerResult, "p");
    for (int i = 0; i < 4; ++i)
      bytes[8 + i] = static_cast<char>((len >> (8 * i)) & 0xff);
    EXPECT_FALSE(ipc::decodeFrame(bytes).isOk()) << "length " << len;
  }

  // Pure random garbage, with and without a valid magic prefix.
  for (int round = 0; round < 256; ++round) {
    std::string bytes(rng.below(96), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    decodeIpcEverywhere(bytes, base);
    if (bytes.size() >= 4) {
      bytes[0] = 'S';
      bytes[1] = 'E';
      bytes[2] = 'F';
      bytes[3] = '1';
      decodeIpcEverywhere(bytes, base);
    }
  }

  // Valid frames around hostile JSON payloads: the semantic decoders must
  // classify, never abort.
  const char* payloads[] = {
      "",
      "{}",
      "[]",
      "null",
      "{\"produced\":true}",
      "{\"output\":4294967295,\"attempt\":-9}",
      "{\"produced\":true,\"base_gates\":0,\"base_nets\":0,"
      "\"gates\":[[99,0]],\"rewires\":[],\"counters\":[0,0,0,0,0,0,0],"
      "\"seconds\":[0,0,0,0,0]}",
      "{\"produced\":true,\"base_gates\":18446744073709551615,"
      "\"base_nets\":0,\"gates\":[],\"rewires\":[],"
      "\"counters\":[0,0,0,0,0,0,0],\"seconds\":[0,0,0,0,0]}",
  };
  for (const char* payload : payloads) {
    decodeIpcEverywhere(ipc::encodeFrame(ipc::kTypeTaskRequest, payload),
                        base);
    decodeIpcEverywhere(ipc::encodeFrame(ipc::kTypeWorkerResult, payload),
                        base);
  }
}

// --- Case-dispatch and batch-ledger codec robustness ------------------------
// The whole-case batch protocol adds two frame payloads (case task, case
// result) and two text formats (batch manifest, ledger WAL event). All of
// them take bytes from the network or from user files: every decode must
// fail closed - a Status, never UB, an abort, or an attacker-sized
// allocation.

void decodeCaseDispatchEverywhere(const std::string& bytes) {
  const Result<ipc::Frame> frame = ipc::decodeFrame(bytes);
  if (!frame.isOk()) return;
  (void)decodeFleetCaseTask(frame.value().payload);
  (void)decodeFleetCaseResult(frame.value().payload);
}

TEST(IpcFuzz, TruncatedCaseDispatchFramesNeverCrash) {
  FleetCaseTask task;
  task.name = "fuzz-case";
  task.caseCrc = 0x12345678;
  task.epoch = 99;
  FleetCaseResult result;
  result.epoch = 99;
  result.report = "{\"success\": true}";
  result.verdicts = "{\"type\":\"verdicts\",\"disagreements\":0}";
  result.netlist = std::string(512, 'n');
  const std::string frames[] = {
      ipc::encodeFrame(ipc::kTypeFleetCaseTask, encodeFleetCaseTask(task)),
      ipc::encodeFrame(ipc::kTypeFleetCaseResult,
                       encodeFleetCaseResult(result)),
  };
  for (const std::string& ref : frames)
    for (std::size_t cut = 0; cut <= ref.size(); ++cut)
      decodeCaseDispatchEverywhere(ref.substr(0, cut));
}

TEST(IpcFuzz, BitFlippedCaseDispatchFramesNeverCrash) {
  Rng rng(34);
  FleetCaseResult result;
  result.report = "{}";
  result.netlist = "snapshot";
  const std::string ref = ipc::encodeFrame(ipc::kTypeFleetCaseResult,
                                           encodeFleetCaseResult(result));
  for (std::size_t byte = 0; byte < ref.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = ref;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      decodeCaseDispatchEverywhere(mutated);
    }
  }
}

TEST(IpcFuzz, HostileCaseDispatchPayloadsFailClosed) {
  // Hand-built payloads covering hostile names, oversized embedded texts
  // and boundary forgeries; each must be a clean rejection.
  const std::string oversized(static_cast<std::size_t>(4u << 20) + 1, 'x');
  const std::string payloads[] = {
      "",
      "{}",
      "null",
      "[]",
      // path-escaping and hidden case names
      "{\"name\":\"../../etc\",\"case_crc\":0,\"epoch\":\"1\","
      "\"lease_seconds\":1,\"jobs\":1,\"attempt\":1}",
      "{\"name\":\".hidden\",\"case_crc\":0,\"epoch\":\"1\","
      "\"lease_seconds\":1,\"jobs\":1,\"attempt\":1}",
      "{\"name\":\"" + std::string(65, 'a') + "\",\"case_crc\":0,"
      "\"epoch\":\"1\",\"lease_seconds\":1,\"jobs\":1,\"attempt\":1}",
      // absurd lease / jobs / attempt
      "{\"name\":\"x\",\"case_crc\":0,\"epoch\":\"1\","
      "\"lease_seconds\":-5,\"jobs\":1,\"attempt\":1}",
      "{\"name\":\"x\",\"case_crc\":0,\"epoch\":\"1\","
      "\"lease_seconds\":1,\"jobs\":4294967295,\"attempt\":1}",
      "{\"name\":\"x\",\"case_crc\":0,\"epoch\":\"1\","
      "\"lease_seconds\":1,\"jobs\":1,\"attempt\":-3}",
      // result envelopes: non-JSON report, newline verdicts, huge texts
      "{\"epoch\":\"1\",\"exit_code\":0,\"report\":\"nope\","
      "\"verdicts\":\"\",\"netlist\":\"\",\"cache_hits\":0,"
      "\"cache_misses\":0,\"cache_evictions\":0}",
      "{\"epoch\":\"1\",\"exit_code\":0,\"report\":\"{}\","
      "\"verdicts\":\"{\\\"type\\\":\\\"verdicts\\\"}\\n{}\","
      "\"netlist\":\"\",\"cache_hits\":0,\"cache_misses\":0,"
      "\"cache_evictions\":0}",
      "{\"epoch\":\"1\",\"exit_code\":999,\"report\":\"{}\","
      "\"verdicts\":\"\",\"netlist\":\"\",\"cache_hits\":0,"
      "\"cache_misses\":0,\"cache_evictions\":0}",
      "{\"epoch\":\"1\",\"exit_code\":0,\"report\":\"" + oversized +
      "\",\"verdicts\":\"\",\"netlist\":\"\",\"cache_hits\":0,"
      "\"cache_misses\":0,\"cache_evictions\":0}",
  };
  for (const std::string& payload : payloads) {
    EXPECT_FALSE(decodeFleetCaseTask(payload).isOk());
    EXPECT_FALSE(decodeFleetCaseResult(payload).isOk());
  }
  // Random garbage straight into the semantic decoders.
  Rng rng(35);
  for (int round = 0; round < 128; ++round) {
    std::string bytes(rng.below(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    (void)decodeFleetCaseTask(bytes);
    (void)decodeFleetCaseResult(bytes);
  }
}

TEST(ParserFuzz, HostileBatchManifestsAndLedgerEventsFailClosed) {
  Rng rng(36);
  // Structured near-misses.
  const char* corpus[] = {
      "",
      "null",
      "{\"cases\": 7}",
      "{\"cases\": [7]}",
      "{\"cases\": [{\"name\": 7, \"impl\": \"i\", \"spec\": \"s\"}]}",
      "{\"cases\": [{\"name\": \"a\", \"impl\": \"i\", \"spec\": \"s\","
      " \"seed\": \"lots\"}]}",
      "{\"cases\": [{\"name\": \"a\\u0000b\", \"impl\": \"i\","
      " \"spec\": \"s\"}]}",
      "{\"type\":\"batch\"}",
      "{\"type\":\"batch\",\"event\":\"done\"}",
      "{\"type\":\"output\",\"event\":\"done\",\"name\":\"a\"}",
  };
  for (const char* text : corpus) {
    EXPECT_FALSE(serve::parseBatchManifest(text).isOk()) << text;
    (void)parseBatchEvent(text);
  }
  // A valid ledger event, bit-flipped: parse must classify, never crash.
  JournalBatchEvent e;
  e.event = "dispatched";
  e.name = "a";
  e.impl = "i";
  e.spec = "s";
  const std::string ref = serializeBatchEvent(e);
  for (int round = 0; round < 128; ++round) {
    std::string mutated = ref;
    for (int edit = 0; edit < 3; ++edit) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = static_cast<char>(rng.below(256));
    }
    (void)parseBatchEvent(mutated);
  }
  // Random garbage through the manifest parser.
  for (int round = 0; round < 128; ++round) {
    std::string bytes(rng.below(160), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.below(256));
    (void)serve::parseBatchManifest(bytes);
  }
}

TEST(ParserFuzz, RoundTripsSurviveAllFormats) {
  // The readers must accept (and preserve the semantics of) everything the
  // writers emit - checked via a full write/read/write fixpoint per format.
  Rng rng(5);
  SpecCircuit sc = buildSpec(SpecParams{2, 6, 3, 2, 4, 3, 2, 2}, rng);
  const Netlist& nl = sc.netlist;
  {
    std::ostringstream os;
    writeBlif(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readBlifChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
  {
    std::ostringstream os;
    writeNetlist(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readNetlistChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
  {
    std::ostringstream os;
    writeVerilog(os, nl);
    std::istringstream is(os.str());
    const Result<Netlist> r = readVerilogChecked(is);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_EQ(r.value().numOutputs(), nl.numOutputs());
  }
}

TEST(ParserFuzz, InjectedAllocFailureBecomesInternalStatus) {
  fault::Injector::instance().reset();
  fault::Injector::instance().arm("io.blif", fault::Kind::kAllocFailure);
  std::istringstream is(".model m\n.inputs a\n.outputs y\n"
                        ".names a y\n1 1\n.end\n");
  const Result<Netlist> r = readBlifChecked(is);
  fault::Injector::instance().reset();
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

// --- Journal corruption corpus --------------------------------------------
// Resume must survive arbitrary journal damage: readJournal never crashes,
// prepareResume never crashes, and nothing a corrupt record claims is ever
// certified - every adopted output is proven by a fresh SAT miter.

class JournalFuzz : public ::testing::Test {
 protected:
  static std::string dir() {
    // Per-process root: ctest runs each test as its own process, possibly
    // in parallel, and they must not rm -rf each other's working files.
    static const std::string d = [] {
      const std::string d = ::testing::TempDir() + "syseco_journal_fuzz_" +
                            std::to_string(::getpid());
      const std::string cmd = "rm -rf '" + d + "' && mkdir -p '" + d + "'";
      EXPECT_EQ(std::system(cmd.c_str()), 0);
      return d;
    }();
    return d;
  }

  static const Netlist& impl() {
    static const Netlist nl =
        loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
    return nl;
  }
  static const Netlist& spec() {
    static const Netlist nl =
        loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
    return nl;
  }

  /// A real journal from an interrupted run (run_start + 2 output records),
  /// built once; each test mutates a private copy of its bytes.
  static const std::string& pristine() {
    static const std::string bytes = [] {
      Result<JournalWriter> w = JournalWriter::create(dir() + "/pristine");
      EXPECT_TRUE(w.isOk());
      std::size_t seen = 0;
      SysecoOptions opt;
      opt.planHook = [&](const std::vector<std::uint32_t>& order,
                         std::size_t failingBefore) {
        EXPECT_TRUE(w.value()
                        .append(serializeRunStart(makeRunStartRecord(
                            impl(), spec(), opt, order, failingBefore)))
                        .isOk());
      };
      opt.checkpointHook = [&](const RunCheckpoint& cp) {
        EXPECT_TRUE(
            w.value().append(serializeOutputRecord(makeOutputRecord(cp))).isOk());
        return ++seen < 2;
      };
      runSyseco(impl(), spec(), opt);
      std::ifstream f(journalDataPath(dir() + "/pristine"),
                      std::ios::binary);
      std::ostringstream os;
      os << f.rdbuf();
      return os.str();
    }();
    return bytes;
  }

  /// Writes `bytes` as a journal and drives the full resume path. Asserts
  /// the invariant, not any particular diagnosis: no crash, and every
  /// adopted output independently re-proven against the specification.
  static void resumeNeverLies(const std::string& bytes,
                              const std::string& name) {
    const std::string d = dir() + "/" + name;
    const std::string cmd = "rm -rf '" + d + "' && mkdir -p '" + d + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ofstream(journalDataPath(d), std::ios::binary) << bytes;

    Result<JournalContents> contents = readJournal(d);
    ASSERT_TRUE(contents.isOk());
    Result<ResumeOutcome> prepared =
        prepareResume(impl(), spec(), SysecoOptions{}, contents.value());
    if (!prepared.isOk()) return;  // stale-journal rejection is a fine answer
    const ResumeOutcome& out = prepared.value();
    if (!out.adopted) return;
    EXPECT_TRUE(out.netlist.isWellFormed());
    PairEncoding pe(out.netlist, spec());
    Rng rng(0xfu);
    for (std::uint32_t o : out.certified) {
      ASSERT_LT(o, out.netlist.numOutputs());
      const std::uint32_t op = spec().findOutput(out.netlist.outputName(o));
      ASSERT_NE(op, kNullId);
      EXPECT_EQ(pe.solveDiffSwept(o, op, -1, rng), Solver::Result::Unsat)
          << "resume certified output " << o << " from a corrupt journal";
    }
  }
};

TEST_F(JournalFuzz, GarbageJournalsNeverCrashResume) {
  const char* corpus[] = {
      "",
      "\n\n\n",
      "garbage\n",
      "J1\n",
      "J1 zzzzzzzz zzzzzzzz {}\n",
      "J1 00000002 00000000 {}\n",            // wrong checksum
      "J1 ffffffff 00000000 {}\n",            // absurd length
      "J1 00000002 d4b334a3 {}\n",            // right crc, junk after
      "J1 00000013 deadbeef {\"type\":\"output\"}\n",
      "\x00\x01\x02\xff\xfe",
      "J1 00000004 9be3e0a3 null\n",          // valid frame, non-object JSON
  };
  int i = 0;
  for (const char* text : corpus)
    resumeNeverLies(text, "garbage" + std::to_string(i++));
}

TEST_F(JournalFuzz, TruncatedJournalsNeverCrashResume) {
  const std::string& base = pristine();
  ASSERT_FALSE(base.empty());
  // Cut everywhere near frame boundaries and at coarse steps in between.
  std::vector<std::size_t> cuts;
  for (std::size_t pos = 0; pos < base.size(); pos += 97) cuts.push_back(pos);
  for (std::size_t pos = base.find('\n'); pos != std::string::npos;
       pos = base.find('\n', pos + 1)) {
    cuts.push_back(pos);
    cuts.push_back(pos + 1);
  }
  int i = 0;
  for (std::size_t cut : cuts)
    resumeNeverLies(base.substr(0, cut), "trunc" + std::to_string(i++));
}

TEST_F(JournalFuzz, BitFlippedJournalsNeverCertifyCorruptPatches) {
  const std::string& base = pristine();
  Rng rng(0xf1a6);
  for (int round = 0; round < 48; ++round) {
    std::string mutated = base;
    for (int e = 0; e < 3; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] ^= static_cast<char>(1u << rng.below(8));
    }
    resumeNeverLies(mutated, "flip" + std::to_string(round));
  }
}

TEST_F(JournalFuzz, DuplicateAndReorderedRecordsNeverCrashResume) {
  const std::string& base = pristine();
  std::vector<std::string> lines;
  std::istringstream in(base);
  for (std::string line; std::getline(in, line);) lines.push_back(line + "\n");
  ASSERT_GE(lines.size(), 3u);  // run_start + 2 outputs

  const auto join = [](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) out += l;
    return out;
  };
  // Duplicate the newest output record.
  resumeNeverLies(join({lines[0], lines[1], lines[2], lines[2]}), "dup");
  // Duplicate the run_start (second one must be dropped, not believed).
  resumeNeverLies(join({lines[0], lines[0], lines[1], lines[2]}), "dupstart");
  // Output records before any run_start.
  resumeNeverLies(join({lines[1], lines[2], lines[0]}), "reordered");
  // Only output records, no run_start at all.
  resumeNeverLies(join({lines[1], lines[2]}), "headless");
  // Stale older record after the journal restarts from scratch.
  resumeNeverLies(join({lines[2], lines[0], lines[1]}), "restart");
}

TEST_F(JournalFuzz, ForgedDuplicateReportsAreDemoted) {
  // A record claiming the same output twice in its cumulative list is
  // structurally inadmissible regardless of its checksum.
  pristine();  // materialize the journal (tests run in separate processes)
  Result<JournalContents> contents = readJournal(dir() + "/pristine");
  ASSERT_TRUE(contents.isOk());
  ASSERT_EQ(contents.value().outputs.size(), 2u);
  JournalOutputRecord forged = contents.value().outputs.back();
  forged.reports.push_back(forged.reports.back());

  const std::string d = dir() + "/forgeddup";
  ASSERT_EQ(std::system(("mkdir -p '" + d + "'").c_str()), 0);
  Result<JournalWriter> w = JournalWriter::create(d);
  ASSERT_TRUE(w.isOk());
  ASSERT_TRUE(
      w.value()
          .append(serializeRunStart(contents.value().runStart))
          .isOk());
  ASSERT_TRUE(w.value().append(serializeOutputRecord(forged)).isOk());

  Result<JournalContents> reread = readJournal(d);
  ASSERT_TRUE(reread.isOk());
  Result<ResumeOutcome> prepared =
      prepareResume(impl(), spec(), SysecoOptions{}, reread.value());
  ASSERT_TRUE(prepared.isOk());
  EXPECT_FALSE(prepared.value().adopted);
  EXPECT_EQ(prepared.value().demotedRecords, 1u);
  bool noted = false;
  for (const std::string& n : prepared.value().notes)
    noted |= n.find("duplicate") != std::string::npos;
  EXPECT_TRUE(noted);
}

}  // namespace
}  // namespace syseco
