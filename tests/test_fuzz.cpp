// Structural fuzz tests: random sequences of mutating operations must
// never corrupt the data model's invariants, and the optimization +
// engine pipeline must stay sound across diverse random cases.

#include <gtest/gtest.h>

#include "cnf/encode.hpp"
#include "eco/patch.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "gen/spec_builder.hpp"
#include "sim/simulator.hpp"

namespace syseco {
namespace {

class NetlistFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistFuzz, RandomRewiresKeepWellFormedness) {
  Rng rng(GetParam());
  SpecCircuit sc = buildSpec(SpecParams{2, 5, 3, 2, 4, 3, 2, 2}, rng);
  Netlist nl = sc.netlist;

  int applied = 0;
  for (int step = 0; step < 200; ++step) {
    // Pick a random live gate pin and a random candidate driver.
    const auto topo = nl.topoOrder();
    if (topo.empty()) break;
    const GateId g = topo[rng.below(topo.size())];
    const auto& gate = nl.gate(g);
    if (gate.fanins.empty()) continue;
    const std::uint32_t port =
        static_cast<std::uint32_t>(rng.below(gate.fanins.size()));
    const NetId cand = static_cast<NetId>(rng.below(nl.numNetsTotal()));
    const auto& candNet = nl.net(cand);
    const bool driven =
        candNet.srcKind == Netlist::SourceKind::Input ||
        (candNet.srcKind == Netlist::SourceKind::Gate &&
         !nl.gate(candNet.srcIdx).dead);
    if (!driven) continue;
    // Cycle avoidance: candidate must not be reachable from g.
    bool reachable = false;
    {
      std::vector<NetId> stack{nl.gate(g).out};
      std::vector<char> seen(nl.numNetsTotal(), 0);
      while (!stack.empty() && !reachable) {
        const NetId n = stack.back();
        stack.pop_back();
        if (n == cand) {
          reachable = true;
          break;
        }
        if (seen[n]) continue;
        seen[n] = 1;
        for (const Sink& s : nl.net(n).sinks) {
          if (!s.isOutput()) stack.push_back(nl.gate(s.gate).out);
        }
      }
    }
    if (reachable) continue;
    nl.rewireGatePin(g, port, cand);
    ++applied;
    if (step % 20 == 0) {
      std::string why;
      ASSERT_TRUE(nl.isWellFormed(&why)) << why << " after step " << step;
    }
  }
  EXPECT_GT(applied, 10);
  std::string why;
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
  // Sweeping after arbitrary rewires must also preserve invariants.
  nl.sweepDeadLogic();
  EXPECT_TRUE(nl.isWellFormed(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistFuzz,
                         ::testing::Values(3, 14, 159, 2653, 58979));

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EndToEndSoundnessOnRandomRecipes) {
  // Random recipe dimensions, random mutation counts: whatever the
  // generator produces, the engine must return a SAT-verified result.
  Rng meta(GetParam());
  CaseRecipe r;
  r.name = "fuzz";
  r.spec = SpecParams{
      static_cast<std::uint32_t>(2 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(6)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(3 + meta.below(5)),
      static_cast<std::uint32_t>(2 + meta.below(4)),
      static_cast<std::uint32_t>(1 + meta.below(3)),
      static_cast<std::uint32_t>(1 + meta.below(4))};
  r.mutations = static_cast<int>(1 + meta.below(4));
  r.targetRevisedFraction = 0.05 + meta.real() * 0.6;
  r.optRounds = static_cast<int>(1 + meta.below(3));
  r.seed = meta.next();
  const EcoCase c = makeCase(r);

  SysecoDiagnostics diag;
  const EcoResult res = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  EXPECT_TRUE(res.success) << "seed " << GetParam();
  EXPECT_TRUE(res.rectified.isWellFormed());
  // Patch accounting sanity: outputs never exceed total rewired sinks,
  // and a non-empty failing set implies a non-empty patch surface.
  if (res.failingOutputsBefore > 0) {
    EXPECT_GT(res.stats.outputs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace syseco
