// Exact single-point rectification baseline tests.

#include <gtest/gtest.h>

#include "eco/exactfix.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"

namespace syseco {
namespace {

TEST(ExactFix, SolvesSingleGateChangeExactly) {
  // impl: o = a AND b; spec: o = a OR b. The output pin is always feasible
  // and the interval collapses to f' itself: a two-cube cover.
  Netlist impl;
  {
    const NetId a = impl.addInput("a");
    const NetId b = impl.addInput("b");
    impl.addOutput("o", impl.addGate(GateType::And, {a, b}));
  }
  Netlist spec;
  {
    const NetId a = spec.addInput("a");
    const NetId b = spec.addInput("b");
    spec.addOutput("o", spec.addGate(GateType::Or, {a, b}));
  }
  ExactFixDiagnostics diag;
  const EcoResult r = runExactFix(impl, spec, ExactFixOptions{}, &diag);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(diag.outputsViaExactFix, 1u);
  EXPECT_EQ(diag.outputsViaFallback, 0u);
  EXPECT_GT(diag.coverCubes, 0u);
}

TEST(ExactFix, ProtectsSharedLogicViaValidation) {
  // Two outputs share net t = a AND b; only "o" is revised. A naive
  // single-point fix at a shared pin would break "keep"; the engine must
  // end up with a valid overall patch nonetheless.
  Netlist impl;
  {
    const NetId a = impl.addInput("a");
    const NetId b = impl.addInput("b");
    const NetId c = impl.addInput("c");
    const NetId t = impl.addGate(GateType::And, {a, b});
    impl.addOutput("o", impl.addGate(GateType::Or, {t, c}));
    impl.addOutput("keep", impl.addGate(GateType::Xor, {t, c}));
  }
  Netlist spec;
  {
    const NetId a = spec.addInput("a");
    const NetId b = spec.addInput("b");
    const NetId c = spec.addInput("c");
    const NetId t = spec.addGate(GateType::Nand, {a, b});  // revised
    spec.addOutput("o", spec.addGate(GateType::Or, {t, c}));
    const NetId t2 = spec.addGate(GateType::And, {a, b});
    spec.addOutput("keep", spec.addGate(GateType::Xor, {t2, c}));
  }
  const EcoResult r = runExactFix(impl, spec);
  EXPECT_TRUE(r.success);
}

class ExactFixSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactFixSeeds, RectifiesGeneratedCases) {
  CaseRecipe r;
  r.name = "xf";
  r.spec = SpecParams{2, 5, 3, 2, 4, 3, 2, 2};
  r.mutations = 2;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = GetParam();
  const EcoCase c = makeCase(r);
  ExactFixDiagnostics diag;
  const EcoResult res = runExactFix(c.impl, c.spec, ExactFixOptions{}, &diag);
  EXPECT_TRUE(res.success);
  EXPECT_TRUE(res.rectified.isWellFormed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactFixSeeds,
                         ::testing::Values(11, 22, 33, 44));

TEST(ExactFix, FallsBackOnWideSupport) {
  // Force a tiny support limit: everything must go through the fallback
  // and still verify.
  CaseRecipe r;
  r.name = "xf-wide";
  r.spec = SpecParams{2, 5, 3, 2, 4, 3, 2, 2};
  r.mutations = 1;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 1;
  r.seed = 55;
  const EcoCase c = makeCase(r);
  ExactFixOptions opt;
  opt.maxSupport = 1;
  ExactFixDiagnostics diag;
  const EcoResult res = runExactFix(c.impl, c.spec, opt, &diag);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(diag.outputsViaExactFix, 0u);
  EXPECT_GT(diag.outputsViaFallback, 0u);
}

TEST(ExactFix, SysecoBeatsOrMatchesExactFixOnGates) {
  // The paper's thesis applied to this baseline: reusing existing nets
  // beats synthesizing fresh two-level logic.
  CaseRecipe r;
  r.name = "xf-vs";
  r.spec = SpecParams{3, 6, 3, 2, 5, 4, 3, 3};
  r.mutations = 2;
  r.targetRevisedFraction = 0.25;
  r.optRounds = 2;
  r.seed = 66;
  const EcoCase c = makeCase(r);
  const EcoResult xf = runExactFix(c.impl, c.spec);
  const EcoResult sys = runSyseco(c.impl, c.spec);
  ASSERT_TRUE(xf.success && sys.success);
  EXPECT_LE(sys.stats.gates, xf.stats.gates);
}

}  // namespace
}  // namespace syseco
