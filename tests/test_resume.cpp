// Checkpoint/resume: an interrupted or crashed run, resumed from its
// journal, must converge to the same final result as an uninterrupted run -
// and a journal that cannot be independently re-certified must be demoted
// to redo, never silently trusted.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "util/fault.hpp"
#include "util/journal.hpp"

#ifndef SYSECO_SOURCE_DIR
#define SYSECO_SOURCE_DIR "."
#endif

namespace syseco {
namespace {

std::string testDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "syseco_resume_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

Netlist aluImpl() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_impl.blif");
}
Netlist aluSpec() {
  return loadBlif(std::string(SYSECO_SOURCE_DIR) + "/data/alu_spec.blif");
}

/// Reports match when everything except wall-clock timing matches.
void expectSameReports(const std::vector<OutputReport>& got,
                       const std::vector<OutputReport>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].output, want[i].output) << "report " << i;
    EXPECT_EQ(got[i].name, want[i].name) << "report " << i;
    EXPECT_EQ(got[i].status, want[i].status) << "report " << i;
    EXPECT_EQ(got[i].limit, want[i].limit) << "report " << i;
    EXPECT_EQ(got[i].conflictsUsed, want[i].conflictsUsed) << "report " << i;
    EXPECT_EQ(got[i].bddNodesUsed, want[i].bddNodesUsed) << "report " << i;
    EXPECT_EQ(got[i].degradeSteps, want[i].degradeSteps) << "report " << i;
  }
}

/// Runs to completion without interruption; the reference every resumed
/// run must converge to.
struct Reference {
  EcoResult result;
  SysecoDiagnostics diag;
  std::string rectifiedDump;
};

Reference uninterruptedRun(const Netlist& impl, const Netlist& spec) {
  Reference ref;
  ref.result = runSyseco(impl, spec, SysecoOptions{}, &ref.diag);
  ref.rectifiedDump = ref.result.rectified.dumpRawString();
  return ref;
}

/// Runs with journaling hooks, stopping cleanly after `stopAfter` fresh
/// checkpoints (0 = never stop). Returns the interrupted diagnostics.
SysecoDiagnostics journaledRun(const Netlist& impl, const Netlist& spec,
                               const std::string& dir, std::size_t stopAfter,
                               const ResumePlan* plan = nullptr,
                               bool freshJournal = true) {
  Result<JournalWriter> w =
      freshJournal ? JournalWriter::create(dir) : [&] {
        Result<JournalScan> scan = scanJournal(dir);
        EXPECT_TRUE(scan.isOk());
        return JournalWriter::resume(dir, scan.value());
      }();
  EXPECT_TRUE(w.isOk());
  std::size_t fresh = 0;
  SysecoOptions opt;
  opt.resumePlan = plan;
  opt.planHook = [&](const std::vector<std::uint32_t>& order,
                     std::size_t failingBefore) {
    EXPECT_TRUE(w.value()
                    .append(serializeRunStart(makeRunStartRecord(
                        impl, spec, opt, order, failingBefore)))
                    .isOk());
  };
  opt.checkpointHook = [&](const RunCheckpoint& cp) {
    EXPECT_TRUE(
        w.value().append(serializeOutputRecord(makeOutputRecord(cp))).isOk());
    ++fresh;
    return stopAfter == 0 || fresh < stopAfter;
  };
  SysecoDiagnostics diag;
  runSyseco(impl, spec, opt, &diag);
  return diag;
}

TEST(ResumeTest, InterruptAfterEveryPrefixConvergesToTheSameResult) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const Reference ref = uninterruptedRun(impl, spec);
  ASSERT_TRUE(ref.result.success);
  ASSERT_GE(ref.diag.outputs.size(), 3u);

  for (std::size_t stopAfter = 1; stopAfter < ref.diag.outputs.size();
       ++stopAfter) {
    SCOPED_TRACE("interrupted after " + std::to_string(stopAfter));
    const std::string dir =
        testDir("prefix" + std::to_string(stopAfter));

    const SysecoDiagnostics interrupted =
        journaledRun(impl, spec, dir, stopAfter);
    EXPECT_TRUE(interrupted.interrupted);
    EXPECT_EQ(interrupted.outputs.size(), stopAfter);

    Result<JournalContents> contents = readJournal(dir);
    ASSERT_TRUE(contents.isOk());
    Result<ResumeOutcome> prepared =
        prepareResume(impl, spec, SysecoOptions{}, contents.value());
    ASSERT_TRUE(prepared.isOk()) << prepared.status().toString();
    const ResumeOutcome& outcome = prepared.value();
    ASSERT_TRUE(outcome.adopted);
    EXPECT_EQ(outcome.certified.size(), stopAfter);
    EXPECT_EQ(outcome.demotedRecords, 0u);

    // Resume: the engine re-enters the cascade only for the remainder.
    SysecoOptions opt;
    opt.resumePlan = &outcome.plan;
    SysecoDiagnostics diag;
    const EcoResult res = runSyseco(outcome.netlist, spec, opt, &diag);

    ASSERT_TRUE(res.success);
    EXPECT_FALSE(diag.interrupted);
    EXPECT_EQ(res.rectified.dumpRawString(), ref.rectifiedDump)
        << "resumed run did not converge to the uninterrupted netlist";
    EXPECT_EQ(res.failingOutputsBefore, ref.result.failingOutputsBefore);
    EXPECT_EQ(res.stats.gates, ref.result.stats.gates);
    EXPECT_EQ(res.stats.inputs, ref.result.stats.inputs);
    EXPECT_EQ(diag.conflictsUsed, ref.diag.conflictsUsed);
    EXPECT_EQ(diag.bddNodesUsed, ref.diag.bddNodesUsed);
    EXPECT_EQ(diag.sweepMerges, ref.diag.sweepMerges);
    expectSameReports(diag.outputs, ref.diag.outputs);
  }
}

TEST(ResumeTest, ResumedRunCanItselfBeInterruptedAndResumed) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const Reference ref = uninterruptedRun(impl, spec);
  ASSERT_GE(ref.diag.outputs.size(), 3u);
  const std::string dir = testDir("chained");

  // Crash after 1, resume, crash after 1 more, resume to the end.
  journaledRun(impl, spec, dir, 1);
  for (int round = 0; round < 2; ++round) {
    Result<JournalContents> contents = readJournal(dir);
    ASSERT_TRUE(contents.isOk());
    Result<ResumeOutcome> prepared =
        prepareResume(impl, spec, SysecoOptions{}, contents.value());
    ASSERT_TRUE(prepared.isOk());
    ASSERT_TRUE(prepared.value().adopted);
    const std::size_t stopAfter = round == 0 ? 1 : 0;
    const SysecoDiagnostics diag =
        journaledRun(prepared.value().netlist, spec, dir, stopAfter,
                     &prepared.value().plan, /*freshJournal=*/false);
    if (round == 1) {
      EXPECT_FALSE(diag.interrupted);
      expectSameReports(diag.outputs, ref.diag.outputs);
    }
  }
}

TEST(ResumeTest, TamperedSnapshotIsDemotedNeverCertified) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const std::string dir = testDir("tampered");
  journaledRun(impl, spec, dir, 2);

  // Forge a record whose frame checksums fine and whose snapshot passes
  // every structural check - same counts, valid ids - but whose claimed
  // output was quietly rewired to the wrong function. Only the independent
  // SAT re-certification can catch this one.
  Result<JournalContents> contents = readJournal(dir);
  ASSERT_TRUE(contents.isOk());
  ASSERT_EQ(contents.value().outputs.size(), 2u);
  JournalOutputRecord forged = contents.value().outputs.back();
  {
    Result<Netlist> restored = Netlist::restoreRawString(forged.netlistDump);
    ASSERT_TRUE(restored.isOk());
    Netlist n = restored.take();
    const std::uint32_t victim = forged.report.output;
    n.rewireOutput(victim,
                   n.outputNet((victim + 1) % n.numOutputs()));
    forged.netlistDump = n.dumpRawString();
  }
  {
    Result<JournalScan> scan = scanJournal(dir);
    ASSERT_TRUE(scan.isOk());
    Result<JournalWriter> w = JournalWriter::resume(dir, scan.value());
    ASSERT_TRUE(w.isOk());
    ASSERT_TRUE(w.value().append(serializeOutputRecord(forged)).isOk());
  }

  Result<JournalContents> reread = readJournal(dir);
  ASSERT_TRUE(reread.isOk());
  Result<ResumeOutcome> prepared =
      prepareResume(impl, spec, SysecoOptions{}, reread.value());
  ASSERT_TRUE(prepared.isOk());
  const ResumeOutcome& outcome = prepared.value();
  // The forged (newest) record was demoted with a diagnostic; the honest
  // one behind it was adopted.
  EXPECT_EQ(outcome.demotedRecords, 1u);
  bool demotionNoted = false;
  for (const std::string& note : outcome.notes)
    demotionNoted |= note.find("re-certification") != std::string::npos;
  EXPECT_TRUE(demotionNoted);
  ASSERT_TRUE(outcome.adopted);
  EXPECT_EQ(outcome.certified.size(), 2u);
}

TEST(ResumeTest, BitFlippedRecordIsDemotedToRedoWithDiagnostic) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const std::string dir = testDir("bitflip");
  journaledRun(impl, spec, dir, 2);

  // Flip one bit inside the newest record's frame.
  const std::string path = journalDataPath(dir);
  std::string data = slurp(path);
  const std::size_t lastLine = data.rfind("\nJ1 ");
  ASSERT_NE(lastLine, std::string::npos);
  data[lastLine + 40] ^= 0x01;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;

  Result<JournalContents> contents = readJournal(dir);
  ASSERT_TRUE(contents.isOk());
  bool dropNoted = false;
  for (const std::string& d : contents.value().diagnostics)
    dropNoted |= d.find("record dropped") != std::string::npos;
  EXPECT_TRUE(dropNoted);

  // Resume falls back to the older intact checkpoint: one output certified,
  // nothing from the corrupt record believed.
  Result<ResumeOutcome> prepared =
      prepareResume(impl, spec, SysecoOptions{}, contents.value());
  ASSERT_TRUE(prepared.isOk());
  ASSERT_TRUE(prepared.value().adopted);
  EXPECT_EQ(prepared.value().certified.size(), 1u);
}

TEST(ResumeTest, StaleJournalIsRejectedAsInvalidInput) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const std::string dir = testDir("stale");
  journaledRun(impl, spec, dir, 1);
  Result<JournalContents> contents = readJournal(dir);
  ASSERT_TRUE(contents.isOk());

  {  // seed changed
    SysecoOptions other;
    other.seed = 99;
    Result<ResumeOutcome> r = prepareResume(impl, spec, other, contents.value());
    ASSERT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
    EXPECT_NE(r.status().message().find("seed"), std::string::npos);
  }
  {  // search options changed
    SysecoOptions other;
    other.numSamples = 32;
    Result<ResumeOutcome> r = prepareResume(impl, spec, other, contents.value());
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("options"), std::string::npos);
  }
  {  // different netlists
    Result<ResumeOutcome> r =
        prepareResume(spec, spec, SysecoOptions{}, contents.value());
    ASSERT_FALSE(r.isOk());
    EXPECT_NE(r.status().message().find("netlist"), std::string::npos);
  }
}

TEST(ResumeTest, JournalWithoutRunStartDemotesEverything) {
  const Netlist impl = aluImpl(), spec = aluSpec();
  const std::string dir = testDir("norunstart");
  journaledRun(impl, spec, dir, 1);

  // Surgically remove the run_start line (the first frame).
  const std::string path = journalDataPath(dir);
  const std::string data = slurp(path);
  const std::size_t eol = data.find('\n');
  ASSERT_NE(eol, std::string::npos);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << data.substr(eol + 1);

  Result<JournalContents> contents = readJournal(dir);
  ASSERT_TRUE(contents.isOk());
  EXPECT_FALSE(contents.value().hasRunStart);
  Result<ResumeOutcome> prepared =
      prepareResume(impl, spec, SysecoOptions{}, contents.value());
  ASSERT_TRUE(prepared.isOk());
  EXPECT_FALSE(prepared.value().adopted);
  EXPECT_EQ(prepared.value().demotedRecords, 1u);
}

// --- End-to-end through the CLI binary ------------------------------------

#ifdef SYSECO_CLI_BIN

class ResumeCliTest : public ::testing::Test {
 protected:
  static std::string dataPath(const char* name) {
    return std::string(SYSECO_SOURCE_DIR) + "/data/" + name;
  }

  /// Runs the CLI via the shell; returns its exit code.
  static int runCli(const std::string& env, const std::string& args,
                    const std::string& logPath) {
    const std::string cmd = env + (env.empty() ? "" : " ") + SYSECO_CLI_BIN +
                            " " + args + " > '" + logPath + "' 2>&1";
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
  }

  /// Strips wall-clock timing from a report so two runs can be compared
  /// byte-for-byte on everything that must be deterministic.
  static std::string normalizeReport(std::string text) {
    std::ostringstream out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"phase_cpu_seconds\"") != std::string::npos) continue;
      std::size_t pos = 0;
      while ((pos = line.find("seconds\": ", pos)) != std::string::npos) {
        pos += 10;
        std::size_t end = pos;
        while (end < line.size() && line[end] != ',' && line[end] != '}' &&
               line[end] != '\n')
          ++end;
        line.replace(pos, end - pos, "T");
      }
      out << line << '\n';
    }
    return out.str();
  }
};

TEST_F(ResumeCliTest, CrashInjectedRunResumesToTheSameReport) {
  const std::string dir = testDir("cli_crash");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string base = "--impl " + dataPath("alu_impl.blif") +
                           " --spec " + dataPath("alu_spec.blif");

  // Reference: one uninterrupted run.
  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json",
                   dir + "/ref.log"),
            0);

  // Crash (simulated kill -9) after each successive checkpoint commits,
  // resuming after every crash; the chain must converge to the reference.
  ASSERT_EQ(runCli("SYSECO_FAULT_INJECT='journal.checkpoint=crash'",
                   base + " --journal " + dir + "/j", dir + "/crash0.log"),
            fault::kCrashExitCode);
  for (int round = 1;; ++round) {
    const std::string log = dir + "/resume" + std::to_string(round) + ".log";
    const int rc = runCli(
        "SYSECO_FAULT_INJECT='journal.checkpoint=crash@1'",
        base + " --resume " + dir + "/j --report " + dir + "/resumed.json",
        log);
    if (rc == fault::kCrashExitCode) {
      ASSERT_LT(round, 16) << "resume chain never finished";
      continue;
    }
    ASSERT_EQ(rc, 0) << slurp(log);
    EXPECT_NE(slurp(log).find("re-certified"), std::string::npos);
    break;
  }
  EXPECT_EQ(normalizeReport(slurp(dir + "/resumed.json")),
            normalizeReport(slurp(dir + "/ref.json")));
}

TEST_F(ResumeCliTest, CorruptJournalIsNeverSilentlyCertified) {
  const std::string dir = testDir("cli_corrupt");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string base = "--impl " + dataPath("alu_impl.blif") +
                           " --spec " + dataPath("alu_spec.blif");
  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json",
                   dir + "/ref.log"),
            0);
  ASSERT_EQ(runCli("SYSECO_FAULT_INJECT='journal.checkpoint=crash@1'",
                   base + " --journal " + dir + "/j", dir + "/crash.log"),
            fault::kCrashExitCode);

  // Flip one bit in the newest committed record.
  const std::string path = journalDataPath(dir + "/j");
  std::string data = slurp(path);
  const std::size_t lastLine = data.rfind("\nJ1 ");
  ASSERT_NE(lastLine, std::string::npos);
  data[lastLine + 60] ^= 0x20;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;

  const int rc = runCli(
      "", base + " --resume " + dir + "/j --report " + dir + "/resumed.json",
      dir + "/resume.log");
  ASSERT_EQ(rc, 0) << slurp(dir + "/resume.log");
  // The corruption was diagnosed...
  EXPECT_NE(slurp(dir + "/resume.log").find("dropped"), std::string::npos);
  // ...and the final result is still the reference result.
  EXPECT_EQ(normalizeReport(slurp(dir + "/resumed.json")),
            normalizeReport(slurp(dir + "/ref.json")));
}

TEST_F(ResumeCliTest, SigintJournalsProgressAndExits130) {
  const std::string dir = testDir("cli_sigint");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);

  // A case slow enough that SIGINT lands mid-run.
  CaseRecipe r;
  r.name = "sigint";
  r.spec = SpecParams{4, 8, 4, 3, 6, 4, 3, 3};
  r.mutations = 3;
  r.targetRevisedFraction = 0.6;
  r.optRounds = 3;
  r.seed = 21;
  const EcoCase c = makeCase(r);
  saveBlif(dir + "/impl.blif", c.impl);
  saveBlif(dir + "/spec.blif", c.spec);
  const std::string base =
      "--impl " + dir + "/impl.blif --spec " + dir + "/spec.blif";

  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json",
                   dir + "/ref.log"),
            0);
  const int rc = runCli(
      "timeout --preserve-status -s INT -k 120 0.2",
      base + " --journal " + dir + "/j", dir + "/int.log");
  if (rc == 0) GTEST_SKIP() << "run finished before the signal landed";
  ASSERT_EQ(rc, 130) << slurp(dir + "/int.log");
  EXPECT_NE(slurp(dir + "/int.log").find("interrupted"), std::string::npos);

  ASSERT_EQ(runCli("", base + " --resume " + dir + "/j --report " + dir +
                           "/resumed.json",
                   dir + "/resume.log"),
            0)
      << slurp(dir + "/resume.log");
  EXPECT_EQ(normalizeReport(slurp(dir + "/resumed.json")),
            normalizeReport(slurp(dir + "/ref.json")));
}

TEST_F(ResumeCliTest, SigtermMidIsolatedRunResumesBitIdentically) {
  const std::string dir = testDir("cli_sigterm_isolate");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);

  // A case slow enough that SIGTERM lands while worker subprocesses are
  // still in flight.
  CaseRecipe r;
  r.name = "sigterm_isolate";
  r.spec = SpecParams{4, 8, 4, 3, 6, 4, 3, 3};
  r.mutations = 3;
  r.targetRevisedFraction = 0.6;
  r.optRounds = 3;
  r.seed = 21;
  const EcoCase c = makeCase(r);
  saveBlif(dir + "/impl.blif", c.impl);
  saveBlif(dir + "/spec.blif", c.spec);
  const std::string base = "--impl " + dir + "/impl.blif --spec " + dir +
                           "/spec.blif --isolate --jobs 2";

  // Reference: one uninterrupted isolated run.
  ASSERT_EQ(runCli("", base + " --report " + dir + "/ref.json",
                   dir + "/ref.log"),
            0)
      << slurp(dir + "/ref.log");

  // SIGTERM mid-run: the supervisor finishes the in-flight commit, journals
  // a clean interrupted record, kills its workers and exits 130.
  const int rc = runCli("timeout --preserve-status -s TERM -k 120 0.2",
                        base + " --journal " + dir + "/j", dir + "/term.log");
  if (rc == 0) GTEST_SKIP() << "run finished before the signal landed";
  ASSERT_EQ(rc, 130) << slurp(dir + "/term.log");
  EXPECT_NE(slurp(dir + "/term.log").find("interrupted"), std::string::npos);

  // Resuming (still isolated) completes to the reference, byte for byte.
  ASSERT_EQ(runCli("", base + " --resume " + dir + "/j --report " + dir +
                           "/resumed.json",
                   dir + "/resume.log"),
            0)
      << slurp(dir + "/resume.log");
  EXPECT_EQ(normalizeReport(slurp(dir + "/resumed.json")),
            normalizeReport(slurp(dir + "/ref.json")));
}

#endif  // SYSECO_CLI_BIN

}  // namespace
}  // namespace syseco
