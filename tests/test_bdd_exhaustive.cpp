// Exhaustive BDD correctness over every 3-variable function: canonicity,
// operator tables, quantifier identities, ISOP exactness, satcount. 256
// functions cover the whole space, so these are proofs by enumeration.

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"

namespace syseco {
namespace {

class BddAll3VarFunctions : public ::testing::Test {
 protected:
  Bdd mgr{3};

  Bdd::Ref fromTT(std::uint32_t tt) {
    return mgr.fromTruthTable({tt}, {0, 1, 2});
  }
  std::uint32_t toTT(Bdd::Ref f) {
    std::uint32_t tt = 0;
    for (std::uint32_t m = 0; m < 8; ++m) {
      std::vector<std::uint8_t> a{static_cast<std::uint8_t>(m & 1),
                                  static_cast<std::uint8_t>((m >> 1) & 1),
                                  static_cast<std::uint8_t>((m >> 2) & 1)};
      if (mgr.eval(f, a)) tt |= 1u << m;
    }
    return tt;
  }
};

TEST_F(BddAll3VarFunctions, ImportExportRoundTrip) {
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    EXPECT_EQ(toTT(fromTT(tt)), tt) << "tt " << tt;
  }
}

TEST_F(BddAll3VarFunctions, CanonicityIsExact) {
  // Same function -> same node, different functions -> different nodes.
  std::vector<Bdd::Ref> refs;
  for (std::uint32_t tt = 0; tt < 256; ++tt) refs.push_back(fromTT(tt));
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    EXPECT_EQ(fromTT(tt), refs[tt]);
    for (std::uint32_t uu = tt + 1; uu < 256; ++uu)
      ASSERT_NE(refs[tt], refs[uu]);
  }
}

TEST_F(BddAll3VarFunctions, BinaryOperatorsMatchTruthTables) {
  for (std::uint32_t a = 0; a < 256; a += 7) {    // strided full coverage
    for (std::uint32_t b = 0; b < 256; b += 11) {
      const Bdd::Ref fa = fromTT(a), fb = fromTT(b);
      EXPECT_EQ(toTT(mgr.bAnd(fa, fb)), a & b);
      EXPECT_EQ(toTT(mgr.bOr(fa, fb)), a | b);
      EXPECT_EQ(toTT(mgr.bXor(fa, fb)), (a ^ b) & 0xFF);
      EXPECT_EQ(toTT(mgr.bImp(fa, fb)), (~a | b) & 0xFF);
    }
  }
}

TEST_F(BddAll3VarFunctions, SatCountEqualsPopcount) {
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    EXPECT_DOUBLE_EQ(mgr.satCount(fromTT(tt)),
                     static_cast<double>(__builtin_popcount(tt)));
  }
}

TEST_F(BddAll3VarFunctions, QuantifiersMatchDefinitionEverywhere) {
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    const Bdd::Ref f = fromTT(tt);
    for (std::uint32_t v = 0; v < 3; ++v) {
      const std::uint32_t lo = [&] {  // cofactor tt | v=0
        std::uint32_t r = 0;
        for (std::uint32_t m = 0; m < 8; ++m)
          if ((tt >> (m & ~(1u << v))) & 1) r |= 1u << m;
        return r;
      }();
      const std::uint32_t hi = [&] {
        std::uint32_t r = 0;
        for (std::uint32_t m = 0; m < 8; ++m)
          if ((tt >> (m | (1u << v))) & 1) r |= 1u << m;
        return r;
      }();
      EXPECT_EQ(toTT(mgr.exists(f, {v})), lo | hi) << tt << " v" << v;
      EXPECT_EQ(toTT(mgr.forall(f, {v})), lo & hi) << tt << " v" << v;
    }
  }
}

TEST_F(BddAll3VarFunctions, IsopReconstructsEveryFunction) {
  for (std::uint32_t tt = 0; tt < 256; ++tt) {
    const Bdd::Ref f = fromTT(tt);
    Bdd::Ref cover = Bdd::kFalse;
    for (const BddCube& c : mgr.isop(f)) {
      Bdd::Ref cube = Bdd::kTrue;
      for (std::uint32_t v = 0; v < 3; ++v) {
        if (c.lits[v] == 1) cube = mgr.bAnd(cube, mgr.var(v));
        if (c.lits[v] == 0) cube = mgr.bAnd(cube, mgr.nvar(v));
      }
      cover = mgr.bOr(cover, cube);
    }
    EXPECT_EQ(cover, f) << "tt " << tt;
  }
}

TEST_F(BddAll3VarFunctions, ComposeMatchesSubstitution) {
  for (std::uint32_t a = 0; a < 256; a += 13) {
    for (std::uint32_t g = 0; g < 256; g += 17) {
      const Bdd::Ref fa = fromTT(a), fg = fromTT(g);
      for (std::uint32_t v = 0; v < 3; ++v) {
        const Bdd::Ref composed = mgr.compose(fa, v, fg);
        for (std::uint32_t m = 0; m < 8; ++m) {
          std::vector<std::uint8_t> asg{
              static_cast<std::uint8_t>(m & 1),
              static_cast<std::uint8_t>((m >> 1) & 1),
              static_cast<std::uint8_t>((m >> 2) & 1)};
          auto sub = asg;
          sub[v] = mgr.eval(fg, asg) ? 1 : 0;
          EXPECT_EQ(mgr.eval(composed, asg), mgr.eval(fa, sub));
        }
      }
    }
  }
}

}  // namespace
}  // namespace syseco
