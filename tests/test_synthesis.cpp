// Rectification-function synthesis tests: when the needed rectification
// function exists in neither C nor C' as a net, the engine can synthesize
// a small algebraic combination of existing nets.

#include <gtest/gtest.h>

#include "eco/syseco.hpp"
#include "netlist/netlist.hpp"

namespace syseco {
namespace {

/// Implementation: out_i = w_i AND p. Revision: out_i = w_i AND p AND q,
/// but the spec is synthesized as (w_i AND p) AND q, so neither circuit
/// contains a net computing "p AND q". The minimal rewiring fix is to move
/// the gating pins from p to a synthesized AND(p, q).
constexpr int kWidth = 6;

Netlist buildImpl() {
  Netlist nl;
  const NetId p = nl.addInput("p");
  const NetId q = nl.addInput("q");
  (void)q;
  for (int i = 0; i < kWidth; ++i) {
    const NetId w = nl.addInput("w" + std::to_string(i));
    nl.addOutput("out" + std::to_string(i),
                 nl.addGate(GateType::And, {w, p}));
  }
  // p also feeds a protected output that must keep using plain p.
  nl.addOutput("keep", nl.addGate(GateType::Buf, {p}));
  return nl;
}

Netlist buildSpecCircuit() {
  Netlist nl;
  const NetId p = nl.addInput("p");
  const NetId q = nl.addInput("q");
  for (int i = 0; i < kWidth; ++i) {
    const NetId w = nl.addInput("w" + std::to_string(i));
    const NetId wp = nl.addGate(GateType::And, {w, p});
    nl.addOutput("out" + std::to_string(i),
                 nl.addGate(GateType::And, {wp, q}));
  }
  nl.addOutput("keep", nl.addGate(GateType::Buf, {p}));
  return nl;
}

TEST(Synthesis, RecoversMissingConditionFunction) {
  const Netlist impl = buildImpl();
  const Netlist spec = buildSpecCircuit();
  SysecoOptions opt;
  SysecoDiagnostics diag;
  const EcoResult r = runSyseco(impl, spec, opt, &diag);
  ASSERT_TRUE(r.success);
  // One synthesized AND (p AND q) suffices: a 1-2 gate patch rewiring the
  // gating pins, without cloning per-output spec logic.
  EXPECT_LE(r.stats.gates, 2u);
  EXPECT_GT(diag.outputsViaRewire, 0u);
}

TEST(Synthesis, DisabledModeStillCorrect) {
  const Netlist impl = buildImpl();
  const Netlist spec = buildSpecCircuit();
  SysecoOptions opt;
  opt.synthesizeFunctions = false;
  const EcoResult off = runSyseco(impl, spec, opt);
  ASSERT_TRUE(off.success);
  const EcoResult on = runSyseco(impl, spec);
  ASSERT_TRUE(on.success);
  EXPECT_LE(on.stats.gates, off.stats.gates);
}

TEST(Synthesis, ProtectedSinkIsPreserved) {
  const Netlist impl = buildImpl();
  const Netlist spec = buildSpecCircuit();
  const EcoResult r = runSyseco(impl, spec);
  ASSERT_TRUE(r.success);
  // "keep" must still be plain p: driving net of output "keep" is the
  // input net p (possibly via the original buffer).
  const std::uint32_t keep = r.rectified.findOutput("keep");
  ASSERT_NE(keep, kNullId);
  NetId n = r.rectified.outputNet(keep);
  const GateId g = r.rectified.driverOf(n);
  ASSERT_NE(g, kNullId);
  EXPECT_EQ(r.rectified.gate(g).type, GateType::Buf);
  EXPECT_TRUE(r.rectified.isInputNet(r.rectified.gate(g).fanins[0]));
}

}  // namespace
}  // namespace syseco
