// End-to-end smoke: generator -> engines -> verified rectification.

#include <gtest/gtest.h>

#include "cnf/encode.hpp"
#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/syseco.hpp"
#include "gen/eco_case.hpp"
#include "opt/passes.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

CaseRecipe tinyRecipe(std::uint64_t seed) {
  CaseRecipe r;
  r.name = "tiny";
  r.spec = SpecParams{2, 4, 2, 2, 3, 2, 2, 2};
  r.mutations = 1;
  r.targetRevisedFraction = 0.3;
  r.optRounds = 2;
  r.seed = seed;
  return r;
}

TEST(Integration, GeneratedCaseHasRealErrors) {
  const EcoCase c = makeCase(tinyRecipe(5));
  Rng rng(1);
  const auto failing = findFailingOutputs(c.impl, c.spec, rng);
  EXPECT_FALSE(failing.empty());
  EXPECT_GT(c.designerEstimateGates, 0u);
}

TEST(Integration, HeavyOptimizePreservesFunction) {
  const CaseRecipe r = tinyRecipe(6);
  Rng rng(r.seed);
  SpecCircuit sc = buildSpec(r.spec, rng);
  Netlist opt = heavyOptimize(sc.netlist, rng, 2);
  EXPECT_TRUE(verifyAllOutputs(opt, lightSynth(sc.netlist)));
}

TEST(Integration, ConeSynthRectifies) {
  const EcoCase c = makeCase(tinyRecipe(7));
  const EcoResult r = runConeSynth(c.impl, c.spec);
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.failingOutputsBefore, 0u);
}

TEST(Integration, DeltaSynRectifies) {
  const EcoCase c = makeCase(tinyRecipe(8));
  const EcoResult r = runDeltaSyn(c.impl, c.spec);
  EXPECT_TRUE(r.success);
}

TEST(Integration, SysecoRectifies) {
  const EcoCase c = makeCase(tinyRecipe(9));
  SysecoDiagnostics diag;
  const EcoResult r = runSyseco(c.impl, c.spec, SysecoOptions{}, &diag);
  EXPECT_TRUE(r.success);
  EXPECT_GT(diag.outputsRectified, 0u);
}

TEST(Integration, SysecoPatchNoLargerThanConeSynth) {
  const EcoCase c = makeCase(tinyRecipe(10));
  const EcoResult cone = runConeSynth(c.impl, c.spec);
  const EcoResult sys = runSyseco(c.impl, c.spec);
  ASSERT_TRUE(cone.success);
  ASSERT_TRUE(sys.success);
  EXPECT_LE(sys.stats.gates, cone.stats.gates);
}

}  // namespace
}  // namespace syseco
