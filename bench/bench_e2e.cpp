// End-to-end perf trajectory: the syseco cascade on the bundled example
// cases at --jobs 1/2/4, emitting BENCH_e2e.json (wall time and aggregate
// worker-CPU per-phase breakdown recorded separately, patch sizes,
// speedups, and a determinism cross-check) so every future change has a
// recorded baseline to compare against.
//
// Usage: bench_e2e [--quick] [--out PATH]
//   --quick  run a 3-case subset with one repetition (CI smoke)
//   --out    output JSON path (default: BENCH_e2e.json in the cwd)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eco/syseco.hpp"
#include "util/timer.hpp"

namespace syseco {
namespace {

/// Per-phase seconds summed across worker threads. Under --jobs N these are
/// aggregate CPU, not wall: their total legitimately exceeds the run's wall
/// clock, which is why the JSON labels them "phases_cpu" and records the
/// wall measurement separately (schema_version 2).
struct PhaseSeconds {
  double sampling = 0, symbolic = 0, screening = 0, validation = 0,
         fallback = 0, sweep = 0, verify = 0;

  double total() const {
    return sampling + symbolic + screening + validation + fallback + sweep +
           verify;
  }
};

struct RunSample {
  std::size_t jobs = 0;
  double wallSeconds = 0;
  PhaseSeconds phases;
  PatchStats patch;
  std::size_t failingBefore = 0;
  bool success = false;
  std::string dump;  ///< rectified netlist, for the determinism check
};

RunSample runOnce(const EcoCase& c, std::size_t jobs) {
  SysecoOptions opt;
  opt.jobs = jobs;
  SysecoDiagnostics diag;
  Timer t;
  const EcoResult r = runSyseco(c.impl, c.spec, opt, &diag);
  RunSample s;
  s.jobs = jobs;
  s.wallSeconds = t.seconds();
  s.phases = PhaseSeconds{diag.secondsSampling,   diag.secondsSymbolic,
                          diag.secondsScreening,  diag.secondsValidation,
                          diag.secondsFallback,   diag.secondsSweep,
                          diag.secondsVerify};
  s.patch = r.stats;
  s.failingBefore = r.failingOutputsBefore;
  s.success = r.success;
  s.dump = r.rectified.dumpRawString();
  return s;
}

void printPhases(FILE* f, const PhaseSeconds& p) {
  std::fprintf(f,
               "{\"sampling\":%.4f,\"symbolic\":%.4f,\"screening\":%.4f,"
               "\"validation\":%.4f,\"fallback\":%.4f,\"sweep\":%.4f,"
               "\"verify\":%.4f}",
               p.sampling, p.symbolic, p.screening, p.validation, p.fallback,
               p.sweep, p.verify);
}

}  // namespace
}  // namespace syseco

int main(int argc, char** argv) {
  using namespace syseco;
  bool quick = false;
  std::string outPath = "BENCH_e2e.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_e2e [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const std::vector<std::size_t> jobsList{1, 2, 4};
  const int reps = quick ? 1 : 3;
  std::vector<EcoCase> cases;
  {
    const auto recipes = suiteRecipes();
    const std::vector<std::size_t> pick =
        quick ? std::vector<std::size_t>{1, 4, 9}
              : std::vector<std::size_t>{0, 1, 3, 4, 6, 8, 9, 10};
    for (std::size_t idx : pick) cases.push_back(makeCase(recipes[idx]));
  }

  FILE* f = std::fopen(outPath.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"e2e\",\n  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"repetitions\": %d,\n  \"cases\": [\n", reps);

  bool allIdentical = true;
  bool allVerified = true;
  std::vector<double> speedup2, speedup4;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const EcoCase& c = cases[ci];
    std::fprintf(stdout, "case %-8s", c.name.c_str());
    std::fflush(stdout);
    std::vector<RunSample> best;  // min-seconds sample per jobs value
    for (std::size_t jobs : jobsList) {
      RunSample bestRun;
      for (int rep = 0; rep < reps; ++rep) {
        RunSample s = runOnce(c, jobs);
        if (rep == 0 || s.wallSeconds < bestRun.wallSeconds)
          bestRun = std::move(s);
      }
      std::fprintf(stdout, "  jobs=%zu %.2fs", jobs, bestRun.wallSeconds);
      std::fflush(stdout);
      best.push_back(std::move(bestRun));
    }
    std::fputc('\n', stdout);

    const RunSample& base = best.front();
    std::fprintf(f, "    {\"name\": \"%s\", \"failing_outputs\": %zu,\n",
                 c.name.c_str(), base.failingBefore);
    std::fprintf(f,
                 "     \"patch\": {\"inputs\": %zu, \"outputs\": %zu, "
                 "\"gates\": %zu, \"nets\": %zu},\n",
                 base.patch.inputs, base.patch.outputs, base.patch.gates,
                 base.patch.nets);
    std::fprintf(f, "     \"runs\": [\n");
    for (std::size_t k = 0; k < best.size(); ++k) {
      const RunSample& s = best[k];
      const bool identical = s.dump == base.dump;
      allIdentical &= identical;
      allVerified &= s.success;
      const double speedup =
          s.wallSeconds > 0 ? base.wallSeconds / s.wallSeconds : 1.0;
      if (s.jobs == 2) speedup2.push_back(speedup);
      if (s.jobs == 4) speedup4.push_back(speedup);
      std::fprintf(f,
                   "       {\"jobs\": %zu, \"wall_seconds\": %.4f, "
                   "\"cpu_seconds\": %.4f, "
                   "\"speedup_vs_jobs1\": %.3f, \"verified\": %s, "
                   "\"identical_to_jobs1\": %s, \"phases_cpu\": ",
                   s.jobs, s.wallSeconds, s.phases.total(), speedup,
                   s.success ? "true" : "false",
                   identical ? "true" : "false");
      printPhases(f, s.phases);
      std::fprintf(f, "}%s\n", k + 1 < best.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", ci + 1 < cases.size() ? "," : "");
  }

  auto geomean = [](const std::vector<double>& v) {
    if (v.empty()) return 1.0;
    double s = 0;
    for (double x : v) s += std::log(std::max(x, 1e-12));
    return std::exp(s / static_cast<double>(v.size()));
  };
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"geomean_speedup_jobs2\": %.3f,\n",
               geomean(speedup2));
  std::fprintf(f, "    \"geomean_speedup_jobs4\": %.3f,\n",
               geomean(speedup4));
  std::fprintf(f, "    \"all_verified\": %s,\n",
               allVerified ? "true" : "false");
  std::fprintf(f, "    \"all_jobs_identical\": %s\n  }\n}\n",
               allIdentical ? "true" : "false");
  std::fclose(f);

  std::fprintf(stdout,
               "wrote %s (geomean speedup: jobs2 %.2fx, jobs4 %.2fx, "
               "identical=%s, verified=%s)\n",
               outPath.c_str(), geomean(speedup2), geomean(speedup4),
               allIdentical ? "yes" : "NO", allVerified ? "yes" : "NO");
  return (allVerified && allIdentical) ? 0 : 1;
}
