// Google-benchmark microbenchmarks of the reasoning kernels the engine is
// built on: BDD operations, SAT solving, bit-parallel simulation,
// structural hashing and Tseitin encoding.

#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "cnf/encode.hpp"
#include "gen/spec_builder.hpp"
#include "opt/passes.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {
namespace {

SpecCircuit& benchCircuit() {
  static SpecCircuit sc = [] {
    Rng rng(424242);
    return buildSpec(SpecParams{6, 12, 6, 4, 10, 6, 4, 4}, rng);
  }();
  return sc;
}

void BM_SimulatorRun(benchmark::State& state) {
  const Netlist& nl = benchCircuit().netlist;
  Simulator sim(nl, static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  sim.randomizeInputs(rng);
  for (auto _ : state) {
    sim.run();
    benchmark::DoNotOptimize(sim.outputValue(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.countLiveGates()) *
                          state.range(0) * 64);
}
BENCHMARK(BM_SimulatorRun)->Arg(1)->Arg(16)->Arg(64);

void BM_BddFromTruthTable(benchmark::State& state) {
  Rng rng(7);
  const std::uint32_t nz = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> zVars(nz);
  for (std::uint32_t i = 0; i < nz; ++i) zVars[i] = i;
  std::vector<std::uint64_t> bits((std::size_t{1} << nz) / 64 + 1);
  for (auto _ : state) {
    state.PauseTiming();
    Bdd mgr(nz);
    for (auto& w : bits) w = rng.next();
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.fromTruthTable(bits, zVars));
  }
}
BENCHMARK(BM_BddFromTruthTable)->Arg(6)->Arg(8)->Arg(10);

void BM_BddQuantification(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    Bdd mgr(16);
    // Random function of 16 variables built from cubes.
    Bdd::Ref f = Bdd::kFalse;
    for (int c = 0; c < 24; ++c) {
      Bdd::Ref cube = Bdd::kTrue;
      for (std::uint32_t v = 0; v < 16; ++v) {
        const auto k = rng.below(3);
        if (k == 0) cube = mgr.bAnd(cube, mgr.var(v));
        if (k == 1) cube = mgr.bAnd(cube, mgr.nvar(v));
      }
      f = mgr.bOr(f, cube);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.forall(f, {0, 2, 4, 6, 8, 10}));
    benchmark::DoNotOptimize(mgr.exists(f, {1, 3, 5, 7, 9}));
  }
}
BENCHMARK(BM_BddQuantification);

void BM_SatEquivalenceCheck(benchmark::State& state) {
  // Swept miter between a circuit and its heavily restructured twin (the
  // validation kernel of the ECO engines).
  const Netlist spec = lightSynth(benchCircuit().netlist);
  Rng rng(3);
  const Netlist impl = heavyOptimize(benchCircuit().netlist, rng, 1);
  for (auto _ : state) {
    PairEncoding pe(impl, spec);
    Rng sweepRng(9);
    benchmark::DoNotOptimize(pe.solveDiffSwept(0, 0, -1, sweepRng));
  }
}
BENCHMARK(BM_SatEquivalenceCheck)->Unit(benchmark::kMillisecond);

void BM_Strash(benchmark::State& state) {
  const Netlist& nl = benchCircuit().netlist;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strash(nl).countLiveGates());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.countLiveGates()));
}
BENCHMARK(BM_Strash)->Unit(benchmark::kMillisecond);

void BM_TseitinEncoding(benchmark::State& state) {
  const Netlist& nl = benchCircuit().netlist;
  for (auto _ : state) {
    Solver solver;
    std::unordered_map<std::string, Var> inputVars;
    NetlistEncoder enc(solver, nl, inputVars);
    for (std::uint32_t o = 0; o < nl.numOutputs(); ++o)
      benchmark::DoNotOptimize(enc.outputVar(o));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.countLiveGates()));
}
BENCHMARK(BM_TseitinEncoding)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace syseco

BENCHMARK_MAIN();
