// Reproduces Table 3: "Rectification impact on design slack."
//
// Four timing-critical cases (ids 12-15). Each design's required time is
// set so the unpatched implementation closes timing with a small margin.
// DeltaSyn patches and syseco patches (level-driven selection enabled, the
// paper's "additional qualitative measure when selecting rewire
// operations") are compared on patch gate count and post-patch worst
// slack, in the unit-delay picosecond proxy.

#include <cstdio>

#include "bench_common.hpp"
#include "eco/deltasyn.hpp"
#include "eco/syseco.hpp"
#include "timing/timing.hpp"
#include "util/timer.hpp"

int main() {
  using namespace syseco;
  Timer total;
  std::printf("Table 3: Rectification impact on design slack "
              "(unit-delay proxy, %g ps/level)\n",
              kPsPerLevel);
  std::printf("%-6s | %-22s | %-22s\n", "", "DeltaSyn patch", "syseco patch");
  std::printf("%-6s | %8s %12s | %8s %12s\n", "case", "gates", "slack,ps",
              "gates", "slack,ps");
  bench::printRule(64);

  bool allVerified = true;
  int id = 12;
  for (const EcoCase& c : bench::makeTimingSuite()) {
    const std::vector<double> required = outputRequiredPs(c.impl);

    const EcoResult delta = runDeltaSyn(c.impl, c.spec);
    SysecoOptions timingAware;
    timingAware.levelDriven = true;
    const EcoResult sys = runSyseco(c.impl, c.spec, timingAware);
    allVerified &= delta.success && sys.success;

    const std::size_t firstEco = c.impl.numGatesTotal();
    std::printf("%-6d | %8zu %12.1f | %8zu %12.1f\n", id, delta.stats.gates,
                worstSlackPsWithEcoPenalty(delta.rectified, required,
                                           firstEco),
                sys.stats.gates,
                worstSlackPsWithEcoPenalty(sys.rectified, required, firstEco));
    std::fflush(stdout);
    ++id;
  }
  bench::printRule(64);
  std::printf("expected shape: syseco patches are smaller and lose less "
              "slack (paper Table 3).\n");
  std::printf("all patches SAT-verified equivalent to revised spec: %s\n",
              allVerified ? "yes" : "NO");
  std::printf("total harness time: %s\n", formatHms(total.seconds()).c_str());
  return allVerified ? 0 : 1;
}
