// Chaos soak: sweeps N seeded storage-fault schedules across the CLI's
// execution modes and proves the system invariant of the storage stack -
// every interrupted run either completes with bit-identical verdicts or
// exits with a structured cause, and a fault-free heal (--resume, daemon
// restart, batch --resume) converges on the fault-free reference.
//
// Per schedule: generate a plan from the seed (util/fault_plan), run the
// mode under SYSECO_FAULT_PLAN, require a structured exit (never a signal
// death, a hang, or silent corruption), heal fault-free, then compare the
// healed verdict record and rectified netlist byte-for-byte against a
// fault-free reference run, and sweep the state tree for leaked staging
// files. A violated schedule keeps its directory - plan, logs, journals -
// as the repro bundle, and the binary exits nonzero.
//
//   chaos_soak --cli BIN --impl F --spec F --out-dir DIR
//              [--schedules N] [--seed-base S] [--plan-len K]
//              [--modes jobs,isolate,fleet,serve,batch] [--keep] [--verbose]

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/watchdog.hpp"
#include "util/fault_plan.hpp"
#include "util/journal.hpp"

using syseco::JournalScan;
using syseco::Result;
using syseco::scanJournal;
using syseco::serve::PoolWatchdog;
using syseco::serve::WorkerExit;

namespace {

bool gVerbose = false;

void vlog(const std::string& msg) {
  if (gVerbose) std::fprintf(stderr, "chaos-soak: %s\n", msg.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void spill(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << content;
}

bool mkdirs(const std::string& path) {
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

void rmTree(const std::string& path) {
  std::string cmd = "rm -rf '" + path + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
}

/// Leaked writeFileAtomic staging files anywhere under `dir`. After a
/// fault-free heal the recovery sweeps must have removed every one.
void findStaging(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st {};
    if (::lstat(path.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) findStaging(path, out);
    else if (name.find(".tmp.") != std::string::npos) out->push_back(path);
  }
  ::closedir(d);
}

/// Last journaled verdicts payload in `dir`, or "" when none committed.
std::string verdictsFrom(const std::string& dir) {
  Result<JournalScan> scan = scanJournal(dir);
  if (!scan.isOk()) return "";
  std::string last;
  for (const syseco::JournalFrame& f : scan.value().frames)
    if (f.payload.rfind("{\"type\":\"verdicts\"", 0) == 0) last = f.payload;
  return last;
}

struct RunResult {
  bool finished = false;  ///< reaped before the deadline
  bool signaled = false;
  int exitCode = -1;
  int signal = 0;
};

std::string describe(const RunResult& r) {
  if (!r.finished) return "timed out (hang)";
  if (r.signaled) return "died on signal " + std::to_string(r.signal);
  return "exit " + std::to_string(r.exitCode);
}

/// Spawns argv under the watchdog and blocks until it exits or the
/// deadline passes (then SIGTERM -> SIGKILL; reported as not finished).
RunResult runToCompletion(PoolWatchdog& dog, const std::string& name,
                          const std::vector<std::string>& argv,
                          const std::string& logPath,
                          const std::vector<std::string>& extraEnv,
                          double deadlineSeconds) {
  RunResult out;
  if (!dog.spawn(name, 1, argv, logPath, extraEnv).isOk()) return out;
  const int ticks = static_cast<int>(deadlineSeconds * 50);
  bool terminated = false;
  for (int tick = 0; tick < ticks + 400; ++tick) {
    for (const WorkerExit& e : dog.reap()) {
      if (e.job != name) continue;
      out.finished = !terminated;
      out.signaled = e.signaled;
      out.exitCode = e.exitCode;
      out.signal = e.signal;
      return out;
    }
    if (tick >= ticks && !terminated) {
      dog.terminate(name, 2.0);
      terminated = true;
    }
    ::usleep(20000);
  }
  return out;
}

/// Polls an ephemeral-port file written by --serve / --serve-worker.
std::string waitPort(const std::string& portFile, double deadlineSeconds) {
  for (int tick = 0; tick < static_cast<int>(deadlineSeconds * 20); ++tick) {
    std::string text = slurp(portFile);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    if (!text.empty()) return text;
    ::usleep(50000);
  }
  return "";
}

/// The storage sites a schedule for `mode` may target. Daemon modes stay
/// off atomic.* (the port-file write shares that site - faulting it would
/// test the harness's patience, not the WAL) and engine modes off the
/// serve WALs they never touch. repro.* only fires on oracle
/// disagreements, which a clean reference case never produces.
std::vector<syseco::fault::FaultSite> sitesForMode(const std::string& mode) {
  std::vector<std::string> prefixes;
  if (mode == "serve") prefixes = {"queue.wal."};
  else if (mode == "batch") prefixes = {"ledger.wal."};
  else prefixes = {"journal.", "atomic."};
  std::vector<syseco::fault::FaultSite> out;
  for (const syseco::fault::FaultSite& s : syseco::fault::storageFaultSites())
    for (const std::string& p : prefixes)
      if (std::string(s.name).rfind(p, 0) == 0) out.push_back(s);
  return out;
}

bool allowedFaultedExit(int code) {
  // Structured outcomes only: clean (0), usage/internal (2), invalid
  // input (3), degraded (4), interrupted (130), injected crash (137).
  // Anything else - notably 1 (verify failed) - is silent corruption.
  return code == 0 || code == 2 || code == 3 || code == 4 || code == 130 ||
         code == 137;
}

struct Context {
  std::string cli, impl, spec, outDir;
  std::string refVerdicts, refOut;
  double deadline = 120.0;
};

std::vector<std::string> engineArgs(const Context& ctx) {
  return {ctx.cli,    "--impl", ctx.impl, "--spec", ctx.spec,
          "--seed", "1",      "--jobs", "2"};
}

void append(std::vector<std::string>& v,
            std::initializer_list<std::string> more) {
  v.insert(v.end(), more);
}

// --- Per-mode schedule drivers (fill `vio` with invariant violations) ------

void checkHealedArtifacts(const Context& ctx, const std::string& journalDir,
                          const std::string& healedOut,
                          std::vector<std::string>* vio) {
  const std::string verdicts = verdictsFrom(journalDir);
  if (verdicts.empty())
    vio->push_back("healed journal has no verdicts record");
  else if (verdicts != ctx.refVerdicts)
    vio->push_back("healed verdicts diverged from the fault-free reference");
  if (slurp(healedOut) != ctx.refOut)
    vio->push_back("healed netlist diverged from the fault-free reference");
}

void runEngineSchedule(const Context& ctx, PoolWatchdog& dog,
                       const std::string& mode, const std::string& sdir,
                       const std::string& planPath,
                       std::vector<std::string>* vio) {
  const std::string jdir = sdir + "/j";

  std::string workers;
  if (mode == "fleet") {
    for (int a = 1; a <= 2; ++a) {
      const std::string pf = sdir + "/port" + std::to_string(a);
      if (!dog.spawn("agent" + std::to_string(a), 1,
                     {ctx.cli, "--serve-worker", "0", "--port-file", pf},
                     sdir + "/agent" + std::to_string(a) + ".log", {})
               .isOk()) {
        vio->push_back("cannot spawn fleet agent " + std::to_string(a));
        break;
      }
      const std::string port = waitPort(pf, 20.0);
      if (port.empty()) {
        vio->push_back("fleet agent " + std::to_string(a) +
                       " never published a port");
        break;
      }
      if (!workers.empty()) workers += ",";
      workers += "127.0.0.1:" + port;
    }
  }

  std::vector<std::string> argv = engineArgs(ctx);
  append(argv, {"--journal", jdir, "--out", sdir + "/faulted.blif"});
  if (mode == "isolate") append(argv, {"--isolate"});
  if (mode == "fleet" && !workers.empty()) append(argv, {"--workers", workers});
  const RunResult faulted =
      runToCompletion(dog, "faulted", argv, sdir + "/faulted.log",
                      {"SYSECO_FAULT_PLAN=" + planPath}, ctx.deadline);
  if (!faulted.finished || faulted.signaled ||
      !allowedFaultedExit(faulted.exitCode))
    vio->push_back("faulted run: unstructured outcome (" + describe(faulted) +
                   ")");
  vlog(mode + " faulted run: " + describe(faulted));

  if (mode == "fleet") {
    dog.terminate("agent1", 1.0);
    dog.terminate("agent2", 1.0);
  }

  // Heal fault-free: --resume adopts the committed prefix (or runs fresh
  // over an empty journal) and must land the reference result.
  std::vector<std::string> heal = engineArgs(ctx);
  append(heal, {"--resume", jdir, "--out", sdir + "/healed.blif"});
  const RunResult healed = runToCompletion(dog, "heal", heal,
                                           sdir + "/heal.log", {}, ctx.deadline);
  if (!healed.finished || healed.signaled || healed.exitCode != 0) {
    vio->push_back("heal run failed (" + describe(healed) + ")");
    return;
  }
  checkHealedArtifacts(ctx, jdir, sdir + "/healed.blif", vio);

  std::vector<std::string> leaks;
  findStaging(jdir, &leaks);
  for (const std::string& leak : leaks)
    vio->push_back("leaked staging file: " + leak);
}

void runServeSchedule(const Context& ctx, PoolWatchdog& dog,
                      const std::string& sdir, const std::string& planPath,
                      std::vector<std::string>* vio) {
  const std::string state = sdir + "/state";
  const auto daemonArgs = [&](const std::string& portFile) {
    return std::vector<std::string>{
        ctx.cli,       "--serve",     "0",       "--serve-state", state,
        "--port-file", portFile,      "--serve-pool", "1",
        "--serve-attempts", "5"};
  };

  // Faulted life: the daemon (and the workers it execs) load the plan.
  if (!dog.spawn("daemon", 1, daemonArgs(sdir + "/port1"),
                 sdir + "/daemon1.log", {"SYSECO_FAULT_PLAN=" + planPath})
           .isOk()) {
    vio->push_back("cannot spawn faulted daemon");
    return;
  }
  const std::string port = waitPort(sdir + "/port1", 20.0);
  if (!port.empty()) {
    // A faulted daemon may die under the client at any point; every client
    // outcome short of a signal death or a hang is structured.
    std::vector<std::string> submit = {
        ctx.cli,  "--connect", "127.0.0.1:" + port,
        "--impl", ctx.impl,    "--spec",
        ctx.spec, "--seed",    "1",
        "--jobs", "2",         "--out",
        sdir + "/faulted.blif"};
    const RunResult client = runToCompletion(
        dog, "client", submit, sdir + "/client1.log", {}, ctx.deadline);
    if (!client.finished || client.signaled ||
        !allowedFaultedExit(client.exitCode))
      vio->push_back("faulted client: unstructured outcome (" +
                     describe(client) + ")");
    vlog("serve faulted client: " + describe(client));
  } else {
    vlog("serve faulted daemon died before publishing a port (allowed)");
  }
  dog.terminate("daemon", 2.0);
  dog.reap();

  // Heal: restart fault-free on the same state; the recovered queue drains
  // (pool 1, FIFO), then a fresh submission of the same case must land the
  // reference result.
  ::unlink((sdir + "/port1").c_str());
  if (!dog.spawn("daemon", 1, daemonArgs(sdir + "/port2"),
                 sdir + "/daemon2.log", {})
           .isOk()) {
    vio->push_back("cannot spawn healed daemon");
    return;
  }
  const std::string port2 = waitPort(sdir + "/port2", 20.0);
  if (port2.empty()) {
    vio->push_back("healed daemon never published a port");
    dog.terminate("daemon", 2.0);
    return;
  }
  std::vector<std::string> submit = {
      ctx.cli,  "--connect", "127.0.0.1:" + port2,
      "--impl", ctx.impl,    "--spec",
      ctx.spec, "--seed",    "1",
      "--jobs", "2",         "--out",
      sdir + "/healed.blif"};
  const RunResult client = runToCompletion(dog, "client", submit,
                                           sdir + "/client2.log", {},
                                           ctx.deadline);
  if (!client.finished || client.signaled || client.exitCode != 0) {
    vio->push_back("healed client failed (" + describe(client) + ")");
    dog.terminate("daemon", 2.0);
    return;
  }
  if (slurp(sdir + "/healed.blif") != ctx.refOut)
    vio->push_back("healed netlist diverged from the fault-free reference");

  // Every drained job in the state tree ran the same case: each committed
  // verdicts record must match the reference bit for bit.
  if (DIR* d = ::opendir((state + "/jobs").c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string verdicts =
          verdictsFrom(state + "/jobs/" + name + "/journal");
      if (!verdicts.empty() && verdicts != ctx.refVerdicts)
        vio->push_back("job " + name +
                       " verdicts diverged from the fault-free reference");
    }
    ::closedir(d);
  }
  dog.terminate("daemon", 2.0);
  dog.reap();

  std::vector<std::string> leaks;
  findStaging(state, &leaks);
  for (const std::string& leak : leaks)
    vio->push_back("leaked staging file: " + leak);
}

void runBatchSchedule(const Context& ctx, PoolWatchdog& dog,
                      const std::string& sdir, const std::string& planPath,
                      std::vector<std::string>* vio) {
  const std::string state = sdir + "/state";
  const std::string manifest = sdir + "/manifest.json";
  spill(manifest, "{\"cases\": [{\"name\": \"c1\", \"impl\": \"" + ctx.impl +
                      "\", \"spec\": \"" + ctx.spec +
                      "\", \"seed\": 1, \"jobs\": 2}]}\n");

  const RunResult faulted = runToCompletion(
      dog, "faulted",
      {ctx.cli, "--batch", manifest, "--batch-state", state},
      sdir + "/faulted.log", {"SYSECO_FAULT_PLAN=" + planPath}, ctx.deadline);
  if (!faulted.finished || faulted.signaled ||
      !allowedFaultedExit(faulted.exitCode))
    vio->push_back("faulted sweep: unstructured outcome (" +
                   describe(faulted) + ")");
  vlog("batch faulted sweep: " + describe(faulted));

  const RunResult healed = runToCompletion(
      dog, "heal", {ctx.cli, "--batch", manifest, "--resume", state},
      sdir + "/heal.log", {}, ctx.deadline);
  if (!healed.finished || healed.signaled || healed.exitCode != 0) {
    vio->push_back("healed sweep failed (" + describe(healed) + ")");
    return;
  }
  checkHealedArtifacts(ctx, state + "/cases/c1/journal",
                       state + "/cases/c1/out.blif", vio);

  std::vector<std::string> leaks;
  findStaging(state, &leaks);
  for (const std::string& leak : leaks)
    vio->push_back("leaked staging file: " + leak);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --cli BIN --impl FILE --spec FILE --out-dir DIR\n"
               "          [--schedules N] [--seed-base S] [--plan-len K]\n"
               "          [--modes jobs,isolate,fleet,serve,batch]\n"
               "          [--keep] [--verbose]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Context ctx;
  std::size_t schedules = 20;
  std::uint64_t seedBase = 1;
  std::size_t planLen = 4;
  bool keep = false;
  std::vector<std::string> modes = {"jobs", "isolate", "fleet", "serve",
                                    "batch"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--cli") ctx.cli = value();
    else if (arg == "--impl") ctx.impl = value();
    else if (arg == "--spec") ctx.spec = value();
    else if (arg == "--out-dir") ctx.outDir = value();
    else if (arg == "--schedules") schedules = std::stoull(value());
    else if (arg == "--seed-base") seedBase = std::stoull(value());
    else if (arg == "--plan-len") planLen = std::stoull(value());
    else if (arg == "--keep") keep = true;
    else if (arg == "--verbose") gVerbose = true;
    else if (arg == "--modes") {
      modes.clear();
      std::istringstream ms(value());
      std::string m;
      while (std::getline(ms, m, ','))
        if (!m.empty()) modes.push_back(m);
    } else usage(argv[0]);
  }
  if (ctx.cli.empty() || ctx.impl.empty() || ctx.spec.empty() ||
      ctx.outDir.empty() || modes.empty())
    usage(argv[0]);
  ::signal(SIGPIPE, SIG_IGN);
  if (!mkdirs(ctx.outDir)) {
    std::fprintf(stderr, "chaos-soak: cannot create %s\n", ctx.outDir.c_str());
    return 2;
  }

  PoolWatchdog::Options dogOpt;
  dogOpt.poolSize = 8;
  PoolWatchdog dog(dogOpt);

  // Fault-free reference: one local run defines the verdict record and
  // rectified netlist every healed schedule must reproduce byte-for-byte.
  const std::string refDir = ctx.outDir + "/ref";
  mkdirs(refDir);
  std::vector<std::string> refArgs = engineArgs(ctx);
  append(refArgs, {"--journal", refDir + "/j", "--out", refDir + "/out.blif"});
  const RunResult ref = runToCompletion(dog, "ref", refArgs,
                                        refDir + "/ref.log", {}, ctx.deadline);
  if (!ref.finished || ref.signaled || ref.exitCode != 0) {
    std::fprintf(stderr, "chaos-soak: reference run failed (%s)\n",
                 describe(ref).c_str());
    return 2;
  }
  ctx.refVerdicts = verdictsFrom(refDir + "/j");
  ctx.refOut = slurp(refDir + "/out.blif");
  if (ctx.refVerdicts.empty() || ctx.refOut.empty()) {
    std::fprintf(stderr, "chaos-soak: reference run left no verdicts/out\n");
    return 2;
  }

  std::size_t violations = 0;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed = seedBase + i;
    const std::string mode = modes[i % modes.size()];
    const std::string sdir =
        ctx.outDir + "/s" + std::to_string(seed) + "-" + mode;
    rmTree(sdir);
    mkdirs(sdir);

    const std::vector<syseco::fault::FaultSite> sites = sitesForMode(mode);
    const syseco::fault::FaultPlan plan =
        syseco::fault::generateChaosPlan(seed, planLen, &sites);
    const std::string planPath = sdir + "/plan";
    spill(planPath, "# chaos schedule seed " + std::to_string(seed) +
                        " mode " + mode + "\n" +
                        syseco::fault::serializeFaultPlan(plan));

    std::vector<std::string> vio;
    if (mode == "serve") runServeSchedule(ctx, dog, sdir, planPath, &vio);
    else if (mode == "batch") runBatchSchedule(ctx, dog, sdir, planPath, &vio);
    else runEngineSchedule(ctx, dog, mode, sdir, planPath, &vio);

    if (vio.empty()) {
      std::printf("schedule seed=%llu mode=%s: OK\n",
                  static_cast<unsigned long long>(seed), mode.c_str());
      if (!keep) rmTree(sdir);
    } else {
      ++violations;
      std::string report;
      for (const std::string& v : vio) report += v + "\n";
      spill(sdir + "/VIOLATION.txt", report);
      std::printf("schedule seed=%llu mode=%s: VIOLATION (repro kept in %s)\n",
                  static_cast<unsigned long long>(seed), mode.c_str(),
                  sdir.c_str());
      std::fputs(report.c_str(), stdout);
    }
    std::fflush(stdout);
  }

  std::printf("chaos-soak: %zu schedule(s), %zu violation(s)\n", schedules,
              violations);
  return violations == 0 ? 0 : 1;
}
