// Ablation C: the design choices DESIGN.md calls out.
//
//  * rectification-utility candidate ranking on/off (§4.3),
//  * trivial-candidate inclusion on/off (§5.2: lets H(t) over-approximate
//    the number of rectification points),
//  * patch-input sweeping on/off (§5.2 post-process),
//  * DeltaSyn with structural vs. functional matching (shows the baseline
//    is not a strawman: even its upgraded matcher trails syseco).

#include <cstdio>

#include "bench_common.hpp"
#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/exactfix.hpp"
#include "eco/syseco.hpp"
#include "itp/interp_fix.hpp"
#include "util/timer.hpp"

int main() {
  using namespace syseco;
  Timer total;
  const std::vector<EcoCase> suite = bench::makeAblationSuite();

  struct Config {
    const char* name;
    SysecoOptions opt;
  };
  std::vector<Config> configs;
  configs.push_back({"full", SysecoOptions{}});
  {
    SysecoOptions o;
    o.useUtilityHeuristic = false;
    configs.push_back({"-utility", o});
  }
  {
    SysecoOptions o;
    o.includeTrivialCandidate = false;
    configs.push_back({"-trivial", o});
  }
  {
    SysecoOptions o;
    o.enableSweeping = false;
    configs.push_back({"-sweep", o});
  }
  {
    SysecoOptions o;
    o.synthesizeFunctions = false;
    configs.push_back({"-synth", o});
  }

  std::printf("Ablation: syseco design choices (aggregated over %zu cases)\n",
              suite.size());
  std::printf("%-10s | %8s %8s %8s %8s | %8s %8s %9s\n", "config", "in",
              "out", "gates", "nets", "rewired", "fallbks", "time,s");
  bench::printRule(86);
  for (const Config& cfg : configs) {
    PatchStats sum;
    std::size_t rewired = 0, fallbacks = 0;
    Timer sweep;
    bool allOk = true;
    for (const EcoCase& c : suite) {
      SysecoDiagnostics diag;
      const EcoResult r = runSyseco(c.impl, c.spec, cfg.opt, &diag);
      allOk &= r.success;
      sum.inputs += r.stats.inputs;
      sum.outputs += r.stats.outputs;
      sum.gates += r.stats.gates;
      sum.nets += r.stats.nets;
      rewired += diag.outputsViaRewire;
      fallbacks += diag.outputsViaFallback;
    }
    std::printf("%-10s | %8zu %8zu %8zu %8zu | %8zu %8zu %9.2f%s\n", cfg.name,
                sum.inputs, sum.outputs, sum.gates, sum.nets, rewired,
                fallbacks, sweep.seconds(), allOk ? "" : "  [UNVERIFIED]");
    std::fflush(stdout);
  }
  bench::printRule(86);

  std::printf("\nDeltaSyn matcher ablation (same cases):\n");
  std::printf("%-12s | %8s %8s %8s %8s | %9s\n", "matcher", "in", "out",
              "gates", "nets", "time,s");
  bench::printRule(66);
  for (const MatchMode mode : {MatchMode::Structural, MatchMode::Functional}) {
    DeltaSynOptions opt;
    opt.matchMode = mode;
    PatchStats sum;
    Timer sweep;
    for (const EcoCase& c : suite) {
      const EcoResult r = runDeltaSyn(c.impl, c.spec, opt);
      sum.inputs += r.stats.inputs;
      sum.outputs += r.stats.outputs;
      sum.gates += r.stats.gates;
      sum.nets += r.stats.nets;
    }
    std::printf("%-12s | %8zu %8zu %8zu %8zu | %9.2f\n",
                mode == MatchMode::Structural ? "structural" : "functional",
                sum.inputs, sum.outputs, sum.gates, sum.nets, sweep.seconds());
    std::fflush(stdout);
  }
  bench::printRule(66);

  // Engine-family comparison: the §2 taxonomy on one table. conesynth is
  // the structurally naive pole, exactfix the classic exact single-point
  // functional method, syseco the paper's rewire-based search.
  std::printf("\nEngine family comparison (same cases):\n");
  std::printf("%-12s | %8s %8s %8s %8s | %9s\n", "engine", "in", "out",
              "gates", "nets", "time,s");
  bench::printRule(66);
  auto sumUp = [&](const char* name, auto runner) {
    PatchStats sum;
    Timer sweep;
    bool allOk = true;
    for (const EcoCase& c : suite) {
      const EcoResult r = runner(c);
      allOk &= r.success;
      sum.inputs += r.stats.inputs;
      sum.outputs += r.stats.outputs;
      sum.gates += r.stats.gates;
      sum.nets += r.stats.nets;
    }
    std::printf("%-12s | %8zu %8zu %8zu %8zu | %9.2f%s\n", name, sum.inputs,
                sum.outputs, sum.gates, sum.nets, sweep.seconds(),
                allOk ? "" : "  [UNVERIFIED]");
    std::fflush(stdout);
  };
  sumUp("conesynth", [](const EcoCase& c) {
    return runConeSynth(c.impl, c.spec);
  });
  sumUp("exactfix", [](const EcoCase& c) {
    return runExactFix(c.impl, c.spec);
  });
  sumUp("interpfix", [](const EcoCase& c) {
    return runInterpFix(c.impl, c.spec);
  });
  sumUp("deltasyn", [](const EcoCase& c) {
    return runDeltaSyn(c.impl, c.spec);
  });
  sumUp("syseco", [](const EcoCase& c) { return runSyseco(c.impl, c.spec); });
  bench::printRule(66);
  std::printf("total harness time: %s\n", formatHms(total.seconds()).c_str());
  return 0;
}
