// Reproduces Table 1: "Characteristics of ECO test cases".
//
// Columns as in the paper: inputs, outputs, gates, nets, net sinks of the
// original (optimized) implementation; number and percentage of outputs
// affected by the revised specification.

#include <cstdio>

#include "bench_common.hpp"
#include "cnf/encode.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace syseco;
  Timer total;
  std::printf("Table 1: Characteristics of ECO test cases (synthetic suite)\n");
  std::printf("%-6s %8s %8s %8s %8s %8s | %14s %6s\n", "case", "inputs",
              "outputs", "gates", "nets", "sinks", "revised outs", "%");
  bench::printRule(84);

  for (const EcoCase& c : bench::makeSuite()) {
    Rng rng(1);
    const auto failing = findFailingOutputs(c.impl, c.spec, rng);
    std::printf("%-6s %8zu %8zu %8zu %8zu %8zu | %14zu %6.1f\n",
                c.name.c_str(), c.impl.numInputs(), c.impl.numOutputs(),
                c.impl.countLiveGates(), c.impl.countLiveNets(),
                c.impl.countSinks(), failing.size(),
                100.0 * static_cast<double>(failing.size()) /
                    static_cast<double>(c.impl.numOutputs()));
    std::fflush(stdout);
  }
  bench::printRule(84);
  std::printf("total harness time: %s\n", formatHms(total.seconds()).c_str());
  return 0;
}
