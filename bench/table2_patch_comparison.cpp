// Reproduces Table 2: "Comparison of the patch attributes from four
// different sources: a designer's estimate, a commercial tool, DeltaSyn
// and syseco."
//
//  * designer's estimate  -> size of the injected specification delta
//  * commercial tool      -> cone-replication baseline (conesynth)
//  * DeltaSyn             -> matching-based difference-region engine
//                            (structural matching, as the 2009-era tool)
//  * syseco               -> the paper's rewire-based symbolic-sampling
//                            engine
//
// The bottom line prints the average reduction ratios of syseco relative
// to DeltaSyn for inputs/outputs/gates/nets (paper: 0.35 / 0.47 / 0.17 /
// 0.21 - the "5x smaller" headline).

#include <cstdio>

#include "bench_common.hpp"
#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/syseco.hpp"
#include "util/timer.hpp"

int main() {
  using namespace syseco;
  Timer total;
  std::printf(
      "Table 2: Patch attribute comparison "
      "(designer estimate | commercial proxy | DeltaSyn | syseco)\n");
  std::printf("%-6s | %5s | %5s %5s %5s %5s | %5s %5s %5s %5s %11s | %5s %5s "
              "%5s %5s %11s\n",
              "case", "est", "in", "out", "gate", "net", "in", "out", "gate",
              "net", "time", "in", "out", "gate", "net", "time");
  bench::printRule(118);

  double ratioIn = 0, ratioOut = 0, ratioGate = 0, ratioNet = 0;
  std::size_t ratioCount = 0;
  bool allVerified = true;

  for (const EcoCase& c : bench::makeSuite()) {
    const EcoResult cone = runConeSynth(c.impl, c.spec);
    const EcoResult delta = runDeltaSyn(c.impl, c.spec);
    const EcoResult sys = runSyseco(c.impl, c.spec);
    allVerified &= cone.success && delta.success && sys.success;

    std::printf(
        "%-6s | %5zu | %5zu %5zu %5zu %5zu | %5zu %5zu %5zu %5zu %11s | %5zu "
        "%5zu %5zu %5zu %11s\n",
        c.name.c_str(), c.designerEstimateGates, cone.stats.inputs,
        cone.stats.outputs, cone.stats.gates, cone.stats.nets,
        delta.stats.inputs, delta.stats.outputs, delta.stats.gates,
        delta.stats.nets, formatHms(delta.seconds).c_str(), sys.stats.inputs,
        sys.stats.outputs, sys.stats.gates, sys.stats.nets,
        formatHms(sys.seconds).c_str());
    std::fflush(stdout);

    auto ratio = [](std::size_t a, std::size_t b) {
      if (b == 0) return a == 0 ? 1.0 : 1.0;  // degenerate: no reduction info
      return static_cast<double>(a) / static_cast<double>(b);
    };
    ratioIn += ratio(sys.stats.inputs, delta.stats.inputs);
    ratioOut += ratio(sys.stats.outputs, delta.stats.outputs);
    ratioGate += ratio(sys.stats.gates, delta.stats.gates);
    ratioNet += ratio(sys.stats.nets, delta.stats.nets);
    ++ratioCount;
  }
  bench::printRule(118);
  const double n = static_cast<double>(ratioCount);
  std::printf(
      "average reduction ratios of syseco relative to DeltaSyn "
      "(paper: 0.35 / 0.47 / 0.17 / 0.21):\n");
  std::printf("  inputs %.2f   outputs %.2f   gates %.2f   nets %.2f\n",
              ratioIn / n, ratioOut / n, ratioGate / n, ratioNet / n);
  std::printf("all patches SAT-verified equivalent to revised spec: %s\n",
              allVerified ? "yes" : "NO");
  std::printf("total harness time: %s\n", formatHms(total.seconds()).c_str());
  return allVerified ? 0 : 1;
}
