// Ablation A / B (paper §5.1): sampling-domain size and sample selection.
//
// "The number of sampled assignments in a domain trades off the desired
//  degrees of precision versus computational complexity" - we sweep the
// domain size N and report the false-positive rate (candidates that the
// sampling domain accepted but SAT refuted) and runtime.
//
// "the computation yields fewer false positives when sampled assignments
//  are from the error domain E" - we run the same sweep with uniform
// sampling for comparison.

#include <cstdio>

#include "bench_common.hpp"
#include "eco/syseco.hpp"
#include "util/timer.hpp"

int main() {
  using namespace syseco;
  Timer total;
  const std::vector<EcoCase> suite = bench::makeAblationSuite();

  std::printf("Ablation: sampling-domain size N and sample selection "
              "(aggregated over %zu cases)\n",
              suite.size());
  std::printf("%-8s %-8s | %10s %10s %12s | %8s %8s %9s\n", "sampler", "N",
              "tried", "false-pos", "fp-rate", "gates", "fallbks",
              "time,s");
  bench::printRule(88);

  for (const bool errorDomain : {true, false}) {
    for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
      SysecoOptions opt;
      opt.numSamples = n;
      opt.useErrorDomainSampling = errorDomain;

      std::size_t tried = 0, falsePos = 0, gates = 0, fallbacks = 0;
      Timer sweep;
      bool allOk = true;
      for (const EcoCase& c : suite) {
        SysecoDiagnostics diag;
        const EcoResult r = runSyseco(c.impl, c.spec, opt, &diag);
        allOk &= r.success;
        // A sampling false positive is any Xi(c)-approved choice that the
        // exact world (sim screen or SAT) refuted.
        tried += diag.candidatesScreenRejected + diag.candidatesValidated;
        falsePos += diag.candidatesScreenRejected + diag.candidatesRefuted;
        gates += r.stats.gates;
        fallbacks += diag.outputsViaFallback;
      }
      const double fpRate =
          tried == 0 ? 0.0
                     : static_cast<double>(falsePos) /
                           static_cast<double>(tried);
      std::printf("%-8s %-8zu | %10zu %10zu %11.1f%% | %8zu %8zu %9.2f%s\n",
                  errorDomain ? "error" : "uniform", n, tried, falsePos,
                  100.0 * fpRate, gates, fallbacks, sweep.seconds(),
                  allOk ? "" : "  [UNVERIFIED]");
      std::fflush(stdout);
    }
    bench::printRule(88);
  }
  std::printf("expected shape: larger N lowers the false-positive rate at "
              "growing symbolic cost\n(the paper's precision/complexity "
              "trade-off); final patch quality is invariant -\nthe CEGAR "
              "validation absorbs whatever optimism the domain leaves.\n");
  std::printf("total harness time: %s\n", formatHms(total.seconds()).c_str());
  return 0;
}
