#pragma once
// Shared helpers for the table-reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "gen/eco_case.hpp"

namespace syseco::bench {

/// Generates the full 11-case evaluation suite (deterministic).
inline std::vector<EcoCase> makeSuite() {
  std::vector<EcoCase> cases;
  for (const CaseRecipe& r : suiteRecipes()) cases.push_back(makeCase(r));
  return cases;
}

/// Generates the 4 timing-critical cases of Table 3 (ids 12-15).
inline std::vector<EcoCase> makeTimingSuite() {
  std::vector<EcoCase> cases;
  for (const CaseRecipe& r : timingRecipes()) cases.push_back(makeCase(r));
  return cases;
}

/// A small sub-suite for the ablation studies (kept cheap so that every
/// binary in bench/ can run in one sitting).
inline std::vector<EcoCase> makeAblationSuite() {
  const auto recipes = suiteRecipes();
  std::vector<EcoCase> cases;
  for (std::size_t idx : {1u, 4u, 8u, 9u, 10u})  // eco02/05/09/10/11
    cases.push_back(makeCase(recipes[idx]));
  return cases;
}

inline void printRule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace syseco::bench
