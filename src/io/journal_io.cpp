#include "io/journal_io.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/journal.hpp"

namespace syseco {

// --- JSON parser ----------------------------------------------------------

namespace {

constexpr int kMaxJsonDepth = 64;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    JsonValue v;
    const Status s = parseValue(&v, 0);
    if (!s.isOk()) return s;
    skipWs();
    if (pos_ != text_.size())
      return fail("trailing bytes after the JSON document");
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return Status::invalidInput("json offset " + std::to_string(pos_) + ": " +
                                what);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::String;
      return parseString(&out->str);
    }
    if (c == 't' || c == 'f') return parseKeyword(out);
    if (c == 'n') return parseKeyword(out);
    return parseNumber(out);
  }

  Status parseKeyword(JsonValue* out) {
    auto lit = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (lit("true")) {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = true;
      return Status::ok();
    }
    if (lit("false")) {
      out->kind = JsonValue::Kind::Bool;
      out->boolean = false;
      return Status::ok();
    }
    if (lit("null")) {
      out->kind = JsonValue::Kind::Null;
      return Status::ok();
    }
    return fail("unknown keyword");
  }

  Status parseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    const std::size_t intStart = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    const std::size_t intDigits = pos_ - intStart;
    if (intDigits == 0) return fail("malformed number");
    if (intDigits > 1 && text_[intStart] == '0')
      return fail("leading zero in number");
    bool integral = true;
    if (consume('.')) {
      integral = false;
      const std::size_t fracStart = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == fracStart) return fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      const std::size_t expStart = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
      if (pos_ == expStart) return fail("malformed number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out->kind = JsonValue::Kind::Number;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->integer = v;
        out->isInteger = true;
      }
    }
    return Status::ok();
  }

  Status parseString(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            unsigned d;
            if (h >= '0' && h <= '9') d = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') d = static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') d = static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
            value = value * 16 + d;
          }
          // The journal only escapes control bytes; encode other code
          // points as UTF-8 so round-trips stay lossless.
          if (value < 0x80) {
            out->push_back(static_cast<char>(value));
          } else if (value < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (value >> 6)));
            out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (value >> 12)));
            out->push_back(static_cast<char>(0x80 | ((value >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (value & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  Status parseObject(JsonValue* out, int depth) {
    consume('{');
    out->kind = JsonValue::Kind::Object;
    skipWs();
    if (consume('}')) return Status::ok();
    while (true) {
      skipWs();
      std::string key;
      const Status ks = parseString(&key);
      if (!ks.isOk()) return ks;
      skipWs();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      const Status vs = parseValue(&value, depth + 1);
      if (!vs.isOk()) return vs;
      out->members.emplace_back(std::move(key), std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return fail("expected ',' or '}'");
    }
  }

  Status parseArray(JsonValue* out, int depth) {
    consume('[');
    out->kind = JsonValue::Kind::Array;
    skipWs();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue value;
      const Status vs = parseValue(&value, depth + 1);
      if (!vs.isOk()) return vs;
      out->items.push_back(std::move(value));
      skipWs();
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return fail("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

Result<JsonValue> parseJson(std::string_view text) {
  return JsonParser(text).parse();
}

// --- Record extraction ----------------------------------------------------

namespace {

/// Field readers: false means "absent or wrong type/range" - the caller
/// drops the whole record with a diagnostic rather than guessing.
bool getU64(const JsonValue& obj, const std::string& key, std::uint64_t* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number || !v->isInteger ||
      v->integer < 0)
    return false;
  *out = static_cast<std::uint64_t>(v->integer);
  return true;
}

bool getU32(const JsonValue& obj, const std::string& key, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!getU64(obj, key, &wide) || wide > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

/// Full-range uint64 carried as a decimal JSON *string* (a JSON number
/// would be clipped at int64 range by the parser; seeds use all 64 bits).
/// A plain in-range integer is also accepted.
bool getU64Wide(const JsonValue& obj, const std::string& key,
                std::uint64_t* out) {
  const JsonValue* v = obj.find(key);
  if (!v) return false;
  if (v->kind == JsonValue::Kind::Number) return getU64(obj, key, out);
  if (v->kind != JsonValue::Kind::String || v->str.empty() ||
      v->str.size() > 20)
    return false;
  std::uint64_t value = 0;
  for (char c : v->str) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  if (v->str.size() > 1 && v->str[0] == '0') return false;
  *out = value;
  return true;
}

bool getI64(const JsonValue& obj, const std::string& key, std::int64_t* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number || !v->isInteger) return false;
  *out = v->integer;
  return true;
}

bool getDouble(const JsonValue& obj, const std::string& key, double* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number) return false;
  *out = v->number;
  return true;
}

bool getString(const JsonValue& obj, const std::string& key,
               std::string* out) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::String) return false;
  *out = v->str;
  return true;
}

bool parseReport(const JsonValue& v, JournalOutputReport* out) {
  if (v.kind != JsonValue::Kind::Object) return false;
  if (!(getU32(v, "output", &out->output) &&
        getString(v, "name", &out->name) &&
        getString(v, "status", &out->status) &&
        getString(v, "limit", &out->limit) &&
        getI64(v, "conflicts_used", &out->conflictsUsed) &&
        getI64(v, "bdd_nodes_used", &out->bddNodesUsed) &&
        getDouble(v, "seconds", &out->seconds) &&
        getI64(v, "degrade_steps", &out->degradeSteps)))
    return false;
  // Isolation fields arrived after schema v1 shipped; absent keys default
  // (pre-isolation journals stay adoptable), present-but-malformed ones
  // still drop the record.
  if (v.find("attempts") && !getI64(v, "attempts", &out->attempts))
    return false;
  if (v.find("exit_cause") && !getString(v, "exit_cause", &out->exitCause))
    return false;
  return true;
}

bool parseRunStart(const JsonValue& v, JournalRunStart* out) {
  if (!getU32(v, "version", &out->version) ||
      !getString(v, "engine", &out->engine) ||
      !getU32(v, "impl_crc", &out->implCrc) ||
      !getU32(v, "spec_crc", &out->specCrc) ||
      !getString(v, "options", &out->optionsFingerprint) ||
      !getU64Wide(v, "seed", &out->seed) ||
      !getU64(v, "failing_outputs", &out->failingOutputsBefore))
    return false;
  const JsonValue* order = v.find("order");
  if (!order || order->kind != JsonValue::Kind::Array) return false;
  out->order.clear();
  for (const JsonValue& item : order->items) {
    if (item.kind != JsonValue::Kind::Number || !item.isInteger ||
        item.integer < 0 || item.integer > 0xFFFFFFFFll)
      return false;
    out->order.push_back(static_cast<std::uint32_t>(item.integer));
  }
  return true;
}

bool parseTracker(const JsonValue& v, JournalTrackerState* out) {
  if (v.kind != JsonValue::Kind::Object) return false;
  if (!getU64(v, "base_gates", &out->baseGates) ||
      !getU64(v, "base_nets", &out->baseNets))
    return false;
  const JsonValue* rewires = v.find("rewires");
  if (!rewires || rewires->kind != JsonValue::Kind::Array) return false;
  out->rewires.clear();
  for (const JsonValue& item : rewires->items) {
    if (item.kind != JsonValue::Kind::Array || item.items.size() != 4)
      return false;
    std::uint32_t f[4];
    for (int i = 0; i < 4; ++i) {
      const JsonValue& e = item.items[static_cast<std::size_t>(i)];
      if (e.kind != JsonValue::Kind::Number || !e.isInteger ||
          e.integer < 0 || e.integer > 0xFFFFFFFFll)
        return false;
      f[i] = static_cast<std::uint32_t>(e.integer);
    }
    out->rewires.push_back(JournalRewire{f[0], f[1], f[2], f[3]});
  }
  const JsonValue* cache = v.find("clone_cache");
  if (!cache || cache->kind != JsonValue::Kind::Array) return false;
  out->cloneCache.clear();
  for (const JsonValue& item : cache->items) {
    if (item.kind != JsonValue::Kind::Array || item.items.size() != 2)
      return false;
    std::uint32_t f[2];
    for (int i = 0; i < 2; ++i) {
      const JsonValue& e = item.items[static_cast<std::size_t>(i)];
      if (e.kind != JsonValue::Kind::Number || !e.isInteger ||
          e.integer < 0 || e.integer > 0xFFFFFFFFll)
        return false;
      f[i] = static_cast<std::uint32_t>(e.integer);
    }
    out->cloneCache.emplace_back(f[0], f[1]);
  }
  return true;
}

bool parseOutputRecord(const JsonValue& v, JournalOutputRecord* out) {
  const JsonValue* report = v.find("report");
  if (!report || !parseReport(*report, &out->report)) return false;
  const JsonValue* reports = v.find("reports");
  if (!reports || reports->kind != JsonValue::Kind::Array) return false;
  out->reports.clear();
  for (const JsonValue& item : reports->items) {
    JournalOutputReport r;
    if (!parseReport(item, &r)) return false;
    out->reports.push_back(std::move(r));
  }
  if (!getI64(v, "conflicts_used", &out->conflictsUsed) ||
      !getI64(v, "bdd_nodes_used", &out->bddNodesUsed) ||
      !getU64(v, "completed", &out->completed) ||
      !getU64(v, "planned", &out->planned) ||
      !getString(v, "netlist", &out->netlistDump))
    return false;
  const JsonValue* tracker = v.find("tracker");
  return tracker && parseTracker(*tracker, &out->tracker);
}

bool parseFleetEvent(const JsonValue& v, JournalFleetEvent* out) {
  return getString(v, "kind", &out->kind) &&
         getString(v, "worker", &out->worker) &&
         getU32(v, "output", &out->output) &&
         getI64(v, "attempt", &out->attempt) &&
         getString(v, "detail", &out->detail);
}

bool parseVerdicts(const JsonValue& v, JournalVerdicts* out) {
  const JsonValue* entries = v.find("outputs");
  if (!entries || entries->kind != JsonValue::Kind::Array) return false;
  out->entries.clear();
  for (const JsonValue& item : entries->items) {
    if (item.kind != JsonValue::Kind::Object) return false;
    JournalVerdictEntry e;
    const JsonValue* cert = item.find("certified");
    if (!(getU32(item, "output", &e.output) &&
          getString(item, "name", &e.name) && getString(item, "sat", &e.sat) &&
          getString(item, "bdd", &e.bdd) && getString(item, "sim", &e.sim) &&
          cert && cert->kind == JsonValue::Kind::Bool))
      return false;
    e.certified = cert->boolean;
    out->entries.push_back(std::move(e));
  }
  return getU64(v, "disagreements", &out->disagreements);
}

void serializeReportInto(std::ostringstream& os,
                         const JournalOutputReport& r) {
  os << "{\"output\":" << r.output << ",\"name\":\"" << jsonEscape(r.name)
     << "\",\"status\":\"" << jsonEscape(r.status) << "\",\"limit\":\""
     << jsonEscape(r.limit) << "\",\"conflicts_used\":" << r.conflictsUsed
     << ",\"bdd_nodes_used\":" << r.bddNodesUsed << ",\"seconds\":"
     << r.seconds << ",\"degrade_steps\":" << r.degradeSteps
     << ",\"attempts\":" << r.attempts << ",\"exit_cause\":\""
     << jsonEscape(r.exitCause) << "\"}";
}

}  // namespace

Result<JournalContents> readJournal(const std::string& dir) {
  Result<JournalScan> scanned = scanJournal(dir);
  if (!scanned.isOk()) return scanned.status();
  const JournalScan& scan = scanned.value();

  JournalContents contents;
  contents.diagnostics = scan.diagnostics;
  for (const JournalFrame& frame : scan.frames) {
    auto drop = [&](const std::string& why) {
      contents.diagnostics.push_back("journal.jsonl line " +
                                     std::to_string(frame.line) +
                                     ": record dropped: " + why);
    };
    Result<JsonValue> parsed = parseJson(frame.payload);
    if (!parsed.isOk()) {
      drop(parsed.status().message());
      continue;
    }
    const JsonValue& v = parsed.value();
    std::string type;
    if (!getString(v, "type", &type)) {
      drop("missing record type");
      continue;
    }
    if (type == "run_start") {
      JournalRunStart rs;
      if (!parseRunStart(v, &rs)) {
        drop("malformed run_start record");
        continue;
      }
      if (contents.hasRunStart) {
        drop("duplicate run_start record");
        continue;
      }
      contents.hasRunStart = true;
      contents.runStart = std::move(rs);
    } else if (type == "output") {
      JournalOutputRecord rec;
      rec.line = frame.line;
      if (!parseOutputRecord(v, &rec)) {
        drop("malformed output record");
        continue;
      }
      contents.outputs.push_back(std::move(rec));
    } else if (type == "verdicts") {
      JournalVerdicts verdicts;
      if (!parseVerdicts(v, &verdicts)) {
        drop("malformed verdicts record");
        continue;
      }
      // Last wins: a resumed run re-certifies and re-appends.
      contents.hasVerdicts = true;
      contents.verdicts = std::move(verdicts);
    } else if (type == "fleet") {
      JournalFleetEvent ev;
      if (!parseFleetEvent(v, &ev)) {
        drop("malformed fleet record");
        continue;
      }
      contents.fleetEvents.push_back(std::move(ev));
    } else if (type == "interrupted") {
      contents.interrupted = true;
    } else {
      drop("unknown record type '" + type + "'");
    }
  }
  return contents;
}

std::string serializeRunStart(const JournalRunStart& r) {
  std::ostringstream os;
  os << "{\"type\":\"run_start\",\"version\":" << r.version
     << ",\"engine\":\"" << jsonEscape(r.engine) << "\",\"impl_crc\":"
     << r.implCrc << ",\"spec_crc\":" << r.specCrc << ",\"options\":\""
     << jsonEscape(r.optionsFingerprint) << "\",\"seed\":\"" << r.seed
     << "\",\"failing_outputs\":" << r.failingOutputsBefore << ",\"order\":[";
  for (std::size_t i = 0; i < r.order.size(); ++i)
    os << (i ? "," : "") << r.order[i];
  os << "]}";
  return os.str();
}

std::string serializeOutputRecord(const JournalOutputRecord& r) {
  std::ostringstream os;
  os << "{\"type\":\"output\",\"report\":";
  serializeReportInto(os, r.report);
  os << ",\"reports\":[";
  for (std::size_t i = 0; i < r.reports.size(); ++i) {
    if (i) os << ",";
    serializeReportInto(os, r.reports[i]);
  }
  os << "],\"conflicts_used\":" << r.conflictsUsed << ",\"bdd_nodes_used\":"
     << r.bddNodesUsed << ",\"completed\":" << r.completed << ",\"planned\":"
     << r.planned << ",\"tracker\":{\"base_gates\":" << r.tracker.baseGates
     << ",\"base_nets\":" << r.tracker.baseNets << ",\"rewires\":[";
  for (std::size_t i = 0; i < r.tracker.rewires.size(); ++i) {
    const JournalRewire& w = r.tracker.rewires[i];
    os << (i ? "," : "") << "[" << w.gate << "," << w.port << "," << w.oldNet
       << "," << w.newNet << "]";
  }
  os << "],\"clone_cache\":[";
  for (std::size_t i = 0; i < r.tracker.cloneCache.size(); ++i) {
    os << (i ? "," : "") << "[" << r.tracker.cloneCache[i].first << ","
       << r.tracker.cloneCache[i].second << "]";
  }
  os << "]},\"netlist\":\"" << jsonEscape(r.netlistDump) << "\"}";
  return os.str();
}

std::string serializeVerdicts(const JournalVerdicts& r) {
  std::ostringstream os;
  os << "{\"type\":\"verdicts\",\"outputs\":[";
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    const JournalVerdictEntry& e = r.entries[i];
    os << (i ? "," : "") << "{\"output\":" << e.output << ",\"name\":\""
       << jsonEscape(e.name) << "\",\"sat\":\"" << jsonEscape(e.sat)
       << "\",\"bdd\":\"" << jsonEscape(e.bdd) << "\",\"sim\":\""
       << jsonEscape(e.sim) << "\",\"certified\":"
       << (e.certified ? "true" : "false") << "}";
  }
  os << "],\"disagreements\":" << r.disagreements << "}";
  return os.str();
}

std::string serializeFleetEvent(const JournalFleetEvent& r) {
  std::ostringstream os;
  os << "{\"type\":\"fleet\",\"kind\":\"" << jsonEscape(r.kind)
     << "\",\"worker\":\"" << jsonEscape(r.worker)
     << "\",\"output\":" << r.output << ",\"attempt\":" << r.attempt
     << ",\"detail\":\"" << jsonEscape(r.detail) << "\"}";
  return os.str();
}

std::string serializeInterrupted(std::uint64_t completed,
                                 std::uint64_t planned) {
  std::ostringstream os;
  os << "{\"type\":\"interrupted\",\"completed\":" << completed
     << ",\"planned\":" << planned << "}";
  return os.str();
}

std::string serializeServeEvent(const JournalServeEvent& r) {
  std::ostringstream os;
  os << "{\"type\":\"serve\",\"event\":\"" << jsonEscape(r.event)
     << "\",\"job\":\"" << jsonEscape(r.job) << "\",\"tenant\":\""
     << jsonEscape(r.tenant) << "\",\"format\":\"" << jsonEscape(r.format)
     << "\",\"seed\":\"" << r.seed << "\",\"jobs\":" << r.jobs
     << ",\"detach\":" << (r.detach ? "true" : "false")
     << ",\"isolate\":" << (r.isolate ? "true" : "false")
     << ",\"bytes\":" << r.bytes << ",\"attempt\":" << r.attempt
     << ",\"exit_code\":" << r.exitCode << ",\"cause\":\""
     << jsonEscape(r.cause) << "\",\"detail\":\"" << jsonEscape(r.detail)
     << "\",\"fault_inject\":\"" << jsonEscape(r.faultInject) << "\"}";
  return os.str();
}

Result<JournalServeEvent> parseServeEvent(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  std::string type;
  if (!getString(v, "type", &type) || type != "serve")
    return Status::invalidInput("serve record: wrong or missing type");
  JournalServeEvent out;
  const JsonValue* detach = v.find("detach");
  const JsonValue* isolate = v.find("isolate");
  if (!(getString(v, "event", &out.event) && getString(v, "job", &out.job) &&
        getString(v, "tenant", &out.tenant) &&
        getString(v, "format", &out.format) &&
        getU64Wide(v, "seed", &out.seed) && getI64(v, "jobs", &out.jobs) &&
        detach && detach->kind == JsonValue::Kind::Bool &&
        isolate && isolate->kind == JsonValue::Kind::Bool &&
        getU64(v, "bytes", &out.bytes) &&
        getI64(v, "attempt", &out.attempt) &&
        getI64(v, "exit_code", &out.exitCode) &&
        getString(v, "cause", &out.cause) &&
        getString(v, "detail", &out.detail) &&
        getString(v, "fault_inject", &out.faultInject)))
    return Status::invalidInput("serve record: malformed fields");
  out.detach = detach->boolean;
  out.isolate = isolate->boolean;
  if (out.event.empty())
    return Status::invalidInput("serve record: empty event");
  return out;
}

std::string serializeBatchEvent(const JournalBatchEvent& r) {
  std::ostringstream os;
  os << "{\"type\":\"batch\",\"event\":\"" << jsonEscape(r.event)
     << "\",\"name\":\"" << jsonEscape(r.name) << "\",\"impl\":\""
     << jsonEscape(r.impl) << "\",\"spec\":\"" << jsonEscape(r.spec)
     << "\",\"seed\":\"" << r.seed << "\",\"jobs\":" << r.jobs
     << ",\"worker\":\"" << jsonEscape(r.worker) << "\",\"epoch\":\""
     << r.epoch << "\",\"attempt\":" << r.attempt
     << ",\"exit_code\":" << r.exitCode << ",\"cause\":\""
     << jsonEscape(r.cause) << "\",\"detail\":\"" << jsonEscape(r.detail)
     << "\",\"cache_hits\":" << r.cacheHits
     << ",\"cache_misses\":" << r.cacheMisses
     << ",\"cache_evictions\":" << r.cacheEvictions << "}";
  return os.str();
}

Result<JournalBatchEvent> parseBatchEvent(std::string_view payload) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& v = parsed.value();
  std::string type;
  if (!getString(v, "type", &type) || type != "batch")
    return Status::invalidInput("batch record: wrong or missing type");
  JournalBatchEvent out;
  if (!(getString(v, "event", &out.event) && getString(v, "name", &out.name) &&
        getString(v, "impl", &out.impl) && getString(v, "spec", &out.spec) &&
        getU64Wide(v, "seed", &out.seed) && getI64(v, "jobs", &out.jobs) &&
        getString(v, "worker", &out.worker) &&
        getU64Wide(v, "epoch", &out.epoch) &&
        getI64(v, "attempt", &out.attempt) &&
        getI64(v, "exit_code", &out.exitCode) &&
        getString(v, "cause", &out.cause) &&
        getString(v, "detail", &out.detail) &&
        getU64(v, "cache_hits", &out.cacheHits) &&
        getU64(v, "cache_misses", &out.cacheMisses) &&
        getU64(v, "cache_evictions", &out.cacheEvictions)))
    return Status::invalidInput("batch record: malformed fields");
  if (out.event.empty())
    return Status::invalidInput("batch record: empty event");
  return out;
}

}  // namespace syseco
