#pragma once
// Internal glue for the Status-returning ("checked") reader variants: runs
// a throwing parser and folds every escape hatch into a Status - malformed
// input becomes kInvalidInput with the parser's file/line diagnostic,
// allocation failure becomes kInternal, and a StatusError passes its
// payload through unchanged. Also hosts the parsers' fault-injection entry
// points (sites "io.blif", "io.netlist", "io.verilog").

#include <new>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/fault.hpp"
#include "util/status.hpp"

namespace syseco::io_detail {

/// Fault-injection hook at a parser entry point: an `alloc` trigger makes
/// the parse behave as if an allocation failed mid-way, a `budget` or
/// `deadline` trigger as if a governed caller's limit tripped.
inline void hitParseSite(const char* site) {
  if (const auto kind = fault::fire(site)) {
    switch (*kind) {
      case fault::Kind::kAllocFailure:
        throw std::bad_alloc();
      case fault::Kind::kBudgetExhausted:
        throw StatusError(Status::budgetExhausted(
            std::string("fault injected at ") + site));
      case fault::Kind::kDeadlineExceeded:
        throw StatusError(Status::deadlineExceeded(
            std::string("fault injected at ") + site));
      case fault::Kind::kBddBlowup:
        break;  // meaningless in a parser; ignore
      case fault::Kind::kCrash:
        break;  // unreachable: Injector::fire exits before returning
    }
  }
}

template <typename Fn>
auto guardedParse(const char* what, Fn&& fn)
    -> Result<decltype(fn())> {
  try {
    return fn();
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::bad_alloc&) {
    return Status::internal(std::string(what) +
                            ": allocation failed while parsing");
  } catch (const std::exception& e) {
    return Status::invalidInput(e.what());
  }
}

/// Prefixes a path to a non-ok status message so file-level wrappers report
/// which file was bad.
template <typename T>
Result<T> withPath(const std::string& path, Result<T> r) {
  if (r.isOk()) return r;
  return Status(r.status().code(), path + ": " + r.status().message());
}

}  // namespace syseco::io_detail
