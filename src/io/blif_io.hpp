#pragma once
// Berkeley Logic Interchange Format (BLIF) subset reader/writer.
//
// Supported constructs:
//   .model / .inputs / .outputs / .end
//   .names <in...> <out>   followed by single-output SOP cover rows
//                          ("-01 1" style; both on-set and off-set covers)
//   .latch                 rejected (combinational ECO scope, paper §2)
//   .subckt / .gate        rejected (flat covers only)
//
// Covers are translated into gate logic: each on-set row becomes an AND of
// literals, rows are OR-ed; off-set covers ("... 0" rows) are built the
// same way and complemented. This is enough to exchange circuits with ABC
// and the ISCAS/ITC benchmark translations commonly shipped as BLIF.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

/// Parses a BLIF model. Throws std::runtime_error with a line-accurate
/// message on malformed or unsupported input.
Netlist readBlif(std::istream& is);

/// Non-throwing variant: malformed input comes back as kInvalidInput with
/// the same line-accurate diagnostic, allocation failure as kInternal. The
/// parse itself never crashes or aborts on hostile input.
Result<Netlist> readBlifChecked(std::istream& is);

/// Serializes the netlist as BLIF: every gate becomes a .names cover.
void writeBlif(std::ostream& os, const Netlist& netlist,
               const std::string& modelName = "syseco");

/// File wrappers.
Netlist loadBlif(const std::string& path);
Result<Netlist> loadBlifChecked(const std::string& path);
void saveBlif(const std::string& path, const Netlist& netlist,
              const std::string& modelName = "syseco");

}  // namespace syseco
