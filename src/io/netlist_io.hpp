#pragma once
// Plain-text netlist interchange format (reader/writer).
//
// The format is a BLIF-inspired gate-level description that maps 1:1 onto
// the data model:
//
//   .model adder4
//   .inputs a0 a1 b0 b1
//   .outputs s0 s1
//   .gate xor t0 a0 b0
//   .gate and t1 a0 b0
//   ...
//   .assign s0 t0
//   .end
//
// `.gate TYPE OUT FANINS...` creates a gate whose output net is named OUT;
// fanins reference earlier input or gate names. `.assign OUTPUT NET` drives
// a declared output from a named net. Used by the examples, debugging dumps
// and round-trip tests.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

/// Serializes `netlist` (live logic only). Internal nets get synthetic
/// names (n<id>) unless they carry a label.
void writeNetlist(std::ostream& os, const Netlist& netlist,
                  const std::string& modelName = "model");

/// Parses the textual format. Throws std::runtime_error with a
/// line-accurate message on malformed input.
Netlist readNetlist(std::istream& is);

/// Non-throwing variant: malformed input comes back as kInvalidInput with
/// the same line-accurate diagnostic, allocation failure as kInternal.
Result<Netlist> readNetlistChecked(std::istream& is);

/// Convenience file wrappers.
void saveNetlist(const std::string& path, const Netlist& netlist,
                 const std::string& modelName = "model");
Netlist loadNetlist(const std::string& path);
Result<Netlist> loadNetlistChecked(const std::string& path);

}  // namespace syseco
