#include "io/blif_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "io/parse_guard.hpp"
#include "util/check.hpp"

namespace syseco {

namespace {

struct Cover {
  std::vector<std::string> signals;  ///< inputs..., output last
  std::vector<std::string> rows;     ///< "<mask> <value>" rows
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("blif: " + msg + " at line " +
                           std::to_string(line));
}

/// Continuation-aware, comment-stripping line reader.
bool nextLogicalLine(std::istream& is, std::string& out, int& line) {
  out.clear();
  std::string raw;
  while (std::getline(is, raw)) {
    ++line;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    // Trim trailing whitespace.
    while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\t' ||
                            raw.back() == '\r'))
      raw.pop_back();
    if (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      out += raw;
      continue;  // continuation
    }
    out += raw;
    if (out.find_first_not_of(" \t") == std::string::npos) {
      out.clear();
      continue;  // blank
    }
    return true;
  }
  return !out.empty();
}

std::vector<std::string> tokens(const std::string& s) {
  std::istringstream ls(s);
  std::vector<std::string> out;
  std::string t;
  while (ls >> t) out.push_back(t);
  return out;
}

}  // namespace

Netlist readBlif(std::istream& is) {
  io_detail::hitParseSite("io.blif");
  Netlist nl;
  std::unordered_map<std::string, NetId> netByName;
  std::vector<std::string> declaredOutputs;
  std::vector<Cover> covers;
  Cover* open = nullptr;
  int line = 0;
  std::string text;
  bool sawModel = false, sawEnd = false;

  while (nextLogicalLine(is, text, line)) {
    const auto tok = tokens(text);
    if (tok.empty()) continue;
    const std::string& head = tok[0];
    if (head[0] == '.') {
      open = nullptr;
      if (head == ".model") {
        sawModel = true;
      } else if (head == ".inputs") {
        for (std::size_t i = 1; i < tok.size(); ++i) {
          if (netByName.count(tok[i])) fail(line, "duplicate input " + tok[i]);
          netByName.emplace(tok[i], nl.addInput(tok[i]));
        }
      } else if (head == ".outputs") {
        for (std::size_t i = 1; i < tok.size(); ++i) {
          if (std::find(declaredOutputs.begin(), declaredOutputs.end(),
                        tok[i]) != declaredOutputs.end())
            fail(line, "duplicate output " + tok[i]);
          declaredOutputs.push_back(tok[i]);
        }
      } else if (head == ".names") {
        if (tok.size() < 2) fail(line, ".names needs at least an output");
        covers.push_back(Cover{{tok.begin() + 1, tok.end()}, {}, line});
        open = &covers.back();
      } else if (head == ".end") {
        sawEnd = true;
        break;
      } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
        fail(line, "unsupported construct " + head +
                       " (combinational flat BLIF only)");
      } else {
        fail(line, "unknown directive " + head);
      }
    } else {
      if (!open) fail(line, "cover row outside .names");
      if (tok.size() == 1 && open->signals.size() == 1) {
        // Constant cover: single column "1" or "0".
        open->rows.push_back(tok[0]);
      } else if (tok.size() == 2) {
        open->rows.push_back(tok[0] + " " + tok[1]);
      } else {
        fail(line, "malformed cover row");
      }
    }
  }
  if (!sawModel) fail(line, "missing .model");
  if (!sawEnd) fail(line + 1, "missing .end");

  // Build cover gates in dependency order (BLIF allows any order).
  std::vector<char> built(covers.size(), 0);
  std::size_t remaining = covers.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t ci = 0; ci < covers.size(); ++ci) {
      if (built[ci]) continue;
      Cover& c = covers[ci];
      const std::string& outName = c.signals.back();
      bool ready = true;
      for (std::size_t i = 0; i + 1 < c.signals.size(); ++i)
        ready &= netByName.count(c.signals[i]) > 0;
      if (!ready) continue;

      const std::size_t numIn = c.signals.size() - 1;
      NetId result = kNullId;
      if (numIn == 0) {
        // Constant: "1" row => const1, empty/absent or "0" => const0.
        bool one = false;
        for (const std::string& r : c.rows) one |= (r == "1");
        result = nl.addGate(one ? GateType::Const1 : GateType::Const0, {});
      } else {
        // Decode rows; determine cover polarity from the value column.
        bool onSet = true;
        std::vector<std::string> masks;
        for (const std::string& r : c.rows) {
          const auto parts = tokens(r);
          if (parts.size() != 2 || parts[0].size() != numIn)
            fail(c.line, "bad cover row '" + r + "'");
          onSet = parts[1] == "1";
          if (parts[1] != "0" && parts[1] != "1")
            fail(c.line, "bad cover value '" + parts[1] + "'");
          masks.push_back(parts[0]);
        }
        if (masks.empty()) {
          result = nl.addGate(GateType::Const0, {});
        } else {
          std::vector<NetId> terms;
          for (const std::string& mask : masks) {
            std::vector<NetId> lits;
            for (std::size_t i = 0; i < numIn; ++i) {
              const NetId in = netByName.at(c.signals[i]);
              if (mask[i] == '1') {
                lits.push_back(in);
              } else if (mask[i] == '0') {
                lits.push_back(nl.addGate(GateType::Not, {in}));
              } else if (mask[i] != '-') {
                fail(c.line, "bad cover literal");
              }
            }
            if (lits.empty()) {
              terms.push_back(nl.addGate(GateType::Const1, {}));
            } else if (lits.size() == 1) {
              terms.push_back(lits[0]);
            } else {
              terms.push_back(nl.addGate(GateType::And, lits));
            }
          }
          result = terms.size() == 1 ? terms[0]
                                     : nl.addGate(GateType::Or, terms);
          if (!onSet) result = nl.addGate(GateType::Not, {result});
        }
      }
      if (netByName.count(outName))
        fail(c.line, "signal " + outName + " driven twice");
      netByName.emplace(outName, result);
      built[ci] = 1;
      --remaining;
      progress = true;
    }
    if (!progress) fail(line, "combinational cycle among .names covers");
  }

  for (const std::string& o : declaredOutputs) {
    const auto it = netByName.find(o);
    if (it == netByName.end()) fail(line, "undriven output " + o);
    nl.addOutput(o, it->second);
  }
  std::string why;
  if (!nl.isWellFormed(&why)) fail(line, "ill-formed result: " + why);
  return nl;
}

void writeBlif(std::ostream& os, const Netlist& netlist,
               const std::string& modelName) {
  os << ".model " << modelName << "\n.inputs";
  for (std::uint32_t i = 0; i < netlist.numInputs(); ++i)
    os << ' ' << netlist.inputName(i);
  os << "\n.outputs";
  for (std::uint32_t o = 0; o < netlist.numOutputs(); ++o)
    os << ' ' << netlist.outputName(o);
  os << "\n";

  auto name = [&](NetId n) -> std::string {
    const auto& net = netlist.net(n);
    if (net.srcKind == Netlist::SourceKind::Input)
      return netlist.inputName(net.srcIdx);
    return "n" + std::to_string(n);
  };

  for (GateId g : netlist.topoOrder()) {
    const auto& gate = netlist.gate(g);
    os << ".names";
    for (NetId f : gate.fanins) os << ' ' << name(f);
    os << ' ' << name(gate.out) << "\n";
    const std::size_t k = gate.fanins.size();
    switch (gate.type) {
      case GateType::Const0:
        break;  // empty cover = constant 0
      case GateType::Const1:
        os << "1\n";
        break;
      case GateType::Buf:
        os << "1 1\n";
        break;
      case GateType::Not:
        os << "0 1\n";
        break;
      case GateType::And:
        os << std::string(k, '1') << " 1\n";
        break;
      case GateType::Nand:
        os << std::string(k, '1') << " 0\n";
        break;
      case GateType::Or:
        for (std::size_t i = 0; i < k; ++i) {
          std::string row(k, '-');
          row[i] = '1';
          os << row << " 1\n";
        }
        break;
      case GateType::Nor:
        os << std::string(k, '0') << " 1\n";
        break;
      case GateType::Xor:
      case GateType::Xnor: {
        // Enumerate parity rows (fanin counts are small in practice; the
        // writer splits nothing, so keep XOR arity modest before export).
        SYSECO_CHECK(k <= 16);
        for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
          int ones = 0;
          std::string row(k, '0');
          for (std::size_t i = 0; i < k; ++i) {
            if ((m >> i) & 1) {
              row[i] = '1';
              ++ones;
            }
          }
          const bool value = (ones % 2 == 1) == (gate.type == GateType::Xor);
          if (value) os << row << " 1\n";
        }
        break;
      }
      case GateType::Mux:
        os << "01- 1\n1-1 1\n";  // (sel, d0, d1)
        break;
    }
  }

  // Outputs that alias an input or another named net need a buffer cover.
  for (std::uint32_t o = 0; o < netlist.numOutputs(); ++o) {
    const std::string src = name(netlist.outputNet(o));
    if (src != netlist.outputName(o))
      os << ".names " << src << ' ' << netlist.outputName(o) << "\n1 1\n";
  }
  os << ".end\n";
}

Result<Netlist> readBlifChecked(std::istream& is) {
  return io_detail::guardedParse("blif", [&] { return readBlif(is); });
}

Netlist loadBlif(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("blif: cannot open " + path);
  return readBlif(f);
}

Result<Netlist> loadBlifChecked(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::invalidInput("blif: cannot open " + path);
  return io_detail::withPath(path, readBlifChecked(f));
}

void saveBlif(const std::string& path, const Netlist& netlist,
              const std::string& modelName) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("blif: cannot open " + path);
  writeBlif(f, netlist, modelName);
}

}  // namespace syseco
