#include "io/netlist_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "io/parse_guard.hpp"
#include "util/check.hpp"

namespace syseco {

namespace {

GateType gateTypeFromName(const std::string& s, int line) {
  if (s == "const0") return GateType::Const0;
  if (s == "const1") return GateType::Const1;
  if (s == "buf") return GateType::Buf;
  if (s == "not") return GateType::Not;
  if (s == "and") return GateType::And;
  if (s == "or") return GateType::Or;
  if (s == "nand") return GateType::Nand;
  if (s == "nor") return GateType::Nor;
  if (s == "xor") return GateType::Xor;
  if (s == "xnor") return GateType::Xnor;
  if (s == "mux") return GateType::Mux;
  throw std::runtime_error("netlist_io: unknown gate type '" + s + "' at line " +
                           std::to_string(line));
}

}  // namespace

void writeNetlist(std::ostream& os, const Netlist& netlist,
                  const std::string& modelName) {
  os << ".model " << modelName << "\n";
  os << ".inputs";
  for (std::uint32_t i = 0; i < netlist.numInputs(); ++i)
    os << ' ' << netlist.inputName(i);
  os << "\n.outputs";
  for (std::uint32_t o = 0; o < netlist.numOutputs(); ++o)
    os << ' ' << netlist.outputName(o);
  os << "\n";

  auto netName = [&](NetId n) -> std::string {
    const auto& net = netlist.net(n);
    if (net.srcKind == Netlist::SourceKind::Input)
      return netlist.inputName(net.srcIdx);
    return "n" + std::to_string(n);
  };

  for (GateId g : netlist.topoOrder()) {
    const Netlist::Gate& gate = netlist.gate(g);
    os << ".gate " << gateTypeName(gate.type) << ' ' << netName(gate.out);
    for (NetId f : gate.fanins) os << ' ' << netName(f);
    os << "\n";
  }
  for (std::uint32_t o = 0; o < netlist.numOutputs(); ++o)
    os << ".assign " << netlist.outputName(o) << ' '
       << netName(netlist.outputNet(o)) << "\n";
  os << ".end\n";
}

Netlist readNetlist(std::istream& is) {
  io_detail::hitParseSite("io.netlist");
  Netlist out;
  std::unordered_map<std::string, NetId> netByName;
  std::vector<std::string> declaredOutputs;
  std::unordered_set<std::string> assignedOutputs;
  std::string lineText;
  int line = 0;
  bool sawEnd = false;

  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error("netlist_io: " + msg + " at line " +
                             std::to_string(line));
  };

  while (std::getline(is, lineText)) {
    ++line;
    // Strip comments.
    if (const auto hash = lineText.find('#'); hash != std::string::npos)
      lineText.resize(hash);
    std::istringstream ls(lineText);
    std::string tok;
    if (!(ls >> tok)) continue;

    if (tok == ".model") {
      // Name is informational only.
    } else if (tok == ".inputs") {
      std::string name;
      while (ls >> name) {
        if (netByName.count(name)) fail("duplicate name '" + name + "'");
        netByName.emplace(name, out.addInput(name));
      }
    } else if (tok == ".outputs") {
      std::string name;
      while (ls >> name) declaredOutputs.push_back(name);
    } else if (tok == ".gate") {
      std::string typeName, outName, faninName;
      if (!(ls >> typeName >> outName)) fail("malformed .gate");
      const GateType type = gateTypeFromName(typeName, line);
      std::vector<NetId> fanins;
      while (ls >> faninName) {
        auto it = netByName.find(faninName);
        if (it == netByName.end()) fail("unknown net '" + faninName + "'");
        fanins.push_back(it->second);
      }
      const std::uint8_t arity = gateArity(type);
      if (arity != 0xFF && fanins.size() != arity) fail("bad gate arity");
      if (arity == 0xFF && fanins.empty()) fail("bad gate arity");
      if (netByName.count(outName)) fail("duplicate name '" + outName + "'");
      netByName.emplace(outName, out.addGate(type, fanins));
    } else if (tok == ".assign") {
      std::string outName, netName;
      if (!(ls >> outName >> netName)) fail("malformed .assign");
      auto it = netByName.find(netName);
      if (it == netByName.end()) fail("unknown net '" + netName + "'");
      bool declared = false;
      for (const auto& d : declaredOutputs) declared |= (d == outName);
      if (!declared) fail("output '" + outName + "' not declared");
      if (!assignedOutputs.insert(outName).second)
        fail("output '" + outName + "' assigned twice");
      out.addOutput(outName, it->second);
    } else if (tok == ".end") {
      sawEnd = true;
      break;
    } else {
      fail("unknown directive '" + tok + "'");
    }
  }
  if (!sawEnd) {
    line = line + 1;
    fail("missing .end");
  }
  if (out.numOutputs() != declaredOutputs.size())
    fail("not every declared output was assigned");
  std::string why;
  if (!out.isWellFormed(&why)) fail("ill-formed netlist: " + why);
  return out;
}

void saveNetlist(const std::string& path, const Netlist& netlist,
                 const std::string& modelName) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("netlist_io: cannot open " + path);
  writeNetlist(f, netlist, modelName);
}

Result<Netlist> readNetlistChecked(std::istream& is) {
  return io_detail::guardedParse("netlist_io",
                                 [&] { return readNetlist(is); });
}

Netlist loadNetlist(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("netlist_io: cannot open " + path);
  return readNetlist(f);
}

Result<Netlist> loadNetlistChecked(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::invalidInput("netlist_io: cannot open " + path);
  return io_detail::withPath(path, readNetlistChecked(f));
}

}  // namespace syseco
