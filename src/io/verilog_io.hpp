#pragma once
// Structural Verilog writer: emits the netlist as a synthesizable module
// over primitive continuous assignments (assign/&,|,^,~ and ?:). Useful for
// handing patched implementations back to a standard flow.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace syseco {

void writeVerilog(std::ostream& os, const Netlist& netlist,
                  const std::string& moduleName = "syseco_design");

void saveVerilog(const std::string& path, const Netlist& netlist,
                 const std::string& moduleName = "syseco_design");

}  // namespace syseco
