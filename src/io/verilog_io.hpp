#pragma once
// Structural Verilog writer + subset reader. The writer emits the netlist
// as a synthesizable module over primitive continuous assignments
// (assign/&,|,^,~ and ?:), useful for handing patched implementations back
// to a standard flow; the reader accepts exactly that subset (one module,
// scalar ports, wire declarations, primitive assigns in dependency order)
// so round-trips and externally patched dumps can come back in.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/status.hpp"

namespace syseco {

void writeVerilog(std::ostream& os, const Netlist& netlist,
                  const std::string& moduleName = "syseco_design");

void saveVerilog(const std::string& path, const Netlist& netlist,
                 const std::string& moduleName = "syseco_design");

/// Parses the structural subset writeVerilog emits. Throws
/// std::runtime_error with a line-accurate message on anything else.
Netlist readVerilog(std::istream& is);

/// Non-throwing variant: malformed input comes back as kInvalidInput with
/// the same line-accurate diagnostic, allocation failure as kInternal.
Result<Netlist> readVerilogChecked(std::istream& is);

Netlist loadVerilog(const std::string& path);
Result<Netlist> loadVerilogChecked(const std::string& path);

}  // namespace syseco
