#pragma once
// Run-journal record schema (JSON payloads inside util/journal.hpp frames).
//
// Three record types, written by the CLI through the engine's hooks:
//
//   run_start   - fingerprints (impl/spec CRC, options, seed) plus the
//                 failing-output count and planned processing order.
//   output      - one completed per-output rectification. Self-contained
//                 and cumulative: it carries the full working-netlist
//                 snapshot, the full tracker state and the cumulative
//                 report list, so resume needs only the *last* valid
//                 output record - corrupt earlier records cost nothing.
//   interrupted - a clean signal-initiated stop (progress marker only).
//   fleet       - one --workers lifecycle event (a classified worker
//                 failure, a stale-epoch rejection, worker death,
//                 degradation to in-process execution). Observability only:
//                 timing-dependent by nature, ignored by resume, and never
//                 part of the bit-compared verdict records.
//   verdicts    - the certification oracle's per-output route verdicts for
//                 the finished run. Deliberately timing-free so the record
//                 is bit-identical across --jobs/--isolate/--resume.
//
// This layer parses and serializes payloads into plain structs; it knows
// nothing about the engine types (src/eco/resume.cpp does the mapping and
// the independent re-certification). Parsing is fuzz-hardened: arbitrary
// bytes yield kInvalidInput or a dropped-record diagnostic, never UB.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace syseco {

// --- Minimal strict JSON --------------------------------------------------

struct JsonValue {
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;        ///< every Number, lossy for huge ints
  std::int64_t integer = 0;   ///< exact when isInteger
  bool isInteger = false;
  std::string str;
  std::vector<JsonValue> items;                            ///< Array
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

  /// First member with `key`, or nullptr. Linear: journal objects are tiny.
  const JsonValue* find(const std::string& key) const;
};

/// Strict parse of one JSON document (entire input must be consumed).
/// Depth-capped so adversarial nesting cannot overflow the stack.
Result<JsonValue> parseJson(std::string_view text);

// --- Record structs -------------------------------------------------------

inline constexpr std::uint32_t kJournalSchemaVersion = 1;

struct JournalOutputReport {
  std::uint32_t output = 0;
  std::string name;
  std::string status;  ///< outputRectStatusName value
  std::string limit;   ///< statusCodeName value
  std::int64_t conflictsUsed = 0;
  std::int64_t bddNodesUsed = 0;
  double seconds = 0.0;
  std::int64_t degradeSteps = 0;
  /// Isolation-supervisor account: failed worker attempts and the last
  /// failure's cause (workerExitCauseName value). Absent keys parse as the
  /// defaults so pre-isolation journals stay resumable.
  std::int64_t attempts = 0;
  std::string exitCause = "ok";
};

struct JournalRunStart {
  std::uint32_t version = kJournalSchemaVersion;
  std::string engine;
  std::uint32_t implCrc = 0;
  std::uint32_t specCrc = 0;
  std::string optionsFingerprint;
  std::uint64_t seed = 0;
  std::uint64_t failingOutputsBefore = 0;
  std::vector<std::uint32_t> order;
};

struct JournalRewire {
  std::uint32_t gate = 0;  ///< kNullId when the sink is a primary output
  std::uint32_t port = 0;
  std::uint32_t oldNet = 0;
  std::uint32_t newNet = 0;
};

struct JournalTrackerState {
  std::uint64_t baseGates = 0;
  std::uint64_t baseNets = 0;
  std::vector<JournalRewire> rewires;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cloneCache;
};

struct JournalOutputRecord {
  std::size_t line = 0;  ///< journal.jsonl line (diagnostics)
  JournalOutputReport report;                 ///< the just-finished output
  std::vector<JournalOutputReport> reports;   ///< cumulative
  std::int64_t conflictsUsed = 0;             ///< cumulative run totals
  std::int64_t bddNodesUsed = 0;
  std::uint64_t completed = 0;
  std::uint64_t planned = 0;
  JournalTrackerState tracker;
  std::string netlistDump;  ///< Netlist::dumpRaw text of the working netlist
};

/// One certified output pair: the three route verdicts (routeVerdictName
/// strings) plus the combined judgement.
struct JournalVerdictEntry {
  std::uint32_t output = 0;
  std::string name;
  std::string sat;
  std::string bdd;
  std::string sim;
  bool certified = false;
};

struct JournalVerdicts {
  std::vector<JournalVerdictEntry> entries;
  std::uint64_t disagreements = 0;
};

/// One fleet lifecycle event (mirrors eco/syseco.hpp's FleetEvent; this
/// layer stays engine-type-free by design).
struct JournalFleetEvent {
  std::string kind;    ///< taxonomy cause or lifecycle tag
  std::string worker;  ///< "host:port"; empty for fleet-wide events
  std::uint32_t output = 0;
  std::int64_t attempt = 0;
  std::string detail;
};

/// One durable state transition of the --serve daemon's job queue (the
/// serve WAL reuses the util/journal framing but lives in its own
/// directory, so these records never mix with an engine run journal).
/// Engine-type-free like the fleet events: src/serve owns the semantics.
struct JournalServeEvent {
  std::string event;   ///< submitted|running|done|failed|cancelled|recovered|note
  std::string job;     ///< daemon-assigned job id; empty for daemon-wide notes
  std::string tenant;
  std::string format;  ///< netlist text format of the job's payloads
  std::uint64_t seed = 0;
  std::int64_t jobs = 1;        ///< worker threads requested for the job
  bool detach = false;          ///< survives the submitting connection
  bool isolate = false;         ///< run the job's workers under --isolate
  std::uint64_t bytes = 0;      ///< resident payload bytes (admission ledger)
  std::int64_t attempt = 0;     ///< dispatch ordinal for running/failed
  std::int64_t exitCode = 0;    ///< worker exit code for done
  std::string cause;            ///< failure/cancel classification
  std::string detail;
  std::string faultInject;      ///< test hook carried into the job's worker
};

std::string serializeServeEvent(const JournalServeEvent& r);

/// Parses one serve WAL payload (a single JSON object with type "serve").
/// Hardened like the rest of the journal parsers: arbitrary bytes yield
/// kInvalidInput, never UB.
Result<JournalServeEvent> parseServeEvent(std::string_view payload);

/// One durable state transition of a --batch sweep's case ledger (the batch
/// WAL: same framing and fold-on-open recovery style as the serve WAL, its
/// own directory). Engine-type-free: src/serve/batch_ledger owns the
/// semantics.
struct JournalBatchEvent {
  std::string event;  ///< registered|dispatched|done|failed|requeued|note
  std::string name;   ///< manifest case name; empty for batch-wide notes
  std::string impl;   ///< manifest paths (registered only, else empty)
  std::string spec;
  std::uint64_t seed = 0;
  std::int64_t jobs = 1;      ///< per-case worker threads (--jobs)
  std::string worker;         ///< "host:port" for dispatched; "" for local
  std::uint64_t epoch = 0;    ///< fleet assignment epoch for dispatched
  std::int64_t attempt = 0;   ///< dispatch ordinal
  std::int64_t exitCode = 0;  ///< engine exit classification for done
  std::string cause;          ///< failure classification
  std::string detail;
  /// Agent CaseCacheLru counters snapshotted at case completion (done
  /// events from remote dispatch; zero for local fallback runs).
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
};

std::string serializeBatchEvent(const JournalBatchEvent& r);

/// Parses one batch WAL payload (a single JSON object with type "batch").
/// Hardened like the rest of the journal parsers.
Result<JournalBatchEvent> parseBatchEvent(std::string_view payload);

/// Every intelligible record recovered from a journal directory.
struct JournalContents {
  bool hasRunStart = false;
  JournalRunStart runStart;
  std::vector<JournalOutputRecord> outputs;
  bool hasVerdicts = false;  ///< a verdicts record was present (last wins)
  JournalVerdicts verdicts;
  std::vector<JournalFleetEvent> fleetEvents;  ///< in journal order
  bool interrupted = false;  ///< an interrupted marker was present
  /// Frame-level and payload-level drop notes, line-accurate.
  std::vector<std::string> diagnostics;
};

/// Scans and parses `dir`'s journal. Unparseable payloads are dropped with
/// a diagnostic (like corrupt frames); only unreadable I/O fails.
Result<JournalContents> readJournal(const std::string& dir);

// --- Serialization (one line of JSON each, newline-free) ------------------

std::string serializeRunStart(const JournalRunStart& r);
std::string serializeOutputRecord(const JournalOutputRecord& r);
std::string serializeVerdicts(const JournalVerdicts& r);
std::string serializeFleetEvent(const JournalFleetEvent& r);
std::string serializeInterrupted(std::uint64_t completed,
                                 std::uint64_t planned);

}  // namespace syseco
