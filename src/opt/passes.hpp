#pragma once
// Function-preserving synthesis passes.
//
// The ECO setting of the paper (§1) is an *optimized* implementation C that
// is structurally dissimilar from the lightly synthesized revised
// specification C'. These passes manufacture exactly that situation for the
// synthetic test suite:
//  * lightSynth  - what a specification netlist gets: structural hashing,
//    constant folding, buffer collapsing (the "technology-independent
//    representation ... synthesized only by lightweight optimization").
//  * heavyOptimize - what an implementation endures before sign-off:
//    repeated randomized-but-equivalent restructuring (De Morgan rewrites,
//    associativity regrouping, XOR/MUX decompositions, logic duplication)
//    interleaved with sharing-recovery, destroying structural
//    correspondence while preserving every output function.
//
// All passes rebuild a fresh netlist; primary input/output labels are
// preserved, which is what keeps the behavioral correspondence between the
// circuits checkable.

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace syseco {

/// Structural hashing with constant folding, single-input simplification
/// and buffer collapsing. Deterministic; function-preserving.
Netlist strash(const Netlist& in);

/// One round of randomized function-preserving restructuring.
/// `rewriteChancePercent` is the per-gate probability of applying a local
/// rewrite; `duplicateChancePercent` the probability of splitting a
/// multi-fanout driver into duplicated copies (the "logic duplication" the
/// paper calls out as complicating rectification).
Netlist restructure(const Netlist& in, Rng& rng, int rewriteChancePercent = 40,
                    int duplicateChancePercent = 10);

/// Region collapse + resynthesis: with the given per-gate probability,
/// collapses a gate together with its single-fanout transitive fanins into
/// a cut of at most `maxLeaves` leaves, and re-decomposes the cut function
/// as a (memoized) Shannon mux tree over a random leaf order. Outputs are
/// preserved; the *interior* signals of collapsed regions cease to exist,
/// exactly as real logic synthesis eliminates single-fanout intermediates -
/// this is what destroys the internal equivalence points matching-based ECO
/// relies on (paper §1, §2).
Netlist collapseResynth(const Netlist& in, Rng& rng,
                        int collapseChancePercent = 60, int maxLeaves = 6,
                        int maxLeafFanout = 2);

/// Depth balancing: flattens associative (AND/OR/XOR) single-fanout chains
/// and rebuilds them as arrival-time-driven (Huffman-style) binary trees.
/// The sign-off implementation is depth-optimized, while the lightweight
/// synthesized specification is not - the asymmetry Table 3's slack
/// comparison relies on.
Netlist balance(const Netlist& in);

/// Lightweight specification synthesis: strash only.
Netlist lightSynth(const Netlist& in);

/// Sign-off-grade (for this reproduction) optimization: several
/// restructure+strash rounds. The result is functionally identical to the
/// input but structurally remote from it.
Netlist heavyOptimize(const Netlist& in, Rng& rng, int rounds = 3);

}  // namespace syseco
