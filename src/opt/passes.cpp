#include "opt/passes.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace syseco {

namespace {

/// Rebuilder shared by the passes: walks the source netlist in topological
/// order and emits gates into a fresh netlist through a per-pass hook.
class Rebuild {
 public:
  explicit Rebuild(const Netlist& src) : src_(src) {
    for (std::uint32_t i = 0; i < src.numInputs(); ++i)
      map_[src.inputNet(i)] = out_.addInput(src.inputName(i));
  }

  const Netlist& src() const { return src_; }
  Netlist& out() { return out_; }

  NetId mapped(NetId srcNet) const {
    auto it = map_.find(srcNet);
    SYSECO_CHECK(it != map_.end());
    return it->second;
  }
  void setMapped(NetId srcNet, NetId dstNet) { map_[srcNet] = dstNet; }

  std::vector<NetId> mappedFanins(const Netlist::Gate& g) const {
    std::vector<NetId> f;
    f.reserve(g.fanins.size());
    for (NetId n : g.fanins) f.push_back(mapped(n));
    return f;
  }

  /// Finishes: re-drives all outputs and removes dead logic.
  Netlist finish() {
    for (std::uint32_t o = 0; o < src_.numOutputs(); ++o)
      out_.addOutput(src_.outputName(o), mapped(src_.outputNet(o)));
    out_.sweepDeadLogic();
    return std::move(out_);
  }

 private:
  const Netlist& src_;
  Netlist out_;
  std::unordered_map<NetId, NetId> map_;
};

/// Hash-consing gate factory with constant folding and local simplification.
class StrashBuilder {
 public:
  explicit StrashBuilder(Netlist& out) : out_(out) {}

  NetId constant(bool one) {
    NetId& slot = one ? const1_ : const0_;
    if (slot == kNullId)
      slot = out_.addGate(one ? GateType::Const1 : GateType::Const0, {});
    return slot;
  }

  bool isConst(NetId n, bool one) const {
    return n == (one ? const1_ : const0_);
  }

  NetId mkNot(NetId a) {
    if (isConst(a, false)) return constant(true);
    if (isConst(a, true)) return constant(false);
    // NOT(NOT(x)) = x
    if (auto it = notOf_.find(a); it != notOf_.end()) return it->second;
    const NetId r = hashed(GateType::Not, {a});
    notOf_[a] = r;
    notOf_[r] = a;
    return r;
  }

  NetId mkGate(GateType type, std::vector<NetId> fanins) {
    switch (type) {
      case GateType::Const0:
        return constant(false);
      case GateType::Const1:
        return constant(true);
      case GateType::Buf:
        return fanins[0];
      case GateType::Not:
        return mkNot(fanins[0]);
      case GateType::Nand:
        return mkNot(mkGate(GateType::And, std::move(fanins)));
      case GateType::Nor:
        return mkNot(mkGate(GateType::Or, std::move(fanins)));
      case GateType::Xnor:
        return mkNot(mkGate(GateType::Xor, std::move(fanins)));
      case GateType::And:
      case GateType::Or: {
        const bool isAnd = type == GateType::And;
        std::sort(fanins.begin(), fanins.end());
        fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
        std::vector<NetId> kept;
        for (NetId f : fanins) {
          if (isConst(f, isAnd)) continue;  // neutral: 1 for AND, 0 for OR
          if (isConst(f, !isAnd))
            return constant(!isAnd);  // absorbing: 0 for AND, 1 for OR
          kept.push_back(f);
        }
        // x AND NOT(x) = 0; x OR NOT(x) = 1.
        for (NetId f : kept) {
          auto it = notOf_.find(f);
          if (it != notOf_.end() &&
              std::binary_search(kept.begin(), kept.end(), it->second))
            return constant(!isAnd);
        }
        if (kept.empty()) return constant(isAnd);
        if (kept.size() == 1) return kept[0];
        return hashed(type, std::move(kept));
      }
      case GateType::Xor: {
        std::sort(fanins.begin(), fanins.end());
        std::vector<NetId> kept;
        bool invert = false;
        for (NetId f : fanins) {
          if (isConst(f, false)) continue;
          if (isConst(f, true)) {
            invert = !invert;
            continue;
          }
          // Pairs cancel.
          if (!kept.empty() && kept.back() == f)
            kept.pop_back();
          else
            kept.push_back(f);
        }
        NetId r;
        if (kept.empty())
          r = constant(false);
        else if (kept.size() == 1)
          r = kept[0];
        else
          r = hashed(GateType::Xor, std::move(kept));
        return invert ? mkNot(r) : r;
      }
      case GateType::Mux: {
        const NetId sel = fanins[0], d0 = fanins[1], d1 = fanins[2];
        if (isConst(sel, false)) return d0;
        if (isConst(sel, true)) return d1;
        if (d0 == d1) return d0;
        if (isConst(d0, false) && isConst(d1, true)) return sel;
        if (isConst(d0, true) && isConst(d1, false)) return mkNot(sel);
        if (isConst(d1, true)) return mkGate(GateType::Or, {sel, d0});
        if (isConst(d0, false)) return mkGate(GateType::And, {sel, d1});
        return hashed(GateType::Mux, {sel, d0, d1});
      }
    }
    SYSECO_CHECK(false);
    return kNullId;
  }

 private:
  struct Key {
    GateType type;
    std::vector<NetId> fanins;
    bool operator==(const Key& o) const {
      return type == o.type && fanins == o.fanins;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.type) + 0x517cc1b7;
      for (NetId f : k.fanins) {
        h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<std::size_t>(h);
    }
  };

  NetId hashed(GateType type, std::vector<NetId> fanins) {
    Key key{type, fanins};
    if (auto it = table_.find(key); it != table_.end()) return it->second;
    const NetId r = out_.addGate(type, fanins);
    table_.emplace(std::move(key), r);
    return r;
  }

  Netlist& out_;
  NetId const0_ = kNullId;
  NetId const1_ = kNullId;
  std::unordered_map<Key, NetId, KeyHash> table_;
  std::unordered_map<NetId, NetId> notOf_;
};

}  // namespace

Netlist strash(const Netlist& in) {
  Rebuild rb(in);
  StrashBuilder sb(rb.out());
  for (GateId g : in.topoOrder()) {
    const Netlist::Gate& gate = in.gate(g);
    rb.setMapped(gate.out, sb.mkGate(gate.type, rb.mappedFanins(gate)));
  }
  return rb.finish();
}

Netlist lightSynth(const Netlist& in) { return strash(in); }

namespace {

/// Emits an equivalent randomized replacement for one gate.
NetId rewriteGate(Netlist& out, Rng& rng, GateType type,
                  const std::vector<NetId>& f) {
  auto inv = [&](NetId n) { return out.addGate(GateType::Not, {n}); };
  auto randomTree = [&](GateType binType, std::vector<NetId> operands) {
    // Combine operands pairwise in random order -> a random-shape tree.
    while (operands.size() > 1) {
      const std::size_t i = static_cast<std::size_t>(rng.below(operands.size()));
      const NetId a = operands[i];
      operands.erase(operands.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t j = static_cast<std::size_t>(rng.below(operands.size()));
      operands[j] = out.addGate(binType, {a, operands[j]});
    }
    return operands[0];
  };

  switch (type) {
    case GateType::And:
    case GateType::Nand: {
      NetId r;
      switch (rng.below(3)) {
        case 0: {  // De Morgan: AND = NOT(OR(NOT...))
          std::vector<NetId> negs;
          negs.reserve(f.size());
          for (NetId n : f) negs.push_back(inv(n));
          r = inv(randomTree(GateType::Or, std::move(negs)));
          break;
        }
        case 1:  // NOR of negations
          r = f.size() >= 1
                  ? inv(out.addGate(GateType::Or,
                                    [&] {
                                      std::vector<NetId> negs;
                                      for (NetId n : f) negs.push_back(inv(n));
                                      return negs;
                                    }()))
                  : kNullId;
          break;
        default:  // random-shaped binary AND tree
          r = randomTree(GateType::And, f);
      }
      return type == GateType::And ? r : inv(r);
    }
    case GateType::Or:
    case GateType::Nor: {
      NetId r;
      switch (rng.below(3)) {
        case 0: {  // De Morgan
          std::vector<NetId> negs;
          negs.reserve(f.size());
          for (NetId n : f) negs.push_back(inv(n));
          r = inv(randomTree(GateType::And, std::move(negs)));
          break;
        }
        case 1:  // a OR b = MUX(a, b, 1) chained
          r = f[0];
          for (std::size_t k = 1; k < f.size(); ++k) {
            const NetId one = out.addGate(GateType::Const1, {});
            r = out.addGate(GateType::Mux, {r, f[k], one});
          }
          break;
        default:
          r = randomTree(GateType::Or, f);
      }
      return type == GateType::Or ? r : inv(r);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      NetId r;
      if (rng.flip()) {
        // XOR(a,b) = (a AND !b) OR (!a AND b), folded pairwise.
        r = f[0];
        for (std::size_t k = 1; k < f.size(); ++k) {
          const NetId a = r, b = f[k];
          const NetId t1 = out.addGate(GateType::And, {a, inv(b)});
          const NetId t2 = out.addGate(GateType::And, {inv(a), b});
          r = out.addGate(GateType::Or, {t1, t2});
        }
      } else {
        // XOR(a,b) = MUX(a, b, !b), folded pairwise.
        r = f[0];
        for (std::size_t k = 1; k < f.size(); ++k) {
          r = out.addGate(GateType::Mux, {r, f[k], inv(f[k])});
        }
      }
      return type == GateType::Xor ? r : inv(r);
    }
    case GateType::Mux: {
      // MUX(s,d0,d1) = (NOT s AND d0) OR (s AND d1).
      const NetId t0 = out.addGate(GateType::And, {inv(f[0]), f[1]});
      const NetId t1 = out.addGate(GateType::And, {f[0], f[2]});
      return out.addGate(GateType::Or, {t0, t1});
    }
    case GateType::Not:
      // Double negation churn: NOT(x) = NOT(NOT(NOT(x))).
      return inv(inv(inv(f[0])));
    default:
      return out.addGate(type, f);
  }
}

}  // namespace

Netlist restructure(const Netlist& in, Rng& rng, int rewriteChancePercent,
                    int duplicateChancePercent) {
  Rebuild rb(in);
  Netlist& out = rb.out();
  // Fanout counts in the source: duplication targets multi-fanout drivers.
  for (GateId g : in.topoOrder()) {
    const Netlist::Gate& gate = in.gate(g);
    std::vector<NetId> fanins = rb.mappedFanins(gate);
    // Logic duplication: re-derive a private copy of a multi-fanout fanin.
    for (NetId& f : fanins) {
      const Netlist::Net& net = out.net(f);
      if (net.srcKind == Netlist::SourceKind::Gate && net.sinks.size() >= 1 &&
          rng.chance(static_cast<std::uint64_t>(duplicateChancePercent), 100)) {
        const Netlist::Gate& drv = out.gate(net.srcIdx);
        if (in.net(gate.out).sinks.size() > 0 && drv.fanins.size() <= 4)
          f = out.addGate(drv.type, drv.fanins);
      }
    }
    NetId r;
    if (rng.chance(static_cast<std::uint64_t>(rewriteChancePercent), 100)) {
      r = rewriteGate(out, rng, gate.type, fanins);
    } else {
      r = gate.fanins.empty() ? out.addGate(gate.type, {})
                              : out.addGate(gate.type, fanins);
    }
    rb.setMapped(gate.out, r);
  }
  return rb.finish();
}

Netlist collapseResynth(const Netlist& in, Rng& rng,
                        int collapseChancePercent, int maxLeaves,
                        int maxLeafFanout) {
  SYSECO_CHECK(maxLeaves >= 2 && maxLeaves <= 6);
  Rebuild rb(in);
  Netlist& out = rb.out();

  // Source-side fanout counts decide which nets are collapsible interiors.
  std::vector<std::size_t> fanout(in.numNetsTotal(), 0);
  for (NetId n = 0; n < in.numNetsTotal(); ++n)
    fanout[n] = in.net(n).sinks.size();
  const std::vector<std::uint32_t> srcLevels = in.netLevels();

  for (GateId g : in.topoOrder()) {
    const Netlist::Gate& gate = in.gate(g);
    if (gate.fanins.empty() ||
        !rng.chance(static_cast<std::uint64_t>(collapseChancePercent), 100)) {
      rb.setMapped(gate.out, gate.fanins.empty()
                                 ? out.addGate(gate.type, {})
                                 : out.addGate(gate.type, rb.mappedFanins(gate)));
      continue;
    }

    // Grow a cut: expand single-fanout gate-driven leaves while we stay
    // within maxLeaves.
    std::vector<NetId> leaves = gate.fanins;
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t k = 0; k < leaves.size(); ++k) {
        const NetId leaf = leaves[k];
        const auto& net = in.net(leaf);
        // Expanding a multi-fanout leaf duplicates its logic into this
        // region (the sharing/duplication churn of real optimization, §1);
        // its other sinks keep the original copy, which dies only when
        // every sink collapses it away.
        if (net.srcKind != Netlist::SourceKind::Gate ||
            fanout[leaf] > static_cast<std::size_t>(maxLeafFanout))
          continue;
        const auto& drv = in.gate(net.srcIdx);
        if (drv.fanins.empty()) continue;
        std::vector<NetId> candidate = leaves;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(k));
        for (NetId f : drv.fanins) candidate.push_back(f);
        std::sort(candidate.begin(), candidate.end());
        candidate.erase(std::unique(candidate.begin(), candidate.end()),
                        candidate.end());
        if (candidate.size() <= static_cast<std::size_t>(maxLeaves)) {
          leaves = std::move(candidate);
          grew = true;
          break;
        }
      }
    }

    // Local truth table of gate.out over the cut leaves (exhaustive: at
    // most 2^6 = 64 rows, one simulation word).
    const std::size_t L = leaves.size();
    if (L > 6) {  // defensive; cannot happen
      rb.setMapped(gate.out, out.addGate(gate.type, rb.mappedFanins(gate)));
      continue;
    }
    std::unordered_map<NetId, std::uint64_t> val;
    for (std::size_t j = 0; j < L; ++j) {
      std::uint64_t word = 0;
      for (std::uint64_t row = 0; row < 64; ++row)
        if ((row >> j) & 1) word |= (1ULL << row);
      val[leaves[j]] = word;
    }
    // Evaluate the sub-network between leaves and g (DFS-collected).
    {
      std::vector<GateId> localTopo;
      std::vector<NetId> stack{gate.out};
      std::unordered_map<NetId, char> state;
      // Simple recursive-style evaluation using the cone extraction: the
      // cone of gate.out capped at leaves.
      std::vector<GateId> sub;
      std::unordered_map<NetId, char> seen;
      std::vector<NetId> dfs{gate.out};
      while (!dfs.empty()) {
        const NetId n = dfs.back();
        dfs.pop_back();
        if (val.count(n) || seen.count(n)) continue;
        seen.emplace(n, 1);
        const auto& net = in.net(n);
        if (net.srcKind == Netlist::SourceKind::Gate) {
          sub.push_back(net.srcIdx);
          for (NetId f : in.gate(net.srcIdx).fanins) dfs.push_back(f);
        } else {
          // A non-leaf PI can only appear if it was never expanded; it is a
          // leaf by construction, so this cannot happen.
          SYSECO_CHECK(false && "cut leaf bookkeeping broken");
        }
      }
      // Topologically order the sub-gates by repeated readiness sweeps
      // (tiny regions, quadratic is fine).
      std::vector<char> done(sub.size(), 0);
      std::size_t remaining = sub.size();
      while (remaining > 0) {
        bool progress = false;
        for (std::size_t k = 0; k < sub.size(); ++k) {
          if (done[k]) continue;
          const auto& sg = in.gate(sub[k]);
          bool ready = true;
          for (NetId f : sg.fanins) ready &= val.count(f) > 0;
          if (!ready) continue;
          std::uint64_t fan[8];
          std::vector<std::uint64_t> fanBig;
          std::uint64_t result;
          if (sg.fanins.size() <= 8) {
            for (std::size_t i = 0; i < sg.fanins.size(); ++i)
              fan[i] = val[sg.fanins[i]];
            result = evalGateWord(sg.type, fan, sg.fanins.size());
          } else {
            fanBig.resize(sg.fanins.size());
            for (std::size_t i = 0; i < sg.fanins.size(); ++i)
              fanBig[i] = val[sg.fanins[i]];
            result = evalGateWord(sg.type, fanBig.data(), fanBig.size());
          }
          val[sg.out] = result;
          done[k] = 1;
          --remaining;
          progress = true;
        }
        SYSECO_CHECK(progress);
      }
      (void)localTopo;
      (void)state;
      (void)stack;
    }
    std::uint64_t tt = val.at(gate.out);
    if (L < 6) {
      // Mask to the meaningful rows and replicate (keeps recursion simple).
      const std::uint64_t rows = 1ULL << L;
      const std::uint64_t mask = rows >= 64 ? ~0ULL : ((1ULL << rows) - 1);
      tt &= mask;
      for (std::uint64_t r = rows; r < 64; r <<= 1) tt |= tt << r;
    }

    // Shannon mux-tree memoized on cofactor truth tables so shared
    // sub-functions are built once. Timing-driven leaf order: the latest
    // arriving leaf selects nearest the root (shortest residual path), as
    // a depth-aware decomposition would do; ties break randomly so repeated
    // collapses of equal-depth regions still diversify structure.
    std::vector<std::size_t> order(L);
    for (std::size_t j = 0; j < L; ++j) order[j] = j;
    rng.shuffle(order);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return srcLevels[leaves[x]] > srcLevels[leaves[y]];
                     });
    std::vector<NetId> mappedLeaves(L);
    for (std::size_t j = 0; j < L; ++j) mappedLeaves[j] = rb.mapped(leaves[j]);

    // Memo per recursion depth (the remaining-variable set is determined by
    // the depth, so (tt, depth) is the canonical key).
    std::vector<std::unordered_map<std::uint64_t, NetId>> memo(L + 1);
    NetId constNet[2] = {kNullId, kNullId};
    auto getConst = [&](bool one) {
      NetId& slot = constNet[one ? 1 : 0];
      if (slot == kNullId)
        slot = out.addGate(one ? GateType::Const1 : GateType::Const0, {});
      return slot;
    };
    // Build recursively over `order`; cofactoring on leaf j means fixing
    // bit j of the row index.
    auto build = [&](auto&& self, std::uint64_t f, std::size_t depth) -> NetId {
      if (f == 0) return getConst(false);
      if (f == ~0ULL) return getConst(true);
      if (auto it = memo[depth].find(f); it != memo[depth].end())
        return it->second;
      SYSECO_CHECK(depth < L);
      const std::size_t j = order[depth];
      // Cofactors: select rows with bit j = 0 / 1, then re-replicate.
      const std::uint64_t bitMaskHi = [&] {
        std::uint64_t m = 0;
        for (std::uint64_t row = 0; row < 64; ++row)
          if ((row >> j) & 1) m |= (1ULL << row);
        return m;
      }();
      std::uint64_t f0 = f & ~bitMaskHi;
      std::uint64_t f1 = f & bitMaskHi;
      // Spread each cofactor to cover both half-spaces of bit j.
      f0 |= f0 << (1ULL << j);
      f1 |= f1 >> (1ULL << j);
      NetId r;
      if (f0 == f1) {
        r = self(self, f0, depth + 1);
      } else {
        const NetId lo = self(self, f0, depth + 1);
        const NetId hi = self(self, f1, depth + 1);
        r = out.addGate(GateType::Mux, {mappedLeaves[j], lo, hi});
      }
      memo[depth].emplace(f, r);
      return r;
    };
    rb.setMapped(gate.out, build(build, tt, 0));
  }
  return rb.finish();
}

Netlist balance(const Netlist& in) {
  Rebuild rb(in);
  Netlist& out = rb.out();
  // Arrival times maintained incrementally over the output netlist.
  std::vector<std::uint32_t> level;
  auto levelOf = [&](NetId n) -> std::uint32_t {
    return n < level.size() ? level[n] : 0;
  };
  auto setLevel = [&](NetId n, std::uint32_t l) {
    if (n >= level.size()) level.resize(n + 1, 0);
    level[n] = l;
  };

  // Fanout counts in the source decide which chains are flattenable.
  std::vector<std::size_t> fanout(in.numNetsTotal(), 0);
  for (NetId n = 0; n < in.numNetsTotal(); ++n)
    fanout[n] = in.net(n).sinks.size();

  auto isAssoc = [](GateType t) {
    return t == GateType::And || t == GateType::Or || t == GateType::Xor;
  };

  for (GateId g : in.topoOrder()) {
    const Netlist::Gate& gate = in.gate(g);
    NetId result;
    if (isAssoc(gate.type)) {
      // Flatten the maximal same-type single-fanout tree rooted here.
      std::vector<NetId> leaves;
      std::vector<NetId> stack(gate.fanins.begin(), gate.fanins.end());
      while (!stack.empty()) {
        const NetId n = stack.back();
        stack.pop_back();
        const auto& net = in.net(n);
        if (net.srcKind == Netlist::SourceKind::Gate && fanout[n] == 1 &&
            in.gate(net.srcIdx).type == gate.type) {
          const auto& inner = in.gate(net.srcIdx);
          stack.insert(stack.end(), inner.fanins.begin(), inner.fanins.end());
        } else {
          leaves.push_back(rb.mapped(n));
        }
      }
      // Huffman-style combine: always join the two earliest-arriving
      // operands, yielding a depth-minimal tree under unit delay.
      auto cmp = [&](NetId a, NetId b) { return levelOf(a) > levelOf(b); };
      std::make_heap(leaves.begin(), leaves.end(), cmp);
      while (leaves.size() > 1) {
        std::pop_heap(leaves.begin(), leaves.end(), cmp);
        const NetId a = leaves.back();
        leaves.pop_back();
        std::pop_heap(leaves.begin(), leaves.end(), cmp);
        const NetId b = leaves.back();
        leaves.pop_back();
        const NetId c = out.addGate(gate.type, {a, b});
        setLevel(c, std::max(levelOf(a), levelOf(b)) + 1);
        leaves.push_back(c);
        std::push_heap(leaves.begin(), leaves.end(), cmp);
      }
      result = leaves[0];
    } else {
      result = gate.fanins.empty()
                   ? out.addGate(gate.type, {})
                   : out.addGate(gate.type, rb.mappedFanins(gate));
      std::uint32_t maxIn = 0;
      for (NetId f : rb.mappedFanins(gate))
        maxIn = std::max(maxIn, levelOf(f) + 1);
      setLevel(result, gate.fanins.empty() ? 0 : maxIn);
    }
    rb.setMapped(gate.out, result);
  }
  return rb.finish();
}

Netlist heavyOptimize(const Netlist& in, Rng& rng, int rounds) {
  Netlist cur = strash(in);
  for (int i = 0; i < rounds; ++i) {
    cur = restructure(cur, rng, /*rewriteChancePercent=*/35,
                      /*duplicateChancePercent=*/i == 0 ? 10 : 4);
    cur = strash(cur);  // recover sharing inside the new structure
    // Region collapse destroys fine-grained internal correspondence; only
    // the first round duplicates across fanout (keeps total inflation in
    // the realistic 1.5-2.5x band instead of compounding exponentially).
    cur = collapseResynth(cur, rng, /*collapseChancePercent=*/i == 0 ? 60 : 35,
                          /*maxLeaves=*/6,
                          /*maxLeafFanout=*/i == 0 ? 2 : 1);
    cur = strash(cur);
  }
  // Sign-off designs are depth-optimized; the lightweight spec is not.
  cur = balance(cur);
  cur = strash(cur);
  return cur;
}

}  // namespace syseco
