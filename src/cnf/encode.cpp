#include "cnf/encode.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace syseco {

NetlistEncoder::NetlistEncoder(
    Solver& solver, const Netlist& netlist,
    std::unordered_map<std::string, Var>& inputVarByName)
    : solver_(solver),
      netlist_(netlist),
      inputVarByName_(inputVarByName),
      varOfNet_(netlist.numNetsTotal(), -1) {}

Var NetlistEncoder::netVar(NetId net) {
  // The netlist may have grown (patch cloning) since construction.
  if (net >= varOfNet_.size()) varOfNet_.resize(netlist_.numNetsTotal(), -1);
  if (varOfNet_[net] >= 0) return varOfNet_[net];

  const Netlist::Net& n = netlist_.net(net);
  Var v = -1;
  switch (n.srcKind) {
    case Netlist::SourceKind::Input: {
      const std::string& name = netlist_.inputName(n.srcIdx);
      auto it = inputVarByName_.find(name);
      if (it == inputVarByName_.end()) {
        v = solver_.newVar();
        inputVarByName_.emplace(name, v);
      } else {
        v = it->second;
      }
      break;
    }
    case Netlist::SourceKind::Gate:
      v = encodeGate(n.srcIdx);
      break;
    case Netlist::SourceKind::None:
      SYSECO_CHECK(false && "encoding an undriven net");
  }
  varOfNet_[net] = v;
  return v;
}

Var NetlistEncoder::encodeGate(GateId g) {
  const Netlist::Gate& gate = netlist_.gate(g);
  SYSECO_CHECK(!gate.dead);
  std::vector<Var> in;
  in.reserve(gate.fanins.size());
  for (NetId f : gate.fanins) in.push_back(netVar(f));

  auto lit = [](Var v, bool neg = false) { return Lit::make(v, neg); };
  Solver& s = solver_;

  switch (gate.type) {
    case GateType::Const0: {
      const Var v = s.newVar();
      s.addClause(lit(v, true));
      return v;
    }
    case GateType::Const1: {
      const Var v = s.newVar();
      s.addClause(lit(v));
      return v;
    }
    case GateType::Buf:
      return in[0];  // alias, no clauses needed
    case GateType::Not: {
      const Var v = s.newVar();
      s.addClause(lit(v), lit(in[0]));
      s.addClause(lit(v, true), lit(in[0], true));
      return v;
    }
    case GateType::And:
    case GateType::Nand: {
      const Var a = s.newVar();  // a == AND(in)
      std::vector<Lit> big;
      big.reserve(in.size() + 1);
      for (Var i : in) {
        s.addClause(lit(a, true), lit(i));  // a -> i
        big.push_back(lit(i, true));
      }
      big.push_back(lit(a));  // all i -> a
      s.addClause(std::move(big));
      if (gate.type == GateType::And) return a;
      const Var v = s.newVar();
      s.addClause(lit(v), lit(a));
      s.addClause(lit(v, true), lit(a, true));
      return v;
    }
    case GateType::Or:
    case GateType::Nor: {
      const Var a = s.newVar();  // a == OR(in)
      std::vector<Lit> big;
      big.reserve(in.size() + 1);
      for (Var i : in) {
        s.addClause(lit(a), lit(i, true));  // i -> a
        big.push_back(lit(i));
      }
      big.push_back(lit(a, true));  // a -> some i
      s.addClause(std::move(big));
      if (gate.type == GateType::Or) return a;
      const Var v = s.newVar();
      s.addClause(lit(v), lit(a));
      s.addClause(lit(v, true), lit(a, true));
      return v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Chain binary XORs through intermediates.
      Var acc = in[0];
      for (std::size_t k = 1; k < in.size(); ++k) {
        const Var v = s.newVar();
        const Var b = in[k];
        s.addClause(lit(v, true), lit(acc), lit(b));
        s.addClause(lit(v, true), lit(acc, true), lit(b, true));
        s.addClause(lit(v), lit(acc, true), lit(b));
        s.addClause(lit(v), lit(acc), lit(b, true));
        acc = v;
      }
      if (in.size() == 1) {
        // Unary parity is identity; materialize for uniformity.
        const Var v = s.newVar();
        s.addClause(lit(v), lit(acc, true));
        s.addClause(lit(v, true), lit(acc));
        acc = v;
      }
      if (gate.type == GateType::Xor) return acc;
      const Var v = s.newVar();
      s.addClause(lit(v), lit(acc));
      s.addClause(lit(v, true), lit(acc, true));
      return v;
    }
    case GateType::Mux: {
      const Var v = s.newVar();
      const Var sel = in[0], d0 = in[1], d1 = in[2];
      s.addClause(lit(sel), lit(d0, true), lit(v));       // !sel & d0 -> v
      s.addClause(lit(sel), lit(d0), lit(v, true));       // !sel & !d0 -> !v
      s.addClause(lit(sel, true), lit(d1, true), lit(v)); // sel & d1 -> v
      s.addClause(lit(sel, true), lit(d1), lit(v, true)); // sel & !d1 -> !v
      // Redundant but propagation-strengthening clauses.
      s.addClause(lit(d0, true), lit(d1, true), lit(v));
      s.addClause(lit(d0), lit(d1), lit(v, true));
      return v;
    }
  }
  SYSECO_CHECK(false);
  return -1;
}

PairEncoding::PairEncoding(const Netlist& c, const Netlist& cPrime)
    : c_(c),
      cPrime_(cPrime),
      enc_(solver_, c, inputVarByName_),
      encPrime_(solver_, cPrime, inputVarByName_) {}

void PairEncoding::prepareSweeping(Rng& rng) {
  if (sweepReady_) return;
  sweepReady_ = true;
  constexpr std::size_t kWords = 8;  // 512 correlation patterns
  Simulator implSim(c_, kWords);
  Simulator specSim(cPrime_, kWords);
  implSim.randomizeInputs(rng);
  for (std::size_t i = 0; i < cPrime_.numInputs(); ++i) {
    const std::uint32_t idxC =
        c_.findInput(cPrime_.inputName(static_cast<std::uint32_t>(i)));
    for (std::size_t w = 0; w < kWords; ++w)
      specSim.setInputWord(
          static_cast<std::uint32_t>(i), w,
          idxC != kNullId ? implSim.word(c_.inputNet(idxC), w) : rng.next());
  }
  implSim.run();
  specSim.run();
  implSigs_.resize(c_.numNetsTotal());
  for (NetId n = 0; n < c_.numNetsTotal(); ++n) {
    const auto& net = c_.net(n);
    const bool liveDriven =
        net.srcKind == Netlist::SourceKind::Input ||
        (net.srcKind == Netlist::SourceKind::Gate &&
         !c_.gate(net.srcIdx).dead);
    if (!liveDriven) continue;
    implSigs_[n] = implSim.value(n);
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t w : implSigs_[n])
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    implBySig_[h].push_back(n);
  }
  specSigs_.resize(cPrime_.numNetsTotal());
  for (NetId n = 0; n < cPrime_.numNetsTotal(); ++n)
    specSigs_[n] = specSim.value(n);
}

Solver::Result PairEncoding::solveDiffSwept(std::uint32_t oC,
                                            std::uint32_t oCp,
                                            std::int64_t conflictBudget,
                                            Rng& rng,
                                            std::int64_t pairBudget) {
  prepareSweeping(rng);
  auto hashOf = [](const Signature& s, bool compl_) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::uint64_t w : s) {
      if (compl_) w = ~w;
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };
  auto equalSig = [](const Signature& a, const Signature& b, bool compl_) {
    if (a.size() != b.size() || a.empty()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if ((compl_ ? ~b[i] : b[i]) != a[i]) return false;
    return true;
  };

  // Bottom-up over the spec cone: prove one signature-suggested
  // equivalence per net and pin it with clauses. Lower proofs make upper
  // proofs (and finally the output miter) nearly propositional.
  for (GateId g : cPrime_.coneGates({cPrime_.outputNet(oCp)})) {
    const NetId sn = cPrime_.gate(g).out;
    if (!sweptSpecNets_.insert(sn).second) continue;  // already processed
    if (specSigs_[sn].empty()) continue;
    for (const bool compl_ : {false, true}) {
      const auto it = implBySig_.find(hashOf(specSigs_[sn], compl_));
      if (it == implBySig_.end()) continue;
      bool proven = false;
      std::size_t tried = 0;
      for (NetId cand : it->second) {
        if (!equalSig(implSigs_[cand], specSigs_[sn], compl_)) continue;
        if (++tried > 2) break;
        if (solveNetsDiff(cand, sn, compl_, pairBudget) ==
            Solver::Result::Unsat) {
          const Var a = enc_.netVar(cand);
          const Var b = encPrime_.netVar(sn);
          // Pin the proven relation: a == b (or a == !b).
          solver_.addClause(Lit::make(a, true), Lit::make(b, compl_));
          solver_.addClause(Lit::make(a, false), Lit::make(b, !compl_));
          proven = true;
          break;
        }
      }
      if (proven) break;
    }
  }
  return solveDiff(oC, oCp, conflictBudget);
}

Var PairEncoding::diffVar(std::uint32_t oC, std::uint32_t oCp) {
  const std::uint64_t key = (std::uint64_t{oC} << 32) | oCp;
  if (auto it = diffVars_.find(key); it != diffVars_.end()) return it->second;
  const Var a = enc_.outputVar(oC);
  const Var b = encPrime_.outputVar(oCp);
  const Var d = solver_.newVar();
  auto lit = [](Var v, bool neg = false) { return Lit::make(v, neg); };
  solver_.addClause(lit(d, true), lit(a), lit(b));
  solver_.addClause(lit(d, true), lit(a, true), lit(b, true));
  solver_.addClause(lit(d), lit(a, true), lit(b));
  solver_.addClause(lit(d), lit(a), lit(b, true));
  diffVars_.emplace(key, d);
  return d;
}

Solver::Result PairEncoding::solveDiff(std::uint32_t oC, std::uint32_t oCp,
                                       std::int64_t conflictBudget) {
  const Var d = diffVar(oC, oCp);
  return solver_.solve({Lit::make(d)}, conflictBudget);
}

Solver::Result PairEncoding::solveNetsDiff(NetId implNet, NetId specNet,
                                           bool complement,
                                           std::int64_t conflictBudget) {
  const Var a = enc_.netVar(implNet);
  const Var b = encPrime_.netVar(specNet);
  const Var d = solver_.newVar();
  auto lit = [](Var v, bool neg = false) { return Lit::make(v, neg); };
  // d == (a XOR b), or (a XNOR b) for complement-equivalence.
  solver_.addClause(lit(d, true), lit(a), lit(b, complement));
  solver_.addClause(lit(d, true), lit(a, true), lit(b, !complement));
  solver_.addClause(lit(d), lit(a, true), lit(b, complement));
  solver_.addClause(lit(d), lit(a), lit(b, !complement));
  return solver_.solve({lit(d)}, conflictBudget);
}

InputPattern PairEncoding::extractInputs(Rng* rng) const {
  InputPattern pattern(c_.numInputs(), 0);
  for (std::size_t i = 0; i < c_.numInputs(); ++i) {
    const auto it =
        inputVarByName_.find(c_.inputName(static_cast<std::uint32_t>(i)));
    if (it != inputVarByName_.end()) {
      pattern[i] = solver_.modelValue(it->second) ? 1 : 0;
    } else if (rng) {
      pattern[i] = rng->flip() ? 1 : 0;
    }
  }
  return pattern;
}

std::vector<InputPattern> PairEncoding::enumerateErrors(
    std::uint32_t oC, std::uint32_t oCp, std::size_t maxSamples,
    std::int64_t conflictBudget, Rng* rng) {
  std::vector<InputPattern> samples;
  // Block on the union of the two cones' PI supports: assignments outside
  // the support are irrelevant to this output pair.
  std::vector<std::uint32_t> supp = c_.support(c_.outputNet(oC));
  {
    // C' support, translated to C input indices by label.
    const auto& cp = encPrime_.netlist();
    for (std::uint32_t pi : cp.support(cp.outputNet(oCp))) {
      const std::uint32_t idxC = c_.findInput(cp.inputName(pi));
      if (idxC != kNullId) supp.push_back(idxC);
    }
    std::sort(supp.begin(), supp.end());
    supp.erase(std::unique(supp.begin(), supp.end()), supp.end());
  }
  while (samples.size() < maxSamples) {
    const Solver::Result r = solveDiff(oC, oCp, conflictBudget);
    if (r != Solver::Result::Sat) break;
    samples.push_back(extractInputs(rng));
    // Block this assignment on the support.
    std::vector<Lit> block;
    block.reserve(supp.size());
    for (std::uint32_t pi : supp) {
      const auto it = inputVarByName_.find(c_.inputName(pi));
      if (it == inputVarByName_.end()) continue;
      block.push_back(Lit::make(it->second, samples.back()[pi] != 0));
    }
    if (block.empty()) break;  // constant-difference pair: one sample only
    if (!solver_.addClause(std::move(block))) break;
  }
  return samples;
}

Solver::Result checkOutputEquiv(const Netlist& c, std::uint32_t oC,
                                const Netlist& cPrime, std::uint32_t oCp,
                                InputPattern* cex,
                                std::int64_t conflictBudget) {
  PairEncoding pe(c, cPrime);
  const Solver::Result r = pe.solveDiff(oC, oCp, conflictBudget);
  if (r == Solver::Result::Sat && cex) *cex = pe.extractInputs();
  return r;
}

Solver::Result checkNetsEquiv(const Netlist& n, NetId a, NetId b,
                              bool complement, std::int64_t conflictBudget) {
  Solver solver;
  std::unordered_map<std::string, Var> inputVars;
  NetlistEncoder enc(solver, n, inputVars);
  const Var va = enc.netVar(a);
  const Var vb = enc.netVar(b);
  const Var d = solver.newVar();
  auto lit = [](Var v, bool neg = false) { return Lit::make(v, neg); };
  // d == (a XOR b), or (a XNOR b) when checking complement-equivalence.
  const bool inv = complement;
  solver.addClause(lit(d, true), lit(va), lit(vb, inv));
  solver.addClause(lit(d, true), lit(va, true), lit(vb, !inv));
  solver.addClause(lit(d), lit(va, true), lit(vb, inv));
  solver.addClause(lit(d), lit(va), lit(vb, !inv));
  return solver.solve({lit(d)}, conflictBudget);
}

std::vector<std::uint32_t> findFailingOutputs(
    const Netlist& c, const Netlist& cPrime, Rng& rng,
    std::int64_t perOutputBudget, ResourceGuard* guard,
    std::vector<std::uint32_t>* unresolved) {
  // Phase 1: random simulation quickly classifies definite failures.
  constexpr std::size_t kWords = 16;  // 1024 patterns
  Simulator simC(c, kWords);
  Simulator simCp(cPrime, kWords);
  // Same patterns on label-correlated inputs.
  simC.randomizeInputs(rng);
  for (std::size_t i = 0; i < cPrime.numInputs(); ++i) {
    const std::uint32_t idxC =
        c.findInput(cPrime.inputName(static_cast<std::uint32_t>(i)));
    for (std::size_t w = 0; w < kWords; ++w) {
      const std::uint64_t bits =
          idxC != kNullId ? simC.word(c.inputNet(idxC), w) : rng.next();
      simCp.setInputWord(static_cast<std::uint32_t>(i), w, bits);
    }
  }
  simC.run();
  simCp.run();

  std::vector<std::uint32_t> failing;
  std::vector<std::uint32_t> undecided;
  for (std::uint32_t o = 0; o < c.numOutputs(); ++o) {
    const std::uint32_t op = cPrime.findOutput(c.outputName(o));
    if (op == kNullId) continue;
    if (simC.outputValue(o) != simCp.outputValue(op)) {
      failing.push_back(o);
    } else {
      undecided.push_back(o);
    }
  }

  // Phase 2: confirm the rest with one shared incremental encoding,
  // SAT-swept so the structurally-dissimilar miters stay easy.
  if (!undecided.empty()) {
    PairEncoding pe(c, cPrime);
    pe.setResourceGuard(guard);
    for (std::uint32_t o : undecided) {
      const std::uint32_t op = cPrime.findOutput(c.outputName(o));
      const Solver::Result r = pe.solveDiffSwept(o, op, perOutputBudget, rng);
      if (r == Solver::Result::Sat) failing.push_back(o);
      // Unknown is treated as "equivalent enough" on unbounded runs: the
      // validation loop will still catch a real mismatch later. A governed
      // caller gets the undecided set instead and degrades conservatively.
      if (r == Solver::Result::Unknown && unresolved != nullptr)
        unresolved->push_back(o);
    }
  }
  std::sort(failing.begin(), failing.end());
  return failing;
}

}  // namespace syseco
