#pragma once
// Tseitin encoding of netlists into CNF, miter construction and
// combinational equivalence checking between a current implementation C and
// a synthesized revised specification C'.
//
// Primary inputs are correlated by *label* (paper §3.1: unique labels
// establish the behavioral correspondence between two circuits); both
// circuits' cones are encoded into one shared solver so that per-output
// miter queries, error-sample enumeration (the sampling domain of §5.1
// prefers samples from the error domain E) and incremental re-checks reuse
// learned clauses.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {

/// Lazily encodes the logic cones of one netlist into a shared Solver.
/// Input variables are owned by a shared name->Var map so several encoders
/// (e.g. for C and C') agree on correlated inputs.
class NetlistEncoder {
 public:
  NetlistEncoder(Solver& solver, const Netlist& netlist,
                 std::unordered_map<std::string, Var>& inputVarByName);

  /// CNF variable computing `net`; encodes the cone on first use.
  Var netVar(NetId net);

  /// CNF variable of output `o`.
  Var outputVar(std::uint32_t o) { return netVar(netlist_.outputNet(o)); }

  const Netlist& netlist() const { return netlist_; }
  Solver& solver() { return solver_; }

 private:
  Var encodeGate(GateId g);

  Solver& solver_;
  const Netlist& netlist_;
  std::unordered_map<std::string, Var>& inputVarByName_;
  std::vector<Var> varOfNet_;  // -1 when not yet encoded
};

/// Joint encoding of (C, C') with label-correlated inputs and lazy
/// per-output-pair miters.
class PairEncoding {
 public:
  PairEncoding(const Netlist& c, const Netlist& cPrime);

  Solver& solver() { return solver_; }
  NetlistEncoder& implEncoder() { return enc_; }
  NetlistEncoder& specEncoder() { return encPrime_; }

  /// Installs a resource governor on the shared solver: every query made
  /// through this encoding charges the guard's conflict ledger and honors
  /// its deadline (see Solver::setResourceGuard). After an Unknown result,
  /// stopReason() says whether a budget or the deadline was responsible.
  void setResourceGuard(ResourceGuard* guard) {
    solver_.setResourceGuard(guard);
  }
  StatusCode stopReason() const { return solver_.stopReason(); }

  /// Miter variable that is true iff output oC of C differs from output
  /// oCp of C' (created on first use).
  Var diffVar(std::uint32_t oC, std::uint32_t oCp);

  /// Solves "outputs differ". Sat => counterexample available via
  /// extractInputs(); Unsat => outputs equivalent; Unknown => budget hit.
  Solver::Result solveDiff(std::uint32_t oC, std::uint32_t oCp,
                           std::int64_t conflictBudget = -1);

  /// solveDiff with SAT sweeping: simulation-suggested internal
  /// equivalences (plain or complemented) between the two cones are proven
  /// bottom-up with a small per-pair budget and added as clauses, which
  /// turns structurally-dissimilar (XOR/mux-heavy) miters from hard CDCL
  /// instances into easy ones. Proven pairs are cached across calls on the
  /// same encoding.
  Solver::Result solveDiffSwept(std::uint32_t oC, std::uint32_t oCp,
                                std::int64_t conflictBudget, Rng& rng,
                                std::int64_t pairBudget = 5000);

  /// Solves "net a of C differs from net b of C'" (up to complement when
  /// `complement` is set). Unsat = the nets are equivalent; used by
  /// matching-based engines to confirm simulation-suggested internal
  /// equivalences.
  Solver::Result solveNetsDiff(NetId implNet, NetId specNet, bool complement,
                               std::int64_t conflictBudget = -1);

  /// Reads the current model back as an input pattern over C's inputs.
  /// Inputs without a CNF variable (outside every encoded cone) or left
  /// unassigned are filled from `rng` if given, else 0.
  InputPattern extractInputs(Rng* rng = nullptr) const;

  /// Enumerates up to `maxSamples` distinct error-domain assignments for
  /// the given output pair, blocking each found sample on the support of
  /// the pair. Stops early when the error space is exhausted or the budget
  /// trips.
  std::vector<InputPattern> enumerateErrors(std::uint32_t oC,
                                            std::uint32_t oCp,
                                            std::size_t maxSamples,
                                            std::int64_t conflictBudget,
                                            Rng* rng = nullptr);

 private:
  void prepareSweeping(Rng& rng);

  const Netlist& c_;
  const Netlist& cPrime_;
  Solver solver_;
  std::unordered_map<std::string, Var> inputVarByName_;
  NetlistEncoder enc_;
  NetlistEncoder encPrime_;
  std::unordered_map<std::uint64_t, Var> diffVars_;
  // SAT-sweeping state (built lazily on first solveDiffSwept call).
  bool sweepReady_ = false;
  std::vector<Signature> implSigs_;
  std::vector<Signature> specSigs_;
  std::unordered_map<std::uint64_t, std::vector<NetId>> implBySig_;
  std::unordered_set<NetId> sweptSpecNets_;
};

/// One-shot equivalence check of an output pair. Returns Unsat when
/// equivalent; Sat (with counterexample in *cex when non-null) when they
/// differ; Unknown when the conflict budget is exceeded.
Solver::Result checkOutputEquiv(const Netlist& c, std::uint32_t oC,
                                const Netlist& cPrime, std::uint32_t oCp,
                                InputPattern* cex = nullptr,
                                std::int64_t conflictBudget = -1);

/// Checks whether two nets of the same netlist are equivalent
/// (optionally up to complement). Unsat = equivalent.
Solver::Result checkNetsEquiv(const Netlist& n, NetId a, NetId b,
                              bool complement = false,
                              std::int64_t conflictBudget = -1);

/// Detects all failing outputs of C against C' (outputs matched by label):
/// a cheap random-simulation pass seeds the definite failures, and a shared
/// incremental SAT encoding confirms or refutes the rest exactly.
/// Output indices refer to C; outputs of C with no same-label counterpart
/// in C' are ignored.
///
/// Under a resource governor the exact confirmations may come back Unknown;
/// those outputs are appended to `*unresolved` (when non-null) so callers
/// can treat them conservatively - the governed engine rectifies them via
/// the guaranteed fallback rather than assuming they are healthy.
std::vector<std::uint32_t> findFailingOutputs(
    const Netlist& c, const Netlist& cPrime, Rng& rng,
    std::int64_t perOutputBudget = -1, ResourceGuard* guard = nullptr,
    std::vector<std::uint32_t>* unresolved = nullptr);

}  // namespace syseco
