#pragma once
// Word-level specification circuit generator.
//
// The paper evaluates on microprocessor ECOs: datapath words gated and
// muxed by control logic, with heavy cross-output sharing ("path-entangled
// designs", §1). This builder synthesizes random but structured circuits of
// that character: a pool of multi-bit words and single-bit control signals
// is grown layer by layer with word operations (bitwise logic, GATE-style
// masking as in the paper's Figure 1/Example 1, muxing, ripple addition,
// rotation) and bit operations (control logic, comparators, reductions).
// Ripple carries and reductions entangle bits across outputs, which is what
// makes rectification-point selection non-trivial.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace syseco {

struct SpecParams {
  std::uint32_t numInputWords = 4;   ///< word-shaped primary inputs
  std::uint32_t wordWidth = 8;       ///< bits per word
  std::uint32_t numControlBits = 4;  ///< single-bit primary inputs
  std::uint32_t numLayers = 3;       ///< operation layers
  std::uint32_t opsPerLayer = 6;     ///< word ops created per layer
  std::uint32_t bitOpsPerLayer = 4;  ///< control ops created per layer
  std::uint32_t numOutputWords = 2;  ///< word-shaped outputs
  std::uint32_t numOutputBits = 2;   ///< single-bit outputs
};

/// A generated specification plus the signal pools the mutator draws from.
struct SpecCircuit {
  Netlist netlist;
  std::vector<std::vector<NetId>> words;  ///< all word signals (incl. inputs)
  std::vector<NetId> bits;                ///< all single-bit signals
};

/// Builds a random specification circuit; deterministic in `rng`.
SpecCircuit buildSpec(const SpecParams& params, Rng& rng);

}  // namespace syseco
