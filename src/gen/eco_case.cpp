#include "gen/eco_case.hpp"

#include <algorithm>
#include <cmath>

#include "opt/passes.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace syseco {

const char* mutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::GateChange: return "gate-change";
    case MutationKind::Inversion: return "inversion";
    case MutationKind::WrongWire: return "wrong-wire";
    case MutationKind::AddedCondition: return "added-condition";
    case MutationKind::ConstantStuck: return "constant-stuck";
    case MutationKind::MuxInsert: return "mux-insert";
  }
  return "?";
}

namespace {

/// Number of primary outputs in the transitive fanout of every net.
std::vector<std::uint32_t> outputsReached(const Netlist& nl) {
  // Reverse-topological accumulation of output sets would be exact but
  // costly; a per-net count via per-output backward cones is fine at the
  // suite's sizes and exact.
  std::vector<std::uint32_t> count(nl.numNetsTotal(), 0);
  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
    std::vector<char> seen(nl.numNetsTotal(), 0);
    std::vector<NetId> stack{nl.outputNet(o)};
    seen[nl.outputNet(o)] = 1;
    while (!stack.empty()) {
      const NetId n = stack.back();
      stack.pop_back();
      ++count[n];
      const auto& net = nl.net(n);
      if (net.srcKind == Netlist::SourceKind::Gate) {
        for (NetId f : nl.gate(net.srcIdx).fanins) {
          if (!seen[f]) {
            seen[f] = 1;
            stack.push_back(f);
          }
        }
      }
    }
  }
  return count;
}

/// True when `gate` lies in the transitive fanin cone of `net` (a rewire
/// of one of gate's pins to `net` would then create a cycle).
bool gateInCone(const Netlist& nl, NetId net, GateId gate) {
  for (GateId g : nl.coneGates({net}))
    if (g == gate) return true;
  return false;
}

/// All live nets that have at least one sink and a live driver or PI.
std::vector<NetId> usableNets(const Netlist& nl) {
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.numNetsTotal(); ++n) {
    const auto& net = nl.net(n);
    const bool driven =
        net.srcKind == Netlist::SourceKind::Input ||
        (net.srcKind == Netlist::SourceKind::Gate && !nl.gate(net.srcIdx).dead);
    if (driven && !net.sinks.empty()) nets.push_back(n);
  }
  return nets;
}

/// Rewires a random non-empty subset of `net`'s current sinks to `to`,
/// never touching pins of gates listed in `exclude`. Returns how many pins
/// moved.
std::size_t rewireSomeSinks(Netlist& nl, Rng& rng, NetId net, NetId to,
                            const std::vector<GateId>& exclude,
                            bool all = false) {
  std::vector<Sink> sinks = nl.net(net).sinks;  // copy: list mutates
  std::vector<Sink> eligible;
  for (const Sink& s : sinks) {
    if (!s.isOutput() &&
        std::find(exclude.begin(), exclude.end(), s.gate) != exclude.end())
      continue;
    eligible.push_back(s);
  }
  if (eligible.empty()) return 0;
  std::size_t moved = 0;
  for (const Sink& s : eligible) {
    if (all || rng.chance(2, 3) || (moved == 0 && &s == &eligible.back())) {
      nl.rewireSink(s, to);
      ++moved;
    }
  }
  if (moved == 0) {  // guarantee progress
    nl.rewireSink(eligible[static_cast<std::size_t>(
                      rng.below(eligible.size()))],
                  to);
    moved = 1;
  }
  return moved;
}

/// Driver gate of a net, if it is a live 2-input symmetric gate.
GateId changeableGate(const Netlist& nl, NetId n) {
  const auto& net = nl.net(n);
  if (net.srcKind != Netlist::SourceKind::Gate) return kNullId;
  const auto& g = nl.gate(net.srcIdx);
  if (g.dead || g.fanins.size() != 2) return kNullId;
  switch (g.type) {
    case GateType::And:
    case GateType::Or:
    case GateType::Xor:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xnor:
      return net.srcIdx;
    default:
      return kNullId;
  }
}

struct MutationAttempt {
  bool applied = false;
  MutationReport report{};
};

MutationAttempt tryMutation(Netlist& nl, Rng& rng, NetId target,
                            const std::vector<NetId>& pool) {
  MutationAttempt out;
  const MutationKind kind = static_cast<MutationKind>(rng.below(6));
  out.report.kind = kind;
  switch (kind) {
    case MutationKind::GateChange: {
      const GateId g = changeableGate(nl, target);
      if (g == kNullId) return out;
      static constexpr GateType kTypes[] = {GateType::And,  GateType::Or,
                                            GateType::Xor,  GateType::Nand,
                                            GateType::Nor,  GateType::Xnor};
      GateType newType;
      do {
        newType = kTypes[rng.below(6)];
      } while (newType == nl.gate(g).type);
      const NetId replacement = nl.addGate(newType, nl.gate(g).fanins);
      const GateId newGate = nl.driverOf(replacement);
      rewireSomeSinks(nl, rng, target, replacement, {newGate}, /*all=*/true);
      out.report.gatesAdded = 1;
      break;
    }
    case MutationKind::Inversion: {
      const NetId inv = nl.addGate(GateType::Not, {target});
      const GateId newGate = nl.driverOf(inv);
      if (rewireSomeSinks(nl, rng, target, inv, {newGate}) == 0) return out;
      out.report.gatesAdded = 1;
      break;
    }
    case MutationKind::WrongWire: {
      const NetId other = rng.pick(pool);
      if (other == target) return out;
      const auto& sinks = nl.net(target).sinks;
      std::vector<Sink> gateSinks;
      for (const Sink& s : sinks)
        if (!s.isOutput()) gateSinks.push_back(s);
      if (gateSinks.empty()) return out;
      const Sink victim =
          gateSinks[static_cast<std::size_t>(rng.below(gateSinks.size()))];
      if (gateInCone(nl, other, victim.gate)) return out;
      nl.rewireSink(victim, other);
      out.report.gatesAdded = 1;  // a designer would count the moved pin
      break;
    }
    case MutationKind::AddedCondition: {
      // c := a AND b over pool signals; target sinks move to target AND c
      // (or OR with !c), the paper's Figure 1 revision pattern.
      const NetId a = rng.pick(pool);
      const NetId b = rng.pick(pool);
      const NetId c = nl.addGate(GateType::And, {a, b});
      NetId gated;
      std::size_t added;
      if (rng.flip()) {
        gated = nl.addGate(GateType::And, {target, c});
        added = 2;
      } else {
        const NetId nc = nl.addGate(GateType::Not, {c});
        gated = nl.addGate(GateType::Or, {target, nc});
        added = 3;
      }
      std::vector<GateId> exclude{nl.driverOf(c), nl.driverOf(gated)};
      if (rewireSomeSinks(nl, rng, target, gated, exclude) == 0) return out;
      out.report.gatesAdded = added;
      break;
    }
    case MutationKind::ConstantStuck: {
      const NetId k =
          nl.addGate(rng.flip() ? GateType::Const1 : GateType::Const0, {});
      if (rewireSomeSinks(nl, rng, target, k, {nl.driverOf(k)}) == 0)
        return out;
      out.report.gatesAdded = 1;
      break;
    }
    case MutationKind::MuxInsert: {
      const NetId sel = rng.pick(pool);
      const NetId alt = rng.pick(pool);
      const NetId mux = nl.addGate(GateType::Mux, {sel, target, alt});
      if (rewireSomeSinks(nl, rng, target, mux, {nl.driverOf(mux)}) == 0)
        return out;
      out.report.gatesAdded = 1;
      break;
    }
  }
  std::string why;
  if (!nl.isWellFormed(&why)) return out;  // cycle or corruption: reject
  out.applied = true;
  return out;
}

/// True when S and mutated S' differ on some output under random patterns.
bool functionsDiffer(const Netlist& a, const Netlist& b, Rng& rng) {
  Simulator sa(a, 8), sb(b, 8);
  sa.randomizeInputs(rng);
  for (std::size_t i = 0; i < b.numInputs(); ++i) {
    const std::uint32_t ia =
        a.findInput(b.inputName(static_cast<std::uint32_t>(i)));
    for (std::size_t w = 0; w < 8; ++w)
      sb.setInputWord(static_cast<std::uint32_t>(i), w,
                      ia != kNullId ? sa.word(a.inputNet(ia), w) : rng.next());
  }
  sa.run();
  sb.run();
  for (std::uint32_t o = 0; o < a.numOutputs(); ++o) {
    const std::uint32_t ob = b.findOutput(a.outputName(o));
    if (ob != kNullId && sa.outputValue(o) != sb.outputValue(ob)) return true;
  }
  return false;
}

}  // namespace

std::vector<MutationReport> applyMutations(Netlist& spec, Rng& rng, int count,
                                           double targetRevisedFraction) {
  const Netlist original = spec;
  const std::vector<std::uint32_t> reach = outputsReached(spec);
  const std::vector<NetId> pool = usableNets(spec);
  SYSECO_CHECK(!pool.empty());

  // Rank candidate targets by closeness of their output-cone fraction to
  // the requested revised fraction.
  std::vector<NetId> ranked = pool;
  const double total = static_cast<double>(spec.numOutputs());
  std::sort(ranked.begin(), ranked.end(), [&](NetId x, NetId y) {
    const double fx = std::abs(reach[x] / total - targetRevisedFraction);
    const double fy = std::abs(reach[y] / total - targetRevisedFraction);
    return fx < fy;
  });

  std::vector<MutationReport> reports;
  for (int attempt = 0; attempt < 64 && std::ssize(reports) < count;
       ++attempt) {
    // Every mutation aims near the target revised-output fraction, so the
    // union of their output cones lands close to it.
    const std::size_t band = std::max<std::size_t>(8, ranked.size() / 20);
    const NetId target = ranked[static_cast<std::size_t>(
        rng.below(std::min(band, ranked.size())))];
    if (spec.net(target).sinks.empty()) continue;
    Netlist scratch = spec;
    Rng scratchRng = rng.split();
    const MutationAttempt got = tryMutation(scratch, scratchRng, target, pool);
    if (!got.applied) continue;
    spec = std::move(scratch);
    reports.push_back(got.report);
  }
  SYSECO_CHECK(!reports.empty());

  // The revision must actually change behavior; if masked, force an
  // inversion at a primary output driver - always observable.
  if (!functionsDiffer(original, spec, rng)) {
    const std::uint32_t o =
        static_cast<std::uint32_t>(rng.below(spec.numOutputs()));
    const NetId inv = spec.addGate(GateType::Not, {spec.outputNet(o)});
    spec.rewireOutput(o, inv);
    reports.push_back(MutationReport{MutationKind::Inversion, 1});
    SYSECO_CHECK(functionsDiffer(original, spec, rng));
  }
  return reports;
}

EcoCase makeCase(const CaseRecipe& recipe) {
  Rng rng(recipe.seed);
  SpecCircuit sc = buildSpec(recipe.spec, rng);

  Netlist revised = sc.netlist;
  EcoCase out;
  out.name = recipe.name;
  out.revisions = applyMutations(revised, rng, recipe.mutations,
                                 recipe.targetRevisedFraction);
  for (const MutationReport& r : out.revisions)
    out.designerEstimateGates += r.gatesAdded;

  out.impl = heavyOptimize(sc.netlist, rng, recipe.optRounds);
  out.spec = lightSynth(revised);
  SYSECO_CHECK(out.impl.isWellFormed());
  SYSECO_CHECK(out.spec.isWellFormed());
  return out;
}

std::vector<CaseRecipe> suiteRecipes() {
  // Shaped after Table 1: a spread of sizes (scaled to workstation scale)
  // and revised-output fractions from under 1% to ~67%.
  std::vector<CaseRecipe> rs;
  auto add = [&](std::string name, std::uint32_t words, std::uint32_t width,
                 std::uint32_t ctrl, std::uint32_t layers, std::uint32_t ops,
                 std::uint32_t bitOps, std::uint32_t outWords,
                 std::uint32_t outBits, int mutations, double frac,
                 std::uint64_t seed) {
    CaseRecipe r;
    r.name = std::move(name);
    r.spec = SpecParams{words, width, ctrl, layers, ops, bitOps, outWords,
                        outBits};
    r.mutations = mutations;
    r.targetRevisedFraction = frac;
    r.optRounds = 3;
    r.seed = seed;
    rs.push_back(r);
  };
  //   name  words wid ctrl lay ops bit ow ob mut frac    seed
  add("eco01", 8, 16, 10, 6, 18, 10, 7, 10, 3, 0.11, 0x101);
  add("eco02", 2, 6, 4, 2, 4, 4, 3, 6, 3, 0.67, 0x202);
  add("eco03", 10, 16, 12, 6, 28, 10, 9, 10, 3, 0.08, 0x303);
  add("eco04", 6, 12, 8, 5, 14, 8, 5, 8, 2, 0.15, 0x404);
  add("eco05", 5, 10, 6, 4, 10, 6, 5, 8, 4, 0.46, 0x505);
  add("eco06", 8, 14, 10, 6, 16, 8, 8, 10, 1, 0.01, 0x606);
  add("eco07", 7, 14, 8, 5, 15, 8, 6, 8, 2, 0.095, 0x707);
  add("eco08", 5, 10, 6, 4, 10, 6, 5, 8, 3, 0.20, 0x808);
  add("eco09", 4, 8, 5, 3, 7, 5, 4, 6, 1, 0.05, 0x909);
  add("eco10", 4, 10, 6, 4, 8, 6, 4, 8, 1, 0.064, 0xA0A);
  add("eco11", 6, 12, 8, 5, 12, 8, 6, 8, 1, 0.032, 0xB0B);
  return rs;
}

std::vector<CaseRecipe> timingRecipes() {
  // Cases 12-15: deeper logic (more layers) so the level-driven selection
  // in syseco has room to matter.
  std::vector<CaseRecipe> rs;
  auto add = [&](std::string name, std::uint32_t words, std::uint32_t width,
                 std::uint32_t layers, std::uint32_t ops, int mutations,
                 double frac, std::uint64_t seed) {
    CaseRecipe r;
    r.name = std::move(name);
    r.spec = SpecParams{words, width, 6, layers, ops, 5, 4, 4};
    r.mutations = mutations;
    r.targetRevisedFraction = frac;
    r.optRounds = 3;
    r.seed = seed;
    rs.push_back(r);
  };
  add("eco12", 4, 10, 5, 5, 2, 0.12, 0xC0C);
  add("eco13", 5, 10, 6, 6, 3, 0.18, 0xD0D);
  add("eco14", 5, 10, 6, 7, 3, 0.15, 0xE0E);
  add("eco15", 4, 10, 5, 6, 2, 0.10, 0xF0F);
  return rs;
}

}  // namespace syseco
