#pragma once
// ECO test-case construction.
//
// A test case mirrors the paper's industrial setup (§6): a specification S
// is synthesized and *heavily optimized* into the current implementation C;
// the revised specification S' is S with injected functional changes (the
// kinds of changes real ECOs make: added gating conditions, inverted
// signals, wrong operators, wrong wires, stuck values, mux insertions);
// C' is a *lightly* synthesized S'. The pair (C, C') is what an ECO engine
// receives; C is structurally remote from C' by construction.
//
// The "designer's estimate" of Table 2 is substituted by the exact size of
// the injected delta - the number of gates a designer would say the update
// needs when applied at the specification level.

#include <cstdint>
#include <string>
#include <vector>

#include "gen/spec_builder.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace syseco {

/// One injected functional revision.
enum class MutationKind : std::uint8_t {
  GateChange,      ///< replace a gate's operator
  Inversion,       ///< invert a signal for a subset of its sinks
  WrongWire,       ///< move one sink pin to a different existing net
  AddedCondition,  ///< gate a signal with a fresh condition (Figure 1 style)
  ConstantStuck,   ///< tie a subset of sinks to a constant
  MuxInsert,       ///< route a signal through a fresh 2:1 mux
};

const char* mutationKindName(MutationKind kind);

struct MutationReport {
  MutationKind kind;
  std::size_t gatesAdded = 0;  ///< size of this revision at the spec level
};

/// Applies `count` random mutations to `spec` in place, steering the first
/// mutation toward nets whose output cone covers about
/// `targetRevisedFraction` of all outputs. Returns one report per applied
/// mutation. Guarantees the result is well-formed and acyclic, and that at
/// least one output function changed.
std::vector<MutationReport> applyMutations(Netlist& spec, Rng& rng, int count,
                                           double targetRevisedFraction);

/// A packaged ECO problem.
struct EcoCase {
  std::string name;
  Netlist impl;  ///< C: optimized implementation of the original spec
  Netlist spec;  ///< C': lightly synthesized revised specification
  std::size_t designerEstimateGates = 0;
  std::vector<MutationReport> revisions;
};

struct CaseRecipe {
  std::string name;
  SpecParams spec;
  int mutations = 1;
  double targetRevisedFraction = 0.1;
  int optRounds = 3;
  std::uint64_t seed = 1;
};

/// Builds the full case: S -> (C, C') with injected revisions.
EcoCase makeCase(const CaseRecipe& recipe);

/// The 11-case evaluation suite shaped after the paper's Table 1 (sizes
/// scaled to a workstation; revised-output fractions mirror the table's
/// 0.3%-67% spread).
std::vector<CaseRecipe> suiteRecipes();

/// Cases 12-15: the timing-critical designs of Table 3.
std::vector<CaseRecipe> timingRecipes();

}  // namespace syseco
