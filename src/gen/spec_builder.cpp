#include "gen/spec_builder.hpp"

#include <string>

#include "util/check.hpp"

namespace syseco {

namespace {

using Word = std::vector<NetId>;

/// Bitwise combination of two words.
Word wordBitwise(Netlist& nl, GateType type, const Word& a, const Word& b) {
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    r[i] = nl.addGate(type, {a[i], b[i]});
  return r;
}

Word wordNot(Netlist& nl, const Word& a) {
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    r[i] = nl.addGate(GateType::Not, {a[i]});
  return r;
}

/// GATE(w, b): bitwise and-ing of a word with a single-bit signal
/// (the paper's Example 1 operator).
Word wordGate(Netlist& nl, const Word& w, NetId bit) {
  Word r(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    r[i] = nl.addGate(GateType::And, {w[i], bit});
  return r;
}

Word wordMux(Netlist& nl, NetId sel, const Word& d0, const Word& d1) {
  Word r(d0.size());
  for (std::size_t i = 0; i < d0.size(); ++i)
    r[i] = nl.addGate(GateType::Mux, {sel, d0[i], d1[i]});
  return r;
}

/// Ripple-carry sum; carries entangle the bits across outputs.
Word wordAdd(Netlist& nl, const Word& a, const Word& b) {
  Word r(a.size());
  NetId carry = kNullId;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = nl.addGate(GateType::Xor, {a[i], b[i]});
    if (carry == kNullId) {
      r[i] = axb;
      carry = nl.addGate(GateType::And, {a[i], b[i]});
    } else {
      r[i] = nl.addGate(GateType::Xor, {axb, carry});
      const NetId c1 = nl.addGate(GateType::And, {a[i], b[i]});
      const NetId c2 = nl.addGate(GateType::And, {axb, carry});
      carry = nl.addGate(GateType::Or, {c1, c2});
    }
  }
  return r;
}

Word wordRotate(const Word& a, std::size_t by) {
  Word r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[(i + by) % a.size()];
  return r;
}

/// Truncated array multiplier: sum of shifted partial products, keeping the
/// low |a| bits. Deep carry entanglement across every output bit.
Word wordMulLow(Netlist& nl, const Word& a, const Word& b) {
  const std::size_t n = a.size();
  Word acc(n);
  for (std::size_t i = 0; i < n; ++i)
    acc[i] = nl.addGate(GateType::And, {a[i], b[0]});
  for (std::size_t shift = 1; shift < n; ++shift) {
    Word pp(n);
    // Partial product b[shift] * a, shifted; upper bits only.
    NetId zero = kNullId;
    for (std::size_t i = 0; i < n; ++i) {
      if (i < shift) {
        if (zero == kNullId) zero = nl.addGate(GateType::Const0, {});
        pp[i] = zero;
      } else {
        pp[i] = nl.addGate(GateType::And, {a[i - shift], b[shift]});
      }
    }
    acc = wordAdd(nl, acc, pp);
  }
  return acc;
}

/// Priority encoder: out[i] = in[i] AND none-of in[0..i-1]; the classic
/// control structure with a long ripple of ORs.
Word priorityEncode(Netlist& nl, const Word& in) {
  Word out(in.size());
  NetId anyBefore = kNullId;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (anyBefore == kNullId) {
      out[i] = in[i];
      anyBefore = in[i];
    } else {
      const NetId notBefore = nl.addGate(GateType::Not, {anyBefore});
      out[i] = nl.addGate(GateType::And, {in[i], notBefore});
      anyBefore = nl.addGate(GateType::Or, {anyBefore, in[i]});
    }
  }
  return out;
}

/// One-hot decode of the low log2(width) bits of a word, AND-ed with an
/// enable bit - address decoders are rich multi-sink gating structures.
Word decodeLow(Netlist& nl, const Word& sel, NetId enable,
               std::size_t width) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < width) ++bits;
  bits = std::min(bits, sel.size());
  Word out(width);
  for (std::size_t v = 0; v < width; ++v) {
    std::vector<NetId> terms{enable};
    for (std::size_t j = 0; j < bits; ++j) {
      terms.push_back((v >> j) & 1
                          ? sel[j]
                          : nl.addGate(GateType::Not, {sel[j]}));
    }
    out[v] = nl.addGate(GateType::And, terms);
  }
  return out;
}

/// Galois-style CRC step: shift and conditionally XOR a polynomial mask.
Word crcStep(Netlist& nl, const Word& state, NetId dataBit,
             std::uint64_t poly) {
  const std::size_t n = state.size();
  const NetId fb = nl.addGate(GateType::Xor, {state[n - 1], dataBit});
  Word next(n);
  next[0] = nl.addGate(GateType::Buf, {fb});
  for (std::size_t i = 1; i < n; ++i) {
    next[i] = ((poly >> i) & 1)
                  ? nl.addGate(GateType::Xor, {state[i - 1], fb})
                  : state[i - 1];
  }
  return next;
}

NetId wordReduce(Netlist& nl, GateType type, const Word& a) {
  return nl.addGate(type, a);
}

NetId wordEqual(Netlist& nl, const Word& a, const Word& b) {
  std::vector<NetId> eqs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    eqs[i] = nl.addGate(GateType::Xnor, {a[i], b[i]});
  return nl.addGate(GateType::And, eqs);
}

}  // namespace

SpecCircuit buildSpec(const SpecParams& p, Rng& rng) {
  SYSECO_CHECK(p.numInputWords >= 2 && p.wordWidth >= 2);
  SYSECO_CHECK(p.numControlBits >= 1);
  SpecCircuit sc;
  Netlist& nl = sc.netlist;

  for (std::uint32_t w = 0; w < p.numInputWords; ++w) {
    Word word(p.wordWidth);
    for (std::uint32_t b = 0; b < p.wordWidth; ++b)
      word[b] = nl.addInput("w" + std::to_string(w) + "_" + std::to_string(b));
    sc.words.push_back(std::move(word));
  }
  for (std::uint32_t c = 0; c < p.numControlBits; ++c)
    sc.bits.push_back(nl.addInput("c" + std::to_string(c)));

  auto randWord = [&]() -> const Word& { return rng.pick(sc.words); };
  auto randBit = [&]() -> NetId { return rng.pick(sc.bits); };

  for (std::uint32_t layer = 0; layer < p.numLayers; ++layer) {
    for (std::uint32_t k = 0; k < p.bitOpsPerLayer; ++k) {
      NetId r = kNullId;
      switch (rng.below(6)) {
        case 0:
          r = nl.addGate(GateType::And, {randBit(), randBit()});
          break;
        case 1:
          r = nl.addGate(GateType::Or, {randBit(), randBit()});
          break;
        case 2:
          r = nl.addGate(GateType::Xor, {randBit(), randBit()});
          break;
        case 3:
          r = nl.addGate(GateType::Not, {randBit()});
          break;
        case 4:
          r = nl.addGate(GateType::Mux, {randBit(), randBit(), randBit()});
          break;
        default:
          r = wordEqual(nl, randWord(), randWord());
      }
      sc.bits.push_back(r);
    }
    for (std::uint32_t k = 0; k < p.opsPerLayer; ++k) {
      Word r;
      switch (rng.below(12)) {
        case 0:
          r = wordBitwise(nl, GateType::And, randWord(), randWord());
          break;
        case 1:
          r = wordBitwise(nl, GateType::Or, randWord(), randWord());
          break;
        case 2:
          r = wordBitwise(nl, GateType::Xor, randWord(), randWord());
          break;
        case 3:
          r = wordNot(nl, randWord());
          break;
        case 4:
          r = wordGate(nl, randWord(), randBit());
          break;
        case 5:
          r = wordMux(nl, randBit(), randWord(), randWord());
          break;
        case 6:
          r = wordAdd(nl, randWord(), randWord());
          break;
        case 7:
          r = priorityEncode(nl, randWord());
          break;
        case 8:
          r = decodeLow(nl, randWord(), randBit(), p.wordWidth);
          break;
        case 9:
          r = crcStep(nl, randWord(), randBit(),
                      rng.next() | 0x21);  // random poly, taps at 0 and 5
          break;
        case 10:
          // Array multipliers are quadratic; keep them to narrow words.
          if (p.wordWidth <= 12) {
            r = wordMulLow(nl, randWord(), randWord());
            break;
          }
          [[fallthrough]];
        default:
          r = wordRotate(randWord(), 1 + rng.below(p.wordWidth - 1));
      }
      sc.words.push_back(std::move(r));
      // Occasionally derive a reduction bit from the fresh word, coupling
      // the control plane to the datapath.
      if (rng.chance(1, 3)) {
        const GateType t = rng.flip() ? GateType::Or : GateType::Xor;
        sc.bits.push_back(wordReduce(nl, t, sc.words.back()));
      }
    }
  }

  // Outputs: prefer signals from the last layers so all logic stays live.
  std::uint32_t outWordCount = 0;
  for (std::uint32_t k = 0; k < p.numOutputWords; ++k) {
    const std::size_t lo = sc.words.size() > p.numOutputWords * 2
                               ? sc.words.size() - p.numOutputWords * 2
                               : 0;
    const std::size_t pickIdx = lo + rng.below(sc.words.size() - lo);
    const Word& w = sc.words[pickIdx];
    for (std::size_t b = 0; b < w.size(); ++b)
      nl.addOutput("out" + std::to_string(outWordCount) + "_" +
                       std::to_string(b),
                   w[b]);
    ++outWordCount;
  }
  for (std::uint32_t k = 0; k < p.numOutputBits; ++k) {
    const std::size_t lo =
        sc.bits.size() > p.numOutputBits * 3 ? sc.bits.size() - p.numOutputBits * 3
                                             : 0;
    nl.addOutput("outb" + std::to_string(k),
                 sc.bits[lo + rng.below(sc.bits.size() - lo)]);
  }
  // No dead-logic sweep here: the mutator may still tap currently-unused
  // pool signals, and the synthesis passes rebuild live logic anyway.
  SYSECO_CHECK(nl.isWellFormed());
  return sc;
}

}  // namespace syseco
