#pragma once
// WAL-backed durable job queue for the --serve daemon.
//
// Every queue transition (submitted, running, done, failed, cancelled,
// recovered) is appended to a util/journal write-ahead log *before* the
// in-memory state mutates, with fsync-per-record durability. A daemon
// killed with SIGKILL at any instant recovers the queue exactly by folding
// the WAL: terminal states stay terminal, queued jobs stay queued, and
// jobs that were mid-run come back as queued-with-resume so the dispatcher
// re-runs them with --resume against their own engine journals - which is
// what makes post-crash verdict records bit-identical to an uninterrupted
// run (the engine's resume invariant, proven by the kill-and-resume suite).
//
// On-disk layout under the state directory:
//
//   queue/            the WAL (journal.jsonl + COMMIT), serve-event records
//   jobs/<id>/        one directory per job:
//     impl.<fmt>, spec.<fmt>   the submitted netlist texts
//     journal/                 the job's own engine run journal
//     report.json, out.<fmt>   the finished run's artifacts
//     worker.log               captured stdout/stderr of the job worker
//
// The WAL is compacted on every open: recovery folds the old log, then a
// fresh log is written with one submitted record per live job plus its
// current state, so the WAL length is bounded by queue occupancy, not
// daemon lifetime. Admission control reads its ledgers (resident job
// count, per-tenant depth, resident payload bytes) straight from the
// folded state.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/codec.hpp"
#include "util/journal.hpp"
#include "util/status.hpp"

namespace syseco::serve {

enum class QueueState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* queueStateName(QueueState s);

/// One job's durable record plus dispatch bookkeeping.
struct Job {
  std::string id;  ///< "j%06u", monotonically assigned, crash-stable
  std::string tenant;
  std::string format;  ///< blif | v | netlist (artifact file extensions)
  std::uint64_t seed = 1;
  std::int64_t jobs = 1;
  bool isolate = false;
  bool detach = false;
  std::string faultInject;   ///< test hook, propagated to the worker env
  std::uint64_t bytes = 0;   ///< impl+spec payload bytes (admission ledger)
  QueueState state = QueueState::kQueued;
  std::int64_t attempt = 0;  ///< dispatch ordinal (1 = first attempt)
  std::int64_t exitCode = 0;
  std::string cause;         ///< failure/cancel classification
  std::string detail;
  /// A previous attempt (possibly in a previous daemon life) left an engine
  /// journal behind: dispatch with --resume so committed per-output
  /// progress is kept and the final verdicts stay bit-identical.
  bool resume = false;
};

struct AdmissionLimits {
  std::size_t maxResidentJobs = 16;  ///< queued + running, daemon-wide
  std::size_t maxPerTenant = 8;      ///< queued + running, per tenant
  std::uint64_t maxResidentBytes = 256ull << 20;  ///< payload watermark
};

struct Admission {
  bool admitted = false;
  std::string reason;  ///< Rejected reason token when !admitted
  std::string detail;
};

class JobQueue {
 public:
  /// Opens (creating if needed) the state directory, folds the WAL to
  /// recover every job, re-queues jobs that were mid-run with the resume
  /// flag set, and compacts the WAL. recoveryNotes() describes what was
  /// recovered, for the daemon to log and journal.
  static Result<JobQueue> open(const std::string& stateDir);

  /// Pure admission check against the current ledgers; does not mutate.
  Admission admit(const std::string& tenant, std::uint64_t payloadBytes,
                  const AdmissionLimits& limits) const;

  /// Persists the job: payload files first, then the WAL submitted record,
  /// then the in-memory entry. A crash between the two leaves only an
  /// orphaned payload directory, never a WAL record without its payload.
  Result<Job*> submit(const SubmitRequest& request);

  /// Oldest queued job, or null. FIFO in id order.
  Job* nextQueued();

  Job* find(const std::string& id);
  std::vector<Job*> all();

  // Durable transitions: WAL append first (fsync'd), then the mutation.
  Status markRunning(Job& job, std::int64_t attempt);
  Status markDone(Job& job, std::int64_t exitCode);
  Status markFailed(Job& job, const std::string& cause,
                    const std::string& detail);
  Status markCancelled(Job& job, const std::string& cause,
                       const std::string& detail);
  /// Heals a crashed running job: appends a "recovered" record and flips
  /// it back to queued-with-resume so the next dispatch continues from the
  /// job's own engine journal.
  Status markRequeued(Job& job, const std::string& cause,
                      const std::string& detail);

  /// Appends a daemon-wide note record (observability only; folded away on
  /// the next compaction).
  Status note(const std::string& detail);

  // Admission ledgers (queued + running).
  std::size_t residentCount() const;
  std::size_t tenantResident(const std::string& tenant) const;
  std::uint64_t residentBytes() const;

  // Artifact paths inside the job's directory.
  std::string jobDir(const std::string& id) const;
  std::string implPath(const Job& job) const;
  std::string specPath(const Job& job) const;
  std::string engineJournalDir(const Job& job) const;
  std::string reportPath(const Job& job) const;
  std::string outPath(const Job& job) const;
  std::string workerLogPath(const Job& job) const;

  const std::string& stateDir() const { return stateDir_; }
  const std::vector<std::string>& recoveryNotes() const {
    return recoveryNotes_;
  }

  /// True once a storage fault latched the WAL writer (failed write/fsync
  /// or COMMIT-marker replacement). The daemon fails closed on it: no
  /// transition can be made durable, so no further work may be accepted
  /// or dispatched - restart and recover instead.
  bool walPoisoned() const { return wal_.poisoned(); }
  const std::string& walPoisonCause() const { return wal_.poisonCause(); }

 private:
  JobQueue() = default;

  Status appendEvent(const std::string& event, const Job& job);

  std::string stateDir_;
  JournalWriter wal_;
  /// Stable addresses (the daemon holds Job* across ticks), id order.
  std::vector<std::unique_ptr<Job>> jobs_;
  std::uint64_t nextId_ = 1;
  std::vector<std::string> recoveryNotes_;
};

}  // namespace syseco::serve
