#include "serve/batch_ledger.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/journal_io.hpp"
#include "util/atomic_file.hpp"

namespace syseco::serve {

namespace {

constexpr const char* kLedgerSubdir = "/ledger";

Status ensureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return Status::ok();
  return Status::internal("mkdir('" + path + "') failed: " +
                          std::strerror(errno));
}

std::string pathExtension(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return ".netlist";
  const std::string ext = path.substr(dot);
  if (ext == ".blif" || ext == ".v") return ext;
  return ".netlist";
}

/// Folds one WAL record into the recovered case list. Unknown events are
/// skipped (a newer driver's WAL degrades to what this one understands).
void foldEvent(const JournalBatchEvent& ev,
               std::vector<std::unique_ptr<BatchCase>>& cases) {
  if (ev.event == "note" || ev.name.empty()) return;
  BatchCase* c = nullptr;
  for (std::unique_ptr<BatchCase>& existing : cases)
    if (existing->name == ev.name) {
      c = existing.get();
      break;
    }
  if (ev.event == "registered") {
    if (c != nullptr) return;  // duplicate register: first one wins
    auto fresh = std::make_unique<BatchCase>();
    fresh->name = ev.name;
    fresh->implPath = ev.impl;
    fresh->specPath = ev.spec;
    fresh->seed = ev.seed;
    fresh->jobs = ev.jobs;
    cases.push_back(std::move(fresh));
    return;
  }
  if (c == nullptr) return;  // transition without a register: dropped frame
  if (ev.event == "dispatched") {
    c->state = CaseState::kRunning;
    c->attempt = ev.attempt;
    c->worker = ev.worker;
  } else if (ev.event == "requeued") {
    c->state = CaseState::kQueued;
    c->resume = true;
    c->attempt = ev.attempt;
    c->cause = ev.cause;
    c->detail = ev.detail;
  } else if (ev.event == "done") {
    c->state = CaseState::kDone;
    c->exitCode = ev.exitCode;
    c->worker = ev.worker;
    c->cacheHits = ev.cacheHits;
    c->cacheMisses = ev.cacheMisses;
    c->cacheEvictions = ev.cacheEvictions;
    c->cause.clear();
    c->detail.clear();
  } else if (ev.event == "failed") {
    c->state = CaseState::kFailed;
    c->cause = ev.cause;
    c->detail = ev.detail;
  }
}

JournalBatchEvent eventFor(const std::string& event, const BatchCase& c,
                           std::uint64_t epoch) {
  JournalBatchEvent ev;
  ev.event = event;
  ev.name = c.name;
  ev.impl = c.implPath;
  ev.spec = c.specPath;
  ev.seed = c.seed;
  ev.jobs = c.jobs;
  ev.worker = c.worker;
  ev.epoch = epoch;
  ev.attempt = c.attempt;
  ev.exitCode = c.exitCode;
  ev.cause = c.cause;
  ev.detail = c.detail;
  ev.cacheHits = c.cacheHits;
  ev.cacheMisses = c.cacheMisses;
  ev.cacheEvictions = c.cacheEvictions;
  return ev;
}

}  // namespace

const char* caseStateName(CaseState s) {
  switch (s) {
    case CaseState::kQueued: return "queued";
    case CaseState::kRunning: return "running";
    case CaseState::kDone: return "done";
    case CaseState::kFailed: return "failed";
  }
  return "unknown";
}

Result<BatchLedger> BatchLedger::open(const std::string& stateDir) {
  BatchLedger l;
  l.stateDir_ = stateDir;
  if (Status s = ensureDir(stateDir); !s.isOk()) return s;
  if (Status s = ensureDir(stateDir + "/cases"); !s.isOk()) return s;

  // Fold whatever WAL a previous driver life left behind. A missing
  // journal is an empty scan; torn tails and corrupt lines were already
  // dropped (with diagnostics) by the framing layer.
  Result<JournalScan> scan = scanJournal(stateDir + kLedgerSubdir);
  if (!scan.isOk()) return scan.status();
  std::size_t droppedPayloads = 0;
  for (const JournalFrame& frame : scan.value().frames) {
    Result<JournalBatchEvent> ev = parseBatchEvent(frame.payload);
    if (!ev.isOk()) {
      ++droppedPayloads;
      continue;
    }
    foldEvent(ev.value(), l.cases_);
  }
  for (const std::string& d : scan.value().diagnostics)
    l.recoveryNotes_.push_back("batch WAL: " + d);
  if (droppedPayloads > 0)
    l.recoveryNotes_.push_back("batch WAL: dropped " +
                               std::to_string(droppedPayloads) +
                               " unparseable record(s)");
  l.hadCases_ = !l.cases_.empty();

  // Cases that were mid-dispatch when the driver died come back queued with
  // the resume flag: their engine journals hold every committed checkpoint
  // (remote dispatch leaves no local journal, and --resume over an empty
  // journal simply runs fresh - either way the verdicts stay identical).
  for (std::unique_ptr<BatchCase>& c : l.cases_) {
    if (c->state == CaseState::kRunning) {
      c->state = CaseState::kQueued;
      c->resume = true;
      l.recoveryNotes_.push_back(
          "case " + c->name +
          " was mid-dispatch at shutdown; re-queued with resume (attempt " +
          std::to_string(c->attempt) + ")");
    } else if (c->state == CaseState::kQueued && c->resume) {
      l.recoveryNotes_.push_back("case " + c->name +
                                 " restored as queued-with-resume");
    }
  }

  // A crash mid-writeFileAtomic legitimately strands a staging file in the
  // state tree; recovery sweeps them so they never accumulate (and so the
  // chaos harness can treat a surviving one as a leak).
  removeStaleStaging(stateDir);
  removeStaleStaging(stateDir + "/cases");
  for (const std::unique_ptr<BatchCase>& c : l.cases_)
    removeStaleStaging(l.caseDir(c->name));

  // Compact: rewrite the WAL from the folded state so its length tracks
  // case count, not driver lifetime. The rewrite is staged and renamed
  // (createCompacted), so a kill at any instant leaves either the complete
  // old WAL or the complete new one - never a truncated mix.
  std::vector<std::string> compacted;
  for (std::unique_ptr<BatchCase>& c : l.cases_) {
    compacted.push_back(serializeBatchEvent(eventFor("registered", *c, 0)));
    const char* transition = nullptr;
    switch (c->state) {
      case CaseState::kQueued:
        if (c->resume) transition = "requeued";
        break;
      case CaseState::kRunning: transition = "dispatched"; break;
      case CaseState::kDone: transition = "done"; break;
      case CaseState::kFailed: transition = "failed"; break;
    }
    if (transition != nullptr)
      compacted.push_back(serializeBatchEvent(eventFor(transition, *c, 0)));
  }
  Result<JournalWriter> wal = JournalWriter::createCompacted(
      stateDir + kLedgerSubdir, compacted, "ledger.wal");
  if (!wal.isOk()) return wal.status();
  l.wal_ = wal.take();
  return l;
}

Result<BatchCase*> BatchLedger::registerCase(const std::string& name,
                                             const std::string& implPath,
                                             const std::string& specPath,
                                             std::uint64_t seed,
                                             std::int64_t jobs) {
  if (BatchCase* existing = find(name)) {
    if (existing->implPath != implPath || existing->specPath != specPath ||
        existing->seed != seed || existing->jobs != jobs)
      return Status::invalidInput(
          "case '" + name +
          "' already in the ledger with different inputs; refusing to "
          "resume a different manifest");
    return existing;
  }
  auto fresh = std::make_unique<BatchCase>();
  fresh->name = name;
  fresh->implPath = implPath;
  fresh->specPath = specPath;
  fresh->seed = seed;
  fresh->jobs = jobs;
  if (Status s = ensureDir(caseDir(name)); !s.isOk()) return s;
  if (Status s = appendEvent("registered", *fresh, 0); !s.isOk()) return s;
  cases_.push_back(std::move(fresh));
  return cases_.back().get();
}

BatchCase* BatchLedger::find(const std::string& name) {
  for (std::unique_ptr<BatchCase>& c : cases_)
    if (c->name == name) return c.get();
  return nullptr;
}

std::vector<BatchCase*> BatchLedger::all() {
  std::vector<BatchCase*> out;
  out.reserve(cases_.size());
  for (std::unique_ptr<BatchCase>& c : cases_) out.push_back(c.get());
  return out;
}

Status BatchLedger::appendEvent(const std::string& event, const BatchCase& c,
                                std::uint64_t epoch) {
  return wal_.append(serializeBatchEvent(eventFor(event, c, epoch)));
}

Status BatchLedger::markDispatched(BatchCase& c, std::int64_t attempt,
                                   const std::string& worker,
                                   std::uint64_t epoch) {
  BatchCase next = c;
  next.attempt = attempt;
  next.worker = worker;
  if (Status s = appendEvent("dispatched", next, epoch); !s.isOk()) return s;
  c.state = CaseState::kRunning;
  c.attempt = attempt;
  c.worker = worker;
  return Status::ok();
}

Status BatchLedger::markDone(BatchCase& c, std::int64_t exitCode,
                             std::uint64_t cacheHits,
                             std::uint64_t cacheMisses,
                             std::uint64_t cacheEvictions) {
  BatchCase next = c;
  next.exitCode = exitCode;
  next.cacheHits = cacheHits;
  next.cacheMisses = cacheMisses;
  next.cacheEvictions = cacheEvictions;
  next.cause.clear();
  next.detail.clear();
  if (Status s = appendEvent("done", next, 0); !s.isOk()) return s;
  c.state = CaseState::kDone;
  c.exitCode = exitCode;
  c.cacheHits = cacheHits;
  c.cacheMisses = cacheMisses;
  c.cacheEvictions = cacheEvictions;
  c.cause.clear();
  c.detail.clear();
  return Status::ok();
}

Status BatchLedger::markFailed(BatchCase& c, const std::string& cause,
                               const std::string& detail) {
  BatchCase next = c;
  next.cause = cause;
  next.detail = detail;
  if (Status s = appendEvent("failed", next, 0); !s.isOk()) return s;
  c.state = CaseState::kFailed;
  c.cause = cause;
  c.detail = detail;
  return Status::ok();
}

Status BatchLedger::markRequeued(BatchCase& c, const std::string& cause,
                                 const std::string& detail) {
  BatchCase next = c;
  next.cause = cause;
  next.detail = detail;
  if (Status s = appendEvent("requeued", next, 0); !s.isOk()) return s;
  c.state = CaseState::kQueued;
  c.resume = true;
  c.cause = cause;
  c.detail = detail;
  return Status::ok();
}

Status BatchLedger::note(const std::string& detail) {
  JournalBatchEvent ev;
  ev.event = "note";
  ev.detail = detail;
  return wal_.append(serializeBatchEvent(ev));
}

std::string BatchLedger::caseDir(const std::string& name) const {
  return stateDir_ + "/cases/" + name;
}

std::string BatchLedger::engineJournalDir(const BatchCase& c) const {
  return caseDir(c.name) + "/journal";
}

std::string BatchLedger::reportPath(const BatchCase& c) const {
  return caseDir(c.name) + "/report.json";
}

std::string BatchLedger::outPath(const BatchCase& c) const {
  return caseDir(c.name) + "/out" + pathExtension(c.implPath);
}

std::string BatchLedger::verdictsPath(const BatchCase& c) const {
  return caseDir(c.name) + "/verdicts.txt";
}

std::string BatchLedger::workerLogPath(const BatchCase& c) const {
  return caseDir(c.name) + "/worker.log";
}

}  // namespace syseco::serve
