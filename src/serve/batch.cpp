#include "serve/batch.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "serve/watchdog.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/io_retry.hpp"
#include "util/ipc.hpp"
#include "util/journal.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace syseco::serve {

double caseRedispatchBackoffSeconds(double backoffBaseMs, std::uint64_t seed,
                                    std::uint32_t caseOrdinal,
                                    int failedAttempts) {
  // The per-output transports' deterministic contract, re-keyed: the case's
  // manifest ordinal stands in for the output index, so every driver life
  // paces the same case on the same schedule from (seed, ordinal) alone.
  SysecoOptions opt;
  opt.isolateBackoffMs = backoffBaseMs;
  opt.seed = seed;
  return retryBackoffSeconds(opt, caseOrdinal, failedAttempts);
}

// --- Manifest -------------------------------------------------------------

namespace {

constexpr std::size_t kMaxManifestCases = 4096;
constexpr std::int64_t kMaxCaseJobs = 256;

Status badManifest(const std::string& why) {
  return Status::invalidInput("batch manifest: " + why);
}

bool memberString(const JsonValue& v, const char* key, std::string* out) {
  const JsonValue* m = v.find(key);
  if (m == nullptr || m->kind != JsonValue::Kind::String) return false;
  *out = m->str;
  return true;
}

}  // namespace

Result<std::vector<ManifestCase>> parseBatchManifest(std::string_view text) {
  Result<JsonValue> parsed = parseJson(text);
  if (!parsed.isOk())
    return badManifest("not valid JSON: " + parsed.status().message());
  const JsonValue& v = parsed.value();
  if (v.kind != JsonValue::Kind::Object)
    return badManifest("top level is not an object");
  const JsonValue* cases = v.find("cases");
  if (cases == nullptr || cases->kind != JsonValue::Kind::Array)
    return badManifest("missing \"cases\" array");
  if (cases->items.empty()) return badManifest("\"cases\" is empty");
  if (cases->items.size() > kMaxManifestCases)
    return badManifest("more than " + std::to_string(kMaxManifestCases) +
                       " cases");

  std::vector<ManifestCase> out;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < cases->items.size(); ++i) {
    const JsonValue& e = cases->items[i];
    const std::string at = "case #" + std::to_string(i + 1);
    if (e.kind != JsonValue::Kind::Object)
      return badManifest(at + " is not an object");
    ManifestCase c;
    if (!memberString(e, "name", &c.name) || !validFleetCaseName(c.name))
      return badManifest(
          at + " needs a portable \"name\" (1..64 of [A-Za-z0-9._-], not "
               "starting with '.')");
    if (!seen.insert(c.name).second)
      return badManifest("duplicate case name '" + c.name + "'");
    if (!memberString(e, "impl", &c.implPath) || c.implPath.empty())
      return badManifest(at + " needs an \"impl\" path");
    if (!memberString(e, "spec", &c.specPath) || c.specPath.empty())
      return badManifest(at + " needs a \"spec\" path");
    if (const JsonValue* seed = e.find("seed"); seed != nullptr) {
      if (!seed->isInteger || seed->integer < 0)
        return badManifest(at + ": \"seed\" must be a non-negative integer");
      c.seed = static_cast<std::uint64_t>(seed->integer);
      c.hasSeed = true;
    }
    if (const JsonValue* jobs = e.find("jobs"); jobs != nullptr) {
      if (!jobs->isInteger || jobs->integer < 1 || jobs->integer > kMaxCaseJobs)
        return badManifest(at + ": \"jobs\" must be in 1.." +
                           std::to_string(kMaxCaseJobs));
      c.jobs = jobs->integer;
      c.hasJobs = true;
    }
    out.push_back(std::move(c));
  }
  return out;
}

// --- CaseDispatcher -------------------------------------------------------

namespace {

constexpr int kPeerMaxStrikes = 2;

const char* recvBreakCause(net::RecvStatus st) {
  switch (st) {
    case net::RecvStatus::kTruncated: return "frame-truncated";
    case net::RecvStatus::kGarbage: return "garbage-ipc";
    default: return "conn-reset";
  }
}

}  // namespace

CaseDispatcher::CaseDispatcher(Options opt) : opt_(std::move(opt)) {
  for (const std::string& spec : opt_.workers) {
    Peer p;
    p.spec = spec;
    Result<std::pair<std::string, std::uint16_t>> hp = net::parseHostPort(spec);
    if (!hp.isOk()) {
      // A malformed spec can never serve; it is born dead (and reported so
      // the caller's ledger shows why the fleet is smaller than configured).
      p.dead = true;
      Event ev;
      ev.kind = EventKind::kPeerDead;
      ev.worker = spec;
      ev.cause = "conn-refused";
      ev.detail = "bad worker spec: " + hp.status().message();
      pending_.push_back(std::move(ev));
    } else {
      p.host = hp.value().first;
      p.port = hp.value().second;
    }
    peers_.push_back(std::move(p));
  }
}

CaseDispatcher::~CaseDispatcher() {
  for (Peer& p : peers_) net::closeSocket(p.fd);
}

void CaseDispatcher::log(const std::string& msg) const {
  if (opt_.verbose) std::fprintf(stderr, "[syseco-batch] %s\n", msg.c_str());
}

std::size_t CaseDispatcher::usableWorkers() const {
  std::size_t n = 0;
  for (const Peer& p : peers_)
    if (!p.dead && !p.lagging) ++n;
  return n;
}

bool CaseDispatcher::fleetUsable() const {
  return usableWorkers() >= static_cast<std::size_t>(std::max(1, opt_.minWorkers));
}

bool CaseDispatcher::hasIdlePeer() const {
  for (const Peer& p : peers_)
    if (!p.dead && !p.lagging && !p.busy) return true;
  return false;
}

std::vector<int> CaseDispatcher::pollFds() const {
  std::vector<int> fds;
  for (const Peer& p : peers_)
    if (p.fd >= 0) fds.push_back(p.fd);
  return fds;
}

CaseDispatcher::Event CaseDispatcher::reclaim(Peer& p, const std::string& cause,
                                              const std::string& why) {
  Event ev;
  ev.kind = EventKind::kFailure;
  ev.name = p.caseName;
  ev.worker = p.spec;
  ev.attempt = p.attempt;
  ev.cause = cause;
  ev.detail = why;
  p.busy = false;
  p.casePayload.clear();
  p.casePayload.shrink_to_fit();
  return ev;
}

void CaseDispatcher::breakPeer(Peer& p, const std::string& cause,
                               const std::string& why,
                               std::vector<Event>& out) {
  if (p.busy) out.push_back(reclaim(p, cause, why));
  net::closeSocket(p.fd);
  p.rx.clear();
  p.lagging = false;
  ++p.strikes;
  if (p.strikes >= kPeerMaxStrikes && !p.dead) {
    p.dead = true;
    Event ev;
    ev.kind = EventKind::kPeerDead;
    ev.worker = p.spec;
    ev.cause = cause;
    ev.detail = why;
    out.push_back(std::move(ev));
    log("worker " + p.spec + " marked dead: " + why);
  }
}

Result<CaseDispatcher::Assignment> CaseDispatcher::assign(
    const std::string& name, std::string casePayload, std::int64_t jobs,
    std::int64_t attempt, double nowSeconds) {
  const std::uint32_t crc = crc32(casePayload);
  for (Peer& p : peers_) {
    if (p.dead || p.lagging || p.busy) continue;
    if (p.fd < 0) {
      Result<int> fd = net::connectTo(p.host, p.port, opt_.connectTimeoutMs);
      if (!fd.isOk()) {
        // The case never reached the agent: the refusal strikes the peer,
        // not the case's retry budget.
        breakPeer(p, "conn-refused", fd.status().message(), pending_);
        continue;
      }
      p.fd = fd.take();
      p.rx.clear();
    }
    FleetCaseTask task;
    task.name = name;
    task.caseCrc = crc;
    task.epoch = ++epochCounter_;
    task.leaseSeconds = opt_.leaseSeconds;
    task.jobs = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(jobs, 1, kMaxCaseJobs));
    task.attempt = attempt;
    if (!net::sendFrame(p.fd, ipc::kTypeFleetCaseTask,
                        encodeFleetCaseTask(task))
             .isOk()) {
      breakPeer(p, "conn-reset", "case task send failed", pending_);
      continue;
    }
    p.busy = true;
    p.caseName = name;
    p.casePayload = std::move(casePayload);
    p.caseCrc = crc;
    p.epoch = task.epoch;
    p.attempt = attempt;
    p.deadline = nowSeconds + opt_.leaseSeconds;
    log("case " + name + " -> " + p.spec + " (epoch " +
        std::to_string(task.epoch) + ", attempt " + std::to_string(attempt) +
        ")");
    Assignment a;
    a.worker = p.spec;
    a.epoch = task.epoch;
    return a;
  }
  return Status::internal("no idle usable agent accepted the case");
}

void CaseDispatcher::handleFrame(Peer& p, const ipc::Frame& frame,
                                 double nowSeconds, std::vector<Event>& out) {
  switch (frame.type) {
    case ipc::kTypeFleetNeedCase: {
      Result<std::uint32_t> crc = decodeFleetNeedCase(frame.payload);
      if (!crc.isOk() || !p.busy || crc.value() != p.caseCrc) {
        breakPeer(p, "garbage-ipc", "bad need-case frame", out);
        return;
      }
      log("case upload to " + p.spec + " (" +
          std::to_string(p.casePayload.size()) + " bytes)");
      if (!net::sendFrame(p.fd, ipc::kTypeFleetCase, p.casePayload).isOk())
        breakPeer(p, "conn-reset", "case upload failed", out);
      return;
    }
    case ipc::kTypeFleetHeartbeat: {
      Result<std::uint64_t> ep = decodeFleetHeartbeat(frame.payload);
      if (!ep.isOk()) {
        breakPeer(p, "garbage-ipc", "bad heartbeat frame", out);
        return;
      }
      // Heartbeats for reclaimed epochs are ignored: the peer stays
      // lagging until its stale result lands.
      if (p.busy && ep.value() == p.epoch)
        p.deadline = nowSeconds + opt_.leaseSeconds;
      return;
    }
    case ipc::kTypeFleetCaseResult: {
      Result<FleetCaseResult> res = decodeFleetCaseResult(frame.payload);
      if (!res.isOk()) {
        breakPeer(p, "garbage-ipc",
                  "undecodable case result: " + res.status().message(), out);
        return;
      }
      if (!p.busy || res.value().epoch != p.epoch) {
        // The duplicate from a reclaimed assignment: discarded by epoch,
        // and the agent - alive, honest, just too late - rejoins the pool.
        Event ev;
        ev.kind = EventKind::kStaleDiscard;
        ev.name = p.caseName;
        ev.worker = p.spec;
        ev.cause = "stale-epoch";
        ev.detail = "discarded duplicate result for epoch " +
                    std::to_string(res.value().epoch);
        out.push_back(std::move(ev));
        p.lagging = false;
        p.strikes = 0;
        return;
      }
      Event ev;
      ev.kind = EventKind::kResult;
      ev.name = p.caseName;
      ev.worker = p.spec;
      ev.attempt = p.attempt;
      ev.result = res.take();
      out.push_back(std::move(ev));
      p.busy = false;
      p.strikes = 0;
      p.casePayload.clear();
      p.casePayload.shrink_to_fit();
      return;
    }
    case ipc::kTypeFleetFailure: {
      Result<FleetFailure> fail = decodeFleetFailure(frame.payload);
      if (!fail.isOk()) {
        breakPeer(p, "garbage-ipc", "bad failure frame", out);
        return;
      }
      if (!p.busy || fail.value().epoch != p.epoch) {
        Event ev;
        ev.kind = EventKind::kStaleDiscard;
        ev.name = p.caseName;
        ev.worker = p.spec;
        ev.cause = "stale-epoch";
        ev.detail = "discarded duplicate failure for epoch " +
                    std::to_string(fail.value().epoch);
        out.push_back(std::move(ev));
        p.lagging = false;
        p.strikes = 0;
        return;
      }
      // A contained failure report proves the agent itself is healthy.
      Event ev = reclaim(p, fail.value().cause, fail.value().detail);
      out.push_back(std::move(ev));
      p.strikes = 0;
      return;
    }
    default:
      breakPeer(p, "garbage-ipc",
                "unexpected frame type " + std::to_string(frame.type), out);
      return;
  }
}

void CaseDispatcher::servicePeer(Peer& p, double nowSeconds,
                                 std::vector<Event>& out) {
  if (p.fd < 0) return;
  const ioretry::DrainOutcome dr = ioretry::drainNonblockingRaw(p.fd, &p.rx);
  const bool eof = dr.state == ioretry::DrainState::kEof;
  const int derr = dr.state == ioretry::DrainState::kError ? dr.err : 0;
  while (p.fd >= 0) {
    net::RecvOutcome o = net::takeFrame(&p.rx, eof, derr);
    if (o.status == net::RecvStatus::kFrame) {
      handleFrame(p, o.frame, nowSeconds, out);
      continue;
    }
    if (o.status == net::RecvStatus::kTimeout) break;  // stream intact
    const char* cause = recvBreakCause(o.status);
    breakPeer(p, cause, o.detail.empty() ? cause : o.detail, out);
    break;
  }
}

std::vector<CaseDispatcher::Event> CaseDispatcher::poll(double nowSeconds) {
  std::vector<Event> out;
  out.swap(pending_);
  for (Peer& p : peers_) servicePeer(p, nowSeconds, out);

  // Lease enforcement: a case with no heartbeat inside its lease is
  // reclaimed. The connection is kept - the agent may still deliver a
  // now-stale result, and discarding it by epoch is cheaper than
  // resynchronizing a torn stream - but the peer stops counting toward
  // fleet health until that happens.
  for (Peer& p : peers_) {
    if (!p.busy || p.fd < 0 || nowSeconds <= p.deadline) continue;
    out.push_back(reclaim(p, "lease-expired", "no heartbeat within the lease"));
    ++p.strikes;
    if (p.strikes >= kPeerMaxStrikes) {
      net::closeSocket(p.fd);
      p.rx.clear();
      p.dead = true;
      Event ev;
      ev.kind = EventKind::kPeerDead;
      ev.worker = p.spec;
      ev.cause = "lease-expired";
      ev.detail = "strike limit after repeated lease expiries";
      out.push_back(std::move(ev));
      log("worker " + p.spec + " marked dead after repeated lease expiries");
    } else {
      p.lagging = true;
      log("case " + p.caseName + " lease expired on " + p.spec +
          "; reclaimed (peer lagging)");
    }
  }
  return out;
}

void CaseDispatcher::closeAll() {
  for (Peer& p : peers_) {
    if (p.busy)
      pending_.push_back(
          reclaim(p, "conn-reset", "fleet closed; case reclaimed"));
    net::closeSocket(p.fd);
    p.rx.clear();
    p.lagging = false;
    p.dead = true;
  }
}

// --- runBatch -------------------------------------------------------------

namespace {

constexpr int kBatchTickMs = 50;
constexpr double kTerminateGraceSeconds = 1.0;

bool endsWith(const std::string& s, const char* suffix) {
  const std::string_view suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

Result<Netlist> loadAnyNetlist(const std::string& path) {
  if (endsWith(path, ".blif")) return loadBlifChecked(path);
  if (endsWith(path, ".v")) return loadVerilogChecked(path);
  return loadNetlistChecked(path);
}

void saveAnyNetlist(const std::string& path, const Netlist& nl) {
  if (endsWith(path, ".blif"))
    saveBlif(path, nl);
  else if (endsWith(path, ".v"))
    saveVerilog(path, nl);
  else
    saveNetlist(path, nl);
}

Result<std::string> slurpFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return Status::invalidInput("cannot open '" + path + "' for reading");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// The last verdicts record a finished local worker left in its engine
/// journal (empty when the run had no oracle or died early). The verdict
/// record is timing-free by design, which is what makes it the
/// bit-comparison anchor across local, remote and resumed executions.
std::string verdictsLineFromJournal(const std::string& journalDir) {
  Result<JournalScan> scan = scanJournal(journalDir);
  if (!scan.isOk()) return {};
  std::string last;
  for (const JournalFrame& f : scan.value().frames)
    if (f.payload.rfind("{\"type\":\"verdicts\"", 0) == 0) last = f.payload;
  return last;
}

/// One sweep's driver state: the ledger plus the in-memory scheduling
/// overlays that deliberately do NOT persist (backoff clocks restart at
/// zero on resume; payload encodings are recomputed on demand).
struct BatchDriver {
  const BatchOptions& opt;
  BatchLedger& ledger;
  CaseDispatcher& dispatcher;
  PoolWatchdog& pool;
  Timer clock;
  std::map<std::string, double> notBefore;
  std::map<std::string, std::string> payloads;  ///< name -> encodeFleetCase
  std::map<std::string, std::uint32_t> ordinals;
  bool degraded = false;
  bool interrupted = false;

  void log(const std::string& msg) const {
    if (opt.verbose) std::fprintf(stderr, "[syseco-batch] %s\n", msg.c_str());
  }

  std::uint32_t ordinalOf(const std::string& name) const {
    auto it = ordinals.find(name);
    return it == ordinals.end() ? 0 : it->second;
  }

  bool stopRequested() const {
    return opt.stop != nullptr && opt.stop->load(std::memory_order_relaxed);
  }

  /// Lazily encodes (and caches) the case upload payload.
  Result<const std::string*> payloadFor(const BatchCase& c) {
    if (auto it = payloads.find(c.name); it != payloads.end())
      return Result<const std::string*>(&it->second);
    Result<Netlist> base = loadAnyNetlist(c.implPath);
    if (!base.isOk())
      return Status::invalidInput("impl netlist: " + base.status().message());
    Result<Netlist> spec = loadAnyNetlist(c.specPath);
    if (!spec.isOk())
      return Status::invalidInput("spec netlist: " + spec.status().message());
    SysecoOptions eopt;
    eopt.seed = c.seed;
    std::string payload =
        encodeFleetCase(base.value(), spec.value(), eopt, {});
    auto [it, inserted] = payloads.emplace(c.name, std::move(payload));
    (void)inserted;
    return Result<const std::string*>(&it->second);
  }

  /// Re-queues a failed dispatch with the deterministic case-level backoff,
  /// or quarantines it past the attempt ceiling.
  void requeueOrQuarantine(BatchCase& c, const std::string& cause,
                           const std::string& detail, double now) {
    if (c.attempt >= opt.maxAttempts) {
      ledger.markFailed(c, cause,
                        "quarantined after " + std::to_string(c.attempt) +
                            " attempt(s); last failure: " + detail);
      log("case " + c.name + " quarantined (" + cause + "): " + detail);
      return;
    }
    ledger.markRequeued(c, cause, detail);
    notBefore[c.name] =
        now + caseRedispatchBackoffSeconds(opt.backoffBaseMs, c.seed,
                                           ordinalOf(c.name),
                                           static_cast<int>(c.attempt));
    log("case " + c.name + " re-queued with resume (" + cause + "): " +
        detail);
  }

  void degradeToLocal(const std::string& why) {
    if (degraded) return;
    degraded = true;
    ledger.note("fleet-degraded: " + why + "; continuing with the local pool");
    std::fprintf(stderr,
                 "[syseco-batch] fleet degraded below --fleet-min-workers; "
                 "continuing with the local pool\n");
    dispatcher.closeAll();
  }

  void dispatchRemote(BatchCase& c, double now) {
    Result<const std::string*> payload = payloadFor(c);
    if (!payload.isOk()) {
      // Broken inputs fail the same way on every transport: quarantine
      // without consuming retries on unreachable work.
      ledger.markFailed(c, "invalid-input", payload.status().message());
      return;
    }
    Result<CaseDispatcher::Assignment> a = dispatcher.assign(
        c.name, *payload.value(), c.jobs, c.attempt + 1, now);
    if (!a.isOk()) return;  // no peer accepted; health check next tick
    ledger.markDispatched(c, c.attempt + 1, a.value().worker,
                          a.value().epoch);
  }

  void dispatchLocal(BatchCase& c, double now) {
    const std::int64_t attempt = c.attempt + 1;
    const bool resume = c.resume;
    if (Status s = ledger.markDispatched(c, attempt, "", 0); !s.isOk()) {
      std::fprintf(stderr, "[syseco-batch] cannot journal dispatch of %s: %s\n",
                   c.name.c_str(), std::string(s.message()).c_str());
      return;
    }
    std::vector<std::string> argv = {
        opt.selfExe,
        "--impl", c.implPath,
        "--spec", c.specPath,
        resume ? "--resume" : "--journal", ledger.engineJournalDir(c),
        "--report", ledger.reportPath(c),
        "--out", ledger.outPath(c),
        "--seed", std::to_string(c.seed),
        "--jobs", std::to_string(c.jobs),
    };
    Status spawned =
        pool.spawn(c.name, static_cast<int>(attempt), argv,
                   ledger.workerLogPath(c), {});
    if (!spawned.isOk()) {
      requeueOrQuarantine(c, "crash", "spawn failed: " +
                                          std::string(spawned.message()),
                          now);
      return;
    }
    log("case " + c.name + " -> local pool (attempt " +
        std::to_string(attempt) + (resume ? ", resume)" : ")"));
  }

  void settleRemote(const CaseDispatcher::Event& ev, double now) {
    switch (ev.kind) {
      case CaseDispatcher::EventKind::kResult: {
        BatchCase* c = ledger.find(ev.name);
        if (c == nullptr || c->state != CaseState::kRunning) return;
        Result<Netlist> nl = Netlist::restoreRawString(ev.result.netlist);
        if (!nl.isOk()) {
          requeueOrQuarantine(*c, "garbage-ipc",
                              "result netlist failed validation: " +
                                  std::string(nl.status().message()),
                              now);
          return;
        }
        writeFileAtomic(ledger.reportPath(*c), ev.result.report);
        saveAnyNetlist(ledger.outPath(*c), nl.value());
        writeFileAtomic(ledger.verdictsPath(*c),
                        ev.result.verdicts.empty()
                            ? std::string()
                            : ev.result.verdicts + "\n");
        ledger.markDone(*c, ev.result.exitCode, ev.result.cacheHits,
                        ev.result.cacheMisses, ev.result.cacheEvictions);
        payloads.erase(ev.name);
        log("case " + ev.name + " done on " + ev.worker + " (exit " +
            std::to_string(ev.result.exitCode) + ", cache " +
            std::to_string(ev.result.cacheHits) + "h/" +
            std::to_string(ev.result.cacheMisses) + "m/" +
            std::to_string(ev.result.cacheEvictions) + "e)");
        return;
      }
      case CaseDispatcher::EventKind::kFailure: {
        BatchCase* c = ledger.find(ev.name);
        if (c == nullptr || c->state != CaseState::kRunning) return;
        requeueOrQuarantine(*c, ev.cause, ev.detail, now);
        return;
      }
      case CaseDispatcher::EventKind::kStaleDiscard:
        ledger.note("stale-epoch duplicate from " + ev.worker +
                    " discarded (case " + ev.name + "): " + ev.detail);
        log("stale duplicate from " + ev.worker + " discarded");
        return;
      case CaseDispatcher::EventKind::kPeerDead:
        ledger.note("worker " + ev.worker + " marked dead (" + ev.cause +
                    "): " + ev.detail);
        return;
    }
  }

  void reapLocal(double now) {
    for (const WorkerExit& e : pool.reap()) {
      BatchCase* c = ledger.find(e.job);
      if (c == nullptr || c->state != CaseState::kRunning) continue;
      if (!e.retryable) {
        ledger.markDone(*c, e.exitCode, 0, 0, 0);
        // The local worker's verdicts live in its engine journal; mirror
        // them to the same artifact a remote result writes so every case
        // directory compares the same way.
        writeFileAtomic(ledger.verdictsPath(*c),
                        verdictsLineFromJournal(ledger.engineJournalDir(*c)) +
                            "\n");
        log("case " + c->name + " done locally (exit " +
            std::to_string(e.exitCode) + ", attempt " +
            std::to_string(e.attempt) + ")");
        continue;
      }
      const std::string how = e.signaled
                                  ? "signal " + std::to_string(e.signal)
                                  : "exit " + std::to_string(e.exitCode);
      requeueOrQuarantine(*c, e.cause, "worker died (" + how + ")", now);
    }
  }

  Status writeBatchReport() {
    std::ostringstream os;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    os << "{\"cases\":[";
    bool first = true;
    for (const BatchCase* c : ledger.all()) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << jsonEscape(c->name) << "\",\"state\":\""
         << caseStateName(c->state) << "\",\"exit_code\":" << c->exitCode
         << ",\"attempt\":" << c->attempt << ",\"worker\":\""
         << jsonEscape(c->worker) << "\",\"cause\":\"" << jsonEscape(c->cause)
         << "\",\"cache\":{\"hits\":" << c->cacheHits
         << ",\"misses\":" << c->cacheMisses
         << ",\"evictions\":" << c->cacheEvictions << "}}";
      hits += c->cacheHits;
      misses += c->cacheMisses;
      evictions += c->cacheEvictions;
    }
    os << "],\"degraded_to_local\":" << (degraded ? "true" : "false")
       << ",\"interrupted\":" << (interrupted ? "true" : "false")
       << ",\"cache_totals\":{\"hits\":" << hits << ",\"misses\":" << misses
       << ",\"evictions\":" << evictions << "}}\n";
    return writeFileAtomic(ledger.stateDir() + "/batch_report.json", os.str());
  }
};

}  // namespace

Result<BatchOutcome> runBatch(const BatchOptions& opt) {
  if (opt.manifestPath.empty())
    return Status::invalidInput("--batch needs a manifest path");
  if (opt.stateDir.empty())
    return Status::invalidInput("--batch needs a state directory "
                                "(--batch-state DIR or --resume DIR)");
  if (opt.selfExe.empty())
    return Status::invalidInput("batch driver needs its worker binary path");
  ioretry::ignoreSigpipeOnce();

  Result<std::string> manifestText = slurpFile(opt.manifestPath);
  if (!manifestText.isOk()) return manifestText.status();
  Result<std::vector<ManifestCase>> manifest =
      parseBatchManifest(manifestText.value());
  if (!manifest.isOk()) return manifest.status();

  Result<BatchLedger> opened = BatchLedger::open(opt.stateDir);
  if (!opened.isOk()) return opened.status();
  BatchLedger ledger = opened.take();
  if (!opt.expectResume && ledger.hadCases())
    return Status::invalidInput(
        "batch state directory '" + opt.stateDir +
        "' already holds a sweep; pass `--resume " + opt.stateDir +
        "` to continue it, or point --batch-state at a fresh directory");

  for (const std::string& n : ledger.recoveryNotes())
    ledger.note("recovery: " + n);

  CaseDispatcher::Options dopt;
  dopt.workers = opt.workers;
  dopt.leaseSeconds = opt.leaseSeconds;
  dopt.connectTimeoutMs = opt.connectTimeoutMs;
  dopt.minWorkers = opt.minWorkers;
  dopt.verbose = opt.verbose;
  CaseDispatcher dispatcher(std::move(dopt));
  PoolWatchdog pool(PoolWatchdog::Options{opt.poolSize, opt.maxAttempts,
                                          opt.backoffBaseMs});

  BatchDriver d{opt, ledger, dispatcher, pool};
  d.degraded = !dispatcher.enabled();

  for (std::size_t i = 0; i < manifest.value().size(); ++i) {
    const ManifestCase& m = manifest.value()[i];
    Result<BatchCase*> reg = ledger.registerCase(
        m.name, m.implPath, m.specPath,
        m.hasSeed ? m.seed : opt.defaultSeed,
        m.hasJobs ? m.jobs : opt.defaultJobs);
    if (!reg.isOk()) return reg.status();
  }
  {
    std::uint32_t ordinal = 0;
    for (const BatchCase* c : ledger.all()) d.ordinals[c->name] = ordinal++;
  }

  while (true) {
    if (d.stopRequested()) {
      d.interrupted = true;
      break;
    }
    // Fail closed on a poisoned WAL: once a storage fault latches the
    // ledger's journal, no transition can be made durable - continuing
    // would spin on un-journalable dispatches and lose progress records.
    // Drain and return the structured cause; `--batch ... --resume` heals
    // from the last COMMIT-consistent prefix.
    if (ledger.walPoisoned()) {
      pool.terminateAll(kTerminateGraceSeconds);
      dispatcher.closeAll();
      return Status::internal(
          "batch ledger WAL unusable (" + ledger.walPoisonCause() +
          "); sweep stopping - rerun with `--batch " + opt.manifestPath +
          " --resume " + opt.stateDir + "` to recover");
    }
    std::size_t open = 0;
    for (const BatchCase* c : ledger.all())
      if (c->state == CaseState::kQueued || c->state == CaseState::kRunning)
        ++open;
    if (open == 0) break;

    if (!d.degraded && !dispatcher.fleetUsable())
      d.degradeToLocal(std::to_string(dispatcher.usableWorkers()) +
                       " usable worker(s), minimum " +
                       std::to_string(opt.minWorkers));

    const double now = d.clock.seconds();
    for (BatchCase* c : ledger.all()) {
      if (c->state != CaseState::kQueued) continue;
      if (auto it = d.notBefore.find(c->name);
          it != d.notBefore.end() && now < it->second)
        continue;  // still backing off; later cases may proceed
      if (!d.degraded) {
        if (!dispatcher.hasIdlePeer()) break;
        d.dispatchRemote(*c, now);
      } else {
        if (!pool.hasIdleSlot()) break;
        d.dispatchLocal(*c, now);
      }
    }

    subprocess::pollReadable(dispatcher.pollFds(), kBatchTickMs);
    const double settled = d.clock.seconds();
    for (const CaseDispatcher::Event& ev : dispatcher.poll(settled))
      d.settleRemote(ev, settled);
    d.reapLocal(settled);
  }

  if (d.interrupted) {
    // Clean drain: in-flight work stays "running" in the WAL so the next
    // life recovers it as queued-with-resume.
    ledger.note("interrupted: draining to shutdown");
    pool.terminateAll(kTerminateGraceSeconds);
    dispatcher.closeAll();
  }

  if (Status s = d.writeBatchReport(); !s.isOk()) return s;

  BatchOutcome outcome;
  outcome.degradedToLocal = d.degraded && dispatcher.enabled();
  outcome.interrupted = d.interrupted;
  for (const BatchCase* c : ledger.all()) {
    if (c->state == CaseState::kDone) {
      ++outcome.done;
      outcome.worstCaseExit = std::max(outcome.worstCaseExit, c->exitCode);
    } else if (c->state == CaseState::kFailed) {
      ++outcome.failed;
    }
  }
  return outcome;
}

}  // namespace syseco::serve
