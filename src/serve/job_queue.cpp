#include "serve/job_queue.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "io/journal_io.hpp"
#include "util/atomic_file.hpp"

namespace syseco::serve {

namespace {

constexpr const char* kQueueSubdir = "/queue";

Status ensureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return Status::ok();
  return Status::internal("mkdir('" + path + "') failed: " +
                          std::strerror(errno));
}

std::string formatExtension(const std::string& format) {
  if (format == "blif") return ".blif";
  if (format == "v") return ".v";
  return ".netlist";
}

/// Folds one WAL record into the job map. Unknown events are skipped (a
/// newer daemon's WAL degrades to what this one understands).
void foldEvent(const JournalServeEvent& ev,
               std::map<std::string, Job>& jobs) {
  if (ev.event == "note" || ev.job.empty()) return;
  if (ev.event == "submitted") {
    Job j;
    j.id = ev.job;
    j.tenant = ev.tenant;
    j.format = ev.format.empty() ? "blif" : ev.format;
    j.seed = ev.seed;
    j.jobs = ev.jobs;
    j.isolate = ev.isolate;
    j.detach = ev.detach;
    j.faultInject = ev.faultInject;
    j.bytes = ev.bytes;
    jobs[ev.job] = std::move(j);
    return;
  }
  auto it = jobs.find(ev.job);
  if (it == jobs.end()) return;  // transition without a submit: dropped frame
  Job& j = it->second;
  if (ev.event == "running") {
    j.state = QueueState::kRunning;
    j.attempt = ev.attempt;
  } else if (ev.event == "recovered") {
    j.state = QueueState::kQueued;
    j.resume = true;
    j.attempt = ev.attempt;
  } else if (ev.event == "done") {
    j.state = QueueState::kDone;
    j.exitCode = ev.exitCode;
    j.cause = ev.cause;
    j.detail = ev.detail;
  } else if (ev.event == "failed") {
    j.state = QueueState::kFailed;
    j.cause = ev.cause;
    j.detail = ev.detail;
  } else if (ev.event == "cancelled") {
    j.state = QueueState::kCancelled;
    j.cause = ev.cause;
    j.detail = ev.detail;
  }
}

JournalServeEvent eventFor(const std::string& event, const Job& job) {
  JournalServeEvent ev;
  ev.event = event;
  ev.job = job.id;
  ev.tenant = job.tenant;
  ev.format = job.format;
  ev.seed = job.seed;
  ev.jobs = job.jobs;
  ev.detach = job.detach;
  ev.isolate = job.isolate;
  ev.bytes = job.bytes;
  ev.attempt = job.attempt;
  ev.exitCode = job.exitCode;
  ev.cause = job.cause;
  ev.detail = job.detail;
  ev.faultInject = job.faultInject;
  return ev;
}

std::uint64_t numericSuffix(const std::string& id) {
  std::uint64_t n = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  return n;
}

}  // namespace

const char* queueStateName(QueueState s) {
  switch (s) {
    case QueueState::kQueued: return "queued";
    case QueueState::kRunning: return "running";
    case QueueState::kDone: return "done";
    case QueueState::kFailed: return "failed";
    case QueueState::kCancelled: return "cancelled";
  }
  return "unknown";
}

Result<JobQueue> JobQueue::open(const std::string& stateDir) {
  JobQueue q;
  q.stateDir_ = stateDir;
  if (Status s = ensureDir(stateDir); !s.isOk()) return s;
  if (Status s = ensureDir(stateDir + "/jobs"); !s.isOk()) return s;

  // Fold whatever WAL a previous daemon life left behind. A missing
  // journal is an empty scan; torn tails and corrupt lines were already
  // dropped (with diagnostics) by the framing layer.
  Result<JournalScan> scan = scanJournal(stateDir + kQueueSubdir);
  if (!scan.isOk()) return scan.status();
  std::map<std::string, Job> folded;
  std::size_t droppedPayloads = 0;
  for (const JournalFrame& frame : scan.value().frames) {
    Result<JournalServeEvent> ev = parseServeEvent(frame.payload);
    if (!ev.isOk()) {
      ++droppedPayloads;
      continue;
    }
    foldEvent(ev.value(), folded);
  }
  for (const std::string& d : scan.value().diagnostics)
    q.recoveryNotes_.push_back("queue WAL: " + d);
  if (droppedPayloads > 0)
    q.recoveryNotes_.push_back("queue WAL: dropped " +
                               std::to_string(droppedPayloads) +
                               " unparseable record(s)");

  // Jobs that were mid-run when the daemon died come back queued with the
  // resume flag: their engine journals hold every committed checkpoint,
  // and --resume re-certifies and continues from there.
  for (auto& [id, job] : folded) {
    if (job.state == QueueState::kRunning) {
      job.state = QueueState::kQueued;
      job.resume = true;
      q.recoveryNotes_.push_back("job " + id +
                                 " was mid-run at shutdown; re-queued with "
                                 "resume (attempt " +
                                 std::to_string(job.attempt) + ")");
    } else if (job.state == QueueState::kQueued && job.resume) {
      q.recoveryNotes_.push_back("job " + id +
                                 " restored as queued-with-resume");
    }
  }

  // A crash mid-writeFileAtomic legitimately strands a staging file in the
  // state tree; recovery sweeps them so they never accumulate (and so the
  // chaos harness can treat a surviving one as a leak).
  removeStaleStaging(stateDir);
  removeStaleStaging(stateDir + "/jobs");
  for (const auto& [id, job] : folded) removeStaleStaging(q.jobDir(id));

  // Compact: rewrite the WAL from the folded state so its length tracks
  // queue occupancy, not daemon lifetime. The rewrite is staged and
  // renamed (createCompacted), so a kill at any instant leaves either the
  // complete old WAL or the complete new one - never a truncated mix.
  std::vector<std::string> compacted;
  for (auto& [id, job] : folded) {
    compacted.push_back(serializeServeEvent(eventFor("submitted", job)));
    const char* transition = nullptr;
    switch (job.state) {
      case QueueState::kQueued:
        if (job.resume) transition = "recovered";
        break;
      case QueueState::kRunning: transition = "running"; break;
      case QueueState::kDone: transition = "done"; break;
      case QueueState::kFailed: transition = "failed"; break;
      case QueueState::kCancelled: transition = "cancelled"; break;
    }
    if (transition != nullptr)
      compacted.push_back(serializeServeEvent(eventFor(transition, job)));
    q.nextId_ = std::max(q.nextId_, numericSuffix(id) + 1);
    q.jobs_.push_back(std::make_unique<Job>(std::move(job)));
  }
  Result<JournalWriter> wal = JournalWriter::createCompacted(
      stateDir + kQueueSubdir, compacted, "queue.wal");
  if (!wal.isOk()) return wal.status();
  q.wal_ = wal.take();
  std::sort(q.jobs_.begin(), q.jobs_.end(),
            [](const std::unique_ptr<Job>& a, const std::unique_ptr<Job>& b) {
              return numericSuffix(a->id) < numericSuffix(b->id);
            });
  return q;
}

Admission JobQueue::admit(const std::string& tenant,
                          std::uint64_t payloadBytes,
                          const AdmissionLimits& limits) const {
  Admission a;
  if (residentCount() >= limits.maxResidentJobs) {
    a.reason = "queue-full";
    a.detail = std::to_string(residentCount()) + " job(s) resident, limit " +
               std::to_string(limits.maxResidentJobs);
    return a;
  }
  if (tenantResident(tenant) >= limits.maxPerTenant) {
    a.reason = "tenant-quota";
    a.detail = "tenant '" + tenant + "' has " +
               std::to_string(tenantResident(tenant)) +
               " job(s) resident, limit " +
               std::to_string(limits.maxPerTenant);
    return a;
  }
  if (residentBytes() + payloadBytes > limits.maxResidentBytes) {
    a.reason = "memory-watermark";
    a.detail = std::to_string(residentBytes()) + " payload byte(s) resident" +
               " + " + std::to_string(payloadBytes) + " submitted > " +
               std::to_string(limits.maxResidentBytes) + " watermark";
    return a;
  }
  a.admitted = true;
  return a;
}

Result<Job*> JobQueue::submit(const SubmitRequest& request) {
  char idBuf[16];
  std::snprintf(idBuf, sizeof(idBuf), "j%06llu",
                static_cast<unsigned long long>(nextId_));
  Job job;
  job.id = idBuf;
  job.tenant = request.tenant;
  job.format = request.format;
  job.seed = request.seed;
  job.jobs = request.jobs;
  job.isolate = request.isolate;
  job.detach = request.detach;
  job.faultInject = request.faultInject;
  job.bytes = request.implText.size() + request.specText.size();

  // Payload files first, WAL record second: a WAL submitted record
  // attests that the job's inputs are durably on disk.
  if (Status s = ensureDir(jobDir(job.id)); !s.isOk()) return s;
  if (Status s = writeFileAtomic(implPath(job), request.implText); !s.isOk())
    return s;
  if (Status s = writeFileAtomic(specPath(job), request.specText); !s.isOk())
    return s;
  if (Status s = wal_.append(serializeServeEvent(eventFor("submitted", job)));
      !s.isOk())
    return s;
  ++nextId_;
  jobs_.push_back(std::make_unique<Job>(std::move(job)));
  return jobs_.back().get();
}

Job* JobQueue::nextQueued() {
  for (std::unique_ptr<Job>& j : jobs_)
    if (j->state == QueueState::kQueued) return j.get();
  return nullptr;
}

Job* JobQueue::find(const std::string& id) {
  for (std::unique_ptr<Job>& j : jobs_)
    if (j->id == id) return j.get();
  return nullptr;
}

std::vector<Job*> JobQueue::all() {
  std::vector<Job*> out;
  out.reserve(jobs_.size());
  for (std::unique_ptr<Job>& j : jobs_) out.push_back(j.get());
  return out;
}

Status JobQueue::appendEvent(const std::string& event, const Job& job) {
  return wal_.append(serializeServeEvent(eventFor(event, job)));
}

Status JobQueue::markRunning(Job& job, std::int64_t attempt) {
  Job next = job;
  next.attempt = attempt;
  if (Status s = appendEvent("running", next); !s.isOk()) return s;
  job.state = QueueState::kRunning;
  job.attempt = attempt;
  return Status::ok();
}

Status JobQueue::markDone(Job& job, std::int64_t exitCode) {
  Job next = job;
  next.exitCode = exitCode;
  next.cause.clear();
  next.detail.clear();
  if (Status s = appendEvent("done", next); !s.isOk()) return s;
  job.state = QueueState::kDone;
  job.exitCode = exitCode;
  job.cause.clear();
  job.detail.clear();
  return Status::ok();
}

Status JobQueue::markFailed(Job& job, const std::string& cause,
                            const std::string& detail) {
  Job next = job;
  next.cause = cause;
  next.detail = detail;
  if (Status s = appendEvent("failed", next); !s.isOk()) return s;
  job.state = QueueState::kFailed;
  job.cause = cause;
  job.detail = detail;
  return Status::ok();
}

Status JobQueue::markCancelled(Job& job, const std::string& cause,
                               const std::string& detail) {
  Job next = job;
  next.cause = cause;
  next.detail = detail;
  if (Status s = appendEvent("cancelled", next); !s.isOk()) return s;
  job.state = QueueState::kCancelled;
  job.cause = cause;
  job.detail = detail;
  return Status::ok();
}

Status JobQueue::markRequeued(Job& job, const std::string& cause,
                              const std::string& detail) {
  Job next = job;
  next.cause = cause;
  next.detail = detail;
  if (Status s = appendEvent("recovered", next); !s.isOk()) return s;
  job.state = QueueState::kQueued;
  job.resume = true;
  job.cause = cause;
  job.detail = detail;
  return Status::ok();
}

Status JobQueue::note(const std::string& detail) {
  JournalServeEvent ev;
  ev.event = "note";
  ev.detail = detail;
  return wal_.append(serializeServeEvent(ev));
}

std::size_t JobQueue::residentCount() const {
  std::size_t n = 0;
  for (const std::unique_ptr<Job>& j : jobs_)
    n += j->state == QueueState::kQueued || j->state == QueueState::kRunning;
  return n;
}

std::size_t JobQueue::tenantResident(const std::string& tenant) const {
  std::size_t n = 0;
  for (const std::unique_ptr<Job>& j : jobs_)
    n += (j->state == QueueState::kQueued ||
          j->state == QueueState::kRunning) &&
         j->tenant == tenant;
  return n;
}

std::uint64_t JobQueue::residentBytes() const {
  std::uint64_t n = 0;
  for (const std::unique_ptr<Job>& j : jobs_)
    if (j->state == QueueState::kQueued || j->state == QueueState::kRunning)
      n += j->bytes;
  return n;
}

std::string JobQueue::jobDir(const std::string& id) const {
  return stateDir_ + "/jobs/" + id;
}

std::string JobQueue::implPath(const Job& job) const {
  return jobDir(job.id) + "/impl" + formatExtension(job.format);
}

std::string JobQueue::specPath(const Job& job) const {
  return jobDir(job.id) + "/spec" + formatExtension(job.format);
}

std::string JobQueue::engineJournalDir(const Job& job) const {
  return jobDir(job.id) + "/journal";
}

std::string JobQueue::reportPath(const Job& job) const {
  return jobDir(job.id) + "/report.json";
}

std::string JobQueue::outPath(const Job& job) const {
  return jobDir(job.id) + "/out" + formatExtension(job.format);
}

std::string JobQueue::workerLogPath(const Job& job) const {
  return jobDir(job.id) + "/worker.log";
}

}  // namespace syseco::serve
