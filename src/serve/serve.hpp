#pragma once
// ECO-as-a-service: the crash-safe resident rectification daemon
// (`syseco_cli --serve PORT`) and the thin client the CLI's --connect mode
// drives.
//
// The daemon is a single-threaded poll-based event loop multiplexing three
// concerns per tick:
//
//   sessions  - accept clients, decode kTypeServe* frames (serve/codec),
//               answer submits/status-polls/cancels. fd exhaustion on
//               accept is a journaled warning plus backoff, never death.
//   queue     - the WAL-backed durable JobQueue (serve/job_queue): every
//               admission verdict and state transition is fsync'd before
//               it is acted on, so SIGKILL at any instant loses nothing.
//   pool      - the PoolWatchdog (serve/watchdog): each job runs as an
//               exec'd child of the daemon's own binary with the job's own
//               engine journal; crashes are classified, retried with
//               backoff under --resume, and quarantined past the attempt
//               ceiling. Because retries resume the job's journal, a
//               healed job's verdict records are bit-identical to an
//               undisturbed run.
//
// Disconnect semantics: a job is bound to the connection that submitted it
// unless submitted with detach. When the connection dies, bound queued
// jobs are cancelled and bound running jobs are terminated then cancelled;
// detached jobs keep running and are polled by job id from any later
// connection.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/codec.hpp"
#include "serve/job_queue.hpp"
#include "util/status.hpp"

namespace syseco::serve {

struct ServeOptions {
  std::uint16_t port = 0;  ///< 0: kernel-assigned (see boundHook)
  std::string stateDir;    ///< queue WAL + per-job artifact directories
  std::string selfExe;     ///< binary exec'd per job (the CLI passes its own)
  std::size_t poolSize = 1;
  AdmissionLimits limits;
  int maxAttempts = 3;           ///< dispatches per job before quarantine
  double backoffBaseMs = 100.0;  ///< retry pacing (doubled, capped at 5 s)
  /// Remote whole-case dispatch (--workers): plain queued jobs are shipped
  /// to --serve-worker agents as whole cases; --isolate and fault-inject
  /// jobs stay on the local pool. When the usable fleet shrinks below
  /// minWorkers the daemon degrades - permanently for its lifetime - to
  /// the local watchdog pool alone.
  std::vector<std::string> workers;
  double fleetLeaseSeconds = 10.0;
  int fleetConnectTimeoutMs = 2000;
  int fleetMinWorkers = 1;
  bool verbose = false;
  /// Polled every tick; a set flag drains to a clean shutdown (running
  /// jobs are terminated and recovered as queued-with-resume next start).
  std::atomic<bool>* stop = nullptr;
  /// Called once with the actually-bound listening port.
  std::function<void(std::uint16_t)> boundHook;
};

/// Runs the daemon until `stop` is set. Non-ok only for setup failures
/// (state directory or port unusable); per-job and per-connection failures
/// are contained, journaled and served back as protocol replies.
Status runServeDaemon(const ServeOptions& options);

/// One submit round-trip's outcome: accepted with a job id, or the
/// daemon's structured rejection.
struct SubmitOutcome {
  bool accepted = false;
  std::string job;
  Rejected rejected;
};

/// Blocking client for one daemon connection (the CLI's --connect mode and
/// the tests). Transport failures are non-ok Statuses; protocol-level
/// rejections come back as data.
class ServeClient {
 public:
  static Result<ServeClient> connect(const std::string& host,
                                     std::uint16_t port, int timeoutMs);

  ServeClient(ServeClient&& other) noexcept { *this = std::move(other); }
  ServeClient& operator=(ServeClient&& other) noexcept;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Result<SubmitOutcome> submit(const SubmitRequest& request);
  Result<JobState> status(const std::string& job);
  Result<JobState> cancel(const std::string& job);
  /// Polls `status` every `pollMs` until the job reaches a terminal state
  /// (done/failed/cancelled/unknown).
  Result<JobState> wait(const std::string& job, int pollMs = 200);

 private:
  ServeClient() = default;

  int fd_ = -1;
  std::string rx_;
};

}  // namespace syseco::serve
