#pragma once
// ECO-as-a-service session protocol payloads (util/ipc.hpp frame types
// kTypeServe*), carried over the same SEF1-framed TCP transport the worker
// fleet uses (util/socket.hpp).
//
// A client submits one whole rectification job - both netlist texts, the
// search-shaping knobs, and delivery preferences - and then polls the
// daemon for the job's durable queue state. Replies for finished jobs carry
// the rectified netlist and run report inline, so a remote client needs no
// shared filesystem with the daemon.
//
// Payloads are JSON (the journal_io idiom): the fuzz-hardened parseJson
// guards the wire, and every decoder treats arbitrary bytes as
// kInvalidInput, never UB. A daemon must survive any byte stream a client
// can send; a client must survive any byte stream a daemon can send.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco::serve {

/// Client -> daemon: one whole rectification job. The netlists travel as
/// file *text* in one of the CLI's formats; the daemon re-validates them
/// with the checked parsers at admission, so a malformed submission is
/// rejected up front instead of failing the job later.
struct SubmitRequest {
  std::string tenant = "default";
  std::string format = "blif";  ///< blif | v | netlist
  std::string implText;
  std::string specText;
  std::uint64_t seed = 1;
  std::int64_t jobs = 1;   ///< worker threads for the job's engine run
  bool isolate = false;    ///< run the job's workers under --isolate
  bool detach = false;     ///< job survives the submitting connection
  /// Test hook: SYSECO_FAULT_INJECT spec exported into the job's worker
  /// process (empty = none). How the crash-recovery and self-healing tests
  /// make a job die deterministically mid-run.
  std::string faultInject;
};

std::string encodeSubmit(const SubmitRequest& r);
Result<SubmitRequest> decodeSubmit(std::string_view payload);

/// Daemon -> client: the job was admitted and durably queued.
struct Accepted {
  std::string job;  ///< daemon-assigned id, stable across daemon restarts
};

std::string encodeAccepted(const Accepted& r);
Result<Accepted> decodeAccepted(std::string_view payload);

/// Daemon -> client: admission control shed the job. `reason` is a stable
/// token automation can switch on; `detail` is human diagnostics.
/// Reasons: queue-full | tenant-quota | memory-watermark | bad-request |
/// shutting-down.
struct Rejected {
  std::string reason;
  std::string detail;
};

std::string encodeRejected(const Rejected& r);
Result<Rejected> decodeRejected(std::string_view payload);

/// Client -> daemon: poll one job's state (kTypeServeStatus) or request
/// its cancellation (kTypeServeCancel). Same payload shape for both; the
/// frame type carries the verb.
struct JobRef {
  std::string job;
};

std::string encodeJobRef(const JobRef& r);
Result<JobRef> decodeJobRef(std::string_view payload);

/// Daemon -> client: one job's durable queue state.
/// state: queued | running | done | failed | cancelled | unknown.
struct JobState {
  std::string job;
  std::string state;
  std::int64_t attempt = 0;   ///< dispatch ordinal (1 = first attempt)
  std::int64_t exitCode = 0;  ///< engine exit code when done
  std::string cause;          ///< failure/cancel classification
  std::string detail;
  /// Delivered inline when state == done (and reportText also on failed
  /// runs that got far enough to write a report): the job's run report
  /// JSON and the rectified netlist text. Empty otherwise.
  std::string reportText;
  std::string outText;
};

std::string encodeJobState(const JobState& r);
Result<JobState> decodeJobState(std::string_view payload);

}  // namespace syseco::serve
