#include "serve/watchdog.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "util/subprocess.hpp"

namespace syseco::serve {

namespace {

/// Classifies a raw exit. The engine's own exit codes (0 clean, 1
/// verify-failed, 3 invalid input, 4 degraded, 130 interrupted) are the
/// job's *verdict* - the run completed and said something - so they are
/// terminal, not retryable. Everything else is a worker death the
/// watchdog heals: signals and the fault injector's simulated kill -9
/// (137) classify as crash, the subprocess layer's reserved codes keep
/// their meaning, and unknown codes default to crash-retry.
void classify(WorkerExit& e) {
  if (e.signaled) {
    e.cause = e.signal == SIGXCPU ? "cpu-timeout" : "crash";
    e.retryable = true;
    return;
  }
  switch (e.exitCode) {
    case 0:
    case 1:
    case 3:
    case 4:
      e.cause = "ok";
      e.retryable = false;
      return;
    case 130:  // interrupted with its journal intact: resume on retry
      e.cause = "crash";
      e.retryable = true;
      return;
    case subprocess::kChildExitOom:
      e.cause = "oom";
      e.retryable = true;
      return;
    case subprocess::kChildExitFaultInjected:
      e.cause = "fault-injected";
      e.retryable = true;
      return;
    default:
      e.cause = "crash";
      e.retryable = true;
      return;
  }
}

}  // namespace

PoolWatchdog::PoolWatchdog(const Options& options) : options_(options) {
  slots_.resize(std::max<std::size_t>(options.poolSize, 1));
}

std::size_t PoolWatchdog::busy() const {
  std::size_t n = 0;
  for (const WorkerSlot& s : slots_) n += s.pid > 0;
  return n;
}

bool PoolWatchdog::isRunning(const std::string& job) const {
  for (const WorkerSlot& s : slots_)
    if (s.pid > 0 && s.job == job) return true;
  return false;
}

double PoolWatchdog::backoffSeconds(std::int64_t attempt) const {
  if (attempt <= 1) return 0.0;
  double ms = options_.backoffBaseMs;
  for (std::int64_t i = 2; i < attempt; ++i) ms *= 2.0;
  return std::min(ms, 5000.0) / 1000.0;
}

Status PoolWatchdog::spawn(const std::string& job, std::int64_t attempt,
                           const std::vector<std::string>& argv,
                           const std::string& logPath,
                           const std::vector<std::string>& extraEnv) {
  WorkerSlot* slot = nullptr;
  for (WorkerSlot& s : slots_)
    if (s.pid <= 0) {
      slot = &s;
      break;
    }
  if (slot == nullptr) return Status::internal("no idle pool slot");
  if (argv.empty()) return Status::internal("empty worker argv");

  const pid_t pid = ::fork();
  if (pid < 0) return Status::internal("fork() failed");
  if (pid == 0) {
    // Child. Own process group: a cancellation SIGTERM/SIGKILL reaches the
    // whole job (the engine may fork --isolate sandboxes of its own).
    ::setpgid(0, 0);
    // Die with the daemon: a kill -9 of the daemon must leave the job
    // genuinely mid-run (its journal's committed prefix intact), not
    // orphan a worker that finishes behind the recovery's back.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    // The CLI's handlers are inherited across fork but reset by exec;
    // nothing to restore here.
    const int logFd = ::open(logPath.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (logFd >= 0) {
      ::dup2(logFd, STDOUT_FILENO);
      ::dup2(logFd, STDERR_FILENO);
      if (logFd > STDERR_FILENO) ::close(logFd);
    }
    for (const std::string& kv : extraEnv) {
      const std::size_t eq = kv.find('=');
      if (eq != std::string::npos && eq > 0)
        ::setenv(kv.substr(0, eq).c_str(), kv.c_str() + eq + 1, 1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::_Exit(127);  // exec failed; classifies as crash upstream
  }
  slot->pid = pid;
  slot->job = job;
  slot->attempt = attempt;
  return Status::ok();
}

std::vector<WorkerExit> PoolWatchdog::reap() {
  std::vector<WorkerExit> exits;
  for (WorkerSlot& s : slots_) {
    if (s.pid <= 0) continue;
    std::optional<subprocess::WaitOutcome> done = subprocess::tryReap(s.pid);
    if (!done) continue;
    WorkerExit e;
    e.job = s.job;
    e.attempt = s.attempt;
    e.signaled = done->kind == subprocess::WaitKind::kSignaled;
    e.exitCode = done->exitCode;
    e.signal = done->signal;
    classify(e);
    exits.push_back(std::move(e));
    s = WorkerSlot{};
  }
  return exits;
}

void PoolWatchdog::terminate(const std::string& job, double graceSeconds) {
  for (WorkerSlot& s : slots_) {
    if (s.pid <= 0 || s.job != job) continue;
    // The child is its own process-group leader: signal the group so the
    // engine's own --isolate children die with it.
    ::kill(-s.pid, SIGTERM);
    subprocess::terminateChild(s.pid, graceSeconds);
    ::kill(-s.pid, SIGKILL);
    s = WorkerSlot{};
  }
}

void PoolWatchdog::terminateAll(double graceSeconds) {
  for (WorkerSlot& s : slots_) {
    if (s.pid <= 0) continue;
    ::kill(-s.pid, SIGTERM);
    subprocess::terminateChild(s.pid, graceSeconds);
    ::kill(-s.pid, SIGKILL);
    s = WorkerSlot{};
  }
}

}  // namespace syseco::serve
