#pragma once
// Self-healing worker-pool supervisor for the --serve daemon.
//
// The daemon runs each admitted job as an exec'd child of its own binary
// (one engine run per job, with the job's own --journal), so a job crash -
// real or injected - can never take the daemon down. This module owns the
// pool: spawning children with the containment settings a resident service
// needs (own process group, PR_SET_PDEATHSIG so a SIGKILL'd daemon takes
// its in-flight workers down with it - which is exactly what makes the
// kill -9 recovery tests honest), reaping exits without blocking, mapping
// abnormal exits onto the fleet's WorkerExitCause taxonomy, and pacing
// retries with the same capped exponential backoff the isolation
// supervisor uses. Jobs that keep dying past the attempt ceiling are
// quarantined (marked failed) instead of looping forever.
//
// The spawn interface is deliberately argv-generic so unit tests can
// supervise /bin/sh stand-ins without a daemon around the pool.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace syseco::serve {

/// One pool slot. pid < 0 means idle.
struct WorkerSlot {
  pid_t pid = -1;
  std::string job;           ///< job id the slot is running
  std::int64_t attempt = 0;  ///< dispatch ordinal of this run
};

/// One reaped child exit, raw (kind/exitCode/signal) plus the taxonomy
/// classification the daemon journals.
struct WorkerExit {
  std::string job;
  std::int64_t attempt = 0;
  bool signaled = false;
  int exitCode = 0;  ///< valid when !signaled
  int signal = 0;    ///< valid when signaled
  /// workerExitCauseName-style token: "ok" for engine exits the daemon
  /// treats as the job's verdict (clean/verify-failed/degraded/invalid),
  /// "crash"/"oom"/"cpu-timeout" for deaths worth retrying.
  std::string cause;
  bool retryable = false;
};

class PoolWatchdog {
 public:
  struct Options {
    std::size_t poolSize = 1;
    int maxAttempts = 3;          ///< dispatches per job before quarantine
    double backoffBaseMs = 100;   ///< doubled per failed attempt, capped
  };

  explicit PoolWatchdog(const Options& options);

  std::size_t poolSize() const { return slots_.size(); }
  std::size_t busy() const;
  bool hasIdleSlot() const { return busy() < slots_.size(); }
  int maxAttempts() const { return options_.maxAttempts; }

  /// True when `job` is currently running in some slot.
  bool isRunning(const std::string& job) const;

  /// Deterministic capped exponential retry delay before dispatching
  /// attempt `attempt` (1-based; attempt 1 has no delay).
  double backoffSeconds(std::int64_t attempt) const;

  /// Forks and execs `argv` (argv[0] is the binary path) in an idle slot.
  /// The child joins its own process group, arms PR_SET_PDEATHSIG(SIGKILL),
  /// redirects stdout+stderr to `logPath` (appending), and exports
  /// `extraEnv` ("NAME=value" entries) on top of the inherited environment.
  /// kInternal when no slot is idle or the fork fails.
  Status spawn(const std::string& job, std::int64_t attempt,
               const std::vector<std::string>& argv,
               const std::string& logPath,
               const std::vector<std::string>& extraEnv);

  /// Nonblocking reap sweep: collects every slot whose child has exited,
  /// frees the slots, and classifies each exit.
  std::vector<WorkerExit> reap();

  /// SIGTERM -> grace -> SIGKILL for the slot running `job` (cancellation).
  /// No-op when the job is not running.
  void terminate(const std::string& job, double graceSeconds);

  /// Terminates every running child (daemon shutdown).
  void terminateAll(double graceSeconds);

 private:
  Options options_;
  std::vector<WorkerSlot> slots_;
};

}  // namespace syseco::serve
