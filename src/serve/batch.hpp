#pragma once
// Whole-case batch fan-out: the --batch sweep driver and the case-level
// fleet scheduler it shares with the --serve daemon.
//
// CaseDispatcher is the supervisor side of the kTypeFleetCaseTask protocol
// (eco/isolate): it multiplexes every agent connection over one poll loop,
// uploads case payloads on demand through the crc32 content-addressed
// need-case handshake (so an agent's CaseCacheLru amortizes the upload
// across retries), renews case leases from agent heartbeats, and classifies
// everything that can go wrong - transport breaks, contained failures,
// expired leases, stale-epoch duplicates from reassigned cases - into
// events the caller folds into its durable ledger. Peer health follows the
// per-output fleet's rules: two strikes mark a peer dead, a lease-expired
// peer keeps its connection (the late duplicate is cheaper to discard by
// epoch than a stream resync) but stops counting toward fleet health until
// it answers.
//
// runBatch drives a manifest of cases to verdicts through the WAL-backed
// BatchLedger: dispatch remote while the fleet holds >= minWorkers usable
// agents, degrade permanently to a local PoolWatchdog fork/exec pool when
// it shrinks below that, re-queue reclaimed cases with resume and the
// deterministic caseRedispatchBackoffSeconds pacing, and quarantine past
// the attempt ceiling. Every path - remote, degraded-local, killed and
// resumed - drains to verdict records and patched netlists bit-identical
// to running each case locally with `--jobs N`.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eco/isolate.hpp"
#include "serve/batch_ledger.hpp"
#include "util/ipc.hpp"
#include "util/status.hpp"

namespace syseco::serve {

/// Case-level redispatch pacing. Deliberately the per-output transports'
/// retryBackoffSeconds contract (same doubling base, same cap, same
/// seed-derived jitter) keyed by the case's manifest ordinal in place of
/// the output index - no new RNG path, and the same case retries on the
/// same deterministic schedule on every driver life.
double caseRedispatchBackoffSeconds(double backoffBaseMs, std::uint64_t seed,
                                    std::uint32_t caseOrdinal,
                                    int failedAttempts);

/// One manifest entry as parsed; seed/jobs fall back to the sweep defaults
/// when the manifest omits them.
struct ManifestCase {
  std::string name;
  std::string implPath;
  std::string specPath;
  std::uint64_t seed = 0;
  bool hasSeed = false;
  std::int64_t jobs = 0;
  bool hasJobs = false;
};

/// Parses a batch manifest: a JSON object whose "cases" array holds
/// {"name","impl","spec"[,"seed"][,"jobs"]} entries. Names must satisfy
/// validFleetCaseName (they name artifact directories) and be unique.
/// Hardened like the wire codecs: arbitrary bytes are kInvalidInput.
Result<std::vector<ManifestCase>> parseBatchManifest(std::string_view text);

/// Case-level fleet scheduler: connects lazily, assigns whole cases,
/// answers need-case uploads, and turns every asynchronous outcome into an
/// Event stream the caller folds into its ledger.
class CaseDispatcher {
 public:
  struct Options {
    std::vector<std::string> workers;  ///< "host:port" agent specs
    double leaseSeconds = 10.0;
    int connectTimeoutMs = 2000;
    int minWorkers = 1;  ///< usable-agent floor before degradation
    bool verbose = false;
  };

  /// A successful dispatch: which agent took the case under which epoch.
  struct Assignment {
    std::string worker;
    std::uint64_t epoch = 0;
  };

  enum class EventKind {
    kResult,        ///< decoded whole-case result for the live assignment
    kFailure,       ///< the assignment failed; the case must be re-queued
    kStaleDiscard,  ///< duplicate from a reclaimed epoch, discarded
    kPeerDead,      ///< an agent crossed the strike limit (no case attached)
  };

  struct Event {
    EventKind kind = EventKind::kFailure;
    std::string name;   ///< assigned case (kResult/kFailure/kStaleDiscard)
    std::string worker;
    std::int64_t attempt = 0;  ///< dispatch ordinal of the assignment
    FleetCaseResult result;    ///< kResult only
    std::string cause;   ///< workerExitCauseName token (kFailure/kPeerDead)
    std::string detail;
  };

  explicit CaseDispatcher(Options opt);
  ~CaseDispatcher();
  CaseDispatcher(const CaseDispatcher&) = delete;
  CaseDispatcher& operator=(const CaseDispatcher&) = delete;

  bool enabled() const { return !opt_.workers.empty(); }
  /// Agents that can take (or are computing) work: not dead, not lagging
  /// behind an expired lease.
  std::size_t usableWorkers() const;
  /// True while usableWorkers() still meets the minWorkers floor.
  bool fleetUsable() const;
  bool hasIdlePeer() const;

  /// Dispatches one whole case to an idle usable agent. `casePayload` is
  /// the encodeFleetCase document (kept for need-case answers until the
  /// assignment settles); `attempt` is the ledger's dispatch ordinal,
  /// carried back in every event about this assignment. Peers that refuse
  /// the connection or the send are struck and the next idle peer is
  /// tried; kUnavailable when none accepted (the case stays queued).
  Result<Assignment> assign(const std::string& name, std::string casePayload,
                            std::int64_t jobs, std::int64_t attempt,
                            double nowSeconds);

  /// Readable fds for the caller's poll tick (all live agent connections).
  std::vector<int> pollFds() const;

  /// One non-blocking pump of every agent connection plus lease
  /// enforcement. Returns the events that settled this tick.
  std::vector<Event> poll(double nowSeconds);

  void closeAll();

 private:
  struct Peer {
    std::string spec;  ///< "host:port" as configured
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
    std::string rx;
    int strikes = 0;
    bool dead = false;
    /// Lease expired with the connection kept: out of the health count
    /// until the stale duplicate lands (or the stream breaks).
    bool lagging = false;
    bool busy = false;
    std::string caseName;
    std::string casePayload;  ///< for need-case answers mid-assignment
    std::uint32_t caseCrc = 0;
    std::uint64_t epoch = 0;
    std::int64_t attempt = 0;
    double deadline = 0.0;
  };

  void log(const std::string& msg) const;
  /// Strikes `p` and tears the connection down; reclaims its case (as a
  /// kFailure event) when one was in flight.
  void breakPeer(Peer& p, const std::string& cause, const std::string& why,
                 std::vector<Event>& out);
  void servicePeer(Peer& p, double nowSeconds, std::vector<Event>& out);
  void handleFrame(Peer& p, const ipc::Frame& frame, double nowSeconds,
                   std::vector<Event>& out);
  Event reclaim(Peer& p, const std::string& cause, const std::string& why);

  Options opt_;
  std::vector<Peer> peers_;
  std::uint64_t epochCounter_ = 0;
  /// Peer-death notes raised inside assign(), drained by the next poll().
  std::vector<Event> pending_;
};

/// The --batch sweep driver's knobs (CLI flags plus plumbing).
struct BatchOptions {
  std::string manifestPath;
  std::string stateDir;  ///< BatchLedger state directory
  std::string selfExe;   ///< binary exec'd for local fallback cases
  /// True for `--resume DIR`: the ledger is expected to hold cases already.
  /// A fresh `--batch-state DIR` run refuses a non-empty ledger instead of
  /// silently mixing sweeps.
  bool expectResume = false;
  std::vector<std::string> workers;  ///< empty: run everything locally
  double leaseSeconds = 10.0;
  int connectTimeoutMs = 2000;
  int minWorkers = 1;
  std::size_t poolSize = 1;  ///< local fallback pool width
  int maxAttempts = 3;       ///< dispatches per case before quarantine
  double backoffBaseMs = 100.0;
  std::uint64_t defaultSeed = 1;  ///< manifest entries without "seed"
  std::int64_t defaultJobs = 1;   ///< manifest entries without "jobs"
  bool verbose = false;
  std::atomic<bool>* stop = nullptr;  ///< SIGINT/SIGTERM drain flag
};

struct BatchOutcome {
  std::size_t done = 0;
  std::size_t failed = 0;  ///< quarantined cases
  /// Worst engine exit classification among the done cases (0 clean,
  /// 1 verify-failed, 4 degraded) - the sweep's own exit code when nothing
  /// was quarantined.
  std::int64_t worstCaseExit = 0;
  bool degradedToLocal = false;
  bool interrupted = false;
};

/// Runs (or resumes) a manifest sweep to completion. Non-ok only for setup
/// failures (manifest, state directory, WAL); per-case failures are
/// contained, journaled and counted in the outcome. Writes
/// `<stateDir>/batch_report.json` before returning.
Result<BatchOutcome> runBatch(const BatchOptions& opt);

}  // namespace syseco::serve
