#include "serve/codec.hpp"

#include <sstream>

#include "io/journal_io.hpp"
#include "util/journal.hpp"

namespace syseco::serve {

namespace {

Status bad(const std::string& what) { return Status::invalidInput(what); }

/// Object member accessors with the journal parsers' tolerance policy:
/// a *missing* key yields the default (forward compatibility), a key of
/// the *wrong kind* is a hard reject (a confused peer, not a newer one).
Result<std::string> getString(const JsonValue& obj, const std::string& key,
                              const std::string& fallback = "") {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::String)
    return bad("serve payload key '" + key + "' is not a string");
  return v->str;
}

Result<std::int64_t> getI64(const JsonValue& obj, const std::string& key,
                            std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::Number || !v->isInteger)
    return bad("serve payload key '" + key + "' is not an integer");
  return v->integer;
}

Result<bool> getBool(const JsonValue& obj, const std::string& key,
                     bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::Bool)
    return bad("serve payload key '" + key + "' is not a bool");
  return v->boolean;
}

/// u64 values ride as decimal strings (the journal_io idiom for seeds:
/// JSON numbers are doubles and would silently round 2^53+).
Result<std::uint64_t> getU64String(const JsonValue& obj,
                                   const std::string& key,
                                   std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != JsonValue::Kind::String || v->str.empty())
    return bad("serve payload key '" + key + "' is not a u64 string");
  std::uint64_t out = 0;
  for (char c : v->str) {
    if (c < '0' || c > '9')
      return bad("serve payload key '" + key + "' is not a u64 string");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10)
      return bad("serve payload key '" + key + "' overflows u64");
    out = out * 10 + digit;
  }
  return out;
}

Result<JsonValue> parseTyped(std::string_view payload, const char* type) {
  Result<JsonValue> parsed = parseJson(payload);
  if (!parsed.isOk()) return parsed.status();
  JsonValue doc = parsed.take();
  if (doc.kind != JsonValue::Kind::Object)
    return bad("serve payload is not a JSON object");
  const JsonValue* t = doc.find("type");
  if (t == nullptr || t->kind != JsonValue::Kind::String || t->str != type)
    return bad(std::string("serve payload is not a '") + type + "' record");
  return doc;
}

void appendKv(std::ostream& os, const char* key, const std::string& value,
              bool* first) {
  os << (*first ? "" : ",") << "\"" << key << "\":\"" << jsonEscape(value)
     << "\"";
  *first = false;
}

void appendKv(std::ostream& os, const char* key, std::int64_t value,
              bool* first) {
  os << (*first ? "" : ",") << "\"" << key << "\":" << value;
  *first = false;
}

void appendKv(std::ostream& os, const char* key, bool value, bool* first) {
  os << (*first ? "" : ",") << "\"" << key
     << "\":" << (value ? "true" : "false");
  *first = false;
}

}  // namespace

std::string encodeSubmit(const SubmitRequest& r) {
  std::ostringstream os;
  bool first = true;
  os << "{";
  appendKv(os, "type", std::string("submit"), &first);
  appendKv(os, "tenant", r.tenant, &first);
  appendKv(os, "format", r.format, &first);
  appendKv(os, "impl", r.implText, &first);
  appendKv(os, "spec", r.specText, &first);
  appendKv(os, "seed", std::to_string(r.seed), &first);
  appendKv(os, "jobs", r.jobs, &first);
  appendKv(os, "isolate", r.isolate, &first);
  appendKv(os, "detach", r.detach, &first);
  appendKv(os, "fault_inject", r.faultInject, &first);
  os << "}";
  return os.str();
}

Result<SubmitRequest> decodeSubmit(std::string_view payload) {
  Result<JsonValue> parsed = parseTyped(payload, "submit");
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& doc = parsed.value();
  SubmitRequest r;
  Result<std::string> tenant = getString(doc, "tenant", "default");
  if (!tenant.isOk()) return tenant.status();
  r.tenant = tenant.take();
  if (r.tenant.empty()) return bad("serve submit has an empty tenant");
  Result<std::string> format = getString(doc, "format", "blif");
  if (!format.isOk()) return format.status();
  r.format = format.take();
  if (r.format != "blif" && r.format != "v" && r.format != "netlist")
    return bad("serve submit format must be blif|v|netlist, got '" +
               r.format + "'");
  Result<std::string> impl = getString(doc, "impl");
  if (!impl.isOk()) return impl.status();
  r.implText = impl.take();
  Result<std::string> spec = getString(doc, "spec");
  if (!spec.isOk()) return spec.status();
  r.specText = spec.take();
  if (r.implText.empty() || r.specText.empty())
    return bad("serve submit is missing a netlist payload");
  Result<std::uint64_t> seed = getU64String(doc, "seed", 1);
  if (!seed.isOk()) return seed.status();
  r.seed = seed.take();
  Result<std::int64_t> jobs = getI64(doc, "jobs", 1);
  if (!jobs.isOk()) return jobs.status();
  r.jobs = jobs.take();
  if (r.jobs < 1 || r.jobs > 256)
    return bad("serve submit jobs must be in 1..256");
  Result<bool> isolate = getBool(doc, "isolate", false);
  if (!isolate.isOk()) return isolate.status();
  r.isolate = isolate.take();
  Result<bool> detach = getBool(doc, "detach", false);
  if (!detach.isOk()) return detach.status();
  r.detach = detach.take();
  Result<std::string> fault = getString(doc, "fault_inject");
  if (!fault.isOk()) return fault.status();
  r.faultInject = fault.take();
  return r;
}

std::string encodeAccepted(const Accepted& r) {
  std::ostringstream os;
  bool first = true;
  os << "{";
  appendKv(os, "type", std::string("accepted"), &first);
  appendKv(os, "job", r.job, &first);
  os << "}";
  return os.str();
}

Result<Accepted> decodeAccepted(std::string_view payload) {
  Result<JsonValue> parsed = parseTyped(payload, "accepted");
  if (!parsed.isOk()) return parsed.status();
  Accepted r;
  Result<std::string> job = getString(parsed.value(), "job");
  if (!job.isOk()) return job.status();
  r.job = job.take();
  if (r.job.empty()) return bad("serve accepted has an empty job id");
  return r;
}

std::string encodeRejected(const Rejected& r) {
  std::ostringstream os;
  bool first = true;
  os << "{";
  appendKv(os, "type", std::string("rejected"), &first);
  appendKv(os, "reason", r.reason, &first);
  appendKv(os, "detail", r.detail, &first);
  os << "}";
  return os.str();
}

Result<Rejected> decodeRejected(std::string_view payload) {
  Result<JsonValue> parsed = parseTyped(payload, "rejected");
  if (!parsed.isOk()) return parsed.status();
  Rejected r;
  Result<std::string> reason = getString(parsed.value(), "reason");
  if (!reason.isOk()) return reason.status();
  r.reason = reason.take();
  if (r.reason.empty()) return bad("serve rejected has an empty reason");
  Result<std::string> detail = getString(parsed.value(), "detail");
  if (!detail.isOk()) return detail.status();
  r.detail = detail.take();
  return r;
}

std::string encodeJobRef(const JobRef& r) {
  std::ostringstream os;
  bool first = true;
  os << "{";
  appendKv(os, "type", std::string("job_ref"), &first);
  appendKv(os, "job", r.job, &first);
  os << "}";
  return os.str();
}

Result<JobRef> decodeJobRef(std::string_view payload) {
  Result<JsonValue> parsed = parseTyped(payload, "job_ref");
  if (!parsed.isOk()) return parsed.status();
  JobRef r;
  Result<std::string> job = getString(parsed.value(), "job");
  if (!job.isOk()) return job.status();
  r.job = job.take();
  if (r.job.empty()) return bad("serve job ref has an empty job id");
  return r;
}

std::string encodeJobState(const JobState& r) {
  std::ostringstream os;
  bool first = true;
  os << "{";
  appendKv(os, "type", std::string("job_state"), &first);
  appendKv(os, "job", r.job, &first);
  appendKv(os, "state", r.state, &first);
  appendKv(os, "attempt", r.attempt, &first);
  appendKv(os, "exit_code", r.exitCode, &first);
  appendKv(os, "cause", r.cause, &first);
  appendKv(os, "detail", r.detail, &first);
  appendKv(os, "report", r.reportText, &first);
  appendKv(os, "out", r.outText, &first);
  os << "}";
  return os.str();
}

Result<JobState> decodeJobState(std::string_view payload) {
  Result<JsonValue> parsed = parseTyped(payload, "job_state");
  if (!parsed.isOk()) return parsed.status();
  const JsonValue& doc = parsed.value();
  JobState r;
  Result<std::string> job = getString(doc, "job");
  if (!job.isOk()) return job.status();
  r.job = job.take();
  Result<std::string> state = getString(doc, "state");
  if (!state.isOk()) return state.status();
  r.state = state.take();
  if (r.state.empty()) return bad("serve job state has an empty state");
  Result<std::int64_t> attempt = getI64(doc, "attempt", 0);
  if (!attempt.isOk()) return attempt.status();
  r.attempt = attempt.take();
  Result<std::int64_t> exitCode = getI64(doc, "exit_code", 0);
  if (!exitCode.isOk()) return exitCode.status();
  r.exitCode = exitCode.take();
  Result<std::string> cause = getString(doc, "cause");
  if (!cause.isOk()) return cause.status();
  r.cause = cause.take();
  Result<std::string> detail = getString(doc, "detail");
  if (!detail.isOk()) return detail.status();
  r.detail = detail.take();
  Result<std::string> report = getString(doc, "report");
  if (!report.isOk()) return report.status();
  r.reportText = report.take();
  Result<std::string> out = getString(doc, "out");
  if (!out.isOk()) return out.status();
  r.outText = out.take();
  return r;
}

}  // namespace syseco::serve
