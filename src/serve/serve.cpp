#include "serve/serve.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "io/blif_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "serve/batch.hpp"
#include "serve/watchdog.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/io_retry.hpp"
#include "util/ipc.hpp"
#include "util/socket.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace syseco::serve {

namespace {

constexpr int kTickMs = 50;
constexpr double kTerminateGraceSeconds = 1.0;

/// One client session: its receive buffer and the non-detached jobs whose
/// lifetime is bound to it.
struct Conn {
  int fd = -1;
  std::string rx;
  std::vector<std::string> ownedJobs;
};

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Admission-time payload validation with the checked parsers: a job that
/// cannot parse must be rejected at the door, not dispatched to fail.
Status validatePayload(const SubmitRequest& r) {
  const std::pair<const char*, const std::string*> texts[] = {
      {"impl", &r.implText}, {"spec", &r.specText}};
  for (const auto& [name, text] : texts) {
    std::istringstream is(*text);
    Result<Netlist> parsed = r.format == "blif"   ? readBlifChecked(is)
                             : r.format == "v"    ? readVerilogChecked(is)
                                                  : readNetlistChecked(is);
    if (!parsed.isOk())
      return Status::invalidInput(std::string(name) + " netlist: " +
                                  parsed.status().message());
  }
  return Status::ok();
}

class Daemon {
 public:
  Daemon(const ServeOptions& opt, JobQueue queue)
      : opt_(opt),
        queue_(std::move(queue)),
        watchdog_(PoolWatchdog::Options{opt.poolSize, opt.maxAttempts,
                                        opt.backoffBaseMs}),
        dispatcher_(CaseDispatcher::Options{opt.workers, opt.fleetLeaseSeconds,
                                            opt.fleetConnectTimeoutMs,
                                            opt.fleetMinWorkers,
                                            opt.verbose}) {}

  Status run();

 private:
  bool stopped() const {
    return opt_.stop != nullptr &&
           opt_.stop->load(std::memory_order_relaxed);
  }

  void log(const std::string& msg) {
    if (opt_.verbose)
      std::fprintf(stderr, "[syseco-serve] %s\n", msg.c_str());
  }

  /// Journaled warning: visible in the WAL (note record) and on stderr.
  void warn(const std::string& msg) {
    std::fprintf(stderr, "[syseco-serve] warning: %s\n", msg.c_str());
    queue_.note("warning: " + msg);
  }

  void acceptClients(int listenFd);
  void serviceConnections();
  bool handleFrame(Conn& conn, const ipc::Frame& frame);
  void handleSubmit(Conn& conn, const ipc::Frame& frame);
  void handleStatus(Conn& conn, const ipc::Frame& frame);
  void handleCancel(Conn& conn, const ipc::Frame& frame);
  void dropConnection(Conn& conn);
  JobState stateOf(Job& job, bool withArtifacts);
  void dispatchQueued();
  bool dispatchRemote(Job& job);
  void serviceFleet();
  void settleFleetEvent(const CaseDispatcher::Event& ev, double now);
  void reapExits();
  void cancelJob(Job& job, const std::string& cause,
                 const std::string& detail);
  void requeueRemote(Job& job, const std::string& cause,
                     const std::string& detail, double now);

  const ServeOptions& opt_;
  JobQueue queue_;
  PoolWatchdog watchdog_;
  /// Whole-case remote dispatch over --workers agents; idle (and never
  /// polled) when the daemon was started without workers.
  CaseDispatcher dispatcher_;
  bool fleetDegraded_ = false;
  std::vector<Conn> conns_;
  /// Retry pacing: job id -> monotonic seconds before which it must not
  /// be re-dispatched.
  std::map<std::string, double> notBefore_;
  Timer clock_;
};

Status Daemon::run() {
  for (const std::string& n : queue_.recoveryNotes()) {
    log("recovery: " + n);
    queue_.note("recovery: " + n);
  }
  std::uint16_t bound = 0;
  Result<int> listening = net::listenOn(opt_.port, &bound);
  if (!listening.isOk()) return listening.status();
  const int listenFd = listening.take();
  if (opt_.boundHook) opt_.boundHook(bound);
  log("listening on port " + std::to_string(bound) + ", state dir " +
      queue_.stateDir());

  Status walFault = Status::ok();
  while (!stopped()) {
    // Fail closed on a poisoned WAL: once a storage fault latches the
    // queue's journal, no transition can be made durable, so continuing
    // to accept or dispatch work would silently drop state. Drain and
    // exit with the cause; a restart folds the WAL back to the last
    // COMMIT-consistent prefix and recovers every job.
    if (queue_.walPoisoned()) {
      walFault = Status::internal(
          "queue WAL unusable (" + queue_.walPoisonCause() +
          "); daemon stopping - restart to recover from the last COMMIT");
      std::fprintf(stderr, "[syseco-serve] fatal: %s\n",
                   walFault.message().c_str());
      break;
    }
    std::vector<int> fds;
    fds.push_back(listenFd);
    for (const Conn& c : conns_) fds.push_back(c.fd);
    for (int fd : dispatcher_.pollFds()) fds.push_back(fd);
    subprocess::pollReadable(fds, kTickMs);
    acceptClients(listenFd);
    serviceConnections();
    serviceFleet();
    reapExits();
    dispatchQueued();
  }

  // Clean drain: terminate in-flight workers (their journals keep every
  // committed checkpoint) and leave their jobs running in the WAL - the
  // next daemon life recovers them as queued-with-resume.
  log("stopping: terminating " + std::to_string(watchdog_.busy()) +
      " in-flight worker(s)");
  queue_.note("shutdown");
  watchdog_.terminateAll(kTerminateGraceSeconds);
  dispatcher_.closeAll();
  for (Conn& c : conns_) net::closeSocket(c.fd);
  int fd = listenFd;
  net::closeSocket(fd);
  return walFault;
}

void Daemon::acceptClients(int listenFd) {
  while (true) {
    int softErr = 0;
    Result<int> client = net::acceptClient(listenFd, 0, &softErr);
    if (!client.isOk()) {
      warn("accept failed: " + client.status().message());
      return;
    }
    const int fd = client.take();
    if (fd < 0) {
      if (softErr != 0) {
        // fd exhaustion or kernel resource pressure: journal it and back
        // off for one tick. The listener stays up; pending connections
        // stay queued in the kernel until fds free up.
        warn("accept backoff: errno " + std::to_string(softErr) +
             " (transient resource exhaustion); retrying");
        subprocess::pollReadable({}, 200);
      }
      return;
    }
    Conn c;
    c.fd = fd;
    conns_.push_back(std::move(c));
    log("client connected (fd " + std::to_string(fd) + ", " +
        std::to_string(conns_.size()) + " session(s))");
  }
}

void Daemon::serviceConnections() {
  for (std::size_t i = 0; i < conns_.size();) {
    Conn& c = conns_[i];
    bool alive = true;
    while (alive) {
      net::RecvOutcome out = net::recvFrame(c.fd, &c.rx, 0);
      if (out.status == net::RecvStatus::kTimeout) break;
      if (out.status != net::RecvStatus::kFrame) {
        // Closed, truncated, garbage or reset: same session teardown for
        // all of them - bound jobs are cancelled, detached jobs live on.
        log("client gone (" + out.detail + ")");
        alive = false;
        break;
      }
      alive = handleFrame(c, out.frame);
    }
    if (!alive) {
      dropConnection(c);
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool Daemon::handleFrame(Conn& conn, const ipc::Frame& frame) {
  switch (frame.type) {
    case ipc::kTypeServeSubmit:
      handleSubmit(conn, frame);
      return true;
    case ipc::kTypeServeStatus:
      handleStatus(conn, frame);
      return true;
    case ipc::kTypeServeCancel:
      handleCancel(conn, frame);
      return true;
    default:
      // A known SEF1 frame that is not a serve verb: a confused peer
      // (e.g. a fleet supervisor dialed the wrong port). Drop the session.
      log("unexpected frame type " + std::to_string(frame.type) +
          "; dropping session");
      return false;
  }
}

void Daemon::handleSubmit(Conn& conn, const ipc::Frame& frame) {
  auto reject = [&](const std::string& reason, const std::string& detail) {
    Rejected r;
    r.reason = reason;
    r.detail = detail;
    log("rejected submit (" + reason + "): " + detail);
    net::sendFrame(conn.fd, ipc::kTypeServeRejected, encodeRejected(r));
  };
  if (stopped()) {
    reject("shutting-down", "daemon is draining");
    return;
  }
  Result<SubmitRequest> decoded = decodeSubmit(frame.payload);
  if (!decoded.isOk()) {
    reject("bad-request", decoded.status().message());
    return;
  }
  const SubmitRequest req = decoded.take();
  const std::uint64_t bytes = req.implText.size() + req.specText.size();
  Admission adm = queue_.admit(req.tenant, bytes, opt_.limits);
  if (!adm.admitted) {
    reject(adm.reason, adm.detail);
    return;
  }
  if (Status s = validatePayload(req); !s.isOk()) {
    reject("bad-request", s.message());
    return;
  }
  Result<Job*> submitted = queue_.submit(req);
  if (!submitted.isOk()) {
    // Durability failure, not a client error: shed the job rather than
    // accept work the WAL cannot attest to.
    warn("submit persistence failed: " + submitted.status().message());
    reject("queue-full", "cannot persist job: " +
                             submitted.status().message());
    return;
  }
  Job* job = submitted.take();
  if (!job->detach) conn.ownedJobs.push_back(job->id);
  log("accepted job " + job->id + " (tenant " + job->tenant + ", " +
      std::to_string(bytes) + " bytes" + (job->detach ? ", detached)" : ")"));
  Accepted ok;
  ok.job = job->id;
  net::sendFrame(conn.fd, ipc::kTypeServeAccepted, encodeAccepted(ok));
}

JobState Daemon::stateOf(Job& job, bool withArtifacts) {
  JobState st;
  st.job = job.id;
  st.state = queueStateName(job.state);
  st.attempt = job.attempt;
  st.exitCode = job.exitCode;
  st.cause = job.cause;
  st.detail = job.detail;
  if (withArtifacts && (job.state == QueueState::kDone ||
                        job.state == QueueState::kFailed)) {
    st.reportText = slurp(queue_.reportPath(job));
    if (job.state == QueueState::kDone)
      st.outText = slurp(queue_.outPath(job));
  }
  return st;
}

void Daemon::handleStatus(Conn& conn, const ipc::Frame& frame) {
  Result<JobRef> ref = decodeJobRef(frame.payload);
  JobState st;
  if (!ref.isOk()) {
    st.state = "unknown";
    st.detail = ref.status().message();
  } else if (Job* job = queue_.find(ref.value().job)) {
    st = stateOf(*job, /*withArtifacts=*/true);
  } else {
    st.job = ref.value().job;
    st.state = "unknown";
    st.detail = "no such job";
  }
  net::sendFrame(conn.fd, ipc::kTypeServeJobState, encodeJobState(st));
}

void Daemon::handleCancel(Conn& conn, const ipc::Frame& frame) {
  Result<JobRef> ref = decodeJobRef(frame.payload);
  JobState st;
  if (!ref.isOk()) {
    st.state = "unknown";
    st.detail = ref.status().message();
  } else if (Job* job = queue_.find(ref.value().job)) {
    cancelJob(*job, "client-cancel", "cancelled by request");
    st = stateOf(*job, /*withArtifacts=*/false);
  } else {
    st.job = ref.value().job;
    st.state = "unknown";
    st.detail = "no such job";
  }
  net::sendFrame(conn.fd, ipc::kTypeServeJobState, encodeJobState(st));
}

void Daemon::cancelJob(Job& job, const std::string& cause,
                       const std::string& detail) {
  if (job.state == QueueState::kRunning) {
    watchdog_.terminate(job.id, kTerminateGraceSeconds);
    queue_.markCancelled(job, cause, detail);
    log("job " + job.id + " terminated and cancelled (" + cause + ")");
  } else if (job.state == QueueState::kQueued) {
    queue_.markCancelled(job, cause, detail);
    log("job " + job.id + " cancelled while queued (" + cause + ")");
  }
  // Terminal states are left alone: cancel is idempotent and never
  // rewrites history.
}

void Daemon::dropConnection(Conn& conn) {
  for (const std::string& id : conn.ownedJobs)
    if (Job* job = queue_.find(id))
      cancelJob(*job, "client-disconnect",
                "submitting connection closed before completion");
  net::closeSocket(conn.fd);
}

void Daemon::dispatchQueued() {
  for (Job* job : queue_.all()) {
    if (job->state != QueueState::kQueued) continue;
    if (auto it = notBefore_.find(job->id);
        it != notBefore_.end() && clock_.seconds() < it->second)
      continue;  // still backing off; later queued jobs may proceed
    // Plain jobs ride the fleet while it is healthy; --isolate and
    // fault-inject jobs always run on the local pool (their semantics are
    // local by construction).
    const bool fleetEligible = !job->isolate && job->faultInject.empty();
    if (fleetEligible && !fleetDegraded_ && dispatcher_.enabled() &&
        dispatcher_.fleetUsable() && dispatcher_.hasIdlePeer()) {
      if (dispatchRemote(*job)) continue;
    }
    if (!watchdog_.hasIdleSlot()) return;
    const std::int64_t attempt = job->attempt + 1;
    const bool resume = job->resume;
    if (Status s = queue_.markRunning(*job, attempt); !s.isOk()) {
      warn("cannot journal dispatch of " + job->id + ": " + s.message());
      return;
    }
    std::vector<std::string> argv = {
        opt_.selfExe,
        "--impl", queue_.implPath(*job),
        "--spec", queue_.specPath(*job),
        resume ? "--resume" : "--journal", queue_.engineJournalDir(*job),
        "--report", queue_.reportPath(*job),
        "--out", queue_.outPath(*job),
        "--seed", std::to_string(job->seed),
        "--jobs", std::to_string(job->jobs),
    };
    if (job->isolate) argv.push_back("--isolate");
    std::vector<std::string> env;
    if (!job->faultInject.empty())
      env.push_back("SYSECO_FAULT_INJECT=" + job->faultInject);
    Status spawned = watchdog_.spawn(job->id, attempt, argv,
                                     queue_.workerLogPath(*job), env);
    if (!spawned.isOk()) {
      warn("cannot spawn worker for " + job->id + ": " + spawned.message());
      queue_.markRequeued(*job, "crash", "spawn failed: " +
                                             spawned.message());
      notBefore_[job->id] =
          clock_.seconds() + watchdog_.backoffSeconds(attempt + 1);
      continue;
    }
    log("dispatched job " + job->id + " (attempt " +
        std::to_string(attempt) + (resume ? ", resume)" : ")"));
  }
}

bool Daemon::dispatchRemote(Job& job) {
  // Rebuild the case upload from the job's admitted payload files; any
  // hiccup here falls back to the local pool rather than failing the job.
  const std::string implText = slurp(queue_.implPath(job));
  const std::string specText = slurp(queue_.specPath(job));
  if (implText.empty() || specText.empty()) {
    warn("job " + job.id + ": payload files unreadable; using the local pool");
    return false;
  }
  auto parse = [&](const std::string& text) -> Result<Netlist> {
    std::istringstream is(text);
    return job.format == "blif" ? readBlifChecked(is)
           : job.format == "v"  ? readVerilogChecked(is)
                                : readNetlistChecked(is);
  };
  Result<Netlist> base = parse(implText);
  Result<Netlist> spec = parse(specText);
  if (!base.isOk() || !spec.isOk()) {
    warn("job " + job.id + ": payload re-parse failed; using the local pool");
    return false;
  }
  SysecoOptions eopt;
  eopt.seed = job.seed;
  const std::int64_t attempt = job.attempt + 1;
  if (Status s = queue_.markRunning(job, attempt); !s.isOk()) {
    warn("cannot journal dispatch of " + job.id + ": " +
         std::string(s.message()));
    return true;  // still queued; retried next tick
  }
  Result<CaseDispatcher::Assignment> a = dispatcher_.assign(
      job.id, encodeFleetCase(base.value(), spec.value(), eopt, {}), job.jobs,
      attempt, clock_.seconds());
  if (!a.isOk()) {
    requeueRemote(job, "conn-refused", "no usable agent accepted the case",
                  clock_.seconds());
    return true;
  }
  queue_.note("job " + job.id + " dispatched to " + a.value().worker +
              " (epoch " + std::to_string(a.value().epoch) + ", attempt " +
              std::to_string(attempt) + ")");
  log("dispatched job " + job.id + " to " + a.value().worker + " (attempt " +
      std::to_string(attempt) + ")");
  return true;
}

void Daemon::requeueRemote(Job& job, const std::string& cause,
                           const std::string& detail, double now) {
  if (job.attempt >= opt_.maxAttempts) {
    queue_.markFailed(job, cause,
                      "quarantined after " + std::to_string(job.attempt) +
                          " attempt(s); last failure: " + detail);
    log("job " + job.id + " quarantined (" + cause + "): " + detail);
    return;
  }
  queue_.markRequeued(job, cause, detail);
  // Case-level redispatch rides the per-output transports' deterministic
  // backoff contract, keyed by the job id's crc32 as the case ordinal.
  notBefore_[job.id] =
      now + caseRedispatchBackoffSeconds(opt_.backoffBaseMs, job.seed,
                                         crc32(job.id),
                                         static_cast<int>(job.attempt));
  log("job " + job.id + " re-queued after remote failure (" + cause + "): " +
      detail);
}

void Daemon::serviceFleet() {
  if (!dispatcher_.enabled()) return;
  if (!fleetDegraded_ && !dispatcher_.fleetUsable()) {
    fleetDegraded_ = true;
    const std::string why =
        std::to_string(dispatcher_.usableWorkers()) +
        " usable worker(s), minimum " + std::to_string(opt_.fleetMinWorkers);
    warn("fleet degraded (" + why +
         "); continuing with the local watchdog pool");
    // closeAll reclaims in-flight remote cases; poll() below surfaces them
    // as failure events that re-queue onto the local pool.
    dispatcher_.closeAll();
  }
  const double now = clock_.seconds();
  for (const CaseDispatcher::Event& ev : dispatcher_.poll(now))
    settleFleetEvent(ev, now);
}

void Daemon::settleFleetEvent(const CaseDispatcher::Event& ev, double now) {
  switch (ev.kind) {
    case CaseDispatcher::EventKind::kResult: {
      Job* job = queue_.find(ev.name);
      if (job == nullptr || job->state != QueueState::kRunning)
        return;  // cancelled while the result was in flight
      Result<Netlist> nl = Netlist::restoreRawString(ev.result.netlist);
      if (!nl.isOk()) {
        requeueRemote(*job, "garbage-ipc",
                      "result netlist failed validation: " +
                          std::string(nl.status().message()),
                      now);
        return;
      }
      if (Status s = writeFileAtomic(queue_.reportPath(*job),
                                     ev.result.report);
          !s.isOk())
        warn("cannot write report for " + job->id + ": " +
             std::string(s.message()));
      if (job->format == "blif")
        saveBlif(queue_.outPath(*job), nl.value());
      else if (job->format == "v")
        saveVerilog(queue_.outPath(*job), nl.value());
      else
        saveNetlist(queue_.outPath(*job), nl.value());
      queue_.markDone(*job, ev.result.exitCode);
      queue_.note("job " + job->id + " completed on " + ev.worker +
                  "; agent case cache: hits " +
                  std::to_string(ev.result.cacheHits) + ", misses " +
                  std::to_string(ev.result.cacheMisses) + ", evictions " +
                  std::to_string(ev.result.cacheEvictions));
      log("job " + job->id + " done on " + ev.worker + " (exit " +
          std::to_string(ev.result.exitCode) + ")");
      return;
    }
    case CaseDispatcher::EventKind::kFailure: {
      Job* job = queue_.find(ev.name);
      if (job == nullptr || job->state != QueueState::kRunning) return;
      requeueRemote(*job, ev.cause, ev.detail, now);
      return;
    }
    case CaseDispatcher::EventKind::kStaleDiscard:
      queue_.note("stale-epoch duplicate from " + ev.worker +
                  " discarded (job " + ev.name + "): " + ev.detail);
      return;
    case CaseDispatcher::EventKind::kPeerDead:
      queue_.note("worker " + ev.worker + " marked dead (" + ev.cause +
                  "): " + ev.detail);
      return;
  }
}

void Daemon::reapExits() {
  for (const WorkerExit& e : watchdog_.reap()) {
    Job* job = queue_.find(e.job);
    if (job == nullptr || job->state != QueueState::kRunning)
      continue;  // cancelled while the exit was in flight
    if (!e.retryable) {
      queue_.markDone(*job, e.exitCode);
      log("job " + job->id + " done (exit " + std::to_string(e.exitCode) +
          ", attempt " + std::to_string(e.attempt) + ")");
      continue;
    }
    const std::string how =
        e.signaled ? "signal " + std::to_string(e.signal)
                   : "exit " + std::to_string(e.exitCode);
    if (e.attempt >= opt_.maxAttempts) {
      queue_.markFailed(*job, e.cause,
                        "quarantined after " + std::to_string(e.attempt) +
                            " attempt(s); last death: " + how);
      log("job " + job->id + " quarantined (" + e.cause + ", " + how + ")");
      continue;
    }
    queue_.markRequeued(*job, e.cause, "worker died (" + how + ")");
    notBefore_[job->id] =
        clock_.seconds() + watchdog_.backoffSeconds(e.attempt + 1);
    log("job " + job->id + " worker died (" + e.cause + ", " + how +
        "); retrying with resume");
  }
}

}  // namespace

Status runServeDaemon(const ServeOptions& options) {
  if (options.stateDir.empty())
    return Status::invalidInput("--serve needs a state directory");
  if (options.selfExe.empty())
    return Status::invalidInput("serve daemon needs its worker binary path");
  ioretry::ignoreSigpipeOnce();
  Result<JobQueue> queue = JobQueue::open(options.stateDir);
  if (!queue.isOk()) return queue.status();
  Daemon daemon(options, queue.take());
  return daemon.run();
}

// --- Client ---------------------------------------------------------------

namespace {

constexpr int kReplyTimeoutMs = 10000;

Result<ipc::Frame> roundTrip(int fd, std::string* rx, std::uint32_t type,
                             const std::string& payload,
                             std::uint32_t expect1, std::uint32_t expect2) {
  if (Status s = net::sendFrame(fd, type, payload); !s.isOk()) return s;
  net::RecvOutcome out = net::recvFrame(fd, rx, kReplyTimeoutMs);
  if (out.status != net::RecvStatus::kFrame)
    return Status::internal("daemon reply failed: " + out.detail);
  if (out.frame.type != expect1 && out.frame.type != expect2)
    return Status::internal("unexpected daemon reply type " +
                            std::to_string(out.frame.type));
  return std::move(out.frame);
}

}  // namespace

Result<ServeClient> ServeClient::connect(const std::string& host,
                                         std::uint16_t port, int timeoutMs) {
  Result<int> fd = net::connectTo(host, port, timeoutMs);
  if (!fd.isOk()) return fd.status();
  ServeClient c;
  c.fd_ = fd.take();
  return c;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) net::closeSocket(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
    rx_ = std::move(other.rx_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) net::closeSocket(fd_);
}

Result<SubmitOutcome> ServeClient::submit(const SubmitRequest& request) {
  Result<ipc::Frame> reply =
      roundTrip(fd_, &rx_, ipc::kTypeServeSubmit, encodeSubmit(request),
                ipc::kTypeServeAccepted, ipc::kTypeServeRejected);
  if (!reply.isOk()) return reply.status();
  SubmitOutcome out;
  if (reply.value().type == ipc::kTypeServeAccepted) {
    Result<Accepted> acc = decodeAccepted(reply.value().payload);
    if (!acc.isOk()) return acc.status();
    out.accepted = true;
    out.job = acc.take().job;
    return out;
  }
  Result<Rejected> rej = decodeRejected(reply.value().payload);
  if (!rej.isOk()) return rej.status();
  out.rejected = rej.take();
  return out;
}

Result<JobState> ServeClient::status(const std::string& job) {
  JobRef ref;
  ref.job = job;
  Result<ipc::Frame> reply =
      roundTrip(fd_, &rx_, ipc::kTypeServeStatus, encodeJobRef(ref),
                ipc::kTypeServeJobState, ipc::kTypeServeJobState);
  if (!reply.isOk()) return reply.status();
  return decodeJobState(reply.value().payload);
}

Result<JobState> ServeClient::cancel(const std::string& job) {
  JobRef ref;
  ref.job = job;
  Result<ipc::Frame> reply =
      roundTrip(fd_, &rx_, ipc::kTypeServeCancel, encodeJobRef(ref),
                ipc::kTypeServeJobState, ipc::kTypeServeJobState);
  if (!reply.isOk()) return reply.status();
  return decodeJobState(reply.value().payload);
}

Result<JobState> ServeClient::wait(const std::string& job, int pollMs) {
  while (true) {
    Result<JobState> st = status(job);
    if (!st.isOk()) return st.status();
    const std::string& s = st.value().state;
    if (s == "done" || s == "failed" || s == "cancelled" || s == "unknown")
      return st;
    subprocess::pollReadable({}, pollMs);
  }
}

}  // namespace syseco::serve
