#pragma once
// WAL-backed durable case ledger for --batch sweeps.
//
// The batch ledger is the job queue's sibling (same fold-on-open recovery
// style, same fsync-per-record util/journal WAL) at case granularity: every
// per-case transition (registered, dispatched, done, failed, requeued) is
// appended to the WAL *before* the in-memory state mutates. A batch driver
// killed with SIGKILL at any instant recovers the sweep exactly by folding
// the WAL: finished cases stay finished, queued cases stay queued, and
// cases that were mid-dispatch come back as queued-with-resume so the next
// run re-dispatches them with --resume against their own engine journals -
// which is what keeps post-crash verdicts bit-identical to an
// uninterrupted sweep.
//
// On-disk layout under the batch state directory:
//
//   ledger/           the WAL (journal.jsonl + COMMIT), batch-event records
//   cases/<name>/     one directory per case:
//     journal/                 the case's own engine run journal
//     report.json, out.<fmt>   the finished run's artifacts
//     verdicts.txt             the oracle's verdicts record (one line)
//     worker.log               captured output of a local fallback worker
//
// The WAL is compacted on every open, so its length is bounded by case
// count, not driver lifetime. Case names come from user manifests and name
// directories here, which is why the codec layer only admits portable path
// components (validFleetCaseName).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/journal.hpp"
#include "util/status.hpp"

namespace syseco::serve {

enum class CaseState { kQueued, kRunning, kDone, kFailed };

const char* caseStateName(CaseState s);

/// One case's durable record plus dispatch bookkeeping.
struct BatchCase {
  std::string name;      ///< manifest name, also the artifact directory
  std::string implPath;  ///< manifest input paths (not copied in)
  std::string specPath;
  std::uint64_t seed = 1;
  std::int64_t jobs = 1;  ///< per-case engine parallelism (--jobs)
  CaseState state = CaseState::kQueued;
  std::int64_t attempt = 0;   ///< dispatch ordinal (1 = first attempt)
  std::int64_t exitCode = 0;  ///< engine exit classification when done
  std::string cause;          ///< failure classification
  std::string detail;
  std::string worker;  ///< last dispatch target ("host:port", "" = local)
  /// A previous attempt (possibly in a previous driver life) left an engine
  /// journal behind: run with --resume so committed per-output progress is
  /// kept and the final verdicts stay bit-identical.
  bool resume = false;
  /// Agent cache counters snapshotted with the remote result (zero for
  /// local fallback runs).
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheEvictions = 0;
};

class BatchLedger {
 public:
  /// Opens (creating if needed) the state directory, folds the WAL to
  /// recover every case, re-queues cases that were mid-dispatch with the
  /// resume flag set, and compacts the WAL. recoveryNotes() describes what
  /// was recovered.
  static Result<BatchLedger> open(const std::string& stateDir);

  /// True when the WAL already held cases at open() - the resume-vs-fresh
  /// signal for the CLI (`--batch ... --resume DIR` expects it, a fresh
  /// `--batch-state DIR` rejects it).
  bool hadCases() const { return hadCases_; }

  /// Registers a manifest case, appending its WAL record. Idempotent on
  /// resume: a case already recovered under `name` with the same inputs is
  /// returned as-is; the same name with different inputs is kInvalidInput
  /// (the ledger guards against resuming a different manifest).
  Result<BatchCase*> registerCase(const std::string& name,
                                  const std::string& implPath,
                                  const std::string& specPath,
                                  std::uint64_t seed, std::int64_t jobs);

  BatchCase* find(const std::string& name);
  std::vector<BatchCase*> all();

  // Durable transitions: WAL append first (fsync'd), then the mutation.
  Status markDispatched(BatchCase& c, std::int64_t attempt,
                        const std::string& worker, std::uint64_t epoch);
  Status markDone(BatchCase& c, std::int64_t exitCode,
                  std::uint64_t cacheHits, std::uint64_t cacheMisses,
                  std::uint64_t cacheEvictions);
  Status markFailed(BatchCase& c, const std::string& cause,
                    const std::string& detail);
  /// Reclaims a dispatched case (lease expiry, peer death, driver
  /// recovery): back to queued-with-resume for the next dispatch.
  Status markRequeued(BatchCase& c, const std::string& cause,
                      const std::string& detail);

  /// Appends a batch-wide note record (observability only; folded away on
  /// the next compaction).
  Status note(const std::string& detail);

  // Artifact paths inside the case's directory.
  std::string caseDir(const std::string& name) const;
  std::string engineJournalDir(const BatchCase& c) const;
  std::string reportPath(const BatchCase& c) const;
  std::string outPath(const BatchCase& c) const;  ///< extension from implPath
  std::string verdictsPath(const BatchCase& c) const;
  std::string workerLogPath(const BatchCase& c) const;

  const std::string& stateDir() const { return stateDir_; }
  const std::vector<std::string>& recoveryNotes() const {
    return recoveryNotes_;
  }

  /// True once a storage fault latched the WAL writer (failed write/fsync
  /// or COMMIT-marker replacement). The driver fails closed on it: no
  /// transition can be made durable, so the sweep must stop with a
  /// structured cause and be healed by `--batch ... --resume`.
  bool walPoisoned() const { return wal_.poisoned(); }
  const std::string& walPoisonCause() const { return wal_.poisonCause(); }

 private:
  BatchLedger() = default;

  Status appendEvent(const std::string& event, const BatchCase& c,
                     std::uint64_t epoch);

  std::string stateDir_;
  JournalWriter wal_;
  /// Stable addresses (the scheduler holds BatchCase* across ticks),
  /// registration order (= manifest order on a fresh ledger).
  std::vector<std::unique_ptr<BatchCase>> cases_;
  bool hadCases_ = false;
  std::vector<std::string> recoveryNotes_;
};

}  // namespace syseco::serve
