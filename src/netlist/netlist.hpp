#pragma once
// Combinational netlist data model (paper §3.1 "Design representation").
//
// A design is a Boolean circuit: gates perform logic operations on binary
// inputs producing a single binary output; nets connect a single source pin
// (a primary input or a gate output) to downstream sink pins (gate inputs or
// primary outputs). Primary inputs and outputs carry unique labels used to
// establish behavioral correspondence between two circuits C and C'.
//
// The model supports the operations the rewire-based rectification needs:
//  * rewiring an individual sink pin to a different driving net,
//  * cloning logic cones from a specification circuit C' into the current
//    implementation C,
//  * topological traversal, transitive-fanin cones and PI supports,
//  * well-formedness auditing (acyclicity, pin/net consistency).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"

namespace syseco {

using GateId = std::uint32_t;
using NetId = std::uint32_t;
inline constexpr std::uint32_t kNullId = 0xFFFFFFFFu;

/// Gate operations. And/Or/Nand/Nor are n-ary (n >= 1); Xor/Xnor compute
/// n-ary parity / its complement; Mux has fanins (sel, d0, d1) and outputs
/// d1 when sel is true. Buf/Not are unary; Const0/Const1 are nullary.
enum class GateType : std::uint8_t {
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Mux,
};

/// Number of fanins a gate type requires; 0xFF means "any >= 1".
std::uint8_t gateArity(GateType type);
const char* gateTypeName(GateType type);

/// Evaluates a gate over 64 parallel input patterns (one bit per pattern).
std::uint64_t evalGateWord(GateType type, const std::uint64_t* fanins,
                           std::size_t numFanins);

/// A sink pin of a net: either input `port` of gate `gate`, or primary
/// output `port` of the circuit (gate == kNullId).
struct Sink {
  GateId gate = kNullId;  ///< kNullId when the sink is a primary output.
  std::uint32_t port = 0;

  bool isOutput() const { return gate == kNullId; }
  bool operator==(const Sink& o) const {
    return gate == o.gate && port == o.port;
  }
};

class Netlist {
 public:
  struct Gate {
    GateType type = GateType::Const0;
    std::vector<NetId> fanins;
    NetId out = kNullId;
    bool dead = false;
  };

  enum class SourceKind : std::uint8_t { None, Input, Gate };

  struct Net {
    SourceKind srcKind = SourceKind::None;
    std::uint32_t srcIdx = kNullId;  ///< PI index or GateId, per srcKind.
    std::vector<Sink> sinks;
    std::string name;  ///< Optional label (primary I/O nets are named).
  };

  // --- Construction -------------------------------------------------------

  /// Adds a primary input with a unique label; returns its net.
  NetId addInput(const std::string& name);

  /// Adds a gate driving a fresh net; returns that net. Fanins are taken
  /// by value: callers may pass references into this netlist's own
  /// storage, which reallocates during the call.
  NetId addGate(GateType type, std::vector<NetId> fanins);

  /// Registers `net` as primary output with a unique label; returns its
  /// output index.
  std::uint32_t addOutput(const std::string& name, NetId net);

  // --- Incremental modification (the rewire operation, paper §3.3) --------

  /// Disconnects gate input pin (gate, port) from its driving net and
  /// connects it to `newNet`.
  void rewireGatePin(GateId gate, std::uint32_t port, NetId newNet);

  /// Re-drives primary output `outIdx` from `newNet`.
  void rewireOutput(std::uint32_t outIdx, NetId newNet);

  /// Generic form over a Sink handle.
  void rewireSink(const Sink& sink, NetId newNet);

  /// Marks gates not reachable from any primary output as dead.
  /// Returns the number of gates newly marked dead.
  std::size_t sweepDeadLogic();

  // --- Topology ------------------------------------------------------------

  /// Live gates in topological (fanin-before-fanout) order.
  std::vector<GateId> topoOrder() const;

  /// Gates in the transitive fanin cone of the given nets, topologically
  /// ordered.
  std::vector<GateId> coneGates(const std::vector<NetId>& roots) const;

  /// Primary-input indices in the transitive fanin support of `net`,
  /// ascending.
  std::vector<std::uint32_t> support(NetId net) const;

  /// Logic level (unit delay) of every net; PIs and constants are level 0.
  std::vector<std::uint32_t> netLevels() const;

  /// True when the gate graph is acyclic.
  bool isAcyclic() const;

  /// Audits all structural invariants (sink lists vs. fanins, source
  /// consistency, acyclicity). Used pervasively by tests.
  bool isWellFormed(std::string* whyNot = nullptr) const;

  // --- Exact snapshots (crash-safe run journal) -----------------------------

  /// Serializes the *exact* internal state - dead gates, sink-list order
  /// and all ids included - so that restoreRaw() rebuilds a bit-identical
  /// object. This is stronger than writeNetlist/readNetlist (which emit
  /// live logic only and renumber): the rectification engine's search is
  /// deterministic in the netlist's internal layout, and journal resume
  /// relies on replaying from an indistinguishable state. The text has no
  /// newline in the first line's absence; format version is embedded.
  void dumpRaw(std::ostream& os) const;
  std::string dumpRawString() const;

  /// Rebuilds a netlist from dumpRaw() output. Every id, count and
  /// cross-reference is validated (and the result audited with
  /// isWellFormed), so arbitrary corrupt input yields kInvalidInput with a
  /// line-accurate diagnostic rather than undefined behavior.
  static Result<Netlist> restoreRaw(std::istream& is);
  static Result<Netlist> restoreRawString(const std::string& text);

  // --- Cloning --------------------------------------------------------------

  Netlist clone() const { return *this; }

  /// Clones the transitive-fanin cone of `srcNet` in `src` into this
  /// netlist. Primary inputs of `src` are resolved by label through
  /// `inputByName` (label -> net in this netlist); previously cloned nets
  /// are reused through `cache` (srcNet -> net here), which the call extends.
  /// Returns the net in this netlist that realizes `srcNet`'s function.
  NetId cloneCone(const Netlist& src, NetId srcNet,
                  const std::unordered_map<std::string, NetId>& inputByName,
                  std::unordered_map<NetId, NetId>& cache);

  // --- Accessors ------------------------------------------------------------

  std::size_t numInputs() const { return inputs_.size(); }
  std::size_t numOutputs() const { return outputs_.size(); }
  NetId inputNet(std::uint32_t i) const { return inputs_[i]; }
  NetId outputNet(std::uint32_t o) const { return outputs_[o]; }
  const std::string& inputName(std::uint32_t i) const;
  const std::string& outputName(std::uint32_t o) const;
  /// Output index for a label, or kNullId.
  std::uint32_t findOutput(const std::string& name) const;
  /// Input index for a label, or kNullId.
  std::uint32_t findInput(const std::string& name) const;

  std::size_t numGatesTotal() const { return gates_.size(); }
  std::size_t numNetsTotal() const { return nets_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  const Net& net(NetId n) const { return nets_[n]; }

  /// Live-logic statistics (paper Table 1 columns).
  std::size_t countLiveGates() const;
  std::size_t countLiveNets() const;
  std::size_t countSinks() const;

  /// True when `net` is driven by a primary input.
  bool isInputNet(NetId net) const {
    return nets_[net].srcKind == SourceKind::Input;
  }
  /// Gate driving `net`, or kNullId when PI-driven / undriven.
  GateId driverOf(NetId net) const {
    return nets_[net].srcKind == SourceKind::Gate ? nets_[net].srcIdx
                                                  : kNullId;
  }

 private:
  NetId newNet();
  void attachSink(NetId net, const Sink& sink);
  void detachSink(NetId net, const Sink& sink);

  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::string> inputNames_;
  std::vector<std::string> outputNames_;
  std::unordered_map<std::string, std::uint32_t> inputIndex_;
  std::unordered_map<std::string, std::uint32_t> outputIndex_;
};

}  // namespace syseco
