#pragma once
// Shared, immutable structural analyses of a netlist.
//
// The rectification cascade needs the same derived structures over and over
// - topological order, per-net transitive PI supports, per-output cone-gate
// lists, logic levels - and used to recompute them from scratch for every
// output (and once more per refinement attempt). NetlistAnalysis computes
// them once for a netlist snapshot and serves them read-only; it is safe to
// share across worker threads because it never mutates after construction.
//
// Validity contract: an analysis describes the netlist *as it was at
// construction*. The specification netlist never changes, so its analysis
// is valid for the whole run. The working implementation mutates during the
// search; its base analysis is only consulted while the netlist is still
// pristine (same gate/net counts, no rewires) - callers must check.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace syseco {

/// Bitset-based PI supports of every net, computed in one topological pass.
class SupportTable {
 public:
  explicit SupportTable(const Netlist& nl)
      : words_((nl.numInputs() + 63) / 64),
        bits_(nl.numNetsTotal() * std::max<std::size_t>(words_, 1), 0) {
    if (words_ == 0) words_ = 1;
    for (std::uint32_t i = 0; i < nl.numInputs(); ++i) {
      const NetId n = nl.inputNet(i);
      bits_[n * words_ + i / 64] |= (std::uint64_t{1} << (i % 64));
    }
    for (GateId g : nl.topoOrder()) {
      const auto& gate = nl.gate(g);
      std::uint64_t* out = &bits_[gate.out * words_];
      for (NetId f : gate.fanins) {
        const std::uint64_t* in = &bits_[f * words_];
        for (std::size_t w = 0; w < words_; ++w) out[w] |= in[w];
      }
    }
  }

  /// True when support(net) is a subset of the given mask.
  bool subsetOf(NetId net, const std::vector<std::uint64_t>& mask) const {
    const std::uint64_t* s = &bits_[net * words_];
    for (std::size_t w = 0; w < words_; ++w)
      if ((s[w] & ~mask[w]) != 0) return false;
    return true;
  }

  std::vector<std::uint64_t> supportMask(NetId net) const {
    return {bits_.begin() + static_cast<std::ptrdiff_t>(net * words_),
            bits_.begin() + static_cast<std::ptrdiff_t>((net + 1) * words_)};
  }

  std::size_t words() const { return words_; }
  /// Number of nets covered (the netlist may grow after construction).
  std::size_t numNets() const { return bits_.size() / words_; }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// One-shot cache of the structural analyses the rectification engine
/// consumes per output: topological order, logic levels, PI-support
/// bitsets, per-output transitive-fanin cone-gate lists and an
/// output-cone membership bitset over gates.
class NetlistAnalysis {
 public:
  explicit NetlistAnalysis(const Netlist& nl);

  // Snapshot identity - callers gate base-analysis reuse on these.
  std::size_t gatesAtBuild() const { return gatesAtBuild_; }
  std::size_t netsAtBuild() const { return netsAtBuild_; }

  const std::vector<GateId>& topoOrder() const { return topoOrder_; }
  const std::vector<std::uint32_t>& netLevels() const { return netLevels_; }
  const SupportTable& supports() const { return supports_; }

  /// Gates of output `o`'s transitive fanin cone, topologically ordered.
  const std::vector<GateId>& outputConeGates(std::uint32_t o) const {
    return coneGates_[o];
  }
  /// Output nets of the cone's gates (candidate source nets when the
  /// analyzed netlist is a specification).
  std::vector<NetId> outputConeNets(std::uint32_t o) const;
  /// PI indices in the transitive support of output `o`, ascending.
  const std::vector<std::uint32_t>& outputSupport(std::uint32_t o) const {
    return outputSupports_[o];
  }
  /// True when gate `g` (a gate id valid at build time) lies in the
  /// transitive fanin cone of output `o`.
  bool inOutputCone(std::uint32_t o, GateId g) const {
    const std::size_t bit = o * gatesAtBuild_ + g;
    return (coneMember_[bit / 64] >> (bit % 64)) & 1;
  }
  std::size_t outputConeSize(std::uint32_t o) const {
    return coneGates_[o].size();
  }

 private:
  std::size_t gatesAtBuild_ = 0;
  std::size_t netsAtBuild_ = 0;
  std::vector<GateId> topoOrder_;
  std::vector<std::uint32_t> netLevels_;
  SupportTable supports_;
  std::vector<std::vector<GateId>> coneGates_;
  std::vector<std::vector<std::uint32_t>> outputSupports_;
  std::vector<std::uint64_t> coneMember_;  ///< outputs x gates bit matrix
  const Netlist* nl_;
};

}  // namespace syseco
