#include "netlist/netlist.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <queue>
#include <sstream>

#include "util/check.hpp"

namespace syseco {

std::uint8_t gateArity(GateType type) {
  switch (type) {
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Buf:
    case GateType::Not:
      return 1;
    case GateType::Mux:
      return 3;
    default:
      return 0xFF;  // n-ary, at least 1
  }
}

const char* gateTypeName(GateType type) {
  switch (type) {
    case GateType::Const0: return "const0";
    case GateType::Const1: return "const1";
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Mux: return "mux";
  }
  return "?";
}

std::uint64_t evalGateWord(GateType type, const std::uint64_t* fanins,
                           std::size_t numFanins) {
  switch (type) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return ~0ULL;
    case GateType::Buf:
      return fanins[0];
    case GateType::Not:
      return ~fanins[0];
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t acc = ~0ULL;
      for (std::size_t i = 0; i < numFanins; ++i) acc &= fanins[i];
      return type == GateType::And ? acc : ~acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < numFanins; ++i) acc |= fanins[i];
      return type == GateType::Or ? acc : ~acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < numFanins; ++i) acc ^= fanins[i];
      return type == GateType::Xor ? acc : ~acc;
    }
    case GateType::Mux:
      return (fanins[0] & fanins[2]) | (~fanins[0] & fanins[1]);
  }
  return 0;
}

NetId Netlist::newNet() {
  nets_.emplace_back();
  return static_cast<NetId>(nets_.size() - 1);
}

void Netlist::attachSink(NetId net, const Sink& sink) {
  nets_[net].sinks.push_back(sink);
}

void Netlist::detachSink(NetId net, const Sink& sink) {
  auto& sinks = nets_[net].sinks;
  auto it = std::find(sinks.begin(), sinks.end(), sink);
  SYSECO_CHECK(it != sinks.end());
  sinks.erase(it);
}

NetId Netlist::addInput(const std::string& name) {
  SYSECO_CHECK(inputIndex_.find(name) == inputIndex_.end());
  const NetId n = newNet();
  nets_[n].srcKind = SourceKind::Input;
  nets_[n].srcIdx = static_cast<std::uint32_t>(inputs_.size());
  nets_[n].name = name;
  inputIndex_.emplace(name, static_cast<std::uint32_t>(inputs_.size()));
  inputs_.push_back(n);
  inputNames_.push_back(name);
  return n;
}

NetId Netlist::addGate(GateType type, std::vector<NetId> fanins) {
  const std::uint8_t arity = gateArity(type);
  if (arity == 0xFF) {
    SYSECO_CHECK(!fanins.empty());
  } else {
    SYSECO_CHECK(fanins.size() == arity);
  }
  for (NetId f : fanins) SYSECO_CHECK(f < nets_.size());

  const GateId g = static_cast<GateId>(gates_.size());
  const NetId out = newNet();
  gates_.push_back(Gate{type, std::move(fanins), out, false});
  nets_[out].srcKind = SourceKind::Gate;
  nets_[out].srcIdx = g;
  // Read the fanins back from stable storage: the argument may have
  // aliased gates_ before the push_back above.
  const std::vector<NetId>& stored = gates_[g].fanins;
  for (std::uint32_t port = 0; port < stored.size(); ++port) {
    attachSink(stored[port], Sink{g, port});
  }
  return out;
}

std::uint32_t Netlist::addOutput(const std::string& name, NetId net) {
  SYSECO_CHECK(net < nets_.size());
  SYSECO_CHECK(outputIndex_.find(name) == outputIndex_.end());
  const std::uint32_t idx = static_cast<std::uint32_t>(outputs_.size());
  outputs_.push_back(net);
  outputNames_.push_back(name);
  outputIndex_.emplace(name, idx);
  attachSink(net, Sink{kNullId, idx});
  return idx;
}

void Netlist::rewireGatePin(GateId gate, std::uint32_t port, NetId newNet) {
  SYSECO_CHECK(gate < gates_.size() && port < gates_[gate].fanins.size());
  SYSECO_CHECK(newNet < nets_.size());
  const NetId old = gates_[gate].fanins[port];
  if (old == newNet) return;
  detachSink(old, Sink{gate, port});
  gates_[gate].fanins[port] = newNet;
  attachSink(newNet, Sink{gate, port});
}

void Netlist::rewireOutput(std::uint32_t outIdx, NetId newNet) {
  SYSECO_CHECK(outIdx < outputs_.size() && newNet < nets_.size());
  const NetId old = outputs_[outIdx];
  if (old == newNet) return;
  detachSink(old, Sink{kNullId, outIdx});
  outputs_[outIdx] = newNet;
  attachSink(newNet, Sink{kNullId, outIdx});
}

void Netlist::rewireSink(const Sink& sink, NetId newNet) {
  if (sink.isOutput()) {
    rewireOutput(sink.port, newNet);
  } else {
    rewireGatePin(sink.gate, sink.port, newNet);
  }
}

std::size_t Netlist::sweepDeadLogic() {
  // Mark gates reachable from outputs.
  std::vector<char> live(gates_.size(), 0);
  std::vector<GateId> stack;
  auto pushNet = [&](NetId n) {
    if (nets_[n].srcKind == SourceKind::Gate) {
      const GateId g = nets_[n].srcIdx;
      if (!live[g]) {
        live[g] = 1;
        stack.push_back(g);
      }
    }
  };
  for (NetId o : outputs_) pushNet(o);
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (NetId f : gates_[g].fanins) pushNet(f);
  }
  std::size_t newlyDead = 0;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (!live[g] && !gates_[g].dead) {
      // Detach the dead gate's input pins so sink lists reflect live logic.
      for (std::uint32_t port = 0; port < gates_[g].fanins.size(); ++port) {
        detachSink(gates_[g].fanins[port], Sink{g, port});
      }
      gates_[g].fanins.clear();
      gates_[g].dead = true;
      ++newlyDead;
    }
  }
  return newlyDead;
}

std::vector<GateId> Netlist::topoOrder() const {
  // Kahn's algorithm over live gates.
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<GateId> ready;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].dead) continue;
    std::uint32_t gateFanins = 0;
    for (NetId f : gates_[g].fanins) {
      if (nets_[f].srcKind == SourceKind::Gate && !gates_[nets_[f].srcIdx].dead)
        ++gateFanins;
    }
    pending[g] = gateFanins;
    if (gateFanins == 0) ready.push_back(g);
  }
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    order.push_back(g);
    for (const Sink& s : nets_[gates_[g].out].sinks) {
      if (s.isOutput()) continue;
      if (gates_[s.gate].dead) continue;
      if (--pending[s.gate] == 0) ready.push_back(s.gate);
    }
  }
  return order;
}

std::vector<GateId> Netlist::coneGates(const std::vector<NetId>& roots) const {
  // DFS collecting the transitive fanin, then emit in topological order via
  // post-order (fanins are visited before the gate itself).
  std::vector<char> seen(gates_.size(), 0);
  std::vector<GateId> order;
  // Iterative DFS with explicit phase to get post-order.
  struct Frame {
    GateId gate;
    std::size_t next;
  };
  std::vector<Frame> stack;
  auto visitNet = [&](NetId n) {
    if (nets_[n].srcKind != SourceKind::Gate) return;
    const GateId g = nets_[n].srcIdx;
    if (gates_[g].dead || seen[g]) return;
    seen[g] = 1;
    stack.push_back(Frame{g, 0});
  };
  for (NetId r : roots) {
    visitNet(r);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.next < gates_[fr.gate].fanins.size()) {
        const NetId f = gates_[fr.gate].fanins[fr.next++];
        visitNet(f);
      } else {
        order.push_back(fr.gate);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::vector<std::uint32_t> Netlist::support(NetId net) const {
  std::vector<std::uint32_t> result;
  std::vector<char> seenNet(nets_.size(), 0);
  std::vector<NetId> stack{net};
  seenNet[net] = 1;
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    if (nets_[n].srcKind == SourceKind::Input) {
      result.push_back(nets_[n].srcIdx);
    } else if (nets_[n].srcKind == SourceKind::Gate) {
      for (NetId f : gates_[nets_[n].srcIdx].fanins) {
        if (!seenNet[f]) {
          seenNet[f] = 1;
          stack.push_back(f);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::uint32_t> Netlist::netLevels() const {
  std::vector<std::uint32_t> level(nets_.size(), 0);
  for (GateId g : topoOrder()) {
    // Arity-aware unit delay: an n-ary associative gate stands for a
    // ceil(log2 n)-deep tree of 2-input cells; Mux and inverters cost one.
    std::uint32_t cost = 1;
    const std::size_t arity = gates_[g].fanins.size();
    if (gates_[g].type != GateType::Mux && arity > 2) {
      cost = 0;
      std::size_t n = arity - 1;
      while (n > 0) {
        ++cost;
        n >>= 1;
      }
    }
    std::uint32_t maxIn = 0;
    for (NetId f : gates_[g].fanins) maxIn = std::max(maxIn, level[f] + cost);
    if (gates_[g].fanins.empty()) maxIn = 0;  // constants
    level[gates_[g].out] = maxIn;
  }
  return level;
}

bool Netlist::isAcyclic() const {
  std::size_t liveCount = 0;
  for (const Gate& g : gates_)
    if (!g.dead) ++liveCount;
  return topoOrder().size() == liveCount;
}

bool Netlist::isWellFormed(std::string* whyNot) const {
  auto fail = [&](const std::string& msg) {
    if (whyNot) *whyNot = msg;
    return false;
  };
  // Net source consistency.
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.srcKind == SourceKind::Gate) {
      if (net.srcIdx >= gates_.size() || gates_[net.srcIdx].out != n)
        return fail("net " + std::to_string(n) + " has inconsistent driver");
    } else if (net.srcKind == SourceKind::Input) {
      if (net.srcIdx >= inputs_.size() || inputs_[net.srcIdx] != n)
        return fail("net " + std::to_string(n) + " has inconsistent PI");
    }
    // Every sink must reference back.
    for (const Sink& s : net.sinks) {
      if (s.isOutput()) {
        if (s.port >= outputs_.size() || outputs_[s.port] != n)
          return fail("net " + std::to_string(n) + " has stale PO sink");
      } else {
        if (s.gate >= gates_.size() || gates_[s.gate].dead ||
            s.port >= gates_[s.gate].fanins.size() ||
            gates_[s.gate].fanins[s.port] != n)
          return fail("net " + std::to_string(n) + " has stale gate sink");
      }
    }
  }
  // Every live gate pin must appear exactly once in its net's sink list.
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].dead) continue;
    for (std::uint32_t port = 0; port < gates_[g].fanins.size(); ++port) {
      const NetId f = gates_[g].fanins[port];
      if (f >= nets_.size()) return fail("gate fanin out of range");
      const auto& sinks = nets_[f].sinks;
      const Sink want{g, port};
      if (std::count(sinks.begin(), sinks.end(), want) != 1)
        return fail("pin not registered exactly once in sink list");
    }
  }
  for (std::uint32_t o = 0; o < outputs_.size(); ++o) {
    const auto& sinks = nets_[outputs_[o]].sinks;
    const Sink want{kNullId, o};
    if (std::count(sinks.begin(), sinks.end(), want) != 1)
      return fail("output not registered exactly once in sink list");
  }
  if (!isAcyclic()) return fail("cycle detected");
  return true;
}

NetId Netlist::cloneCone(
    const Netlist& src, NetId srcNet,
    const std::unordered_map<std::string, NetId>& inputByName,
    std::unordered_map<NetId, NetId>& cache) {
  if (auto it = cache.find(srcNet); it != cache.end()) return it->second;
  const Net& sn = src.nets_[srcNet];
  NetId here = kNullId;
  switch (sn.srcKind) {
    case SourceKind::Input: {
      auto it = inputByName.find(src.inputNames_[sn.srcIdx]);
      SYSECO_CHECK(it != inputByName.end());
      here = it->second;
      break;
    }
    case SourceKind::Gate: {
      const Gate& sg = src.gates_[sn.srcIdx];
      std::vector<NetId> fanins;
      fanins.reserve(sg.fanins.size());
      for (NetId f : sg.fanins)
        fanins.push_back(cloneCone(src, f, inputByName, cache));
      here = addGate(sg.type, fanins);
      break;
    }
    case SourceKind::None:
      SYSECO_CHECK(false && "cloning an undriven net");
  }
  cache.emplace(srcNet, here);
  return here;
}

namespace {

constexpr const char* kRawMagic = "syseco-raw-netlist-v1";
// Caps on declared counts: a snapshot of a legitimate run never approaches
// these, and bounding them keeps a corrupt count from driving a giant
// allocation before any cross-checking can happen.
constexpr std::size_t kRawMaxItems = 50u * 1000u * 1000u;

/// Percent-encodes a label so it survives whitespace-delimited parsing.
/// The empty string encodes as "%" alone (never produced by the encoder
/// for non-empty input, since '%' itself is escaped).
std::string encodeRawName(const std::string& s) {
  if (s.empty()) return "%";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == '%' || u >= 0x7F) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool decodeRawName(const std::string& s, std::string* out) {
  if (s == "%") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out->push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return false;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

Status rawError(std::size_t line, const std::string& what) {
  return Status::invalidInput("raw netlist line " + std::to_string(line) +
                              ": " + what);
}

}  // namespace

void Netlist::dumpRaw(std::ostream& os) const {
  os << kRawMagic << '\n';
  os << "counts " << gates_.size() << ' ' << nets_.size() << ' '
     << inputs_.size() << ' ' << outputs_.size() << '\n';
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    os << "input " << inputs_[i] << ' ' << encodeRawName(inputNames_[i])
       << '\n';
  for (const Gate& g : gates_) {
    os << "gate " << static_cast<unsigned>(g.type) << ' ' << g.out << ' '
       << (g.dead ? 1 : 0) << ' ' << g.fanins.size();
    for (NetId f : g.fanins) os << ' ' << f;
    os << '\n';
  }
  for (const Net& n : nets_) {
    os << "net " << static_cast<unsigned>(n.srcKind) << ' ' << n.srcIdx << ' '
       << encodeRawName(n.name) << ' ' << n.sinks.size();
    for (const Sink& s : n.sinks) os << ' ' << s.gate << ' ' << s.port;
    os << '\n';
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o)
    os << "output " << outputs_[o] << ' ' << encodeRawName(outputNames_[o])
       << '\n';
  os << "end\n";
}

std::string Netlist::dumpRawString() const {
  std::ostringstream os;
  dumpRaw(os);
  return os.str();
}

Result<Netlist> Netlist::restoreRaw(std::istream& is) {
  std::string line;
  std::size_t lineNo = 0;
  auto nextLine = [&]() -> bool {
    while (std::getline(is, line)) {
      ++lineNo;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!nextLine() || line != kRawMagic)
    return rawError(lineNo == 0 ? 1 : lineNo, "bad magic");

  std::size_t nGates = 0, nNets = 0, nInputs = 0, nOutputs = 0;
  {
    if (!nextLine()) return rawError(lineNo + 1, "missing counts");
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> nGates >> nNets >> nInputs >> nOutputs) ||
        tag != "counts")
      return rawError(lineNo, "malformed counts");
    if (nGates > kRawMaxItems || nNets > kRawMaxItems ||
        nInputs > kRawMaxItems || nOutputs > kRawMaxItems)
      return rawError(lineNo, "count exceeds sanity cap");
  }

  Netlist nl;
  nl.gates_.resize(nGates);
  nl.nets_.resize(nNets);
  nl.inputs_.reserve(nInputs);
  nl.outputs_.reserve(nOutputs);

  auto checkNet = [&](std::uint64_t id) { return id < nNets; };
  auto checkGate = [&](std::uint64_t id) { return id < nGates; };

  for (std::size_t i = 0; i < nInputs; ++i) {
    if (!nextLine()) return rawError(lineNo + 1, "missing input line");
    std::istringstream ls(line);
    std::string tag, enc;
    std::uint64_t net = 0;
    if (!(ls >> tag >> net >> enc) || tag != "input" || !checkNet(net))
      return rawError(lineNo, "malformed input line");
    std::string name;
    if (!decodeRawName(enc, &name))
      return rawError(lineNo, "bad input name encoding");
    if (nl.inputIndex_.count(name))
      return rawError(lineNo, "duplicate input name");
    nl.inputIndex_.emplace(name, static_cast<std::uint32_t>(i));
    nl.inputs_.push_back(static_cast<NetId>(net));
    nl.inputNames_.push_back(std::move(name));
  }

  for (std::size_t g = 0; g < nGates; ++g) {
    if (!nextLine()) return rawError(lineNo + 1, "missing gate line");
    std::istringstream ls(line);
    std::string tag;
    std::uint64_t type = 0, out = 0, dead = 0, nFanins = 0;
    if (!(ls >> tag >> type >> out >> dead >> nFanins) || tag != "gate" ||
        type > static_cast<std::uint64_t>(GateType::Mux) || dead > 1 ||
        !checkNet(out) || nFanins > kRawMaxItems)
      return rawError(lineNo, "malformed gate line");
    Gate& gate = nl.gates_[g];
    gate.type = static_cast<GateType>(type);
    gate.out = static_cast<NetId>(out);
    gate.dead = dead != 0;
    gate.fanins.reserve(nFanins);
    for (std::uint64_t k = 0; k < nFanins; ++k) {
      std::uint64_t f = 0;
      if (!(ls >> f) || !checkNet(f))
        return rawError(lineNo, "malformed gate fanin");
      gate.fanins.push_back(static_cast<NetId>(f));
    }
  }

  for (std::size_t n = 0; n < nNets; ++n) {
    if (!nextLine()) return rawError(lineNo + 1, "missing net line");
    std::istringstream ls(line);
    std::string tag, enc;
    std::uint64_t srcKind = 0, srcIdx = 0, nSinks = 0;
    if (!(ls >> tag >> srcKind >> srcIdx >> enc >> nSinks) || tag != "net" ||
        srcKind > static_cast<std::uint64_t>(SourceKind::Gate) ||
        nSinks > kRawMaxItems)
      return rawError(lineNo, "malformed net line");
    Net& net = nl.nets_[n];
    net.srcKind = static_cast<SourceKind>(srcKind);
    switch (net.srcKind) {
      case SourceKind::Input:
        if (srcIdx >= nInputs) return rawError(lineNo, "net PI index range");
        break;
      case SourceKind::Gate:
        if (!checkGate(srcIdx)) return rawError(lineNo, "net gate index range");
        break;
      case SourceKind::None:
        if (srcIdx != kNullId) return rawError(lineNo, "undriven net srcIdx");
        break;
    }
    net.srcIdx = static_cast<std::uint32_t>(srcIdx);
    if (!decodeRawName(enc, &net.name))
      return rawError(lineNo, "bad net name encoding");
    net.sinks.reserve(nSinks);
    for (std::uint64_t k = 0; k < nSinks; ++k) {
      std::uint64_t g = 0, port = 0;
      if (!(ls >> g >> port)) return rawError(lineNo, "malformed sink");
      if (g != kNullId && !checkGate(g))
        return rawError(lineNo, "sink gate range");
      if (g == kNullId && port >= nOutputs)
        return rawError(lineNo, "sink output range");
      net.sinks.push_back(Sink{static_cast<GateId>(g),
                               static_cast<std::uint32_t>(port)});
    }
  }

  for (std::size_t o = 0; o < nOutputs; ++o) {
    if (!nextLine()) return rawError(lineNo + 1, "missing output line");
    std::istringstream ls(line);
    std::string tag, enc;
    std::uint64_t net = 0;
    if (!(ls >> tag >> net >> enc) || tag != "output" || !checkNet(net))
      return rawError(lineNo, "malformed output line");
    std::string name;
    if (!decodeRawName(enc, &name))
      return rawError(lineNo, "bad output name encoding");
    if (nl.outputIndex_.count(name))
      return rawError(lineNo, "duplicate output name");
    nl.outputIndex_.emplace(name, static_cast<std::uint32_t>(o));
    nl.outputs_.push_back(static_cast<NetId>(net));
    nl.outputNames_.push_back(std::move(name));
  }

  if (!nextLine() || line != "end")
    return rawError(lineNo, "missing end marker");
  if (nextLine()) return rawError(lineNo, "trailing content after end marker");

  std::string why;
  if (!nl.isWellFormed(&why))
    return Status::invalidInput("raw netlist fails well-formedness: " + why);
  return nl;
}

Result<Netlist> Netlist::restoreRawString(const std::string& text) {
  std::istringstream is(text);
  return restoreRaw(is);
}

const std::string& Netlist::inputName(std::uint32_t i) const {
  return inputNames_[i];
}
const std::string& Netlist::outputName(std::uint32_t o) const {
  return outputNames_[o];
}

std::uint32_t Netlist::findOutput(const std::string& name) const {
  auto it = outputIndex_.find(name);
  return it == outputIndex_.end() ? kNullId : it->second;
}
std::uint32_t Netlist::findInput(const std::string& name) const {
  auto it = inputIndex_.find(name);
  return it == inputIndex_.end() ? kNullId : it->second;
}

std::size_t Netlist::countLiveGates() const {
  std::size_t n = 0;
  for (const Gate& g : gates_)
    if (!g.dead) ++n;
  return n;
}

std::size_t Netlist::countLiveNets() const {
  // A net is live when it has a live source or any sink.
  std::size_t n = 0;
  for (NetId i = 0; i < nets_.size(); ++i) {
    const Net& net = nets_[i];
    const bool liveSrc =
        net.srcKind == SourceKind::Input ||
        (net.srcKind == SourceKind::Gate && !gates_[net.srcIdx].dead);
    if (liveSrc && (!net.sinks.empty() || net.srcKind == SourceKind::Input))
      ++n;
  }
  return n;
}

std::size_t Netlist::countSinks() const {
  std::size_t n = 0;
  for (const Net& net : nets_) n += net.sinks.size();
  return n;
}

}  // namespace syseco
