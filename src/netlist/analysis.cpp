#include "netlist/analysis.hpp"

#include <bit>

namespace syseco {

NetlistAnalysis::NetlistAnalysis(const Netlist& nl)
    : gatesAtBuild_(nl.numGatesTotal()),
      netsAtBuild_(nl.numNetsTotal()),
      topoOrder_(nl.topoOrder()),
      netLevels_(nl.netLevels()),
      supports_(nl),
      nl_(&nl) {
  const std::size_t numOutputs = nl.numOutputs();
  coneGates_.resize(numOutputs);
  outputSupports_.resize(numOutputs);
  coneMember_.assign((numOutputs * gatesAtBuild_ + 63) / 64, 0);
  for (std::uint32_t o = 0; o < numOutputs; ++o) {
    coneGates_[o] = nl.coneGates({nl.outputNet(o)});
    for (GateId g : coneGates_[o]) {
      const std::size_t bit = o * gatesAtBuild_ + g;
      coneMember_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
    }
    // The support list falls out of the already-built bitset table.
    const std::vector<std::uint64_t> mask =
        supports_.supportMask(nl.outputNet(o));
    for (std::size_t w = 0; w < mask.size(); ++w) {
      std::uint64_t bits = mask[w];
      while (bits) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const std::size_t pi = w * 64 + static_cast<std::size_t>(b);
        if (pi < nl.numInputs())
          outputSupports_[o].push_back(static_cast<std::uint32_t>(pi));
      }
    }
  }
}

std::vector<NetId> NetlistAnalysis::outputConeNets(std::uint32_t o) const {
  std::vector<NetId> nets;
  nets.reserve(coneGates_[o].size());
  for (GateId g : coneGates_[o]) nets.push_back(nl_->gate(g).out);
  return nets;
}

}  // namespace syseco
