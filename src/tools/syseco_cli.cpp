// syseco command-line tool.
//
// Reads an optimized implementation and a revised specification (netlist
// text format, BLIF or structural Verilog, selected by extension), runs one
// of the ECO engines, reports the patch attributes and writes the rectified
// design.
//
//   syseco_cli --impl C.blif --spec Cprime.blif [options]
//
// Options:
//   --engine syseco|deltasyn|conesynth|exactfix|interpfix     (default: syseco)
//   --out FILE          write the rectified netlist (.blif/.v/.netlist)
//   --report FILE       write a machine-readable JSON run report
//   --samples N         sampling-domain size             (default 64)
//   --max-points M      rectification points per try     (default 3)
//   --deadline-ms MS    wall-clock deadline for the whole run
//   --total-conflict-budget N   SAT conflicts across all phases
//   --bdd-node-budget N         BDD nodes across all managers
//   --level-driven      timing-aware rewire selection
//   --uniform-sampling  ablation: uniform instead of error-domain samples
//   --no-sweep          disable the patch-input sweeping post-process
//   --jobs N            worker threads for per-output rectification
//                       (default 1; results are bit-identical for every N.
//                       Runs with a deadline or budget stay sequential)
//   --isolate           run per-output workers in forked, rlimit-sandboxed
//                       subprocesses (syseco only); a worker crash, OOM,
//                       timeout or garbled reply is retried with backoff and
//                       finally quarantined to the cone-clone fallback
//                       instead of taking the run down. Clean isolated runs
//                       are bit-identical to in-process --jobs runs.
//   --isolate-max-attempts N  contained failures before quarantine (def. 3)
//   --isolate-mem-mb N        per-worker RLIMIT_AS ceiling (0 = inherit)
//   --isolate-cpu-s S         per-worker RLIMIT_CPU ceiling (0 = inherit)
//   --isolate-wall-ms MS      per-attempt wall deadline (default 120000;
//                             0 disables; SIGTERM, then SIGKILL)
//   --isolate-backoff-ms MS   base retry backoff, doubled per attempt and
//                             capped at 5000ms, with deterministic jitter
//   --workers LIST      distribute per-output workers over a TCP fleet of
//                       `--serve-worker` agents (comma-separated host:port
//                       list; syseco only, mutually exclusive with
//                       --isolate). Tasks carry leases renewed by agent
//                       heartbeats; disconnects, truncated frames, lease
//                       expiries and refused connections are classified,
//                       retried with the --isolate backoff/quarantine rules,
//                       and duplicate results from reassigned tasks are
//                       discarded by epoch. When fewer than
//                       --fleet-min-workers agents remain usable the run
//                       degrades to in-process execution. Verdict records
//                       are bit-identical to local --jobs runs.
//   --fleet-lease-ms MS       per-task lease (default 10000); an agent
//                             heartbeats every quarter-lease
//   --fleet-min-workers N     usable-agent threshold before degrading to
//                             in-process execution (default 1)
//   --fleet-connect-timeout-ms MS  per-connect deadline (default 2000)
//   --serve-worker PORT run as a fleet agent: listen on PORT (0 = kernel-
//                       assigned; see --port-file) and serve task requests
//                       until stopped. Ignores --impl/--spec; the case
//                       arrives over the wire, content-addressed by crc32.
//   --serve-once        agent: exit after the first supervisor disconnects
//   --serve-cache-slots N  agent: resident-case LRU slots (netlist families
//                       kept decoded+analyzed; default 4, LRU-evicted)
//   --port-file FILE    agent/daemon: write the actually-bound port to FILE
//                       (atomic; what supervisors and scripts poll for).
//                       A leftover file from a previous life is detected,
//                       warned about and overwritten on startup; the file
//                       is removed again on clean exit.
//   --serve PORT        run as the resident ECO service: accept whole
//                       rectification jobs over TCP (see --connect),
//                       persist every queue transition to a write-ahead
//                       log under --serve-state, dispatch jobs to a
//                       supervised pool of exec'd engine workers, and heal
//                       worker crashes by re-dispatching with --resume.
//                       kill -9 of the daemon recovers the queue on
//                       restart with bit-identical verdict records.
//   --serve-state DIR   daemon: state directory (WAL + per-job artifacts;
//                       required with --serve)
//   --serve-pool N      daemon: concurrent job workers        (default 1)
//   --serve-max-jobs N  daemon: admission cap on resident (queued+running)
//                       jobs                                  (default 16)
//   --serve-max-tenant N   daemon: per-tenant resident-job cap (default 8)
//   --serve-max-bytes-mb N daemon: resident payload watermark (default 256)
//   --serve-attempts N  daemon: worker deaths per job before quarantine
//                       (default 3)
//                       With --workers, the daemon also dispatches whole
//                       queued jobs to --serve-worker agents (case upload +
//                       lease + epoch protocol); when the usable fleet
//                       shrinks below --fleet-min-workers it degrades to
//                       the local pool.
//   --batch MANIFEST    sweep mode: run every case of a JSON manifest
//                       ({"cases":[{"name","impl","spec"[,"seed"][,"jobs"]}
//                       ...]}) through a WAL-backed case ledger. Cases are
//                       dispatched whole to --workers agents (or the local
//                       pool), retried with deterministic backoff, and
//                       quarantined past --serve-attempts. kill -9 of the
//                       driver resumes with --resume DIR, draining to
//                       verdicts bit-identical to serial local runs.
//   --batch-state DIR   batch: fresh sweep state directory (ledger WAL +
//                       per-case artifacts); refuses a dir that already
//                       holds a sweep (use --resume DIR for that)
//   --connect HOST:PORT client mode: submit --impl/--spec as a job to a
//                       --serve daemon, wait for it, and write --out /
//                       --report from the delivered artifacts. Structured
//                       rejections (queue-full, tenant-quota, ...) print
//                       their reason and exit 3.
//   --tenant NAME       client: admission-control tenant    (default
//                       "default")
//   --detach            client: exit right after acceptance; the job
//                       survives the connection (poll with --status)
//   --status JOB        client: print one job's queue state and exit
//   --wait JOB          client: block until JOB finishes, then deliver
//                       artifacts and exit with the job's verdict
//   --cancel JOB        client: cancel JOB (terminates a running worker)
//   --submit-fault SPEC client test hook: SYSECO_FAULT_INJECT spec exported
//                       into the job's worker process
//   --fault-plan FILE   chaos hook: load a seeded fault schedule (see
//                       util/fault_plan.hpp for the `at <hit> <site>
//                       <kind> [arg]` format) and export it via
//                       SYSECO_FAULT_PLAN so exec'd workers inherit it.
//                       One-shot firings are consumed through FILE.fired,
//                       so a restarted process does not re-inject them.
//   --seed S            RNG seed                          (default 1)
//   --journal DIR       crash-safe run journal: one checksummed record per
//                       completed per-output rectification (syseco only)
//   --resume DIR        replay DIR's journal, independently re-certify the
//                       newest checkpoint with fresh SAT miters, and re-run
//                       only the remaining outputs (implies --journal DIR)
//   --audit LEVEL       netlist invariant auditing: off|boundaries|paranoid
//                       (default off; boundaries checks the working netlist
//                       at phase boundaries, paranoid adds deep checks)
//   --no-oracle         use the legacy single-route SAT verification instead
//                       of the tri-modal certification oracle (syseco only)
//   --oracle-bdd-budget N  oracle BDD-route node budget (default 1048576;
//                       exhaustion reports skipped(budget), never a verdict)
//   --repro-dir DIR     package every oracle disagreement into an atomic
//                       repro bundle (netlists, patch, seed, minimized
//                       counterexample, build info) under DIR
//   --version           print build info (git hash, compiler) and exit
//   --verbose           trace the search to stderr
//
// Exit codes:
//   0   rectification SAT-verified, no resource limit interfered
//   1   verification failed
//   2   usage error or internal failure (including a failed --audit)
//   3   invalid input (unreadable/malformed file, nonsensical options,
//       a journal recorded for different inputs)
//   4   rectification SAT-verified, but a resource limit degraded the
//       search (some outputs fell back to cone cloning; see the report),
//       or the certification oracle quarantined a refuted output
//   130 interrupted (SIGINT/SIGTERM) with progress journaled; rerun with
//       --resume to continue from the last committed checkpoint

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/exactfix.hpp"
#include "eco/fleet.hpp"
#include "eco/report.hpp"
#include "eco/resume.hpp"
#include "eco/syseco.hpp"
#include "itp/interp_fix.hpp"
#include "io/blif_io.hpp"
#include "io/journal_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "serve/batch.hpp"
#include "serve/serve.hpp"
#include "util/atomic_file.hpp"
#include "util/socket.hpp"
#include "util/build_info.hpp"
#include "util/fault.hpp"
#include "util/fault_plan.hpp"
#include "util/journal.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

using namespace syseco;

constexpr int kExitClean = 0;
constexpr int kExitVerifyFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInvalidInput = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitInterrupted = 130;  ///< 128 + SIGINT, journal intact

/// First signal: finish the in-flight output, journal a clean interrupted
/// record, exit kExitInterrupted. Second signal: give up immediately (the
/// journal is still consistent - its last append either committed or will
/// be dropped as a torn record on resume).
volatile std::sig_atomic_t gInterrupted = 0;

/// Agent-mode mirror of gInterrupted (the fleet agent polls a
/// std::atomic<bool>; lock-free stores are async-signal-safe).
std::atomic<bool> gAgentStop{false};

void onSignal(int /*sig*/) {
  if (gInterrupted) std::_Exit(kExitInterrupted);
  gInterrupted = 1;
  gAgentStop.store(true, std::memory_order_relaxed);
}

void installSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = onSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Netlist> loadAnyChecked(const std::string& path) {
  if (endsWith(path, ".blif")) return loadBlifChecked(path);
  if (endsWith(path, ".v")) return loadVerilogChecked(path);
  return loadNetlistChecked(path);
}

void saveAny(const std::string& path, const Netlist& nl) {
  if (endsWith(path, ".blif")) {
    saveBlif(path, nl);
  } else if (endsWith(path, ".v")) {
    saveVerilog(path, nl);
  } else {
    saveNetlist(path, nl);
  }
}

std::string formatOf(const std::string& path) {
  if (endsWith(path, ".blif")) return "blif";
  if (endsWith(path, ".v")) return "v";
  return "netlist";
}

Result<std::string> readFileText(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return Status::invalidInput("cannot open '" + path + "' for reading");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// The binary the daemon execs per job: /proc/self/exe when resolvable
/// (robust against chdir and PATH games), argv[0] otherwise.
std::string selfExePath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

/// Port-file hygiene, shared by the agent and the daemon: a file already
/// present at startup is stale state from a previous life (a crash skipped
/// the cleanup) - warn and overwrite rather than let a supervisor dial a
/// dead port. removeStalePortFile() runs before binding; the exit paths
/// unlink the file so the stale case stays rare.
void removeStalePortFile(const std::string& path) {
  if (path.empty()) return;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return;
  std::fprintf(stderr,
               "warning: overwriting stale port file %s (left by a "
               "previous run)\n",
               path.c_str());
  ::unlink(path.c_str());
}

void cleanupPortFile(const std::string& path) {
  if (!path.empty()) ::unlink(path.c_str());
}

/// Shared --port-file hook: atomic write of the actually-bound port.
std::function<void(std::uint16_t)> portFileHook(const std::string& path) {
  return [path](std::uint16_t bound) {
    const Status s = writeFileAtomic(path, std::to_string(bound) + "\n");
    if (!s.isOk())
      std::fprintf(stderr, "warning: cannot write port file %s: %s\n",
                   path.c_str(), s.toString().c_str());
  };
}

/// Atomic failure report: a run that dies before producing diagnostics
/// still leaves machine-readable evidence of what went wrong. Best-effort -
/// a report-write failure must not mask the original error.
void writeFailureReport(const std::string& reportPath,
                        const std::string& engine, const std::string& error,
                        int exitCode) {
  if (reportPath.empty()) return;
  std::ostringstream rf;
  rf << "{\n";
  rf << "  \"engine\": \"" << jsonEscape(engine) << "\",\n";
  rf << "  \"success\": false,\n";
  rf << "  \"degraded\": false,\n";
  rf << "  \"exit_code\": " << exitCode << ",\n";
  rf << "  \"error\": \"" << jsonEscape(error) << "\",\n";
  rf << "  \"outputs\": []\n";
  rf << "}\n";
  const Status s = writeFileAtomic(reportPath, rf.str());
  if (!s.isOk())
    std::fprintf(stderr, "warning: cannot write report file %s: %s\n",
                 reportPath.c_str(), s.toString().c_str());
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --impl FILE --spec FILE [--engine "
               "syseco|deltasyn|conesynth|exactfix|interpfix]\n"
               "          [--out FILE] [--report FILE] [--samples N] "
               "[--max-points M]\n"
               "          [--deadline-ms MS] [--total-conflict-budget N] "
               "[--bdd-node-budget N]\n"
               "          [--bdd-reorder off|sift|sift-converge] "
               "[--bdd-cache-bits N]\n"
               "          [--bdd-reorder-threshold N] "
               "[--rank structural|sharpsat]\n"
               "          [--patch-minimize auto|on|off]\n"
               "          [--level-driven] [--uniform-sampling] [--no-sweep]"
               "\n          [--jobs N] [--isolate] [--isolate-max-attempts N]"
               " [--isolate-mem-mb N]\n"
               "          [--isolate-cpu-s S] [--isolate-wall-ms MS] "
               "[--isolate-backoff-ms MS]\n"
               "          [--workers host:port,...] [--fleet-lease-ms MS] "
               "[--fleet-min-workers N]\n"
               "          [--fleet-connect-timeout-ms MS]\n"
               "          [--journal DIR] [--resume DIR] "
               "[--audit off|boundaries|paranoid]\n"
               "          [--no-oracle] [--oracle-bdd-budget N] "
               "[--repro-dir DIR]\n"
               "          [--fault-plan FILE] [--seed S] [--version] "
               "[--verbose]\n"
               "       %s --serve-worker PORT [--serve-once] "
               "[--serve-cache-slots N]\n"
               "          [--port-file FILE] [--verbose]\n"
               "       %s --serve PORT --serve-state DIR [--serve-pool N] "
               "[--serve-max-jobs N]\n"
               "          [--serve-max-tenant N] [--serve-max-bytes-mb N] "
               "[--serve-attempts N]\n"
               "          [--port-file FILE] [--verbose]\n"
               "       %s --batch MANIFEST (--batch-state DIR | --resume "
               "DIR)\n"
               "          [--workers host:port,...] [--fleet-lease-ms MS] "
               "[--fleet-min-workers N]\n"
               "          [--serve-pool N] [--serve-attempts N] [--seed S] "
               "[--jobs N] [--verbose]\n"
               "       %s --connect HOST:PORT --impl FILE --spec FILE "
               "[--tenant NAME]\n"
               "          [--detach] [--out FILE] [--report FILE] [--seed S] "
               "[--jobs N] [--isolate]\n"
               "       %s --connect HOST:PORT "
               "--status JOB | --wait JOB | --cancel JOB\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  std::exit(kExitUsage);
}

}  // namespace

int main(int argc, char** argv) {
  std::string implPath, specPath, outPath, reportPath, engine = "syseco";
  std::string journalDir, resumeDir, portFilePath;
  int servePort = -1;  ///< >= 0: run as a fleet agent instead of an engine
  bool serveOnce = false;
  std::size_t serveCacheSlots = 4;
  int daemonPort = -1;  ///< >= 0: run as the resident --serve daemon
  std::string serveStateDir;
  std::size_t servePool = 1;
  serve::AdmissionLimits serveLimits;
  int serveAttempts = 3;
  std::string connectSpec, tenant = "default", submitFault;
  std::string faultPlanPath;
  std::string statusJob, waitJob, cancelJob;
  std::string batchManifest, batchStateDir;
  bool detach = false;
  SysecoOptions opt;
  // The exact-fix baseline keeps reordering off unless the user asks: its
  // ISOP patch shapes depend on the variable order.
  bool bddReorderSet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Both spellings work: "--audit paranoid" and "--audit=paranoid".
    std::optional<std::string> inlineValue;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inlineValue = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inlineValue) {
        std::string v = std::move(*inlineValue);
        inlineValue.reset();
        return v;
      }
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--impl") implPath = value();
      else if (arg == "--spec") specPath = value();
      else if (arg == "--out") outPath = value();
      else if (arg == "--report") reportPath = value();
      else if (arg == "--engine") engine = value();
      else if (arg == "--samples") opt.numSamples =
          static_cast<std::size_t>(std::stoul(value()));
      else if (arg == "--max-points") opt.maxPoints = std::stoi(value());
      else if (arg == "--deadline-ms")
        opt.deadlineSeconds = std::stod(value()) / 1000.0;
      else if (arg == "--total-conflict-budget")
        opt.totalConflictBudget = std::stoll(value());
      else if (arg == "--bdd-node-budget")
        opt.totalBddNodeBudget = std::stoll(value());
      else if (arg == "--bdd-reorder") {
        const std::string mode = value();
        if (mode == "off") opt.bddReorder = BddReorder::kOff;
        else if (mode == "sift") opt.bddReorder = BddReorder::kSift;
        else if (mode == "sift-converge")
          opt.bddReorder = BddReorder::kSiftConverge;
        else throw std::invalid_argument(
            "expected off|sift|sift-converge, got '" + mode + "'");
        bddReorderSet = true;
      }
      else if (arg == "--bdd-cache-bits")
        opt.bddCacheBits = static_cast<std::uint32_t>(std::stoul(value()));
      else if (arg == "--bdd-reorder-threshold")
        opt.bddReorderThreshold =
            static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--rank") {
        const std::string mode = value();
        if (mode == "structural") opt.rankMode = RankMode::kStructural;
        else if (mode == "sharpsat") opt.rankMode = RankMode::kSharpSat;
        else throw std::invalid_argument(
            "expected structural|sharpsat, got '" + mode + "'");
      }
      else if (arg == "--patch-minimize") {
        const std::string mode = value();
        if (mode == "auto") opt.minimizePatch = PatchMinimize::kAuto;
        else if (mode == "on") opt.minimizePatch = PatchMinimize::kOn;
        else if (mode == "off") opt.minimizePatch = PatchMinimize::kOff;
        else throw std::invalid_argument("expected auto|on|off, got '" +
                                         mode + "'");
      }
      else if (arg == "--level-driven") opt.levelDriven = true;
      else if (arg == "--uniform-sampling") opt.useErrorDomainSampling = false;
      else if (arg == "--no-sweep") opt.enableSweeping = false;
      else if (arg == "--jobs") opt.jobs =
          static_cast<std::size_t>(std::stoul(value()));
      else if (arg == "--isolate") opt.isolate = true;
      else if (arg == "--isolate-max-attempts")
        opt.isolateMaxAttempts = std::stoi(value());
      else if (arg == "--isolate-mem-mb")
        opt.isolateMemoryBytes = std::stoull(value()) * 1024 * 1024;
      else if (arg == "--isolate-cpu-s")
        opt.isolateCpuSeconds = std::stod(value());
      else if (arg == "--isolate-wall-ms")
        opt.isolateWallSeconds = std::stod(value()) / 1000.0;
      else if (arg == "--isolate-backoff-ms")
        opt.isolateBackoffMs = std::stod(value());
      else if (arg == "--workers") {
        std::string list = value();
        std::size_t pos = 0;
        while (pos <= list.size()) {
          const std::size_t comma = list.find(',', pos);
          const std::string entry =
              list.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos);
          if (!entry.empty()) opt.workers.push_back(entry);
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        if (opt.workers.empty())
          throw std::invalid_argument("expected a host:port list");
      }
      else if (arg == "--fleet-lease-ms")
        opt.fleetLeaseSeconds = std::stod(value()) / 1000.0;
      else if (arg == "--fleet-min-workers")
        opt.fleetMinWorkers = std::stoi(value());
      else if (arg == "--fleet-connect-timeout-ms")
        opt.fleetConnectTimeoutMs = std::stoi(value());
      else if (arg == "--serve-worker") {
        servePort = std::stoi(value());
        if (servePort < 0 || servePort > 65535)
          throw std::invalid_argument("port must be in 0..65535");
      }
      else if (arg == "--serve-once") serveOnce = true;
      else if (arg == "--serve-cache-slots") {
        serveCacheSlots = static_cast<std::size_t>(std::stoul(value()));
        if (serveCacheSlots == 0)
          throw std::invalid_argument("cache slots must be >= 1");
      }
      else if (arg == "--serve") {
        daemonPort = std::stoi(value());
        if (daemonPort < 0 || daemonPort > 65535)
          throw std::invalid_argument("port must be in 0..65535");
      }
      else if (arg == "--serve-state") serveStateDir = value();
      else if (arg == "--serve-pool") {
        servePool = static_cast<std::size_t>(std::stoul(value()));
        if (servePool == 0)
          throw std::invalid_argument("pool size must be >= 1");
      }
      else if (arg == "--serve-max-jobs")
        serveLimits.maxResidentJobs =
            static_cast<std::size_t>(std::stoul(value()));
      else if (arg == "--serve-max-tenant")
        serveLimits.maxPerTenant =
            static_cast<std::size_t>(std::stoul(value()));
      else if (arg == "--serve-max-bytes-mb")
        serveLimits.maxResidentBytes = std::stoull(value()) * 1024 * 1024;
      else if (arg == "--serve-attempts") {
        serveAttempts = std::stoi(value());
        if (serveAttempts < 1)
          throw std::invalid_argument("attempts must be >= 1");
      }
      else if (arg == "--batch") batchManifest = value();
      else if (arg == "--batch-state") batchStateDir = value();
      else if (arg == "--connect") connectSpec = value();
      else if (arg == "--tenant") tenant = value();
      else if (arg == "--detach") detach = true;
      else if (arg == "--status") statusJob = value();
      else if (arg == "--wait") waitJob = value();
      else if (arg == "--cancel") cancelJob = value();
      else if (arg == "--submit-fault") submitFault = value();
      else if (arg == "--fault-plan") faultPlanPath = value();
      else if (arg == "--port-file") portFilePath = value();
      else if (arg == "--seed") opt.seed = std::stoull(value());
      else if (arg == "--journal") journalDir = value();
      else if (arg == "--resume") resumeDir = value();
      else if (arg == "--audit") {
        const std::string level = value();
        const auto parsed = auditLevelFromName(level);
        if (!parsed) throw std::invalid_argument(
            "expected off|boundaries|paranoid, got '" + level + "'");
        opt.audit = *parsed;
      }
      else if (arg == "--no-oracle") opt.oracle.enabled = false;
      else if (arg == "--oracle-bdd-budget")
        opt.oracle.bddNodeBudget =
            static_cast<std::size_t>(std::stoull(value()));
      else if (arg == "--repro-dir") opt.reproDir = value();
      else if (arg == "--version") {
        std::printf("%s\n", buildInfoLine().c_str());
        return kExitClean;
      }
      else if (arg == "--verbose") opt.verbose = true;
      else if (arg == "--help" || arg == "-h") usage(argv[0]);
      else {
        std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
        usage(argv[0]);
      }
      if (inlineValue) {
        std::fprintf(stderr, "option '%s' does not take a value\n",
                     arg.c_str());
        usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad value for option '%s': %s\n", arg.c_str(),
                   e.what());
      // reportPath holds whatever was parsed so far; if --report already
      // appeared, record the failure there too so automation sees it.
      writeFailureReport(reportPath, engine,
                         "bad value for option '" + arg + "': " + e.what(),
                         kExitInvalidInput);
      return kExitInvalidInput;
    }
  }
  // Chaos schedules load before any mode dispatch, so every storage and
  // process fault site in daemon, batch, agent and engine modes is armed
  // from the first syscall. Exec'd workers inherit SYSECO_FAULT_PLAN and
  // arm themselves the same way (minus entries already consumed through
  // the .fired log).
  if (!faultPlanPath.empty())
    ::setenv("SYSECO_FAULT_PLAN", faultPlanPath.c_str(), 1);
  if (const Status s = fault::loadFaultPlanFromEnv(); !s.isOk()) {
    std::fprintf(stderr, "error: %s\n", s.toString().c_str());
    return kExitInvalidInput;
  }
  if (servePort >= 0) {
    // Fleet-agent mode: serve task requests over TCP until stopped. No
    // netlists are loaded here - the case arrives over the wire.
    installSignalHandlers();
    removeStalePortFile(portFilePath);
    FleetAgentOptions agentOpt;
    agentOpt.port = static_cast<std::uint16_t>(servePort);
    agentOpt.serveOnce = serveOnce;
    agentOpt.verbose = opt.verbose;
    agentOpt.cacheSlots = serveCacheSlots;
    agentOpt.stop = &gAgentStop;
    if (!portFilePath.empty()) agentOpt.boundHook = portFileHook(portFilePath);
    const Status served = runWorkerAgent(agentOpt);
    cleanupPortFile(portFilePath);
    if (!served.isOk()) {
      std::fprintf(stderr, "error: %s\n", served.toString().c_str());
      return kExitUsage;
    }
    return kExitClean;  // a signal-initiated stop is the normal shutdown
  }
  if (daemonPort >= 0) {
    // Resident-daemon mode: accept whole rectification jobs over TCP,
    // queue them durably, dispatch to a supervised pool of exec'd engine
    // workers. Survives kill -9 by construction (see src/serve/).
    if (serveStateDir.empty()) {
      std::fprintf(stderr, "error: --serve needs --serve-state DIR\n");
      return kExitUsage;
    }
    installSignalHandlers();
    removeStalePortFile(portFilePath);
    serve::ServeOptions so;
    so.port = static_cast<std::uint16_t>(daemonPort);
    so.stateDir = serveStateDir;
    so.selfExe = selfExePath(argv[0]);
    so.poolSize = servePool;
    so.limits = serveLimits;
    so.maxAttempts = serveAttempts;
    so.backoffBaseMs = opt.isolateBackoffMs;
    so.workers = opt.workers;
    so.fleetLeaseSeconds = opt.fleetLeaseSeconds;
    so.fleetConnectTimeoutMs = opt.fleetConnectTimeoutMs;
    so.fleetMinWorkers = opt.fleetMinWorkers;
    so.verbose = opt.verbose;
    so.stop = &gAgentStop;
    if (!portFilePath.empty()) so.boundHook = portFileHook(portFilePath);
    const Status served = serve::runServeDaemon(so);
    cleanupPortFile(portFilePath);
    if (!served.isOk()) {
      std::fprintf(stderr, "error: %s\n", served.toString().c_str());
      return served.code() == StatusCode::kInvalidInput ? kExitInvalidInput
                                                        : kExitUsage;
    }
    return kExitClean;
  }
  if (!batchManifest.empty()) {
    // Batch-sweep mode: drive a manifest of whole cases through the
    // WAL-backed batch ledger - remote over --workers agents while the
    // fleet is healthy, a local watchdog pool otherwise. SIGKILL-safe:
    // re-run with --resume to drain the same sweep to identical verdicts.
    if (!batchStateDir.empty() && !resumeDir.empty()) {
      std::fprintf(stderr,
                   "error: --batch takes --batch-state DIR (fresh sweep) or "
                   "--resume DIR (continue), not both\n");
      return kExitUsage;
    }
    installSignalHandlers();
    serve::BatchOptions bo;
    bo.manifestPath = batchManifest;
    bo.expectResume = !resumeDir.empty();
    bo.stateDir = bo.expectResume ? resumeDir : batchStateDir;
    if (bo.stateDir.empty()) {
      std::fprintf(stderr,
                   "error: --batch needs --batch-state DIR (fresh sweep) or "
                   "--resume DIR (continue)\n");
      return kExitUsage;
    }
    bo.selfExe = selfExePath(argv[0]);
    bo.workers = opt.workers;
    bo.leaseSeconds = opt.fleetLeaseSeconds;
    bo.connectTimeoutMs = opt.fleetConnectTimeoutMs;
    bo.minWorkers = opt.fleetMinWorkers;
    bo.poolSize = servePool;
    bo.maxAttempts = serveAttempts;
    bo.backoffBaseMs = opt.isolateBackoffMs;
    bo.defaultSeed = opt.seed;
    bo.defaultJobs = static_cast<std::int64_t>(opt.jobs);
    bo.verbose = opt.verbose;
    bo.stop = &gAgentStop;
    Result<serve::BatchOutcome> ran = serve::runBatch(bo);
    if (!ran.isOk()) {
      std::fprintf(stderr, "error: %s\n", ran.status().toString().c_str());
      return ran.status().code() == StatusCode::kInvalidInput
                 ? kExitInvalidInput
                 : kExitUsage;
    }
    const serve::BatchOutcome& oc = ran.value();
    std::printf("batch: %zu done, %zu failed%s%s\n", oc.done, oc.failed,
                oc.degradedToLocal ? ", degraded to local pool" : "",
                oc.interrupted ? ", interrupted" : "");
    if (oc.interrupted) return kExitInterrupted;
    if (oc.failed > 0) return kExitDegraded;
    return static_cast<int>(oc.worstCaseExit);
  }
  if (!connectSpec.empty()) {
    // Client mode: talk to a --serve daemon. Transport failures exit 2;
    // structured rejections and unknown jobs exit 3; otherwise the job's
    // own verdict becomes the client's exit code.
    Result<std::pair<std::string, std::uint16_t>> hostPort =
        net::parseHostPort(connectSpec);
    if (!hostPort.isOk()) {
      std::fprintf(stderr, "error: %s\n",
                   hostPort.status().toString().c_str());
      return kExitInvalidInput;
    }
    Result<serve::ServeClient> connected = serve::ServeClient::connect(
        hostPort.value().first, hostPort.value().second, 5000);
    if (!connected.isOk()) {
      std::fprintf(stderr, "error: %s\n",
                   connected.status().toString().c_str());
      return kExitUsage;
    }
    serve::ServeClient client = connected.take();
    // Delivers a finished job's artifacts and maps its state to an exit
    // code: the daemon's verdict passes through for done jobs.
    auto finish = [&](const serve::JobState& st) -> int {
      std::printf("job %s: %s", st.job.c_str(), st.state.c_str());
      if (st.state == "done")
        std::printf(" (exit %lld, attempt %lld)",
                    static_cast<long long>(st.exitCode),
                    static_cast<long long>(st.attempt));
      else if (!st.cause.empty())
        std::printf(" (%s: %s)", st.cause.c_str(), st.detail.c_str());
      std::printf("\n");
      if (!reportPath.empty() && !st.reportText.empty()) {
        const Status s = writeFileAtomic(reportPath, st.reportText);
        if (!s.isOk())
          std::fprintf(stderr, "warning: cannot write %s: %s\n",
                       reportPath.c_str(), s.toString().c_str());
        else
          std::printf("run report written to %s\n", reportPath.c_str());
      }
      if (!outPath.empty() && !st.outText.empty()) {
        const Status s = writeFileAtomic(outPath, st.outText);
        if (!s.isOk())
          std::fprintf(stderr, "warning: cannot write %s: %s\n",
                       outPath.c_str(), s.toString().c_str());
        else
          std::printf("rectified design written to %s\n", outPath.c_str());
      }
      if (st.state == "done") return static_cast<int>(st.exitCode);
      if (st.state == "failed") return kExitUsage;
      if (st.state == "cancelled") return kExitInterrupted;
      return kExitInvalidInput;  // unknown job
    };
    auto clientAct = [&]() -> Result<int> {
      if (!cancelJob.empty()) {
        Result<serve::JobState> st = client.cancel(cancelJob);
        if (!st.isOk()) return st.status();
        std::printf("job %s: %s\n", st.value().job.c_str(),
                    st.value().state.c_str());
        return st.value().state == "unknown" ? kExitInvalidInput
                                             : kExitClean;
      }
      if (!statusJob.empty()) {
        Result<serve::JobState> st = client.status(statusJob);
        if (!st.isOk()) return st.status();
        std::printf("job %s: %s", st.value().job.c_str(),
                    st.value().state.c_str());
        if (!st.value().cause.empty())
          std::printf(" (%s: %s)", st.value().cause.c_str(),
                      st.value().detail.c_str());
        std::printf("\n");
        return st.value().state == "unknown" ? kExitInvalidInput
                                             : kExitClean;
      }
      if (!waitJob.empty()) {
        Result<serve::JobState> st = client.wait(waitJob);
        if (!st.isOk()) return st.status();
        return finish(st.value());
      }
      if (implPath.empty() || specPath.empty()) usage(argv[0]);
      Result<std::string> implText = readFileText(implPath);
      if (!implText.isOk()) return implText.status();
      Result<std::string> specText = readFileText(specPath);
      if (!specText.isOk()) return specText.status();
      serve::SubmitRequest req;
      req.tenant = tenant;
      req.format = formatOf(implPath);
      req.implText = implText.take();
      req.specText = specText.take();
      req.seed = opt.seed;
      req.jobs = static_cast<std::int64_t>(opt.jobs);
      req.isolate = opt.isolate;
      req.detach = detach;
      req.faultInject = submitFault;
      Result<serve::SubmitOutcome> sub = client.submit(req);
      if (!sub.isOk()) return sub.status();
      if (!sub.value().accepted) {
        std::fprintf(stderr, "rejected: %s (%s)\n",
                     sub.value().rejected.reason.c_str(),
                     sub.value().rejected.detail.c_str());
        return kExitInvalidInput;
      }
      std::printf("accepted: job %s\n", sub.value().job.c_str());
      if (detach) return kExitClean;
      Result<serve::JobState> st = client.wait(sub.value().job);
      if (!st.isOk()) return st.status();
      return finish(st.value());
    };
    Result<int> rc = clientAct();
    if (!rc.isOk()) {
      std::fprintf(stderr, "error: %s\n", rc.status().toString().c_str());
      return kExitUsage;
    }
    return rc.value();
  }
  if (implPath.empty() || specPath.empty()) usage(argv[0]);
  if (!resumeDir.empty() && journalDir.empty()) journalDir = resumeDir;
  if (!journalDir.empty() && engine != "syseco") {
    std::fprintf(stderr,
                 "error: --journal/--resume support only the syseco engine\n");
    writeFailureReport(reportPath, engine,
                       "--journal/--resume support only the syseco engine",
                       kExitUsage);
    return kExitUsage;
  }
  if (!opt.workers.empty() && engine != "syseco") {
    std::fprintf(stderr, "error: --workers supports only the syseco engine\n");
    writeFailureReport(reportPath, engine,
                       "--workers supports only the syseco engine", kExitUsage);
    return kExitUsage;
  }

  try {
    Result<Netlist> implLoaded = loadAnyChecked(implPath);
    if (!implLoaded.isOk()) {
      std::fprintf(stderr, "error: %s\n",
                   implLoaded.status().toString().c_str());
      writeFailureReport(reportPath, engine, implLoaded.status().toString(),
                         kExitInvalidInput);
      return kExitInvalidInput;
    }
    Result<Netlist> specLoaded = loadAnyChecked(specPath);
    if (!specLoaded.isOk()) {
      std::fprintf(stderr, "error: %s\n",
                   specLoaded.status().toString().c_str());
      writeFailureReport(reportPath, engine, specLoaded.status().toString(),
                         kExitInvalidInput);
      return kExitInvalidInput;
    }
    const Netlist impl = implLoaded.take();
    const Netlist spec = specLoaded.take();
    std::printf("implementation: %zu gates, %zu inputs, %zu outputs\n",
                impl.countLiveGates(), impl.numInputs(), impl.numOutputs());
    std::printf("revised spec:   %zu gates\n", spec.countLiveGates());

    // Post-parse boundary audit: the parsers validate their own formats,
    // but a structurally corrupt netlist (e.g. a handcrafted file that
    // round-trips the reader) should be diagnosed here, not after the
    // engine has chewed on it. Clean audits are folded into the report's
    // boundary accounting after the run.
    std::vector<AuditReport> postParseAudits;
    if (opt.audit != AuditLevel::kOff) {
      const std::pair<const char*, const Netlist*> toAudit[] = {
          {"impl", &impl}, {"spec", &spec}};
      for (const auto& [name, nl] : toAudit) {
        AuditReport report = auditNetlist(
            *nl, opt.audit, std::string("post-parse(") + name + ")");
        if (!report.ok) {
          const Status s = auditFailure(report);
          std::fprintf(stderr, "error: %s\n", s.toString().c_str());
          writeFailureReport(reportPath, engine, s.toString(), kExitUsage);
          return kExitUsage;
        }
        postParseAudits.push_back(std::move(report));
      }
    }

    EcoResult result;
    SysecoDiagnostics diag;
    if (engine == "syseco") {
      // --- Crash-safe journaling setup -----------------------------------
      JournalWriter journal;
      ResumePlan plan;
      Netlist restoredWorking;
      bool resumed = false;
      bool haveRunStart = false;
      // First storage fault the journal hooks observe; once set, the
      // checkpoint hook stops the run (fail closed) instead of silently
      // losing durability for later outputs.
      std::string journalFault;
      if (!resumeDir.empty()) {
        Result<JournalContents> read = readJournal(resumeDir);
        if (!read.isOk()) {
          std::fprintf(stderr, "error: %s\n",
                       read.status().toString().c_str());
          writeFailureReport(reportPath, engine, read.status().toString(),
                             kExitInvalidInput);
          return kExitInvalidInput;
        }
        Result<ResumeOutcome> prepared =
            prepareResume(impl, spec, opt, read.value());
        if (!prepared.isOk()) {
          std::fprintf(stderr, "error: %s\n",
                       prepared.status().toString().c_str());
          writeFailureReport(reportPath, engine, prepared.status().toString(),
                             kExitInvalidInput);
          return kExitInvalidInput;
        }
        ResumeOutcome outcome = prepared.take();
        for (const std::string& note : outcome.notes)
          std::fprintf(stderr, "journal: %s\n", note.c_str());
        haveRunStart = read.value().hasRunStart;
        if (outcome.adopted) {
          resumed = true;
          restoredWorking = std::move(outcome.netlist);
          plan = std::move(outcome.plan);
          opt.resumePlan = &plan;
          std::printf("resume: %zu output(s) re-certified, %zu record(s) "
                      "demoted to redo\n",
                      outcome.certified.size(), outcome.demotedRecords);
        } else {
          std::printf("resume: no adoptable checkpoint; running fresh\n");
        }
      }
      if (!journalDir.empty()) {
        Result<JournalScan> scan = scanJournal(journalDir);
        if (!scan.isOk()) {
          std::fprintf(stderr, "error: %s\n",
                       scan.status().toString().c_str());
          writeFailureReport(reportPath, engine, scan.status().toString(),
                             kExitInvalidInput);
          return kExitInvalidInput;
        }
        Result<JournalWriter> opened =
            (!resumeDir.empty() && (haveRunStart ||
                                    !scan.value().frames.empty()))
                ? JournalWriter::resume(journalDir, scan.value())
                : JournalWriter::create(journalDir);
        if (!opened.isOk()) {
          std::fprintf(stderr, "error: %s\n",
                       opened.status().toString().c_str());
          writeFailureReport(reportPath, engine, opened.status().toString(),
                             kExitUsage);
          return kExitUsage;
        }
        journal = opened.take();
        installSignalHandlers();
        opt.planHook = [&](const std::vector<std::uint32_t>& order,
                           std::size_t failingBefore) {
          if (haveRunStart) return;  // the resumed journal already has one
          const Status s = journal.append(serializeRunStart(
              makeRunStartRecord(impl, spec, opt, order, failingBefore)));
          if (!s.isOk()) {
            if (journalFault.empty()) journalFault = s.toString();
            std::fprintf(stderr, "warning: journal write failed: %s\n",
                         s.toString().c_str());
          }
        };
        opt.checkpointHook = [&](const RunCheckpoint& cp) -> bool {
          const Status s =
              journal.append(serializeOutputRecord(makeOutputRecord(cp)));
          if (!s.isOk()) {
            if (journalFault.empty()) journalFault = s.toString();
            std::fprintf(stderr, "warning: journal write failed: %s\n",
                         s.toString().c_str());
          }
          // Crash-injection site, deliberately *after* the commit: a crash
          // here loses no progress, which is exactly what the
          // kill-and-resume tests assert.
          fault::fire("journal.checkpoint");
          // Fail closed on a storage fault: the journal can no longer
          // commit progress, so continuing would burn work that a crash
          // would silently lose. Stop as interrupted; --resume recovers
          // from the last COMMIT-consistent prefix.
          return gInterrupted == 0 && journalFault.empty();
        };
        // Fleet lifecycle events become "fleet" records: the journal keeps
        // the full failure/retry/degradation history of a --workers run.
        // Timing-dependent by design, ignored by resume, and never part of
        // the bit-compared verdict records.
        opt.fleetEventHook = [&](const FleetEvent& ev) {
          JournalFleetEvent rec;
          rec.kind = ev.kind;
          rec.worker = ev.worker;
          rec.output = ev.output;
          rec.attempt = ev.attempt;
          rec.detail = ev.detail;
          const Status s = journal.append(serializeFleetEvent(rec));
          if (!s.isOk())
            std::fprintf(stderr, "warning: journal write failed: %s\n",
                         s.toString().c_str());
        };
      }

      Result<EcoResult> run = runSysecoChecked(
          resumed ? restoredWorking : impl, spec, opt, &diag);
      if (!run.isOk()) {
        std::fprintf(stderr, "error: %s\n", run.status().toString().c_str());
        const int rc = run.status().code() == StatusCode::kInvalidInput
                           ? kExitInvalidInput
                           : kExitUsage;
        writeFailureReport(reportPath, engine, run.status().toString(), rc);
        return rc;
      }
      result = run.take();
      if (diag.interrupted) {
        const Status s = journal.append(serializeInterrupted(
            diag.outputs.size(), result.failingOutputsBefore));
        if (!s.isOk())
          std::fprintf(stderr, "warning: journal write failed: %s\n",
                       s.toString().c_str());
        if (!journalFault.empty())
          std::fprintf(stderr,
                       "fatal: journal unusable (%s); run stopped at the "
                       "last committed checkpoint\n",
                       journalFault.c_str());
        std::printf("interrupted: %zu output(s) journaled to %s; rerun "
                    "with --resume %s to continue\n",
                    diag.outputs.size(), journalDir.c_str(),
                    journalDir.c_str());
        return kExitInterrupted;
      }
      // Journal the oracle's verdicts: the record is timing-free, so
      // --jobs N, --isolate and --resume runs of the same inputs append
      // bit-identical payloads (the resume parser keeps the last one).
      if (!journalDir.empty() && opt.oracle.enabled) {
        const Status s =
            journal.append(serializeVerdicts(makeVerdictsRecord(diag)));
        if (!s.isOk())
          std::fprintf(stderr, "warning: journal write failed: %s\n",
                       s.toString().c_str());
      }
    } else if (engine == "deltasyn") {
      DeltaSynOptions d;
      d.seed = opt.seed;
      result = runDeltaSyn(impl, spec, d);
    } else if (engine == "conesynth") {
      result = runConeSynth(impl, spec, opt.seed);
    } else if (engine == "exactfix") {
      ExactFixOptions x;
      x.seed = opt.seed;
      if (bddReorderSet) x.bddReorder = opt.bddReorder;
      x.bddCacheBits = opt.bddCacheBits;
      x.bddReorderThreshold = opt.bddReorderThreshold;
      result = runExactFix(impl, spec, x);
    } else if (engine == "interpfix") {
      InterpFixOptions x;
      x.seed = opt.seed;
      result = runInterpFix(impl, spec, x);
    } else {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      writeFailureReport(reportPath, engine, "unknown engine '" + engine + "'",
                         kExitUsage);
      return kExitUsage;
    }

    std::printf("failing outputs: %zu\n", result.failingOutputsBefore);
    std::printf("patch: inputs=%zu outputs=%zu gates=%zu nets=%zu\n",
                result.stats.inputs, result.stats.outputs,
                result.stats.gates, result.stats.nets);
    if (engine == "syseco") {
      std::printf("rewired in place: %zu, cone fallbacks: %zu, sweep "
                  "merges: %zu, isop rewrites: %zu (-%zu gates)\n",
                  diag.outputsViaRewire, diag.outputsViaFallback,
                  diag.sweepMerges, diag.isopRewrites, diag.isopGatesSaved);
      if (diag.resourceDegraded()) {
        std::size_t degraded = 0, fallback = 0;
        for (const OutputReport& r : diag.outputs) {
          degraded += r.status == OutputRectStatus::kDegraded;
          fallback += r.status == OutputRectStatus::kFallback;
        }
        std::printf("resource limits tripped (%s): %zu output(s) degraded, "
                    "%zu via fallback\n",
                    statusCodeName(diag.runLimit), degraded, fallback);
      }
    }
    std::printf("runtime: %s\n", formatHms(result.seconds).c_str());
    const bool oracleRan = engine == "syseco" && opt.oracle.enabled;
    std::printf("verification: %s\n",
                result.success
                    ? (oracleRan ? "CERTIFIED (SAT+BDD+simulation)"
                                 : "EQUIVALENT (SAT-proven)")
                    : "FAILED");
    if (oracleRan) {
      std::size_t certified = 0;
      for (const OutputCertificate& c : diag.certificates)
        certified += c.certified;
      std::printf("oracle: %zu/%zu output pair(s) certified, "
                  "%zu disagreement(s)%s\n",
                  certified, diag.certificates.size(),
                  diag.oracleDisagreements.size(),
                  diag.oracleDisagreements.empty() ? ""
                                                   : " (quarantined)");
    }
    // Fold the CLI's post-parse audits into the boundary accounting so the
    // report counts every audited site, not just the engine's.
    if (!postParseAudits.empty()) {
      for (AuditReport& a : postParseAudits)
        diag.secondsAudit += a.seconds;
      diag.audits.insert(diag.audits.begin(),
                         std::make_move_iterator(postParseAudits.begin()),
                         std::make_move_iterator(postParseAudits.end()));
    }

    int exitCode = kExitVerifyFailed;
    if (result.success)
      exitCode = (engine == "syseco" && diag.resourceDegraded())
                     ? kExitDegraded
                     : kExitClean;

    if (!reportPath.empty()) {
      // Atomic temp-file + rename write: a crash mid-report leaves either
      // the previous report or none, never a truncated JSON document.
      std::ostringstream rf;
      writeRunReport(rf, engine, result, diag, opt.audit, oracleRan,
                     exitCode);
      const Status s = writeFileAtomic(reportPath, rf.str());
      if (!s.isOk()) {
        std::fprintf(stderr, "error: cannot write report file %s: %s\n",
                     reportPath.c_str(), s.toString().c_str());
        return kExitUsage;
      }
      std::printf("run report written to %s\n", reportPath.c_str());
    }
    if (!outPath.empty()) {
      saveAny(outPath, result.rectified);
      std::printf("rectified design written to %s\n", outPath.c_str());
    }
    return exitCode;
  } catch (const StatusError& e) {
    std::fprintf(stderr, "error: %s\n", e.status().toString().c_str());
    const int rc = e.status().code() == StatusCode::kInvalidInput
                       ? kExitInvalidInput
                       : kExitUsage;
    writeFailureReport(reportPath, engine, e.status().toString(), rc);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    writeFailureReport(reportPath, engine, e.what(), kExitUsage);
    return kExitUsage;
  }
}
