// syseco command-line tool.
//
// Reads an optimized implementation and a revised specification (netlist
// text format or BLIF, selected by extension), runs one of the ECO engines,
// reports the patch attributes and writes the rectified design.
//
//   syseco_cli --impl C.blif --spec Cprime.blif [options]
//
// Options:
//   --engine syseco|deltasyn|conesynth|exactfix|interpfix     (default: syseco)
//   --out FILE          write the rectified netlist (.blif/.v/.netlist)
//   --samples N         sampling-domain size             (default 64)
//   --max-points M      rectification points per try     (default 3)
//   --level-driven      timing-aware rewire selection
//   --uniform-sampling  ablation: uniform instead of error-domain samples
//   --no-sweep          disable the patch-input sweeping post-process
//   --seed S            RNG seed                          (default 1)
//   --verbose           trace the search to stderr
//
// Exit code 0 iff the rectification was SAT-verified.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "eco/conesynth.hpp"
#include "eco/deltasyn.hpp"
#include "eco/exactfix.hpp"
#include "eco/syseco.hpp"
#include "itp/interp_fix.hpp"
#include "io/blif_io.hpp"
#include "io/netlist_io.hpp"
#include "io/verilog_io.hpp"
#include "util/timer.hpp"

namespace {

using namespace syseco;

bool endsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Netlist loadAny(const std::string& path) {
  if (endsWith(path, ".blif")) return loadBlif(path);
  return loadNetlist(path);
}

void saveAny(const std::string& path, const Netlist& nl) {
  if (endsWith(path, ".blif")) {
    saveBlif(path, nl);
  } else if (endsWith(path, ".v")) {
    saveVerilog(path, nl);
  } else {
    saveNetlist(path, nl);
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --impl FILE --spec FILE [--engine "
               "syseco|deltasyn|conesynth]\n"
               "          [--out FILE] [--samples N] [--max-points M]\n"
               "          [--level-driven] [--uniform-sampling] [--no-sweep]"
               "\n          [--seed S] [--verbose]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string implPath, specPath, outPath, engine = "syseco";
  SysecoOptions opt;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--impl") implPath = value();
    else if (arg == "--spec") specPath = value();
    else if (arg == "--out") outPath = value();
    else if (arg == "--engine") engine = value();
    else if (arg == "--samples") opt.numSamples =
        static_cast<std::size_t>(std::stoul(value()));
    else if (arg == "--max-points") opt.maxPoints = std::stoi(value());
    else if (arg == "--level-driven") opt.levelDriven = true;
    else if (arg == "--uniform-sampling") opt.useErrorDomainSampling = false;
    else if (arg == "--no-sweep") opt.enableSweeping = false;
    else if (arg == "--seed") opt.seed = std::stoull(value());
    else if (arg == "--verbose") opt.verbose = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (implPath.empty() || specPath.empty()) usage(argv[0]);

  try {
    const Netlist impl = loadAny(implPath);
    const Netlist spec = loadAny(specPath);
    std::printf("implementation: %zu gates, %zu inputs, %zu outputs\n",
                impl.countLiveGates(), impl.numInputs(), impl.numOutputs());
    std::printf("revised spec:   %zu gates\n", spec.countLiveGates());

    EcoResult result;
    SysecoDiagnostics diag;
    if (engine == "syseco") {
      result = runSyseco(impl, spec, opt, &diag);
    } else if (engine == "deltasyn") {
      DeltaSynOptions d;
      d.seed = opt.seed;
      result = runDeltaSyn(impl, spec, d);
    } else if (engine == "conesynth") {
      result = runConeSynth(impl, spec, opt.seed);
    } else if (engine == "exactfix") {
      ExactFixOptions x;
      x.seed = opt.seed;
      result = runExactFix(impl, spec, x);
    } else if (engine == "interpfix") {
      InterpFixOptions x;
      x.seed = opt.seed;
      result = runInterpFix(impl, spec, x);
    } else {
      std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
      return 2;
    }

    std::printf("failing outputs: %zu\n", result.failingOutputsBefore);
    std::printf("patch: inputs=%zu outputs=%zu gates=%zu nets=%zu\n",
                result.stats.inputs, result.stats.outputs,
                result.stats.gates, result.stats.nets);
    if (engine == "syseco") {
      std::printf("rewired in place: %zu, cone fallbacks: %zu, sweep "
                  "merges: %zu\n",
                  diag.outputsViaRewire, diag.outputsViaFallback,
                  diag.sweepMerges);
    }
    std::printf("runtime: %s\n", formatHms(result.seconds).c_str());
    std::printf("verification: %s\n",
                result.success ? "EQUIVALENT (SAT-proven)" : "FAILED");
    if (!outPath.empty()) {
      saveAny(outPath, result.rectified);
      std::printf("rectified design written to %s\n", outPath.c_str());
    }
    return result.success ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
