#pragma once
// Interpolation-based single-point rectification (the Craig-interpolation
// ECO family of paper §2, after Wu et al. [19] / Dao et al. [5]).
//
// For a candidate rectification pin t of a failing output, pick a *basis*
// of existing nets b_1..b_K (the prospective patch inputs). Two CNF copies
// are built over fresh input variables, sharing only the basis image
// variables z:
//
//   A:  pin tied to 0 fails this x     AND  z_i == b_i(x)
//   B:  pin tied to 1 fails this x'    AND  z_i == b_i(x')
//
// A AND B is unsatisfiable exactly when no basis pattern is required to be
// both 1 and 0 - i.e. when a patch function over the basis exists - and
// the Craig interpolant I(z) of the refutation IS such a patch function.
// It is synthesized as two-level logic over the basis nets and spliced in
// at the pin.
//
// Contrast with the paper's engine: the patch inputs must be guessed up
// front (the basis), one point is rectified at a time, and the patch is
// fresh logic; syseco instead searches rectification points and reuses
// whole existing functions. The benchmark suite quantifies the difference.

#include "eco/patch.hpp"
#include "netlist/netlist.hpp"

namespace syseco {

struct InterpFixOptions {
  std::size_t maxBasis = 12;          ///< K: patch-input candidates
  std::size_t maxCandidatePins = 12;  ///< pins tried per output
  std::size_t maxConeGates = 3000;    ///< per-copy encoding guard
  std::int64_t solveBudget = 200000;  ///< conflicts per interpolation query
  std::size_t bddNodeLimit = 1u << 21;
  std::uint64_t seed = 1;
};

struct InterpFixDiagnostics {
  std::size_t outputsViaInterpolant = 0;
  std::size_t outputsViaFallback = 0;
  std::size_t queriesSat = 0;    ///< basis insufficient (no patch exists)
  std::size_t queriesUnsat = 0;  ///< interpolant extracted
  std::size_t coverCubes = 0;
};

EcoResult runInterpFix(const Netlist& impl, const Netlist& spec,
                       const InterpFixOptions& options = {},
                       InterpFixDiagnostics* diagnostics = nullptr);

}  // namespace syseco
