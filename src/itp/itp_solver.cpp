#include "itp/itp_solver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace syseco {

ItpSolver::ItpSolver(std::uint32_t numShared, std::size_t bddNodeLimit)
    : numShared_(numShared),
      mgr_(std::make_unique<Bdd>(numShared, bddNodeLimit)) {
  for (std::uint32_t i = 0; i < numShared_; ++i) newVar();
}

Var ItpSolver::newVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  model_.push_back(LBool::Undef);
  polarity_.push_back(1);
  activity_.push_back(0.0);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  levelZeroItp_.push_back(Bdd::kFalse);
  seen_.push_back(0);
  seenInA_.push_back(0);
  seenInB_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

ItpSolver::CRef ItpSolver::attachNewClause(std::vector<Lit> lits, Side side,
                                           Bdd::Ref itp) {
  const CRef cr = static_cast<CRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(lits), itp, side});
  const Clause& c = clauses_[cr];
  if (c.lits.size() >= 2) {
    watches_[(~c.lits[0]).x].push_back(cr);
    watches_[(~c.lits[1]).x].push_back(cr);
  }
  return cr;
}

bool ItpSolver::addClause(std::vector<Lit> lits, Side side) {
  if (!ok_) return false;
  SYSECO_CHECK(decisionLevel() == 0);
  // Keep the clause as a genuine resolution-proof leaf: only remove exact
  // duplicate literals and drop tautologies (never part of a refutation).
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    if (lits[i] == ~lits[i + 1]) return true;  // tautology
  }
  for (const Lit& l : lits) {
    SYSECO_CHECK(l.var() >= 0 && l.var() < static_cast<Var>(numVars()));
    auto& marks = side == Side::A ? seenInA_ : seenInB_;
    marks[l.var()] = 1;
  }
  // The base interpolant is computed lazily at the first solve(): it needs
  // the final A/B occurrence sets. Until then store a placeholder.
  attachNewClause(std::move(lits), side, Bdd::kFalse);
  return true;
}

void ItpSolver::recordLevelZero(Lit p, CRef from) {
  SYSECO_CHECK(decisionLevel() == 0);
  Bdd::Ref itp = clauses_[from].itp;
  for (const Lit& q : clauses_[from].lits) {
    if (q.var() == p.var()) continue;
    itp = foldLevelZero(q.var(), itp);
  }
  levelZeroItp_[p.var()] = itp;
}

void ItpSolver::uncheckedEnqueue(Lit p, CRef from) {
  SYSECO_CHECK(value(p) == LBool::Undef);
  assigns_[p.var()] = lboolOf(!p.sign());
  reason_[p.var()] = from;
  level_[p.var()] = decisionLevel();
  trail_.push_back(p);
  if (decisionLevel() == 0 && from != kCRefUndef) recordLevelZero(p, from);
}

ItpSolver::CRef ItpSolver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    std::vector<CRef>& ws = watches_[p.x];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const CRef cr = ws[i];
      Clause& c = clauses_[cr];
      const Lit falseLit = ~p;
      if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
      SYSECO_CHECK(c.lits[1] == falseLit);
      if (value(c.lits[0]) == LBool::True) {
        ws[j++] = cr;
        ++i;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).x].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      ws[j++] = cr;
      ++i;
      if (value(c.lits[0]) == LBool::False) {
        confl = cr;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(c.lits[0], cr);
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void ItpSolver::analyze(CRef confl, std::vector<Lit>& learnt,
                        std::int32_t& btLevel, Bdd::Ref& itpOut) {
  learnt.clear();
  learnt.push_back(kLitUndef);
  std::int32_t pathC = 0;
  Lit p = kLitUndef;
  std::size_t index = trail_.size();
  Bdd::Ref itp = Bdd::kFalse;

  do {
    SYSECO_CHECK(confl != kCRefUndef);
    const Clause& c = clauses_[confl];
    // Partial interpolant bookkeeping: the first clause seeds, every
    // further clause is a resolution on pivot p.
    itp = (p == kLitUndef) ? c.itp : combine(p.var(), itp, c.itp);
    const std::size_t start = (p == kLitUndef) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      if (level_[q.var()] == 0) {
        // Implicit resolution with the level-0 justification.
        itp = foldLevelZero(q.var(), itp);
        continue;
      }
      if (!seen_[q.var()]) {
        activity_[q.var()] += varInc_;
        if (activity_[q.var()] > 1e100) {
          for (double& a : activity_) a *= 1e-100;
          varInc_ *= 1e-100;
        }
        seen_[q.var()] = 1;
        if (level_[q.var()] >= decisionLevel()) {
          ++pathC;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[index - 1];
    --index;
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --pathC;
  } while (pathC > 0);
  learnt[0] = ~p;
  itpOut = itp;

  for (std::size_t i = 1; i < learnt.size(); ++i) seen_[learnt[i].var()] = 0;

  if (learnt.size() == 1) {
    btLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i)
      if (level_[learnt[i].var()] > level_[learnt[maxI].var()]) maxI = i;
    std::swap(learnt[1], learnt[maxI]);
    btLevel = level_[learnt[1].var()];
  }
  varInc_ /= 0.95;
}

Bdd::Ref ItpSolver::finalizeConflictAtZero(CRef confl) {
  const Clause& c = clauses_[confl];
  Bdd::Ref itp = c.itp;
  for (const Lit& q : c.lits) itp = foldLevelZero(q.var(), itp);
  return itp;
}

void ItpSolver::cancelUntil(std::int32_t level) {
  if (decisionLevel() <= level) return;
  for (std::size_t i = trail_.size();
       i > static_cast<std::size_t>(trailLim_[level]); --i) {
    const Var v = trail_[i - 1].var();
    polarity_[v] = trail_[i - 1].sign() ? 1 : 0;
    assigns_[v] = LBool::Undef;
    reason_[v] = kCRefUndef;
  }
  trail_.resize(static_cast<std::size_t>(trailLim_[level]));
  trailLim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
}

Lit ItpSolver::pickBranchLit() {
  // Linear activity scan: the intended queries are patch-sized.
  Var best = -1;
  for (Var v = 0; v < static_cast<Var>(numVars()); ++v) {
    if (assigns_[v] != LBool::Undef) continue;
    if (best < 0 || activity_[v] > activity_[best]) best = v;
  }
  if (best < 0) return kLitUndef;
  return Lit::make(best, polarity_[best] != 0);
}

ItpSolver::Result ItpSolver::solve(std::int64_t conflictBudget) {
  // First solve: seed base interpolants (needs final occurrence sets) and
  // enqueue original unit clauses.
  if (!initialized_) {
    initialized_ = true;
    for (CRef cr = 0; cr < clauses_.size(); ++cr) {
      Clause& c = clauses_[cr];
      if (c.side == Side::A) {
        Bdd::Ref base = Bdd::kFalse;
        for (const Lit& l : c.lits) {
          if (static_cast<std::uint32_t>(l.var()) < numShared_ &&
              seenInB_[l.var()]) {
            base = mgr_->bOr(base, l.sign() ? mgr_->nvar(
                                                  static_cast<std::uint32_t>(
                                                      l.var()))
                                            : mgr_->var(
                                                  static_cast<std::uint32_t>(
                                                      l.var())));
          }
        }
        c.itp = base;
      } else {
        c.itp = Bdd::kTrue;
      }
    }
    for (CRef cr = 0; cr < clauses_.size(); ++cr) {
      const Clause& c = clauses_[cr];
      if (c.lits.size() != 1) continue;
      const LBool v = value(c.lits[0]);
      if (v == LBool::True) continue;
      if (v == LBool::False) {
        // Conflicting units: resolve the two justifications.
        finalItp_ = finalizeConflictAtZero(cr);
        ok_ = false;
        return Result::Unsat;
      }
      uncheckedEnqueue(c.lits[0], cr);
    }
  }
  if (!ok_) return Result::Unsat;

  std::int64_t conflictsHere = 0;
  std::vector<Lit> learnt;
  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++conflicts_;
      ++conflictsHere;
      if (decisionLevel() == 0) {
        finalItp_ = finalizeConflictAtZero(confl);
        ok_ = false;
        return Result::Unsat;
      }
      std::int32_t btLevel = 0;
      Bdd::Ref itp = Bdd::kFalse;
      analyze(confl, learnt, btLevel, itp);
      cancelUntil(btLevel);
      const CRef cr = attachNewClause(learnt, Side::A /*unused*/, itp);
      // Learnt clauses carry their derived interpolant; the side tag is
      // irrelevant for them (itp is never recomputed).
      if (learnt.size() == 1) {
        // Asserting unit at level 0.
        uncheckedEnqueue(learnt[0], cr);
      } else {
        uncheckedEnqueue(clauses_[cr].lits[0], cr);
      }
      if (conflictBudget >= 0 && conflictsHere >= conflictBudget) {
        cancelUntil(0);
        return Result::Unknown;
      }
    } else {
      const Lit next = pickBranchLit();
      if (next == kLitUndef) {
        model_ = assigns_;
        cancelUntil(0);
        return Result::Sat;
      }
      trailLim_.push_back(static_cast<std::int32_t>(trail_.size()));
      uncheckedEnqueue(next, kCRefUndef);
    }
  }
}

}  // namespace syseco
