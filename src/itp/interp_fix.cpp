#include "itp/interp_fix.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cnf/encode.hpp"
#include "eco/matching.hpp"
#include "itp/itp_solver.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace syseco {

namespace {

/// Tseitin encoder into an ItpSolver, one instance per (copy, side).
/// Inputs get fresh side-local variables; an optional pin is tied to a
/// constant instead of its driving net.
class ItpConeEncoder {
 public:
  ItpConeEncoder(ItpSolver& solver, ItpSolver::Side side, const Netlist& nl,
                 std::unordered_map<std::string, Var>& inputVarByName,
                 const Sink* tiePin, bool tieValue)
      : solver_(solver),
        side_(side),
        nl_(nl),
        inputVarByName_(inputVarByName),
        tiePin_(tiePin),
        tieValue_(tieValue) {}

  Var netVar(NetId net) {
    if (auto it = varOfNet_.find(net); it != varOfNet_.end())
      return it->second;
    const auto& n = nl_.net(net);
    Var v = -1;
    switch (n.srcKind) {
      case Netlist::SourceKind::Input: {
        const std::string& name = nl_.inputName(n.srcIdx);
        auto it = inputVarByName_.find(name);
        if (it == inputVarByName_.end()) {
          v = solver_.newVar();
          inputVarByName_.emplace(name, v);
        } else {
          v = it->second;
        }
        break;
      }
      case Netlist::SourceKind::Gate:
        v = encodeGate(n.srcIdx);
        break;
      case Netlist::SourceKind::None:
        SYSECO_CHECK(false && "encoding an undriven net");
    }
    varOfNet_.emplace(net, v);
    return v;
  }

  /// Constant-true / constant-false variables (created on demand).
  Var constVar(bool value) {
    Var& slot = value ? constTrue_ : constFalse_;
    if (slot < 0) {
      slot = solver_.newVar();
      solver_.addClause({Lit::make(slot, !value)}, side_);
    }
    return slot;
  }

 private:
  Var faninVar(GateId g, std::uint32_t port) {
    if (tiePin_ && tiePin_->gate == g && tiePin_->port == port)
      return constVar(tieValue_);
    return netVar(nl_.gate(g).fanins[port]);
  }

  Var encodeGate(GateId g) {
    const auto& gate = nl_.gate(g);
    std::vector<Var> in;
    in.reserve(gate.fanins.size());
    for (std::uint32_t port = 0; port < gate.fanins.size(); ++port)
      in.push_back(faninVar(g, port));
    auto lit = [](Var v, bool neg = false) { return Lit::make(v, neg); };
    auto add = [&](std::vector<Lit> c) { solver_.addClause(std::move(c), side_); };
    ItpSolver& s = solver_;

    switch (gate.type) {
      case GateType::Const0: return constVar(false);
      case GateType::Const1: return constVar(true);
      case GateType::Buf: return in[0];
      case GateType::Not: {
        const Var v = s.newVar();
        add({lit(v), lit(in[0])});
        add({lit(v, true), lit(in[0], true)});
        return v;
      }
      case GateType::And:
      case GateType::Nand: {
        const Var a = s.newVar();
        std::vector<Lit> big;
        for (Var i : in) {
          add({lit(a, true), lit(i)});
          big.push_back(lit(i, true));
        }
        big.push_back(lit(a));
        add(std::move(big));
        if (gate.type == GateType::And) return a;
        const Var v = s.newVar();
        add({lit(v), lit(a)});
        add({lit(v, true), lit(a, true)});
        return v;
      }
      case GateType::Or:
      case GateType::Nor: {
        const Var a = s.newVar();
        std::vector<Lit> big;
        for (Var i : in) {
          add({lit(a), lit(i, true)});
          big.push_back(lit(i));
        }
        big.push_back(lit(a, true));
        add(std::move(big));
        if (gate.type == GateType::Or) return a;
        const Var v = s.newVar();
        add({lit(v), lit(a)});
        add({lit(v, true), lit(a, true)});
        return v;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        Var acc = in[0];
        for (std::size_t k = 1; k < in.size(); ++k) {
          const Var v = s.newVar();
          const Var b = in[k];
          add({lit(v, true), lit(acc), lit(b)});
          add({lit(v, true), lit(acc, true), lit(b, true)});
          add({lit(v), lit(acc, true), lit(b)});
          add({lit(v), lit(acc), lit(b, true)});
          acc = v;
        }
        if (gate.type == GateType::Xor) return acc;
        const Var v = s.newVar();
        add({lit(v), lit(acc)});
        add({lit(v, true), lit(acc, true)});
        return v;
      }
      case GateType::Mux: {
        const Var v = s.newVar();
        add({lit(in[0]), lit(in[1], true), lit(v)});
        add({lit(in[0]), lit(in[1]), lit(v, true)});
        add({lit(in[0], true), lit(in[2], true), lit(v)});
        add({lit(in[0], true), lit(in[2]), lit(v, true)});
        return v;
      }
    }
    SYSECO_CHECK(false);
    return -1;
  }

  ItpSolver& solver_;
  ItpSolver::Side side_;
  const Netlist& nl_;
  std::unordered_map<std::string, Var>& inputVarByName_;
  const Sink* tiePin_;
  bool tieValue_;
  std::unordered_map<NetId, Var> varOfNet_;
  Var constTrue_ = -1;
  Var constFalse_ = -1;
};

}  // namespace

EcoResult runInterpFix(const Netlist& impl, const Netlist& spec,
                       const InterpFixOptions& options,
                       InterpFixDiagnostics* diagnostics) {
  Timer timer;
  Rng rng(options.seed);
  InterpFixDiagnostics local;
  InterpFixDiagnostics& diag = diagnostics ? *diagnostics : local;

  EcoResult result;
  result.rectified = impl;
  PatchTracker tracker(result.rectified);
  Netlist& w = result.rectified;

  const std::vector<std::uint32_t> failing =
      findFailingOutputs(impl, spec, rng);
  result.failingOutputsBefore = failing.size();

  for (std::uint32_t o : failing) {
    const std::uint32_t op = spec.findOutput(impl.outputName(o));
    SYSECO_CHECK(op != kNullId);
    const std::vector<GateId> cone = w.coneGates({w.outputNet(o)});
    bool fixed = false;

    if (cone.size() <= options.maxConeGates) {
      // Candidate pins: close to the output first (small h-perturbation).
      std::vector<Sink> pins;
      for (auto it = cone.rbegin();
           it != cone.rend() && pins.size() < options.maxCandidatePins;
           ++it) {
        for (std::uint32_t port = 0; port < w.gate(*it).fanins.size();
             ++port)
          pins.push_back(Sink{*it, port});
      }
      if (pins.size() > options.maxCandidatePins)
        pins.resize(options.maxCandidatePins);

      for (const Sink& pin : pins) {
        if (fixed) break;
        // Basis: the pin's driver, its gate's side inputs, nearby
        // multi-fanout nets, then support PIs - capped.
        std::vector<NetId> basis;
        {
          std::unordered_set<NetId> seen;
          auto push = [&](NetId n) {
            if (basis.size() >= options.maxBasis) return;
            if (seen.insert(n).second) basis.push_back(n);
          };
          push(w.gate(pin.gate).fanins[pin.port]);
          for (NetId f : w.gate(pin.gate).fanins) push(f);
          for (GateId g : cone) {
            if (basis.size() >= options.maxBasis) break;
            const NetId out = w.gate(g).out;
            if (w.net(out).sinks.size() >= 2) push(out);
          }
          for (std::uint32_t pi : w.support(w.outputNet(o))) {
            if (basis.size() >= options.maxBasis) break;
            push(w.inputNet(pi));
          }
          // A basis net must not depend on the pin's gate (the patch would
          // feed itself): drop anything in the pin gate's fanout cone.
          std::unordered_set<NetId> forbidden;
          {
            std::vector<NetId> stack{w.gate(pin.gate).out};
            forbidden.insert(w.gate(pin.gate).out);
            while (!stack.empty()) {
              const NetId n = stack.back();
              stack.pop_back();
              for (const Sink& s : w.net(n).sinks) {
                if (s.isOutput()) continue;
                const NetId next = w.gate(s.gate).out;
                if (forbidden.insert(next).second) stack.push_back(next);
              }
            }
          }
          std::erase_if(basis,
                        [&](NetId n) { return forbidden.count(n) > 0; });
        }
        if (basis.empty()) continue;

        try {
          ItpSolver solver(static_cast<std::uint32_t>(basis.size()),
                           options.bddNodeLimit);
          // Copy A: pin tied to 0 must FAIL (this x needs y=1).
          {
            std::unordered_map<std::string, Var> inputsA;
            ItpConeEncoder implA(solver, ItpSolver::Side::A, w, inputsA,
                                 &pin, false);
            ItpConeEncoder specA(solver, ItpSolver::Side::A, spec, inputsA,
                                 nullptr, false);
            const Var h0 = implA.netVar(w.outputNet(o));
            const Var fp = specA.netVar(spec.outputNet(op));
            // h0 XOR f' (they differ): two clauses via a fresh selector.
            const Var d = solver.newVar();
            solver.addClause({Lit::make(d)}, ItpSolver::Side::A);
            solver.addClause({Lit::make(d, true), Lit::make(h0),
                              Lit::make(fp)},
                             ItpSolver::Side::A);
            solver.addClause({Lit::make(d, true), Lit::make(h0, true),
                              Lit::make(fp, true)},
                             ItpSolver::Side::A);
            // Shared image: z_i == b_i(x).
            for (std::size_t i = 0; i < basis.size(); ++i) {
              const Var b = implA.netVar(basis[i]);
              const Var z = static_cast<Var>(i);
              solver.addClause({Lit::make(z, true), Lit::make(b)},
                               ItpSolver::Side::A);
              solver.addClause({Lit::make(z), Lit::make(b, true)},
                               ItpSolver::Side::A);
            }
          }
          // Copy B: pin tied to 1 must FAIL (this x' needs y=0).
          {
            std::unordered_map<std::string, Var> inputsB;
            ItpConeEncoder implB(solver, ItpSolver::Side::B, w, inputsB,
                                 &pin, true);
            ItpConeEncoder specB(solver, ItpSolver::Side::B, spec, inputsB,
                                 nullptr, false);
            const Var h1 = implB.netVar(w.outputNet(o));
            const Var fp = specB.netVar(spec.outputNet(op));
            const Var d = solver.newVar();
            solver.addClause({Lit::make(d)}, ItpSolver::Side::B);
            solver.addClause({Lit::make(d, true), Lit::make(h1),
                              Lit::make(fp)},
                             ItpSolver::Side::B);
            solver.addClause({Lit::make(d, true), Lit::make(h1, true),
                              Lit::make(fp, true)},
                             ItpSolver::Side::B);
            for (std::size_t i = 0; i < basis.size(); ++i) {
              const Var b = implB.netVar(basis[i]);
              const Var z = static_cast<Var>(i);
              solver.addClause({Lit::make(z, true), Lit::make(b)},
                               ItpSolver::Side::B);
              solver.addClause({Lit::make(z), Lit::make(b, true)},
                               ItpSolver::Side::B);
            }
          }

          const ItpSolver::Result r = solver.solve(options.solveBudget);
          if (r != ItpSolver::Result::Unsat) {
            if (r == ItpSolver::Result::Sat) ++diag.queriesSat;
            continue;  // basis insufficient at this pin
          }
          ++diag.queriesUnsat;

          // Instantiate the interpolant as two-level logic over the basis.
          Bdd& mgr = solver.bdd();
          const std::vector<BddCube> cover = mgr.isop(solver.interpolant());
          diag.coverCubes += cover.size();
          std::vector<NetId> terms;
          std::unordered_map<std::uint32_t, NetId> invOf;
          for (const BddCube& cube : cover) {
            std::vector<NetId> lits;
            for (std::uint32_t v = 0; v < basis.size(); ++v) {
              if (cube.lits[v] < 0) continue;
              if (cube.lits[v] == 1) {
                lits.push_back(basis[v]);
              } else {
                auto it = invOf.find(v);
                if (it == invOf.end()) {
                  it = invOf
                           .emplace(v,
                                    w.addGate(GateType::Not, {basis[v]}))
                           .first;
                }
                lits.push_back(it->second);
              }
            }
            if (lits.empty()) {
              terms.push_back(w.addGate(GateType::Const1, {}));
            } else if (lits.size() == 1) {
              terms.push_back(lits[0]);
            } else {
              terms.push_back(w.addGate(GateType::And, lits));
            }
          }
          NetId patch;
          if (terms.empty()) {
            patch = w.addGate(GateType::Const0, {});
          } else if (terms.size() == 1) {
            patch = terms[0];
          } else {
            patch = w.addGate(GateType::Or, terms);
          }

          // Validate every reachable output (the single-point condition is
          // per-output; shared logic may break peers) and roll back on
          // damage.
          const std::size_t mark = tracker.mark();
          tracker.rewire(pin, patch);
          bool collateral = false;
          {
            std::unordered_set<GateId> seenGates;
            std::vector<NetId> stack{w.gate(pin.gate).out};
            std::vector<std::uint32_t> reached;
            while (!stack.empty()) {
              const NetId n = stack.back();
              stack.pop_back();
              for (const Sink& s : w.net(n).sinks) {
                if (s.isOutput()) {
                  reached.push_back(s.port);
                } else if (seenGates.insert(s.gate).second) {
                  stack.push_back(w.gate(s.gate).out);
                }
              }
            }
            PairEncoding pe(w, spec);
            for (std::uint32_t ro : reached) {
              const std::uint32_t rop = spec.findOutput(w.outputName(ro));
              if (rop == kNullId) continue;
              if (pe.solveDiffSwept(ro, rop, options.solveBudget, rng) !=
                  Solver::Result::Unsat) {
                collateral = true;
                break;
              }
            }
          }
          if (collateral) {
            tracker.rollback(mark);
            continue;
          }
          ++diag.outputsViaInterpolant;
          fixed = true;
        } catch (const BddLimitExceeded&) {
          continue;  // interpolant too large at this pin
        }
      }
    }
    if (!fixed) {
      MatcherOptions mopts;
      Rng matchRng = rng.split();
      MatchedSpecCloner cloner(tracker, spec, mopts, matchRng);
      tracker.rewire(Sink{kNullId, o}, cloner.clone(spec.outputNet(op)));
      ++diag.outputsViaFallback;
    }
  }

  result.stats = tracker.finalize();
  result.success = verifyAllOutputs(result.rectified, spec);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace syseco
