#pragma once
// Interpolating SAT solver.
//
// The Craig-interpolation family of ECO engines (paper §2: Wu et al. [19],
// Tang et al. [17], Dao et al. [5], Zhang & Jiang [20]) derives patch
// functions from refutation proofs: clauses are partitioned into an A side
// and a B side, and when A AND B is refuted, McMillan's rules label every
// resolution step with a *partial interpolant*; the label of the empty
// clause is a function I over the shared variables with
//
//     A implies I,   I AND B unsatisfiable,   support(I) subset shared.
//
// This solver computes partial interpolants on the fly (no proof replay):
// every clause carries a BDD over the shared variables, resolutions in
// first-UIP conflict analysis combine them (OR when the pivot is A-local,
// AND otherwise), and level-0 eliminations fold eagerly. To keep every
// derivation a genuine resolution proof, top-level clause rewriting,
// recursive clause minimization and learnt-database reduction are disabled
// - the intended queries (patch-function extraction over a dozen shared
// variables) are small.

#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "sat/solver.hpp"  // reuses Var / Lit / LBool

namespace syseco {

class ItpSolver {
 public:
  enum class Side : std::uint8_t { A, B };

  /// `numShared` shared variables must be allocated FIRST (vars 0..n-1);
  /// their BDD indices coincide with their variable numbers.
  explicit ItpSolver(std::uint32_t numShared,
                     std::size_t bddNodeLimit = 1u << 22);

  Var newVar();
  std::size_t numVars() const { return assigns_.size(); }
  std::uint32_t numShared() const { return numShared_; }

  /// Adds a clause on the given side. Literals over shared variables may
  /// appear on both sides; every other variable must stay side-local for
  /// the interpolant guarantees to hold (checked).
  bool addClause(std::vector<Lit> lits, Side side);

  enum class Result { Sat, Unsat, Unknown };
  Result solve(std::int64_t conflictBudget = -1);

  bool modelValue(Var v) const { return model_[v] == LBool::True; }

  /// After Result::Unsat: the Craig interpolant over the shared variables.
  Bdd::Ref interpolant() const { return finalItp_; }
  Bdd& bdd() { return *mgr_; }

 private:
  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xFFFFFFFFu;

  struct Clause {
    std::vector<Lit> lits;
    Bdd::Ref itp;
    Side side;
  };

  LBool value(Lit p) const {
    const LBool a = assigns_[p.var()];
    if (a == LBool::Undef) return LBool::Undef;
    return (a == LBool::True) != p.sign() ? LBool::True : LBool::False;
  }
  std::int32_t decisionLevel() const {
    return static_cast<std::int32_t>(trailLim_.size());
  }
  bool isShared(Var v) const {
    return static_cast<std::uint32_t>(v) < numShared_;
  }
  bool isALocal(Var v) const { return seenInA_[v] && !seenInB_[v]; }

  /// McMillan combination for a resolution on pivot `v`.
  Bdd::Ref combine(Var v, Bdd::Ref a, Bdd::Ref b) {
    return isALocal(v) ? mgr_->bOr(a, b) : mgr_->bAnd(a, b);
  }
  /// Folds the level-0 justification of `v` into `itp`.
  Bdd::Ref foldLevelZero(Var v, Bdd::Ref itp) {
    return combine(v, itp, levelZeroItp_[v]);
  }

  void uncheckedEnqueue(Lit p, CRef from);
  CRef propagate();
  void analyze(CRef confl, std::vector<Lit>& learnt, std::int32_t& btLevel,
               Bdd::Ref& itpOut);
  Bdd::Ref finalizeConflictAtZero(CRef confl);
  void cancelUntil(std::int32_t level);
  Lit pickBranchLit();
  CRef attachNewClause(std::vector<Lit> lits, Side side, Bdd::Ref itp);
  void recordLevelZero(Lit p, CRef from);

  std::uint32_t numShared_;
  std::unique_ptr<Bdd> mgr_;
  bool ok_ = true;
  bool initialized_ = false;
  Bdd::Ref emptyClauseItp_ = Bdd::kFalse;  ///< valid only when !ok_
  std::vector<Clause> clauses_;
  std::vector<std::vector<CRef>> watches_;
  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<std::uint8_t> polarity_;
  std::vector<double> activity_;
  std::vector<CRef> reason_;
  std::vector<std::int32_t> level_;
  std::vector<Bdd::Ref> levelZeroItp_;  ///< per var, valid when level 0
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trailLim_;
  std::size_t qhead_ = 0;
  double varInc_ = 1.0;
  std::vector<std::uint8_t> seen_;
  std::vector<std::uint8_t> seenInA_;
  std::vector<std::uint8_t> seenInB_;
  Bdd::Ref finalItp_ = Bdd::kFalse;
  std::uint64_t conflicts_ = 0;
};

}  // namespace syseco
