#pragma once
// Unit-delay timing model.
//
// The paper's Table 3 measures patch impact on post-place-and-route slack.
// Without a physical flow, the reproduction uses the standard synthesis
// proxy: logic levels under a unit gate delay, scaled to picoseconds, and a
// per-design required time. The effect the paper reports - syseco's
// *level-driven* selection of rewire operations yields shallower patches
// and hence better slack - is exactly what this proxy observes.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace syseco {

inline constexpr double kPsPerLevel = 10.0;

/// Maximum logic level over all primary outputs.
std::uint32_t circuitDepth(const Netlist& netlist);

/// Worst output slack in picoseconds against `requiredPs`.
double worstSlackPs(const Netlist& netlist, double requiredPs,
                    double psPerLevel = kPsPerLevel);

/// A required time that leaves the unmodified implementation a small
/// positive margin (as a timing-closed design would have).
double defaultRequiredPs(const Netlist& implementation,
                         double psPerLevel = kPsPerLevel,
                         double marginLevels = 1.0);

/// Per-output required times derived from the reference (timing-closed)
/// implementation: each output's own arrival plus a small margin. This is
/// the signoff picture - every path individually closed - so any patch
/// that deepens a path shows up as lost slack (Table 3).
std::vector<double> outputRequiredPs(const Netlist& reference,
                                     double psPerLevel = kPsPerLevel,
                                     double marginLevels = 1.0);

/// Worst slack of `netlist` against per-output required times (indexed by
/// output position; the netlist must have at least as many outputs).
double worstSlackPs(const Netlist& netlist,
                    const std::vector<double>& requiredPerOutput,
                    double psPerLevel = kPsPerLevel);

/// Extra levels charged to every ECO cell: the patch is placed post-hoc in
/// leftover space / spare cells, so its cells see longer wires than the
/// original placed-and-routed logic. (The substitution for the paper's
/// measured post-P&R slack; see DESIGN.md.)
inline constexpr double kEcoCellExtraLevels = 2.0;

/// Worst slack with the ECO-placement penalty: gates with id >=
/// `firstEcoGate` (the append-only netlist guarantees patch gates have the
/// highest ids) cost (1 + extraLevels) units of delay.
double worstSlackPsWithEcoPenalty(const Netlist& netlist,
                                  const std::vector<double>& requiredPerOutput,
                                  std::size_t firstEcoGate,
                                  double psPerLevel = kPsPerLevel,
                                  double extraLevels = kEcoCellExtraLevels);

}  // namespace syseco
