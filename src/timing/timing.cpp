#include "timing/timing.hpp"

#include <algorithm>
#include <limits>

namespace syseco {

std::uint32_t circuitDepth(const Netlist& netlist) {
  const std::vector<std::uint32_t> levels = netlist.netLevels();
  std::uint32_t depth = 0;
  for (std::uint32_t o = 0; o < netlist.numOutputs(); ++o)
    depth = std::max(depth, levels[netlist.outputNet(o)]);
  return depth;
}

double worstSlackPs(const Netlist& netlist, double requiredPs,
                    double psPerLevel) {
  return requiredPs - psPerLevel * static_cast<double>(circuitDepth(netlist));
}

double defaultRequiredPs(const Netlist& implementation, double psPerLevel,
                         double marginLevels) {
  return psPerLevel *
         (static_cast<double>(circuitDepth(implementation)) + marginLevels);
}

std::vector<double> outputRequiredPs(const Netlist& reference,
                                     double psPerLevel, double marginLevels) {
  const std::vector<std::uint32_t> levels = reference.netLevels();
  std::vector<double> required(reference.numOutputs(), 0.0);
  for (std::uint32_t o = 0; o < reference.numOutputs(); ++o) {
    required[o] = psPerLevel * (static_cast<double>(
                                    levels[reference.outputNet(o)]) +
                                marginLevels);
  }
  return required;
}

double worstSlackPsWithEcoPenalty(const Netlist& netlist,
                                  const std::vector<double>& requiredPerOutput,
                                  std::size_t firstEcoGate, double psPerLevel,
                                  double extraLevels) {
  // Arrival recomputation with per-gate cost: base arity-aware unit delay
  // plus the placement penalty on ECO cells.
  std::vector<double> arrival(netlist.numNetsTotal(), 0.0);
  for (GateId g : netlist.topoOrder()) {
    const auto& gate = netlist.gate(g);
    double cost = 1.0;
    const std::size_t arity = gate.fanins.size();
    if (gate.type != GateType::Mux && arity > 2) {
      cost = 0.0;
      std::size_t n = arity - 1;
      while (n > 0) {
        cost += 1.0;
        n >>= 1;
      }
    }
    if (g >= firstEcoGate) cost += extraLevels;
    double maxIn = 0.0;
    for (NetId f : gate.fanins) maxIn = std::max(maxIn, arrival[f] + cost);
    arrival[gate.out] = gate.fanins.empty() ? 0.0 : maxIn;
  }
  double worst = std::numeric_limits<double>::infinity();
  for (std::uint32_t o = 0;
       o < netlist.numOutputs() && o < requiredPerOutput.size(); ++o) {
    worst = std::min(worst, requiredPerOutput[o] -
                                psPerLevel * arrival[netlist.outputNet(o)]);
  }
  return worst;
}

double worstSlackPs(const Netlist& netlist,
                    const std::vector<double>& requiredPerOutput,
                    double psPerLevel) {
  const std::vector<std::uint32_t> levels = netlist.netLevels();
  double worst = std::numeric_limits<double>::infinity();
  for (std::uint32_t o = 0;
       o < netlist.numOutputs() && o < requiredPerOutput.size(); ++o) {
    const double slack =
        requiredPerOutput[o] -
        psPerLevel * static_cast<double>(levels[netlist.outputNet(o)]);
    worst = std::min(worst, slack);
  }
  return worst;
}

}  // namespace syseco
