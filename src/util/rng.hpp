#pragma once
// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (test-case generation, sampling, simulation
// patterns, decision heuristics) draws from a seeded Rng so that every run,
// test and benchmark is reproducible bit-for-bit.

#include <cstdint>
#include <vector>

namespace syseco {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64, which
  /// guarantees a well-mixed non-zero state for any seed (including 0).
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used in this project (< 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform bool.
  bool flip() { return (next() & 1) != 0; }

  /// Uniform double in [0, 1).
  double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator (for parallel-safe sub-streams).
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace syseco
