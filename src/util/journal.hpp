#pragma once
// Write-ahead run journal: framing layer.
//
// A journal directory holds two files:
//
//   journal.jsonl - one record per line:  J1 <len> <crc> <payload>\n
//                   where <len> is the payload byte count and <crc> its
//                   CRC-32, both as 8 hex digits. The payload is a JSON
//                   object with no raw newlines (see io/journal_io.hpp for
//                   the record schema).
//   COMMIT        - atomically replaced marker attesting how many records
//                   and bytes were fully committed (data fsync'd first, so
//                   the marker never runs ahead of the data).
//
// Appends are crash-safe by construction: the frame is written and fsync'd
// before the marker advances, and a torn final frame fails its length or
// checksum test on replay and is dropped - never silently half-applied.
// This layer knows nothing about record content; parsing and the engine
// coupling live in src/io and src/eco.
//
// Storage faults fail closed: every write and fsync goes through the
// fault shim (util/fault) under a per-writer site prefix, and the first
// failure - injected or real - poisons the writer fsyncgate-style: the
// partial append is truncated back to the last committed prefix, the fd
// is closed, and every later append returns the original cause. A
// poisoned journal never lies about durability; recovery re-opens from
// the COMMIT-consistent prefix.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace syseco {

/// JSON string escaping shared by every journal/report serializer.
std::string jsonEscape(std::string_view s);

/// Names of the files inside a journal directory.
std::string journalDataPath(const std::string& dir);
std::string journalMarkerPath(const std::string& dir);

/// One checksummed line recovered from a journal file.
struct JournalFrame {
  std::size_t line = 0;  ///< 1-based line in journal.jsonl (diagnostics)
  std::string payload;   ///< verified JSON text
};

/// Result of scanning a journal file.
struct JournalScan {
  std::vector<JournalFrame> frames;       ///< every frame that verified
  std::vector<std::string> diagnostics;   ///< line-accurate notes on drops
  std::uint64_t retainBytes = 0;          ///< prefix a resumed writer keeps
  std::size_t committedRecords = 0;       ///< from the COMMIT marker (0 if absent)
  bool markerValid = false;
};

/// Scans `dir`'s journal, dropping (with a diagnostic) every line whose
/// frame header, length or checksum does not verify. A torn final record
/// is tolerated, as are the two artifacts a torn-then-retried append can
/// leave behind: a trailing zero-length frame (truncated and warned) and
/// a duplicated final frame that the COMMIT marker does not attest
/// (likewise). A missing journal file is an empty scan, not an error.
/// Only unreadable I/O (permissions, directory vanishing mid-read) fails.
Result<JournalScan> scanJournal(const std::string& dir);

/// Append-only journal writer with fsync-per-record durability.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(JournalWriter&& other) noexcept { *this = std::move(other); }
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates `dir` (one level) if needed and starts a fresh journal,
  /// truncating any previous content. `site` prefixes the fault-shim
  /// sites this writer hits: `<site>.write`, `<site>.fsync`,
  /// `<site>.marker.*` (and `<site>.compact.*` for createCompacted).
  static Result<JournalWriter> create(const std::string& dir,
                                      std::string_view site = "journal");

  /// Reopens an existing journal for appending after `scan` validated it.
  /// The file is truncated to scan.retainBytes first, so a torn tail from
  /// the previous crash is physically removed before new records follow.
  static Result<JournalWriter> resume(const std::string& dir,
                                      const JournalScan& scan,
                                      std::string_view site = "journal");

  /// Atomically replaces `dir`'s journal with exactly `payloads` (the
  /// compaction path: fold, then rewrite). The new file is staged and
  /// renamed over the old one, so a crash at any instant leaves either
  /// the complete old journal or the complete new one - never a mix.
  /// Returns a writer positioned to append after the last payload.
  static Result<JournalWriter> createCompacted(
      const std::string& dir, const std::vector<std::string>& payloads,
      std::string_view site = "journal");

  /// Appends one framed record (payload must not contain raw newlines),
  /// fsyncs the data, then atomically advances the COMMIT marker.
  /// Serialized internally, so concurrent appenders interleave whole
  /// records and never tear a frame; open/resume/move stay
  /// single-threaded setup-time operations.
  ///
  /// Fails closed: on the first storage failure the partial append is
  /// truncated away, the writer poisons itself, and this and every later
  /// call return a structured internal Status naming the cause. A marker
  /// failure after a durable append also poisons, but keeps the record -
  /// the scan tolerates frames running ahead of the marker.
  Status append(std::string_view payload);

  bool isOpen() const { return fd_ >= 0; }
  std::size_t records() const { return records_; }
  const std::string& directory() const { return dir_; }

  /// True once a storage failure has latched; the first cause is kept.
  bool poisoned() const { return poisoned_; }
  const std::string& poisonCause() const { return poisonCause_; }

 private:
  Status commitMarker();
  Status poison(std::string cause, bool truncateBack);

  int fd_ = -1;
  std::string dir_;
  std::string site_ = "journal";
  std::size_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool poisoned_ = false;
  std::string poisonCause_;
  // Owned by pointer to keep the writer movable; allocated by
  // create()/resume(), which are single-threaded by contract.
  std::unique_ptr<std::mutex> appendMutex_;
};

}  // namespace syseco
