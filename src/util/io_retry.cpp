#include "util/io_retry.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

namespace syseco::ioretry {

namespace {

/// Waits until `fd` is writable (or an error/hangup is pending, which the
/// next write() will then report). EINTR-safe.
void pollWritable(int fd) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLOUT;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, 100);
  } while (rc == -1 && errno == EINTR);
}

}  // namespace

int writeAllRaw(int fd, std::string_view data, bool pollOnEagain) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == -1 && errno == EINTR) continue;
    if (n == -1 && pollOnEagain &&
        (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollWritable(fd);
      continue;
    }
    return errno != 0 ? errno : EIO;
  }
  return 0;
}

Status writeAll(int fd, std::string_view data) {
  const int err = writeAllRaw(fd, data);
  if (err != 0)
    return Status::internal("write() failed: errno " + std::to_string(err));
  return Status::ok();
}

Result<std::string> readAll(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return out;
    if (errno == EINTR) continue;
    return Status::internal("read() failed: errno " + std::to_string(errno));
  }
}

DrainOutcome drainNonblockingRaw(int fd, std::string* buf) {
  DrainOutcome out;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      out.state = DrainState::kEof;
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.state = DrainState::kOpen;
      return out;
    }
    out.state = DrainState::kError;
    out.err = errno;
    return out;
  }
}

Result<bool> drainAvailable(int fd, std::string* buf) {
  const DrainOutcome out = drainNonblockingRaw(fd, buf);
  switch (out.state) {
    case DrainState::kOpen:
      return true;
    case DrainState::kEof:
      return false;
    case DrainState::kError:
      break;
  }
  return Status::internal("read() failed: errno " + std::to_string(out.err));
}

void ignoreSigpipeOnce() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void closeFd(int& fd) {
  if (fd >= 0) {
    int rc;
    do {
      rc = ::close(fd);
    } while (rc == -1 && errno == EINTR);
    fd = -1;
  }
}

}  // namespace syseco::ioretry
