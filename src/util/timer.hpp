#pragma once
// Wall-clock timing helpers used by the ECO engines and the benchmark
// harnesses to report runtimes in the same h:m:s format as the paper's
// Table 2.

#include <chrono>
#include <cstdio>
#include <string>

namespace syseco {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration as "hh:mm:ss" (Table 2 style); sub-second durations
/// keep two decimals in the seconds field for readability.
inline std::string formatHms(double seconds) {
  if (seconds < 0) seconds = 0;
  const long total = static_cast<long>(seconds);
  const long h = total / 3600;
  const long m = (total % 3600) / 60;
  const double s = seconds - static_cast<double>(h * 3600 + m * 60);
  char buf[48];
  if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "00:00:%05.2f", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%02ld:%02ld:%02.0f", h, m, s);
  }
  return buf;
}

}  // namespace syseco
