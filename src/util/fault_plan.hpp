#pragma once
// Seeded fault schedules: the deterministic chaos layer on top of
// util/fault.
//
// A fault plan is a small text file of reproducible injection entries -
// "at the k-th hit of site S, inject kind K" - that replaces the ad-hoc
// one-shot SYSECO_FAULT_INJECT matching for chaos testing. Plans are
// generated from a 64-bit seed (generateChaosPlan), serialized to disk,
// and loaded by every process in the run tree via SYSECO_FAULT_PLAN, so
// one seed reproduces one exact storm of storage, process and network
// faults across the CLI, the daemon, and every exec'd worker.
//
// File format (one entry per line, '#' comments, blank lines ignored):
//
//   at <hit> <site> <kind> [arg]     # fire once, at hit ordinal <hit>
//   from <hit> <site> <kind> [arg]   # fire persistently from <hit> on
//
// e.g.
//   # seed 42
//   at 3 journal.write torn-frame 17
//   at 0 queue.wal.fsync fsync-fail
//   from 2 syseco.sampling budget
//
// One-shot ("at") entries are consumption-logged: when one fires, the
// injector appends it to `<plan>.fired` before acting (write-ahead, so
// even an injected crash records itself). applyFaultPlan skips entries
// already present in the fired log - a restarted daemon or a re-exec'd
// batch worker loading the same plan does not re-fire faults the previous
// life already injected, which is what makes "heal after restart"
// convergent instead of an infinite fault loop.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace syseco::fault {

struct PlanEntry {
  std::uint64_t atHit = 0;
  bool oneShot = true;  ///< "at" entry (vs persistent "from")
  std::string site;
  Kind kind = Kind::kEio;
  std::uint64_t arg = 0;  ///< torn-frame / short-write byte count (0 = auto)
};

struct FaultPlan {
  std::vector<PlanEntry> entries;
};

/// Parses the plan text; returns kInvalidInput naming the offending line
/// on any malformed entry.
Result<FaultPlan> parseFaultPlan(std::string_view text);

/// Canonical serialization (parseFaultPlan round-trips it).
std::string serializeFaultPlan(const FaultPlan& plan);

/// An injection site the storage shim consults, plus which shim side it
/// sits on (write vs fsync) so plan generation picks sensible kinds.
struct FaultSite {
  std::string_view name;
  bool isFsync = false;
};

/// Registry of every storage-shim site in the tree: the engine journal,
/// the atomic-file staging path, the daemon job-queue WAL, the batch case
/// ledger, and repro bundles. The README table is generated from the same
/// list; keep them in step.
const std::vector<FaultSite>& storageFaultSites();

/// Deterministically generates `count` one-shot storage-fault entries from
/// `seed`, drawn over `sites` (defaults to storageFaultSites()). Same seed
/// + same site list = bit-identical plan.
FaultPlan generateChaosPlan(std::uint64_t seed, std::size_t count,
                            const std::vector<FaultSite>* sites = nullptr);

/// Arms `plan` on the process-wide injector: one-shot entries via
/// Injector::schedule, persistent ones via arm. Entries recorded in
/// `<planPath>.fired` are skipped, and the injector's fire log is pointed
/// at that sidecar so this process appends its own firings for the next
/// life. Pass an empty planPath to skip the consumption protocol (tests).
Status applyFaultPlan(const FaultPlan& plan, const std::string& planPath);

/// Loads and arms the plan named by SYSECO_FAULT_PLAN, if set. Unset env
/// is ok (no-op); a set-but-unreadable or malformed plan is an error -
/// silently ignoring a requested fault schedule would turn a chaos run
/// into a false-green reference run.
Status loadFaultPlanFromEnv();

}  // namespace syseco::fault
