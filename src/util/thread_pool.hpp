#pragma once
// Work-stealing thread pool for the per-output rectification cascade.
//
// N worker threads each own a deque of tasks; an idle worker pops from the
// back of its own deque (LIFO, cache-warm) and steals from the front of a
// victim's deque (FIFO, oldest first) when its own runs dry. submit()
// round-robins new tasks across the worker deques and returns a
// std::future<void> the caller can block on; task exceptions propagate
// through the future. The pool is deliberately value-free: tasks produce
// their results through captured state, and *ordering* of result
// consumption is the caller's job (the syseco engine commits per-output
// results strictly in plan order, which is what keeps `--jobs N`
// bit-identical to `--jobs 1`).
//
// A ThreadPool with zero threads degenerates to inline execution inside
// submit() - callers can treat `jobs == 1` and `jobs == N` uniformly.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace syseco {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 means no workers: submit() runs the task
  /// inline before returning (the returned future is already ready).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. Pending tasks are still executed; destruction
  /// waits for the queues to drain.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` and returns a future that becomes ready when it has
  /// run. Exceptions thrown by the task are captured into the future.
  std::future<void> submit(std::function<void()> task);

  std::size_t threadCount() const { return workers_.size(); }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void workerLoop(std::size_t self);
  bool popOrSteal(std::size_t self, std::packaged_task<void()>* out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wakeMutex_;
  std::condition_variable wake_;
  std::size_t nextQueue_ = 0;  // round-robin submit target (under wakeMutex_)
  bool stopping_ = false;      // under wakeMutex_
};

}  // namespace syseco
