#include "util/subprocess.hpp"

#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <new>

#include <fcntl.h>
#include <unistd.h>

#include "util/io_retry.hpp"

namespace syseco::subprocess {

namespace {

using ioretry::closeFd;
using ioretry::ignoreSigpipeOnce;

void applyLimitsInChild(const Limits& limits) {
  if (limits.memoryBytes > 0) {
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(limits.memoryBytes);
    rl.rlim_max = static_cast<rlim_t>(limits.memoryBytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpuSeconds > 0.0) {
    struct rlimit rl;
    const double ceiled = std::ceil(limits.cpuSeconds);
    rl.rlim_cur = static_cast<rlim_t>(ceiled < 1.0 ? 1.0 : ceiled);
    rl.rlim_max = rl.rlim_cur;
    ::setrlimit(RLIMIT_CPU, &rl);
  }
}

void sleepMs(int ms) {
  struct pollfd none;
  none.fd = -1;
  none.events = 0;
  none.revents = 0;
  ::poll(&none, 0, ms);  // fd-less poll: a signal-tolerant sleep
}

WaitOutcome fromWaitStatus(int status) {
  WaitOutcome out;
  if (WIFEXITED(status)) {
    out.kind = WaitKind::kExited;
    out.exitCode = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.kind = WaitKind::kSignaled;
    out.signal = WTERMSIG(status);
  } else {
    out.kind = WaitKind::kSignaled;
    out.signal = 0;
  }
  return out;
}

/// Blocking EINTR-safe reap.
WaitOutcome reapBlocking(pid_t pid) {
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &status, 0);
  } while (got == -1 && errno == EINTR);
  if (got != pid) {
    WaitOutcome out;  // already reaped or never existed; report a clean exit
    out.kind = WaitKind::kExited;
    out.exitCode = kChildExitUncaught;
    return out;
  }
  return fromWaitStatus(status);
}

}  // namespace

Result<Child> forkWorker(const Limits& limits,
                         const std::function<int(int, int)>& body) {
  ignoreSigpipeOnce();

  int request[2] = {-1, -1};   // supervisor writes [1], worker reads [0]
  int response[2] = {-1, -1};  // worker writes [1], supervisor reads [0]
  if (::pipe(request) != 0)
    return Status::internal("pipe() failed: errno " + std::to_string(errno));
  if (::pipe(response) != 0) {
    closeFd(request[0]);
    closeFd(request[1]);
    return Status::internal("pipe() failed: errno " + std::to_string(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    closeFd(request[0]);
    closeFd(request[1]);
    closeFd(response[0]);
    closeFd(response[1]);
    return Status::internal("fork() failed: errno " + std::to_string(errno));
  }

  if (pid == 0) {
    // Child. Detach from the supervisor's process group first: a signal
    // aimed at the run as a whole (shell job control, `timeout`, kill -TERM
    // -PGID) must interrupt the supervisor at a clean checkpoint, not
    // splatter workers mid-task into crash-classified retries. The
    // supervisor is the only legitimate sender of worker kill signals.
    ::setpgid(0, 0);
    // Only then restore default dispositions: a group signal that lands
    // before the detach is swallowed by the inherited CLI handler instead
    // of killing the worker. The default disposition is needed so the
    // supervisor's own SIGTERM escalation is not defeated.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
#ifdef __linux__
    // ...which means a group KILL no longer reaps workers either, so make
    // the kernel do it: die with the supervisor instead of leaking orphans.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() == 1) std::_Exit(kChildExitUncaught);  // lost the race
#endif
    applyLimitsInChild(limits);
    closeFd(request[1]);
    closeFd(response[0]);
    int rc = kChildExitUncaught;
    try {
      rc = body(request[0], response[1]);
    } catch (const std::bad_alloc&) {
      rc = kChildExitOom;
    } catch (...) {
      rc = kChildExitUncaught;
    }
    std::_Exit(rc);
  }

  // Parent.
  closeFd(request[0]);
  closeFd(response[1]);
  const int flags = ::fcntl(response[0], F_GETFL, 0);
  if (flags >= 0) ::fcntl(response[0], F_SETFL, flags | O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.requestFd = request[1];
  child.responseFd = response[0];
  return child;
}

void closeChildFds(Child& child) {
  closeFd(child.requestFd);
  closeFd(child.responseFd);
}

void closeRequestFd(Child& child) { closeFd(child.requestFd); }

Status writeAll(int fd, std::string_view data) {
  return ioretry::writeAll(fd, data);
}

Result<std::string> readAll(int fd) { return ioretry::readAll(fd); }

Result<bool> drainAvailable(int fd, std::string* buf) {
  return ioretry::drainAvailable(fd, buf);
}

void pollReadable(const std::vector<int>& fds, int timeoutMs) {
  if (fds.empty()) {
    sleepMs(timeoutMs);
    return;
  }
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds.size());
  for (int fd : fds) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    pfds.push_back(p);
  }
  ::poll(pfds.data(), pfds.size(), timeoutMs);  // EINTR: caller loops anyway
}

std::optional<WaitOutcome> tryReap(pid_t pid) {
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &status, WNOHANG);
  } while (got == -1 && errno == EINTR);
  if (got == 0) return std::nullopt;
  if (got != pid) {
    WaitOutcome out;
    out.kind = WaitKind::kExited;
    out.exitCode = kChildExitUncaught;
    return out;
  }
  return fromWaitStatus(status);
}

WaitOutcome terminateChild(pid_t pid, double graceSeconds) {
  WaitOutcome out;
  out.kind = WaitKind::kTimedOut;
  ::kill(pid, SIGTERM);
  const int graceMs =
      graceSeconds > 0.0 ? static_cast<int>(graceSeconds * 1000.0) : 0;
  int waited = 0;
  while (waited <= graceMs) {
    if (tryReap(pid)) return out;
    sleepMs(20);
    waited += 20;
  }
  out.killEscalated = true;
  ::kill(pid, SIGKILL);
  reapBlocking(pid);
  return out;
}

}  // namespace syseco::subprocess
