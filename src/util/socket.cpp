#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/io_retry.hpp"

namespace syseco::net {

namespace {

Status sockErr(const std::string& what, int err) {
  return Status::internal(what + ": errno " + std::to_string(err) + " (" +
                          std::strerror(err) + ")");
}

Status setNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return sockErr("fcntl(O_NONBLOCK) failed", errno);
  return Status::ok();
}

/// Every socket is close-on-exec: the --serve daemon execs a worker per
/// job, and an inherited listener or session fd would keep connections
/// half-open for as long as some unrelated worker lives (a client closing
/// its end would never be seen as EOF while a worker holds a duplicate).
Status setCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0)
    return sockErr("fcntl(FD_CLOEXEC) failed", errno);
  return Status::ok();
}

void setNodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// EINTR-safe poll for one fd; returns the revents (0 on timeout).
short pollOne(int fd, short events, int timeoutMs) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  int rc;
  do {
    rc = ::poll(&p, 1, timeoutMs);
  } while (rc == -1 && errno == EINTR);
  return rc > 0 ? p.revents : 0;
}

}  // namespace

Result<std::pair<std::string, std::uint16_t>> parseHostPort(
    std::string_view spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size())
    return Status::invalidInput("worker spec '" + std::string(spec) +
                                "' is not host:port");
  const std::string_view portPart = spec.substr(colon + 1);
  std::uint32_t port = 0;
  for (char c : portPart) {
    if (c < '0' || c > '9')
      return Status::invalidInput("worker spec '" + std::string(spec) +
                                  "' has a non-numeric port");
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535)
      return Status::invalidInput("worker spec '" + std::string(spec) +
                                  "' port out of range");
  }
  if (port == 0)
    return Status::invalidInput("worker spec '" + std::string(spec) +
                                "' port out of range");
  return std::make_pair(std::string(spec.substr(0, colon)),
                        static_cast<std::uint16_t>(port));
}

Result<int> listenOn(std::uint16_t port, std::uint16_t* boundPort) {
  ioretry::ignoreSigpipeOnce();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return sockErr("socket() failed", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ioretry::closeFd(fd);
    return sockErr("bind() failed", err);
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ioretry::closeFd(fd);
    return sockErr("listen() failed", err);
  }
  if (const Status s = setNonblocking(fd); !s.isOk()) {
    ioretry::closeFd(fd);
    return s;
  }
  if (const Status s = setCloexec(fd); !s.isOk()) {
    ioretry::closeFd(fd);
    return s;
  }
  if (boundPort != nullptr) {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
        0) {
      const int err = errno;
      ioretry::closeFd(fd);
      return sockErr("getsockname() failed", err);
    }
    *boundPort = ntohs(bound.sin_port);
  }
  return fd;
}

bool isTransientAcceptError(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == ECONNABORTED;
}

Result<int> acceptClient(int listenFd, int timeoutMs, int* softErr) {
  if (softErr != nullptr) *softErr = 0;
  const short re = pollOne(listenFd, POLLIN, timeoutMs);
  if (re == 0) return -1;
  int fd;
  do {
    fd = ::accept(listenFd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (isTransientAcceptError(errno)) {
      // fd exhaustion and peer-aborted connects are load conditions, not
      // listener failures: report them softly so the server backs off and
      // retries instead of dying under pressure. (The pending connection,
      // if any, stays queued until an fd frees up.)
      if (softErr != nullptr) *softErr = errno;
      return -1;
    }
    return sockErr("accept() failed", errno);
  }
  if (const Status s = setNonblocking(fd); !s.isOk()) {
    ioretry::closeFd(fd);
    return s;
  }
  if (const Status s = setCloexec(fd); !s.isOk()) {
    ioretry::closeFd(fd);
    return s;
  }
  setNodelay(fd);
  return fd;
}

Result<int> connectTo(const std::string& host, std::uint16_t port,
                      int timeoutMs) {
  ioretry::ignoreSigpipeOnce();
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string portStr = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), portStr.c_str(), &hints,
                                   &res);
      rc != 0 || res == nullptr)
    return Status::internal("getaddrinfo('" + host +
                            "') failed: " + ::gai_strerror(rc));

  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    const int err = errno;
    ::freeaddrinfo(res);
    return sockErr("socket() failed", err);
  }
  Status fail = Status::ok();
  if (const Status s = setNonblocking(fd); !s.isOk()) fail = s;
  if (fail.isOk())
    if (const Status s = setCloexec(fd); !s.isOk()) fail = s;
  if (fail.isOk()) {
    int rc;
    do {
      rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno == EINPROGRESS) {
      const short re = pollOne(fd, POLLOUT, timeoutMs);
      if (re == 0) {
        fail = Status::internal("connect to " + host + ":" + portStr +
                                " timed out");
      } else {
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soErr, &len);
        if (soErr != 0)
          fail = sockErr("connect to " + host + ":" + portStr + " failed",
                         soErr);
      }
    } else if (rc < 0) {
      fail = sockErr("connect to " + host + ":" + portStr + " failed", errno);
    }
  }
  ::freeaddrinfo(res);
  if (!fail.isOk()) {
    ioretry::closeFd(fd);
    return fail;
  }
  setNodelay(fd);
  return fd;
}

void closeSocket(int& fd) { ioretry::closeFd(fd); }

Status sendFrame(int fd, std::uint32_t type, std::string_view payload) {
  const std::string bytes = ipc::encodeFrame(type, payload);
  const int err = ioretry::writeAllRaw(fd, bytes, /*pollOnEagain=*/true);
  if (err != 0) return sockErr("frame send failed", err);
  return Status::ok();
}

RecvOutcome takeFrame(std::string* buf, bool eof, int drainErr) {
  RecvOutcome out;
  Result<std::optional<ipc::Frame>> frame = ipc::extractFrame(buf);
  if (!frame.isOk()) {
    out.status = RecvStatus::kGarbage;
    out.detail = frame.status().message();
    return out;
  }
  if (frame.value().has_value()) {
    out.status = RecvStatus::kFrame;
    out.frame = std::move(*frame.value());
    return out;
  }
  if (drainErr != 0) {
    out.status = RecvStatus::kError;
    out.detail = "read failed: errno " + std::to_string(drainErr) + " (" +
                 std::strerror(drainErr) + ")";
    return out;
  }
  if (eof) {
    if (buf->empty()) {
      out.status = RecvStatus::kClosed;
      out.detail = "connection closed";
    } else {
      out.status = RecvStatus::kTruncated;
      out.detail = "stream ended with " + std::to_string(buf->size()) +
                   " bytes of a partial frame";
    }
    return out;
  }
  out.status = RecvStatus::kTimeout;
  return out;
}

RecvOutcome recvFrame(int fd, std::string* buf, int timeoutMs) {
  int remaining = timeoutMs;
  while (true) {
    const ioretry::DrainOutcome d = ioretry::drainNonblockingRaw(fd, buf);
    const bool eof = d.state == ioretry::DrainState::kEof;
    const int err = d.state == ioretry::DrainState::kError ? d.err : 0;
    RecvOutcome out = takeFrame(buf, eof, err);
    if (out.status != RecvStatus::kTimeout) return out;
    if (remaining <= 0) return out;  // kTimeout
    const int slice = remaining < 50 ? remaining : 50;
    pollOne(fd, POLLIN, slice);
    remaining -= slice;
  }
}

}  // namespace syseco::net
