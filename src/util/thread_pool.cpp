#include "util/thread_pool.hpp"

#include <utility>

namespace syseco {

ThreadPool::ThreadPool(std::size_t threads) {
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (queues_.empty()) {  // inline mode: no workers at all
    packaged();
    return future;
  }
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wakeMutex_);
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(packaged));
  }
  wake_.notify_all();
  return future;
}

bool ThreadPool::popOrSteal(std::size_t self, std::packaged_task<void()>* out) {
  {  // own queue: back (LIFO - most recently pushed, cache-warm)
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal: front (FIFO - oldest first, the task its owner would reach last).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    std::packaged_task<void()> task;
    if (popOrSteal(self, &task)) {
      task();  // exceptions land in the task's future
      continue;
    }
    std::unique_lock<std::mutex> lock(wakeMutex_);
    if (stopping_) {
      // Drain: a task may have been enqueued between the failed steal and
      // acquiring the lock; re-check before exiting.
      lock.unlock();
      if (popOrSteal(self, &task)) {
        task();
        continue;
      }
      return;
    }
    wake_.wait(lock);
  }
}

}  // namespace syseco
