#pragma once
// Crash-safe file replacement: write to a temporary sibling, fsync it, then
// rename() over the destination. A reader (or a resumed run) either sees
// the complete old content or the complete new content - never a torn
// write. Used for the CLI's --report output and the journal commit marker.

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco {

/// Atomically replaces `path` with `content`. The temporary file lives in
/// the same directory (rename must not cross filesystems) and is removed
/// on failure. The data and the directory entry are both fsync'd before
/// returning ok, so the replacement survives power loss.
Status writeFileAtomic(const std::string& path, std::string_view content);

/// fsync() on a directory, making a previous rename/create in it durable.
/// Best-effort on filesystems that reject directory fsync.
Status syncDirectory(const std::string& dir);

/// Directory part of `path` ("." when the path has no separator).
std::string parentDirectory(const std::string& path);

}  // namespace syseco
