#pragma once
// Crash-safe file replacement: write to a temporary sibling, fsync it, then
// rename() over the destination. A reader (or a resumed run) either sees
// the complete old content or the complete new content - never a torn
// write. Used for the CLI's --report output and the journal commit marker.

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco {

/// Atomically replaces `path` with `content`. The temporary file lives in
/// the same directory (rename must not cross filesystems) and is removed
/// on failure. The data and the directory entry are both fsync'd before
/// returning ok, so the replacement survives power loss.
///
/// `site` names the fault-injection site prefix for the staged write:
/// the shim consults `<site>.write` and `<site>.fsync` (util/fault), so
/// chaos schedules can fail any atomic replacement mid-flight. On any
/// failure - injected or real - the staging file is unlinked and `path`
/// still holds its previous complete content.
Status writeFileAtomic(const std::string& path, std::string_view content,
                       std::string_view site = "atomic");

/// fsync() on a directory, making a previous rename/create in it durable.
/// Best-effort on filesystems that reject directory fsync.
Status syncDirectory(const std::string& dir);

/// Directory part of `path` ("." when the path has no separator).
std::string parentDirectory(const std::string& path);

/// Unlinks leftover writeFileAtomic staging files ("<name>.tmp.<pid>") in
/// `dir`. A crash between create and rename legitimately strands one;
/// recovery paths (journal/WAL open) sweep so that staging garbage never
/// accumulates and the chaos harness can treat a surviving tmp file as a
/// leak. Returns the number of files removed; a missing directory is 0.
std::size_t removeStaleStaging(const std::string& dir);

}  // namespace syseco
