#pragma once
// Build provenance for reports and repro bundles.
//
// A repro bundle is only actionable if it pins down *which build* produced
// the disagreement: an oracle mismatch under ASan at -O0 and one from a
// Release binary are different investigations. The git hash, compiler,
// build type and sanitizer mode are captured at configure time (CMake
// compile definitions on syseco_util) and surfaced here, in the CLI's
// `--version` output, in the JSON report's "build" object and in every
// repro bundle's meta.json.

#include <string>

namespace syseco {

struct BuildInfo {
  std::string gitHash;    ///< short commit hash, "unknown" outside a checkout
  std::string compiler;   ///< __VERSION__ of the compiler that built this TU
  std::string buildType;  ///< CMAKE_BUILD_TYPE (Release, RelWithDebInfo, ...)
  std::string sanitizer;  ///< SYSECO_SANITIZE value (OFF, address, thread)
};

/// The build info baked into this binary.
const BuildInfo& buildInfo();

/// One-line human-readable form, e.g.
/// "syseco <hash> (<buildType>, sanitize=<mode>) <compiler>".
std::string buildInfoLine();

/// The "build" JSON object embedded in reports and repro-bundle metadata.
/// `indent` is prepended to every line after the first.
std::string buildInfoJson(const std::string& indent);

}  // namespace syseco
