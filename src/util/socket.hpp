#pragma once
// Framed TCP transport for the distributed worker fleet.
//
// The isolation supervisor's pipe transport (util/subprocess.hpp) carries
// one frame per direction and dies with the box. This layer carries the
// same SEF1 frames (util/ipc.hpp) over persistent sockets between the
// `--workers` supervisor and `--serve-worker` agents, with the properties
// a lossy network demands: connect and read timeouts, EINTR-safe framed
// send (util/io_retry.hpp), and an incremental receive that distinguishes
// the failure modes the fleet taxonomy cares about - a clean close, a
// stream that ends mid-frame, and bytes that were never a frame at all.
//
// All sockets are switched to nonblocking mode: reads go through
// poll+drain so a stalled peer costs a timeout, never a hang, and writes
// ride the EAGAIN-aware retry loop.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "util/ipc.hpp"
#include "util/status.hpp"

namespace syseco::net {

/// Splits "host:port" (the --workers list element format). The host may be
/// a name or numeric address; the port must be 1..65535.
Result<std::pair<std::string, std::uint16_t>> parseHostPort(
    std::string_view spec);

/// Opens a listening socket on every interface. Port 0 binds an ephemeral
/// port; the actually-bound port is stored through `boundPort` when
/// non-null. The returned fd is nonblocking.
Result<int> listenOn(std::uint16_t port, std::uint16_t* boundPort = nullptr);

/// True for accept() errno values that mean "back off and retry", not "the
/// listener is broken": fd-table exhaustion (EMFILE/ENFILE), transient
/// kernel resource pressure (ENOBUFS/ENOMEM) and connections the peer
/// aborted before accept could run (ECONNABORTED). A server loop must warn
/// and keep serving through these instead of treating them as fatal.
bool isTransientAcceptError(int err);

/// Waits up to `timeoutMs` for a connection; returns the accepted
/// (nonblocking) fd, or -1 on timeout. Transient accept failures
/// (isTransientAcceptError) also return -1 and report the errno through
/// `softErr` when non-null, so callers can journal a warning and back off
/// instead of failing; only genuinely broken listeners return a Status.
Result<int> acceptClient(int listenFd, int timeoutMs, int* softErr = nullptr);

/// Connects with a deadline; the returned fd is nonblocking with
/// TCP_NODELAY set (frames are small and latency-sensitive). Refused,
/// unreachable and timed-out connects all come back as a non-ok Status -
/// the supervisor maps every connect failure to its conn-refused cause.
Result<int> connectTo(const std::string& host, std::uint16_t port,
                      int timeoutMs);

/// EINTR-safe close; resets fd to -1.
void closeSocket(int& fd);

/// Encodes and fully writes one frame. Any send failure (EPIPE,
/// ECONNRESET, ...) is kInternal; the caller treats the connection as lost.
Status sendFrame(int fd, std::uint32_t type, std::string_view payload);

enum class RecvStatus {
  kFrame,      ///< one complete frame decoded
  kTimeout,    ///< nothing complete within the deadline; stream still open
  kClosed,     ///< orderly EOF on a frame boundary
  kTruncated,  ///< EOF with a partial frame in the buffer
  kGarbage,    ///< bytes at the stream front are not a valid frame
  kError,      ///< transport-level read error (e.g. ECONNRESET)
};

struct RecvOutcome {
  RecvStatus status = RecvStatus::kTimeout;
  ipc::Frame frame;    ///< valid when status == kFrame
  std::string detail;  ///< diagnostic for the non-frame outcomes
};

/// Classifies the stream after the caller drained fresh bytes into *buf
/// itself: extracts one frame if complete, otherwise reports how the
/// stream stands. `eof` is what the drain observed. Pure (no I/O), so the
/// supervisor can multiplex many peers over one poll.
RecvOutcome takeFrame(std::string* buf, bool eof, int drainErr = 0);

/// Blocking receive with a deadline: polls, drains, and extracts until one
/// frame is complete, the deadline passes, or the stream fails.
RecvOutcome recvFrame(int fd, std::string* buf, int timeoutMs);

}  // namespace syseco::net
