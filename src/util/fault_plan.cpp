#include "util/fault_plan.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace syseco::fault {

namespace {

bool parseU64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::vector<std::string> splitTokens(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) tokens.emplace_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

/// The canonical fired-log line for a one-shot entry (must match what
/// Injector::logFired writes).
std::string firedKey(const PlanEntry& e) {
  std::string key = std::to_string(e.atHit);
  key += ' ';
  key += e.site;
  key += ' ';
  key += kindName(e.kind);
  return key;
}

Result<std::string> slurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::invalidInput("cannot read file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<FaultPlan> parseFaultPlan(std::string_view text) {
  FaultPlan plan;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineNo;
    const std::vector<std::string> tokens = splitTokens(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;

    const std::string where = "fault plan line " + std::to_string(lineNo);
    PlanEntry entry;
    if (tokens[0] == "at") {
      entry.oneShot = true;
    } else if (tokens[0] == "from") {
      entry.oneShot = false;
    } else {
      return Status::invalidInput(where + ": expected 'at' or 'from', got '" +
                                  tokens[0] + "'");
    }
    if (tokens.size() < 4 || tokens.size() > 5) {
      return Status::invalidInput(
          where + ": expected '<at|from> <hit> <site> <kind> [arg]'");
    }
    if (!parseU64(tokens[1], &entry.atHit)) {
      return Status::invalidInput(where + ": bad hit ordinal '" + tokens[1] +
                                  "'");
    }
    entry.site = tokens[2];
    const std::optional<Kind> kind = kindFromName(tokens[3]);
    if (!kind) {
      return Status::invalidInput(where + ": unknown fault kind '" +
                                  tokens[3] + "'");
    }
    entry.kind = *kind;
    if (tokens.size() == 5 && !parseU64(tokens[4], &entry.arg)) {
      return Status::invalidInput(where + ": bad arg '" + tokens[4] + "'");
    }
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

std::string serializeFaultPlan(const FaultPlan& plan) {
  std::string out;
  for (const PlanEntry& e : plan.entries) {
    out += e.oneShot ? "at " : "from ";
    out += std::to_string(e.atHit);
    out += ' ';
    out += e.site;
    out += ' ';
    out += kindName(e.kind);
    if (e.arg != 0) {
      out += ' ';
      out += std::to_string(e.arg);
    }
    out += '\n';
  }
  return out;
}

const std::vector<FaultSite>& storageFaultSites() {
  // Every fallibleWrite/fallibleFsync site in the tree. The README's fault
  // reference table mirrors this list; update both together.
  static const std::vector<FaultSite> sites = {
      // Engine run journal (util/journal under the CLI's journal dir).
      {"journal.write", false},
      {"journal.fsync", true},
      {"journal.marker.write", false},
      {"journal.marker.fsync", true},
      {"journal.compact.write", false},
      {"journal.compact.fsync", true},
      // Generic atomic-file staging (reports, netlists, port files).
      {"atomic.write", false},
      {"atomic.fsync", true},
      // Daemon job-queue WAL (serve/job_queue).
      {"queue.wal.write", false},
      {"queue.wal.fsync", true},
      {"queue.wal.marker.write", false},
      {"queue.wal.marker.fsync", true},
      {"queue.wal.compact.write", false},
      {"queue.wal.compact.fsync", true},
      // Batch case ledger (serve/batch_ledger).
      {"ledger.wal.write", false},
      {"ledger.wal.fsync", true},
      {"ledger.wal.marker.write", false},
      {"ledger.wal.marker.fsync", true},
      {"ledger.wal.compact.write", false},
      {"ledger.wal.compact.fsync", true},
      // Failure repro bundles (verify/repro).
      {"repro.write", false},
      {"repro.fsync", true},
  };
  return sites;
}

FaultPlan generateChaosPlan(std::uint64_t seed, std::size_t count,
                            const std::vector<FaultSite>* sites) {
  const std::vector<FaultSite>& pool =
      sites != nullptr ? *sites : storageFaultSites();
  FaultPlan plan;
  if (pool.empty() || count == 0) return plan;
  Rng rng(seed);
  // Write-site and fsync-site kind pools. Crashes ride along at low
  // weight: a schedule mixing power cuts with disk faults is exactly the
  // storm the heal invariant must survive.
  static const Kind kWriteKinds[] = {Kind::kEnospc, Kind::kEio,
                                     Kind::kShortWrite, Kind::kTornFrame,
                                     Kind::kTornFrame, Kind::kCrash};
  static const Kind kFsyncKinds[] = {Kind::kFsyncFail, Kind::kFsyncFail,
                                     Kind::kEio, Kind::kCrash};
  std::vector<std::pair<std::string_view, std::uint64_t>> used;
  for (std::size_t i = 0; i < count; ++i) {
    PlanEntry entry;
    // Unique (site, hit) pairs: two one-shots on the same ordinal could
    // never both fire, which would leave a dangling armed trigger and an
    // ambiguous fired-log match. Bounded rejection keeps generation
    // deterministic even when the pool is nearly saturated.
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const FaultSite& site =
          pool[static_cast<std::size_t>(rng.below(pool.size()))];
      const std::uint64_t hit = rng.below(6);
      bool clash = false;
      for (const auto& [usedSite, usedHit] : used) {
        if (usedSite == site.name && usedHit == hit) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      used.emplace_back(site.name, hit);
      entry.site = std::string(site.name);
      entry.atHit = hit;
      if (site.isFsync) {
        entry.kind = kFsyncKinds[rng.below(std::size(kFsyncKinds))];
      } else {
        entry.kind = kWriteKinds[rng.below(std::size(kWriteKinds))];
      }
      if (entry.kind == Kind::kTornFrame || entry.kind == Kind::kShortWrite) {
        // 0 means "half the buffer"; a concrete small offset tears inside
        // the frame header about half the time.
        if (rng.flip()) entry.arg = rng.range(1, 24);
      }
      placed = true;
    }
    if (!placed) break;  // pool saturated; plan is just shorter
    plan.entries.push_back(std::move(entry));
  }
  return plan;
}

Status applyFaultPlan(const FaultPlan& plan, const std::string& planPath) {
  Injector& inj = Injector::instance();
  std::vector<std::string> fired;
  if (!planPath.empty()) {
    const std::string logPath = planPath + ".fired";
    std::ifstream in(logPath);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) fired.push_back(line);
    }
    inj.setFireLog(logPath);
  }
  for (const PlanEntry& e : plan.entries) {
    if (e.oneShot) {
      // Consume one matching fired-log line per entry: an earlier life of
      // this process tree already injected it.
      bool consumed = false;
      const std::string key = firedKey(e);
      for (auto it = fired.begin(); it != fired.end(); ++it) {
        if (*it == key) {
          fired.erase(it);
          consumed = true;
          break;
        }
      }
      if (consumed) continue;
      inj.schedule(e.site, e.kind, e.atHit, e.arg);
    } else {
      inj.arm(e.site, e.kind, e.atHit, e.arg);
    }
  }
  return Status::ok();
}

Status loadFaultPlanFromEnv() {
  const char* env = std::getenv("SYSECO_FAULT_PLAN");
  if (env == nullptr || env[0] == '\0') return Status::ok();
  const std::string path(env);
  Result<std::string> text = slurpFile(path);
  if (!text.isOk()) {
    return Status::invalidInput("SYSECO_FAULT_PLAN: " +
                                text.status().message());
  }
  Result<FaultPlan> plan = parseFaultPlan(text.value());
  if (!plan.isOk()) {
    return Status::invalidInput("SYSECO_FAULT_PLAN: " +
                                plan.status().message());
  }
  return applyFaultPlan(plan.value(), path);
}

}  // namespace syseco::fault
