#pragma once
// CRC-32 (reflected, polynomial 0xEDB88320 - the zlib/PNG variant) used to
// checksum run-journal records and netlist snapshots. A journal written on
// one machine must be verifiable on another, so the checksum is a fixed
// public algorithm rather than a process-local hash.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco {

namespace detail {

constexpr std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();

}  // namespace detail

/// Incremental form: feed `crc32Update(previous, chunk)` chunk by chunk,
/// starting from crc32Init().
constexpr std::uint32_t crc32Init() { return 0xFFFFFFFFu; }

constexpr std::uint32_t crc32Update(std::uint32_t state,
                                    std::string_view data) {
  for (unsigned char byte : data)
    state = detail::kCrc32Table[(state ^ byte) & 0xFFu] ^ (state >> 8);
  return state;
}

constexpr std::uint32_t crc32Final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
constexpr std::uint32_t crc32(std::string_view data) {
  return crc32Final(crc32Update(crc32Init(), data));
}

/// Streaming CRC-32 of a file's contents (repro-bundle manifests checksum
/// multi-megabyte netlist snapshots, so the file is read in fixed-size
/// chunks rather than slurped). Returns kInvalidInput when the file cannot
/// be opened and kInternal on a mid-stream read error.
Result<std::uint32_t> crc32OfFile(const std::string& path);

}  // namespace syseco
