#include "util/ipc.hpp"

#include "util/crc32.hpp"

namespace syseco::ipc {

namespace {

void putU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t getU32(std::string_view bytes, std::size_t off) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(
              bytes[off + 1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(
              bytes[off + 2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(
              bytes[off + 3]))
          << 24);
}

Status bad(const std::string& what) {
  return Status::invalidInput("ipc frame: " + what);
}

bool knownType(std::uint32_t type) {
  return type >= kTypeTaskRequest && type <= kTypeFleetCaseResult;
}

}  // namespace

std::string encodeFrame(std::uint32_t type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  putU32(&out, type);
  putU32(&out, static_cast<std::uint32_t>(payload.size()));
  putU32(&out, crc32(payload));
  out.append(payload);
  return out;
}

Result<Frame> decodeFrame(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) return bad("truncated header");
  if (bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0)
    return bad("bad magic");
  const std::uint32_t type = getU32(bytes, 4);
  if (!knownType(type))
    return bad("unknown message type " + std::to_string(type));
  const std::uint32_t length = getU32(bytes, 8);
  if (length > kMaxPayloadBytes)
    return bad("oversized payload (" + std::to_string(length) + " bytes)");
  if (bytes.size() < kHeaderBytes + length) return bad("truncated payload");
  if (bytes.size() > kHeaderBytes + length)
    return bad("trailing bytes after payload");
  const std::string_view payload = bytes.substr(kHeaderBytes, length);
  const std::uint32_t crc = getU32(bytes, 12);
  if (crc != crc32(payload)) return bad("payload checksum mismatch");
  Frame frame;
  frame.type = type;
  frame.payload.assign(payload);
  return frame;
}

Result<std::size_t> frameBytesNeeded(std::string_view bytes) {
  // Validate what has arrived so far even before the header completes:
  // garbage at the stream front fails fast instead of waiting on a length
  // field that will never make sense.
  const std::size_t magicAvail =
      bytes.size() < sizeof(kMagic) ? bytes.size() : sizeof(kMagic);
  if (bytes.compare(0, magicAvail, std::string_view(kMagic, magicAvail)) != 0)
    return bad("bad magic");
  if (bytes.size() < 8) return std::size_t{0};
  const std::uint32_t type = getU32(bytes, 4);
  if (!knownType(type))
    return bad("unknown message type " + std::to_string(type));
  if (bytes.size() < 12) return std::size_t{0};
  const std::uint32_t length = getU32(bytes, 8);
  if (length > kMaxPayloadBytes)
    return bad("oversized payload (" + std::to_string(length) + " bytes)");
  return kHeaderBytes + static_cast<std::size_t>(length);
}

Result<std::optional<Frame>> extractFrame(std::string* stream) {
  if (stream->empty()) return std::optional<Frame>{};
  const Result<std::size_t> need = frameBytesNeeded(*stream);
  if (!need.isOk()) return need.status();
  if (need.value() == 0 || stream->size() < need.value())
    return std::optional<Frame>{};
  Result<Frame> frame =
      decodeFrame(std::string_view(*stream).substr(0, need.value()));
  if (!frame.isOk()) return frame.status();
  stream->erase(0, need.value());
  return std::optional<Frame>{std::move(frame.value())};
}

}  // namespace syseco::ipc
