#pragma once
// Internal invariant checking. SYSECO_CHECK is active in all build types:
// the algorithms in this library rely on structural invariants (acyclicity,
// pin/net consistency, BDD ordering) whose violation must never be silent.

#include <cstdio>
#include <cstdlib>

namespace syseco::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "syseco: invariant violated: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace syseco::detail

#define SYSECO_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) ::syseco::detail::checkFailed(#expr, __FILE__, __LINE__); \
  } while (false)
