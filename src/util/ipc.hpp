#pragma once
// Length-prefixed, crc32-framed IPC messages between the isolation
// supervisor and its forked workers (util/subprocess.hpp).
//
// Wire format (little-endian u32 fields, 16-byte header):
//
//   magic "SEF1" | type | payload length | crc32(payload) | payload bytes
//
// One pipe carries exactly one frame per direction: the supervisor writes a
// task request and closes; the worker writes a result and exits. A frame is
// therefore decoded from the *complete* byte stream, and the decoder is
// hardened the same way the run-journal parser is: truncated, bit-flipped,
// oversized or trailing-garbage input yields a Status, never UB - a worker
// is an untrusted job, and a crashed worker's half-written frame must read
// as a classified garbage-ipc failure, not as supervisor corruption.
//
// Payloads are JSON documents (reusing the journal_io serialization idiom)
// so the same fuzz-hardened parser guards the semantic layer too.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco::ipc {

inline constexpr char kMagic[4] = {'S', 'E', 'F', '1'};
inline constexpr std::size_t kHeaderBytes = 16;
/// Frames carry netlist snapshots of patch fragments; cap well above any
/// realistic size so a corrupt length field cannot drive allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

/// Message types. Values are part of the wire format.
inline constexpr std::uint32_t kTypeTaskRequest = 1;
inline constexpr std::uint32_t kTypeWorkerResult = 2;

struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// Serializes one frame (header + payload).
std::string encodeFrame(std::uint32_t type, std::string_view payload);

/// Decodes exactly one frame from the complete stream `bytes`. Rejects
/// short headers, bad magic, unknown types, oversized or truncated
/// payloads, trailing bytes and checksum mismatches with kInvalidInput.
Result<Frame> decodeFrame(std::string_view bytes);

}  // namespace syseco::ipc
