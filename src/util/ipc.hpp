#pragma once
// Length-prefixed, crc32-framed IPC messages between the isolation
// supervisor and its forked workers (util/subprocess.hpp).
//
// Wire format (little-endian u32 fields, 16-byte header):
//
//   magic "SEF1" | type | payload length | crc32(payload) | payload bytes
//
// One pipe carries exactly one frame per direction: the supervisor writes a
// task request and closes; the worker writes a result and exits. A frame is
// therefore decoded from the *complete* byte stream, and the decoder is
// hardened the same way the run-journal parser is: truncated, bit-flipped,
// oversized or trailing-garbage input yields a Status, never UB - a worker
// is an untrusted job, and a crashed worker's half-written frame must read
// as a classified garbage-ipc failure, not as supervisor corruption.
//
// Payloads are JSON documents (reusing the journal_io serialization idiom)
// so the same fuzz-hardened parser guards the semantic layer too.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco::ipc {

inline constexpr char kMagic[4] = {'S', 'E', 'F', '1'};
inline constexpr std::size_t kHeaderBytes = 16;
/// Frames carry netlist snapshots of patch fragments; cap well above any
/// realistic size so a corrupt length field cannot drive allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

/// Message types. Values are part of the wire format.
inline constexpr std::uint32_t kTypeTaskRequest = 1;
inline constexpr std::uint32_t kTypeWorkerResult = 2;
// Fleet transport (util/socket.hpp): a persistent TCP stream carries many
// frames per direction, so these travel through the incremental decoder
// below rather than the one-shot decodeFrame contract.
inline constexpr std::uint32_t kTypeFleetTask = 3;       ///< supervisor -> agent
inline constexpr std::uint32_t kTypeFleetNeedCase = 4;   ///< agent -> supervisor
inline constexpr std::uint32_t kTypeFleetCase = 5;       ///< supervisor -> agent
inline constexpr std::uint32_t kTypeFleetHeartbeat = 6;  ///< agent -> supervisor
inline constexpr std::uint32_t kTypeFleetResult = 7;     ///< agent -> supervisor
inline constexpr std::uint32_t kTypeFleetFailure = 8;    ///< agent -> supervisor
// ECO-as-a-service session protocol (src/serve/): a client submits whole
// rectification jobs to the resident `--serve` daemon and polls their
// durable queue state over the same SEF1 stream framing.
inline constexpr std::uint32_t kTypeServeSubmit = 9;     ///< client -> daemon
inline constexpr std::uint32_t kTypeServeAccepted = 10;  ///< daemon -> client
inline constexpr std::uint32_t kTypeServeRejected = 11;  ///< daemon -> client
inline constexpr std::uint32_t kTypeServeStatus = 12;    ///< client -> daemon
inline constexpr std::uint32_t kTypeServeJobState = 13;  ///< daemon -> client
inline constexpr std::uint32_t kTypeServeCancel = 14;    ///< client -> daemon
// Whole-case batch fan-out (src/serve/batch.hpp): the supervisor dispatches
// an entire rectification case to an agent; the agent streams heartbeats and
// answers with one epoch-stamped result envelope carrying the full report
// JSON, verdict records and the patched netlist.
inline constexpr std::uint32_t kTypeFleetCaseTask = 15;    ///< supervisor -> agent
inline constexpr std::uint32_t kTypeFleetCaseResult = 16;  ///< agent -> supervisor

struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// Serializes one frame (header + payload).
std::string encodeFrame(std::uint32_t type, std::string_view payload);

/// Decodes exactly one frame from the complete stream `bytes`. Rejects
/// short headers, bad magic, unknown types, oversized or truncated
/// payloads, trailing bytes and checksum mismatches with kInvalidInput.
Result<Frame> decodeFrame(std::string_view bytes);

/// Stream decode, step 1: the total on-wire size of the frame that starts
/// at the front of `bytes`, once its header is fully present. Returns 0
/// while fewer bytes than the length field's offset have arrived ("need
/// more"); kInvalidInput as soon as the prefix cannot open a valid frame
/// (bad magic, unknown type, oversized length) - a stream gone bad is
/// detected before the payload lands, not after.
Result<std::size_t> frameBytesNeeded(std::string_view bytes);

/// Stream decode, step 2: consumes exactly one complete frame from the
/// front of *stream, validating it like decodeFrame. Returns the frame, or
/// an empty optional while the stream holds only a partial frame, or
/// kInvalidInput when the front is not a frame. On success the consumed
/// bytes are erased from *stream.
Result<std::optional<Frame>> extractFrame(std::string* stream);

}  // namespace syseco::ipc
