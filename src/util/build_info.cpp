#include "util/build_info.hpp"

namespace syseco {

namespace {

#ifndef SYSECO_GIT_HASH
#define SYSECO_GIT_HASH "unknown"
#endif
#ifndef SYSECO_BUILD_TYPE
#define SYSECO_BUILD_TYPE "unknown"
#endif
#ifndef SYSECO_SANITIZE_MODE
#define SYSECO_SANITIZE_MODE "OFF"
#endif

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const BuildInfo& buildInfo() {
  static const BuildInfo info{SYSECO_GIT_HASH, __VERSION__, SYSECO_BUILD_TYPE,
                              SYSECO_SANITIZE_MODE};
  return info;
}

std::string buildInfoLine() {
  const BuildInfo& b = buildInfo();
  return "syseco " + b.gitHash + " (" + b.buildType +
         ", sanitize=" + b.sanitizer + ") " + b.compiler;
}

std::string buildInfoJson(const std::string& indent) {
  const BuildInfo& b = buildInfo();
  std::string j = "{\n";
  j += indent + "  \"git_hash\": \"" + jsonEscape(b.gitHash) + "\",\n";
  j += indent + "  \"compiler\": \"" + jsonEscape(b.compiler) + "\",\n";
  j += indent + "  \"build_type\": \"" + jsonEscape(b.buildType) + "\",\n";
  j += indent + "  \"sanitizer\": \"" + jsonEscape(b.sanitizer) + "\"\n";
  j += indent + "}";
  return j;
}

}  // namespace syseco
