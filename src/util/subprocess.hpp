#pragma once
// Fault-contained worker subprocesses for the isolation supervisor.
//
// A worker is forked (no exec: it inherits the parent's loaded netlists and
// analyses copy-on-write), sandboxed with setrlimit (RLIMIT_AS address-space
// and RLIMIT_CPU cpu-time ceilings), and talks to the supervisor over two
// pipes carrying crc32-framed IPC messages (util/ipc.hpp). The supervisor
// side offers EINTR-safe primitives: poll across children, nonblocking pipe
// drains, a WNOHANG reap probe, and SIGTERM -> grace -> SIGKILL escalation
// for children past their wall deadline.
//
// The child never returns from forkWorker: it runs the supplied body and
// _Exits with its return value. _Exit skips destructors, atexit handlers
// and stdio flushes on purpose - a forked child sharing the parent's stdio
// buffers must not flush them a second time, and a worker's teardown must
// not be able to corrupt shared state the parent still owns.
//
// Note: RLIMIT_AS composes poorly with sanitizer builds (ASan/TSan reserve
// terabytes of shadow address space), so tests exercise the oom path via
// fault injection rather than tiny memory ceilings.

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace syseco::subprocess {

// Exit codes reserved by the forkWorker child wrapper. Chosen outside the
// ranges other parts of the system use (CLI exit codes 0..4/130, the fault
// injector's simulated kill -9 at 137) so the supervisor's classification
// cannot be ambiguous.
inline constexpr int kChildExitOk = 0;
inline constexpr int kChildExitOom = 61;          ///< std::bad_alloc escaped
inline constexpr int kChildExitBadRequest = 62;   ///< request frame garbage
inline constexpr int kChildExitFaultInjected = 63;  ///< injected, reportable
inline constexpr int kChildExitUncaught = 64;     ///< non-alloc exception

/// Sandbox ceilings applied in the child before the body runs; 0 inherits
/// the parent's limit.
struct Limits {
  std::uint64_t memoryBytes = 0;  ///< RLIMIT_AS (soft == hard)
  double cpuSeconds = 0.0;        ///< RLIMIT_CPU, rounded up to whole seconds
};

/// Parent-side handle of a forked worker.
struct Child {
  pid_t pid = -1;
  int requestFd = -1;   ///< write side: supervisor -> worker request
  int responseFd = -1;  ///< read side (O_NONBLOCK): worker -> supervisor
  bool valid() const { return pid > 0; }
};

/// Forks a worker and returns the parent-side handle. In the child: signal
/// dispositions the CLI installed (SIGINT/SIGTERM) are reset to default so
/// the supervisor's escalation actually terminates it, `limits` is applied,
/// and `body(requestReadFd, responseWriteFd)` runs under a catch-all that
/// maps std::bad_alloc to kChildExitOom and anything else to
/// kChildExitUncaught; the child then _Exits with the resulting code.
Result<Child> forkWorker(const Limits& limits,
                         const std::function<int(int, int)>& body);

/// Releases the parent-side pipe fds (idempotent). Does not reap.
void closeChildFds(Child& child);

/// Closes only the request (write) fd - the EOF that tells the worker its
/// request is complete - leaving the response fd open for draining.
void closeRequestFd(Child& child);

/// EINTR-safe full write; kInternal on any unrecoverable error (including
/// EPIPE after the child died - SIGPIPE is ignored process-wide on first
/// forkWorker call). The retry loops behind these three helpers live in
/// util/io_retry.hpp, shared with the TCP fleet transport.
Status writeAll(int fd, std::string_view data);

/// EINTR-safe blocking read to EOF (worker side reads its request here).
Result<std::string> readAll(int fd);

/// Appends whatever is currently readable on a nonblocking fd to *buf.
/// Returns true while the pipe is still open, false on EOF; kInternal on a
/// real read error.
Result<bool> drainAvailable(int fd, std::string* buf);

/// Blocks until any fd in `fds` is readable or `timeoutMs` elapses
/// (EINTR-safe). Empty `fds` degenerates to a sleep.
void pollReadable(const std::vector<int>& fds, int timeoutMs);

enum class WaitKind {
  kExited,    ///< normal exit; exitCode is valid
  kSignaled,  ///< terminated by a signal; signal is valid
  kTimedOut,  ///< supervisor deadline: SIGTERM (then SIGKILL) was delivered
};

struct WaitOutcome {
  WaitKind kind = WaitKind::kExited;
  int exitCode = 0;
  int signal = 0;
  bool killEscalated = false;  ///< SIGTERM grace expired; SIGKILL was needed
};

/// Nonblocking reap probe: nullopt while the child is still running.
std::optional<WaitOutcome> tryReap(pid_t pid);

/// Terminates and reaps a child: SIGTERM, up to `graceSeconds` of polling,
/// then SIGKILL. Returns kTimedOut (with killEscalated set accordingly).
/// Used both for wall-deadline enforcement and supervisor shutdown.
WaitOutcome terminateChild(pid_t pid, double graceSeconds);

}  // namespace syseco::subprocess
