#include "util/atomic_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault.hpp"

namespace syseco {

namespace {

Status errnoStatus(const std::string& what, const std::string& path) {
  return Status::internal(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string parentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status syncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errnoStatus("cannot open directory", dir);
  // Some filesystems reject fsync on directories (EINVAL); the rename is
  // still atomic there, just not durable against power loss.
  if (::fsync(fd) != 0 && errno != EINVAL && errno != EROFS) {
    const Status s = errnoStatus("cannot fsync directory", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::ok();
}

Status writeFileAtomic(const std::string& path, std::string_view content,
                       std::string_view site) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const std::string writeSite = std::string(site) + ".write";
  const std::string fsyncSite = std::string(site) + ".fsync";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errnoStatus("cannot create", tmp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n = fault::fallibleWrite(
        fd, content.data() + written, content.size() - written, writeSite);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = errnoStatus("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    written += static_cast<std::size_t>(n);
  }
  if (fault::fallibleFsync(fd, fsyncSite) != 0) {
    const Status s = errnoStatus("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    const Status s = errnoStatus("cannot close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status s = errnoStatus("cannot rename to", path);
    ::unlink(tmp.c_str());
    return s;
  }
  return syncDirectory(parentDirectory(path));
}

std::size_t removeStaleStaging(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::size_t removed = 0;
  while (const dirent* entry = ::readdir(d)) {
    const std::string_view name(entry->d_name);
    if (name.find(".tmp.") == std::string_view::npos) continue;
    const std::string path = dir + "/" + std::string(name);
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

}  // namespace syseco
