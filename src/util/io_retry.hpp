#pragma once
// EINTR-safe full-read/full-write retry loops, shared by every transport.
//
// The pipe transport (util/subprocess.hpp) and the TCP fleet transport
// (util/socket.hpp) both need the same three primitives: write everything
// or report why not, read to EOF, and drain whatever a nonblocking fd has
// buffered right now. Keeping one tested copy here means a retry-loop bug
// cannot fix itself in one transport and survive in the other.
//
// Two layers are exposed on purpose. The raw layer reports errno so a
// caller that must classify failures (the socket layer maps ECONNRESET and
// EPIPE to its conn-reset taxonomy cause) can do so without parsing error
// strings; the Status layer wraps the raw one for callers that only need
// success-or-diagnostic.

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace syseco::ioretry {

/// EINTR-safe full write. Returns 0 on success, otherwise the errno of the
/// failing write(). With `pollOnEagain` set, EAGAIN/EWOULDBLOCK on a
/// nonblocking fd waits for writability and retries instead of failing
/// (sockets); without it, EAGAIN is reported like any other error (pipes
/// are used blocking).
int writeAllRaw(int fd, std::string_view data, bool pollOnEagain = false);

/// EINTR-safe full write with a Status diagnostic (pipe transport surface).
Status writeAll(int fd, std::string_view data);

/// EINTR-safe blocking read to EOF.
Result<std::string> readAll(int fd);

enum class DrainState {
  kOpen,   ///< drained everything currently buffered; fd still open
  kEof,    ///< orderly end of stream
  kError,  ///< read() failed; see `err`
};

struct DrainOutcome {
  DrainState state = DrainState::kOpen;
  int err = 0;  ///< errno when state == kError
};

/// Appends whatever is currently readable on a nonblocking fd to *buf and
/// reports how the stream stands. Never blocks.
DrainOutcome drainNonblockingRaw(int fd, std::string* buf);

/// Status-layer wrapper: true while the stream is open, false on EOF,
/// kInternal on a read error (pipe transport surface).
Result<bool> drainAvailable(int fd, std::string* buf);

/// Installs a process-wide SIGPIPE ignore exactly once. A peer that dies
/// mid-conversation must surface as a classified transport failure in the
/// supervisor, not as a SIGPIPE killing it. Called by both transports.
void ignoreSigpipeOnce();

/// Closes an fd, retrying on EINTR, and resets it to -1 (idempotent).
void closeFd(int& fd);

}  // namespace syseco::ioretry
