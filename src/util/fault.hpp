#pragma once
// Deterministic fault injection for the resource-governor degradation paths.
//
// Budget exhaustion, BDD node blowups and allocation failures are rare and
// timing-dependent in production, which makes the code that reacts to them
// (staged degradation, cone-clone fallback, structured parser errors) the
// least-tested code in the engine. This hook lets tests - and operators,
// via the SYSECO_FAULT_INJECT environment variable - force those outcomes
// at named sites so every degradation path runs deterministically.
//
// Environment syntax (comma-separated triggers):
//
//   SYSECO_FAULT_INJECT="<site>=<kind>[@<skip>][,...]"
//
//   kind: budget | deadline | bdd | alloc | crash | oom | hang |
//         garbage-ipc | wrong-patch | net-truncate | net-reset | net-delay
//   skip: number of hits at the site to let through before firing
//         (default 0: fire from the first hit onward)
//
// `crash` is special: the process exits immediately (std::_Exit(137),
// mirroring a SIGKILL) with no cleanup, destructors or buffer flushes -
// the honest simulation of kill -9 that the crash-safe run journal must
// survive. It fires centrally inside Injector::fire, so every armed site
// doubles as a crash site.
//
// e.g. SYSECO_FAULT_INJECT="syseco.sampling=budget,syseco.pointsets=bdd@1"
//
// Sites are plain string tags; the instrumented locations are listed next
// to their call sites (grep for fault::fire). A trigger keeps firing once
// its skip count is consumed - degradation must hold up under persistent,
// not transient, exhaustion.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace syseco::fault {

enum class Kind {
  kBudgetExhausted,   ///< behave as if a conflict/node ledger ran dry
  kDeadlineExceeded,  ///< behave as if the wall clock passed the deadline
  kBddBlowup,         ///< behave as if the BDD manager hit its node limit
  kAllocFailure,      ///< behave as if an allocation failed
  kCrash,             ///< hard-exit the process (simulated kill -9)
  // Isolation-supervisor containment kinds, honored at the worker-child
  // sites (grep for fault::fire("isolate.")): the worker genuinely
  // misbehaves and the supervisor must observe and contain it end to end.
  kOom,         ///< worker: allocation failure escapes the whole task
  kHang,        ///< worker: ignore SIGTERM and spin until SIGKILLed
  kGarbageIpc,  ///< worker: respond with a corrupted IPC frame
  // Certification-oracle kind, honored at the "oracle.wrong-patch" site:
  // the engine silently miscompiles a committed patch so the tri-modal
  // oracle must catch, diagnose and quarantine the corrupted output.
  kWrongPatch,  ///< engine: corrupt a committed patch before certification
  // Fleet-transport kinds, honored at the worker-agent sites (grep for
  // fault::fire("fleet.agent")): the agent genuinely misbehaves on the
  // wire and the --workers supervisor must classify and contain it.
  kNetTruncate,  ///< agent: send a partial result frame, then close
  kNetReset,     ///< agent: drop the connection between request and result
  kNetDelay,     ///< agent: suppress heartbeats and respond after the lease
};

/// Exit code of a kCrash firing: 128 + SIGKILL, what a shell reports for a
/// genuinely killed process.
inline constexpr int kCrashExitCode = 137;

struct Trigger {
  std::string site;
  Kind kind = Kind::kBudgetExhausted;
  std::uint64_t skip = 0;  ///< hits to let through before firing
  std::uint64_t hits = 0;  ///< hits observed so far
};

class Injector {
 public:
  /// Process-wide instance, configured from SYSECO_FAULT_INJECT on first
  /// access. Hit counting is serialized internally so instrumented sites
  /// may fire from worker threads; arming/resetting still belongs in
  /// single-threaded test setup.
  static Injector& instance();

  /// Arms a trigger programmatically (unit tests). Replaces any existing
  /// trigger on the same site.
  void arm(std::string site, Kind kind, std::uint64_t skip = 0);

  /// Removes every trigger (tests must clean up after themselves).
  void reset();

  /// Records a hit at `site`; returns the armed kind when the trigger
  /// fires, nullopt when the site is unarmed or still skipping.
  std::optional<Kind> fire(std::string_view site);

  /// Lock-free fast path for the unarmed case (the overwhelming majority
  /// of hits): a relaxed read of the armed-trigger count.
  bool empty() const {
    return armedCount_.load(std::memory_order_relaxed) == 0;
  }

  /// Parses the environment syntax; returns false (and arms nothing from
  /// the bad clause) on a malformed clause.
  bool configure(std::string_view spec);

 private:
  Injector();
  mutable std::mutex mutex_;
  std::vector<Trigger> triggers_;
  std::atomic<std::size_t> armedCount_{0};
};

/// Convenience: hit a site on the global injector. Zero-cost in the common
/// (unarmed) case beyond one empty-vector check.
inline std::optional<Kind> fire(std::string_view site) {
  Injector& inj = Injector::instance();
  if (inj.empty()) return std::nullopt;
  return inj.fire(site);
}

}  // namespace syseco::fault
