#pragma once
// Deterministic fault injection for the resource-governor degradation paths
// and the storage stack.
//
// Budget exhaustion, BDD node blowups and allocation failures are rare and
// timing-dependent in production, which makes the code that reacts to them
// (staged degradation, cone-clone fallback, structured parser errors) the
// least-tested code in the engine. This hook lets tests - and operators,
// via the SYSECO_FAULT_INJECT environment variable - force those outcomes
// at named sites so every degradation path runs deterministically.
//
// Environment syntax (comma-separated triggers):
//
//   SYSECO_FAULT_INJECT="<site>=<kind>[@<skip>][,...]"
//
//   kind: budget | deadline | bdd | alloc | crash | oom | hang |
//         garbage-ipc | wrong-patch | net-truncate | net-reset | net-delay |
//         enospc | eio | short-write | fsync-fail | torn-frame
//   skip: number of hits at the site to let through before firing
//         (default 0: fire from the first hit onward)
//
// `crash` is special: the process exits immediately (std::_Exit(137),
// mirroring a SIGKILL) with no cleanup, destructors or buffer flushes -
// the honest simulation of kill -9 that the crash-safe run journal must
// survive. It fires centrally inside Injector::fireDetail, so every armed
// site doubles as a crash site.
//
// e.g. SYSECO_FAULT_INJECT="syseco.sampling=budget,syseco.pointsets=bdd@1"
//
// Sites are plain string tags; the instrumented locations are listed next
// to their call sites (grep for fault::fire) and tabulated in the README.
// An env-armed trigger keeps firing once its skip count is consumed -
// degradation must hold up under persistent, not transient, exhaustion.
// Scheduled triggers (Injector::schedule, util/fault_plan) fire exactly
// once, at the k-th hit of their site: the reproducible "at hit k of site
// S, inject kind K" schedules the chaos harness sweeps.
//
// Hit counting is per site, shared by every trigger on that site, so a
// schedule with several entries on one site sees one consistent ordinal
// sequence.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

namespace syseco::fault {

enum class Kind {
  kBudgetExhausted,   ///< behave as if a conflict/node ledger ran dry
  kDeadlineExceeded,  ///< behave as if the wall clock passed the deadline
  kBddBlowup,         ///< behave as if the BDD manager hit its node limit
  kAllocFailure,      ///< behave as if an allocation failed
  kCrash,             ///< hard-exit the process (simulated kill -9)
  // Isolation-supervisor containment kinds, honored at the worker-child
  // sites (grep for fault::fire("isolate.")): the worker genuinely
  // misbehaves and the supervisor must observe and contain it end to end.
  kOom,         ///< worker: allocation failure escapes the whole task
  kHang,        ///< worker: ignore SIGTERM and spin until SIGKILLed
  kGarbageIpc,  ///< worker: respond with a corrupted IPC frame
  // Certification-oracle kind, honored at the "oracle.wrong-patch" site:
  // the engine silently miscompiles a committed patch so the tri-modal
  // oracle must catch, diagnose and quarantine the corrupted output.
  kWrongPatch,  ///< engine: corrupt a committed patch before certification
  // Fleet-transport kinds, honored at the worker-agent sites (grep for
  // fault::fire("fleet.agent")): the agent genuinely misbehaves on the
  // wire and the --workers supervisor must classify and contain it.
  kNetTruncate,  ///< agent: send a partial result frame, then close
  kNetReset,     ///< agent: drop the connection between request and result
  kNetDelay,     ///< agent: suppress heartbeats and respond after the lease
  // Storage kinds, honored by the fallible write/fsync shim threaded under
  // util/journal, util/atomic_file and the serve WALs (fallibleWrite /
  // fallibleFsync below). The consumers fail closed: a poisoned journal
  // handle refuses further appends, and fold-on-open truncates back to the
  // last COMMIT.
  kEnospc,      ///< write fails with ENOSPC; nothing reaches the file
  kEio,         ///< write fails with EIO; nothing reaches the file
  kShortWrite,  ///< write persists only a prefix and reports the count
  kFsyncFail,   ///< fsync fails with EIO without syncing (fsyncgate)
  kTornFrame,   ///< write persists `arg` bytes, then fails (power cut)
};

/// Exit code of a kCrash firing: 128 + SIGKILL, what a shell reports for a
/// genuinely killed process.
inline constexpr int kCrashExitCode = 137;

/// Canonical spelling of a kind (the SYSECO_FAULT_INJECT / fault-plan
/// token), and its inverse. Unknown names map to nullopt.
const char* kindName(Kind kind);
std::optional<Kind> kindFromName(std::string_view name);

/// True for the kinds the storage shim acts on (others pass through a
/// write/fsync site untouched, except kCrash which never returns).
bool isStorageKind(Kind kind);

struct Trigger {
  std::string site;
  Kind kind = Kind::kBudgetExhausted;
  std::uint64_t skip = 0;   ///< hits to let through before firing
  bool oneShot = false;     ///< fire exactly at hit `skip`, once
  bool fired = false;       ///< one-shot bookkeeping
  std::uint64_t arg = 0;    ///< kind payload (torn-frame/short-write bytes)
};

/// What a firing trigger injects: the kind plus its argument.
struct Fired {
  Kind kind = Kind::kBudgetExhausted;
  std::uint64_t arg = 0;
};

class Injector {
 public:
  /// Process-wide instance, configured from SYSECO_FAULT_INJECT on first
  /// access. Hit counting is serialized internally so instrumented sites
  /// may fire from worker threads; arming/resetting still belongs in
  /// single-threaded test setup.
  static Injector& instance();

  /// Arms a persistent trigger programmatically (unit tests). Replaces any
  /// existing persistent trigger on the same site.
  void arm(std::string site, Kind kind, std::uint64_t skip = 0,
           std::uint64_t arg = 0);

  /// Arms a one-shot trigger that fires exactly at the `atHit`-th hit
  /// (0-based) of `site`, then disarms itself. Appends - several schedule
  /// entries may target the same site at different hit ordinals.
  void schedule(std::string site, Kind kind, std::uint64_t atHit,
                std::uint64_t arg = 0);

  /// Removes every trigger and every site hit counter (tests must clean up
  /// after themselves).
  void reset();

  /// Records a hit at `site`; returns the armed kind when a trigger fires,
  /// nullopt when the site is unarmed or not yet (or no longer) due.
  std::optional<Kind> fire(std::string_view site);

  /// fire() plus the trigger's argument (byte offsets for torn-frame /
  /// short-write).
  std::optional<Fired> fireDetail(std::string_view site);

  /// Lock-free fast path for the unarmed case (the overwhelming majority
  /// of hits): a relaxed read of the armed-trigger count.
  bool empty() const {
    return armedCount_.load(std::memory_order_relaxed) == 0;
  }

  /// Parses the environment syntax; returns false (and arms nothing from
  /// the bad clause) on a malformed clause.
  bool configure(std::string_view spec);

  /// Durable one-shot consumption log: when set, a firing one-shot trigger
  /// appends "<skip> <site> <kind>\n" to `path` (O_APPEND, fsync'd) BEFORE
  /// acting, so a crash-injecting schedule shared by a process tree (plan
  /// file + exec'd workers) fires each entry at most once across lives.
  /// util/fault_plan reads the log back and skips consumed entries.
  void setFireLog(std::string path);

 private:
  Injector();
  void logFired(const Trigger& t);

  mutable std::mutex mutex_;
  std::vector<Trigger> triggers_;
  /// site -> hits observed (shared by every trigger on the site).
  std::vector<std::pair<std::string, std::uint64_t>> siteHits_;
  std::string fireLogPath_;
  std::atomic<std::size_t> armedCount_{0};
};

/// Convenience: hit a site on the global injector. Zero-cost in the common
/// (unarmed) case beyond one relaxed atomic load.
inline std::optional<Kind> fire(std::string_view site) {
  Injector& inj = Injector::instance();
  if (inj.empty()) return std::nullopt;
  return inj.fire(site);
}

inline std::optional<Fired> fireDetail(std::string_view site) {
  Injector& inj = Injector::instance();
  if (inj.empty()) return std::nullopt;
  return inj.fireDetail(site);
}

// --- Fallible storage shim -------------------------------------------------
//
// Drop-in ::write / ::fsync with a named injection site consulted first.
// Storage kinds translate to the matching syscall failure; kCrash hard-
// exits (a power cut mid-append); every other kind passes through to the
// real syscall. The shim never lies about durability: a reported success
// really wrote/synced, a reported failure left at most the advertised
// prefix (torn-frame) behind.

/// ::write(fd, buf, len) through the injector at `site`. Returns the byte
/// count actually written, or -1 with errno set. kShortWrite persists a
/// non-empty prefix and returns its length (a correct caller's retry loop
/// absorbs it); kTornFrame persists `arg` bytes (clamped to len) and then
/// fails with EIO.
::ssize_t fallibleWrite(int fd, const void* buf, std::size_t len,
                        std::string_view site);

/// ::fsync(fd) through the injector at `site`. kFsyncFail returns -1 with
/// errno=EIO *without* syncing - the fsyncgate case the journal must treat
/// as fatal for the handle.
int fallibleFsync(int fd, std::string_view site);

}  // namespace syseco::fault
