#include "util/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"

namespace syseco {

namespace {

constexpr std::string_view kFrameMagic = "J1 ";
constexpr std::string_view kMarkerMagic = "syseco-journal-commit-v1";

Status errnoStatus(const std::string& what, const std::string& path) {
  return Status::internal(what + " " + path + ": " + std::strerror(errno));
}

bool parseHex32(std::string_view text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

std::string frameLine(std::string_view payload) {
  char head[32];
  std::snprintf(head, sizeof head, "J1 %08x %08x ",
                static_cast<std::uint32_t>(payload.size()), crc32(payload));
  std::string line = head;
  line.append(payload);
  line.push_back('\n');
  return line;
}

/// Verifies one journal line (without trailing newline); empty result
/// string means failure, with `why` describing it.
bool verifyFrame(std::string_view line, std::string* payload,
                 std::string* why) {
  if (line.size() < kFrameMagic.size() + 18 ||
      line.substr(0, kFrameMagic.size()) != kFrameMagic) {
    *why = "not a journal frame";
    return false;
  }
  std::uint32_t len = 0, crc = 0;
  if (!parseHex32(line.substr(3, 8), &len) || line[11] != ' ' ||
      !parseHex32(line.substr(12, 8), &crc) || line[20] != ' ') {
    *why = "malformed frame header";
    return false;
  }
  const std::string_view body = line.substr(21);
  if (body.size() != len) {
    *why = "length mismatch (header says " + std::to_string(len) + ", line has " +
           std::to_string(body.size()) + " bytes)";
    return false;
  }
  if (crc32(body) != crc) {
    *why = "checksum mismatch";
    return false;
  }
  payload->assign(body);
  return true;
}

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string journalDataPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}

std::string journalMarkerPath(const std::string& dir) {
  return dir + "/COMMIT";
}

Result<JournalScan> scanJournal(const std::string& dir) {
  JournalScan scan;

  // Marker first (informational; the frames themselves are authoritative).
  {
    std::ifstream mf(journalMarkerPath(dir));
    if (mf) {
      std::string magic;
      std::size_t records = 0;
      std::uint64_t bytes = 0;
      if (mf >> magic >> records >> bytes && magic == kMarkerMagic) {
        scan.committedRecords = records;
        scan.markerValid = true;
      } else {
        scan.diagnostics.push_back("COMMIT marker unreadable; ignoring it");
      }
    }
  }

  std::ifstream f(journalDataPath(dir), std::ios::binary);
  if (!f) {
    if (errno == ENOENT || !f.is_open()) return scan;  // empty journal
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string data = buf.str();

  std::size_t pos = 0, lineNo = 0;
  while (pos < data.size()) {
    ++lineNo;
    std::size_t eol = data.find('\n', pos);
    const bool torn = eol == std::string::npos;
    if (torn) eol = data.size();
    const std::string_view line(data.data() + pos, eol - pos);
    std::string payload, why;
    if (verifyFrame(line, &payload, &why) && !torn) {
      scan.frames.push_back(JournalFrame{lineNo, std::move(payload)});
      scan.retainBytes = eol + 1;
    } else if (torn) {
      scan.diagnostics.push_back("journal.jsonl line " + std::to_string(lineNo) +
                                 ": torn final record dropped (" +
                                 (why.empty() ? "no newline" : why) + ")");
    } else {
      scan.diagnostics.push_back("journal.jsonl line " + std::to_string(lineNo) +
                                 ": record dropped: " + why);
    }
    pos = eol + 1;
  }
  if (scan.markerValid && scan.frames.size() < scan.committedRecords) {
    scan.diagnostics.push_back(
        "journal lost committed records: marker attests " +
        std::to_string(scan.committedRecords) + ", only " +
        std::to_string(scan.frames.size()) + " verified");
  }
  return scan;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    dir_ = std::move(other.dir_);
    records_ = other.records_;
    bytes_ = other.bytes_;
    appendMutex_ = std::move(other.appendMutex_);
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<JournalWriter> JournalWriter::create(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return errnoStatus("cannot create journal directory", dir);
  JournalWriter w;
  w.dir_ = dir;
  w.appendMutex_ = std::make_unique<std::mutex>();
  const std::string path = journalDataPath(dir);
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (w.fd_ < 0) return errnoStatus("cannot create journal", path);
  const Status marker = w.commitMarker();
  if (!marker.isOk()) return marker;
  return w;
}

Result<JournalWriter> JournalWriter::resume(const std::string& dir,
                                            const JournalScan& scan) {
  JournalWriter w;
  w.dir_ = dir;
  w.appendMutex_ = std::make_unique<std::mutex>();
  const std::string path = journalDataPath(dir);
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (w.fd_ < 0) return errnoStatus("cannot open journal", path);
  // Physically drop any torn tail or trailing garbage before appending.
  if (::ftruncate(w.fd_, static_cast<off_t>(scan.retainBytes)) != 0)
    return errnoStatus("cannot truncate journal", path);
  if (::lseek(w.fd_, 0, SEEK_END) < 0)
    return errnoStatus("cannot seek journal", path);
  w.records_ = scan.frames.size();
  w.bytes_ = scan.retainBytes;
  const Status marker = w.commitMarker();
  if (!marker.isOk()) return marker;
  return w;
}

Status JournalWriter::append(std::string_view payload) {
  if (fd_ < 0) return Status::internal("journal writer is not open");
  if (payload.find('\n') != std::string_view::npos)
    return Status::invalidInput("journal payload must not contain newlines");
  const std::lock_guard<std::mutex> lock(*appendMutex_);
  const std::string line = frameLine(payload);
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errnoStatus("cannot append to journal", journalDataPath(dir_));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0)
    return errnoStatus("cannot fsync journal", journalDataPath(dir_));
  ++records_;
  bytes_ += line.size();
  return commitMarker();
}

Status JournalWriter::commitMarker() {
  std::string content(kMarkerMagic);
  content += " " + std::to_string(records_) + " " + std::to_string(bytes_) +
             "\n";
  return writeFileAtomic(journalMarkerPath(dir_), content);
}

}  // namespace syseco
