#include "util/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace syseco {

namespace {

constexpr std::string_view kFrameMagic = "J1 ";
constexpr std::string_view kMarkerMagic = "syseco-journal-commit-v1";

Status errnoStatus(const std::string& what, const std::string& path) {
  return Status::internal(what + " " + path + ": " + std::strerror(errno));
}

bool parseHex32(std::string_view text, std::uint32_t* out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char c : text) {
    std::uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else return false;
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

std::string frameLine(std::string_view payload) {
  char head[32];
  std::snprintf(head, sizeof head, "J1 %08x %08x ",
                static_cast<std::uint32_t>(payload.size()), crc32(payload));
  std::string line = head;
  line.append(payload);
  line.push_back('\n');
  return line;
}

/// Verifies one journal line (without trailing newline); empty result
/// string means failure, with `why` describing it.
bool verifyFrame(std::string_view line, std::string* payload,
                 std::string* why) {
  if (line.size() < kFrameMagic.size() + 18 ||
      line.substr(0, kFrameMagic.size()) != kFrameMagic) {
    *why = "not a journal frame";
    return false;
  }
  std::uint32_t len = 0, crc = 0;
  if (!parseHex32(line.substr(3, 8), &len) || line[11] != ' ' ||
      !parseHex32(line.substr(12, 8), &crc) || line[20] != ' ') {
    *why = "malformed frame header";
    return false;
  }
  const std::string_view body = line.substr(21);
  if (body.size() != len) {
    *why = "length mismatch (header says " + std::to_string(len) + ", line has " +
           std::to_string(body.size()) + " bytes)";
    return false;
  }
  if (crc32(body) != crc) {
    *why = "checksum mismatch";
    return false;
  }
  payload->assign(body);
  return true;
}

bool allZeroBytes(std::string_view text) {
  return !text.empty() &&
         text.find_first_not_of('\0') == std::string_view::npos;
}

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string journalDataPath(const std::string& dir) {
  return dir + "/journal.jsonl";
}

std::string journalMarkerPath(const std::string& dir) {
  return dir + "/COMMIT";
}

Result<JournalScan> scanJournal(const std::string& dir) {
  JournalScan scan;

  // Marker first (informational; the frames themselves are authoritative).
  {
    std::ifstream mf(journalMarkerPath(dir));
    if (mf) {
      std::string magic;
      std::size_t records = 0;
      std::uint64_t bytes = 0;
      if (mf >> magic >> records >> bytes && magic == kMarkerMagic) {
        scan.committedRecords = records;
        scan.markerValid = true;
      } else {
        scan.diagnostics.push_back("COMMIT marker unreadable; ignoring it");
      }
    }
  }

  std::ifstream f(journalDataPath(dir), std::ios::binary);
  if (!f) {
    if (errno == ENOENT || !f.is_open()) return scan;  // empty journal
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string data = buf.str();

  // Per-frame extents, so the tail fixups below can roll retainBytes back
  // past a frame they decide to drop.
  struct Extent {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  ///< one past the trailing newline
  };
  std::vector<Extent> extents;

  std::size_t pos = 0, lineNo = 0;
  while (pos < data.size()) {
    ++lineNo;
    std::size_t eol = data.find('\n', pos);
    const bool torn = eol == std::string::npos;
    if (torn) eol = data.size();
    const std::string_view line(data.data() + pos, eol - pos);
    std::string payload, why;
    if (verifyFrame(line, &payload, &why) && !torn) {
      scan.frames.push_back(JournalFrame{lineNo, std::move(payload)});
      extents.push_back(Extent{pos, eol + 1});
      scan.retainBytes = eol + 1;
    } else if (allZeroBytes(data.substr(pos))) {
      // A power cut on some filesystems materializes the allocated tail as
      // zeros. One diagnostic for the whole region, not one per fake line.
      scan.diagnostics.push_back(
          "journal.jsonl line " + std::to_string(lineNo) +
          ": zero-filled tail truncated (" +
          std::to_string(data.size() - pos) + " bytes)");
      break;
    } else if (torn) {
      scan.diagnostics.push_back("journal.jsonl line " + std::to_string(lineNo) +
                                 ": torn final record dropped (" +
                                 (why.empty() ? "no newline" : why) + ")");
    } else {
      scan.diagnostics.push_back("journal.jsonl line " + std::to_string(lineNo) +
                                 ": record dropped: " + why);
    }
    pos = eol + 1;
  }

  // Tail artifacts of a torn-then-retried append. Both are physically
  // truncated on resume (retainBytes rolls back past them), and both warn
  // rather than quarantine: the prefix before them is intact and the
  // marker proves how far the committed history really ran.
  if (!scan.frames.empty() && scan.retainBytes == extents.back().end) {
    // A zero-length frame is never a legitimate record (payloads are JSON
    // objects); a trailing one is the header of an append that tore right
    // after its fixed-width prefix.
    if (scan.frames.back().payload.empty()) {
      scan.diagnostics.push_back(
          "journal.jsonl line " + std::to_string(scan.frames.back().line) +
          ": trailing zero-length record truncated (torn append)");
      scan.frames.pop_back();
      scan.retainBytes = extents.back().begin;
      extents.pop_back();
    }
  }
  if (scan.frames.size() >= 2 && scan.retainBytes == extents.back().end &&
      scan.markerValid && scan.committedRecords + 1 == scan.frames.size()) {
    // A retried append can land the same record twice with only one COMMIT
    // advance. Only the marker gate lets us drop it: two genuinely equal
    // committed records would have committedRecords == frames.size().
    const Extent& last = extents[extents.size() - 1];
    const Extent& prev = extents[extents.size() - 2];
    const std::string_view lastRaw(data.data() + last.begin,
                                   last.end - last.begin);
    const std::string_view prevRaw(data.data() + prev.begin,
                                   prev.end - prev.begin);
    if (lastRaw == prevRaw) {
      scan.diagnostics.push_back(
          "journal.jsonl line " + std::to_string(scan.frames.back().line) +
          ": duplicate final record truncated (retried append beyond "
          "COMMIT)");
      scan.frames.pop_back();
      scan.retainBytes = last.begin;
      extents.pop_back();
    }
  }

  if (scan.markerValid && scan.frames.size() < scan.committedRecords) {
    scan.diagnostics.push_back(
        "journal lost committed records: marker attests " +
        std::to_string(scan.committedRecords) + ", only " +
        std::to_string(scan.frames.size()) + " verified");
  }
  return scan;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    dir_ = std::move(other.dir_);
    site_ = std::move(other.site_);
    records_ = other.records_;
    bytes_ = other.bytes_;
    poisoned_ = other.poisoned_;
    poisonCause_ = std::move(other.poisonCause_);
    appendMutex_ = std::move(other.appendMutex_);
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<JournalWriter> JournalWriter::create(const std::string& dir,
                                            std::string_view site) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return errnoStatus("cannot create journal directory", dir);
  removeStaleStaging(dir);
  JournalWriter w;
  w.dir_ = dir;
  w.site_ = std::string(site);
  w.appendMutex_ = std::make_unique<std::mutex>();
  const std::string path = journalDataPath(dir);
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (w.fd_ < 0) return errnoStatus("cannot create journal", path);
  const Status marker = w.commitMarker();
  if (!marker.isOk()) return marker;
  return w;
}

Result<JournalWriter> JournalWriter::resume(const std::string& dir,
                                            const JournalScan& scan,
                                            std::string_view site) {
  removeStaleStaging(dir);
  JournalWriter w;
  w.dir_ = dir;
  w.site_ = std::string(site);
  w.appendMutex_ = std::make_unique<std::mutex>();
  const std::string path = journalDataPath(dir);
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (w.fd_ < 0) return errnoStatus("cannot open journal", path);
  // Physically drop any torn tail or trailing garbage before appending.
  if (::ftruncate(w.fd_, static_cast<off_t>(scan.retainBytes)) != 0)
    return errnoStatus("cannot truncate journal", path);
  if (::lseek(w.fd_, 0, SEEK_END) < 0)
    return errnoStatus("cannot seek journal", path);
  w.records_ = scan.frames.size();
  w.bytes_ = scan.retainBytes;
  const Status marker = w.commitMarker();
  if (!marker.isOk()) return marker;
  return w;
}

Result<JournalWriter> JournalWriter::createCompacted(
    const std::string& dir, const std::vector<std::string>& payloads,
    std::string_view site) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return errnoStatus("cannot create journal directory", dir);
  removeStaleStaging(dir);
  std::string content;
  for (const std::string& payload : payloads) {
    if (payload.find('\n') != std::string::npos)
      return Status::invalidInput("journal payload must not contain newlines");
    content += frameLine(payload);
  }
  const std::string path = journalDataPath(dir);
  // Stage-and-rename: a crash at any instant leaves either the complete
  // old journal or the complete new one, never an in-place half-truncate.
  const Status replaced =
      writeFileAtomic(path, content, std::string(site) + ".compact");
  if (!replaced.isOk()) return replaced;
  JournalWriter w;
  w.dir_ = dir;
  w.site_ = std::string(site);
  w.appendMutex_ = std::make_unique<std::mutex>();
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (w.fd_ < 0) return errnoStatus("cannot open journal", path);
  w.records_ = payloads.size();
  w.bytes_ = content.size();
  const Status marker = w.commitMarker();
  if (!marker.isOk()) return marker;
  return w;
}

Status JournalWriter::append(std::string_view payload) {
  if (poisoned_)
    return Status::internal("journal poisoned: " + poisonCause_);
  if (fd_ < 0) return Status::internal("journal writer is not open");
  if (payload.find('\n') != std::string_view::npos)
    return Status::invalidInput("journal payload must not contain newlines");
  const std::lock_guard<std::mutex> lock(*appendMutex_);
  const std::string line = frameLine(payload);
  const std::string writeSite = site_ + ".write";
  std::size_t written = 0;
  while (written < line.size()) {
    const ::ssize_t n = fault::fallibleWrite(
        fd_, line.data() + written, line.size() - written, writeSite);
    if (n < 0) {
      if (errno == EINTR) continue;
      return poison("cannot append to journal " + journalDataPath(dir_) +
                        ": " + std::strerror(errno),
                    /*truncateBack=*/true);
    }
    written += static_cast<std::size_t>(n);
  }
  if (fault::fallibleFsync(fd_, site_ + ".fsync") != 0) {
    // fsyncgate: after a failed fsync the kernel may have dropped the
    // dirty pages; nothing about this append can be trusted. Truncate it
    // away and refuse further writes through this handle.
    return poison("cannot fsync journal " + journalDataPath(dir_) + ": " +
                      std::strerror(errno),
                  /*truncateBack=*/true);
  }
  ++records_;
  bytes_ += line.size();
  const Status marker = commitMarker();
  if (!marker.isOk()) {
    // The record itself is durable (fsync succeeded), so keep it: the
    // scan tolerates frames running ahead of the marker. But the writer
    // can no longer promise commit semantics - fail closed.
    return poison("cannot advance COMMIT marker: " + marker.message(),
                  /*truncateBack=*/false);
  }
  return Status::ok();
}

Status JournalWriter::poison(std::string cause, bool truncateBack) {
  if (fd_ >= 0) {
    if (truncateBack) {
      // Best effort: physically drop the partial append so a reader of
      // the live file never sees the torn frame. Replay would drop it
      // anyway; this keeps the on-disk state honest immediately.
      ::ftruncate(fd_, static_cast<off_t>(bytes_));
    }
    ::close(fd_);
    fd_ = -1;
  }
  poisoned_ = true;
  poisonCause_ = std::move(cause);
  return Status::internal("journal poisoned: " + poisonCause_);
}

Status JournalWriter::commitMarker() {
  std::string content(kMarkerMagic);
  content += " " + std::to_string(records_) + " " + std::to_string(bytes_) +
             "\n";
  return writeFileAtomic(journalMarkerPath(dir_), content, site_ + ".marker");
}

}  // namespace syseco
