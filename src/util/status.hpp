#pragma once
// Structured error propagation for the resource-governed engine cascade.
//
// The paper's engine is explicitly resource-constrained: validation runs
// under a SAT conflict budget (§5.1) and completeness is preserved by
// degrading to the cone-clone fallback (Proposition 1). This header gives
// those outcomes a first-class representation: a `Status` carries what
// happened (ok / budget exhausted / deadline exceeded / invalid input /
// internal) plus a human-readable diagnostic, and `Result<T>` is a value
// carrying either a payload or a non-ok Status. `StatusError` bridges the
// few places that must unwind through exception-only code (the BDD
// package, parsers) back into Status-returning call sites.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace syseco {

enum class StatusCode {
  kOk = 0,
  kBudgetExhausted,   ///< a conflict / BDD-node ledger ran dry
  kDeadlineExceeded,  ///< the wall-clock deadline passed
  kInvalidInput,      ///< malformed file or nonsensical configuration
  kInternal,          ///< invariant violation or allocation failure
};

inline const char* statusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBudgetExhausted: return "budget-exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status budgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status deadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status invalidInput(std::string msg) {
    return Status(StatusCode::kInvalidInput, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool isOk() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for the two resource-exhaustion codes - the recoverable family
  /// that the engine answers with graceful degradation rather than failure.
  bool isResourceExhausted() const {
    return code_ == StatusCode::kBudgetExhausted ||
           code_ == StatusCode::kDeadlineExceeded;
  }

  std::string toString() const {
    std::string s = statusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception shim for code that must unwind through non-Status layers
/// (e.g. the BDD package's recursive builders). Callers at phase
/// boundaries catch it and continue with the carried Status.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.toString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a value or a non-ok Status. Deliberately minimal: the engine
/// only needs construction, interrogation and move-out.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool isOk() const { return status_.isOk() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T take() { return std::move(*value_); }

  T valueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace syseco
