#pragma once
// The resource governor: one object combining the engine's three resource
// dimensions - a wall-clock deadline, a SAT conflict budget and a BDD node
// budget - behind a cheap cooperative polling interface.
//
// The paper's engine is resource-constrained by construction (validation
// runs under a conflict budget, §5.1) and complete by fallback
// (Proposition 1): nothing the governor reports is fatal. Call sites poll
// checkpoint() at natural unit-of-work boundaries (a SAT conflict batch, a
// block of fresh BDD nodes); a non-ok Status propagates outward to a phase
// boundary where the engine degrades - shrinks the candidate space, skips
// to the next output, or rewires the output to its revised-cone clone.
//
// Guards are hierarchical: slice(n) carves a child entitled to 1/n of the
// parent's *remaining* resources, so each failing output gets a fair share
// of whatever is left and one pathological output cannot starve the rest.
// Consumption charged to a child is also charged to every ancestor, and a
// tripped ancestor trips every descendant at its next checkpoint.
//
// Fault injection: checkpoint(site) consults util/fault.hpp when a site tag
// is given, so tests can force either exhaustion code at any polling site.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/fault.hpp"
#include "util/status.hpp"

namespace syseco {

class ResourceGuard {
 public:
  struct Limits {
    double deadlineSeconds = 0.0;      ///< <= 0: no deadline
    std::int64_t conflictBudget = 0;   ///< <= 0: unlimited
    std::int64_t bddNodeBudget = 0;    ///< <= 0: unlimited
  };

  /// Unlimited guard (never trips on its own; still honors fault
  /// injection and ancestor trips).
  ResourceGuard() = default;

  explicit ResourceGuard(const Limits& limits) {
    if (limits.deadlineSeconds > 0.0) {
      hasDeadline_ = true;
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         limits.deadlineSeconds));
    }
    conflictLimit_ = limits.conflictBudget > 0 ? limits.conflictBudget : -1;
    bddNodeLimit_ = limits.bddNodeBudget > 0 ? limits.bddNodeBudget : -1;
  }

  // Children hold a pointer to their parent, so guards are not copyable
  // and only move-constructible (needed to return from slice()); create
  // children in a scope the parent outlives and don't move a guard that
  // already has children. The move is hand-written because the spend
  // counters are atomics (several workers may charge one guard chain
  // concurrently); moving is a single-threaded setup-time operation.
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ResourceGuard(ResourceGuard&& other) noexcept
      : parent_(other.parent_),
        hasDeadline_(other.hasDeadline_),
        deadline_(other.deadline_),
        conflictLimit_(other.conflictLimit_),
        bddNodeLimit_(other.bddNodeLimit_),
        conflictsUsed_(other.conflictsUsed_.load(std::memory_order_relaxed)),
        bddNodesUsed_(other.bddNodesUsed_.load(std::memory_order_relaxed)),
        tripped_(other.tripped_.load(std::memory_order_relaxed)) {}
  ResourceGuard& operator=(ResourceGuard&&) = delete;

  /// Child guard entitled to 1/shares of this guard's remaining budgets
  /// and all of its remaining time (a deadline is a point in time, not a
  /// quantity, so children inherit it; use sliceSeconds to also carve the
  /// clock). shares == 0 behaves as 1.
  ResourceGuard slice(std::size_t shares) const {
    return sliceSeconds(shares, 0.0);
  }

  /// slice() plus a per-child wall-clock allowance: the child's deadline
  /// is min(parent deadline, now + maxSeconds) when maxSeconds > 0.
  ResourceGuard sliceSeconds(std::size_t shares, double maxSeconds) const {
    if (shares == 0) shares = 1;
    ResourceGuard child;
    child.parent_ = this;
    child.hasDeadline_ = hasDeadline_;
    child.deadline_ = deadline_;
    if (maxSeconds > 0.0) {
      const TimePoint cap =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(maxSeconds));
      if (!child.hasDeadline_ || cap < child.deadline_) {
        child.hasDeadline_ = true;
        child.deadline_ = cap;
      }
    }
    const std::int64_t conflictsLeft = remainingConflicts();
    if (conflictsLeft >= 0)
      child.conflictLimit_ =
          conflictsLeft / static_cast<std::int64_t>(shares) + 1;
    const std::int64_t nodesLeft = remainingBddNodes();
    if (nodesLeft >= 0)
      child.bddNodeLimit_ = nodesLeft / static_cast<std::int64_t>(shares) + 1;
    return child;
  }

  // --- Consumption ----------------------------------------------------------

  // Charges walk the parent chain with relaxed atomic adds: workers on
  // different threads may share an ancestor, and the counters are plain
  // monotone tallies polled cooperatively (no ordering is needed beyond
  // the eventual-visibility the polls tolerate by design).
  void chargeConflicts(std::int64_t n) {
    for (const ResourceGuard* g = this; g; g = g->parent_)
      g->conflictsUsed_.fetch_add(n, std::memory_order_relaxed);
  }
  void chargeBddNodes(std::int64_t n) {
    for (const ResourceGuard* g = this; g; g = g->parent_)
      g->bddNodesUsed_.fetch_add(n, std::memory_order_relaxed);
  }

  // --- Polling --------------------------------------------------------------

  /// Cooperative poll. Returns ok while every budget (of this guard and
  /// all ancestors) holds; otherwise a budget-exhausted / deadline-exceeded
  /// Status naming `site`. The first trip latches: later checkpoints keep
  /// returning the same code, so call sites may poll freely.
  Status checkpoint(const char* site = nullptr) {
    if (site != nullptr) {
      if (const auto kind = fault::fire(site)) {
        if (*kind == fault::Kind::kBudgetExhausted)
          tripped_ = StatusCode::kBudgetExhausted;
        else if (*kind == fault::Kind::kDeadlineExceeded)
          tripped_ = StatusCode::kDeadlineExceeded;
        // kBddBlowup / kAllocFailure are handled at their own sites.
      }
    }
    if (tripped_ == StatusCode::kOk) refresh();
    if (tripped_ == StatusCode::kOk) return Status::ok();
    return tripStatus(site);
  }

  /// Non-latching view of the current state (no fault-injection hit).
  bool exhausted() const {
    if (tripped_ != StatusCode::kOk) return true;
    const_cast<ResourceGuard*>(this)->refresh();
    return tripped_ != StatusCode::kOk;
  }
  StatusCode trippedCode() const { return tripped_; }

  // --- Introspection --------------------------------------------------------

  /// Remaining conflicts across this guard and its ancestors; -1 when
  /// unlimited everywhere on the chain.
  std::int64_t remainingConflicts() const {
    std::int64_t best = -1;
    for (const ResourceGuard* g = this; g; g = g->parent_) {
      if (g->conflictLimit_ < 0) continue;
      const std::int64_t left =
          g->conflictLimit_ > g->conflictsUsed_
              ? g->conflictLimit_ - g->conflictsUsed_
              : 0;
      best = best < 0 ? left : std::min(best, left);
    }
    return best;
  }

  std::int64_t remainingBddNodes() const {
    std::int64_t best = -1;
    for (const ResourceGuard* g = this; g; g = g->parent_) {
      if (g->bddNodeLimit_ < 0) continue;
      const std::int64_t left = g->bddNodeLimit_ > g->bddNodesUsed_
                                    ? g->bddNodeLimit_ - g->bddNodesUsed_
                                    : 0;
      best = best < 0 ? left : std::min(best, left);
    }
    return best;
  }

  /// Seconds until the nearest deadline on the chain; negative once
  /// expired; a large sentinel (1e18) when no deadline is set.
  double remainingSeconds() const {
    bool any = false;
    TimePoint nearest{};
    for (const ResourceGuard* g = this; g; g = g->parent_) {
      if (!g->hasDeadline_) continue;
      if (!any || g->deadline_ < nearest) nearest = g->deadline_;
      any = true;
    }
    if (!any) return 1e18;
    return std::chrono::duration<double>(nearest - Clock::now()).count();
  }

  std::int64_t conflictsUsed() const { return conflictsUsed_; }
  std::int64_t bddNodesUsed() const { return bddNodesUsed_; }

  /// True when any limit is set on this guard or an ancestor - callers use
  /// this to skip slicing entirely on unlimited runs.
  bool limited() const {
    for (const ResourceGuard* g = this; g; g = g->parent_)
      if (g->hasDeadline_ || g->conflictLimit_ >= 0 || g->bddNodeLimit_ >= 0)
        return true;
    return false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  void refresh() {
    for (const ResourceGuard* g = this; g; g = g->parent_) {
      const StatusCode code = g->tripped_.load(std::memory_order_relaxed);
      if (code != StatusCode::kOk) {
        tripped_.store(code, std::memory_order_relaxed);
        return;
      }
      if (g->conflictLimit_ >= 0 && g->conflictsUsed_ >= g->conflictLimit_) {
        tripped_ = StatusCode::kBudgetExhausted;
        return;
      }
      if (g->bddNodeLimit_ >= 0 && g->bddNodesUsed_ >= g->bddNodeLimit_) {
        tripped_ = StatusCode::kBudgetExhausted;
        return;
      }
    }
    if (hasDeadlineOnChain() && remainingSeconds() <= 0.0)
      tripped_ = StatusCode::kDeadlineExceeded;
  }

  bool hasDeadlineOnChain() const {
    for (const ResourceGuard* g = this; g; g = g->parent_)
      if (g->hasDeadline_) return true;
    return false;
  }

  Status tripStatus(const char* site) const {
    std::string where = site ? std::string(" at ") + site : std::string();
    if (tripped_ == StatusCode::kDeadlineExceeded)
      return Status::deadlineExceeded("wall-clock deadline passed" + where);
    return Status::budgetExhausted("resource budget exhausted" + where);
  }

  const ResourceGuard* parent_ = nullptr;
  bool hasDeadline_ = false;
  TimePoint deadline_{};
  std::int64_t conflictLimit_ = -1;  ///< -1: unlimited
  std::int64_t bddNodeLimit_ = -1;
  // Atomic so that worker threads can charge a shared ancestor while the
  // owner polls; everything else on a guard is set up before sharing.
  mutable std::atomic<std::int64_t> conflictsUsed_{0};
  mutable std::atomic<std::int64_t> bddNodesUsed_{0};
  std::atomic<StatusCode> tripped_{StatusCode::kOk};
};

}  // namespace syseco
