#include "util/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include <fcntl.h>
#include <unistd.h>

namespace syseco::fault {

const char* kindName(Kind kind) {
  switch (kind) {
    case Kind::kBudgetExhausted: return "budget";
    case Kind::kDeadlineExceeded: return "deadline";
    case Kind::kBddBlowup: return "bdd";
    case Kind::kAllocFailure: return "alloc";
    case Kind::kCrash: return "crash";
    case Kind::kOom: return "oom";
    case Kind::kHang: return "hang";
    case Kind::kGarbageIpc: return "garbage-ipc";
    case Kind::kWrongPatch: return "wrong-patch";
    case Kind::kNetTruncate: return "net-truncate";
    case Kind::kNetReset: return "net-reset";
    case Kind::kNetDelay: return "net-delay";
    case Kind::kEnospc: return "enospc";
    case Kind::kEio: return "eio";
    case Kind::kShortWrite: return "short-write";
    case Kind::kFsyncFail: return "fsync-fail";
    case Kind::kTornFrame: return "torn-frame";
  }
  return "unknown";
}

std::optional<Kind> kindFromName(std::string_view name) {
  if (name == "budget") return Kind::kBudgetExhausted;
  if (name == "deadline") return Kind::kDeadlineExceeded;
  if (name == "bdd") return Kind::kBddBlowup;
  if (name == "alloc") return Kind::kAllocFailure;
  if (name == "crash") return Kind::kCrash;
  if (name == "oom") return Kind::kOom;
  if (name == "hang") return Kind::kHang;
  if (name == "garbage-ipc") return Kind::kGarbageIpc;
  if (name == "wrong-patch") return Kind::kWrongPatch;
  if (name == "net-truncate") return Kind::kNetTruncate;
  if (name == "net-reset") return Kind::kNetReset;
  if (name == "net-delay") return Kind::kNetDelay;
  if (name == "enospc") return Kind::kEnospc;
  if (name == "eio") return Kind::kEio;
  if (name == "short-write") return Kind::kShortWrite;
  if (name == "fsync-fail") return Kind::kFsyncFail;
  if (name == "torn-frame") return Kind::kTornFrame;
  return std::nullopt;
}

bool isStorageKind(Kind kind) {
  switch (kind) {
    case Kind::kEnospc:
    case Kind::kEio:
    case Kind::kShortWrite:
    case Kind::kFsyncFail:
    case Kind::kTornFrame:
      return true;
    default:
      return false;
  }
}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

Injector::Injector() {
  if (const char* env = std::getenv("SYSECO_FAULT_INJECT")) configure(env);
}

void Injector::arm(std::string site, Kind kind, std::uint64_t skip,
                   std::uint64_t arg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Trigger& t : triggers_) {
    if (!t.oneShot && t.site == site) {
      t.kind = kind;
      t.skip = skip;
      t.arg = arg;
      return;
    }
  }
  Trigger t;
  t.site = std::move(site);
  t.kind = kind;
  t.skip = skip;
  t.arg = arg;
  triggers_.push_back(std::move(t));
  armedCount_.fetch_add(1, std::memory_order_relaxed);
}

void Injector::schedule(std::string site, Kind kind, std::uint64_t atHit,
                        std::uint64_t arg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Trigger t;
  t.site = std::move(site);
  t.kind = kind;
  t.skip = atHit;
  t.oneShot = true;
  t.arg = arg;
  triggers_.push_back(std::move(t));
  armedCount_.fetch_add(1, std::memory_order_relaxed);
}

void Injector::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  triggers_.clear();
  siteHits_.clear();
  fireLogPath_.clear();
  armedCount_.store(0, std::memory_order_relaxed);
}

void Injector::setFireLog(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fireLogPath_ = std::move(path);
}

void Injector::logFired(const Trigger& t) {
  if (fireLogPath_.empty()) return;
  const int fd = ::open(fireLogPath_.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return;
  std::string line = std::to_string(t.skip);
  line += ' ';
  line += t.site;
  line += ' ';
  line += kindName(t.kind);
  line += '\n';
  std::size_t done = 0;
  while (done < line.size()) {
    const ::ssize_t got = ::write(fd, line.data() + done, line.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // best effort: the log only narrows duplicate firings
    }
    done += static_cast<std::size_t>(got);
  }
  ::fsync(fd);
  ::close(fd);
}

std::optional<Kind> Injector::fire(std::string_view site) {
  const std::optional<Fired> fired = fireDetail(site);
  if (!fired) return std::nullopt;
  return fired->kind;
}

std::optional<Fired> Injector::fireDetail(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t* counter = nullptr;
  for (auto& [name, hits] : siteHits_) {
    if (name == site) {
      counter = &hits;
      break;
    }
  }
  if (counter == nullptr) {
    siteHits_.emplace_back(std::string(site), 0);
    counter = &siteHits_.back().second;
  }
  const std::uint64_t hit = (*counter)++;

  Trigger* due = nullptr;
  for (Trigger& t : triggers_) {
    if (t.site != site) continue;
    if (t.oneShot) {
      // One-shots fire exactly at their ordinal; a schedule with several
      // entries on one site sees each fire once. They beat a persistent
      // trigger due at the same hit - the more specific intent wins.
      if (!t.fired && hit == t.skip) {
        due = &t;
        break;
      }
    } else if (hit >= t.skip && due == nullptr) {
      due = &t;
    }
  }
  if (due == nullptr) return std::nullopt;
  if (due->oneShot) {
    due->fired = true;
    armedCount_.fetch_sub(1, std::memory_order_relaxed);
    // Write-ahead: record consumption BEFORE acting, so even a kCrash
    // firing is visible to the next process loading the same plan.
    logFired(*due);
  }
  // A crash never returns to the caller: _Exit skips destructors,
  // atexit handlers and stream flushes, like the SIGKILL it simulates.
  if (due->kind == Kind::kCrash) std::_Exit(kCrashExitCode);
  return Fired{due->kind, due->arg};
}

bool Injector::configure(std::string_view spec) {
  bool allOk = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      allOk = false;
      continue;
    }
    std::string_view kindPart = clause.substr(eq + 1);
    std::uint64_t skip = 0;
    if (const std::size_t at = kindPart.find('@');
        at != std::string_view::npos) {
      const std::string_view skipPart = kindPart.substr(at + 1);
      kindPart = kindPart.substr(0, at);
      if (skipPart.empty()) {
        allOk = false;
        continue;
      }
      skip = 0;
      bool digits = true;
      for (char c : skipPart) {
        if (c < '0' || c > '9') {
          digits = false;
          break;
        }
        skip = skip * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (!digits) {
        allOk = false;
        continue;
      }
    }
    const std::optional<Kind> kind = kindFromName(kindPart);
    if (!kind) {
      allOk = false;
      continue;
    }
    arm(std::string(clause.substr(0, eq)), *kind, skip);
  }
  return allOk;
}

namespace {

/// Writes up to `len` bytes for real, absorbing EINTR. Returns the byte
/// count that reached the fd (0 on an immediate hard failure, with errno
/// left from ::write).
std::size_t writePrefix(int fd, const char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t got = ::write(fd, buf + done, len - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    done += static_cast<std::size_t>(got);
  }
  return done;
}

}  // namespace

::ssize_t fallibleWrite(int fd, const void* buf, std::size_t len,
                        std::string_view site) {
  Injector& inj = Injector::instance();
  if (inj.empty()) return ::write(fd, buf, len);
  const std::optional<Fired> fired = inj.fireDetail(site);
  if (!fired) return ::write(fd, buf, len);
  const char* bytes = static_cast<const char*>(buf);
  switch (fired->kind) {
    case Kind::kEnospc:
      errno = ENOSPC;
      return -1;
    case Kind::kEio:
      errno = EIO;
      return -1;
    case Kind::kShortWrite: {
      // A genuine short write: a non-empty prefix really lands and its
      // length is reported. At least one byte, so a persistent trigger
      // cannot starve a correct caller's retry loop.
      if (len == 0) return 0;
      const std::size_t want = static_cast<std::size_t>(
          std::clamp<std::uint64_t>(fired->arg != 0 ? fired->arg : len / 2,
                                    1, len));
      const std::size_t done = writePrefix(fd, bytes, want);
      if (done == 0) return -1;  // errno from the real write
      return static_cast<::ssize_t>(done);
    }
    case Kind::kTornFrame: {
      // Power cut mid-append: a prefix reaches the file, then the device
      // goes away. The caller sees a hard failure; the torn tail is what
      // fold-on-open must truncate back.
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(fired->arg != 0 ? fired->arg : len / 2,
                                  len));
      writePrefix(fd, bytes, want);
      errno = EIO;
      return -1;
    }
    default:
      // Non-write kinds (including fsync-fail) pass through untouched;
      // kCrash never reaches here (handled centrally in fireDetail).
      return ::write(fd, buf, len);
  }
}

int fallibleFsync(int fd, std::string_view site) {
  Injector& inj = Injector::instance();
  if (inj.empty()) return ::fsync(fd);
  const std::optional<Fired> fired = inj.fireDetail(site);
  if (!fired) return ::fsync(fd);
  switch (fired->kind) {
    case Kind::kFsyncFail:
    case Kind::kEio:
      errno = EIO;
      return -1;
    case Kind::kEnospc:
      errno = ENOSPC;
      return -1;
    default:
      return ::fsync(fd);
  }
}

}  // namespace syseco::fault
