#include "util/fault.hpp"

#include <cstdlib>

namespace syseco::fault {

namespace {

std::optional<Kind> kindFromName(std::string_view name) {
  if (name == "budget") return Kind::kBudgetExhausted;
  if (name == "deadline") return Kind::kDeadlineExceeded;
  if (name == "bdd") return Kind::kBddBlowup;
  if (name == "alloc") return Kind::kAllocFailure;
  if (name == "crash") return Kind::kCrash;
  if (name == "oom") return Kind::kOom;
  if (name == "hang") return Kind::kHang;
  if (name == "garbage-ipc") return Kind::kGarbageIpc;
  if (name == "wrong-patch") return Kind::kWrongPatch;
  if (name == "net-truncate") return Kind::kNetTruncate;
  if (name == "net-reset") return Kind::kNetReset;
  if (name == "net-delay") return Kind::kNetDelay;
  return std::nullopt;
}

}  // namespace

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

Injector::Injector() {
  if (const char* env = std::getenv("SYSECO_FAULT_INJECT")) configure(env);
}

void Injector::arm(std::string site, Kind kind, std::uint64_t skip) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Trigger& t : triggers_) {
    if (t.site == site) {
      t.kind = kind;
      t.skip = skip;
      t.hits = 0;
      return;
    }
  }
  triggers_.push_back(Trigger{std::move(site), kind, skip, 0});
  armedCount_.store(triggers_.size(), std::memory_order_relaxed);
}

void Injector::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  triggers_.clear();
  armedCount_.store(0, std::memory_order_relaxed);
}

std::optional<Kind> Injector::fire(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Trigger& t : triggers_) {
    if (t.site != site) continue;
    const std::uint64_t hit = t.hits++;
    if (hit < t.skip) return std::nullopt;
    // A crash never returns to the caller: _Exit skips destructors,
    // atexit handlers and stream flushes, like the SIGKILL it simulates.
    if (t.kind == Kind::kCrash) std::_Exit(kCrashExitCode);
    return t.kind;
  }
  return std::nullopt;
}

bool Injector::configure(std::string_view spec) {
  bool allOk = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      allOk = false;
      continue;
    }
    std::string_view kindPart = clause.substr(eq + 1);
    std::uint64_t skip = 0;
    if (const std::size_t at = kindPart.find('@');
        at != std::string_view::npos) {
      const std::string_view skipPart = kindPart.substr(at + 1);
      kindPart = kindPart.substr(0, at);
      if (skipPart.empty()) {
        allOk = false;
        continue;
      }
      skip = 0;
      bool digits = true;
      for (char c : skipPart) {
        if (c < '0' || c > '9') {
          digits = false;
          break;
        }
        skip = skip * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (!digits) {
        allOk = false;
        continue;
      }
    }
    const std::optional<Kind> kind = kindFromName(kindPart);
    if (!kind) {
      allOk = false;
      continue;
    }
    arm(std::string(clause.substr(0, eq)), *kind, skip);
  }
  return allOk;
}

}  // namespace syseco::fault
