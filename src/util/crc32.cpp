#include "util/crc32.hpp"

#include <fstream>

namespace syseco {

Result<std::uint32_t> crc32OfFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    return Status::invalidInput("crc32: cannot open '" + path + "'");
  std::uint32_t state = crc32Init();
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    state = crc32Update(
        state, std::string_view(buf, static_cast<std::size_t>(in.gcount())));
    if (in.eof()) break;
  }
  if (in.bad())
    return Status::internal("crc32: read error on '" + path + "'");
  return crc32Final(state);
}

}  // namespace syseco
