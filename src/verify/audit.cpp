#include "verify/audit.hpp"

#include <algorithm>
#include <chrono>

namespace syseco {

namespace {

using Clock = std::chrono::steady_clock;

void add(AuditReport& report, std::string check, std::string detail) {
  report.ok = false;
  report.findings.push_back(
      AuditFinding{std::move(check), std::move(detail)});
}

void auditGates(const Netlist& nl, AuditReport& report) {
  const std::size_t numNets = nl.numNetsTotal();
  for (GateId g = 0; g < nl.numGatesTotal(); ++g) {
    const Netlist::Gate& gate = nl.gate(g);
    if (gate.dead) continue;
    const std::uint8_t arity = gateArity(gate.type);
    if (arity == 0xFF) {
      if (gate.fanins.empty())
        add(report, "gate-arity",
            "gate " + std::to_string(g) + " (" + gateTypeName(gate.type) +
                ") has no fanins");
    } else if (gate.fanins.size() != arity) {
      add(report, "gate-arity",
          "gate " + std::to_string(g) + " (" + gateTypeName(gate.type) +
              ") has " + std::to_string(gate.fanins.size()) + " fanins, wants " +
              std::to_string(arity));
    }
    for (std::uint32_t port = 0; port < gate.fanins.size(); ++port) {
      if (gate.fanins[port] >= numNets)
        add(report, "fanin-bounds",
            "gate " + std::to_string(g) + " fanin " + std::to_string(port) +
                " -> net " + std::to_string(gate.fanins[port]) +
                " out of range");
    }
    if (gate.out >= numNets) {
      add(report, "gate-out-bounds",
          "gate " + std::to_string(g) + " out -> net " +
              std::to_string(gate.out) + " out of range");
    } else {
      const Netlist::Net& out = nl.net(gate.out);
      if (out.srcKind != Netlist::SourceKind::Gate || out.srcIdx != g)
        add(report, "driver-backref",
            "gate " + std::to_string(g) + " out net " +
                std::to_string(gate.out) + " does not name it as driver");
    }
  }
}

void auditNets(const Netlist& nl, AuditReport& report) {
  for (NetId n = 0; n < nl.numNetsTotal(); ++n) {
    const Netlist::Net& net = nl.net(n);
    switch (net.srcKind) {
      case Netlist::SourceKind::Input:
        if (net.srcIdx >= nl.numInputs() || nl.inputNet(net.srcIdx) != n)
          add(report, "net-source",
              "net " + std::to_string(n) + " claims PI " +
                  std::to_string(net.srcIdx) + " inconsistently");
        break;
      case Netlist::SourceKind::Gate:
        if (net.srcIdx >= nl.numGatesTotal() ||
            nl.gate(net.srcIdx).out != n)
          add(report, "net-source",
              "net " + std::to_string(n) + " claims gate " +
                  std::to_string(net.srcIdx) + " inconsistently");
        break;
      case Netlist::SourceKind::None:
        // An undriven net that feeds nothing is just unused storage; one
        // with sinks evaluates as garbage downstream.
        if (!net.sinks.empty())
          add(report, "dangling-net",
              "net " + std::to_string(n) + " is undriven but has " +
                  std::to_string(net.sinks.size()) + " sinks");
        break;
    }
    for (const Sink& s : net.sinks) {
      if (s.isOutput()) {
        if (s.port >= nl.numOutputs() || nl.outputNet(s.port) != n)
          add(report, "sink-backref",
              "net " + std::to_string(n) + " has stale PO sink " +
                  std::to_string(s.port));
      } else if (s.gate >= nl.numGatesTotal() || nl.gate(s.gate).dead ||
                 s.port >= nl.gate(s.gate).fanins.size() ||
                 nl.gate(s.gate).fanins[s.port] != n) {
        add(report, "sink-backref",
            "net " + std::to_string(n) + " has stale gate sink (" +
                std::to_string(s.gate) + ", " + std::to_string(s.port) + ")");
      }
    }
  }
  // Every live pin and primary output must be registered exactly once.
  for (GateId g = 0; g < nl.numGatesTotal(); ++g) {
    const Netlist::Gate& gate = nl.gate(g);
    if (gate.dead) continue;
    for (std::uint32_t port = 0; port < gate.fanins.size(); ++port) {
      const NetId f = gate.fanins[port];
      if (f >= nl.numNetsTotal()) continue;  // already reported above
      const auto& sinks = nl.net(f).sinks;
      const Sink want{g, port};
      if (std::count(sinks.begin(), sinks.end(), want) != 1)
        add(report, "sink-registration",
            "pin (" + std::to_string(g) + ", " + std::to_string(port) +
                ") not registered exactly once on net " + std::to_string(f));
    }
  }
  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
    const auto& sinks = nl.net(nl.outputNet(o)).sinks;
    const Sink want{kNullId, o};
    if (std::count(sinks.begin(), sinks.end(), want) != 1)
      add(report, "sink-registration",
          "output " + std::to_string(o) + " not registered exactly once on net " +
              std::to_string(nl.outputNet(o)));
  }
}

void auditDeep(const Netlist& nl, AuditReport& report) {
  // Topological consistency: topoOrder() must place every live fanin
  // driver before its fanout (it returns a partial order only when the
  // graph is consistent; a corrupted graph yields a truncated or
  // misordered sequence).
  const std::vector<GateId> topo = nl.topoOrder();
  std::vector<std::uint32_t> pos(nl.numGatesTotal(), kNullId);
  for (std::uint32_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (GateId g : topo) {
    for (NetId f : nl.gate(g).fanins) {
      if (f >= nl.numNetsTotal()) continue;
      const GateId drv = nl.driverOf(f);
      if (drv == kNullId) continue;
      if (drv >= nl.numGatesTotal() || pos[drv] == kNullId ||
          pos[drv] >= pos[g])
        add(report, "topo-order",
            "gate " + std::to_string(g) + " precedes its fanin driver " +
                std::to_string(drv));
    }
  }
  // Per-output support sanity: every support entry is a real PI index.
  for (std::uint32_t o = 0; o < nl.numOutputs(); ++o) {
    for (std::uint32_t pi : nl.support(nl.outputNet(o)))
      if (pi >= nl.numInputs())
        add(report, "support-bounds",
            "output " + std::to_string(o) + " support names PI " +
                std::to_string(pi) + " out of range");
  }
  // Cross-check against the model's own auditor: a disagreement means one
  // of the two walks is wrong, which is itself a finding.
  std::string why;
  if (!nl.isWellFormed(&why) && report.ok)
    add(report, "well-formed", "isWellFormed disagrees: " + why);
}

}  // namespace

std::optional<AuditLevel> auditLevelFromName(std::string_view name) {
  for (AuditLevel level : {AuditLevel::kOff, AuditLevel::kBoundaries,
                           AuditLevel::kParanoid}) {
    if (name == auditLevelName(level)) return level;
  }
  return std::nullopt;
}

AuditReport auditNetlist(const Netlist& netlist, AuditLevel level,
                         std::string phase) {
  AuditReport report;
  report.phase = std::move(phase);
  if (level == AuditLevel::kOff) return report;
  const Clock::time_point start = Clock::now();
  auditGates(netlist, report);
  auditNets(netlist, report);
  if (!netlist.isAcyclic())
    add(report, "acyclicity", "gate graph has a cycle");
  if (level == AuditLevel::kParanoid && report.ok) auditDeep(netlist, report);
  report.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

Status auditFailure(const AuditReport& report) {
  std::string msg = "netlist audit failed at " + report.phase + ":";
  for (const AuditFinding& f : report.findings)
    msg += " [" + f.check + "] " + f.detail + ";";
  return Status::internal(std::move(msg));
}

}  // namespace syseco
