#pragma once
// Tri-modal patch certification oracle.
//
// The engine's own final verification re-uses the SAT route that found the
// patch, so a bug in the CNF encoding, the BDD quantification or the
// plan-order commit logic can silently certify a wrong patch. The oracle
// re-proves every committed patch through three *independent* routes and
// cross-checks their verdicts:
//
//  1. SAT: combinational equivalence on a freshly re-encoded miter (a new
//     PairEncoding per output - no solver state, learned clauses or
//     variable numbering shared with the search).
//  2. BDD: both output cones built monolithically over label-correlated
//     input variables in a fresh manager; equivalence is XOR == false.
//     When the node budget trips mid-build, the route reports
//     skipped(budget) - never a verdict it did not finish computing.
//  3. Simulation: a mass random pass plus a per-output directed block
//     (walking-one/zero and random patterns confined to the output's
//     support). Simulation alone can only refute or pass-bounded.
//
// An output is certified when at least one route proves equivalence and no
// route refutes it. A refutation while the engine claims success is an
// OracleDisagreement: the counterexample is ddmin-shrunk against the
// simulator and handed to the caller for repro-bundle packaging and
// quarantine.

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace syseco {

enum class RouteVerdict {
  kEquivalent,     ///< the route proved the pair equivalent
  kNotEquivalent,  ///< the route found a concrete counterexample
  kPassedBounded,  ///< no mismatch found within a bounded (sim) search
  kSkippedBudget,  ///< the route's resource budget tripped mid-check
};

inline const char* routeVerdictName(RouteVerdict v) {
  switch (v) {
    case RouteVerdict::kEquivalent: return "equivalent";
    case RouteVerdict::kNotEquivalent: return "not-equivalent";
    case RouteVerdict::kPassedBounded: return "passed-bounded";
    case RouteVerdict::kSkippedBudget: return "skipped(budget)";
  }
  return "unknown";
}

struct RouteResult {
  RouteVerdict verdict = RouteVerdict::kSkippedBudget;
  double seconds = 0.0;
  std::string detail;  ///< why skipped / where the mismatch was found
};

struct OracleOptions {
  /// Certify every committed patch tri-modally. Off reverts the engine to
  /// its legacy single-route (SAT-only) final verification.
  bool enabled = true;
  std::size_t simWords = 8;        ///< mass-random pass: 64*simWords patterns
  std::size_t simDirectedMax = 64; ///< directed patterns per output (cap)
  std::size_t bddNodeBudget = 1u << 20;  ///< fresh-manager node limit
  std::int64_t satConflictBudget = -1;   ///< -1 = unbounded (exact route)
  std::uint64_t seed = 1;  ///< all oracle randomness derives from this
  /// BDD-route engine tuning. Sifting is on by default: monolithic output
  /// cones at identity order are exactly where dynamic reordering pays,
  /// and the route's verdict is order-independent (a cone either completes
  /// - same function - or trips the same node budget). `kOff` restores the
  /// identity-order engine bit-for-bit.
  BddReorder bddReorder = BddReorder::kSift;
  std::uint32_t bddCacheBits = 0;       ///< 0 = engine default
  std::size_t bddReorderThreshold = 0;  ///< 0 = engine default
};

/// Per-output certification record, one per (impl output, spec output) pair.
struct OutputCertificate {
  std::uint32_t output = 0;  ///< implementation output index
  std::string name;
  RouteResult sat;
  RouteResult bdd;
  RouteResult sim;
  /// >= 1 route proved equivalence and none refuted it.
  bool certified = false;
  /// Two routes returned contradicting *definite* verdicts (equivalent vs
  /// not-equivalent) - a bug in one of the reasoning engines themselves.
  bool routesConflict = false;
  /// Counterexample (over impl inputs) when a route refuted; ddmin-shrunk
  /// against the simulator. Empty when certified.
  InputPattern cex;
  std::size_t cexDeviations = 0;  ///< nonzero bits after minimization
  bool cexReproduced = false;     ///< simulator confirmed the mismatch
  /// BDD-route engine telemetry (peak nodes, cache hit rate, reorders) for
  /// the --report observability block; zeros when the route never built a
  /// manager (fault-injected skip).
  BddStats bddStats;
};

/// A certified-wrong patch: the engine committed this output as correct,
/// the oracle refuted it. Carries everything the repro bundle needs.
struct OracleDisagreement {
  std::uint32_t output = 0;
  std::string name;
  std::string detail;  ///< route verdicts, one line
  InputPattern cex;    ///< minimized counterexample (impl input order)
  std::string bundleDir;  ///< repro bundle location, "" when none written
};

class CertificationOracle {
 public:
  /// Borrows both netlists; they must outlive the oracle. The impl netlist
  /// may grow between certify() calls (quarantine re-certification) - each
  /// call builds its own simulation state.
  CertificationOracle(const Netlist& impl, const Netlist& spec,
                      const OracleOptions& options);

  /// Certifies impl output `o` against spec output `op` (label-matched by
  /// the caller). Deterministic in (netlists, options).
  OutputCertificate certify(std::uint32_t o, std::uint32_t op);

  /// Maps an impl-input pattern to the spec's input order by label; spec
  /// inputs with no impl counterpart read 0.
  InputPattern mapToSpec(const InputPattern& implPattern) const;

 private:
  RouteResult satRoute(std::uint32_t o, std::uint32_t op, InputPattern* cex);
  RouteResult bddRoute(std::uint32_t o, std::uint32_t op, InputPattern* cex,
                       BddStats* stats = nullptr);
  RouteResult simRoute(std::uint32_t o, std::uint32_t op, InputPattern* cex);

  const Netlist& impl_;
  const Netlist& spec_;
  OracleOptions opt_;
  /// Per spec input: impl input index providing its value, or kNullId.
  std::vector<std::uint32_t> specInputFromImpl_;
};

/// ddmin-style counterexample shrinking: drives as many deviating (nonzero)
/// input bits as possible back to the all-zero baseline while the
/// simulator still observes evalOnce(impl)[o] != evalOnce(spec)[op].
/// Returns the minimized pattern; `reproduced` (when non-null) reports
/// whether the *original* pattern exhibited the mismatch at all (when it
/// does not, the input is returned unchanged - a cex the simulator cannot
/// reproduce is itself part of the diagnosis).
InputPattern minimizeCex(const Netlist& impl, std::uint32_t o,
                         const Netlist& spec, std::uint32_t op,
                         const CertificationOracle& oracle,
                         const InputPattern& cex, bool* reproduced = nullptr);

}  // namespace syseco
